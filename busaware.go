// Package busaware reproduces "Scheduling Algorithms with Bus
// Bandwidth Considerations for SMPs" (Antonopoulos, Nikolopoulos,
// Papatheodorou — ICPP 2003) as a simulation library.
//
// The package bundles:
//
//   - a quantum-stepped model of the paper's 4-way Xeon SMP with a
//     STREAM-calibrated shared front-side bus (internal/machine,
//     internal/bus) and per-processor L2 caches (internal/cache);
//   - phase-structured synthetic versions of the paper's NAS and
//     Splash-2 applications plus the BBMA / nBBMA antagonist
//     microbenchmarks (internal/workload), observed through
//     virtualized performance counters (internal/perfctr);
//   - the paper's two bus-bandwidth-aware gang policies — Latest
//     Quantum and Quanta Window — together with a Linux-2.4-style
//     baseline and several ablation schedulers (internal/sched), and
//     the user-level CPU manager protocol (internal/cpumanager);
//   - runners that regenerate every figure of the paper's evaluation
//     (internal/experiments) with text/CSV rendering
//     (internal/report).
//
// The exported surface is a thin facade: construct a workload, pick a
// policy, run it, and read turnarounds — or call the Figure functions
// in figures.go to regenerate the paper's evaluation wholesale.
package busaware

import (
	"fmt"

	"busaware/internal/machine"
	"busaware/internal/scenario"
	"busaware/internal/sched"
	"busaware/internal/sim"
	"busaware/internal/timeline"
	"busaware/internal/trace"
	"busaware/internal/units"
	"busaware/internal/workload"
)

// Re-exported core types. The aliases keep one set of definitions in
// the internal packages while giving users a single import.
type (
	// Time is simulated time in microseconds.
	Time = units.Time
	// Rate is a bus-transaction rate in transactions/usec.
	Rate = units.Rate
	// Profile describes an application type (gang size, phases,
	// working set).
	Profile = workload.Profile
	// App is a running application instance.
	App = workload.App
	// Scheduler is a scheduling policy.
	Scheduler = sched.Scheduler
	// Result is a completed simulation run.
	Result = sim.Result
	// AppResult is one application's outcome within a Result.
	AppResult = sim.AppResult
	// MachineConfig describes the simulated SMP.
	MachineConfig = machine.Config
	// Timeline records per-quantum scheduling decisions for rendering
	// or Chrome-trace export.
	Timeline = trace.Timeline
	// TimelineCollector aggregates per-quantum telemetry into bounded
	// windows (bus utilization, admission decisions, queue depths,
	// fault events); TimelineConfig and TimelineWindow size and carry
	// it. See internal/timeline.
	TimelineCollector = timeline.Collector
	TimelineConfig    = timeline.Config
	TimelineWindow    = timeline.Window
	// LoadPattern is a time-varying load level (ramp/sine/spike/step
	// segments, composable with "+"); ChurnSpec names a pattern plus a
	// profile pool and seed, and ChurnSchedule is its materialized
	// arrival/departure event list. See internal/scenario.
	LoadPattern   = scenario.Pattern
	ChurnSpec     = scenario.ChurnSpec
	ChurnSchedule = scenario.Schedule
)

// Time units, re-exported for convenience.
const (
	Microsecond = units.Microsecond
	Millisecond = units.Millisecond
	Second      = units.Second
)

// SustainedBusRate is the STREAM-calibrated bus capacity
// (29.5 transactions/usec on the paper's machine).
const SustainedBusRate = units.SustainedBusRate

// PaperMachine returns the simulated paper platform: a dedicated
// 4-processor Xeon SMP with 256KB L2 caches and a 29.5 trans/usec
// front-side bus.
func PaperMachine() MachineConfig { return machine.DefaultConfig() }

// Applications returns the eleven paper applications in increasing
// solo-bandwidth order (Figure 1A's x axis).
func Applications() []Profile { return workload.PaperApps() }

// AppByName resolves a profile by name: the eleven applications plus
// "BBMA", "nBBMA" and "STREAM".
func AppByName(name string) (Profile, bool) { return workload.ByName(name) }

// NewInstance creates one runnable instance of a profile.
func NewInstance(p Profile, instance string) *App {
	return workload.NewApp(p, instance)
}

// Instances creates n numbered instances of a profile.
func Instances(p Profile, n int) []*App { return workload.Instances(p, n) }

// ParseApps expands a workload spec like "CG x2, BBMA x4" into
// application instances — the grammar shared by the smpsim CLI and the
// smpsimd HTTP daemon (see workload.ParseSpec).
func ParseApps(spec string) ([]*App, error) { return workload.ParseSpec(spec) }

// Policy names accepted by NewScheduler.
const (
	PolicyLatestQuantum = "latest"
	PolicyQuantaWindow  = "window"
	PolicyEWMA          = "ewma"
	PolicyOracle        = "oracle"
	PolicyLinux         = "linux"
	PolicyGang          = "gang"
	PolicyRoundRobin    = "rr"
	PolicyOptimal       = "optimal"
)

// NewScheduler builds a scheduler by name for the given machine. The
// seed only affects the Linux baseline's runqueue shuffling.
func NewScheduler(policy string, m MachineConfig, seed int64) (Scheduler, error) {
	switch policy {
	case PolicyLatestQuantum:
		return sched.NewLatestQuantum(m.NumCPUs, m.Bus.Capacity), nil
	case PolicyQuantaWindow:
		return sched.NewQuantaWindow(m.NumCPUs, m.Bus.Capacity), nil
	case PolicyEWMA:
		return sched.NewEWMAPolicy(m.NumCPUs, m.Bus.Capacity, 0.4), nil
	case PolicyOracle:
		return sched.NewOracle(m.NumCPUs, m.Bus.Capacity), nil
	case PolicyLinux:
		return sched.NewLinux(m.NumCPUs, seed), nil
	case PolicyGang:
		return sched.NewGang(m.NumCPUs), nil
	case PolicyRoundRobin:
		return sched.NewRoundRobin(m.NumCPUs, 0), nil
	case PolicyOptimal:
		return sched.NewOptimal(m.NumCPUs, m.Bus)
	default:
		return nil, fmt.Errorf("busaware: unknown policy %q (want latest, window, ewma, oracle, optimal, linux, gang or rr)", policy)
	}
}

// Policies lists the accepted policy names.
func Policies() []string {
	return []string{
		PolicyLatestQuantum, PolicyQuantaWindow, PolicyEWMA,
		PolicyOracle, PolicyOptimal, PolicyLinux, PolicyGang, PolicyRoundRobin,
	}
}

// EngineKind selects the simulation core a run executes on.
type EngineKind = sim.EngineKind

// The three simulation engines: the quantum-stepped reference core
// (default), the event-driven core that leaps across constant
// stretches, and shadow mode, which runs both and fails on any
// divergence in results or timeline telemetry.
const (
	EngineQuantum = sim.EngineQuantum
	EngineEvent   = sim.EngineEvent
	EngineShadow  = sim.EngineShadow
)

// ParseEngine maps a flag value to an engine: "" or "quantum",
// "event", or "shadow".
func ParseEngine(s string) (EngineKind, error) { return sim.ParseEngine(s) }

// Engines lists the accepted engine names.
func Engines() []string { return []string{"quantum", "event", "shadow"} }

// Run executes apps on machine m under s until every finite
// application completes, and returns per-application turnarounds and
// machine-wide statistics.
func Run(m MachineConfig, s Scheduler, apps []*App) (Result, error) {
	return sim.Run(sim.Config{Machine: m}, s, apps)
}

// RunTraced is Run with schedule recording: the returned Timeline
// renders as text (Timeline.Text) or exports to chrome://tracing
// (Timeline.WriteChromeTrace).
func RunTraced(m MachineConfig, s Scheduler, apps []*App) (Result, *Timeline, error) {
	tl := &trace.Timeline{NumCPUs: m.NumCPUs}
	res, err := sim.Run(sim.Config{Machine: m, Trace: tl}, s, apps)
	return res, tl, err
}

// RunWithTimeline is Run with per-quantum telemetry: the collector
// receives one aggregated sample per quantum (bus utilization and
// stretch, admission decisions, queue depth, fault events), windowed
// into bounded memory. See internal/timeline for the window schema.
func RunWithTimeline(m MachineConfig, s Scheduler, apps []*App, tl *TimelineCollector) (Result, error) {
	return sim.Run(sim.Config{Machine: m, Timeline: tl}, s, apps)
}

// NewTimelineCollector builds a timeline collector; the zero config
// selects the defaults (64-quantum windows, 1024-window ring, 0.9
// saturation threshold).
func NewTimelineCollector(cfg TimelineConfig) (*TimelineCollector, error) {
	return timeline.New(cfg)
}

// RunPolicy is the one-call convenience wrapper: build the named
// policy and run the workload on the paper machine.
func RunPolicy(policy string, apps []*App) (Result, error) {
	return RunPolicyEngine(EngineQuantum, policy, apps)
}

// RunEngine is Run on an explicit simulation engine. newSched rebuilds
// an equivalent scheduler for the shadow engine's verification core;
// it is required when engine is EngineShadow and may be nil otherwise.
func RunEngine(engine EngineKind, m MachineConfig, s Scheduler, newSched func() (Scheduler, error), apps []*App) (Result, error) {
	return sim.Run(sim.Config{Machine: m, Engine: engine, SchedulerFactory: newSched}, s, apps)
}

// RunEngineTraced is RunEngine with schedule recording. Under the
// shadow engine the trace belongs to the authoritative stepped run;
// the verification core replays untraced.
func RunEngineTraced(engine EngineKind, m MachineConfig, s Scheduler, newSched func() (Scheduler, error), apps []*App) (Result, *Timeline, error) {
	tl := &trace.Timeline{NumCPUs: m.NumCPUs}
	res, err := sim.Run(sim.Config{Machine: m, Engine: engine, Trace: tl, SchedulerFactory: newSched}, s, apps)
	return res, tl, err
}

// ParseLoadPattern parses the scenario grammar ("step:10s@4;
// spike:10s@4..60; step:20s@4") or a preset name into a pattern.
func ParseLoadPattern(s string) (*LoadPattern, error) { return scenario.ParsePattern(s) }

// LoadPatternPresets lists the built-in pattern names (diurnal,
// flashcrowd, stepstorm).
func LoadPatternPresets() []string { return scenario.Presets() }

// MaterializeChurn expands a churn spec into its deterministic
// arrival/departure schedule: the same spec always yields the same
// events, bit for bit.
func MaterializeChurn(spec ChurnSpec) (*ChurnSchedule, error) { return scenario.Materialize(spec) }

// RunScenario is RunEngine with a churn schedule overlaid: scenario
// instances arrive and depart mid-run while the base apps run to
// completion. A nil churn makes it identical to RunEngine.
func RunScenario(engine EngineKind, m MachineConfig, s Scheduler, newSched func() (Scheduler, error), apps []*App, churn *ChurnSchedule) (Result, error) {
	return sim.Run(sim.Config{Machine: m, Engine: engine, SchedulerFactory: newSched, Scenario: churn}, s, apps)
}

// RunScenarioTraced is RunScenario with schedule recording.
func RunScenarioTraced(engine EngineKind, m MachineConfig, s Scheduler, newSched func() (Scheduler, error), apps []*App, churn *ChurnSchedule) (Result, *Timeline, error) {
	tl := &trace.Timeline{NumCPUs: m.NumCPUs}
	res, err := sim.Run(sim.Config{Machine: m, Engine: engine, Trace: tl, SchedulerFactory: newSched, Scenario: churn}, s, apps)
	return res, tl, err
}

// RunPolicyEngine runs the named policy on the paper machine under the
// given engine, reconstructing the policy for shadow's second core.
func RunPolicyEngine(engine EngineKind, policy string, apps []*App) (Result, error) {
	m := PaperMachine()
	s, err := NewScheduler(policy, m, 1)
	if err != nil {
		return Result{}, err
	}
	return RunEngine(engine, m, s, func() (sched.Scheduler, error) {
		return NewScheduler(policy, m, 1)
	}, apps)
}
