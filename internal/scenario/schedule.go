package scenario

import (
	"fmt"
	"math"
	"math/rand"

	"busaware/internal/units"
	"busaware/internal/workload"
)

// integrationStep is the fixed grid both integrators (MeanLevel,
// Arrivals) and the churn materializer default to. One millisecond is
// three orders of magnitude finer than any pattern the evaluation
// uses, and a fixed step — rather than adaptive — is what makes every
// materialization bitwise-reproducible.
const integrationStep = units.Millisecond

// DefaultTick is the churn materializer's default control period: the
// pattern is sampled once per simulated second and the live population
// steered to the sampled level.
const DefaultTick = units.Second

// maxChurnEvents bounds a materialization so a degenerate
// pattern/tick combination cannot balloon memory.
const maxChurnEvents = 1 << 20

// maxArrivals bounds an open-loop arrival schedule the same way.
const maxArrivals = 1 << 20

// EventKind is a churn event's direction.
type EventKind int

const (
	// EventArrive submits a new application instance at Event.At.
	EventArrive EventKind = iota
	// EventDepart retires the instance at Event.At. Departing an
	// instance that already completed on its own is a no-op.
	EventDepart
)

func (k EventKind) String() string {
	if k == EventDepart {
		return "depart"
	}
	return "arrive"
}

// Event is one materialized churn event.
type Event struct {
	// At is the event time in simulated microseconds. Events are
	// sorted by At; ties process departures before arrivals.
	At units.Time
	// Kind is arrive or depart.
	Kind EventKind
	// Profile names the application profile (registry name).
	Profile string
	// Instance is the unique instance label, "<Profile>/s<seq>" with a
	// schedule-global sequence number — disjoint from the base
	// workload's "<Profile>#<n>" namespace.
	Instance string
}

// Schedule is a pattern materialized into concrete churn events: the
// artifact the simulator consumes. It is a pure function of the
// ChurnSpec that produced it — same spec, same bytes.
type Schedule struct {
	// Spec is the canonicalized input (Pattern rendered canonically,
	// Pool run-length encoded).
	Spec ChurnSpec
	// Events in time order.
	Events []Event
	// Horizon is the time of the final drain: every instance arranged
	// by the schedule has departed (or been told to) by this point.
	Horizon units.Time
}

// ChurnSpec parameterizes a churn materialization.
type ChurnSpec struct {
	// Pattern is the load pattern; its level is read as the target
	// number of live scenario instances.
	Pattern string `json:"pattern"`
	// Pool is the workload spec ("CG x3, BBMA") the materializer draws
	// profiles from; multiplicities weight the draw. Empty selects
	// DefaultPool.
	Pool string `json:"pool,omitempty"`
	// Seed drives the profile draws. Zero is a valid seed.
	Seed int64 `json:"seed,omitempty"`
	// TickUsec is the control period in simulated microseconds; zero
	// selects DefaultTick.
	TickUsec int64 `json:"tick_usec,omitempty"`
}

// DefaultPool is the profile pool used when ChurnSpec.Pool is empty: a
// bandwidth-diverse mix (low, high, antagonist).
const DefaultPool = "Volrend, CG, BBMA"

// Canonical renders the spec's canonical identity string — the form
// shared by the daemon's cache key and the gateway ring, so "diurnal"
// and its expansion, or "CG,CG" and "CG x2" pools, cache identically.
// The receiver must already be canonicalized (as Materialize returns
// it).
func (c ChurnSpec) Canonical() string {
	return fmt.Sprintf("pat=%s|pool=%s|seed=%d|tick=%d", c.Pattern, c.Pool, c.Seed, c.TickUsec)
}

// Materialize turns a churn spec into a concrete event schedule.
//
// Every tick, the pattern level (rounded to nearest) becomes the
// target live population: shortfalls arrive (profiles drawn from the
// seeded pool), excess departs youngest-first (LIFO — a flash crowd
// recedes in reverse arrival order). After the final tick everything
// still live is drained, so a schedule never leaves endless
// antagonists running forever.
//
// The result is a pure function of the spec: same pattern + pool +
// seed + tick ⇒ bitwise-identical events.
func Materialize(spec ChurnSpec) (*Schedule, error) {
	p, err := ParsePattern(spec.Pattern)
	if err != nil {
		return nil, err
	}
	pool := spec.Pool
	if pool == "" {
		pool = DefaultPool
	}
	slots, err := workload.ParseSpec(pool)
	if err != nil {
		return nil, fmt.Errorf("scenario: pool: %w", err)
	}
	tick := units.Time(spec.TickUsec)
	if tick < 0 {
		return nil, fmt.Errorf("scenario: negative tick")
	}
	if tick == 0 {
		tick = DefaultTick
	}
	horizon := p.Duration()
	if horizon <= 0 {
		return nil, fmt.Errorf("scenario: zero-duration pattern")
	}

	canon := ChurnSpec{
		Pattern:  p.String(),
		Pool:     workload.CanonicalSpec(slots),
		Seed:     spec.Seed,
		TickUsec: int64(tick),
	}
	sched := &Schedule{Spec: canon, Horizon: horizon}

	rng := rand.New(rand.NewSource(spec.Seed))
	type liveApp struct{ profile, instance string }
	var live []liveApp
	seq := 0
	emit := func(e Event) error {
		if len(sched.Events) >= maxChurnEvents {
			return fmt.Errorf("scenario: schedule exceeds %d events (pattern too long or tick too fine)", maxChurnEvents)
		}
		sched.Events = append(sched.Events, e)
		return nil
	}
	for t := units.Time(0); t <= horizon; t += tick {
		target := int(math.Floor(p.Level(t) + 0.5))
		// Departures first (ties in the event stream process the same
		// way), youngest first.
		for len(live) > target {
			last := live[len(live)-1]
			live = live[:len(live)-1]
			if err := emit(Event{At: t, Kind: EventDepart, Profile: last.profile, Instance: last.instance}); err != nil {
				return nil, err
			}
		}
		for len(live) < target {
			slot := slots[rng.Intn(len(slots))]
			seq++
			a := liveApp{profile: slot.Profile.Name, instance: fmt.Sprintf("%s/s%d", slot.Profile.Name, seq)}
			live = append(live, a)
			if err := emit(Event{At: t, Kind: EventArrive, Profile: a.profile, Instance: a.instance}); err != nil {
				return nil, err
			}
		}
	}
	// Final drain: the scenario ends with the pattern.
	for i := len(live) - 1; i >= 0; i-- {
		if err := emit(Event{At: horizon, Kind: EventDepart, Profile: live[i].profile, Instance: live[i].instance}); err != nil {
			return nil, err
		}
	}
	return sched, nil
}

// Arrivals materializes the pattern as an open-loop arrival schedule:
// the level is read as a request rate in requests per second (scaled
// by scale; pass 1 for the pattern as written), integrated on a fixed
// millisecond grid, and an arrival is emitted at each integer crossing
// of the cumulative integral. The schedule is a pure function of
// (pattern, scale) — no randomness — so same-seed load-driver reruns
// replay the identical request stream by construction.
//
// Offsets are quantized to the grid; a rate above 1000/s emits
// multiple arrivals on one grid point, which the driver issues
// back-to-back (the token-bucket burst).
func (p *Pattern) Arrivals(scale float64) []units.Time {
	if scale <= 0 || math.IsNaN(scale) || math.IsInf(scale, 0) {
		return nil
	}
	dur := p.Duration()
	var out []units.Time
	// crossEps absorbs accumulated float error so an exact-integral
	// pattern (20 rps x 10s) yields exactly its 200 arrivals instead of
	// 199-and-epsilon. Still deterministic: pure float arithmetic.
	const crossEps = 1e-9
	acc := 0.0
	next := 1.0
	stepSec := integrationStep.Seconds()
	for t := units.Time(0); t < dur; t += integrationStep {
		acc += p.Level(t) * scale * stepSec
		for acc+crossEps >= next {
			if len(out) >= maxArrivals {
				return out
			}
			out = append(out, t+integrationStep)
			next++
		}
	}
	return out
}
