package scenario

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"strings"
)

// Profile files name reusable patterns in a YAML subset (the module is
// dependency-free, so this is a hand-rolled line parser, not a YAML
// library — the subset below is the whole contract):
//
//	# comments and blank lines are ignored
//	profiles:
//	  - name: morning-rush
//	    pattern: "ramp:30s@2..40; step:20s@40"
//	  - name: overnight
//	    pattern: step:60s@2
//
// One top-level "profiles:" list; each entry is a "- " item with
// exactly the keys "name" and "pattern" (either order, name first by
// convention); values may be double- or single-quoted. Anything
// else — tabs, nested maps, flow syntax, unknown keys — is an error,
// loudly, rather than a silent misparse.

// LoadProfiles reads a profile file (see the format above) and returns
// the name -> pattern table for ParsePatternWith. Every pattern is
// validated at load time.
func LoadProfiles(path string) (map[string]string, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	m, err := ParseProfiles(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return m, nil
}

// ParseProfiles parses the profile format from r. See LoadProfiles.
func ParseProfiles(r io.Reader) (map[string]string, error) {
	profiles := map[string]string{}
	var (
		inList  bool
		name    string
		pattern string
		haveAny bool
	)
	flush := func(line int) error {
		if !haveAny {
			return nil
		}
		if name == "" {
			return fmt.Errorf("scenario: profiles: entry before line %d has no name", line)
		}
		if pattern == "" {
			return fmt.Errorf("scenario: profiles: profile %q has no pattern", name)
		}
		if _, dup := profiles[name]; dup {
			return fmt.Errorf("scenario: profiles: duplicate profile %q", name)
		}
		if _, err := ParsePattern(pattern); err != nil {
			return fmt.Errorf("scenario: profiles: profile %q: %w", name, err)
		}
		profiles[name] = pattern
		name, pattern, haveAny = "", "", false
		return nil
	}

	sc := bufio.NewScanner(r)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if strings.Contains(line, "\t") {
			return nil, fmt.Errorf("scenario: profiles: line %d: tabs are not allowed (use spaces)", lineNo)
		}
		if i := strings.IndexByte(line, '#'); i >= 0 && !insideQuote(line, i) {
			line = line[:i]
		}
		trimmed := strings.TrimSpace(line)
		if trimmed == "" {
			continue
		}
		switch {
		case trimmed == "profiles:":
			if inList {
				return nil, fmt.Errorf("scenario: profiles: line %d: duplicate 'profiles:' key", lineNo)
			}
			inList = true
		case strings.HasPrefix(trimmed, "- "):
			if !inList {
				return nil, fmt.Errorf("scenario: profiles: line %d: list item before 'profiles:' key", lineNo)
			}
			if err := flush(lineNo); err != nil {
				return nil, err
			}
			haveAny = true
			if err := setKV(strings.TrimPrefix(trimmed, "- "), &name, &pattern, lineNo); err != nil {
				return nil, err
			}
		case inList && haveAny:
			if err := setKV(trimmed, &name, &pattern, lineNo); err != nil {
				return nil, err
			}
		default:
			return nil, fmt.Errorf("scenario: profiles: line %d: unexpected %q", lineNo, trimmed)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if err := flush(lineNo + 1); err != nil {
		return nil, err
	}
	if !inList {
		return nil, fmt.Errorf("scenario: profiles: missing 'profiles:' key")
	}
	if len(profiles) == 0 {
		return nil, fmt.Errorf("scenario: profiles: empty profile list")
	}
	return profiles, nil
}

func setKV(s string, name, pattern *string, lineNo int) error {
	key, val, ok := strings.Cut(s, ":")
	if !ok {
		return fmt.Errorf("scenario: profiles: line %d: want 'key: value', got %q", lineNo, s)
	}
	key = strings.TrimSpace(key)
	val = unquote(strings.TrimSpace(val))
	switch key {
	case "name":
		if *name != "" {
			return fmt.Errorf("scenario: profiles: line %d: duplicate 'name'", lineNo)
		}
		if val == "" {
			return fmt.Errorf("scenario: profiles: line %d: empty name", lineNo)
		}
		*name = val
	case "pattern":
		if *pattern != "" {
			return fmt.Errorf("scenario: profiles: line %d: duplicate 'pattern'", lineNo)
		}
		if val == "" {
			return fmt.Errorf("scenario: profiles: line %d: empty pattern", lineNo)
		}
		*pattern = val
	default:
		return fmt.Errorf("scenario: profiles: line %d: unknown key %q (want name or pattern)", lineNo, key)
	}
	return nil
}

// unquote strips one pair of matched surrounding quotes. (Values keep
// any interior colons: setKV cuts the line at its first ':', which
// lies in the key, so "pattern: step:10s@4" parses intact.)
func unquote(s string) string {
	if len(s) >= 2 {
		if (s[0] == '"' && s[len(s)-1] == '"') || (s[0] == '\'' && s[len(s)-1] == '\'') {
			return s[1 : len(s)-1]
		}
	}
	return s
}

func insideQuote(line string, idx int) bool {
	inD, inS := false, false
	for i, r := range line {
		if i >= idx {
			break
		}
		switch r {
		case '"':
			if !inS {
				inD = !inD
			}
		case '\'':
			if !inD {
				inS = !inS
			}
		}
	}
	return inD || inS
}
