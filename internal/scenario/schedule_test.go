package scenario

import (
	"reflect"
	"strings"
	"testing"

	"busaware/internal/units"
)

func TestMaterializeDeterministic(t *testing.T) {
	spec := ChurnSpec{Pattern: "flashcrowd", Pool: "CG x2, BBMA", Seed: 7}
	a, err := Materialize(spec)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Materialize(spec)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same spec produced different schedules")
	}
	// A different seed draws a different profile sequence (flashcrowd
	// arrives dozens of instances; identical draws would be a frozen
	// RNG).
	c, err := Materialize(ChurnSpec{Pattern: "flashcrowd", Pool: "CG x2, BBMA", Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(a.Events, c.Events) {
		t.Fatal("different seeds produced identical schedules")
	}
}

func TestMaterializeCanonicalizesSpec(t *testing.T) {
	a, err := Materialize(ChurnSpec{Pattern: "diurnal", Pool: "CG, CG"})
	if err != nil {
		t.Fatal(err)
	}
	if a.Spec.Pattern != "sine:60s@10~8" {
		t.Fatalf("canonical pattern = %q", a.Spec.Pattern)
	}
	if a.Spec.Pool != "CG x2" {
		t.Fatalf("canonical pool = %q", a.Spec.Pool)
	}
	if a.Spec.TickUsec != int64(DefaultTick) {
		t.Fatalf("canonical tick = %d", a.Spec.TickUsec)
	}
	want := "pat=sine:60s@10~8|pool=CG x2|seed=0|tick=1000000"
	if got := a.Spec.Canonical(); got != want {
		t.Fatalf("Canonical() = %q, want %q", got, want)
	}
}

func TestMaterializePopulationTracksPattern(t *testing.T) {
	// step:3s@2; step:3s@5; step:3s@1 with 1s ticks: population must
	// hit 2, rise to 5, fall to 1, then drain to 0 at the horizon.
	sched, err := Materialize(ChurnSpec{Pattern: "step:3s@2; step:3s@5; step:3s@1", Pool: "CG", Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	live := map[string]bool{}
	pop := map[units.Time]int{}
	for _, e := range sched.Events {
		switch e.Kind {
		case EventArrive:
			if live[e.Instance] {
				t.Fatalf("instance %q arrived twice", e.Instance)
			}
			live[e.Instance] = true
		case EventDepart:
			if !live[e.Instance] {
				t.Fatalf("instance %q departed without arriving", e.Instance)
			}
			delete(live, e.Instance)
		}
		pop[e.At] = len(live)
	}
	if len(live) != 0 {
		t.Fatalf("%d instances never drained", len(live))
	}
	for _, tc := range []struct {
		at   units.Time
		want int
	}{
		{0, 2}, {3 * units.Second, 5}, {6 * units.Second, 1},
	} {
		if got := pop[tc.at]; got != tc.want {
			t.Fatalf("population after tick %v = %d, want %d", tc.at, got, tc.want)
		}
	}
	if got := pop[sched.Horizon]; got != 0 {
		t.Fatalf("population at horizon = %d, want 0 (drain)", got)
	}
	if sched.Horizon != 9*units.Second {
		t.Fatalf("horizon = %v, want 9s", sched.Horizon)
	}
}

func TestMaterializeDeparturesAreLIFO(t *testing.T) {
	sched, err := Materialize(ChurnSpec{Pattern: "step:2s@3; step:2s@1", Pool: "CG", Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	var arrived []string
	for _, e := range sched.Events {
		switch e.Kind {
		case EventArrive:
			arrived = append(arrived, e.Instance)
		case EventDepart:
			if len(arrived) == 0 {
				t.Fatal("departure before any arrival")
			}
			// Youngest-first: the departing instance is the most recent
			// arrival still live.
			last := arrived[len(arrived)-1]
			if e.Instance != last {
				t.Fatalf("depart %q, want youngest %q", e.Instance, last)
			}
			arrived = arrived[:len(arrived)-1]
		}
	}
}

func TestMaterializeEventsSorted(t *testing.T) {
	sched, err := Materialize(ChurnSpec{Pattern: "flashcrowd", Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(sched.Events) == 0 {
		t.Fatal("no events")
	}
	for i := 1; i < len(sched.Events); i++ {
		if sched.Events[i].At < sched.Events[i-1].At {
			t.Fatalf("events out of order at %d", i)
		}
	}
	for _, e := range sched.Events {
		if !strings.Contains(e.Instance, "/s") {
			t.Fatalf("instance %q not in the scenario namespace", e.Instance)
		}
	}
}

func TestMaterializeErrors(t *testing.T) {
	if _, err := Materialize(ChurnSpec{Pattern: "bogus"}); err == nil {
		t.Fatal("bad pattern must error")
	}
	if _, err := Materialize(ChurnSpec{Pattern: "diurnal", Pool: "NoSuchApp"}); err == nil {
		t.Fatal("bad pool must error")
	}
	if _, err := Materialize(ChurnSpec{Pattern: "diurnal", TickUsec: -1}); err == nil {
		t.Fatal("negative tick must error")
	}
}
