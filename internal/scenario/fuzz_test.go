package scenario

import (
	"testing"

	"busaware/internal/units"
)

// FuzzParsePattern asserts the parser's total-function contract: any
// input either errors or yields a pattern whose canonical form is a
// parseable fixed point with finite, bounded evaluation. Run in CI's
// fuzz-smoke job.
func FuzzParsePattern(f *testing.F) {
	seeds := []string{
		"step:10s@4",
		"ramp:10s@2..12; spike:5s@1..9",
		"sine:60s@10~8/20s + step:5s@1",
		"diurnal", "flashcrowd", "stepstorm",
		"step:10s@4 +", "warp:1s@1", "step:@", "sine:1s@1~", "",
		"step:1s@1e9", "ramp:9999h@0..1", "step:1ns@1",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, in string) {
		p, err := ParsePattern(in)
		if err != nil {
			return
		}
		canon := p.String()
		p2, err := ParsePattern(canon)
		if err != nil {
			t.Fatalf("canonical form %q of %q does not re-parse: %v", canon, in, err)
		}
		if got := p2.String(); got != canon {
			t.Fatalf("canonical form not a fixed point: %q -> %q", canon, got)
		}
		dur := p.Duration()
		if dur < 0 {
			t.Fatalf("negative duration %v from %q", dur, in)
		}
		for _, at := range []units.Time{0, dur / 3, dur, dur * 2} {
			v := p.Level(at)
			if v < 0 || v != v {
				t.Fatalf("Level(%v) = %v from %q", at, v, in)
			}
			if a, b := v, p2.Level(at); a != b {
				t.Fatalf("round-trip changes Level(%v): %v vs %v (input %q)", at, a, b, in)
			}
		}
	})
}
