package scenario

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestParseProfiles(t *testing.T) {
	const doc = `# scenario profiles
profiles:
  - name: morning-rush
    pattern: "ramp:30s@2..40; step:20s@40"
  - name: overnight
    pattern: step:60s@2
  - pattern: 'spike:10s@1..50'
    name: burst
`
	m, err := ParseProfiles(strings.NewReader(doc))
	if err != nil {
		t.Fatal(err)
	}
	if len(m) != 3 {
		t.Fatalf("profiles = %d, want 3", len(m))
	}
	if m["morning-rush"] != "ramp:30s@2..40; step:20s@40" {
		t.Fatalf("morning-rush = %q", m["morning-rush"])
	}
	if m["burst"] != "spike:10s@1..50" {
		t.Fatalf("burst = %q", m["burst"])
	}
	// The loaded table plugs straight into the pattern parser.
	p, err := ParsePatternWith("overnight + burst", m)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := p.String(), "step:60s@2 + spike:10s@1..50"; got != want {
		t.Fatalf("composed = %q, want %q", got, want)
	}
}

func TestParseProfilesErrors(t *testing.T) {
	cases := []struct {
		name string
		doc  string
		want string
	}{
		{"empty file", "", "missing 'profiles:'"},
		{"comment only", "# nothing here\n", "missing 'profiles:'"},
		{"empty list", "profiles:\n", "empty profile list"},
		{"item before key", "- name: a\n", "list item before"},
		{"no name", "profiles:\n  - pattern: step:1s@1\n", "has no name"},
		{"no pattern", "profiles:\n  - name: a\n", "has no pattern"},
		{"bad pattern", "profiles:\n  - name: a\n    pattern: warp:1s@1\n", "unknown kind"},
		{"unknown key", "profiles:\n  - name: a\n    rate: 4\n", "unknown key"},
		{"duplicate name key", "profiles:\n  - name: a\n    name: b\n", "duplicate 'name'"},
		{"duplicate profile", "profiles:\n  - name: a\n    pattern: step:1s@1\n  - name: a\n    pattern: step:1s@2\n", "duplicate profile"},
		{"tab indentation", "profiles:\n\t- name: a\n", "tabs are not allowed"},
		{"stray line", "profiles:\nwhat is this\n", "unexpected"},
		{"duplicate profiles key", "profiles:\nprofiles:\n", "duplicate 'profiles:'"},
		{"keyless line", "profiles:\n  - name: a\n    just-words\n", "want 'key: value'"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := ParseProfiles(strings.NewReader(tc.doc))
			if err == nil {
				t.Fatalf("want error containing %q, got nil", tc.want)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not contain %q", err, tc.want)
			}
		})
	}
}

func TestLoadProfiles(t *testing.T) {
	path := filepath.Join(t.TempDir(), "scenarios.yaml")
	if err := os.WriteFile(path, []byte("profiles:\n  - name: quiet\n    pattern: step:30s@2 # calm baseline\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	m, err := LoadProfiles(path)
	if err != nil {
		t.Fatal(err)
	}
	if m["quiet"] != "step:30s@2" {
		t.Fatalf("quiet = %q (comment not stripped?)", m["quiet"])
	}
	if _, err := LoadProfiles(filepath.Join(t.TempDir(), "missing.yaml")); err == nil {
		t.Fatal("missing file must error")
	}
}
