package scenario

import (
	"math"
	"strings"
	"testing"

	"busaware/internal/units"
)

func TestParsePatternErrors(t *testing.T) {
	cases := []struct {
		name string
		in   string
		want string // substring of the error
	}{
		{"empty", "", "empty track"},
		{"whitespace", "   ", "empty track"},
		{"empty track in sum", "step:1s@2 + ", "empty track"},
		{"bare word", "nonsense", "want kind:dur@params"},
		{"unknown kind", "warp:10s@4", "unknown kind"},
		{"missing params", "step:10s", "missing '@params'"},
		{"bad duration", "step:fast@4", "bad duration"},
		{"zero duration", "step:0s@4", "non-positive duration"},
		{"negative duration", "step:-5s@4", "out of range"},
		{"huge duration", "step:99999h@4", "out of range"},
		{"bad level", "step:10s@loud", "bad level"},
		{"negative level", "step:10s@-3", "out of range"},
		{"huge level", "step:10s@1e300", "out of range"},
		{"nan level", "step:10s@NaN", "bad level"},
		{"ramp missing to", "ramp:10s@4", "want @from..to"},
		{"ramp bad to", "ramp:10s@4..x", "bad level"},
		{"spike missing peak", "spike:10s@4", "want @from..to"},
		{"sine missing amp", "sine:10s@4", "want @mean~amp"},
		{"sine bad period", "sine:10s@4~2/zero", "bad duration"},
		{"sine zero period", "sine:10s@4~2/0s", "non-positive period"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := ParsePattern(tc.in)
			if err == nil {
				t.Fatalf("ParsePattern(%q): want error containing %q, got nil", tc.in, tc.want)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("ParsePattern(%q): error %q does not contain %q", tc.in, err, tc.want)
			}
		})
	}
}

func TestLevelInterpolation(t *testing.T) {
	const s = units.Second
	cases := []struct {
		name    string
		pattern string
		at      units.Time
		want    float64
	}{
		{"step holds", "step:10s@4", 5 * s, 4},
		{"step holds past end", "step:10s@4", 30 * s, 4},
		{"ramp start", "ramp:10s@2..12", 0, 2},
		{"ramp midpoint", "ramp:10s@2..12", 5 * s, 7},
		{"ramp holds end level past end", "ramp:10s@2..12", 20 * s, 12},
		{"spike base at start", "spike:10s@4..60", 0, 4},
		{"spike peak at midpoint", "spike:10s@4..60", 5 * s, 60},
		{"spike halfway up", "spike:10s@4..60", 2500 * units.Millisecond, 32},
		{"spike back to base", "spike:10s@4..60", 10 * s, 4},
		{"sine mean at start", "sine:60s@10~8", 0, 10},
		{"sine peak at quarter period", "sine:60s@10~8", 15 * s, 18},
		{"sine explicit period peak", "sine:60s@10~8/20s", 5 * s, 18},
		{"segments chain", "step:10s@4; ramp:10s@4..8", 15 * s, 6},
		{"tracks sum", "step:10s@4 + step:20s@3", 5 * s, 7},
		{"short track holds under long", "step:30s@4 + spike:10s@0..6", 20 * s, 4},
		{"negative time clamps", "ramp:10s@2..12", -5 * s, 2},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			p, err := ParsePattern(tc.pattern)
			if err != nil {
				t.Fatalf("ParsePattern(%q): %v", tc.pattern, err)
			}
			got := p.Level(tc.at)
			if math.Abs(got-tc.want) > 1e-9 {
				t.Fatalf("Level(%v) on %q = %v, want %v", tc.at, tc.pattern, got, tc.want)
			}
		})
	}
}

func TestSineClampsAtZero(t *testing.T) {
	p, err := ParsePattern("sine:40s@2~8")
	if err != nil {
		t.Fatal(err)
	}
	// Trough is mean-amp = -6, clamped to 0 at 3/4 period.
	if got := p.Level(30 * units.Second); got != 0 {
		t.Fatalf("sine trough = %v, want clamp to 0", got)
	}
}

func TestCanonicalRoundTrip(t *testing.T) {
	cases := []struct {
		in   string
		want string // canonical rendering
	}{
		{"step:10s@4", "step:10s@4"},
		{"step:10s@4;spike:10s@4..60", "step:10s@4; spike:10s@4..60"},
		{"step:10s@4 spike:10s@4..60", "step:10s@4; spike:10s@4..60"},
		{"ramp:1500ms@0..2.5", "ramp:1500ms@0..2.5"},
		{"sine:60s@10~8/60s", "sine:60s@10~8"},
		{"sine:60s@10~8/20s", "sine:60s@10~8/20s"},
		{"step:10s@4+step:5s@1", "step:10s@4 + step:5s@1"},
		{"diurnal", "sine:60s@10~8"},
		{"flashcrowd", "step:10s@4; spike:10s@4..60; step:20s@4"},
		{"stepstorm", "step:8s@2; step:8s@8; step:8s@16; step:8s@32; step:8s@4"},
		{"diurnal + step:5s@1", "sine:60s@10~8 + step:5s@1"},
	}
	for _, tc := range cases {
		p, err := ParsePattern(tc.in)
		if err != nil {
			t.Fatalf("ParsePattern(%q): %v", tc.in, err)
		}
		got := p.String()
		if got != tc.want {
			t.Fatalf("ParsePattern(%q).String() = %q, want %q", tc.in, got, tc.want)
		}
		// The canonical form must itself parse back to the same canonical
		// form (a fixed point), and to the same levels.
		p2, err := ParsePattern(got)
		if err != nil {
			t.Fatalf("canonical %q does not re-parse: %v", got, err)
		}
		if p2.String() != got {
			t.Fatalf("canonical form is not a fixed point: %q -> %q", got, p2.String())
		}
		for _, at := range []units.Time{0, units.Second, 7 * units.Second, p.Duration()} {
			if a, b := p.Level(at), p2.Level(at); a != b {
				t.Fatalf("round-trip of %q changes Level(%v): %v vs %v", tc.in, at, a, b)
			}
		}
	}
}

func TestPresetsAllParse(t *testing.T) {
	for _, name := range Presets() {
		p, err := ParsePattern(name)
		if err != nil {
			t.Fatalf("preset %q: %v", name, err)
		}
		if p.Duration() <= 0 {
			t.Fatalf("preset %q has zero duration", name)
		}
	}
}

func TestPhases(t *testing.T) {
	p, err := ParsePattern("flashcrowd")
	if err != nil {
		t.Fatal(err)
	}
	phases := p.Phases()
	if len(phases) != 3 {
		t.Fatalf("flashcrowd phases = %d, want 3", len(phases))
	}
	wantNames := []string{"step#0", "spike#1", "step#2"}
	for i, ph := range phases {
		if ph.Name != wantNames[i] {
			t.Fatalf("phase %d = %q, want %q", i, ph.Name, wantNames[i])
		}
	}
	if phases[1].Kind != SegSpike {
		t.Fatalf("phase 1 kind = %v, want spike", phases[1].Kind)
	}
	if phases[1].Start != 10*units.Second || phases[1].End != 20*units.Second {
		t.Fatalf("spike phase bounds = [%v, %v), want [10s, 20s)", phases[1].Start, phases[1].End)
	}
	if got := p.PhaseAt(15 * units.Second); got != 1 {
		t.Fatalf("PhaseAt(15s) = %d, want 1", got)
	}
	if got := p.PhaseAt(0); got != 0 {
		t.Fatalf("PhaseAt(0) = %d, want 0", got)
	}
	// Beyond the end: clamped to the last phase.
	if got := p.PhaseAt(10 * units.Second * 60); got != 2 {
		t.Fatalf("PhaseAt(beyond end) = %d, want 2", got)
	}
}

func TestParsePatternWithProfiles(t *testing.T) {
	profiles := map[string]string{"rush": "ramp:10s@2..40"}
	p, err := ParsePatternWith("rush + step:5s@1", profiles)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := p.String(), "ramp:10s@2..40 + step:5s@1"; got != want {
		t.Fatalf("got %q, want %q", got, want)
	}
	// Profiles shadow nothing built in and resolve one level deep only.
	if _, err := ParsePatternWith("rush", map[string]string{"rush": "alias"}); err == nil {
		t.Fatal("profile body that is itself a name must not resolve")
	}
}

func TestArrivalsDeterministicAndRateAccurate(t *testing.T) {
	p, err := ParsePattern("step:10s@20")
	if err != nil {
		t.Fatal(err)
	}
	a := p.Arrivals(1)
	b := p.Arrivals(1)
	if len(a) != len(b) {
		t.Fatalf("rerun lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("rerun diverges at %d: %v vs %v", i, a[i], b[i])
		}
	}
	// 20 rps for 10s = 200 arrivals, exactly (integer crossings of an
	// exact integral).
	if len(a) != 200 {
		t.Fatalf("arrivals = %d, want 200", len(a))
	}
	for i := 1; i < len(a); i++ {
		if a[i] < a[i-1] {
			t.Fatalf("arrivals not sorted at %d", i)
		}
	}
	if last := a[len(a)-1]; last > 10*units.Second {
		t.Fatalf("last arrival %v beyond pattern end", last)
	}
	// Scale doubles the count.
	if got := len(p.Arrivals(2)); got != 400 {
		t.Fatalf("Arrivals(2) = %d, want 400", got)
	}
	if got := p.Arrivals(0); got != nil {
		t.Fatalf("Arrivals(0) = %v, want nil", got)
	}
}

func TestMeanLevel(t *testing.T) {
	p, err := ParsePattern("ramp:10s@0..10")
	if err != nil {
		t.Fatal(err)
	}
	if got := p.MeanLevel(); math.Abs(got-5) > 0.1 {
		t.Fatalf("MeanLevel(ramp 0..10) = %v, want ~5", got)
	}
}
