// Package scenario turns static experiments into time-varying ones: a
// load-pattern DSL (ramp / sine / spike / step segments with linear
// interpolation, composable sums, named presets), a seeded
// deterministic Schedule that materializes a pattern into concrete
// arrival/departure events for the simulator, and an open-loop arrival
// schedule for the load driver.
//
// A pattern is a piecewise level function of time. The level is
// dimensionless: the simulator reads it as a target population of live
// scenario applications, the open-loop driver as a target request rate
// in requests per second. Time is unitless in the same way — the
// simulator interprets pattern time as simulated microseconds, the
// driver as wall-clock microseconds — so one pattern string drives
// both planes.
//
// The compact grammar, shared by CLI flags, HTTP requests and the YAML
// profile file (see profile.go):
//
//	pattern := track { '+' track }
//	track   := preset | seg { ';' seg }
//	seg     := "step:"  dur "@" level
//	         | "ramp:"  dur "@" from ".." to
//	         | "spike:" dur "@" base ".." peak
//	         | "sine:"  dur "@" mean "~" amp [ "/" period ]
//
// step holds a constant level; ramp interpolates linearly from..to;
// spike rises linearly base->peak at the segment midpoint and decays
// back (a triangle — the flash crowd); sine oscillates mean±amp with
// the given period (default: the segment duration). Durations use Go
// syntax ("30s", "500ms"). Tracks sum pointwise, each holding its
// final level beyond its own end, so a short spike track composes over
// a long diurnal baseline. Presets: diurnal, flashcrowd, stepstorm.
//
// Determinism contract: ParsePattern is a pure function of its input,
// Pattern.String renders the canonical form ("step:10s@4" and a
// preset expanding to it collide), and every materialization is a pure
// function of (pattern, seed), so the same seed and pattern always
// yield the bitwise-identical schedule.
package scenario

import (
	"fmt"
	"math"
	"strconv"
	"strings"
	"time"

	"busaware/internal/units"
)

// SegKind is a pattern segment's shape.
type SegKind int

const (
	// SegStep holds a constant level for the segment duration.
	SegStep SegKind = iota
	// SegRamp interpolates linearly From -> To.
	SegRamp
	// SegSpike rises linearly From -> To at the midpoint and decays
	// back to From — the flash-crowd triangle.
	SegSpike
	// SegSine oscillates From ± To with the given Period (From is the
	// mean, To the amplitude).
	SegSine
)

func (k SegKind) String() string {
	switch k {
	case SegStep:
		return "step"
	case SegRamp:
		return "ramp"
	case SegSpike:
		return "spike"
	case SegSine:
		return "sine"
	default:
		return fmt.Sprintf("seg(%d)", int(k))
	}
}

// Segment is one piece of a pattern track.
type Segment struct {
	Kind SegKind
	// Dur is the segment length (pattern time).
	Dur units.Time
	// From and To parameterize the shape: step uses From only; ramp
	// and spike interpolate From..To; sine reads From as the mean and
	// To as the amplitude.
	From, To float64
	// Period is the sine period; zero selects the segment duration.
	// Unused by the other kinds.
	Period units.Time
}

// level evaluates the segment at offset t in [0, Dur].
func (s Segment) level(t units.Time) float64 {
	switch s.Kind {
	case SegRamp:
		return s.From + (s.To-s.From)*frac(t, s.Dur)
	case SegSpike:
		f := frac(t, s.Dur)
		if f <= 0.5 {
			return s.From + (s.To-s.From)*(2*f)
		}
		return s.To + (s.From-s.To)*(2*f-1)
	case SegSine:
		period := s.Period
		if period <= 0 {
			period = s.Dur
		}
		v := s.From + s.To*math.Sin(2*math.Pi*float64(t)/float64(period))
		if v < 0 {
			v = 0
		}
		return v
	default: // SegStep
		return s.From
	}
}

// end returns the segment's final level — what a track holds after it
// runs out of segments.
func (s Segment) end() float64 { return s.level(s.Dur) }

func frac(t, dur units.Time) float64 {
	if dur <= 0 {
		return 0
	}
	f := float64(t) / float64(dur)
	if f < 0 {
		return 0
	}
	if f > 1 {
		return 1
	}
	return f
}

// Track is one segment list; a Pattern sums one or more tracks.
type Track struct {
	Segments []Segment
}

// Duration is the track's total length.
func (tr Track) Duration() units.Time {
	var d units.Time
	for _, s := range tr.Segments {
		d += s.Dur
	}
	return d
}

// Level evaluates the track at time t. Beyond the final segment the
// track holds its final level, so summed tracks of different lengths
// compose without cliffs.
func (tr Track) Level(t units.Time) float64 {
	if len(tr.Segments) == 0 {
		return 0
	}
	if t < 0 {
		t = 0
	}
	for _, s := range tr.Segments {
		if t < s.Dur {
			return s.level(t)
		}
		t -= s.Dur
	}
	return tr.Segments[len(tr.Segments)-1].end()
}

// Pattern is a parsed load pattern: the pointwise sum of its tracks.
type Pattern struct {
	Tracks []Track
}

// Duration is the longest track's length — the scenario horizon.
func (p *Pattern) Duration() units.Time {
	var d units.Time
	for _, tr := range p.Tracks {
		if td := tr.Duration(); td > d {
			d = td
		}
	}
	return d
}

// Level evaluates the pattern at time t (the sum of its tracks,
// clamped at zero).
func (p *Pattern) Level(t units.Time) float64 {
	var v float64
	for _, tr := range p.Tracks {
		v += tr.Level(t)
	}
	if v < 0 {
		v = 0
	}
	return v
}

// MeanLevel is the pattern's time-averaged level over its duration,
// sampled at millisecond resolution (the same grid Arrivals
// integrates on).
func (p *Pattern) MeanLevel() float64 {
	dur := p.Duration()
	if dur <= 0 {
		return 0
	}
	step := integrationStep
	if step > dur {
		step = dur
	}
	var sum float64
	n := 0
	for t := units.Time(0); t < dur; t += step {
		sum += p.Level(t)
		n++
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// Phase is one labeled stretch of the pattern's primary (first) track
// — the reporting granularity for per-phase load accounting.
type Phase struct {
	// Name is "<kind>#<index>", e.g. "spike#1".
	Name string
	Kind SegKind
	// Start and End bound the phase in pattern time; the final phase's
	// End extends to the whole pattern's duration.
	Start, End units.Time
}

// Phases labels the primary track's segments. Composed patterns are
// phased by their first track: the baseline defines the episode
// structure, overlays ride on it.
func (p *Pattern) Phases() []Phase {
	if len(p.Tracks) == 0 {
		return nil
	}
	var out []Phase
	var at units.Time
	for i, s := range p.Tracks[0].Segments {
		out = append(out, Phase{
			Name:  fmt.Sprintf("%s#%d", s.Kind, i),
			Kind:  s.Kind,
			Start: at,
			End:   at + s.Dur,
		})
		at += s.Dur
	}
	if n := len(out); n > 0 {
		if d := p.Duration(); d > out[n-1].End {
			out[n-1].End = d
		}
	}
	return out
}

// PhaseAt returns the index into Phases covering time t (the last
// phase for t beyond the end), or -1 for an empty pattern.
func (p *Pattern) PhaseAt(t units.Time) int {
	phases := p.Phases()
	if len(phases) == 0 {
		return -1
	}
	for i, ph := range phases {
		if t < ph.End {
			return i
		}
	}
	return len(phases) - 1
}

// String renders the canonical form: segments joined by "; ", tracks
// by " + ", durations in the shortest exact unit, levels via Go's
// shortest float encoding. Presets render expanded, so a preset and
// its expansion canonicalize — and cache — identically.
func (p *Pattern) String() string {
	var tracks []string
	for _, tr := range p.Tracks {
		var segs []string
		for _, s := range tr.Segments {
			segs = append(segs, s.String())
		}
		tracks = append(tracks, strings.Join(segs, "; "))
	}
	return strings.Join(tracks, " + ")
}

// String renders the segment in the canonical grammar.
func (s Segment) String() string {
	switch s.Kind {
	case SegRamp, SegSpike:
		return fmt.Sprintf("%s:%s@%s..%s", s.Kind, formatDur(s.Dur), formatLevel(s.From), formatLevel(s.To))
	case SegSine:
		if s.Period > 0 && s.Period != s.Dur {
			return fmt.Sprintf("sine:%s@%s~%s/%s", formatDur(s.Dur), formatLevel(s.From), formatLevel(s.To), formatDur(s.Period))
		}
		return fmt.Sprintf("sine:%s@%s~%s", formatDur(s.Dur), formatLevel(s.From), formatLevel(s.To))
	default:
		return fmt.Sprintf("step:%s@%s", formatDur(s.Dur), formatLevel(s.From))
	}
}

func formatDur(d units.Time) string {
	switch {
	case d >= units.Second && d%units.Second == 0:
		return fmt.Sprintf("%ds", int64(d/units.Second))
	case d >= units.Millisecond && d%units.Millisecond == 0:
		return fmt.Sprintf("%dms", int64(d/units.Millisecond))
	default:
		return fmt.Sprintf("%dus", int64(d))
	}
}

func formatLevel(v float64) string {
	// '+' is the track separator, so a canonical level must never
	// render an explicit plus exponent: "1e+09" would split mid-float
	// on re-parse. "1e9" is equivalent and ParseFloat-valid.
	return strings.ReplaceAll(strconv.FormatFloat(v, 'g', -1, 64), "e+", "e")
}

// Presets name the episode shapes the evaluation leans on. Levels are
// calibrated for both planes: as open-loop request rates they overload
// a small-pool daemon only during the peaks; as churn populations they
// swing a 4-CPU machine between idle and heavy oversubscription.
var presets = map[string]string{
	// diurnal compresses a day into a minute: a sinusoidal swing
	// between a quiet trough and a busy peak.
	"diurnal": "sine:60s@10~8",
	// flashcrowd is a calm baseline, a sharp triangular spike to 15x,
	// and a long recovery tail — the 429/backpressure stress episode.
	"flashcrowd": "step:10s@4; spike:10s@4..60; step:20s@4",
	// stepstorm is a staircase of abrupt level shifts ending in a
	// drop — the regime changes that destabilize warmup-dependent
	// policies.
	"stepstorm": "step:8s@2; step:8s@8; step:8s@16; step:8s@32; step:8s@4",
}

// Presets lists the built-in pattern names, sorted.
func Presets() []string {
	return []string{"diurnal", "flashcrowd", "stepstorm"}
}

// maxSegments bounds a parse so fuzzed inputs cannot balloon memory.
const maxSegments = 1024

// ParsePattern parses the compact grammar (see the package comment).
// Preset names resolve to their expansions; profiles loaded from a
// YAML file resolve via ParsePatternWith.
func ParsePattern(s string) (*Pattern, error) {
	return ParsePatternWith(s, nil)
}

// ParsePatternWith is ParsePattern with an extra profile table
// (name -> pattern string, e.g. from LoadProfiles) consulted before
// the built-in presets. Profile values must not themselves be profile
// names; one level of indirection keeps resolution total.
func ParsePatternWith(s string, profiles map[string]string) (*Pattern, error) {
	p := &Pattern{}
	nsegs := 0
	for _, rawTrack := range strings.Split(s, "+") {
		rawTrack = strings.TrimSpace(rawTrack)
		if rawTrack == "" {
			return nil, fmt.Errorf("scenario: empty track in pattern %q", s)
		}
		if body, ok := profiles[rawTrack]; ok {
			sub, err := ParsePatternWith(body, nil)
			if err != nil {
				return nil, fmt.Errorf("scenario: profile %q: %w", rawTrack, err)
			}
			p.Tracks = append(p.Tracks, sub.Tracks...)
			continue
		}
		if body, ok := presets[rawTrack]; ok {
			sub, err := ParsePatternWith(body, nil)
			if err != nil {
				return nil, fmt.Errorf("scenario: preset %q: %w", rawTrack, err)
			}
			p.Tracks = append(p.Tracks, sub.Tracks...)
			continue
		}
		var tr Track
		for _, rawSeg := range splitSegs(rawTrack) {
			seg, err := parseSegment(rawSeg)
			if err != nil {
				return nil, err
			}
			tr.Segments = append(tr.Segments, seg)
			if nsegs++; nsegs > maxSegments {
				return nil, fmt.Errorf("scenario: pattern exceeds %d segments", maxSegments)
			}
		}
		if len(tr.Segments) == 0 {
			return nil, fmt.Errorf("scenario: track %q has no segments", rawTrack)
		}
		p.Tracks = append(p.Tracks, tr)
	}
	if len(p.Tracks) == 0 {
		return nil, fmt.Errorf("scenario: empty pattern")
	}
	return p, nil
}

// splitSegs splits a track into segment tokens on ';' or whitespace
// (both accepted on input; ';' is canonical).
func splitSegs(track string) []string {
	var out []string
	for _, part := range strings.FieldsFunc(track, func(r rune) bool {
		return r == ';' || r == ' ' || r == '\t'
	}) {
		if part = strings.TrimSpace(part); part != "" {
			out = append(out, part)
		}
	}
	return out
}

func parseSegment(tok string) (Segment, error) {
	kind, rest, ok := strings.Cut(tok, ":")
	if !ok {
		return Segment{}, fmt.Errorf("scenario: segment %q: want kind:dur@params (or a preset name)", tok)
	}
	durStr, params, ok := strings.Cut(rest, "@")
	if !ok {
		return Segment{}, fmt.Errorf("scenario: segment %q: missing '@params'", tok)
	}
	dur, err := parseDur(durStr)
	if err != nil {
		return Segment{}, fmt.Errorf("scenario: segment %q: %w", tok, err)
	}
	if dur <= 0 {
		return Segment{}, fmt.Errorf("scenario: segment %q: non-positive duration", tok)
	}
	seg := Segment{Dur: dur}
	switch kind {
	case "step":
		seg.Kind = SegStep
		if seg.From, err = parseLevel(params); err != nil {
			return Segment{}, fmt.Errorf("scenario: segment %q: %w", tok, err)
		}
	case "ramp", "spike":
		seg.Kind = SegRamp
		if kind == "spike" {
			seg.Kind = SegSpike
		}
		from, to, ok := strings.Cut(params, "..")
		if !ok {
			return Segment{}, fmt.Errorf("scenario: segment %q: want @from..to", tok)
		}
		if seg.From, err = parseLevel(from); err != nil {
			return Segment{}, fmt.Errorf("scenario: segment %q: %w", tok, err)
		}
		if seg.To, err = parseLevel(to); err != nil {
			return Segment{}, fmt.Errorf("scenario: segment %q: %w", tok, err)
		}
	case "sine":
		seg.Kind = SegSine
		mean, rest, ok := strings.Cut(params, "~")
		if !ok {
			return Segment{}, fmt.Errorf("scenario: segment %q: want @mean~amp[/period]", tok)
		}
		amp := rest
		if a, per, hasPer := strings.Cut(rest, "/"); hasPer {
			amp = a
			if seg.Period, err = parseDur(per); err != nil {
				return Segment{}, fmt.Errorf("scenario: segment %q: %w", tok, err)
			}
			if seg.Period <= 0 {
				return Segment{}, fmt.Errorf("scenario: segment %q: non-positive period", tok)
			}
		}
		if seg.From, err = parseLevel(mean); err != nil {
			return Segment{}, fmt.Errorf("scenario: segment %q: %w", tok, err)
		}
		if seg.To, err = parseLevel(amp); err != nil {
			return Segment{}, fmt.Errorf("scenario: segment %q: %w", tok, err)
		}
	default:
		return Segment{}, fmt.Errorf("scenario: segment %q: unknown kind %q (want step, ramp, spike or sine)", tok, kind)
	}
	return seg, nil
}

// maxPatternDur caps a single segment (and hence, with maxSegments,
// the whole pattern) so fuzzed durations cannot overflow Time math.
const maxPatternDur = 365 * 24 * time.Hour

func parseDur(s string) (units.Time, error) {
	d, err := time.ParseDuration(s)
	if err != nil {
		return 0, fmt.Errorf("bad duration %q", s)
	}
	if d < 0 || d > maxPatternDur {
		return 0, fmt.Errorf("duration %q out of range", s)
	}
	return units.Time(d / time.Microsecond), nil
}

func parseLevel(s string) (float64, error) {
	v, err := strconv.ParseFloat(strings.TrimSpace(s), 64)
	if err != nil || math.IsNaN(v) || math.IsInf(v, 0) {
		return 0, fmt.Errorf("bad level %q", s)
	}
	if v < 0 || v > 1e9 {
		return 0, fmt.Errorf("level %q out of range [0, 1e9]", s)
	}
	return v, nil
}
