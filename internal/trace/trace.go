// Package trace records scheduling timelines: which thread occupied
// which processor during every quantum, with bus statistics attached.
// Timelines render as text (one lane per processor) or export in the
// Chrome trace-event JSON format, which chrome://tracing and Perfetto
// load directly — handy for eyeballing what a policy actually did.
package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"

	"busaware/internal/units"
)

// Slice is one thread's occupancy of one CPU for one interval.
type Slice struct {
	CPU      int
	Start    units.Time
	Duration units.Time
	// Label identifies the occupant, e.g. "CG#1/0".
	Label string
	// Speed is the thread's mean progress fraction during the slice.
	Speed float64
	// Migrated marks slices that began with a migration.
	Migrated bool
}

// QuantumStat carries machine-wide per-quantum annotations.
type QuantumStat struct {
	Start       units.Time
	Duration    units.Time
	Utilization float64
	Served      units.Rate
}

// Timeline accumulates slices. The zero value is ready to use.
type Timeline struct {
	NumCPUs int
	slices  []Slice
	stats   []QuantumStat
}

// Record appends one slice.
func (t *Timeline) Record(s Slice) {
	t.slices = append(t.slices, s)
	if s.CPU >= t.NumCPUs {
		t.NumCPUs = s.CPU + 1
	}
}

// RecordQuantum appends machine-wide stats for one quantum.
func (t *Timeline) RecordQuantum(q QuantumStat) {
	t.stats = append(t.stats, q)
}

// Len returns the number of recorded slices.
func (t *Timeline) Len() int { return len(t.slices) }

// Slices returns the recorded slices in recording order.
func (t *Timeline) Slices() []Slice {
	return append([]Slice(nil), t.slices...)
}

// Span returns the earliest start and latest end across all slices.
func (t *Timeline) Span() (start, end units.Time) {
	if len(t.slices) == 0 {
		return 0, 0
	}
	start = t.slices[0].Start
	for _, s := range t.slices {
		if s.Start < start {
			start = s.Start
		}
		if e := s.Start + s.Duration; e > end {
			end = e
		}
	}
	return start, end
}

// Text renders an ASCII timeline: one lane per CPU, one column per
// quantum (the most common slice duration). Long labels are
// abbreviated to their first letters plus instance digit.
func (t *Timeline) Text() string {
	if len(t.slices) == 0 {
		return "(empty timeline)\n"
	}
	start, end := t.Span()
	// Column width = the smallest slice duration (quantum).
	col := t.slices[0].Duration
	for _, s := range t.slices {
		if s.Duration < col && s.Duration > 0 {
			col = s.Duration
		}
	}
	if col <= 0 {
		return "(degenerate timeline)\n"
	}
	ncols := int((end - start + col - 1) / col)
	if ncols > 200 {
		ncols = 200 // keep terminals usable
	}
	lanes := make([][]string, t.NumCPUs)
	for i := range lanes {
		lanes[i] = make([]string, ncols)
		for j := range lanes[i] {
			lanes[i][j] = "...."
		}
	}
	for _, s := range t.slices {
		c0 := int((s.Start - start) / col)
		span := int((s.Duration + col - 1) / col)
		for j := c0; j < c0+span && j < ncols; j++ {
			lanes[s.CPU][j] = abbrev(s.Label)
		}
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "timeline %s..%s, column = %s\n", start, end, col)
	for cpu, lane := range lanes {
		fmt.Fprintf(&sb, "cpu%d ", cpu)
		sb.WriteString(strings.Join(lane, " "))
		sb.WriteByte('\n')
	}
	return sb.String()
}

// abbrev shortens "Radiosity#1/0" to "Ra10"-style 4-char cells.
func abbrev(label string) string {
	name := label
	inst, thread := "", ""
	if i := strings.IndexByte(label, '#'); i >= 0 {
		name = label[:i]
		rest := label[i+1:]
		if j := strings.IndexByte(rest, '/'); j >= 0 {
			inst, thread = rest[:j], rest[j+1:]
		} else {
			inst = rest
		}
	}
	head := name
	if len(head) > 2 {
		head = head[:2]
	}
	cell := head + inst + thread
	if len(cell) > 4 {
		cell = cell[:4]
	}
	for len(cell) < 4 {
		cell += " "
	}
	return cell
}

// chromeEvent is one Chrome trace-event ("X" = complete event).
type chromeEvent struct {
	Name string            `json:"name"`
	Cat  string            `json:"cat"`
	Ph   string            `json:"ph"`
	TS   int64             `json:"ts"`  // microseconds
	Dur  int64             `json:"dur"` // microseconds
	PID  int               `json:"pid"`
	TID  int               `json:"tid"`
	Args map[string]string `json:"args,omitempty"`
}

// WriteChromeTrace writes the timeline in the Chrome trace-event JSON
// array format (load in chrome://tracing or Perfetto). Each CPU is a
// thread lane of process 1; quantum stats go to a counter-like lane.
func (t *Timeline) WriteChromeTrace(w io.Writer) error {
	events := make([]chromeEvent, 0, len(t.slices)+len(t.stats))
	for _, s := range t.slices {
		args := map[string]string{"speed": fmt.Sprintf("%.3f", s.Speed)}
		if s.Migrated {
			args["migrated"] = "true"
		}
		events = append(events, chromeEvent{
			Name: s.Label, Cat: "cpu", Ph: "X",
			TS: int64(s.Start), Dur: int64(s.Duration),
			PID: 1, TID: s.CPU + 1, Args: args,
		})
	}
	for _, q := range t.stats {
		events = append(events, chromeEvent{
			Name: "bus", Cat: "bus", Ph: "X",
			TS: int64(q.Start), Dur: int64(q.Duration),
			PID: 1, TID: 100,
			Args: map[string]string{
				"utilization": fmt.Sprintf("%.3f", q.Utilization),
				"served":      fmt.Sprintf("%.2f", float64(q.Served)),
			},
		})
	}
	sort.Slice(events, func(i, j int) bool { return events[i].TS < events[j].TS })
	enc := json.NewEncoder(w)
	return enc.Encode(events)
}
