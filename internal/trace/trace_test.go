package trace

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"busaware/internal/units"
)

func sampleTimeline() *Timeline {
	t := &Timeline{}
	q := 200 * units.Millisecond
	t.Record(Slice{CPU: 0, Start: 0, Duration: q, Label: "CG#1/0", Speed: 0.9})
	t.Record(Slice{CPU: 1, Start: 0, Duration: q, Label: "CG#1/1", Speed: 0.9})
	t.Record(Slice{CPU: 2, Start: 0, Duration: q, Label: "BBMA#1/0", Speed: 0.4})
	t.Record(Slice{CPU: 0, Start: q, Duration: q, Label: "BBMA#2/0", Speed: 0.4, Migrated: true})
	t.RecordQuantum(QuantumStat{Start: 0, Duration: q, Utilization: 0.9, Served: 27})
	return t
}

func TestTimelineBasics(t *testing.T) {
	tl := sampleTimeline()
	if tl.Len() != 4 {
		t.Fatalf("len = %d", tl.Len())
	}
	if tl.NumCPUs != 3 {
		t.Errorf("NumCPUs = %d, want 3", tl.NumCPUs)
	}
	start, end := tl.Span()
	if start != 0 || end != 400*units.Millisecond {
		t.Errorf("span = %v..%v", start, end)
	}
	if got := len(tl.Slices()); got != 4 {
		t.Errorf("Slices() = %d", got)
	}
}

func TestEmptyTimeline(t *testing.T) {
	tl := &Timeline{}
	if s, e := tl.Span(); s != 0 || e != 0 {
		t.Error("empty span should be zero")
	}
	if !strings.Contains(tl.Text(), "empty") {
		t.Error("empty text missing marker")
	}
	var buf bytes.Buffer
	if err := tl.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var events []map[string]interface{}
	if err := json.Unmarshal(buf.Bytes(), &events); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	if len(events) != 0 {
		t.Errorf("empty timeline produced %d events", len(events))
	}
}

func TestTextRendering(t *testing.T) {
	out := sampleTimeline().Text()
	for _, want := range []string{"cpu0", "cpu1", "cpu2", "CG1"} {
		if !strings.Contains(out, want) {
			t.Errorf("text missing %q:\n%s", want, out)
		}
	}
	// Idle cells are dotted.
	if !strings.Contains(out, "....") {
		t.Errorf("idle cells missing:\n%s", out)
	}
}

func TestAbbrev(t *testing.T) {
	tests := map[string]string{
		"CG#1/0":        "CG10",
		"Radiosity#2/1": "Ra21",
		"BBMA#1/0":      "BB10",
		"X":             "X   ",
	}
	for in, want := range tests {
		if got := abbrev(in); got != want {
			t.Errorf("abbrev(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestChromeTraceExport(t *testing.T) {
	var buf bytes.Buffer
	if err := sampleTimeline().WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var events []struct {
		Name string            `json:"name"`
		Ph   string            `json:"ph"`
		TS   int64             `json:"ts"`
		Dur  int64             `json:"dur"`
		TID  int               `json:"tid"`
		Args map[string]string `json:"args"`
	}
	if err := json.Unmarshal(buf.Bytes(), &events); err != nil {
		t.Fatalf("invalid chrome trace JSON: %v", err)
	}
	if len(events) != 5 { // 4 slices + 1 bus stat
		t.Fatalf("events = %d, want 5", len(events))
	}
	// Sorted by timestamp.
	for i := 1; i < len(events); i++ {
		if events[i].TS < events[i-1].TS {
			t.Error("events not sorted by ts")
		}
	}
	var sawMigrated, sawBus bool
	for _, e := range events {
		if e.Ph != "X" {
			t.Errorf("phase = %q, want X", e.Ph)
		}
		if e.Args["migrated"] == "true" {
			sawMigrated = true
		}
		if e.Name == "bus" {
			sawBus = true
			if e.Args["utilization"] == "" {
				t.Error("bus event missing utilization")
			}
		}
	}
	if !sawMigrated {
		t.Error("migration annotation lost")
	}
	if !sawBus {
		t.Error("bus lane missing")
	}
}

func TestTextColumnCap(t *testing.T) {
	tl := &Timeline{}
	// 1000 quanta would be 1000 columns; the renderer caps at 200.
	for i := 0; i < 1000; i++ {
		tl.Record(Slice{CPU: 0, Start: units.Time(i) * 1000, Duration: 1000, Label: "A#1/0"})
	}
	out := tl.Text()
	lines := strings.Split(out, "\n")
	if len(lines) < 2 {
		t.Fatal("no lanes")
	}
	if cols := strings.Count(lines[1], "A"); cols > 250 {
		t.Errorf("renderer produced %d columns, want capped", cols)
	}
}
