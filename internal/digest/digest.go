// Package digest computes the serving plane's end-to-end
// response-integrity digests. Every byte the backends emit is
// deterministic (the response caches replay byte-identical bodies), so
// a cheap non-cryptographic checksum is enough to detect the failure
// class TLS-less internal hops cannot: bytes corrupted in flight
// arriving inside a transport-valid response. The backend stamps the
// digest at the source, the gateway verifies before forwarding (a
// mismatch is retried like a connection error, never returned), and
// smpload verifies again at the client so the whole path is covered.
//
// The digest is FNV-64a rendered as "fnv64a:<16 hex digits>". Sweep
// lines additionally fold the cell's status and index into the hash so
// a corrupted status or index digit — which would otherwise remap a
// valid body onto the wrong cell — is also caught.
package digest

import (
	"fmt"
	"hash/fnv"
	"strconv"
)

// Header is the HTTP response header carrying the body digest on
// /v1/simulate responses.
const Header = "X-Content-Digest"

// prefix names the algorithm so the scheme can evolve without
// ambiguity; verifiers skip digests they do not recognize.
const prefix = "fnv64a:"

// Sum digests a whole response body.
func Sum(body []byte) string {
	h := fnv.New64a()
	h.Write(body)
	return fmt.Sprintf("%s%016x", prefix, h.Sum64())
}

// SumLine digests one sweep NDJSON line: the cell's status and index
// are folded in ahead of the body so corruption of any of the three is
// detected. The index must be the one the receiver sees — the gateway
// verifies against the backend's sub-sweep index, then re-stamps with
// the client's batch index before forwarding.
func SumLine(status, index int, body []byte) string {
	h := fnv.New64a()
	h.Write(strconv.AppendInt(nil, int64(status), 10))
	h.Write([]byte{'|'})
	h.Write(strconv.AppendInt(nil, int64(index), 10))
	h.Write([]byte{'|'})
	h.Write(body)
	return fmt.Sprintf("%s%016x", prefix, h.Sum64())
}

// Verify reports whether got matches the digest of body. An empty or
// unrecognized digest verifies trivially — absence of a digest is not
// corruption (older peers and test fakes do not stamp one).
func Verify(got string, body []byte) bool {
	if !known(got) {
		return true
	}
	return got == Sum(body)
}

// VerifyLine is Verify for sweep lines.
func VerifyLine(got string, status, index int, body []byte) bool {
	if !known(got) {
		return true
	}
	return got == SumLine(status, index, body)
}

// known reports whether d is a digest this package can check.
func known(d string) bool {
	return len(d) == len(prefix)+16 && d[:len(prefix)] == prefix
}
