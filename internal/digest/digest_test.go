package digest

import (
	"strings"
	"testing"
)

func TestSumFormat(t *testing.T) {
	d := Sum([]byte("hello"))
	if !strings.HasPrefix(d, "fnv64a:") {
		t.Fatalf("digest %q missing algorithm prefix", d)
	}
	if len(d) != len("fnv64a:")+16 {
		t.Fatalf("digest %q not fixed-width", d)
	}
	if d != Sum([]byte("hello")) {
		t.Fatal("digest not deterministic")
	}
	if d == Sum([]byte("hellp")) {
		t.Fatal("single-byte change not reflected in digest")
	}
}

func TestVerify(t *testing.T) {
	body := []byte(`{"ok":true}` + "\n")
	if !Verify(Sum(body), body) {
		t.Fatal("digest of body must verify")
	}
	if Verify(Sum(body), append([]byte("x"), body...)) {
		t.Fatal("digest must not verify a different body")
	}
	// Absence and unknown schemes verify trivially: not corruption.
	if !Verify("", body) {
		t.Fatal("empty digest must pass (peer did not stamp one)")
	}
	if !Verify("sha256:abcdef", body) {
		t.Fatal("unknown scheme must pass")
	}
	// Same length as a real digest but wrong scheme name.
	if !Verify("xnv64a:0123456789abcdef", body) {
		t.Fatal("unrecognized prefix must pass")
	}
	// A recognized-scheme digest with wrong value must fail.
	if Verify("fnv64a:0000000000000000", body) {
		t.Fatal("recognized but wrong digest must fail")
	}
}

func TestSumLineCoversStatusAndIndex(t *testing.T) {
	body := []byte(`{"policy":"linux"}`)
	d := SumLine(200, 7, body)
	if !VerifyLine(d, 200, 7, body) {
		t.Fatal("line digest must verify")
	}
	if VerifyLine(d, 500, 7, body) {
		t.Fatal("status change must break the line digest")
	}
	if VerifyLine(d, 200, 8, body) {
		t.Fatal("index change must break the line digest")
	}
	if VerifyLine(d, 200, 7, body[:len(body)-1]) {
		t.Fatal("body change must break the line digest")
	}
	// Field separation: (status=2, idx=27) must differ from (22, 7).
	if SumLine(2, 27, body) == SumLine(22, 7, body) {
		t.Fatal("status/index concatenation must be unambiguous")
	}
}

func TestLineDigestDiffersFromBodyDigest(t *testing.T) {
	body := []byte("abc")
	if Sum(body) == SumLine(200, 0, body) {
		t.Fatal("line digest must not collide with plain body digest")
	}
}
