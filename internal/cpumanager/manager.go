package cpumanager

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"sort"
	"sync"

	"busaware/internal/faults"
	"busaware/internal/units"
)

// The wire protocol. The paper's applications send a "connection"
// message over a standard UNIX socket; the manager answers with the
// shared-arena parameters and how often the bus transaction rate is
// expected to be updated (twice per scheduling quantum). Thread
// creation and destruction are intercepted by the run-time library and
// reported over the same connection.

// Op names accepted by the manager.
const (
	OpConnect       = "connect"
	OpDisconnect    = "disconnect"
	OpThreadCreate  = "thread_create"
	OpThreadDestroy = "thread_destroy"
)

// Request is one client message.
type Request struct {
	Op       string `json:"op"`
	Instance string `json:"instance,omitempty"`
	Threads  int    `json:"threads,omitempty"`
	Session  uint64 `json:"session,omitempty"`
}

// Response is the manager's answer.
type Response struct {
	OK             bool   `json:"ok"`
	Err            string `json:"err,omitempty"`
	Session        uint64 `json:"session,omitempty"`
	UpdatePeriodUs int64  `json:"update_period_us,omitempty"`
	QuantumUs      int64  `json:"quantum_us,omitempty"`
}

// MaxSessionThreads bounds the per-session thread count the manager
// will track. Absurd counts in a connect or thread_create request must
// yield an error response, not an unbounded signal-state allocation.
const MaxSessionThreads = 1024

// Session is the manager's state for one connected application.
type Session struct {
	ID       uint64
	Instance string
	Arena    *Arena

	mu      sync.Mutex
	threads int
	// signals holds one SignalState per application thread. The
	// manager signals thread 0, which forwards to the rest — the
	// paper's delivery chain.
	signals []*SignalState
	closed  bool
	// lastSeen is the simulated time the manager last heard from the
	// application (registration, wire activity, or a fresh arena
	// publish). The reaper uses it to reclaim sessions whose client
	// died without disconnecting.
	lastSeen units.Time
}

// Touch records activity from the application at simulated time now.
func (s *Session) Touch(now units.Time) {
	s.mu.Lock()
	if now > s.lastSeen {
		s.lastSeen = now
	}
	s.mu.Unlock()
}

// LastSeen returns the last recorded activity time.
func (s *Session) LastSeen() units.Time {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.lastSeen
}

// Threads returns the current thread count.
func (s *Session) Threads() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.threads
}

// SignalStates returns the per-thread signal states.
func (s *Session) SignalStates() []*SignalState {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]*SignalState(nil), s.signals...)
}

// Blocked reports whether all application threads are currently
// blocked.
func (s *Session) Blocked() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.signals) == 0 {
		return false
	}
	for _, st := range s.signals {
		if !st.Blocked() {
			return false
		}
	}
	return true
}

func (s *Session) setThreads(n int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.threads = n
	for len(s.signals) < n {
		s.signals = append(s.signals, &SignalState{})
	}
	s.signals = s.signals[:n]
}

// Manager is the user-level CPU manager server.
type Manager struct {
	quantum units.Time

	mu       sync.Mutex
	sessions map[uint64]*Session
	nextID   uint64

	// SignalsSent counts block+unblock signals, for the overhead
	// experiment.
	signalsSent uint64

	// faultInj, when non-nil, injects signal-delivery faults
	// (drop/duplicate/delay); delayed holds deliveries deferred to the
	// next signalling round, and owedBlocks/owedUnblocks record the
	// compensating resends owed per thread after a duplicated signal.
	faultInj     *faults.Injector
	delayed      []func()
	owedBlocks   map[*SignalState]int
	owedUnblocks map[*SignalState]int

	// reapTimeout, when positive, lets Reap reclaim sessions not
	// heard from within the window.
	reapTimeout units.Time
}

// NewManager builds a manager with the given scheduling quantum
// (200 ms in the paper; twice the Linux quantum).
func NewManager(quantum units.Time) (*Manager, error) {
	if quantum <= 0 {
		return nil, errors.New("cpumanager: non-positive quantum")
	}
	return &Manager{
		quantum:  quantum,
		sessions: make(map[uint64]*Session),
	}, nil
}

// Quantum returns the scheduling quantum.
func (m *Manager) Quantum() units.Time { return m.quantum }

// UpdatePeriod returns the arena refresh period announced to
// applications: half the quantum, i.e. two samples per quantum.
func (m *Manager) UpdatePeriod() units.Time { return m.quantum / 2 }

// SignalsSent returns the number of signals issued so far.
func (m *Manager) SignalsSent() uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.signalsSent
}

// Sessions returns the live sessions in ID order.
func (m *Manager) Sessions() []*Session {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]*Session, 0, len(m.sessions))
	for id := uint64(1); id <= m.nextID; id++ {
		if s, ok := m.sessions[id]; ok {
			out = append(out, s)
		}
	}
	return out
}

// Attach resolves a session's shared arena — the in-process stand-in
// for mmap'ing the shared page the real manager exported.
func (m *Manager) Attach(sessionID uint64) (*Session, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	s, ok := m.sessions[sessionID]
	if !ok {
		return nil, fmt.Errorf("cpumanager: unknown session %d", sessionID)
	}
	return s, nil
}

// SetFaultInjector attaches a fault injector to signal delivery; nil
// (the default) delivers every signal exactly once, immediately.
func (m *Manager) SetFaultInjector(in *faults.Injector) {
	m.mu.Lock()
	m.faultInj = in
	m.mu.Unlock()
}

// SetReapTimeout enables session reaping: Reap reclaims sessions not
// heard from within d. Zero (the default) disables reaping.
func (m *Manager) SetReapTimeout(d units.Time) {
	m.mu.Lock()
	m.reapTimeout = d
	m.mu.Unlock()
}

// Reap removes sessions whose application has been silent (no wire
// activity, no fresh arena publish) longer than the reap timeout, and
// returns them. A dead client's processors are thereby reclaimed next
// quantum instead of leaking until the TCP stack notices. No-op when
// reaping is disabled.
func (m *Manager) Reap(now units.Time) []*Session {
	m.mu.Lock()
	timeout := m.reapTimeout
	if timeout <= 0 {
		m.mu.Unlock()
		return nil
	}
	var reaped []*Session
	for id, s := range m.sessions {
		last := s.LastSeen()
		if _, epoch, written := s.Arena.Read(); epoch > 0 && written > last {
			last = written
		}
		if now-last > timeout {
			s.mu.Lock()
			s.closed = true
			s.mu.Unlock()
			delete(m.sessions, id)
			reaped = append(reaped, s)
		}
	}
	m.mu.Unlock()
	sort.Slice(reaped, func(i, j int) bool { return reaped[i].ID < reaped[j].ID })
	return reaped
}

// connect registers a new application.
func (m *Manager) connect(instance string, threads int) (*Session, error) {
	if threads < 1 {
		return nil, fmt.Errorf("cpumanager: %q connecting with %d threads", instance, threads)
	}
	if threads > MaxSessionThreads {
		return nil, fmt.Errorf("cpumanager: %q connecting with %d threads (max %d)", instance, threads, MaxSessionThreads)
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	m.nextID++
	s := &Session{
		ID:       m.nextID,
		Instance: instance,
		Arena:    NewArena(m.quantum / 2),
	}
	s.setThreads(threads)
	m.sessions[s.ID] = s
	return s, nil
}

// disconnect removes a session.
func (m *Manager) disconnect(id uint64) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	s, ok := m.sessions[id]
	if !ok {
		return fmt.Errorf("cpumanager: unknown session %d", id)
	}
	s.mu.Lock()
	s.closed = true
	s.mu.Unlock()
	delete(m.sessions, id)
	return nil
}

// Block signals a session to stop running: one signal to thread 0,
// forwarded to the rest.
func (m *Manager) Block(s *Session) { m.signal(s, true) }

// Unblock signals a session to resume.
func (m *Manager) Unblock(s *Session) { m.signal(s, false) }

// signal delivers a block or unblock signal to every thread of s.
// Without a fault injector each signal is delivered exactly once,
// immediately — the counting matches the pre-fault manager exactly.
// With one attached, individual per-thread signals may be dropped,
// delayed to the next signalling round, or duplicated. A duplicate
// models a resend: a manager unsure a signal arrived sends it again
// and, knowing it did, later resends the matching opposite signal too,
// so the count-based blocking rule converges instead of wedging on a
// permanent block/unblock surplus — the inversion tolerance the paper
// built SignalState for.
func (m *Manager) signal(s *Session, block bool) {
	m.mu.Lock()
	inj := m.faultInj
	pending := m.delayed
	m.delayed = nil
	m.mu.Unlock()

	// Deliver signals deferred from the previous round first, so a
	// delayed signal arrives at most one round late and never after a
	// newer signal for the same thread.
	for _, deliver := range pending {
		deliver()
	}

	for _, st := range s.SignalStates() {
		st := st
		switch {
		case inj.DropSignal():
			// Lost in delivery: the thread never sees it.
		case inj.DelaySignal():
			m.mu.Lock()
			m.delayed = append(m.delayed, func() { m.deliverSignal(st, block, false) })
			m.mu.Unlock()
		default:
			m.deliverSignal(st, block, inj.DuplicateSignal())
		}
	}
}

// deliverSignal delivers one signal to st, settling any compensating
// resends owed in this direction. When resend is true the signal is
// sent twice and the opposite direction owes one compensation.
func (m *Manager) deliverSignal(st *SignalState, block, resend bool) {
	m.mu.Lock()
	n := 1
	if block {
		n += m.owedBlocks[st]
		delete(m.owedBlocks, st)
		if resend {
			if m.owedUnblocks == nil {
				m.owedUnblocks = make(map[*SignalState]int)
			}
			m.owedUnblocks[st]++
			n++
		}
	} else {
		n += m.owedUnblocks[st]
		delete(m.owedUnblocks, st)
		if resend {
			if m.owedBlocks == nil {
				m.owedBlocks = make(map[*SignalState]int)
			}
			m.owedBlocks[st]++
			n++
		}
	}
	m.signalsSent += uint64(n)
	m.mu.Unlock()
	for i := 0; i < n; i++ {
		if block {
			st.Block()
		} else {
			st.Unblock()
		}
	}
}

// Serve accepts connections on l until it is closed. Each connection
// carries a stream of JSON requests. Serve returns the listener's
// close error.
func (m *Manager) Serve(l net.Listener) error {
	for {
		conn, err := l.Accept()
		if err != nil {
			return err
		}
		go m.handle(conn)
	}
}

func (m *Manager) handle(conn net.Conn) {
	defer conn.Close()
	dec := json.NewDecoder(conn)
	enc := json.NewEncoder(conn)
	var sessionID uint64
	for {
		var req Request
		if err := dec.Decode(&req); err != nil {
			if sessionID != 0 {
				// Connection dropped: treat as disconnect.
				_ = m.disconnect(sessionID)
			}
			if err != io.EOF {
				return
			}
			return
		}
		resp := m.dispatch(&sessionID, req)
		if err := enc.Encode(resp); err != nil {
			return
		}
	}
}

func (m *Manager) dispatch(sessionID *uint64, req Request) Response {
	fail := func(err error) Response { return Response{Err: err.Error()} }
	switch req.Op {
	case OpConnect:
		if *sessionID != 0 {
			return fail(errors.New("already connected"))
		}
		s, err := m.connect(req.Instance, req.Threads)
		if err != nil {
			return fail(err)
		}
		*sessionID = s.ID
		return Response{
			OK:             true,
			Session:        s.ID,
			UpdatePeriodUs: int64(m.UpdatePeriod()),
			QuantumUs:      int64(m.quantum),
		}
	case OpDisconnect:
		id := req.Session
		if id == 0 {
			id = *sessionID
		}
		if err := m.disconnect(id); err != nil {
			return fail(err)
		}
		*sessionID = 0
		return Response{OK: true}
	case OpThreadCreate, OpThreadDestroy:
		id := req.Session
		if id == 0 {
			id = *sessionID
		}
		m.mu.Lock()
		s, ok := m.sessions[id]
		m.mu.Unlock()
		if !ok {
			return fail(fmt.Errorf("unknown session %d", id))
		}
		n := s.Threads()
		if req.Op == OpThreadCreate {
			n++
		} else {
			n--
		}
		if n < 1 {
			return fail(errors.New("thread count would drop below 1"))
		}
		if n > MaxSessionThreads {
			return fail(fmt.Errorf("thread count %d exceeds max %d", n, MaxSessionThreads))
		}
		s.setThreads(n)
		return Response{OK: true, Session: id}
	default:
		return fail(fmt.Errorf("unknown op %q", req.Op))
	}
}
