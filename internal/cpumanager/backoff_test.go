package cpumanager

import (
	"net"
	"sync"
	"testing"
	"time"

	"busaware/internal/faults"
)

// TestRetryDelaySequence pins the exact backoff schedule, including
// the MaxRetryBackoff saturation that replaced the uncapped shift: an
// unbounded `base << (try-1)` overflows int64 around try 40 and hands
// time.Sleep a negative duration, and already by try 10 it sleeps
// longer than any caller intends.
func TestRetryDelaySequence(t *testing.T) {
	tests := []struct {
		name string
		base time.Duration
		want []time.Duration // delay before retry 1, 2, 3, ...
	}{
		{
			name: "default base doubles then saturates",
			base: 10 * time.Millisecond,
			want: []time.Duration{
				10 * time.Millisecond, 20 * time.Millisecond, 40 * time.Millisecond,
				80 * time.Millisecond, 160 * time.Millisecond, 320 * time.Millisecond,
				640 * time.Millisecond, 1280 * time.Millisecond,
				MaxRetryBackoff, MaxRetryBackoff,
			},
		},
		{
			name: "base at the cap never exceeds it",
			base: MaxRetryBackoff,
			want: []time.Duration{MaxRetryBackoff, MaxRetryBackoff, MaxRetryBackoff},
		},
		{
			name: "base above the cap is clamped",
			base: 3 * MaxRetryBackoff,
			want: []time.Duration{MaxRetryBackoff, MaxRetryBackoff},
		},
		{
			name: "non-positive base falls back to the default",
			base: 0,
			want: []time.Duration{DefaultRetryBackoff, 2 * DefaultRetryBackoff},
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			for i, want := range tt.want {
				if got := retryDelay(tt.base, i+1); got != want {
					t.Errorf("retryDelay(%v, %d) = %v, want %v", tt.base, i+1, got, want)
				}
			}
		})
	}
}

// TestRetryDelayNeverNegative sweeps attempt numbers far past the
// int64 overflow point of the old shift; every delay must stay within
// (0, MaxRetryBackoff].
func TestRetryDelayNeverNegative(t *testing.T) {
	for _, try := range []int{1, 2, 40, 63, 64, 65, 100, 1 << 20} {
		d := retryDelay(time.Millisecond, try)
		if d <= 0 || d > MaxRetryBackoff {
			t.Errorf("retryDelay(1ms, %d) = %v, want in (0, %v]", try, d, MaxRetryBackoff)
		}
	}
}

// TestClientBackoffCappedOnWire drives roundTrip itself through a
// permanently dead wire with a large attempt budget and asserts, via
// the sleeper seam, the exact capped sleep sequence — the integration
// half of the unit table above.
func TestClientBackoffCappedOnWire(t *testing.T) {
	client, server := net.Pipe()
	defer server.Close()
	inj := faults.New(faults.Config{Seed: 1, RequestLoss: 1})
	flaky := faults.NewFlakyConn(client, inj)

	var mu sync.Mutex
	var delays []time.Duration
	sleeper := faults.Sleeper(func(d time.Duration) {
		mu.Lock()
		delays = append(delays, d)
		mu.Unlock()
	})

	_, err := Connect(flaky, "doomed", 1,
		WithRetry(12, 100*time.Millisecond), withSleeper(sleeper))
	if err == nil {
		t.Fatal("connect over a dead wire succeeded")
	}

	mu.Lock()
	got := append([]time.Duration(nil), delays...)
	mu.Unlock()
	want := []time.Duration{
		100 * time.Millisecond, 200 * time.Millisecond, 400 * time.Millisecond,
		800 * time.Millisecond, 1600 * time.Millisecond,
		MaxRetryBackoff, MaxRetryBackoff, MaxRetryBackoff,
		MaxRetryBackoff, MaxRetryBackoff, MaxRetryBackoff,
	}
	if len(got) != len(want) {
		t.Fatalf("slept %d times (%v), want %d", len(got), got, len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("backoff[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}
