package cpumanager

import (
	"encoding/json"
	"net"
	"testing"
	"time"

	"busaware/internal/units"
)

// FuzzProtocol throws arbitrary bytes at the manager's wire protocol:
// the server must neither crash nor leak sessions, and must keep
// serving well-formed clients afterwards.
func FuzzProtocol(f *testing.F) {
	f.Add([]byte(`{"op":"connect","instance":"x","threads":1}`))
	f.Add([]byte(`{"op":"connect","threads":-3}`))
	f.Add([]byte(`{"op":"thread_create","session":999}`))
	f.Add([]byte(`{"op":`))
	f.Add([]byte("\x00\xff\xfe garbage"))
	f.Add([]byte(`{"op":"disconnect"}{"op":"disconnect"}`))

	mgr, err := NewManager(200 * units.Millisecond)
	if err != nil {
		f.Fatal(err)
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		f.Fatal(err)
	}
	go mgr.Serve(l)
	f.Cleanup(func() { l.Close() })
	addr := l.Addr().String()

	f.Fuzz(func(t *testing.T, payload []byte) {
		conn, err := net.Dial("tcp", addr)
		if err != nil {
			t.Skip("dial failed (fd pressure)")
		}
		conn.SetDeadline(time.Now().Add(2 * time.Second))
		conn.Write(payload)
		// Drain whatever the server answers, then drop the link.
		buf := make([]byte, 4096)
		conn.Read(buf)
		conn.Close()

		// The server must still serve a well-formed client.
		c, err := Dial("tcp", addr, "post-fuzz", 1)
		if err != nil {
			t.Fatalf("manager wedged after payload %q: %v", payload, err)
		}
		if err := c.Disconnect(); err != nil {
			t.Fatalf("disconnect after fuzz: %v", err)
		}
	})
}

// FuzzClientRequestDecode mirrors the server's read loop byte for
// byte: decode one request off the wire exactly as handle does, then
// dispatch it. Malformed JSON is rejected at the decode step, and any
// request that does decode — unknown ops, absurd thread counts — must
// produce an error response, never a panic and never an unbounded
// allocation.
func FuzzClientRequestDecode(f *testing.F) {
	f.Add([]byte(`{"op":"connect","instance":"a","threads":2}`))
	f.Add([]byte(`{"op":"connect","threads":1000000000}`))
	f.Add([]byte(`{"op":"connect","threads":-1}`))
	f.Add([]byte(`{"op":"thread_create","session":18446744073709551615}`))
	f.Add([]byte(`{"op":"nonsense"}`))
	f.Add([]byte(`{"op":"connect"`))
	f.Add([]byte(`[1,2,3]`))
	f.Add([]byte("\xff\xfe"))
	f.Fuzz(func(t *testing.T, payload []byte) {
		var req Request
		if err := json.Unmarshal(payload, &req); err != nil {
			// handle() drops the connection on a decode error; there
			// is nothing to dispatch.
			return
		}
		mgr, err := NewManager(200 * units.Millisecond)
		if err != nil {
			t.Fatal(err)
		}
		var sessionID uint64
		resp := mgr.dispatch(&sessionID, req)
		if !resp.OK && resp.Err == "" {
			t.Errorf("error response without text for %q", payload)
		}
		if req.Op == OpConnect && (req.Threads < 1 || req.Threads > MaxSessionThreads) {
			if resp.OK {
				t.Errorf("absurd thread count %d accepted", req.Threads)
			}
		}
		switch req.Op {
		case OpConnect, OpDisconnect, OpThreadCreate, OpThreadDestroy:
		default:
			if resp.OK {
				t.Errorf("unknown op %q accepted", req.Op)
			}
		}
		// Sessions created by a successful connect are bounded.
		for _, s := range mgr.Sessions() {
			if n := s.Threads(); n < 1 || n > MaxSessionThreads {
				t.Errorf("session with %d threads", n)
			}
		}
	})
}

// FuzzRequestDispatch drives the dispatcher directly with decoded but
// adversarial requests: no panics, and errors never mint sessions.
func FuzzRequestDispatch(f *testing.F) {
	f.Add(`{"op":"connect","instance":"a","threads":2}`)
	f.Add(`{"op":"thread_destroy","session":1}`)
	f.Add(`{"op":"zzz"}`)
	f.Add(`{"threads":1000000}`)
	f.Fuzz(func(t *testing.T, raw string) {
		var req Request
		if err := json.Unmarshal([]byte(raw), &req); err != nil {
			t.Skip()
		}
		mgr, err := NewManager(200 * units.Millisecond)
		if err != nil {
			t.Fatal(err)
		}
		var sessionID uint64
		resp := mgr.dispatch(&sessionID, req)
		if !resp.OK && resp.Err == "" {
			t.Errorf("failed response without error text for %q", raw)
		}
		if !resp.OK && sessionID != 0 {
			t.Errorf("failed %q leaked session %d", raw, sessionID)
		}
		if resp.OK && req.Op == OpConnect {
			if len(mgr.Sessions()) != 1 {
				t.Errorf("connect succeeded but sessions = %d", len(mgr.Sessions()))
			}
		}
	})
}
