// Package cpumanager implements the paper's user-level CPU manager:
// a server process that applications connect to over a socket, a
// shared arena page through which each application publishes its bus
// transaction rate twice per scheduling quantum, and the block /
// unblock signalling protocol (with the paper's inversion-tolerant
// signal counting) through which the manager enforces its policy
// decisions without kernel modifications.
package cpumanager

import "sync"

// SignalState implements the paper's robust blocking rule: "a thread
// blocks only if the number of received block signals exceeds the
// corresponding number of unblock signals. Such an inversion is quite
// probable, especially if the time interval between consecutive blocks
// and unblocks is narrow."
//
// Because the rule is a counter comparison, delivering a {block,
// unblock} pair in either order leaves the thread runnable — which is
// exactly the property the paper relies on. The zero value is an
// unblocked state, ready to use; it is safe for concurrent use (the
// manager signals from its scheduling loop while application threads
// poll).
type SignalState struct {
	mu       sync.Mutex
	blocks   uint64
	unblocks uint64
	waiters  *sync.Cond
}

// Block records one block signal.
func (s *SignalState) Block() {
	s.mu.Lock()
	s.blocks++
	s.mu.Unlock()
}

// Unblock records one unblock signal and wakes any waiter.
func (s *SignalState) Unblock() {
	s.mu.Lock()
	s.unblocks++
	if s.waiters != nil {
		s.waiters.Broadcast()
	}
	s.mu.Unlock()
}

// Blocked reports whether the thread should be blocked right now.
func (s *SignalState) Blocked() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.blocks > s.unblocks
}

// Counts returns the raw signal counters (for diagnostics and tests).
func (s *SignalState) Counts() (blocks, unblocks uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.blocks, s.unblocks
}

// Wait parks the calling goroutine until the state is runnable. It
// models the signal handler's sigsuspend loop.
func (s *SignalState) Wait() {
	s.mu.Lock()
	if s.waiters == nil {
		s.waiters = sync.NewCond(&s.mu)
	}
	for s.blocks > s.unblocks {
		s.waiters.Wait()
	}
	s.mu.Unlock()
}
