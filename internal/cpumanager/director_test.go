package cpumanager

import (
	"testing"

	"busaware/internal/sched"
	"busaware/internal/units"
)

func newDirector(t *testing.T) (*Manager, *Director) {
	t.Helper()
	mgr, err := NewManager(200 * units.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	policy := sched.NewQuantaWindow(4, units.SustainedBusRate)
	d, err := NewDirector(mgr, policy)
	if err != nil {
		t.Fatal(err)
	}
	return mgr, d
}

func TestDirectorValidation(t *testing.T) {
	if _, err := NewDirector(nil, nil); err == nil {
		t.Error("nil arguments accepted")
	}
}

func TestDirectorAdmitsEveryoneWhenIdle(t *testing.T) {
	mgr, d := newDirector(t)
	a, _ := mgr.connect("A", 2)
	b, _ := mgr.connect("B", 2)
	a.Arena.Publish(0.5, 100)
	b.Arena.Publish(0.5, 100)
	out := d.Tick()
	if len(out.Sessions) != 2 || out.Blocked != 0 {
		t.Errorf("admitted %d blocked %d, want both admitted", len(out.Sessions), out.Blocked)
	}
	if d.Jobs() != 2 {
		t.Errorf("tracked jobs = %d", d.Jobs())
	}
}

func TestDirectorPairsHungryWithIdle(t *testing.T) {
	mgr, d := newDirector(t)
	cg, _ := mgr.connect("CG#1", 2)
	b1, _ := mgr.connect("BBMA#1", 1)
	b2, _ := mgr.connect("BBMA#2", 1)
	n1, _ := mgr.connect("nBBMA#1", 1)
	n2, _ := mgr.connect("nBBMA#2", 1)
	publish := func(now units.Time) {
		cg.Arena.Publish(23.31, now)
		b1.Arena.Publish(23.6, now)
		b2.Arena.Publish(23.6, now)
		n1.Arena.Publish(0.0037, now)
		n2.Arena.Publish(0.0037, now)
	}
	// Warm up estimates, then inspect the steady-state quanta.
	cgWithB := 0
	for q := 0; q < 20; q++ {
		publish(units.Time(q+1) * 200 * units.Millisecond)
		out := d.Tick()
		in := map[*Session]bool{}
		for _, s := range out.Sessions {
			in[s] = true
		}
		if q >= 4 && in[cg] && (in[b1] || in[b2]) {
			cgWithB++
		}
	}
	if cgWithB > 3 {
		t.Errorf("CG co-scheduled with BBMA in %d steady-state quanta; policy should pair it with nBBMA", cgWithB)
	}
}

func TestDirectorEnforcesWithSignals(t *testing.T) {
	mgr, d := newDirector(t)
	// Six single-thread antagonists on four CPUs: someone must block.
	var sessions []*Session
	for i := 0; i < 6; i++ {
		s, _ := mgr.connect("B", 1)
		sessions = append(sessions, s)
	}
	for q := 0; q < 3; q++ {
		for i, s := range sessions {
			s.Arena.Publish(23.6, units.Time(q*200+i)*units.Millisecond)
		}
		out := d.Tick()
		if len(out.Sessions) > 4 {
			t.Fatalf("admitted %d sessions on 4 CPUs", len(out.Sessions))
		}
		if out.Blocked == 0 {
			t.Error("oversubscribed quantum blocked nobody")
		}
	}
	if mgr.SignalsSent() == 0 {
		t.Error("no signals sent")
	}
	// Blocked sessions really are blocked; admitted ones are not.
	out := d.Tick()
	admitted := map[*Session]bool{}
	for _, s := range out.Sessions {
		admitted[s] = true
	}
	for _, s := range sessions {
		if admitted[s] && s.Blocked() {
			t.Error("admitted session left blocked")
		}
	}
}

func TestDirectorDropsDeadSessions(t *testing.T) {
	mgr, d := newDirector(t)
	a, _ := mgr.connect("A", 1)
	d.Tick()
	if d.Jobs() != 1 {
		t.Fatalf("jobs = %d", d.Jobs())
	}
	if err := mgr.disconnect(a.ID); err != nil {
		t.Fatal(err)
	}
	d.Tick()
	if d.Jobs() != 0 {
		t.Errorf("jobs after disconnect = %d", d.Jobs())
	}
}

func TestDirectorIgnoresStaleArenas(t *testing.T) {
	mgr, d := newDirector(t)
	a, _ := mgr.connect("A", 1)
	// Publish once at t=0; after many quanta the page is stale, so the
	// old estimate persists but no new samples are pushed (no panic,
	// no starvation).
	a.Arena.Publish(5, 0)
	for q := 0; q < 10; q++ {
		out := d.Tick()
		if len(out.Sessions) != 1 {
			t.Fatalf("sole session not admitted at quantum %d", q)
		}
	}
}
