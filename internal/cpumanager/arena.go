package cpumanager

import (
	"sync"

	"busaware/internal/units"
)

// Arena is the shared memory page the manager creates per connected
// application: "a shared memory page which is used as its primary
// communication medium with the application". The application's
// run-time library accumulates the performance counters of all its
// threads and writes the cumulative bus transaction rate here, twice
// per scheduling quantum; the manager reads it when it runs its
// policy.
//
// In-process, the page is a mutex-guarded struct; the epoch counter
// lets the manager detect stale data (an application that missed its
// update slot, e.g. because it was blocked).
type Arena struct {
	mu sync.Mutex

	// updatePeriod is how often the application is expected to refresh
	// the rate; the manager announces it at connection time (half the
	// scheduling quantum: two samples per quantum).
	updatePeriod units.Time

	rate    units.Rate // cumulative trans/usec across the app's threads
	epoch   uint64     // bumped on every write
	written units.Time // simulated timestamp of the last write
}

// NewArena builds a page with the given expected update period.
func NewArena(updatePeriod units.Time) *Arena {
	return &Arena{updatePeriod: updatePeriod}
}

// UpdatePeriod returns how often the application must publish.
func (a *Arena) UpdatePeriod() units.Time { return a.updatePeriod }

// Publish writes the application's cumulative bus transaction rate.
// The application side calls this from its sampling hook.
func (a *Arena) Publish(rate units.Rate, now units.Time) {
	a.mu.Lock()
	a.rate = rate
	a.epoch++
	a.written = now
	a.mu.Unlock()
}

// Read returns the current rate, its epoch, and when it was written.
func (a *Arena) Read() (rate units.Rate, epoch uint64, written units.Time) {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.rate, a.epoch, a.written
}

// FreshAt reports whether the page was updated within two update
// periods of now — the manager's staleness criterion.
func (a *Arena) FreshAt(now units.Time) bool {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.epoch == 0 {
		return false
	}
	return now-a.written <= 2*a.updatePeriod
}
