package cpumanager

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"testing"
	"time"

	"busaware/internal/faults"
	"busaware/internal/sched"
	"busaware/internal/units"
)

// ---------------------------------------------------------------------------
// SignalState under concurrency (run with -race).

// Hammer one SignalState from many blockers and unblockers at once.
// The counters must be monotonic at every observation, and once the
// dust settles Blocked() must agree with the final count difference.
func TestSignalStateConcurrentStress(t *testing.T) {
	const (
		goroutines = 8
		perG       = 500
	)
	var st SignalState

	// Observer goroutine: counts must never move backwards.
	done := make(chan struct{})
	violation := make(chan string, 1)
	go func() {
		defer close(done)
		var lastB, lastU uint64
		for i := 0; ; i++ {
			b, u := st.Counts()
			if b < lastB || u < lastU {
				select {
				case violation <- fmt.Sprintf("counts went backwards: (%d,%d) after (%d,%d)", b, u, lastB, lastU):
				default:
				}
				return
			}
			lastB, lastU = b, u
			select {
			case <-time.After(time.Microsecond):
			default:
			}
			if b == goroutines*perG && u == goroutines*perG {
				return
			}
		}
	}()

	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(2)
		go func() {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				st.Block()
			}
		}()
		go func() {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				st.Unblock()
			}
		}()
	}
	wg.Wait()
	<-done
	select {
	case msg := <-violation:
		t.Fatal(msg)
	default:
	}

	b, u := st.Counts()
	if b != goroutines*perG || u != goroutines*perG {
		t.Fatalf("lost signals: blocks=%d unblocks=%d, want %d each", b, u, goroutines*perG)
	}
	// Equal counts: the thread must be runnable.
	if st.Blocked() {
		t.Error("Blocked() true with blocks == unblocks")
	}

	// Skew the counts and check Blocked() converges to the difference.
	st.Block()
	if !st.Blocked() {
		t.Error("Blocked() false with blocks > unblocks")
	}
	st.Unblock()
	st.Unblock()
	if st.Blocked() {
		t.Error("Blocked() true with unblocks > blocks (inversion must leave thread runnable)")
	}
}

// ---------------------------------------------------------------------------
// Client: error wrapping, retry and backoff.

// Transport errors must be inspectable with errors.Is / errors.As, not
// string matching.
func TestDialErrorWrapped(t *testing.T) {
	_, err := Dial("tcp", "127.0.0.1:1", "x", 1) // nothing listens on port 1
	if err == nil {
		t.Fatal("Dial to dead port succeeded")
	}
	var opErr *net.OpError
	if !errors.As(err, &opErr) {
		t.Errorf("net.OpError not reachable through %v", err)
	}
}

// Timed-out requests are retried with exponential backoff and succeed
// once the wire recovers.
func TestClientRetriesTimeouts(t *testing.T) {
	mgr, err := NewManager(200 * units.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	go mgr.Serve(l)

	conn, err := net.Dial("tcp", l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}

	// Fail the first two writes with a timeout, then recover.
	inj := faults.New(faults.Config{Seed: 1, RequestLoss: 1})
	flaky := faults.NewFlakyConn(conn, inj)

	var delays []time.Duration
	var mu sync.Mutex
	sleeper := faults.Sleeper(func(d time.Duration) {
		mu.Lock()
		delays = append(delays, d)
		mu.Unlock()
		if len(delays) == 2 {
			inj.SetConfig(faults.Config{}) // wire recovers before try 3
		}
	})

	c, err := Connect(flaky, "retry-app", 2,
		WithRequestTimeout(time.Second),
		WithRetry(3, 10*time.Millisecond),
		withSleeper(sleeper),
	)
	if err != nil {
		t.Fatalf("connect with retry: %v", err)
	}
	defer c.Disconnect()

	mu.Lock()
	got := append([]time.Duration(nil), delays...)
	mu.Unlock()
	want := []time.Duration{10 * time.Millisecond, 20 * time.Millisecond}
	if len(got) != len(want) {
		t.Fatalf("slept %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("backoff[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}

// When every attempt times out the client gives up with a wrapped
// timeout, not a hang.
func TestClientGivesUpAfterRetries(t *testing.T) {
	client, server := net.Pipe()
	defer server.Close()
	inj := faults.New(faults.Config{Seed: 1, RequestLoss: 1})
	flaky := faults.NewFlakyConn(client, inj)

	var slept int
	sleeper := faults.Sleeper(func(time.Duration) { slept++ })

	_, err := Connect(flaky, "doomed", 1, WithRetry(3, time.Millisecond), withSleeper(sleeper))
	if err == nil {
		t.Fatal("connect over a dead wire succeeded")
	}
	var ne net.Error
	if !errors.As(err, &ne) || !ne.Timeout() {
		t.Errorf("exhausted retries did not surface a timeout: %v", err)
	}
	if slept != 2 {
		t.Errorf("slept %d times for 3 attempts, want 2", slept)
	}
}

// A refused operation (manager-side error) is not retried.
func TestClientDoesNotRetryRefusals(t *testing.T) {
	mgr, err := NewManager(200 * units.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	go mgr.Serve(l)

	var slept int
	sleeper := faults.Sleeper(func(time.Duration) { slept++ })
	_, err = Dial("tcp", l.Addr().String(), "bad", 0,
		WithRetry(5, time.Millisecond), withSleeper(sleeper))
	if err == nil {
		t.Fatal("connect with 0 threads succeeded")
	}
	if slept != 0 {
		t.Errorf("refused request was retried %d times", slept)
	}
}

// ---------------------------------------------------------------------------
// Manager: signal faults and session reaping.

func testSession(t *testing.T, m *Manager, name string, threads int) *Session {
	t.Helper()
	s, err := m.connect(name, threads)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// Duplicated and delayed signals are absorbed by the count-based
// blocking rule: after a block round and an unblock round every thread
// is runnable again, whatever the injector did in between.
func TestManagerSignalFaultsConverge(t *testing.T) {
	mgr, err := NewManager(200 * units.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	s := testSession(t, mgr, "app", 4)
	mgr.SetFaultInjector(faults.New(faults.Config{Seed: 3, SignalDup: 0.4, SignalDelay: 0.4}))

	for round := 0; round < 50; round++ {
		mgr.Block(s)
		mgr.Unblock(s)
	}
	// Flush anything still queued: fault-free rounds drain the delayed
	// list and deliver pairwise.
	mgr.SetFaultInjector(nil)
	mgr.Block(s)
	mgr.Unblock(s)

	for i, st := range s.SignalStates() {
		b, u := st.Counts()
		if b != u {
			t.Errorf("thread %d: blocks=%d unblocks=%d after symmetric rounds", i, b, u)
		}
		if st.Blocked() {
			t.Errorf("thread %d still blocked", i)
		}
	}
}

// Dropped signals change delivery counts but never corrupt them, and
// SignalsSent only counts actual deliveries.
func TestManagerSignalLoss(t *testing.T) {
	mgr, err := NewManager(200 * units.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	s := testSession(t, mgr, "app", 8)
	mgr.SetFaultInjector(faults.New(faults.Config{Seed: 5, SignalLoss: 0.5}))
	for i := 0; i < 20; i++ {
		mgr.Block(s)
	}
	var delivered uint64
	for _, st := range s.SignalStates() {
		b, _ := st.Counts()
		delivered += b
	}
	if delivered == 0 || delivered == 20*8 {
		t.Errorf("50%% signal loss delivered %d/160 signals", delivered)
	}
	if got := mgr.SignalsSent(); got != delivered {
		t.Errorf("SignalsSent=%d, delivered=%d", got, delivered)
	}
}

// A session whose application goes silent past the reap timeout is
// reclaimed; publishing to the arena counts as proof of life.
func TestManagerReap(t *testing.T) {
	mgr, err := NewManager(200 * units.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	dead := testSession(t, mgr, "dead", 2)
	alive := testSession(t, mgr, "alive", 2)

	// Reaping disabled: nothing happens no matter how stale.
	if got := mgr.Reap(10 * units.Second); got != nil {
		t.Fatalf("Reap with timeout disabled reclaimed %d sessions", len(got))
	}

	mgr.SetReapTimeout(units.Second)
	dead.Touch(0)
	alive.Touch(0)
	// The live app keeps publishing; the dead one went dark at t=0.
	alive.Arena.Publish(1000, 3*units.Second)

	reaped := mgr.Reap(3 * units.Second)
	if len(reaped) != 1 || reaped[0] != dead {
		t.Fatalf("reaped %d sessions, want exactly the dead one", len(reaped))
	}
	if _, err := mgr.Attach(dead.ID); err == nil {
		t.Error("reaped session still attachable")
	}
	if _, err := mgr.Attach(alive.ID); err != nil {
		t.Errorf("live session reaped: %v", err)
	}
}

// The director reclaims a reaped session's processors: its job leaves
// the policy, so the survivor gets the machine.
func TestDirectorReapsDeadSessions(t *testing.T) {
	mgr, err := NewManager(200 * units.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	mgr.SetReapTimeout(300 * units.Millisecond)
	dir, err := NewDirector(mgr, sched.NewQuantaWindow(4, units.SustainedBusRate))
	if err != nil {
		t.Fatal(err)
	}

	dead := testSession(t, mgr, "dead", 2)
	alive := testSession(t, mgr, "alive", 2)
	_ = dead

	quantum := 200 * units.Millisecond
	var reaped int
	for i := 1; i <= 5; i++ {
		// Only the live app publishes.
		alive.Arena.Publish(500, units.Time(i)*quantum)
		out := dir.Tick()
		reaped += out.Reaped
	}
	if reaped != 1 {
		t.Fatalf("director reaped %d sessions, want 1", reaped)
	}
	if dir.Jobs() != 1 {
		t.Errorf("policy still tracks %d jobs, want 1", dir.Jobs())
	}
	out := dir.Tick()
	if len(out.Sessions) != 1 || out.Sessions[0] != alive {
		t.Errorf("survivor not admitted after reap: %+v", out.Sessions)
	}
}
