package cpumanager

import (
	"math/rand"
	"net"
	"sync"
	"testing"
	"testing/quick"
	"time"

	"busaware/internal/units"
)

func TestSignalStateBasics(t *testing.T) {
	var s SignalState
	if s.Blocked() {
		t.Error("zero state should be unblocked")
	}
	s.Block()
	if !s.Blocked() {
		t.Error("blocked after Block()")
	}
	s.Unblock()
	if s.Blocked() {
		t.Error("unblocked after matching Unblock()")
	}
}

// The paper's scenario: an unblock overtakes its matching block. The
// counting rule must leave the thread runnable.
func TestSignalInversionTolerated(t *testing.T) {
	var s SignalState
	// Quantum N: blocked then unblocked, but delivered inverted.
	s.Unblock() // the unblock arrives first
	s.Block()   // then the (logically earlier) block
	if s.Blocked() {
		t.Error("inverted block/unblock pair wedged the thread")
	}
	b, u := s.Counts()
	if b != 1 || u != 1 {
		t.Errorf("counts = %d/%d", b, u)
	}
}

// Property: for any interleaving of N blocks and N unblocks, the final
// state is runnable; with one extra block it is blocked.
func TestSignalCountingProperty(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		k := int(n%20) + 1
		var s SignalState
		sigs := make([]bool, 0, 2*k+1)
		for i := 0; i < k; i++ {
			sigs = append(sigs, true, false)
		}
		rng.Shuffle(len(sigs), func(i, j int) { sigs[i], sigs[j] = sigs[j], sigs[i] })
		for _, block := range sigs {
			if block {
				s.Block()
			} else {
				s.Unblock()
			}
		}
		if s.Blocked() {
			return false
		}
		s.Block()
		return s.Blocked()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSignalWaitWakes(t *testing.T) {
	var s SignalState
	s.Block()
	done := make(chan struct{})
	go func() {
		s.Wait()
		close(done)
	}()
	select {
	case <-done:
		t.Fatal("Wait returned while blocked")
	case <-time.After(10 * time.Millisecond):
	}
	s.Unblock()
	select {
	case <-done:
	case <-time.After(time.Second):
		t.Fatal("Wait did not wake on unblock")
	}
}

func TestArenaPublishRead(t *testing.T) {
	a := NewArena(100 * units.Millisecond)
	if a.FreshAt(0) {
		t.Error("unwritten arena should be stale")
	}
	a.Publish(23.6, 1000)
	r, epoch, written := a.Read()
	if r != 23.6 || epoch != 1 || written != 1000 {
		t.Errorf("read = %v, %d, %v", r, epoch, written)
	}
	a.Publish(11.3, 2000)
	if _, epoch, _ := a.Read(); epoch != 2 {
		t.Error("epoch should bump per publish")
	}
	if !a.FreshAt(2000 + 2*100*units.Millisecond) {
		t.Error("arena should be fresh within 2 update periods")
	}
	if a.FreshAt(2000 + 2*100*units.Millisecond + 1) {
		t.Error("arena should go stale after 2 update periods")
	}
	if a.UpdatePeriod() != 100*units.Millisecond {
		t.Error("update period")
	}
}

func newManager(t *testing.T) *Manager {
	t.Helper()
	m, err := NewManager(200 * units.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestManagerValidation(t *testing.T) {
	if _, err := NewManager(0); err == nil {
		t.Error("zero quantum accepted")
	}
	m := newManager(t)
	if m.UpdatePeriod() != 100*units.Millisecond {
		t.Errorf("update period = %v, want half quantum", m.UpdatePeriod())
	}
}

func serve(t *testing.T, m *Manager) net.Listener {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go m.Serve(l)
	t.Cleanup(func() { l.Close() })
	return l
}

func TestConnectHandshake(t *testing.T) {
	m := newManager(t)
	l := serve(t, m)
	c, err := Dial("tcp", l.Addr().String(), "CG#1", 2)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Disconnect()
	if c.SessionID() == 0 {
		t.Error("no session id")
	}
	if c.UpdatePeriod() != m.UpdatePeriod() || c.Quantum() != m.Quantum() {
		t.Errorf("announced periods: %v/%v", c.UpdatePeriod(), c.Quantum())
	}
	sessions := m.Sessions()
	if len(sessions) != 1 || sessions[0].Instance != "CG#1" || sessions[0].Threads() != 2 {
		t.Errorf("sessions = %+v", sessions)
	}
	// Attach resolves the shared arena.
	s, err := m.Attach(c.SessionID())
	if err != nil {
		t.Fatal(err)
	}
	s.Arena.Publish(11.65, 500)
	r, _, _ := s.Arena.Read()
	if r != 11.65 {
		t.Error("arena write not visible through manager")
	}
}

func TestThreadLifecycle(t *testing.T) {
	m := newManager(t)
	l := serve(t, m)
	c, err := Dial("tcp", l.Addr().String(), "app", 2)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Disconnect()
	if err := c.ThreadCreated(); err != nil {
		t.Fatal(err)
	}
	s, _ := m.Attach(c.SessionID())
	if s.Threads() != 3 {
		t.Errorf("threads = %d, want 3", s.Threads())
	}
	if err := c.ThreadDestroyed(); err != nil {
		t.Fatal(err)
	}
	if s.Threads() != 2 {
		t.Errorf("threads = %d, want 2", s.Threads())
	}
	// Dropping to zero is refused.
	c.ThreadDestroyed()
	if err := c.ThreadDestroyed(); err == nil {
		t.Error("thread count below 1 accepted")
	}
}

func TestDisconnectRemovesSession(t *testing.T) {
	m := newManager(t)
	l := serve(t, m)
	c, err := Dial("tcp", l.Addr().String(), "app", 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Disconnect(); err != nil {
		t.Fatal(err)
	}
	if len(m.Sessions()) != 0 {
		t.Error("session survived disconnect")
	}
	if err := c.Disconnect(); err == nil {
		t.Error("double disconnect accepted")
	}
}

func TestConnectionDropDisconnects(t *testing.T) {
	m := newManager(t)
	l := serve(t, m)
	conn, err := net.Dial("tcp", l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	c, err := Connect(conn, "app", 1)
	if err != nil {
		t.Fatal(err)
	}
	_ = c
	conn.Close()
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if len(m.Sessions()) == 0 {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Error("dropped connection did not clean up session")
}

func TestBlockUnblockSessions(t *testing.T) {
	m := newManager(t)
	s, err := m.connect("app", 3)
	if err != nil {
		t.Fatal(err)
	}
	if s.Blocked() {
		t.Error("fresh session blocked")
	}
	m.Block(s)
	if !s.Blocked() {
		t.Error("Block did not block all threads")
	}
	if m.SignalsSent() != 3 {
		t.Errorf("signals sent = %d, want 3 (one per thread)", m.SignalsSent())
	}
	m.Unblock(s)
	if s.Blocked() {
		t.Error("Unblock did not release")
	}
	if m.SignalsSent() != 6 {
		t.Errorf("signals sent = %d, want 6", m.SignalsSent())
	}
}

func TestProtocolErrors(t *testing.T) {
	m := newManager(t)
	l := serve(t, m)
	conn, err := net.Dial("tcp", l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	// Connect with zero threads must fail.
	if _, err := Connect(conn, "bad", 0); err == nil {
		t.Error("zero-thread connect accepted")
	}
}

func TestConcurrentClients(t *testing.T) {
	m := newManager(t)
	l := serve(t, m)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c, err := Dial("tcp", l.Addr().String(), "app", 1+i%3)
			if err != nil {
				t.Error(err)
				return
			}
			c.ThreadCreated()
			c.ThreadDestroyed()
			c.Disconnect()
		}(i)
	}
	wg.Wait()
	if n := len(m.Sessions()); n != 0 {
		t.Errorf("%d sessions leaked", n)
	}
}
