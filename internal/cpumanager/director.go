package cpumanager

import (
	"errors"
	"sort"
	"sync"

	"busaware/internal/sched"
	"busaware/internal/units"
	"busaware/internal/workload"
)

// Director closes the loop between a Manager and a scheduling policy:
// each quantum it reads every session's shared arena, feeds the
// per-thread bandwidth samples to the policy, runs the selection, and
// enforces the outcome with block/unblock signals. It is the
// "scheduling brain" of the user-level CPU manager — cmd/cpumgr wires
// it to live clients, and the tests drive it with synthetic sessions.
type Director struct {
	mgr    *Manager
	policy *sched.BandwidthAware

	mu   sync.Mutex
	jobs map[uint64]*sched.Job
	now  units.Time
}

// NewDirector builds a director enforcing the given policy over the
// manager's sessions.
func NewDirector(mgr *Manager, policy *sched.BandwidthAware) (*Director, error) {
	if mgr == nil || policy == nil {
		return nil, errors.New("cpumanager: director needs a manager and a policy")
	}
	return &Director{
		mgr:    mgr,
		policy: policy,
		jobs:   make(map[uint64]*sched.Job),
	}, nil
}

// Admitted is the outcome of one Tick: the sessions unblocked for the
// coming quantum, in allocation order.
type Admitted struct {
	Sessions []*Session
	// Blocked counts the sessions signalled to stop.
	Blocked int
	// Reaped counts the sessions reclaimed this quantum because their
	// application went silent past the manager's reap timeout.
	Reaped int
}

// Tick runs one scheduling quantum: reap dead sessions, sample arenas,
// select, signal.
func (d *Director) Tick() Admitted {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.now += d.policy.Quantum()

	var out Admitted
	out.Reaped = len(d.mgr.Reap(d.now))

	sessions := d.mgr.Sessions()
	sort.Slice(sessions, func(i, j int) bool { return sessions[i].ID < sessions[j].ID })

	// Register new sessions, drop dead ones.
	live := make(map[uint64]bool, len(sessions))
	for _, s := range sessions {
		live[s.ID] = true
		if _, ok := d.jobs[s.ID]; ok {
			continue
		}
		s.Touch(d.now)
		// The placeholder App carries the gang size; the policy never
		// touches workload state for externally-managed applications.
		p := workload.Profile{
			Name:    s.Instance,
			Threads: s.Threads(),
			Phases:  []workload.Phase{{Duration: units.Second, Demand: 0}},
		}
		j := sched.NewJob(workload.NewApp(p, s.Instance), d.policy.WindowLen(), 0)
		d.jobs[s.ID] = j
		d.policy.Add(j)
	}
	for id, j := range d.jobs {
		if !live[id] {
			d.policy.Remove(j)
			delete(d.jobs, id)
		}
	}

	// Sample arenas: only fresh pages contribute (a blocked
	// application publishes nothing, so its last estimate persists —
	// the paper's "statistics for all running jobs" rule). A fresh
	// publish is also proof of life for the reaper.
	byJob := make(map[*sched.Job]*Session, len(sessions))
	for _, s := range sessions {
		j := d.jobs[s.ID]
		byJob[j] = s
		if rate, epoch, _ := s.Arena.Read(); epoch > 0 && s.Arena.FreshAt(d.now) {
			s.Touch(d.now)
			if n := s.Threads(); n > 0 {
				j.PushSample(rate / units.Rate(n))
			}
		}
	}

	selected := d.policy.Select()
	admitted := make(map[*Session]bool, len(selected))
	for _, j := range selected {
		if s := byJob[j]; s != nil {
			admitted[s] = true
			out.Sessions = append(out.Sessions, s)
		}
	}
	for _, s := range sessions {
		if admitted[s] {
			d.mgr.Unblock(s)
		} else {
			d.mgr.Block(s)
			out.Blocked++
		}
	}
	// Rotate the applications list as Schedule would.
	d.policy.Schedule(d.now, nil)
	return out
}

// Jobs returns the number of sessions currently tracked.
func (d *Director) Jobs() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return len(d.jobs)
}
