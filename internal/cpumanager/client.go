package cpumanager

import (
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"time"

	"busaware/internal/faults"
	"busaware/internal/units"
)

// Client is the application side of the protocol — the paper's
// "run-time library which accompanies the CPU manager" and "offers all
// the necessary functionality for the cooperation between the CPU
// manager and applications". The only source modifications a real
// application needed were connect/disconnect calls and interception of
// thread creation and destruction; Client exposes exactly those.
//
// The client treats the wire as unreliable: requests can carry a
// deadline (WithRequestTimeout) and time-outs are retried with bounded
// exponential backoff (WithRetry). Every transport error is wrapped
// with the failing operation, so callers can branch with errors.Is /
// errors.As (net.Error for timeouts) instead of string matching.
type Client struct {
	conn net.Conn
	dec  *json.Decoder

	sessionID    uint64
	updatePeriod units.Time
	quantum      units.Time

	reqTimeout time.Duration
	attempts   int
	backoff    time.Duration
	sleep      faults.Sleeper
}

// ClientOption tweaks a Client's wire behaviour.
type ClientOption func(*Client)

// WithRequestTimeout sets a per-request deadline on the connection;
// zero (the default) never times out.
func WithRequestTimeout(d time.Duration) ClientOption {
	return func(c *Client) {
		if d > 0 {
			c.reqTimeout = d
		}
	}
}

// WithRetry retries timed-out requests up to attempts times in total,
// sleeping base, 2*base, 4*base, ... between tries, saturating at
// MaxRetryBackoff. Only timeouts are retried: a request that timed out
// before reaching the manager is safe to resend, while a decode error
// or a refused operation is not.
func WithRetry(attempts int, base time.Duration) ClientOption {
	return func(c *Client) {
		if attempts >= 1 {
			c.attempts = attempts
		}
		if base > 0 {
			c.backoff = base
		}
	}
}

// withSleeper substitutes the backoff clock, so tests assert the
// exact delay sequence without real sleeping.
func withSleeper(s faults.Sleeper) ClientOption {
	return func(c *Client) { c.sleep = s }
}

// DefaultRetryBackoff is the base backoff delay WithRetry falls back
// to when given a non-positive base.
const DefaultRetryBackoff = 10 * time.Millisecond

// MaxRetryBackoff caps the exponential backoff between retries. The
// doubling is a left shift, and without a ceiling a generous attempt
// budget either sleeps absurdly long or shifts past 63 bits and
// produces a negative time.Duration; every retry delay saturates here
// instead.
const MaxRetryBackoff = 2 * time.Second

// retryDelay returns the backoff before retry attempt try (try >= 1):
// base, 2*base, 4*base, ... saturating at MaxRetryBackoff. The shift
// count is bounded before shifting so the doubling can never overflow
// time.Duration's int64, no matter the attempt budget.
func retryDelay(base time.Duration, try int) time.Duration {
	if base <= 0 {
		base = DefaultRetryBackoff
	}
	if base >= MaxRetryBackoff {
		return MaxRetryBackoff
	}
	for shift := try - 1; shift > 0; shift-- {
		base <<= 1
		if base >= MaxRetryBackoff {
			return MaxRetryBackoff
		}
	}
	return base
}

// Connect performs the handshake over an established connection.
func Connect(conn net.Conn, instance string, threads int, opts ...ClientOption) (*Client, error) {
	c := &Client{
		conn:     conn,
		dec:      json.NewDecoder(conn),
		attempts: 1,
		backoff:  DefaultRetryBackoff,
	}
	for _, o := range opts {
		o(c)
	}
	resp, err := c.roundTrip(Request{Op: OpConnect, Instance: instance, Threads: threads})
	if err != nil {
		return nil, fmt.Errorf("cpumgr connect: %w", err)
	}
	c.sessionID = resp.Session
	c.updatePeriod = units.Time(resp.UpdatePeriodUs)
	c.quantum = units.Time(resp.QuantumUs)
	return c, nil
}

// Dial connects to the manager's listener address and performs the
// handshake.
func Dial(network, addr, instance string, threads int, opts ...ClientOption) (*Client, error) {
	conn, err := net.Dial(network, addr)
	if err != nil {
		return nil, fmt.Errorf("cpumgr connect: %w", err)
	}
	c, err := Connect(conn, instance, threads, opts...)
	if err != nil {
		conn.Close()
		return nil, err
	}
	return c, nil
}

// isTimeout reports whether err is a transport timeout — the only
// error class the client retries.
func isTimeout(err error) bool {
	var ne net.Error
	return errors.As(err, &ne) && ne.Timeout()
}

// roundTrip sends one request and awaits the response, retrying
// timeouts with exponential backoff up to the configured attempt
// budget.
func (c *Client) roundTrip(req Request) (Response, error) {
	attempts := c.attempts
	if attempts < 1 {
		attempts = 1
	}
	var lastErr error
	for try := 0; try < attempts; try++ {
		if try > 0 {
			c.sleep.Sleep(retryDelay(c.backoff, try))
		}
		resp, err := c.exchange(req)
		if err == nil {
			return resp, nil
		}
		if !isTimeout(err) {
			return Response{}, err
		}
		lastErr = err
	}
	return Response{}, fmt.Errorf("cpumgr %s: gave up after %d attempts: %w", req.Op, attempts, lastErr)
}

// exchange performs one send/receive with the configured deadline.
func (c *Client) exchange(req Request) (Response, error) {
	if c.reqTimeout > 0 {
		if err := c.conn.SetDeadline(time.Now().Add(c.reqTimeout)); err != nil {
			return Response{}, fmt.Errorf("cpumgr %s deadline: %w", req.Op, err)
		}
		defer c.conn.SetDeadline(time.Time{})
	}
	// Marshal and write by hand rather than through a json.Encoder: an
	// Encoder latches its first write error and replays it forever,
	// which would turn one timed-out send into a permanently dead
	// client no retry can revive.
	buf, err := json.Marshal(req)
	if err != nil {
		return Response{}, fmt.Errorf("cpumgr send %s: %w", req.Op, err)
	}
	if _, err := c.conn.Write(append(buf, '\n')); err != nil {
		return Response{}, fmt.Errorf("cpumgr send %s: %w", req.Op, err)
	}
	var resp Response
	if err := c.dec.Decode(&resp); err != nil {
		return Response{}, fmt.Errorf("cpumgr recv %s: %w", req.Op, err)
	}
	if !resp.OK {
		return resp, fmt.Errorf("cpumanager: %s", resp.Err)
	}
	return resp, nil
}

// SessionID returns the identifier assigned by the manager.
func (c *Client) SessionID() uint64 { return c.sessionID }

// UpdatePeriod returns how often the application must publish its bus
// transaction rate (half the manager's quantum).
func (c *Client) UpdatePeriod() units.Time { return c.updatePeriod }

// Quantum returns the manager's scheduling quantum.
func (c *Client) Quantum() units.Time { return c.quantum }

// ThreadCreated reports an intercepted thread creation.
func (c *Client) ThreadCreated() error {
	_, err := c.roundTrip(Request{Op: OpThreadCreate})
	return err
}

// ThreadDestroyed reports an intercepted thread destruction.
func (c *Client) ThreadDestroyed() error {
	_, err := c.roundTrip(Request{Op: OpThreadDestroy})
	return err
}

// Disconnect tears the session down and closes the connection.
func (c *Client) Disconnect() error {
	if c.sessionID == 0 {
		return errors.New("cpumgr disconnect: not connected")
	}
	_, err := c.roundTrip(Request{Op: OpDisconnect})
	c.sessionID = 0
	cerr := c.conn.Close()
	if err != nil {
		return err
	}
	return cerr
}
