package cpumanager

import (
	"encoding/json"
	"errors"
	"fmt"
	"net"

	"busaware/internal/units"
)

// Client is the application side of the protocol — the paper's
// "run-time library which accompanies the CPU manager" and "offers all
// the necessary functionality for the cooperation between the CPU
// manager and applications". The only source modifications a real
// application needed were connect/disconnect calls and interception of
// thread creation and destruction; Client exposes exactly those.
type Client struct {
	conn net.Conn
	enc  *json.Encoder
	dec  *json.Decoder

	sessionID    uint64
	updatePeriod units.Time
	quantum      units.Time
}

// Connect performs the handshake over an established connection.
func Connect(conn net.Conn, instance string, threads int) (*Client, error) {
	c := &Client{
		conn: conn,
		enc:  json.NewEncoder(conn),
		dec:  json.NewDecoder(conn),
	}
	resp, err := c.roundTrip(Request{Op: OpConnect, Instance: instance, Threads: threads})
	if err != nil {
		return nil, err
	}
	c.sessionID = resp.Session
	c.updatePeriod = units.Time(resp.UpdatePeriodUs)
	c.quantum = units.Time(resp.QuantumUs)
	return c, nil
}

// Dial connects to the manager's listener address and performs the
// handshake.
func Dial(network, addr, instance string, threads int) (*Client, error) {
	conn, err := net.Dial(network, addr)
	if err != nil {
		return nil, err
	}
	c, err := Connect(conn, instance, threads)
	if err != nil {
		conn.Close()
		return nil, err
	}
	return c, nil
}

func (c *Client) roundTrip(req Request) (Response, error) {
	if err := c.enc.Encode(req); err != nil {
		return Response{}, err
	}
	var resp Response
	if err := c.dec.Decode(&resp); err != nil {
		return Response{}, err
	}
	if !resp.OK {
		return resp, fmt.Errorf("cpumanager: %s", resp.Err)
	}
	return resp, nil
}

// SessionID returns the identifier assigned by the manager.
func (c *Client) SessionID() uint64 { return c.sessionID }

// UpdatePeriod returns how often the application must publish its bus
// transaction rate (half the manager's quantum).
func (c *Client) UpdatePeriod() units.Time { return c.updatePeriod }

// Quantum returns the manager's scheduling quantum.
func (c *Client) Quantum() units.Time { return c.quantum }

// ThreadCreated reports an intercepted thread creation.
func (c *Client) ThreadCreated() error {
	_, err := c.roundTrip(Request{Op: OpThreadCreate})
	return err
}

// ThreadDestroyed reports an intercepted thread destruction.
func (c *Client) ThreadDestroyed() error {
	_, err := c.roundTrip(Request{Op: OpThreadDestroy})
	return err
}

// Disconnect tears the session down and closes the connection.
func (c *Client) Disconnect() error {
	if c.sessionID == 0 {
		return errors.New("cpumanager: not connected")
	}
	_, err := c.roundTrip(Request{Op: OpDisconnect})
	c.sessionID = 0
	cerr := c.conn.Close()
	if err != nil {
		return err
	}
	return cerr
}
