package cache

import (
	"math/rand"
	"testing"
	"testing/quick"

	"busaware/internal/mem"
	"busaware/internal/units"
)

func mustNew(t *testing.T, cfg Config) *Cache {
	t.Helper()
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestConfigValidate(t *testing.T) {
	tests := []struct {
		name string
		cfg  Config
		ok   bool
	}{
		{"xeon", XeonL2(), true},
		{"zero", Config{}, false},
		{"size-not-multiple", Config{Size: 100, LineSize: 64, Assoc: 1}, false},
		{"bad-assoc", Config{Size: 64 * 3, LineSize: 64, Assoc: 2}, false},
		{"non-pow2-sets", Config{Size: 64 * 6, LineSize: 64, Assoc: 2}, false},
		{"non-pow2-line", Config{Size: 96 * 4, LineSize: 96, Assoc: 1}, false},
		{"direct-mapped", Config{Size: 4 * units.KB, LineSize: 64, Assoc: 1}, true},
		{"fully-assoc-one-set", Config{Size: 1 * units.KB, LineSize: 64, Assoc: 16}, true},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.cfg.Validate()
			if (err == nil) != tc.ok {
				t.Errorf("Validate(%+v) err = %v, want ok=%v", tc.cfg, err, tc.ok)
			}
		})
	}
}

func TestXeonGeometry(t *testing.T) {
	cfg := XeonL2()
	if cfg.Sets() != 512 {
		t.Errorf("Xeon L2 sets = %d, want 512", cfg.Sets())
	}
}

func TestHitAfterFill(t *testing.T) {
	c := mustNew(t, XeonL2())
	if c.Access(0x1000, false) {
		t.Error("first access should miss")
	}
	if !c.Access(0x1000, false) {
		t.Error("second access should hit")
	}
	// Same line, different offset.
	if !c.Access(0x103F, false) {
		t.Error("same-line access should hit")
	}
	// Next line misses.
	if c.Access(0x1040, false) {
		t.Error("next-line access should miss")
	}
	s := c.Stats()
	if s.Refs != 4 || s.Hits != 2 || s.Misses != 2 {
		t.Errorf("stats = %+v", s)
	}
}

func TestLRUEviction(t *testing.T) {
	// Direct construction of a tiny 2-way cache with 2 sets.
	cfg := Config{Size: 256, LineSize: 64, Assoc: 2} // 4 lines, 2 sets
	c := mustNew(t, cfg)
	// Addresses mapping to set 0: line addresses with even line index.
	a0 := mem.Addr(0 * 64) // set 0
	a1 := mem.Addr(2 * 64) // set 0
	a2 := mem.Addr(4 * 64) // set 0
	c.Access(a0, false)
	c.Access(a1, false)
	c.Access(a0, false) // a0 now MRU, a1 LRU
	c.Access(a2, false) // evicts a1
	if !c.Access(a0, false) {
		t.Error("a0 should still be resident")
	}
	if c.Access(a1, false) {
		t.Error("a1 should have been evicted (LRU)")
	}
}

func TestDirtyWriteback(t *testing.T) {
	cfg := Config{Size: 128, LineSize: 64, Assoc: 1} // 2 sets, direct mapped
	c := mustNew(t, cfg)
	c.Access(0, true)     // dirty line in set 0
	c.Access(2*64, false) // evicts it -> writeback
	s := c.Stats()
	if s.Writebacks != 1 {
		t.Errorf("writebacks = %d, want 1", s.Writebacks)
	}
	if got := s.BusTransactions(); got != s.Misses+1 {
		t.Errorf("bus transactions = %d, want misses+1 = %d", got, s.Misses+1)
	}
}

func TestFlushCountsDirtyLines(t *testing.T) {
	c := mustNew(t, XeonL2())
	for i := 0; i < 10; i++ {
		c.Access(mem.Addr(i*64), true)
	}
	c.ResetStats()
	c.Flush()
	if got := c.Stats().Writebacks; got != 10 {
		t.Errorf("flush writebacks = %d, want 10", got)
	}
	if c.ResidentLines() != 0 {
		t.Errorf("resident after flush = %d", c.ResidentLines())
	}
}

func TestResidentBytes(t *testing.T) {
	c := mustNew(t, XeonL2())
	for i := 0; i < 100; i++ {
		c.Access(mem.Addr(i*64), false)
	}
	if got := c.ResidentBytes(); got != 100*64 {
		t.Errorf("resident = %v, want 6400B", got)
	}
}

// The paper's BBMA microbenchmark: column-wise writes over an array 2x
// the L2 -> "almost 0% cache hit rate".
func TestBBMAHitRateNearZero(t *testing.T) {
	cfg := XeonL2()
	c := mustNew(t, cfg)
	tr := mem.NewBBMA(cfg.Size, cfg.LineSize)
	s := c.Run(tr)
	if s.Refs == 0 {
		t.Fatal("BBMA produced no references")
	}
	if hr := s.HitRate(); hr > 0.01 {
		t.Errorf("BBMA hit rate = %.4f, want ~0", hr)
	}
}

// The paper's nBBMA microbenchmark: row-wise over half the L2 ->
// hit rate approaching 100% (only compulsory misses).
func TestNBBMAHitRateNearOne(t *testing.T) {
	cfg := XeonL2()
	c := mustNew(t, cfg)
	tr := mem.NewNBBMA(cfg.Size, 50)
	s := c.Run(tr)
	if hr := s.HitRate(); hr < 0.97 {
		t.Errorf("nBBMA hit rate = %.4f, want ~1", hr)
	}
}

// STREAM-like traffic (arrays >> cache) should miss on every new line:
// hit rate ~= 1 - 1/(elements per line) for sequential 8-byte refs.
func TestStreamTraceMissBehaviour(t *testing.T) {
	cfg := XeonL2()
	c := mustNew(t, cfg)
	tr := &mem.StreamTrace{Kernel: mem.StreamCopy, ArrayBytes: 4 * cfg.Size, Passes: 2, Base: 1 << 30}
	s := c.Run(tr)
	// 8 elements per 64B line; copy touches 2 arrays; expected miss rate
	// ~1/8 per reference stream.
	mr := s.MissRate()
	if mr < 0.10 || mr > 0.15 {
		t.Errorf("stream miss rate = %.4f, want ~0.125", mr)
	}
}

func TestRunIsolatesStats(t *testing.T) {
	cfg := XeonL2()
	c := mustNew(t, cfg)
	t1 := &mem.Strided{ArrayBytes: cfg.Size, Stride: 64, Count: 100}
	s1 := c.Run(t1)
	t2 := &mem.Strided{ArrayBytes: cfg.Size, Stride: 64, Count: 100}
	s2 := c.Run(t2)
	if s1.Refs != 100 || s2.Refs != 100 {
		t.Errorf("per-run refs = %d, %d; want 100 each", s1.Refs, s2.Refs)
	}
	if s2.Hits != 100 {
		t.Errorf("second identical run hits = %d, want 100 (cache warm)", s2.Hits)
	}
}

// Property: refs == hits + misses, always.
func TestStatsConservationProperty(t *testing.T) {
	f := func(seed int64, n uint16) bool {
		cfg := Config{Size: 8 * units.KB, LineSize: 64, Assoc: 4}
		c, err := New(cfg)
		if err != nil {
			return false
		}
		tr := &mem.Random{ArrayBytes: 64 * units.KB, Count: int(n), WriteFrac: 0.3, Seed: seed}
		s := c.Run(tr)
		return s.Refs == s.Hits+s.Misses && s.Refs == uint64(n)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// Property: resident lines never exceed capacity, and a working set
// smaller than the cache eventually stops missing.
func TestCapacityProperty(t *testing.T) {
	cfg := Config{Size: 4 * units.KB, LineSize: 64, Assoc: 4}
	c := mustNew(t, cfg)
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 10000; i++ {
		c.Access(mem.Addr(rng.Int63n(1<<20)), rng.Intn(2) == 0)
		if rl := c.ResidentLines(); rl > int(cfg.Size/cfg.LineSize) {
			t.Fatalf("resident lines %d exceeds capacity %d", rl, cfg.Size/cfg.LineSize)
		}
	}
}

func TestSmallWorkingSetConverges(t *testing.T) {
	cfg := XeonL2()
	c := mustNew(t, cfg)
	// 16KB working set walked repeatedly: after warmup, no misses.
	warm := &mem.RowWise{ArrayBytes: 16 * units.KB, Elem: 8, Passes: 1}
	c.Run(warm)
	c.ResetStats()
	steady := &mem.RowWise{ArrayBytes: 16 * units.KB, Elem: 8, Passes: 5}
	s := c.Run(steady)
	if s.Misses != 0 {
		t.Errorf("steady-state misses = %d, want 0", s.Misses)
	}
}

func TestWorkingSetRefill(t *testing.T) {
	ws := WorkingSet{Bytes: 256 * units.KB, HitRate: 0.99, DirtyFrac: 0.5}
	lines := uint64(256 * 1024 / 64)
	got := ws.RefillTransactions(64)
	want := lines + lines/2
	if got != want {
		t.Errorf("refill = %d, want %d", got, want)
	}
	if ws.RefillTransactions(0) != 0 {
		t.Error("zero line size should yield zero refill")
	}
	if (WorkingSet{}).RefillTransactions(64) != 0 {
		t.Error("empty working set should yield zero refill")
	}
}

func TestWarmupRefs(t *testing.T) {
	ws := WorkingSet{Bytes: 64 * 100, HitRate: 0.9}
	// 100 lines at 10% miss rate -> ~1000 refs.
	if got := ws.WarmupRefs(64); got != 1000 {
		t.Errorf("warmup refs = %d, want 1000", got)
	}
	// Hit rate 1.0 is clamped so warmup stays finite.
	ws.HitRate = 1.0
	if got := ws.WarmupRefs(64); got == 0 || got > 100*1000 {
		t.Errorf("clamped warmup refs = %d", got)
	}
}
