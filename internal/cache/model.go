package cache

import "busaware/internal/units"

// Analytic working-set model used by the machine simulator for the
// paper's applications, where we have calibrated hit rates rather than
// address traces. It answers two questions the scheduler experiments
// depend on:
//
//  1. How many extra bus transactions does a migrated thread pay to
//     rebuild its working set on a cold cache? (The paper attributes
//     LU CB's and Water-nsqr's outsized slowdowns to exactly this.)
//  2. How does a thread's steady-state bus demand split into capacity
//     traffic versus refill bursts?

// WorkingSet describes a thread's steady-state cache footprint.
type WorkingSet struct {
	// Bytes is the resident footprint the thread builds in a warm L2.
	Bytes units.Bytes
	// HitRate is the steady-state L2 hit rate once warm (0..1).
	HitRate float64
	// DirtyFrac is the fraction of resident lines that are dirty and
	// must be written back when the working set is evicted.
	DirtyFrac float64
}

// RefillTransactions returns the bus transactions needed to rebuild the
// working set from memory after a migration: one fill per line, plus
// writebacks of the dirty fraction from the old cache.
func (ws WorkingSet) RefillTransactions(lineSize units.Bytes) uint64 {
	if lineSize <= 0 || ws.Bytes <= 0 {
		return 0
	}
	lines := uint64((ws.Bytes + lineSize - 1) / lineSize)
	wb := uint64(float64(lines) * clamp01(ws.DirtyFrac))
	return lines + wb
}

// WarmupRefs estimates how many references it takes to rebuild the
// working set, assuming each miss installs one line and the warm hit
// rate applies to the remainder. Used to convert a refill burst into a
// transient duration at a given reference rate.
func (ws WorkingSet) WarmupRefs(lineSize units.Bytes) uint64 {
	if lineSize <= 0 || ws.Bytes <= 0 {
		return 0
	}
	lines := uint64((ws.Bytes + lineSize - 1) / lineSize)
	miss := 1 - clamp01(ws.HitRate)
	if miss < 0.01 {
		miss = 0.01 // even a 100%-hit thread must touch each line once
	}
	return uint64(float64(lines) / miss)
}

func clamp01(x float64) float64 {
	if x < 0 {
		return 0
	}
	if x > 1 {
		return 1
	}
	return x
}
