// Package cache implements a set-associative write-allocate LRU cache
// simulator modelled on the Xeon's 256KB 8-way L2 with 64-byte lines,
// plus the small analytic helpers the machine model uses to reason
// about working sets and migration refills.
//
// The simulator exists for two reasons. First, it derives the paper's
// microbenchmark properties (BBMA ~0% hit rate, nBBMA ~100%) from the
// access patterns instead of hard-coding them; see the tests and
// cmd/figures -fig hit. Second, it provides the per-thread working-set
// accounting the machine model uses to charge cache-refill bus traffic
// after a thread migrates between processors.
package cache

import (
	"fmt"

	"busaware/internal/mem"
	"busaware/internal/units"
)

// Config describes a cache geometry.
type Config struct {
	Size     units.Bytes // total capacity
	LineSize units.Bytes // bytes per line
	Assoc    int         // ways per set
}

// XeonL2 is the paper machine's per-processor L2: 256KB, 8-way,
// 64-byte lines.
func XeonL2() Config {
	return Config{Size: 256 * units.KB, LineSize: 64, Assoc: 8}
}

// Validate checks the geometry for internal consistency.
func (c Config) Validate() error {
	if c.Size <= 0 || c.LineSize <= 0 || c.Assoc <= 0 {
		return fmt.Errorf("cache: non-positive geometry %+v", c)
	}
	if c.Size%c.LineSize != 0 {
		return fmt.Errorf("cache: size %v not a multiple of line size %v", c.Size, c.LineSize)
	}
	lines := int(c.Size / c.LineSize)
	if lines%c.Assoc != 0 {
		return fmt.Errorf("cache: %d lines not divisible by associativity %d", lines, c.Assoc)
	}
	sets := lines / c.Assoc
	if sets&(sets-1) != 0 {
		return fmt.Errorf("cache: set count %d not a power of two", sets)
	}
	if c.LineSize&(c.LineSize-1) != 0 {
		return fmt.Errorf("cache: line size %v not a power of two", c.LineSize)
	}
	return nil
}

// Sets returns the number of sets implied by the geometry.
func (c Config) Sets() int { return int(c.Size/c.LineSize) / c.Assoc }

// line is one cache line's bookkeeping.
type line struct {
	tag   uint64
	valid bool
	dirty bool
	// lru is a per-set logical clock value; larger is more recent.
	lru uint64
}

// Stats accumulates reference outcomes.
type Stats struct {
	Refs       uint64
	Hits       uint64
	Misses     uint64
	Writebacks uint64
}

// HitRate returns hits/refs, or 0 with no references.
func (s Stats) HitRate() float64 {
	if s.Refs == 0 {
		return 0
	}
	return float64(s.Hits) / float64(s.Refs)
}

// MissRate returns misses/refs, or 0 with no references.
func (s Stats) MissRate() float64 {
	if s.Refs == 0 {
		return 0
	}
	return float64(s.Misses) / float64(s.Refs)
}

// BusTransactions returns the number of bus transactions the recorded
// activity generated: one line fill per miss plus one writeback per
// dirty eviction.
func (s Stats) BusTransactions() uint64 { return s.Misses + s.Writebacks }

// Cache is a set-associative LRU cache simulator. It is not safe for
// concurrent use; the machine model owns one per processor.
type Cache struct {
	cfg      Config
	sets     [][]line
	clock    uint64
	stats    Stats
	setShift uint
	setMask  uint64
}

// New builds a cache from cfg. It returns an error if the geometry is
// invalid.
func New(cfg Config) (*Cache, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	nsets := cfg.Sets()
	sets := make([][]line, nsets)
	backing := make([]line, nsets*cfg.Assoc)
	for i := range sets {
		sets[i], backing = backing[:cfg.Assoc:cfg.Assoc], backing[cfg.Assoc:]
	}
	shift := uint(0)
	for l := cfg.LineSize; l > 1; l >>= 1 {
		shift++
	}
	return &Cache{
		cfg:      cfg,
		sets:     sets,
		setShift: shift,
		setMask:  uint64(nsets - 1),
	}, nil
}

// Config returns the cache geometry.
func (c *Cache) Config() Config { return c.cfg }

// Stats returns a copy of the accumulated statistics.
func (c *Cache) Stats() Stats { return c.stats }

// ResetStats zeroes the counters without disturbing cache contents.
func (c *Cache) ResetStats() { c.stats = Stats{} }

// Flush invalidates every line, counting writebacks for dirty ones.
// This models losing cache state, e.g. on thread migration.
func (c *Cache) Flush() {
	for si := range c.sets {
		for wi := range c.sets[si] {
			l := &c.sets[si][wi]
			if l.valid && l.dirty {
				c.stats.Writebacks++
			}
			*l = line{}
		}
	}
}

// Access performs one reference and reports whether it hit.
func (c *Cache) Access(addr mem.Addr, write bool) bool {
	c.stats.Refs++
	c.clock++
	lineAddr := uint64(addr) >> c.setShift
	set := c.sets[lineAddr&c.setMask]
	tag := lineAddr >> 0 // full line address as tag; sets overlap is fine

	// Hit path.
	for wi := range set {
		l := &set[wi]
		if l.valid && l.tag == tag {
			l.lru = c.clock
			if write {
				l.dirty = true
			}
			c.stats.Hits++
			return true
		}
	}

	// Miss: fill, evicting the LRU way.
	c.stats.Misses++
	victim := &set[0]
	for wi := 1; wi < len(set); wi++ {
		l := &set[wi]
		if !l.valid {
			victim = l
			break
		}
		if !victim.valid {
			break
		}
		if l.lru < victim.lru {
			victim = l
		}
	}
	if victim.valid && victim.dirty {
		c.stats.Writebacks++
	}
	*victim = line{tag: tag, valid: true, dirty: write, lru: c.clock}
	return false
}

// ResidentLines returns the number of valid lines, i.e. the resident
// working set in lines.
func (c *Cache) ResidentLines() int {
	n := 0
	for si := range c.sets {
		for wi := range c.sets[si] {
			if c.sets[si][wi].valid {
				n++
			}
		}
	}
	return n
}

// ResidentBytes returns the resident working set in bytes.
func (c *Cache) ResidentBytes() units.Bytes {
	return units.Bytes(c.ResidentLines()) * c.cfg.LineSize
}

// Run plays an entire trace through the cache and returns the stats
// delta for just that trace.
func (c *Cache) Run(t mem.Trace) Stats {
	before := c.stats
	for {
		addr, write, ok := t.Next()
		if !ok {
			break
		}
		c.Access(addr, write)
	}
	after := c.stats
	return Stats{
		Refs:       after.Refs - before.Refs,
		Hits:       after.Hits - before.Hits,
		Misses:     after.Misses - before.Misses,
		Writebacks: after.Writebacks - before.Writebacks,
	}
}
