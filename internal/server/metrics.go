package server

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"sync"
	"time"
)

// latencyBuckets are the histogram upper bounds in seconds. Simulation
// cells run milliseconds to a few seconds, so the buckets straddle
// both the cache-hit path (sub-millisecond) and cold heavy cells.
var latencyBuckets = []float64{0.001, 0.005, 0.025, 0.1, 0.25, 0.5, 1, 2.5, 5, 10}

// metrics accumulates the serving-side counters exposed on /metrics in
// Prometheus text exposition format. Hand-rolled on the stdlib — the
// repository is dependency-free by charter — and deliberately small:
// request counts by status code, one latency histogram, and the
// queue/cache/pool gauges read live from the Server at render time.
type metrics struct {
	mu      sync.Mutex
	codes   map[int]uint64
	counts  []uint64 // cumulative-at-render, stored per-bucket here
	sum     float64
	count   uint64
	started time.Time

	// lateCached counts cells whose requester gave up (504/disconnect)
	// but whose result was salvaged into the response cache anyway.
	lateCached uint64

	// sweepCells counts per-cell sweep outcomes by label: "hit",
	// "hit-t2", "hit-t3", "miss", "error".
	sweepCells map[string]uint64

	// deadlineShed counts work dropped because the propagated
	// X-Deadline-Ms had already passed, by stage: "admission" (refused
	// before entering the pool) or "dequeue" (aged out in the queue).
	deadlineShed map[string]uint64
}

func newMetrics() *metrics {
	return &metrics{
		codes:        make(map[int]uint64),
		counts:       make([]uint64, len(latencyBuckets)+1), // +1 for +Inf
		started:      time.Now(),
		sweepCells:   make(map[string]uint64),
		deadlineShed: make(map[string]uint64),
	}
}

// observe records one finished request.
func (m *metrics) observe(code int, d time.Duration) {
	secs := d.Seconds()
	m.mu.Lock()
	defer m.mu.Unlock()
	m.codes[code]++
	m.sum += secs
	m.count++
	for i, ub := range latencyBuckets {
		if secs <= ub {
			m.counts[i]++
			return
		}
	}
	m.counts[len(latencyBuckets)]++
}

// observeLateCached records one salvaged late completion.
func (m *metrics) observeLateCached() {
	m.mu.Lock()
	m.lateCached++
	m.mu.Unlock()
}

// observeDeadlineShed records one request or cell dropped on an
// expired propagated deadline.
func (m *metrics) observeDeadlineShed(stage string) {
	m.mu.Lock()
	m.deadlineShed[stage]++
	m.mu.Unlock()
}

// observeSweepCell records one streamed sweep line by outcome.
func (m *metrics) observeSweepCell(line SweepCellResult) {
	outcome := "error"
	if line.Status == 200 {
		outcome = line.Cache // "hit", "hit-t2", "hit-t3" or "miss"
	}
	m.mu.Lock()
	m.sweepCells[outcome]++
	m.mu.Unlock()
}

// write renders the full exposition: request counters and the latency
// histogram from m, plus live gauges from srv (queue, pool, cache).
func (m *metrics) write(w io.Writer, srv *Server) {
	m.mu.Lock()
	codes := make([]int, 0, len(m.codes))
	for c := range m.codes {
		codes = append(codes, c)
	}
	sort.Ints(codes)
	counts := append([]uint64(nil), m.counts...)
	sum, count := m.sum, m.count
	lateCached := m.lateCached
	sweepOutcomes := make([]string, 0, len(m.sweepCells))
	for o := range m.sweepCells {
		sweepOutcomes = append(sweepOutcomes, o)
	}
	sort.Strings(sweepOutcomes)
	sweepVals := make([]uint64, len(sweepOutcomes))
	for i, o := range sweepOutcomes {
		sweepVals[i] = m.sweepCells[o]
	}
	shedStages := make([]string, 0, len(m.deadlineShed))
	for st := range m.deadlineShed {
		shedStages = append(shedStages, st)
	}
	sort.Strings(shedStages)
	shedVals := make([]uint64, len(shedStages))
	for i, st := range shedStages {
		shedVals[i] = m.deadlineShed[st]
	}
	codeVals := make([]uint64, len(codes))
	for i, c := range codes {
		codeVals[i] = m.codes[c]
	}
	m.mu.Unlock()

	fmt.Fprintln(w, "# HELP smpsimd_requests_total Requests finished, by HTTP status code.")
	fmt.Fprintln(w, "# TYPE smpsimd_requests_total counter")
	for i, c := range codes {
		fmt.Fprintf(w, "smpsimd_requests_total{code=%q} %d\n", strconv.Itoa(c), codeVals[i])
	}

	fmt.Fprintln(w, "# HELP smpsimd_request_duration_seconds Request latency, admission to last byte.")
	fmt.Fprintln(w, "# TYPE smpsimd_request_duration_seconds histogram")
	var cum uint64
	for i, ub := range latencyBuckets {
		cum += counts[i]
		fmt.Fprintf(w, "smpsimd_request_duration_seconds_bucket{le=%q} %d\n", formatFloat(ub), cum)
	}
	cum += counts[len(latencyBuckets)]
	fmt.Fprintf(w, "smpsimd_request_duration_seconds_bucket{le=\"+Inf\"} %d\n", cum)
	fmt.Fprintf(w, "smpsimd_request_duration_seconds_sum %s\n", formatFloat(sum))
	fmt.Fprintf(w, "smpsimd_request_duration_seconds_count %d\n", count)

	pool := srv.pool
	busy, workers := pool.Busy(), pool.Workers()
	fmt.Fprintln(w, "# HELP smpsimd_queue_depth Cells admitted but not yet running.")
	fmt.Fprintln(w, "# TYPE smpsimd_queue_depth gauge")
	fmt.Fprintf(w, "smpsimd_queue_depth %d\n", pool.QueueDepth())
	fmt.Fprintln(w, "# HELP smpsimd_queue_capacity Admission queue bound.")
	fmt.Fprintln(w, "# TYPE smpsimd_queue_capacity gauge")
	fmt.Fprintf(w, "smpsimd_queue_capacity %d\n", pool.QueueCap())
	fmt.Fprintln(w, "# HELP smpsimd_pool_workers Simulation pool size.")
	fmt.Fprintln(w, "# TYPE smpsimd_pool_workers gauge")
	fmt.Fprintf(w, "smpsimd_pool_workers %d\n", workers)
	fmt.Fprintln(w, "# HELP smpsimd_pool_busy Workers currently executing a cell.")
	fmt.Fprintln(w, "# TYPE smpsimd_pool_busy gauge")
	fmt.Fprintf(w, "smpsimd_pool_busy %d\n", busy)
	fmt.Fprintln(w, "# HELP smpsimd_pool_utilization Busy workers over pool size.")
	fmt.Fprintln(w, "# TYPE smpsimd_pool_utilization gauge")
	util := 0.0
	if workers > 0 {
		util = float64(busy) / float64(workers)
	}
	fmt.Fprintf(w, "smpsimd_pool_utilization %s\n", formatFloat(util))
	fmt.Fprintln(w, "# HELP smpsimd_cells_completed_total Simulation cells finished by the pool.")
	fmt.Fprintln(w, "# TYPE smpsimd_cells_completed_total counter")
	fmt.Fprintf(w, "smpsimd_cells_completed_total %d\n", pool.Completed())

	fmt.Fprintln(w, "# HELP smpsimd_late_cached_total Timed-out cells salvaged into the response cache.")
	fmt.Fprintln(w, "# TYPE smpsimd_late_cached_total counter")
	fmt.Fprintf(w, "smpsimd_late_cached_total %d\n", lateCached)

	fmt.Fprintln(w, "# HELP smpsimd_sweep_cells_total Sweep cells streamed, by outcome.")
	fmt.Fprintln(w, "# TYPE smpsimd_sweep_cells_total counter")
	for i, o := range sweepOutcomes {
		fmt.Fprintf(w, "smpsimd_sweep_cells_total{outcome=%q} %d\n", o, sweepVals[i])
	}

	fmt.Fprintln(w, "# HELP smpsimd_deadline_shed_total Work dropped on an expired propagated deadline, by stage.")
	fmt.Fprintln(w, "# TYPE smpsimd_deadline_shed_total counter")
	for i, st := range shedStages {
		fmt.Fprintf(w, "smpsimd_deadline_shed_total{stage=%q} %d\n", st, shedVals[i])
	}

	tlSum, tlWindows, tlDropped, tlSubs := srv.feed.snapshot()
	fmt.Fprintln(w, "# HELP smpsimd_timeline_windows_total Telemetry windows sealed and published to the feed.")
	fmt.Fprintln(w, "# TYPE smpsimd_timeline_windows_total counter")
	fmt.Fprintf(w, "smpsimd_timeline_windows_total %d\n", tlWindows)
	fmt.Fprintln(w, "# HELP smpsimd_timeline_dropped_total Feed events dropped on slow subscribers.")
	fmt.Fprintln(w, "# TYPE smpsimd_timeline_dropped_total counter")
	fmt.Fprintf(w, "smpsimd_timeline_dropped_total %d\n", tlDropped)
	fmt.Fprintln(w, "# HELP smpsimd_timeline_subscribers Live /v1/timeline streams.")
	fmt.Fprintln(w, "# TYPE smpsimd_timeline_subscribers gauge")
	fmt.Fprintf(w, "smpsimd_timeline_subscribers %d\n", tlSubs)
	fmt.Fprintln(w, "# HELP smpsimd_timeline_saturated_quanta_total Quanta whose bus utilization crossed the saturation threshold.")
	fmt.Fprintln(w, "# TYPE smpsimd_timeline_saturated_quanta_total counter")
	fmt.Fprintf(w, "smpsimd_timeline_saturated_quanta_total %d\n", tlSum.Saturated)

	cs := srv.cache.stats()
	fmt.Fprintln(w, "# HELP smpsimd_cache_hits_total Response cache hits.")
	fmt.Fprintln(w, "# TYPE smpsimd_cache_hits_total counter")
	fmt.Fprintf(w, "smpsimd_cache_hits_total %d\n", cs.Hits)
	fmt.Fprintln(w, "# HELP smpsimd_cache_misses_total Response cache misses.")
	fmt.Fprintln(w, "# TYPE smpsimd_cache_misses_total counter")
	fmt.Fprintf(w, "smpsimd_cache_misses_total %d\n", cs.Misses)
	fmt.Fprintln(w, "# HELP smpsimd_cache_evictions_total Response cache LRU evictions.")
	fmt.Fprintln(w, "# TYPE smpsimd_cache_evictions_total counter")
	fmt.Fprintf(w, "smpsimd_cache_evictions_total %d\n", cs.Evictions)
	fmt.Fprintln(w, "# HELP smpsimd_cache_entries Response cache resident entries.")
	fmt.Fprintln(w, "# TYPE smpsimd_cache_entries gauge")
	fmt.Fprintf(w, "smpsimd_cache_entries %d\n", cs.Entries)
	fmt.Fprintln(w, "# HELP smpsimd_cache_hit_ratio Hits over lookups since start.")
	fmt.Fprintln(w, "# TYPE smpsimd_cache_hit_ratio gauge")
	fmt.Fprintf(w, "smpsimd_cache_hit_ratio %s\n", formatFloat(cs.HitRate()))

	// Persistent store tiers. Tier 1 is the in-memory cache above; it
	// appears here only for the conflict counter, which spans all
	// tiers because the byte-identity check is one invariant.
	ss := srv.store.Stats()
	tiers := []struct {
		label string
		ts    storeTierView
	}{
		{"2", storeTierView{ss.Disk.Hits, ss.Disk.Misses, ss.Disk.VerifyFails, ss.Disk.Puts}},
		{"3", storeTierView{ss.Shared.Hits, ss.Shared.Misses, ss.Shared.VerifyFails, ss.Shared.Puts}},
	}
	fmt.Fprintln(w, "# HELP smpsimd_store_hits_total Persistent store hits, by tier (2=local disk, 3=shared).")
	fmt.Fprintln(w, "# TYPE smpsimd_store_hits_total counter")
	for _, t := range tiers {
		fmt.Fprintf(w, "smpsimd_store_hits_total{tier=%q} %d\n", t.label, t.ts.hits)
	}
	fmt.Fprintln(w, "# HELP smpsimd_store_misses_total Persistent store misses, by tier.")
	fmt.Fprintln(w, "# TYPE smpsimd_store_misses_total counter")
	for _, t := range tiers {
		fmt.Fprintf(w, "smpsimd_store_misses_total{tier=%q} %d\n", t.label, t.ts.misses)
	}
	fmt.Fprintln(w, "# HELP smpsimd_store_verify_failures_total Store entries rejected on read (corrupt/truncated), by tier.")
	fmt.Fprintln(w, "# TYPE smpsimd_store_verify_failures_total counter")
	for _, t := range tiers {
		fmt.Fprintf(w, "smpsimd_store_verify_failures_total{tier=%q} %d\n", t.label, t.ts.verifyFails)
	}
	fmt.Fprintln(w, "# HELP smpsimd_store_puts_total Bodies written to the store, by tier.")
	fmt.Fprintln(w, "# TYPE smpsimd_store_puts_total counter")
	for _, t := range tiers {
		fmt.Fprintf(w, "smpsimd_store_puts_total{tier=%q} %d\n", t.label, t.ts.puts)
	}
	fmt.Fprintln(w, "# HELP smpsimd_store_conflict_total Duplicate puts whose body diverged from the incumbent, by tier (zero unless the byte-identity invariant broke).")
	fmt.Fprintln(w, "# TYPE smpsimd_store_conflict_total counter")
	fmt.Fprintf(w, "smpsimd_store_conflict_total{tier=\"1\"} %d\n", cs.Conflicts)
	fmt.Fprintf(w, "smpsimd_store_conflict_total{tier=\"2\"} %d\n", ss.Disk.Conflicts)
	fmt.Fprintf(w, "smpsimd_store_conflict_total{tier=\"3\"} %d\n", ss.Shared.Conflicts)
	fmt.Fprintln(w, "# HELP smpsimd_store_evictions_total Tier-2 size-bound LRU evictions.")
	fmt.Fprintln(w, "# TYPE smpsimd_store_evictions_total counter")
	fmt.Fprintf(w, "smpsimd_store_evictions_total %d\n", ss.Disk.Evictions)
	fmt.Fprintln(w, "# HELP smpsimd_store_bytes Tier-2 resident bytes on disk.")
	fmt.Fprintln(w, "# TYPE smpsimd_store_bytes gauge")
	fmt.Fprintf(w, "smpsimd_store_bytes %d\n", ss.Disk.Bytes)
	fmt.Fprintln(w, "# HELP smpsimd_store_entries Tier-2 resident entries.")
	fmt.Fprintln(w, "# TYPE smpsimd_store_entries gauge")
	fmt.Fprintf(w, "smpsimd_store_entries %d\n", ss.Disk.Entries)
	fmt.Fprintln(w, "# HELP smpsimd_store_hit_ratio Store hits over lookups since start, by tier.")
	fmt.Fprintln(w, "# TYPE smpsimd_store_hit_ratio gauge")
	for _, t := range tiers {
		ratio := 0.0
		if total := t.ts.hits + t.ts.misses; total > 0 {
			ratio = float64(t.ts.hits) / float64(total)
		}
		fmt.Fprintf(w, "smpsimd_store_hit_ratio{tier=%q} %s\n", t.label, formatFloat(ratio))
	}
}

// storeTierView is the slice of store.TierStats the exposition loops
// over per tier.
type storeTierView struct {
	hits, misses, verifyFails, puts uint64
}

// formatFloat renders a float the Prometheus way: shortest exact
// decimal form.
func formatFloat(f float64) string {
	return strconv.FormatFloat(f, 'g', -1, 64)
}
