package server

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestTimelineEmbeddedInResponse pins the opt-in contract: the same
// cell with and without "timeline": true returns the same simulation
// results, but only the opted-in body carries windows — and the window
// totals agree with the run's own quantum count.
func TestTimelineEmbeddedInResponse(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2, TimelineQuanta: 8})

	resp, body := post(t, ts.URL, fmt.Sprintf(`{"apps":%q,"timeline":true}`, smallSpec))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, body %s", resp.StatusCode, body)
	}
	var withTL Response
	if err := json.Unmarshal(body, &withTL); err != nil {
		t.Fatal(err)
	}
	if withTL.Timeline == nil {
		t.Fatal("timeline:true response has no timeline")
	}
	if got := withTL.Timeline.QuantaPerWindow; got != 8 {
		t.Errorf("quanta_per_window = %d, want 8", got)
	}
	if n := len(withTL.Timeline.Windows); n == 0 {
		t.Fatal("no windows in timeline report")
	}
	if got, want := withTL.Timeline.Summary.Quanta, int64(withTL.Quanta); got != want {
		t.Errorf("summary quanta = %d, run quanta = %d", got, want)
	}
	var sum int64
	for _, w := range withTL.Timeline.Windows {
		sum += w.Quanta
	}
	if sum != withTL.Timeline.Summary.Quanta {
		t.Errorf("window quanta sum = %d, summary = %d (nothing evicted here)", sum, withTL.Timeline.Summary.Quanta)
	}

	_, plainBody := post(t, ts.URL, fmt.Sprintf(`{"apps":%q}`, smallSpec))
	var plain Response
	if err := json.Unmarshal(plainBody, &plain); err != nil {
		t.Fatal(err)
	}
	if plain.Timeline != nil {
		t.Error("timeline absent from request but present in response")
	}
	if plain.Quanta != withTL.Quanta || plain.EndTimeUsec != withTL.EndTimeUsec {
		t.Errorf("telemetry changed results: quanta %d vs %d, end %d vs %d",
			plain.Quanta, withTL.Quanta, plain.EndTimeUsec, withTL.EndTimeUsec)
	}

	// Replay must be byte-identical, windows included.
	resp2, body2 := post(t, ts.URL, fmt.Sprintf(`{"apps":%q,"timeline":true}`, smallSpec))
	if resp2.Header.Get("X-Cache") != "hit" {
		t.Errorf("repeat was not a cache hit")
	}
	if !bytes.Equal(body, body2) {
		t.Error("timeline replay not byte-identical")
	}
}

// TestTimelineSummaryEndpoint checks that every run — opted in or not —
// feeds the live plane: after two simulate calls the ?summary=1 merge
// covers both runs' quanta.
func TestTimelineSummaryEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2, TimelineQuanta: 8})

	_, b1 := post(t, ts.URL, fmt.Sprintf(`{"apps":%q}`, smallSpec))
	_, b2 := post(t, ts.URL, fmt.Sprintf(`{"apps":%q,"policy":"linux"}`, smallSpec))
	var r1, r2 Response
	if err := json.Unmarshal(b1, &r1); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(b2, &r2); err != nil {
		t.Fatal(err)
	}

	resp, err := http.Get(ts.URL + "/v1/timeline?summary=1")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var sum TimelineSummary
	if err := json.NewDecoder(resp.Body).Decode(&sum); err != nil {
		t.Fatal(err)
	}
	if sum.Windows == 0 {
		t.Fatal("no windows published after two runs")
	}
	if got, want := sum.Summary.Quanta, int64(r1.Quanta+r2.Quanta); got != want {
		t.Errorf("merged quanta = %d, want %d (sum of both runs)", got, want)
	}
	if sum.QuantaPerWindow != 8 {
		t.Errorf("quanta_per_window = %d, want 8", sum.QuantaPerWindow)
	}
}

// TestTimelineStreamReplayAndMax exercises the NDJSON stream shape:
// backlog replay delivers already-sealed windows, events carry the
// run's canonical key, and ?max=N closes the stream after N lines.
func TestTimelineStreamReplayAndMax(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2, TimelineQuanta: 4})

	post(t, ts.URL, fmt.Sprintf(`{"apps":%q}`, smallSpec))

	resp, err := http.Get(ts.URL + "/v1/timeline?max=3")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if got := resp.Header.Get("Content-Type"); got != "application/x-ndjson" {
		t.Errorf("Content-Type = %q", got)
	}
	wantKey, err := CanonicalKey(Request{Apps: smallSpec})
	if err != nil {
		t.Fatal(err)
	}
	var events []TimelineEvent
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		var ev TimelineEvent
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", sc.Text(), err)
		}
		events = append(events, ev)
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if len(events) != 3 {
		t.Fatalf("got %d events, want 3 (?max=3)", len(events))
	}
	for i, ev := range events {
		if ev.Key != wantKey {
			t.Errorf("event %d key = %q, want %q", i, ev.Key, wantKey)
		}
		if ev.Window.Quanta == 0 {
			t.Errorf("event %d has an empty window", i)
		}
		if i > 0 && ev.Seq <= events[i-1].Seq {
			t.Errorf("event seqs not increasing: %d then %d", events[i-1].Seq, ev.Seq)
		}
	}
}

// TestTimelineStreamDuringSweep streams /v1/timeline concurrently with
// a multi-cell sweep — the scenario the CI smoke runs against a real
// daemon, and the intended -race workout: collector seals inside
// simulation workers publish into the feed while the HTTP stream reads
// it. The first window must arrive while the sweep is still running.
func TestTimelineStreamDuringSweep(t *testing.T) {
	_, ts := newTestServer(t, Config{
		Workers: 1, TimelineQuanta: 4, SimDelay: 100 * time.Millisecond,
	})

	// Subscribe before the sweep starts, no backlog: everything seen is
	// live.
	req, err := http.NewRequest(http.MethodGet, ts.URL+"/v1/timeline?backlog=0&max=1", nil)
	if err != nil {
		t.Fatal(err)
	}
	stream, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer stream.Body.Close()

	var (
		wg        sync.WaitGroup
		sweepDone time.Time
	)
	wg.Add(1)
	go func() {
		defer wg.Done()
		// Four distinct slow cells on one worker: cells 2-4 are still
		// queued while cell 1's windows seal.
		cells := `{"cells":[
			{"apps":"CG"},{"apps":"CG","policy":"linux"},
			{"apps":"CG","policy":"linux","seed":2},
			{"apps":"CG","policy":"linux","seed":3}]}`
		resp, err := http.Post(ts.URL+"/v1/sweep", "application/json", strings.NewReader(cells))
		if err == nil {
			sc := bufio.NewScanner(resp.Body)
			for sc.Scan() {
			}
			resp.Body.Close()
		}
		sweepDone = time.Now()
	}()

	var ev TimelineEvent
	if err := json.NewDecoder(stream.Body).Decode(&ev); err != nil {
		t.Fatalf("reading live event: %v", err)
	}
	firstEvent := time.Now()
	wg.Wait()

	if !firstEvent.Before(sweepDone) {
		t.Errorf("first window arrived %v after the sweep finished — stream is not live",
			firstEvent.Sub(sweepDone))
	}
	if ev.Window.Quanta == 0 {
		t.Error("live event carries an empty window")
	}
}

// TestTimelineBadRequests covers the endpoint's error surface.
func TestTimelineBadRequests(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})

	resp, err := http.Post(ts.URL+"/v1/timeline", "application/json", strings.NewReader("{}"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("POST status = %d, want 405", resp.StatusCode)
	}

	for _, q := range []string{"?max=-1", "?backlog=x"} {
		resp, err := http.Get(ts.URL + "/v1/timeline" + q)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("GET %s status = %d, want 400", q, resp.StatusCode)
		}
	}
}
