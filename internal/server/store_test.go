package server

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"testing"

	"busaware/internal/store"
)

func openStore(t *testing.T, cfg store.Config) *store.Store {
	t.Helper()
	st, err := store.Open(cfg)
	if err != nil {
		t.Fatalf("store.Open: %v", err)
	}
	return st
}

// Warm restart: a body computed before a "restart" (new Server, same
// store dir) is replayed byte-identically from tier 2 without running
// the simulator again.
func TestSimulateWarmRestartFromTier2(t *testing.T) {
	dir := t.TempDir()
	reqJSON := fmt.Sprintf(`{"apps":%q,"policy":"window"}`, smallSpec)

	s1, ts1 := newTestServer(t, Config{Workers: 2, Store: openStore(t, store.Config{Dir: dir})})
	resp, coldBody := post(t, ts1.URL, reqJSON)
	if resp.StatusCode != http.StatusOK || resp.Header.Get("X-Cache") != "miss" {
		t.Fatalf("cold run: status %d cache %q", resp.StatusCode, resp.Header.Get("X-Cache"))
	}
	if got := s1.StoreStats().Disk.Puts; got != 1 {
		t.Fatalf("cold run store puts = %d, want 1", got)
	}
	ts1.Close()
	s1.Close()

	s2, ts2 := newTestServer(t, Config{Workers: 2, Store: openStore(t, store.Config{Dir: dir})})
	resp, warmBody := post(t, ts2.URL, reqJSON)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("warm run: status %d body %s", resp.StatusCode, warmBody)
	}
	if got := resp.Header.Get("X-Cache"); got != "hit-t2" {
		t.Fatalf("warm run X-Cache = %q, want hit-t2", got)
	}
	if !bytes.Equal(coldBody, warmBody) {
		t.Fatal("warm body differs from cold body")
	}
	if done := s2.pool.Completed(); done != 0 {
		t.Fatalf("warm run computed %d cells, want 0", done)
	}
	// The tier-2 hit promoted the body into the memory cache: the next
	// replay is a plain tier-1 hit.
	resp, _ = post(t, ts2.URL, reqJSON)
	if got := resp.Header.Get("X-Cache"); got != "hit" {
		t.Fatalf("second warm replay X-Cache = %q, want hit", got)
	}
	st := s2.StoreStats()
	if st.Disk.Hits != 1 || st.Disk.VerifyFails != 0 {
		t.Fatalf("warm store stats = %+v", st.Disk)
	}
}

// Warm join: a backend that never computed anything serves another
// backend's results from the shared tier (and promotes them locally).
func TestSimulateWarmJoinFromSharedTier(t *testing.T) {
	shared := t.TempDir()
	reqJSON := fmt.Sprintf(`{"apps":%q,"policy":"latest"}`, smallSpec)

	_, tsA := newTestServer(t, Config{Workers: 2,
		Store: openStore(t, store.Config{Dir: t.TempDir(), SharedDir: shared})})
	resp, coldBody := post(t, tsA.URL, reqJSON)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cold run: status %d", resp.StatusCode)
	}

	joiner, tsB := newTestServer(t, Config{Workers: 2,
		Store: openStore(t, store.Config{Dir: t.TempDir(), SharedDir: shared})})
	resp, warmBody := post(t, tsB.URL, reqJSON)
	if got := resp.Header.Get("X-Cache"); got != "hit-t3" {
		t.Fatalf("joiner X-Cache = %q, want hit-t3", got)
	}
	if !bytes.Equal(coldBody, warmBody) {
		t.Fatal("joiner body differs from original")
	}
	if done := joiner.pool.Completed(); done != 0 {
		t.Fatalf("joiner computed %d cells, want 0", done)
	}
	// Promotion: replay after clearing the memory tier hits local disk.
	joiner.cache = newRespCache(0)
	resp, _ = post(t, tsB.URL, reqJSON)
	if got := resp.Header.Get("X-Cache"); got != "hit-t2" {
		t.Fatalf("post-promotion X-Cache = %q, want hit-t2", got)
	}
}

// The sweep path reads and labels the persistent tiers too.
func TestSweepServesFromStore(t *testing.T) {
	dir := t.TempDir()
	sweepJSON := fmt.Sprintf(`{"cells":[{"apps":%q,"policy":"window"},{"apps":%q,"policy":"latest"}]}`,
		smallSpec, smallSpec)

	_, ts1 := newTestServer(t, Config{Workers: 2, Store: openStore(t, store.Config{Dir: dir})})
	resp, err := http.Post(ts1.URL+"/v1/sweep", "application/json", strings.NewReader(sweepJSON))
	if err != nil {
		t.Fatal(err)
	}
	cold := readSweepLines(t, resp)
	if len(cold) != 2 {
		t.Fatalf("cold sweep lines = %d", len(cold))
	}

	s2, ts2 := newTestServer(t, Config{Workers: 2, Store: openStore(t, store.Config{Dir: dir})})
	resp, err = http.Post(ts2.URL+"/v1/sweep", "application/json", strings.NewReader(sweepJSON))
	if err != nil {
		t.Fatal(err)
	}
	warm := readSweepLines(t, resp)
	if len(warm) != 2 {
		t.Fatalf("warm sweep lines = %d", len(warm))
	}
	for _, line := range warm {
		if line.Status != http.StatusOK || line.Cache != "hit-t2" {
			t.Fatalf("warm line %d: status %d cache %q", line.Index, line.Status, line.Cache)
		}
		if !bytes.Equal(line.Response, cold[line.Index].Response) {
			t.Fatalf("warm line %d body differs", line.Index)
		}
	}
	if done := s2.pool.Completed(); done != 0 {
		t.Fatalf("warm sweep computed %d cells, want 0", done)
	}
}

// readSweepLines drains an NDJSON sweep response, indexed by cell.
func readSweepLines(t *testing.T, resp *http.Response) map[int]SweepCellResult {
	t.Helper()
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("sweep status = %d", resp.StatusCode)
	}
	lines := make(map[int]SweepCellResult)
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(nil, 1<<20)
	for sc.Scan() {
		var line SweepCellResult
		if err := json.Unmarshal(sc.Bytes(), &line); err != nil {
			t.Fatalf("bad sweep line %q: %v", sc.Text(), err)
		}
		lines[line.Index] = line
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return lines
}
