package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"strings"

	"busaware/internal/faults"
	"busaware/internal/machine"
	"busaware/internal/scenario"
	"busaware/internal/sched"
	"busaware/internal/sim"
	"busaware/internal/timeline"
	"busaware/internal/trace"
	"busaware/internal/units"
	"busaware/internal/workload"
)

// Request is the POST /v1/simulate body: one independent simulation
// cell, in the same vocabulary as the smpsim CLI flags. Omitted fields
// take the CLI defaults, and the defaults are applied *before* the
// cache key is built, so an explicit `"seed": 1` and an absent seed
// are the same request.
type Request struct {
	// Apps is the workload spec in the shared -apps grammar, e.g.
	// "CG x2, BBMA x4" (see workload.ParseSpec). Required.
	Apps string `json:"apps"`
	// Policy is a scheduler name (busaware.Policies); empty selects
	// "window" (Quanta Window), the paper's headline policy.
	Policy string `json:"policy,omitempty"`
	// Seed feeds the Linux baseline's runqueue shuffling; 0 selects 1,
	// the CLI default.
	Seed int64 `json:"seed,omitempty"`
	// CPUs overrides the processor count; 0 selects the paper
	// machine's 4.
	CPUs int `json:"cpus,omitempty"`
	// MaxTimeUsec caps simulated time; 0 selects sim.DefaultMaxTime.
	MaxTimeUsec int64 `json:"max_time_usec,omitempty"`
	// Faults optionally configures seeded fault injection
	// (internal/faults); absent means a fault-free run.
	Faults *faults.Config `json:"faults,omitempty"`
	// Trace embeds the Chrome trace-event JSON of the run's schedule in
	// the response.
	Trace bool `json:"trace,omitempty"`
	// Timeline embeds the run's per-window telemetry (bus utilization,
	// admission decisions, queue depths, fault counts aggregated into
	// 64-quantum windows) in the response. Telemetry is collected for
	// every run regardless — this flag only controls whether the
	// windows ride back on the response body.
	Timeline bool `json:"timeline,omitempty"`
	// Scenario optionally layers deterministic workload churn over the
	// base apps (see internal/scenario): a load pattern in the compact
	// DSL ("flashcrowd", "step:10s@4; spike:10s@4..60", ...), a
	// profile pool, a seed and a tick. The spec is canonicalized into
	// the cache key — a preset and its expansion, or equivalent pool
	// spellings, cache identically. Absent means the classic fixed
	// mix.
	Scenario *scenario.ChurnSpec `json:"scenario,omitempty"`
}

// compiled is a validated, normalized request, ready to run: every
// default has been applied, the workload is instantiated, and Key is
// the exact-match cache identity.
type compiled struct {
	// Key canonicalizes the request: specs that parse to the same
	// workload ("CG x2" vs "CG, CG") and requests that spell out a
	// default vs omit it collide on purpose.
	Key       string
	Config    sim.Config
	Scheduler sched.Scheduler
	// NewScheduler rebuilds an identical fresh scheduler — the shadow
	// engine's second core runs against its own instance.
	NewScheduler func() (sched.Scheduler, error)
	// Apps are fresh instances owned by this request; sim.Run mutates
	// them, so a compiled request is single-use.
	Apps  []*workload.App
	Trace bool
	// Timeline asks for per-window telemetry in the response.
	Timeline bool
	// chromeTrace is attached by Server.submit when Trace is set;
	// collector when Timeline telemetry is flowing (always, for the
	// live /v1/timeline feed).
	chromeTrace *trace.Timeline
	collector   *timeline.Collector
}

// compile validates req, applies defaults, and builds the runnable
// cell plus its canonical cache key.
func compile(req Request) (*compiled, error) {
	apps, err := workload.ParseSpec(req.Apps)
	if err != nil {
		return nil, err
	}
	policy := req.Policy
	if policy == "" {
		policy = "window"
	}
	seed := req.Seed
	if seed == 0 {
		seed = 1
	}
	if req.CPUs < 0 {
		return nil, fmt.Errorf("server: cpus = %d", req.CPUs)
	}
	m := machine.DefaultConfig()
	if req.CPUs > 0 {
		m.NumCPUs = req.CPUs
	}
	if req.MaxTimeUsec < 0 {
		return nil, fmt.Errorf("server: max_time_usec = %d", req.MaxTimeUsec)
	}
	maxTime := units.Time(req.MaxTimeUsec)
	if maxTime == 0 {
		maxTime = sim.DefaultMaxTime
	}
	var fcfg faults.Config
	if req.Faults != nil {
		fcfg = *req.Faults
		if err := fcfg.Validate(); err != nil {
			return nil, err
		}
	}
	var churn *scenario.Schedule
	scnKey := "-"
	if req.Scenario != nil {
		churn, err = scenario.Materialize(*req.Scenario)
		if err != nil {
			return nil, err
		}
		// The materialized spec is canonical (pattern rendered, pool
		// run-length encoded, tick defaulted), so equivalent spellings
		// collide in the cache and on the gateway ring.
		scnKey = churn.Spec.Canonical()
	}
	s, err := newScheduler(policy, m, seed)
	if err != nil {
		return nil, err
	}
	return &compiled{
		Key: fmt.Sprintf("v1|policy=%s|seed=%d|cpus=%d|maxt=%d|trace=%t|tl=%t|faults=%s|scn=%s|apps=%s",
			policy, seed, m.NumCPUs, int64(maxTime), req.Trace, req.Timeline,
			faultKey(fcfg), scnKey, workload.CanonicalSpec(apps)),
		Config:    sim.Config{Machine: m, MaxTime: maxTime, Faults: fcfg, Scenario: churn},
		Scheduler: s,
		NewScheduler: func() (sched.Scheduler, error) {
			return newScheduler(policy, m, seed)
		},
		Apps:     apps,
		Trace:    req.Trace,
		Timeline: req.Timeline,
	}, nil
}

// CanonicalKey validates req and returns its canonical cache key —
// the identity both the response cache and the gateway's shard routing
// hash, so "which shard owns this request" and "which cache entry
// answers it" can never disagree. It is exactly compiled.Key.
func CanonicalKey(req Request) (string, error) {
	c, err := compile(req)
	if err != nil {
		return "", err
	}
	return c.Key, nil
}

// newScheduler mirrors busaware.NewScheduler for the names the HTTP
// API accepts. It lives here rather than importing the facade so the
// serving layer depends only on internal packages.
func newScheduler(policy string, m machine.Config, seed int64) (sched.Scheduler, error) {
	switch policy {
	case "latest":
		return sched.NewLatestQuantum(m.NumCPUs, m.Bus.Capacity), nil
	case "window":
		return sched.NewQuantaWindow(m.NumCPUs, m.Bus.Capacity), nil
	case "ewma":
		return sched.NewEWMAPolicy(m.NumCPUs, m.Bus.Capacity, 0.4), nil
	case "oracle":
		return sched.NewOracle(m.NumCPUs, m.Bus.Capacity), nil
	case "linux":
		return sched.NewLinux(m.NumCPUs, seed), nil
	case "gang":
		return sched.NewGang(m.NumCPUs), nil
	case "rr":
		return sched.NewRoundRobin(m.NumCPUs, 0), nil
	case "optimal":
		return sched.NewOptimal(m.NumCPUs, m.Bus)
	default:
		return nil, fmt.Errorf("server: unknown policy %q (want latest, window, ewma, oracle, optimal, linux, gang or rr)", policy)
	}
}

// faultKey encodes a fault config exactly: the seed plus the raw
// IEEE-754 bits of every rate, mirroring the bus cache's bit-exact
// keying. A disabled config keys as "-" so fault-free requests are
// insensitive to how "no faults" was spelled.
func faultKey(c faults.Config) string {
	if !c.Enabled() {
		return "-"
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%d", c.Seed)
	for _, r := range []float64{
		c.SampleLoss, c.SampleNoise, c.CounterLoss, c.CounterNoise,
		c.SignalLoss, c.SignalDup, c.SignalDelay, c.CrashProb, c.RequestLoss,
	} {
		fmt.Fprintf(&b, ":%x", math.Float64bits(r))
	}
	return b.String()
}

// AppResult is one application's outcome in a Response. Times are raw
// simulated microseconds (int64) rather than formatted strings, so
// responses are exact and trivially machine-diffable.
type AppResult struct {
	Instance string `json:"instance"`
	Profile  string `json:"profile"`
	// ArrivedUsec is omitted when zero, so classic fixed-mix responses
	// (and their cached bytes) are unchanged by scenario support.
	ArrivedUsec    int64   `json:"arrived_usec,omitempty"`
	TurnaroundUsec int64   `json:"turnaround_usec"`
	SoloUsec       int64   `json:"solo_usec"`
	Slowdown       float64 `json:"slowdown"`
	RunUsec        int64   `json:"run_usec"`
	MeanBusRate    float64 `json:"mean_bus_rate"`
	Transactions   uint64  `json:"transactions"`
}

// Response is the POST /v1/simulate result — also emitted verbatim by
// `smpsim -json`, so CLI and server outputs diff cleanly. Marshalling
// is deterministic (fixed field order, Go's shortest-float encoding),
// which is what lets the server cache whole response bodies and promise
// byte-identical replays.
type Response struct {
	Scheduler          string      `json:"scheduler"`
	Apps               []AppResult `json:"apps"`
	EndTimeUsec        int64       `json:"end_time_usec"`
	Quanta             int         `json:"quanta"`
	Migrations         int         `json:"migrations"`
	ContextSwitches    int         `json:"context_switches"`
	MeanBusUtilization float64     `json:"mean_bus_utilization"`
	MeanTurnaroundUsec int64       `json:"mean_turnaround_usec"`
	TimedOut           bool        `json:"timed_out,omitempty"`
	FaultsInjected     uint64      `json:"faults_injected,omitempty"`
	// Scenario churn totals; all omitted for classic fixed-mix runs so
	// pre-scenario response bytes are unchanged.
	ScenarioArrivals   int             `json:"scenario_arrivals,omitempty"`
	ScenarioDepartures int             `json:"scenario_departures,omitempty"`
	ScenarioCompleted  int             `json:"scenario_completed,omitempty"`
	TraceEvents        json.RawMessage `json:"trace_events,omitempty"`
	// Timeline carries the run's per-window telemetry when the request
	// set "timeline": true.
	Timeline *TimelineReport `json:"timeline,omitempty"`
}

// TimelineReport is the per-window telemetry embedded in a Response
// (and in figures' JSON artifact): the retained windows in sealing
// order plus the merged run total. Windows are in the sum-form schema
// of internal/timeline — exact, and mergeable by consumers.
type TimelineReport struct {
	QuantaPerWindow     int     `json:"quanta_per_window"`
	SaturationThreshold float64 `json:"saturation_threshold"`
	// Evicted counts windows the bounded ring dropped; the Summary
	// still covers them.
	Evicted int64             `json:"evicted,omitempty"`
	Summary timeline.Window   `json:"summary"`
	Windows []timeline.Window `json:"windows"`
}

// NewTimelineReport snapshots a collector into the response schema.
func NewTimelineReport(col *timeline.Collector) *TimelineReport {
	return &TimelineReport{
		QuantaPerWindow:     col.QuantaPerWindow(),
		SaturationThreshold: col.SaturationThreshold(),
		Evicted:             col.Evicted(),
		Summary:             col.Summary(),
		Windows:             col.Windows(),
	}
}

// NewResponse converts a completed run (and its optional Chrome trace
// and timeline telemetry, either nilable) into the shared response
// schema.
func NewResponse(res sim.Result, tl *trace.Timeline, col *timeline.Collector) (*Response, error) {
	resp := &Response{
		Scheduler:          res.Scheduler,
		Apps:               make([]AppResult, 0, len(res.Apps)),
		EndTimeUsec:        int64(res.EndTime),
		Quanta:             res.Quanta,
		Migrations:         res.Migrations,
		ContextSwitches:    res.ContextSwitches,
		MeanBusUtilization: res.MeanBusUtilization,
		MeanTurnaroundUsec: int64(res.MeanTurnaround()),
		TimedOut:           res.TimedOut,
		FaultsInjected:     res.FaultStats.Total(),
		ScenarioArrivals:   res.ScenarioArrivals,
		ScenarioDepartures: res.ScenarioDepartures,
		ScenarioCompleted:  res.ScenarioCompleted,
	}
	for _, a := range res.Apps {
		resp.Apps = append(resp.Apps, AppResult{
			Instance:       a.Instance,
			Profile:        a.Profile,
			ArrivedUsec:    int64(a.Arrived),
			TurnaroundUsec: int64(a.Turnaround),
			SoloUsec:       int64(a.SoloTime),
			Slowdown:       a.Slowdown,
			RunUsec:        int64(a.RunTime),
			MeanBusRate:    float64(a.MeanBusRate),
			Transactions:   a.Transactions,
		})
	}
	if tl != nil {
		var buf bytes.Buffer
		if err := tl.WriteChromeTrace(&buf); err != nil {
			return nil, err
		}
		resp.TraceEvents = json.RawMessage(bytes.TrimSpace(buf.Bytes()))
	}
	if col != nil {
		resp.Timeline = NewTimelineReport(col)
	}
	return resp, nil
}

// MarshalBody renders the response as the exact bytes served over
// HTTP: compact JSON plus a trailing newline.
func (r *Response) MarshalBody() ([]byte, error) {
	b, err := json.Marshal(r)
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}
