package server

import (
	"bytes"
	"sync"
)

// DefaultCacheSize bounds the response cache. A cached entry is one
// rendered response body; the evaluation grids the daemon exists to
// serve (every figure bar of the paper, times policies and seeds) are
// a few hundred distinct cells, so this default keeps a whole sweep
// resident.
const DefaultCacheSize = 256

// CacheStats is a point-in-time snapshot of the response cache.
type CacheStats struct {
	Hits, Misses, Evictions uint64
	// Conflicts counts duplicate puts whose body differed from the
	// incumbent entry — zero by construction; any other value means
	// the byte-identity invariant broke somewhere upstream.
	Conflicts uint64
	Entries   int
}

// HitRate returns hits/(hits+misses), or 0 before any lookup.
func (s CacheStats) HitRate() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}

// respEntry is one cached response body; entries form a doubly-linked
// list in recency order (head = most recently used), exactly like the
// bus solver's equilibrium cache.
type respEntry struct {
	key        string
	body       []byte
	prev, next *respEntry
}

// respCache is a bounded LRU from canonical request keys to rendered
// response bodies. Keys are exact (see compiled.Key): a hit replays
// the byte-identical body of the original computation — no partial
// match, no staleness, because the simulator is a pure function of the
// canonical request. Unlike the bus cache it is shared across request
// handlers, so a mutex serializes access.
type respCache struct {
	mu         sync.Mutex
	limit      int
	entries    map[string]*respEntry
	head, tail *respEntry

	hits, misses, evictions, conflicts uint64
}

func newRespCache(limit int) *respCache {
	if limit <= 0 {
		limit = DefaultCacheSize
	}
	return &respCache{limit: limit, entries: make(map[string]*respEntry, limit)}
}

// get returns the cached body for key and promotes it to most-recent.
// The returned slice is shared and must not be mutated; handlers only
// ever write it to the wire.
func (c *respCache) get(key string) ([]byte, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.entries[key]
	if !ok {
		c.misses++
		return nil, false
	}
	c.hits++
	c.moveToFront(e)
	return e.body, true
}

// put inserts body under key, evicting the least recently used entry
// once full. Concurrent misses on the same key may both put; the
// bodies are byte-identical by construction (deterministic simulator,
// deterministic marshalling), so the first entry is kept — but that
// assumption is checked, not trusted: now that bodies can arrive from
// disk and shared tiers as well as local computation, a divergent
// duplicate is counted as a conflict instead of being dropped
// silently.
func (c *respCache) put(key string, body []byte) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if e, ok := c.entries[key]; ok {
		if !bytes.Equal(e.body, body) {
			c.conflicts++
		}
		c.moveToFront(e)
		return
	}
	if len(c.entries) >= c.limit {
		c.evictOldest()
	}
	e := &respEntry{key: key, body: body}
	c.entries[key] = e
	c.pushFront(e)
}

// stats snapshots the counters.
func (c *respCache) stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{Hits: c.hits, Misses: c.misses, Evictions: c.evictions, Conflicts: c.conflicts, Entries: len(c.entries)}
}

func (c *respCache) pushFront(e *respEntry) {
	e.prev = nil
	e.next = c.head
	if c.head != nil {
		c.head.prev = e
	}
	c.head = e
	if c.tail == nil {
		c.tail = e
	}
}

func (c *respCache) moveToFront(e *respEntry) {
	if c.head == e {
		return
	}
	// Unlink (e is not the head, so e.prev != nil).
	e.prev.next = e.next
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		c.tail = e.prev
	}
	c.pushFront(e)
}

func (c *respCache) evictOldest() {
	e := c.tail
	if e == nil {
		return
	}
	delete(c.entries, e.key)
	c.evictions++
	c.tail = e.prev
	if c.tail != nil {
		c.tail.next = nil
	} else {
		c.head = nil
	}
}
