package server

import (
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"time"
)

// Deadline propagation: a client (usually smpgw) that has its own
// deadline stamps it on the request as an absolute wall-clock time, and
// the backend sheds work whose requester has provably already given up
// — at admission, before the cell ever enters the pool, and again at
// dequeue, so a cell that aged out waiting in the queue does not burn a
// worker computing a result nobody will read. Absolute milliseconds
// (not a relative budget) so the header survives any number of proxy
// hops without each hop re-subtracting its own latency; the serving
// tier assumes loosely synchronized clocks, which holds within a
// cluster.

// DeadlineHeader carries the absolute request deadline as Unix
// milliseconds.
const DeadlineHeader = "X-Deadline-Ms"

// errDeadlineShed marks a cell dropped at dequeue because its deadline
// had already passed.
var errDeadlineShed = errors.New("deadline expired before execution")

// ParseDeadline extracts the propagated deadline from h (zero time =
// no deadline set).
func ParseDeadline(h http.Header) (time.Time, error) {
	v := h.Get(DeadlineHeader)
	if v == "" {
		return time.Time{}, nil
	}
	ms, err := strconv.ParseInt(v, 10, 64)
	if err != nil || ms <= 0 {
		return time.Time{}, fmt.Errorf("bad %s header %q", DeadlineHeader, v)
	}
	return time.UnixMilli(ms), nil
}
