package server

import (
	"encoding/json"
	"net/http"
	"strings"
	"testing"

	"busaware/internal/scenario"
)

func TestScenarioKeyCanonicalization(t *testing.T) {
	// A preset and its expansion, and equivalent pool spellings, must
	// collide on the cache key; a different churn seed must not.
	base := Request{Apps: smallSpec}
	preset := base
	preset.Scenario = &scenario.ChurnSpec{Pattern: "flashcrowd", Pool: "CG, CG"}
	expanded := base
	expanded.Scenario = &scenario.ChurnSpec{
		Pattern:  "step:10s@4 spike:10s@4..60; step:20s@4",
		Pool:     "CG x2",
		TickUsec: int64(scenario.DefaultTick),
	}
	k1, err := CanonicalKey(preset)
	if err != nil {
		t.Fatal(err)
	}
	k2, err := CanonicalKey(expanded)
	if err != nil {
		t.Fatal(err)
	}
	if k1 != k2 {
		t.Errorf("equivalent scenario spellings key differently:\n%s\n%s", k1, k2)
	}
	if !strings.Contains(k1, "|scn=pat=step:10s@4; spike:10s@4..60; step:20s@4|") {
		t.Errorf("key does not embed the canonical pattern: %s", k1)
	}
	seeded := preset
	seeded.Scenario = &scenario.ChurnSpec{Pattern: "flashcrowd", Pool: "CG x2", Seed: 3}
	k3, err := CanonicalKey(seeded)
	if err != nil {
		t.Fatal(err)
	}
	if k3 == k1 {
		t.Error("different churn seeds share a key")
	}
	// No scenario keys as "-", distinct from any real scenario.
	k0, err := CanonicalKey(base)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(k0, "|scn=-|") {
		t.Errorf("scenario-free key = %s, want scn=-", k0)
	}
	if k0 == k1 {
		t.Error("scenario and scenario-free requests share a key")
	}
}

func TestScenarioRequestEndToEnd(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2})
	// Short churn over the standard small workload: two Volrend
	// instances arrive at t=0 (simulated) and depart at 2s, well
	// before CG completes.
	req := `{"apps":"` + smallSpec + `","scenario":{"pattern":"step:2s@2; step:2s@0","pool":"Volrend","seed":5}}`
	resp, body := post(t, ts.URL, req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, body %s", resp.StatusCode, body)
	}
	var decoded Response
	if err := json.Unmarshal(body, &decoded); err != nil {
		t.Fatal(err)
	}
	if decoded.ScenarioArrivals != 2 || decoded.ScenarioDepartures != 2 {
		t.Errorf("scenario counters = %d/%d, want 2 arrivals / 2 departures",
			decoded.ScenarioArrivals, decoded.ScenarioDepartures)
	}

	// Same scenario again: must be a byte-identical cache replay.
	resp2, body2 := post(t, ts.URL, req)
	if got := resp2.Header.Get("X-Cache"); got != "hit" {
		t.Errorf("repeat X-Cache = %q, want hit", got)
	}
	if string(body) != string(body2) {
		t.Error("cached scenario body diverged")
	}

	// Malformed pattern: a 400, not a 500.
	respBad, bodyBad := post(t, ts.URL, `{"apps":"CG","scenario":{"pattern":"warp:1s@1"}}`)
	if respBad.StatusCode != http.StatusBadRequest {
		t.Errorf("bad pattern status = %d, body %s", respBad.StatusCode, bodyBad)
	}
}

func TestScenarioFreeResponseBytesUnchanged(t *testing.T) {
	// The serialized response of a classic run must not grow any
	// scenario or arrival fields — cached bodies from before this
	// feature must replay byte-identically.
	_, ts := newTestServer(t, Config{Workers: 1})
	resp, body := post(t, ts.URL, `{"apps":"CG, BBMA"}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	for _, field := range []string{"scenario_arrivals", "scenario_departures", "scenario_completed", "arrived_usec"} {
		if strings.Contains(string(body), field) {
			t.Errorf("scenario-free response leaks %q: %s", field, body)
		}
	}
}
