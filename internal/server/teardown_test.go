package server

import (
	"context"
	"fmt"
	"net/http"
	"runtime"
	"testing"
	"time"
)

// Stream teardown coverage: a client that walks away from GET
// /v1/timeline mid-stream must release its subscription (and the
// handler goroutine behind it) promptly — a leak here accumulates one
// goroutine plus one buffered channel per abandoned dashboard tab
// until the process dies.

// subscribers polls the feed's live-subscriber count.
func subscribers(s *Server) int {
	_, _, _, subs := s.feed.snapshot()
	return subs
}

// waitSubscribers polls until the feed reports want subscribers (or
// times out).
func waitSubscribers(t *testing.T, s *Server, want int) {
	t.Helper()
	for i := 0; i < 200; i++ {
		if subscribers(s) == want {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("feed stuck at %d subscribers, want %d", subscribers(s), want)
}

// TestTimelineClientDisconnectReleasesSubscription: open a timeline
// stream, kill the client mid-stream, and check the subscription is
// torn down and goroutines return to baseline.
func TestTimelineClientDisconnectReleasesSubscription(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 2, TimelineQuanta: 50})

	// A dedicated transport so client-side connection goroutines can be
	// torn down before the leak measurement — the test is about server
	// handler goroutines, not the client's pool.
	tr := &http.Transport{}
	client := &http.Client{Transport: tr}
	defer tr.CloseIdleConnections()

	before := runtime.NumGoroutine()
	const streams = 4
	cancels := make([]context.CancelFunc, 0, streams)
	for i := 0; i < streams; i++ {
		ctx, cancel := context.WithCancel(context.Background())
		cancels = append(cancels, cancel)
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, ts.URL+"/v1/timeline", nil)
		if err != nil {
			t.Fatal(err)
		}
		resp, err := client.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { resp.Body.Close() })
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("stream status %d", resp.StatusCode)
		}
	}
	waitSubscribers(t, s, streams)

	// Traffic while the streams are up, so teardown happens on a live
	// feed, not an idle one.
	post(t, ts.URL, fmt.Sprintf(`{"apps":%q}`, smallSpec))

	for _, cancel := range cancels {
		cancel()
	}
	waitSubscribers(t, s, 0)
	// Drop every idle keep-alive connection before measuring: each one
	// pins a server-side conn goroutine plus two client loops, and the
	// post() above went through the shared default client.
	tr.CloseIdleConnections()
	http.DefaultTransport.(*http.Transport).CloseIdleConnections()

	// Goroutine count returns to (near) baseline once handlers unwind;
	// allow slack for the HTTP machinery's own pooled goroutines.
	deadline := time.Now().Add(3 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= before+2 {
			return
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Errorf("goroutines %d after teardown, baseline %d — leaked stream handlers", runtime.NumGoroutine(), before)
}

// TestTimelineMaxClosesPromptly: ?max=N streams must end on their own
// after N lines and release the subscription without client action.
func TestTimelineMaxClosesPromptly(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 2, TimelineQuanta: 25})
	// Seed the backlog with sealed windows.
	post(t, ts.URL, fmt.Sprintf(`{"apps":%q}`, smallSpec))

	resp, err := http.Get(ts.URL + "/v1/timeline?backlog=256&max=1")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	buf := make([]byte, 1<<20)
	n := 0
	for {
		m, err := resp.Body.Read(buf[n:])
		n += m
		if err != nil {
			break
		}
	}
	if n == 0 {
		t.Fatal("no lines before max cutoff")
	}
	waitSubscribers(t, s, 0)
}
