package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"sync"
	"time"

	"busaware/internal/timeline"
)

// The timeline feed is the server's live observability plane: every
// simulation cell records per-quantum telemetry into its own bounded
// collector, and each window the collector seals — mid-run, not at
// completion — is published here and streamed to GET /v1/timeline
// subscribers as one NDJSON line. A bus-saturation episode inside a
// long sweep is visible while the sweep is still running, which is the
// property the CI timeline-smoke job pins.
//
//	GET /v1/timeline             — NDJSON stream of TimelineEvent lines
//	GET /v1/timeline?backlog=N   — replay up to N retained events first
//	GET /v1/timeline?max=N       — close the stream after N lines
//	GET /v1/timeline?summary=1   — one JSON TimelineSummary, no stream
//
// Slow subscribers never stall the simulators: events are delivered
// over buffered channels and dropped (counted) when a subscriber's
// buffer is full.

// TimelineEvent is one NDJSON line of GET /v1/timeline: a sealed
// window stamped with the run it came from and the wall-clock arrival.
type TimelineEvent struct {
	// Seq numbers events server-wide in publication order.
	Seq int64 `json:"seq"`
	// WallMs is the publication wall clock (Unix milliseconds) — live
	// feed metadata, deliberately absent from cacheable responses.
	WallMs int64 `json:"wall_ms"`
	// Key is the canonical request key of the run that sealed the
	// window; Backend is stamped by the gateway when merging streams.
	Key     string `json:"key"`
	Backend string `json:"backend,omitempty"`
	// Window is the sealed telemetry window (internal/timeline schema).
	Window timeline.Window `json:"window"`
}

// TimelineSummary is the ?summary=1 body: the order-independent merge
// of every window the server has published, plus feed accounting. The
// gateway folds these across backends with timeline.Merge.
type TimelineSummary struct {
	Windows             int64           `json:"windows"`
	Dropped             int64           `json:"dropped"`
	Subscribers         int             `json:"subscribers"`
	QuantaPerWindow     int             `json:"quanta_per_window"`
	SaturationThreshold float64         `json:"saturation_threshold"`
	Summary             timeline.Window `json:"summary"`
}

// feedBacklog is how many recent events the feed retains for
// ?backlog replay; subChanBuf is each subscriber's delivery buffer.
const (
	feedBacklog = 256
	subChanBuf  = 64
)

// timelineFeed fans sealed windows out to streaming subscribers and
// keeps the running merge.
type timelineFeed struct {
	mu      sync.Mutex
	seq     int64
	backlog []TimelineEvent // ring, preallocated
	head, n int
	subs    map[int64]chan TimelineEvent
	nextSub int64
	summary timeline.Window
	dropped int64
}

func newTimelineFeed() *timelineFeed {
	return &timelineFeed{
		backlog: make([]TimelineEvent, feedBacklog),
		subs:    make(map[int64]chan TimelineEvent),
	}
}

func (f *timelineFeed) lock()   { f.mu.Lock() }
func (f *timelineFeed) unlock() { f.mu.Unlock() }

// publish stamps and fans one sealed window out. Called from
// simulation worker goroutines via Collector.OnSeal.
func (f *timelineFeed) publish(key string, w timeline.Window) {
	f.lock()
	ev := TimelineEvent{
		Seq:    f.seq,
		WallMs: time.Now().UnixMilli(),
		Key:    key,
		Window: w,
	}
	f.seq++
	if f.n == len(f.backlog) {
		f.head = (f.head + 1) % len(f.backlog)
		f.n--
	}
	f.backlog[(f.head+f.n)%len(f.backlog)] = ev
	f.n++
	f.summary = timeline.Merge(f.summary, w)
	for _, ch := range f.subs {
		select {
		case ch <- ev:
		default:
			f.dropped++
		}
	}
	f.unlock()
}

// subscribe registers a streaming reader, replaying up to backlog
// retained events first.
func (f *timelineFeed) subscribe(backlog int) (int64, <-chan TimelineEvent, []TimelineEvent) {
	f.lock()
	defer f.unlock()
	id := f.nextSub
	f.nextSub++
	ch := make(chan TimelineEvent, subChanBuf)
	f.subs[id] = ch
	var replay []TimelineEvent
	if backlog > 0 {
		start := 0
		if f.n > backlog {
			start = f.n - backlog
		}
		for i := start; i < f.n; i++ {
			replay = append(replay, f.backlog[(f.head+i)%len(f.backlog)])
		}
	}
	return id, ch, replay
}

func (f *timelineFeed) unsubscribe(id int64) {
	f.lock()
	defer f.unlock()
	delete(f.subs, id)
}

// snapshot returns the merged window plus accounting.
func (f *timelineFeed) snapshot() (timeline.Window, int64, int64, int) {
	f.lock()
	defer f.unlock()
	return f.summary, f.seq, f.dropped, len(f.subs)
}

func (s *Server) handleTimeline(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		w.Header().Set("Allow", http.MethodGet)
		http.Error(w, "GET only", http.StatusMethodNotAllowed)
		return
	}
	q := r.URL.Query()
	if q.Get("summary") != "" {
		sum, windows, dropped, subs := s.feed.snapshot()
		body, _ := json.Marshal(TimelineSummary{
			Windows:             windows,
			Dropped:             dropped,
			Subscribers:         subs,
			QuantaPerWindow:     s.timelineQuanta(),
			SaturationThreshold: timeline.DefaultSaturationThreshold,
			Summary:             sum,
		})
		body = append(body, '\n')
		w.Header().Set("Content-Type", "application/json")
		w.Header().Set("Content-Length", strconv.Itoa(len(body)))
		w.WriteHeader(http.StatusOK)
		w.Write(body)
		return
	}

	backlog, err := intParam(q.Get("backlog"), feedBacklog)
	if err != nil {
		http.Error(w, fmt.Sprintf("bad backlog: %v", err), http.StatusBadRequest)
		return
	}
	max, err := intParam(q.Get("max"), 0) // 0 = unbounded
	if err != nil {
		http.Error(w, fmt.Sprintf("bad max: %v", err), http.StatusBadRequest)
		return
	}

	id, ch, replay := s.feed.subscribe(backlog)
	defer s.feed.unsubscribe(id)

	w.Header().Set("Content-Type", "application/x-ndjson")
	w.Header().Set("Cache-Control", "no-store")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	if flusher != nil {
		// Push the headers out now: a subscriber opening the stream
		// before any window seals must still see the connection
		// established, not block until the first event.
		flusher.Flush()
	}
	enc := json.NewEncoder(w)
	sent := 0
	emit := func(ev TimelineEvent) bool {
		if err := enc.Encode(ev); err != nil {
			return false
		}
		if flusher != nil {
			flusher.Flush()
		}
		sent++
		return max == 0 || sent < max
	}
	for _, ev := range replay {
		if !emit(ev) {
			return
		}
	}
	ctx := r.Context()
	for {
		select {
		case <-ctx.Done():
			return
		case ev := <-ch:
			if !emit(ev) {
				return
			}
		}
	}
}

// intParam parses a non-negative integer query parameter.
func intParam(s string, def int) (int, error) {
	if s == "" {
		return def, nil
	}
	v, err := strconv.Atoi(s)
	if err != nil || v < 0 {
		return 0, fmt.Errorf("want a non-negative integer, got %q", s)
	}
	return v, nil
}

// timelineQuanta is the per-run window span the server configures.
func (s *Server) timelineQuanta() int {
	if s.cfg.TimelineQuanta > 0 {
		return s.cfg.TimelineQuanta
	}
	return timeline.DefaultQuantaPerWindow
}

// timelineWindows bounds each run's retained ring. Runs outliving it
// fold evicted windows into their summary, so totals stay exact.
func (s *Server) timelineWindows() int {
	if s.cfg.TimelineWindows > 0 {
		return s.cfg.TimelineWindows
	}
	return 256
}

// newRunCollector builds the per-run collector whose sealed windows
// feed the live stream tagged with the run's canonical key.
func (s *Server) newRunCollector(key string) *timeline.Collector {
	return timeline.MustNew(timeline.Config{
		QuantaPerWindow: s.timelineQuanta(),
		Capacity:        s.timelineWindows(),
		OnSeal:          func(w timeline.Window) { s.feed.publish(key, w) },
	})
}
