package server

import (
	"fmt"
	"sync"
	"testing"
)

func TestRespCacheHitMissEvict(t *testing.T) {
	c := newRespCache(2)
	if _, ok := c.get("a"); ok {
		t.Fatal("hit on empty cache")
	}
	c.put("a", []byte("A"))
	c.put("b", []byte("B"))
	if body, ok := c.get("a"); !ok || string(body) != "A" {
		t.Fatalf("get a = %q, %v", body, ok)
	}
	// "a" is now most recent; inserting "c" must evict "b".
	c.put("c", []byte("C"))
	if _, ok := c.get("b"); ok {
		t.Error("b survived eviction past the limit")
	}
	if _, ok := c.get("a"); !ok {
		t.Error("a (recently used) was evicted")
	}
	s := c.stats()
	if s.Entries != 2 || s.Evictions != 1 {
		t.Errorf("stats = %+v, want 2 entries / 1 eviction", s)
	}
	if got := s.HitRate(); got <= 0 || got >= 1 {
		t.Errorf("hit rate = %v, want in (0, 1)", got)
	}
}

func TestRespCacheDuplicatePutKeepsFirst(t *testing.T) {
	c := newRespCache(4)
	c.put("k", []byte("first"))
	c.put("k", []byte("first")) // concurrent-miss double compute
	if body, ok := c.get("k"); !ok || string(body) != "first" {
		t.Fatalf("get = %q, %v", body, ok)
	}
	if s := c.stats(); s.Entries != 1 {
		t.Errorf("entries = %d, want 1", s.Entries)
	}
	if s := c.stats(); s.Conflicts != 0 {
		t.Errorf("identical duplicate counted as conflict: %d", s.Conflicts)
	}
}

func TestRespCacheDuplicatePutCountsConflict(t *testing.T) {
	// A divergent duplicate means the byte-identity invariant broke
	// somewhere; the incumbent is kept but the event must be counted,
	// not dropped silently.
	c := newRespCache(4)
	c.put("k", []byte("first"))
	c.put("k", []byte("DIVERGENT"))
	if body, ok := c.get("k"); !ok || string(body) != "first" {
		t.Fatalf("get = %q, %v", body, ok)
	}
	if s := c.stats(); s.Conflicts != 1 {
		t.Fatalf("conflicts = %d, want 1", s.Conflicts)
	}
}

func TestRespCacheConcurrent(t *testing.T) {
	// Race-detector smoke: concurrent gets and puts over a small
	// keyspace with evictions in play.
	c := newRespCache(8)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				key := fmt.Sprintf("k%d", (g+i)%16)
				if body, ok := c.get(key); ok && string(body) != key {
					t.Errorf("key %s returned body %q", key, body)
					return
				}
				c.put(key, []byte(key))
			}
		}(g)
	}
	wg.Wait()
	if s := c.stats(); s.Entries > 8 {
		t.Errorf("entries = %d exceeds limit 8", s.Entries)
	}
}
