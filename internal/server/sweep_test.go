package server

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"testing"
)

// postSweep sends a sweep and parses the NDJSON stream into lines.
func postSweep(t *testing.T, url, reqBody string) (*http.Response, []SweepCellResult) {
	t.Helper()
	resp, err := http.Post(url+"/v1/sweep", "application/json", strings.NewReader(reqBody))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var lines []SweepCellResult
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		if len(bytes.TrimSpace(sc.Bytes())) == 0 {
			continue
		}
		var line SweepCellResult
		if err := json.Unmarshal(sc.Bytes(), &line); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", sc.Text(), err)
		}
		lines = append(lines, line)
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return resp, lines
}

// byIndex reindexes stream lines (which arrive in completion order)
// back into request order.
func byIndex(t *testing.T, lines []SweepCellResult, n int) []SweepCellResult {
	t.Helper()
	out := make([]SweepCellResult, n)
	seen := make([]bool, n)
	for _, l := range lines {
		if l.Index < 0 || l.Index >= n {
			t.Fatalf("line index %d out of range [0,%d)", l.Index, n)
		}
		if seen[l.Index] {
			t.Fatalf("cell %d emitted twice", l.Index)
		}
		seen[l.Index] = true
		out[l.Index] = l
	}
	for i, ok := range seen {
		if !ok {
			t.Fatalf("cell %d never emitted (%d of %d lines)", i, len(lines), n)
		}
	}
	return out
}

// TestSweepMatchesSimulate runs a small sweep and asserts every cell's
// embedded response is byte-identical to the /v1/simulate body for the
// same cell — the cross-endpoint identity contract.
func TestSweepMatchesSimulate(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2})

	cells := []string{
		fmt.Sprintf(`{"apps":%q}`, smallSpec),
		`{"apps":"CG x2, BBMA x2","policy":"latest"}`,
		`{"apps":"Raytrace, nBBMA x2","policy":"linux","seed":3}`,
	}
	resp, lines := postSweep(t, ts.URL, `{"cells":[`+strings.Join(cells, ",")+`]}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("sweep status = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Errorf("Content-Type = %q", ct)
	}
	got := byIndex(t, lines, len(cells))
	for i, cell := range cells {
		if got[i].Status != http.StatusOK {
			t.Fatalf("cell %d status = %d (%s)", i, got[i].Status, got[i].Error)
		}
		// The same cell via /v1/simulate (now a cache hit) must return
		// exactly the sweep's embedded bytes plus the trailing newline.
		simResp, simBody := post(t, ts.URL, cell)
		if simResp.StatusCode != http.StatusOK {
			t.Fatalf("simulate %d status = %d", i, simResp.StatusCode)
		}
		if simResp.Header.Get("X-Cache") != "hit" {
			t.Errorf("cell %d: simulate after sweep missed the cache", i)
		}
		if want := strings.TrimSuffix(string(simBody), "\n"); string(got[i].Response) != want {
			t.Errorf("cell %d sweep body diverged from simulate:\nsweep:    %s\nsimulate: %s",
				i, got[i].Response, want)
		}
	}
}

// TestSweepCoalescesDuplicates puts the same canonical cell in a sweep
// three times under different spellings: one computation, three lines,
// the extras reporting as hits.
func TestSweepCoalescesDuplicates(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 2})
	body := `{"cells":[
		{"apps":"CG x2, BBMA x2"},
		{"apps":"CG, CG, BBMA, BBMA","policy":"window","seed":1},
		{"apps":"CG x2, BBMA x2","policy":"window"}
	]}`
	resp, lines := postSweep(t, ts.URL, body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("sweep status = %d", resp.StatusCode)
	}
	got := byIndex(t, lines, 3)
	var hits, misses int
	for i, l := range got {
		if l.Status != http.StatusOK {
			t.Fatalf("cell %d status = %d (%s)", i, l.Status, l.Error)
		}
		switch l.Cache {
		case "hit":
			hits++
		case "miss":
			misses++
		default:
			t.Errorf("cell %d cache = %q", i, l.Cache)
		}
		if string(l.Response) != string(got[0].Response) {
			t.Errorf("cell %d body diverged from cell 0", i)
		}
	}
	if misses != 1 || hits != 2 {
		t.Errorf("hits/misses = %d/%d, want 2/1 (coalescing failed)", hits, misses)
	}
	if completed := s.pool.Completed(); completed != 1 {
		t.Errorf("pool ran %d cells for 3 identical requests, want 1", completed)
	}
}

// TestSweepSelfThrottles pushes a sweep far wider than the pool: every
// cell must still complete, bounded by the queue, with no shedding.
func TestSweepSelfThrottles(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 1})
	var cells []string
	const n = 8
	for i := 0; i < n; i++ {
		cells = append(cells, fmt.Sprintf(`{"apps":%q,"policy":"linux","seed":%d}`, smallSpec, i+1))
	}
	resp, lines := postSweep(t, ts.URL, `{"cells":[`+strings.Join(cells, ",")+`]}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("sweep status = %d", resp.StatusCode)
	}
	got := byIndex(t, lines, n)
	for i, l := range got {
		if l.Status != http.StatusOK {
			t.Errorf("cell %d status = %d (%s)", i, l.Status, l.Error)
		}
	}
}

// TestSweepBadCellsAreLines checks per-cell failure isolation: a
// malformed cell yields a 400 line, the rest still run.
func TestSweepBadCellsAreLines(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	body := fmt.Sprintf(`{"cells":[{"apps":%q},{"apps":"NoSuchApp"},{"apps":%q,"policy":"latest"}]}`,
		smallSpec, smallSpec)
	resp, lines := postSweep(t, ts.URL, body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("sweep status = %d", resp.StatusCode)
	}
	got := byIndex(t, lines, 3)
	if got[0].Status != http.StatusOK || got[2].Status != http.StatusOK {
		t.Errorf("good cells = %d/%d, want 200/200", got[0].Status, got[2].Status)
	}
	if got[1].Status != http.StatusBadRequest || got[1].Error == "" {
		t.Errorf("bad cell = %d %q, want 400 with error", got[1].Status, got[1].Error)
	}
}

// TestSweepRequestValidation covers whole-request rejections.
func TestSweepRequestValidation(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	for _, tt := range []struct {
		name, body string
	}{
		{"malformed JSON", `{"cells":`},
		{"empty cells", `{"cells":[]}`},
		{"no cells field", `{}`},
	} {
		t.Run(tt.name, func(t *testing.T) {
			resp, err := http.Post(ts.URL+"/v1/sweep", "application/json", strings.NewReader(tt.body))
			if err != nil {
				t.Fatal(err)
			}
			resp.Body.Close()
			if resp.StatusCode != http.StatusBadRequest {
				t.Errorf("status = %d, want 400", resp.StatusCode)
			}
		})
	}
	resp, err := http.Get(ts.URL + "/v1/sweep")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /v1/sweep = %d, want 405", resp.StatusCode)
	}
}

// TestCanonicalKeyAgreesAcrossEncodings is the shard-routing contract:
// a cell's canonical key must be identical whether it is spelled as a
// /v1/simulate body or embedded in a /v1/sweep cell, and across
// spellings of the same workload — the gateway hashes CanonicalKey to
// pick a shard, and the backend's cache keys on the same string, so
// any disagreement would scatter one cell's cache entries across
// shards.
func TestCanonicalKeyAgreesAcrossEncodings(t *testing.T) {
	spellings := []string{
		`{"apps":"CG x2, BBMA x4"}`,
		`{"apps":"CG, CG, BBMA x4","policy":"window"}`,
		`{"apps":"CG, CG, BBMA, BBMA, BBMA, BBMA","policy":"window","seed":1}`,
	}
	var keys []string
	for _, raw := range spellings {
		// The /v1/simulate path: decode the body directly.
		var direct Request
		if err := json.Unmarshal([]byte(raw), &direct); err != nil {
			t.Fatal(err)
		}
		directKey, err := CanonicalKey(direct)
		if err != nil {
			t.Fatal(err)
		}

		// The /v1/sweep path: the same cell round-tripped through the
		// sweep request encoding.
		sweepBody, err := json.Marshal(SweepRequest{Cells: []Request{direct}})
		if err != nil {
			t.Fatal(err)
		}
		var decoded SweepRequest
		if err := json.Unmarshal(sweepBody, &decoded); err != nil {
			t.Fatal(err)
		}
		sweepKey, err := CanonicalKey(decoded.Cells[0])
		if err != nil {
			t.Fatal(err)
		}
		if directKey != sweepKey {
			t.Errorf("key diverged across encodings for %s:\nsimulate: %s\nsweep:    %s",
				raw, directKey, sweepKey)
		}
		keys = append(keys, directKey)
	}
	for i := 1; i < len(keys); i++ {
		if keys[i] != keys[0] {
			t.Errorf("spelling %d canonicalized to a different key:\n%s\n%s", i, keys[i], keys[0])
		}
	}
}
