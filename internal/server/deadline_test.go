package server

import (
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"testing"
	"time"
)

func postWithDeadline(t *testing.T, url, body string, deadline time.Time) (*http.Response, []byte) {
	t.Helper()
	req, err := http.NewRequest(http.MethodPost, url+"/v1/simulate", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(DeadlineHeader, strconv.FormatInt(deadline.UnixMilli(), 10))
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b := make([]byte, 1024)
	n, _ := resp.Body.Read(b)
	return resp, b[:n]
}

// TestExpiredDeadlineNeverEntersPool: a request whose propagated
// deadline has already passed is shed at admission — 504, no cell
// submitted, no worker touched.
func TestExpiredDeadlineNeverEntersPool(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1})
	ran := make(chan struct{}, 8)
	s.testRunHook = func() { ran <- struct{}{} }

	body := fmt.Sprintf(`{"apps":%q}`, smallSpec)
	resp, b := postWithDeadline(t, ts.URL, body, time.Now().Add(-time.Second))
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("status = %d %s, want 504 for an expired deadline", resp.StatusCode, b)
	}
	select {
	case <-ran:
		t.Fatal("expired-deadline request entered the pool")
	case <-time.After(100 * time.Millisecond):
	}
	if got := s.pool.Completed(); got != 0 {
		t.Fatalf("pool completed %d cells, want 0", got)
	}
	if got := metricValue(t, ts.URL, `smpsimd_deadline_shed_total{stage="admission"}`); got != 1 {
		t.Errorf("admission shed counter = %d, want 1", got)
	}

	// The same cell with a sane deadline still computes.
	resp, b = postWithDeadline(t, ts.URL, body, time.Now().Add(time.Minute))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d %s, want 200 with a live deadline", resp.StatusCode, b)
	}
}

// TestDeadlineShedAtDequeue: a cell whose deadline expires while it
// waits in the queue is dropped when a worker picks it up, not
// computed.
func TestDeadlineShedAtDequeue(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 4})
	gate := make(chan struct{})
	s.testRunHook = func() { <-gate }

	// Occupy the only worker with a no-deadline cell.
	hold := make(chan struct{})
	go func() {
		defer close(hold)
		post(t, ts.URL, fmt.Sprintf(`{"apps":%q,"seed":1}`, smallSpec))
	}()
	waitBusy(t, s)

	// Queue a second cell with a deadline that will expire while it
	// waits. Its handler gives up at the deadline (504); the interesting
	// assertion is what happens when the worker finally dequeues it.
	done := make(chan int, 1)
	go func() {
		resp, _ := postWithDeadline(t, ts.URL,
			fmt.Sprintf(`{"apps":%q,"seed":2}`, smallSpec), time.Now().Add(150*time.Millisecond))
		done <- resp.StatusCode
	}()

	time.Sleep(300 * time.Millisecond) // let the queued cell's deadline lapse
	close(gate)                        // release the worker
	<-hold
	if code := <-done; code != http.StatusGatewayTimeout {
		t.Fatalf("queued expired cell: status %d, want 504", code)
	}
	// The worker must have shed the stale cell at dequeue rather than
	// simulating it: the hook (inside the real run path) runs after the
	// deadline check, so only the holder cell passed through it.
	deadlineOK := func() bool {
		return metricValue(t, ts.URL, `smpsimd_deadline_shed_total{stage="dequeue"}`) == 1
	}
	for i := 0; i < 50 && !deadlineOK(); i++ {
		time.Sleep(20 * time.Millisecond)
	}
	if !deadlineOK() {
		t.Error("dequeue shed not counted")
	}
}

// waitBusy polls until the pool's single worker is occupied.
func waitBusy(t *testing.T, s *Server) {
	t.Helper()
	for i := 0; i < 100; i++ {
		if s.pool.Busy() == 1 {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatal("worker never became busy")
}

// metricValue scrapes one exact-match counter from /metrics.
func metricValue(t *testing.T, url, name string) int {
	t.Helper()
	resp, err := http.Get(url + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	buf := new(strings.Builder)
	if _, err := io.Copy(buf, resp.Body); err != nil {
		t.Fatal(err)
	}
	for _, line := range strings.Split(buf.String(), "\n") {
		if strings.HasPrefix(line, name+" ") {
			v, err := strconv.Atoi(strings.TrimSpace(strings.TrimPrefix(line, name)))
			if err != nil {
				t.Fatalf("bad metric line %q: %v", line, err)
			}
			return v
		}
	}
	return 0
}
