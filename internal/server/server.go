// Package server is the simulation-as-a-service front end: a
// JSON-over-HTTP API that runs workload cells on a shared bounded
// runner pool and serves their results with the disciplines of a real
// inference server — bounded admission with backpressure (429 +
// Retry-After instead of unbounded queueing), per-request deadlines
// via context, an exact-key LRU cache over canonicalized requests
// (identical request ⇒ byte-identical body), health and Prometheus
// metrics endpoints, and graceful drain.
//
// The request shape matches the system: the paper's evaluation is a
// grid of independent, deterministic cells, so every response is a
// pure function of its canonical request and caching whole bodies is
// sound. Endpoints:
//
//	POST /v1/simulate  — run (or replay) one cell; see Request/Response
//	POST /v1/sweep     — run a batch of cells, streaming NDJSON lines
//	                     in completion order (see sweep.go)
//	GET  /healthz      — liveness plus queue/pool/cache gauges
//	GET  /metrics      — Prometheus text exposition
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"time"

	"busaware/internal/digest"
	"busaware/internal/runner"
	"busaware/internal/sim"
	"busaware/internal/store"
	"busaware/internal/trace"
)

// Config sizes the server. The zero value is serviceable: GOMAXPROCS
// workers, a 2x-workers admission queue, the default cache, a 60s
// request deadline and a 1s Retry-After hint.
type Config struct {
	// Workers bounds the simulation pool (0 = GOMAXPROCS).
	Workers int
	// QueueDepth bounds admitted-but-not-running requests
	// (0 = 2x workers). Beyond it the server sheds with 429.
	QueueDepth int
	// CacheSize bounds the response cache (0 = DefaultCacheSize).
	CacheSize int
	// RequestTimeout is the per-request deadline, queue wait included
	// (0 = 60s). Expiry yields 504.
	RequestTimeout time.Duration
	// RetryAfter is the backoff hint attached to 429 responses
	// (0 = 1s).
	RetryAfter time.Duration
	// SimDelay adds an artificial latency to every cell before the
	// simulator runs (0 = none). Real cells simulate in single-digit
	// milliseconds, too fast for overload to be observable on small
	// machines; a deliberate delay stands in for expensive cells so
	// backpressure and drain behaviour can be demonstrated
	// deterministically (the CI overload smoke and smpload demos).
	SimDelay time.Duration
	// TimelineQuanta is the per-run telemetry window span in quanta
	// (0 = timeline.DefaultQuantaPerWindow). Smaller windows stream
	// sooner; the CI smoke uses a small span so even short cells seal
	// windows mid-run.
	TimelineQuanta int
	// TimelineWindows bounds each run's retained window ring (0 = 256).
	// Older windows fold into the run summary, keeping memory bounded
	// at millions of quanta.
	TimelineWindows int
	// Engine selects the simulation core for every cell the server
	// runs: the quantum-stepped reference loop (zero value), the
	// event-driven leaping engine, or shadow mode, which runs both and
	// fails the request on any divergence. Responses are identical
	// under all three, so the cache key deliberately excludes it.
	Engine sim.EngineKind
	// Store is the persistent result store behind the in-memory cache
	// (nil = memory only). A miss on the in-process LRU falls through
	// to the store's disk and shared tiers before computing, and every
	// freshly rendered body is written through to all tiers, so warm
	// state survives restarts and is shareable across backends.
	Store *store.Store
}

// Server handles the simulation API. Create with New, serve via
// http.Server, and Close when done to release the pool.
type Server struct {
	cfg     Config
	pool    *runner.Pool
	cache   *respCache
	store   *store.Store
	metrics *metrics
	feed    *timelineFeed
	mux     *http.ServeMux

	// testRunHook, when non-nil, runs inside every simulation cell
	// before the simulator starts — the test seam for holding workers
	// busy to exercise backpressure and deadlines.
	testRunHook func()
}

// New builds a Server and starts its worker pool.
func New(cfg Config) *Server {
	if cfg.RequestTimeout <= 0 {
		cfg.RequestTimeout = 60 * time.Second
	}
	if cfg.RetryAfter <= 0 {
		cfg.RetryAfter = time.Second
	}
	s := &Server{
		cfg:     cfg,
		pool:    runner.NewPool(cfg.Workers, cfg.QueueDepth),
		cache:   newRespCache(cfg.CacheSize),
		store:   cfg.Store,
		metrics: newMetrics(),
		feed:    newTimelineFeed(),
		mux:     http.NewServeMux(),
	}
	s.mux.HandleFunc("/v1/simulate", s.handleSimulate)
	s.mux.HandleFunc("/v1/sweep", s.handleSweep)
	s.mux.HandleFunc("/v1/timeline", s.handleTimeline)
	s.mux.HandleFunc("/healthz", s.handleHealthz)
	s.mux.HandleFunc("/metrics", s.handleMetrics)
	return s
}

// ServeHTTP dispatches to the API endpoints.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

// Close stops admissions and waits for cells already admitted to
// finish. Call after http.Server.Shutdown has stopped new connections;
// together they are the SIGTERM drain path.
func (s *Server) Close() { s.pool.Close() }

// CacheStats exposes the response-cache counters (for healthz, tests
// and the load driver's sanity checks).
func (s *Server) CacheStats() CacheStats { return s.cache.stats() }

// StoreStats exposes the persistent store's per-tier counters (zero
// when no store is configured).
func (s *Server) StoreStats() store.Stats { return s.store.Stats() }

// maxBodyBytes caps request bodies; specs are short strings, so 1 MiB
// is generous.
const maxBodyBytes = 1 << 20

// errorBody is the JSON error envelope for every non-200.
func (s *Server) error(w http.ResponseWriter, started time.Time, code int, msg string) {
	body, _ := json.Marshal(struct {
		Error string `json:"error"`
	}{msg})
	body = append(body, '\n')
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("Content-Length", strconv.Itoa(len(body)))
	w.WriteHeader(code)
	w.Write(body)
	s.metrics.observe(code, time.Since(started))
}

func (s *Server) handleSimulate(w http.ResponseWriter, r *http.Request) {
	started := time.Now()
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		s.error(w, started, http.StatusMethodNotAllowed, "POST only")
		return
	}
	var req Request
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		s.error(w, started, http.StatusBadRequest, fmt.Sprintf("bad request body: %v", err))
		return
	}
	c, err := compile(req)
	if err != nil {
		s.error(w, started, http.StatusBadRequest, err.Error())
		return
	}
	deadline, err := ParseDeadline(r.Header)
	if err != nil {
		s.error(w, started, http.StatusBadRequest, err.Error())
		return
	}

	// Admission-time deadline shed: if the propagated deadline has
	// already passed, the requester provably gave up — don't spend a
	// cache lookup or a pool slot writing to nobody.
	if !deadline.IsZero() && !time.Now().Before(deadline) {
		s.metrics.observeDeadlineShed("admission")
		s.error(w, started, http.StatusGatewayTimeout, "deadline already expired")
		return
	}

	// Exact-key cache: a hit replays the byte-identical body computed
	// for the first occurrence of this canonical request.
	if body, ok := s.cache.get(c.Key); ok {
		s.write(w, started, body, "hit")
		return
	}

	// Persistent tiers: a body computed before the last restart (tier
	// 2) or by any backend in the fleet (tier 3) is verified, promoted
	// into the memory cache, and replayed without touching the pool.
	if body, tier, ok := s.store.Get(c.Key); ok {
		s.cache.put(c.Key, body)
		s.write(w, started, body, "hit-t"+tier.String())
		return
	}

	// Admission: refuse rather than queue without bound. The client is
	// told when to come back; smpload counts these as shed, not failed.
	out, ok := s.submit(c, deadline)
	if !ok {
		w.Header().Set("Retry-After",
			strconv.Itoa(int((s.cfg.RetryAfter+time.Second-1)/time.Second)))
		s.error(w, started, http.StatusTooManyRequests, "simulation queue full")
		return
	}

	// The deadline covers queue wait plus execution; the client closing
	// its connection cancels too. A worker finishing after we gave up
	// still delivers into the buffered channel, and the work is not
	// wasted: a salvage goroutine renders the late result into the
	// response cache, so the retry the 504/Retry-After told the client
	// to make is a hit, not a recompute.
	timeout := s.cfg.RequestTimeout
	if !deadline.IsZero() {
		if until := time.Until(deadline); until < timeout {
			timeout = until
		}
	}
	ctx, cancel := context.WithTimeout(r.Context(), timeout)
	defer cancel()
	select {
	case <-ctx.Done():
		go s.salvage(c, out)
		if errors.Is(ctx.Err(), context.DeadlineExceeded) {
			s.error(w, started, http.StatusGatewayTimeout, "deadline exceeded")
		} else {
			// Client went away; nothing to write, but account for it.
			s.metrics.observe(499, time.Since(started))
		}
		return
	case res := <-out:
		if errors.Is(res.Err, errDeadlineShed) {
			s.error(w, started, http.StatusGatewayTimeout, res.Err.Error())
			return
		}
		body, err := renderBody(c, res)
		if err != nil {
			s.error(w, started, http.StatusInternalServerError, err.Error())
			return
		}
		s.cachePut(c.Key, body)
		s.write(w, started, body, "miss")
	}
}

// cachePut installs a freshly computed body in the memory cache and
// writes it through to every persistent tier, so the computation
// survives a restart and (with a shared tier) warms the whole fleet.
func (s *Server) cachePut(key string, body []byte) {
	s.cache.put(key, body)
	s.store.Put(key, body)
}

// renderBody converts a finished cell into the exact wire bytes the
// cache stores and every replay serves. The telemetry collector rides
// on every run for the live feed, but windows enter the body — and so
// the cache — only when the request opted in, and the key encodes that
// choice, so replays stay byte-identical either way.
func renderBody(c *compiled, res runner.PoolResult) ([]byte, error) {
	if res.Err != nil {
		return nil, res.Err
	}
	col := c.collector
	if !c.Timeline {
		col = nil
	}
	resp, err := NewResponse(res.Result, c.chromeTrace, col)
	if err != nil {
		return nil, err
	}
	return resp.MarshalBody()
}

// salvage waits for a cell whose requester gave up (deadline or
// disconnect) and populates the response cache with the result, so the
// computation is spent once even when its first requester never saw
// it.
func (s *Server) salvage(c *compiled, out <-chan runner.PoolResult) {
	res := <-out
	body, err := renderBody(c, res)
	if err != nil {
		return
	}
	s.cachePut(c.Key, body)
	s.metrics.observeLateCached()
}

// submit offers the compiled request to the pool as one runner cell.
// Every run records telemetry into its own bounded collector — not
// just opted-in ones — so the live /v1/timeline feed sees all traffic;
// recording is allocation-free per quantum, so this costs nothing the
// bench gate would notice. A non-zero deadline is re-checked at
// dequeue: a cell that aged out waiting in the queue is shed instead
// of computed.
func (s *Server) submit(c *compiled, deadline time.Time) (<-chan runner.PoolResult, bool) {
	if c.Trace {
		c.chromeTrace = &trace.Timeline{NumCPUs: c.Config.Machine.NumCPUs}
		c.Config.Trace = c.chromeTrace
	}
	c.Config.Engine = s.cfg.Engine
	c.collector = s.newRunCollector(c.Key)
	c.Config.Timeline = c.collector
	cell := runner.Cell{
		Label:        c.Key,
		Config:       c.Config,
		Scheduler:    c.Scheduler,
		NewScheduler: c.NewScheduler,
		Apps:         c.Apps,
	}
	if hook, delay := s.testRunHook, s.cfg.SimDelay; hook != nil || delay > 0 || !deadline.IsZero() {
		cfg, sched, apps := cell.Config, cell.Scheduler, cell.Apps
		cfg.SchedulerFactory = c.NewScheduler
		cell.Run = func() (sim.Result, error) {
			if !deadline.IsZero() && !time.Now().Before(deadline) {
				s.metrics.observeDeadlineShed("dequeue")
				return sim.Result{}, errDeadlineShed
			}
			if hook != nil {
				hook()
			}
			if delay > 0 {
				time.Sleep(delay)
			}
			return sim.Run(cfg, sched, apps)
		}
	}
	return s.pool.TrySubmit(cell)
}

// write sends a 200 with the exact cached/rendered body bytes, stamped
// with their integrity digest so every hop downstream can prove the
// bytes arrived intact.
func (s *Server) write(w http.ResponseWriter, started time.Time, body []byte, cacheState string) {
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("Content-Length", strconv.Itoa(len(body)))
	w.Header().Set("X-Cache", cacheState)
	w.Header().Set(digest.Header, digest.Sum(body))
	w.WriteHeader(http.StatusOK)
	w.Write(body)
	s.metrics.observe(http.StatusOK, time.Since(started))
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		w.Header().Set("Allow", http.MethodGet)
		http.Error(w, "GET only", http.StatusMethodNotAllowed)
		return
	}
	cs := s.cache.stats()
	ss := s.store.Stats()
	body, _ := json.Marshal(struct {
		Status       string `json:"status"`
		QueueDepth   int    `json:"queue_depth"`
		QueueCap     int    `json:"queue_capacity"`
		Workers      int    `json:"workers"`
		Busy         int    `json:"busy"`
		Completed    int64  `json:"completed"`
		CacheSize    int    `json:"cache_entries"`
		CacheHits    uint64 `json:"cache_hits"`
		StoreEntries int    `json:"store_entries"`
		StoreHits    uint64 `json:"store_hits"`
	}{
		Status:       "ok",
		QueueDepth:   s.pool.QueueDepth(),
		QueueCap:     s.pool.QueueCap(),
		Workers:      s.pool.Workers(),
		Busy:         s.pool.Busy(),
		Completed:    s.pool.Completed(),
		CacheSize:    cs.Entries,
		CacheHits:    cs.Hits,
		StoreEntries: ss.Disk.Entries,
		StoreHits:    ss.Disk.Hits + ss.Shared.Hits,
	})
	body = append(body, '\n')
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	w.Write(body)
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		w.Header().Set("Allow", http.MethodGet)
		http.Error(w, "GET only", http.StatusMethodNotAllowed)
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.metrics.write(w, s)
}
