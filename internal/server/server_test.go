package server

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"busaware/internal/sim"
)

// smallSpec is a fast-but-real workload: one finite application plus
// both antagonists, the shape every figure cell has.
const smallSpec = "CG, BBMA, nBBMA"

func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s := New(cfg)
	ts := httptest.NewServer(s)
	t.Cleanup(func() {
		ts.Close()
		s.Close()
	})
	return s, ts
}

func post(t *testing.T, url string, reqBody string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(url+"/v1/simulate", "application/json", strings.NewReader(reqBody))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, body
}

func TestSimulateMatchesDirectRun(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2})
	reqJSON := fmt.Sprintf(`{"apps":%q,"policy":"window"}`, smallSpec)
	resp, body := post(t, ts.URL, reqJSON)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, body %s", resp.StatusCode, body)
	}
	if got := resp.Header.Get("Content-Type"); got != "application/json" {
		t.Errorf("Content-Type = %q", got)
	}

	// The server body must be byte-identical to compiling and running
	// the same request locally — the CLI-diffability contract.
	c, err := compile(Request{Apps: smallSpec, Policy: "window"})
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.Run(c.Config, c.Scheduler, c.Apps)
	if err != nil {
		t.Fatal(err)
	}
	direct, err := NewResponse(res, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	want, err := direct.MarshalBody()
	if err != nil {
		t.Fatal(err)
	}
	if string(body) != string(want) {
		t.Errorf("server body diverged from direct run:\nserver: %s\ndirect: %s", body, want)
	}

	var decoded Response
	if err := json.Unmarshal(body, &decoded); err != nil {
		t.Fatalf("response is not valid JSON: %v", err)
	}
	if len(decoded.Apps) != 1 || decoded.Apps[0].Instance != "CG#1" {
		t.Errorf("apps = %+v, want the one finite CG instance", decoded.Apps)
	}
	if decoded.Quanta == 0 || decoded.EndTimeUsec == 0 {
		t.Errorf("empty machine stats: %+v", decoded)
	}
}

func TestByteIdenticalRepeatAndCanonicalization(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 2})

	resp1, body1 := post(t, ts.URL, `{"apps":"CG x2, BBMA x2"}`)
	if resp1.StatusCode != http.StatusOK {
		t.Fatalf("first request: %d %s", resp1.StatusCode, body1)
	}
	if got := resp1.Header.Get("X-Cache"); got != "miss" {
		t.Errorf("first request X-Cache = %q, want miss", got)
	}

	// Same canonical request, different spelling: defaults written out,
	// multiplicity unrolled. Must hit and replay the exact bytes.
	resp2, body2 := post(t, ts.URL, `{"apps":"CG, CG, BBMA, BBMA","policy":"window","seed":1}`)
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("second request: %d %s", resp2.StatusCode, body2)
	}
	if got := resp2.Header.Get("X-Cache"); got != "hit" {
		t.Errorf("second request X-Cache = %q, want hit", got)
	}
	if string(body1) != string(body2) {
		t.Errorf("cached body diverged:\nfirst:  %s\nsecond: %s", body1, body2)
	}
	cs := s.CacheStats()
	if cs.Hits != 1 || cs.Misses != 1 || cs.Entries != 1 {
		t.Errorf("cache stats = %+v, want 1 hit / 1 miss / 1 entry", cs)
	}

	// A genuinely different request (other seed under linux) must miss.
	resp3, _ := post(t, ts.URL, `{"apps":"CG, CG, BBMA, BBMA","policy":"linux","seed":7}`)
	if got := resp3.Header.Get("X-Cache"); got != "miss" {
		t.Errorf("distinct request X-Cache = %q, want miss", got)
	}
}

func TestSimulateBadRequests(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	tests := []struct {
		name string
		body string
	}{
		{"malformed JSON", `{"apps":`},
		{"unknown field", `{"apps":"CG","bogus":1}`},
		{"unknown app", `{"apps":"NoSuchApp x2"}`},
		{"bad multiplicity", `{"apps":"CG x0"}`},
		{"empty workload", `{"apps":""}`},
		{"unknown policy", `{"apps":"CG","policy":"fifo"}`},
		{"negative cpus", `{"apps":"CG","cpus":-1}`},
		{"negative max time", `{"apps":"CG","max_time_usec":-5}`},
		{"fault rate out of range", `{"apps":"CG","faults":{"SampleLoss":1.5}}`},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			resp, body := post(t, ts.URL, tt.body)
			if resp.StatusCode != http.StatusBadRequest {
				t.Fatalf("status = %d, body %s, want 400", resp.StatusCode, body)
			}
			var e struct {
				Error string `json:"error"`
			}
			if err := json.Unmarshal(body, &e); err != nil || e.Error == "" {
				t.Errorf("error body %q not a JSON error envelope", body)
			}
		})
	}
}

func TestSimulateMethodNotAllowed(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	resp, err := http.Get(ts.URL + "/v1/simulate")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /v1/simulate = %d, want 405", resp.StatusCode)
	}
}

func TestBackpressure(t *testing.T) {
	gate := make(chan struct{})
	s, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 1, RetryAfter: 3 * time.Second})
	s.testRunHook = func() { <-gate }
	defer func() {
		select {
		case <-gate:
		default:
			close(gate)
		}
	}()

	// Two distinct requests: one occupies the lone worker, one fills
	// the queue slot.
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(seed int) {
			defer wg.Done()
			resp, body := post(t, ts.URL, fmt.Sprintf(`{"apps":%q,"policy":"linux","seed":%d}`, smallSpec, seed+1))
			if resp.StatusCode != http.StatusOK {
				t.Errorf("held request %d: %d %s", seed, resp.StatusCode, body)
			}
		}(i)
	}
	waitFor(t, func() bool { return s.pool.Busy() == 1 && s.pool.QueueDepth() == 1 })

	// The third must be shed, not queued.
	resp, body := post(t, ts.URL, fmt.Sprintf(`{"apps":%q,"policy":"linux","seed":9}`, smallSpec))
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("overload status = %d, body %s, want 429", resp.StatusCode, body)
	}
	if got := resp.Header.Get("Retry-After"); got != "3" {
		t.Errorf("Retry-After = %q, want \"3\"", got)
	}

	close(gate)
	wg.Wait()
}

// TestSimDelay covers the -simdelay knob: the configured artificial
// cell latency must be paid on a cache miss (it stands in for an
// expensive cell) and skipped entirely on a cache hit.
func TestSimDelay(t *testing.T) {
	const delay = 80 * time.Millisecond
	_, ts := newTestServer(t, Config{Workers: 1, SimDelay: delay})

	t0 := time.Now()
	resp, body := post(t, ts.URL, fmt.Sprintf(`{"apps":%q}`, smallSpec))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("miss status = %d, body %s", resp.StatusCode, body)
	}
	if took := time.Since(t0); took < delay {
		t.Errorf("cache miss took %s, want >= %s", took, delay)
	}

	t0 = time.Now()
	resp, body = post(t, ts.URL, fmt.Sprintf(`{"apps":%q}`, smallSpec))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("hit status = %d, body %s", resp.StatusCode, body)
	}
	if resp.Header.Get("X-Cache") != "hit" {
		t.Errorf("second response not served from cache")
	}
	if took := time.Since(t0); took >= delay {
		t.Errorf("cache hit took %s, want < %s", took, delay)
	}
}

func TestRequestDeadline(t *testing.T) {
	gate := make(chan struct{})
	s, ts := newTestServer(t, Config{Workers: 1, RequestTimeout: 30 * time.Millisecond})
	s.testRunHook = func() { <-gate }
	defer close(gate)

	resp, body := post(t, ts.URL, fmt.Sprintf(`{"apps":%q}`, smallSpec))
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("status = %d, body %s, want 504", resp.StatusCode, body)
	}
}

// TestLateCompletionPopulatesCache times out a slow cell (504), lets
// the worker finish, and asserts the retry is served from the cache —
// the late result must be salvaged, not dropped and recomputed.
func TestLateCompletionPopulatesCache(t *testing.T) {
	gate := make(chan struct{})
	s, ts := newTestServer(t, Config{Workers: 1, RequestTimeout: 30 * time.Millisecond})
	s.testRunHook = func() { <-gate }

	reqJSON := fmt.Sprintf(`{"apps":%q}`, smallSpec)
	resp, body := post(t, ts.URL, reqJSON)
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("slow cell status = %d, body %s, want 504", resp.StatusCode, body)
	}

	// Release the worker and wait for the salvage goroutine to cache
	// the late result.
	close(gate)
	s.testRunHook = nil
	waitFor(t, func() bool { return s.CacheStats().Entries == 1 })

	resp, body = post(t, ts.URL, reqJSON)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("retry status = %d, body %s", resp.StatusCode, body)
	}
	if got := resp.Header.Get("X-Cache"); got != "hit" {
		t.Errorf("retry X-Cache = %q, want hit (late completion was not salvaged)", got)
	}

	// The salvaged body must be byte-identical to a direct run — the
	// cache-replay contract does not weaken for late entries.
	c, err := compile(Request{Apps: smallSpec})
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.Run(c.Config, c.Scheduler, c.Apps)
	if err != nil {
		t.Fatal(err)
	}
	direct, err := NewResponse(res, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	want, err := direct.MarshalBody()
	if err != nil {
		t.Fatal(err)
	}
	if string(body) != string(want) {
		t.Errorf("salvaged body diverged from direct run:\nserver: %s\ndirect: %s", body, want)
	}
}

func TestTraceEmbedded(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	resp, body := post(t, ts.URL, fmt.Sprintf(`{"apps":%q,"trace":true}`, smallSpec))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, body %s", resp.StatusCode, body)
	}
	var decoded Response
	if err := json.Unmarshal(body, &decoded); err != nil {
		t.Fatal(err)
	}
	var events []map[string]any
	if err := json.Unmarshal(decoded.TraceEvents, &events); err != nil {
		t.Fatalf("trace_events not a JSON array: %v", err)
	}
	if len(events) == 0 {
		t.Error("trace_events empty")
	}
}

func TestHealthz(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz = %d", resp.StatusCode)
	}
	var h struct {
		Status  string `json:"status"`
		Workers int    `json:"workers"`
	}
	if err := json.Unmarshal(body, &h); err != nil {
		t.Fatal(err)
	}
	if h.Status != "ok" || h.Workers != 1 {
		t.Errorf("healthz body = %s", body)
	}
}

func TestMetricsExposition(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	// One miss, one hit, one 400.
	post(t, ts.URL, fmt.Sprintf(`{"apps":%q}`, smallSpec))
	post(t, ts.URL, fmt.Sprintf(`{"apps":%q}`, smallSpec))
	post(t, ts.URL, `{"apps":"NoSuchApp"}`)

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	text := string(body)
	for _, want := range []string{
		`smpsimd_requests_total{code="200"} 2`,
		`smpsimd_requests_total{code="400"} 1`,
		"smpsimd_request_duration_seconds_bucket{le=\"+Inf\"} 3",
		"smpsimd_request_duration_seconds_count 3",
		"smpsimd_queue_depth 0",
		"smpsimd_pool_workers 1",
		"smpsimd_cache_hits_total 1",
		"smpsimd_cache_misses_total 1",
		"smpsimd_cache_hit_ratio 0.5",
		"smpsimd_cells_completed_total 1",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics missing %q;\n%s", want, text)
		}
	}
}

func TestConcurrentIdenticalRequests(t *testing.T) {
	// Many clients asking for the same cell concurrently: every
	// response must be byte-identical regardless of whether it was a
	// miss (computed) or a hit (replayed).
	_, ts := newTestServer(t, Config{Workers: 4, QueueDepth: 64})
	const n = 16
	bodies := make([][]byte, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, body := post(t, ts.URL, fmt.Sprintf(`{"apps":%q}`, smallSpec))
			if resp.StatusCode != http.StatusOK {
				t.Errorf("request %d: %d %s", i, resp.StatusCode, body)
				return
			}
			bodies[i] = body
		}(i)
	}
	wg.Wait()
	for i := 1; i < n; i++ {
		if string(bodies[i]) != string(bodies[0]) {
			t.Fatalf("response %d diverged from response 0", i)
		}
	}
}

func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition not reached in 5s")
		}
		time.Sleep(time.Millisecond)
	}
}
