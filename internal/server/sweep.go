package server

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"time"

	"busaware/internal/digest"
	"busaware/internal/runner"
)

// The sweep endpoint is the batch face of the API: a paper-scale
// figure sweep is a large set of independent deterministic cells, and
// submitting them one HTTP round trip at a time wastes both the
// client's closed loop and the server's admission queue. POST
// /v1/sweep accepts up to MaxSweepCells cells in one body and streams
// one NDJSON line per cell as it completes — out of order, each line
// tagged with the cell's index in the request.
//
// Execution stays bounded by the same runner.Pool as /v1/simulate: the
// sweep self-throttles, keeping at most the pool's queue in flight and
// waiting for its own completions before submitting more, so a big
// batch cannot starve interactive requests of more than the queue.
// Each cell is individually cacheable under the same exact-key LRU —
// cells already resident are answered without touching the pool, and
// duplicate cells within one sweep are coalesced onto a single
// computation (the extras report as hits).

// MaxSweepCells bounds one sweep request. 4096 covers every figure
// grid in the paper times policies and seeds with room to spare.
const MaxSweepCells = 4096

// sweepMaxBodyBytes caps sweep request bodies: cells are short JSON
// objects, so even MaxSweepCells of them fit comfortably in 8 MiB.
const sweepMaxBodyBytes = 8 << 20

// SweepRequest is the POST /v1/sweep body: a batch of independent
// cells, each in exactly the /v1/simulate request schema (identical
// canonicalization, identical cache keys).
type SweepRequest struct {
	Cells []Request `json:"cells"`
}

// SweepCellResult is one line of the application/x-ndjson response
// stream. Lines arrive in completion order; Index ties a line back to
// its cell in the request. For Status 200 the Response field holds the
// exact /v1/simulate body bytes for that cell (sans trailing newline),
// so byte-identity checks work across both endpoints. Digest is the
// line's integrity digest over (status, index, response) — folding the
// coordinates in means a corruption that remaps a line's digits is
// caught, not just one that garbles its payload.
type SweepCellResult struct {
	Index    int             `json:"index"`
	Status   int             `json:"status"`
	Cache    string          `json:"cache,omitempty"`
	Error    string          `json:"error,omitempty"`
	Digest   string          `json:"digest,omitempty"`
	Response json.RawMessage `json:"response,omitempty"`
}

// sweepPending is one submitted computation and every cell index
// coalesced onto it.
type sweepPending struct {
	c       *compiled
	indices []int
}

// sweepDone is a finished computation, rendered (and cached) by its
// forwarder goroutine.
type sweepDone struct {
	p    *sweepPending
	body []byte
	err  error
}

func (s *Server) handleSweep(w http.ResponseWriter, r *http.Request) {
	started := time.Now()
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		s.error(w, started, http.StatusMethodNotAllowed, "POST only")
		return
	}
	var req SweepRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, sweepMaxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		s.error(w, started, http.StatusBadRequest, fmt.Sprintf("bad request body: %v", err))
		return
	}
	if len(req.Cells) == 0 {
		s.error(w, started, http.StatusBadRequest, "empty sweep")
		return
	}
	if len(req.Cells) > MaxSweepCells {
		s.error(w, started, http.StatusBadRequest,
			fmt.Sprintf("sweep of %d cells exceeds the %d-cell limit", len(req.Cells), MaxSweepCells))
		return
	}

	deadline, err := ParseDeadline(r.Header)
	if err != nil {
		s.error(w, started, http.StatusBadRequest, err.Error())
		return
	}
	if !deadline.IsZero() && !time.Now().Before(deadline) {
		s.metrics.observeDeadlineShed("admission")
		s.error(w, started, http.StatusGatewayTimeout, "deadline already expired")
		return
	}

	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	emit := func(line SweepCellResult) {
		line.Digest = digest.SumLine(line.Status, line.Index, line.Response)
		b, err := json.Marshal(line)
		if err != nil {
			return
		}
		w.Write(append(b, '\n'))
		if flusher != nil {
			flusher.Flush()
		}
		s.metrics.observeSweepCell(line)
	}

	// done is buffered for every possible computation so forwarder
	// goroutines never block on it — if the client disconnects
	// mid-sweep the handler returns without draining, and forwarders
	// still complete (they render and cache before delivering, so no
	// finished cell is ever wasted).
	done := make(chan sweepDone, len(req.Cells))
	pending := make(map[string]*sweepPending, len(req.Cells))
	inflight := 0

	finish := func(d sweepDone) {
		if d.err != nil {
			status := http.StatusInternalServerError
			if errors.Is(d.err, errDeadlineShed) {
				status = http.StatusGatewayTimeout
			}
			for _, idx := range d.p.indices {
				emit(SweepCellResult{Index: idx, Status: status, Error: d.err.Error()})
			}
			return
		}
		for i, idx := range d.p.indices {
			cacheState := "miss"
			if i > 0 {
				cacheState = "hit" // coalesced duplicate, served from the shared computation
			}
			emit(SweepCellResult{Index: idx, Status: http.StatusOK, Cache: cacheState,
				Response: json.RawMessage(bytes.TrimSpace(d.body))})
		}
	}

	ctx := r.Context()
cells:
	for idx, cell := range req.Cells {
		c, err := compile(cell)
		if err != nil {
			emit(SweepCellResult{Index: idx, Status: http.StatusBadRequest, Error: err.Error()})
			continue
		}
		if p, ok := pending[c.Key]; ok {
			p.indices = append(p.indices, idx)
			continue
		}
		if body, ok := s.cache.get(c.Key); ok {
			emit(SweepCellResult{Index: idx, Status: http.StatusOK, Cache: "hit",
				Response: json.RawMessage(bytes.TrimSpace(body))})
			continue
		}
		if body, tier, ok := s.store.Get(c.Key); ok {
			s.cache.put(c.Key, body)
			emit(SweepCellResult{Index: idx, Status: http.StatusOK, Cache: "hit-t" + tier.String(),
				Response: json.RawMessage(bytes.TrimSpace(body))})
			continue
		}
		p := &sweepPending{c: c, indices: []int{idx}}
		for {
			out, ok := s.submit(c, deadline)
			if ok {
				pending[c.Key] = p
				inflight++
				go func(p *sweepPending, out <-chan runner.PoolResult) {
					res := <-out
					body, err := renderBody(p.c, res)
					if err == nil {
						s.cachePut(p.c.Key, body)
					}
					done <- sweepDone{p: p, body: body, err: err}
				}(p, out)
				break
			}
			// Queue full. Prefer draining our own completions — each
			// one both frees pool capacity and gets its line on the
			// wire early. With nothing of ours in flight the pool is
			// saturated by other requests; wait out a fraction of the
			// Retry-After hint and offer again rather than shedding
			// mid-stream.
			if inflight > 0 {
				select {
				case d := <-done:
					inflight--
					delete(pending, d.p.c.Key)
					finish(d)
				case <-ctx.Done():
					break cells
				}
				continue
			}
			select {
			case <-time.After(s.cfg.RetryAfter / 4):
			case <-ctx.Done():
				break cells
			}
		}
	}

	for inflight > 0 {
		select {
		case d := <-done:
			inflight--
			finish(d)
		case <-ctx.Done():
			// Client gone: stop writing. Forwarders have already (or
			// will) populate the cache with every in-flight result.
			inflight = 0
		}
	}
	s.metrics.observe(http.StatusOK, time.Since(started))
}
