package store

import (
	"bytes"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"sync"
	"testing"
)

func mustOpen(t *testing.T, cfg Config) *Store {
	t.Helper()
	s, err := Open(cfg)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	return s
}

func TestStoreRoundTrip(t *testing.T) {
	s := mustOpen(t, Config{Dir: t.TempDir()})
	body := []byte(`{"policy":"window","seed":1}` + "\n")
	s.Put("k1", body)
	got, tier, ok := s.Get("k1")
	if !ok || tier != TierDisk {
		t.Fatalf("Get = tier %v ok %v, want disk hit", tier, ok)
	}
	if !bytes.Equal(got, body) {
		t.Fatalf("Get body = %q, want %q", got, body)
	}
	if _, _, ok := s.Get("absent"); ok {
		t.Fatal("Get(absent) hit")
	}
	st := s.Stats()
	if st.Disk.Puts != 1 || st.Disk.Hits != 1 || st.Disk.Misses != 1 {
		t.Fatalf("stats = %+v", st.Disk)
	}
	if st.Disk.Entries != 1 || st.Disk.Bytes != int64(len(encode("k1", body))) {
		t.Fatalf("footprint = %d entries %d bytes", st.Disk.Entries, st.Disk.Bytes)
	}
}

func TestStoreNilIsDisabled(t *testing.T) {
	var s *Store
	s.Put("k", []byte("x")) // must not panic
	if _, tier, ok := s.Get("k"); ok || tier != TierNone {
		t.Fatalf("nil store Get = tier %v ok %v", tier, ok)
	}
	if st := s.Stats(); st != (Stats{}) {
		t.Fatalf("nil store Stats = %+v", st)
	}
}

func TestStoreSurvivesReopen(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, Config{Dir: dir})
	body := []byte("persisted body\n")
	s.Put("k1", body)

	s2 := mustOpen(t, Config{Dir: dir})
	got, tier, ok := s2.Get("k1")
	if !ok || tier != TierDisk || !bytes.Equal(got, body) {
		t.Fatalf("after reopen: tier %v ok %v body %q", tier, ok, got)
	}
	st := s2.Stats()
	if st.Disk.Entries != 1 || st.Disk.Bytes != int64(len(encode("k1", body))) {
		t.Fatalf("reopen index = %d entries %d bytes", st.Disk.Entries, st.Disk.Bytes)
	}
}

// Verify-fail-is-miss: a corrupted body must never be served; the bad
// file is removed so the key can be repopulated.
func TestStoreVerifyFailIsMiss(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, Config{Dir: dir})
	s.Put("k1", []byte("the true body\n"))

	path := pathFor(dir, hashKey("k1"))
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-2] ^= 0xff // flip a body byte
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	if _, _, ok := s.Get("k1"); ok {
		t.Fatal("corrupt entry served as a hit")
	}
	st := s.Stats()
	if st.Disk.VerifyFails != 1 || st.Disk.Misses != 1 {
		t.Fatalf("stats after corruption = %+v", st.Disk)
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Fatalf("corrupt file not removed: %v", err)
	}
	// Truncation (crash mid-old-style write, torn page) is also a miss.
	s.Put("k2", []byte("another body\n"))
	p2 := pathFor(dir, hashKey("k2"))
	full, _ := os.ReadFile(p2)
	if err := os.WriteFile(p2, full[:len(full)-4], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, ok := s.Get("k2"); ok {
		t.Fatal("truncated entry served as a hit")
	}
	// A key mismatch (hash collision, mislaid file) is a miss too.
	s.Put("k3", []byte("body three\n"))
	mislaid := pathFor(dir, hashKey("k4"))
	if err := os.MkdirAll(filepath.Dir(mislaid), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.Rename(pathFor(dir, hashKey("k3")), mislaid); err != nil {
		t.Fatal(err)
	}
	if _, _, ok := s.Get("k4"); ok {
		t.Fatal("entry with wrong embedded key served as a hit")
	}
}

// Crash-mid-write recovery: leftover temp files are swept at Open and
// never visible to Get.
func TestStoreCrashMidWriteRecovery(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, Config{Dir: dir})
	s.Put("k1", []byte("good body\n"))

	// Simulate a writer that died before rename: a partial temp file
	// deep in a shard directory.
	shard := filepath.Join(dir, "ab", "cd")
	if err := os.MkdirAll(shard, 0o755); err != nil {
		t.Fatal(err)
	}
	tmp := filepath.Join(shard, tmpPrefix+"123456")
	if err := os.WriteFile(tmp, []byte(magic+"\nk9\npartial"), 0o644); err != nil {
		t.Fatal(err)
	}

	s2 := mustOpen(t, Config{Dir: dir})
	if _, err := os.Stat(tmp); !os.IsNotExist(err) {
		t.Fatalf("temp leftover not swept: %v", err)
	}
	if got, _, ok := s2.Get("k1"); !ok || string(got) != "good body\n" {
		t.Fatalf("real entry lost in sweep: ok %v body %q", ok, got)
	}
	if st := s2.Stats(); st.Disk.Entries != 1 {
		t.Fatalf("index counted temp leftovers: %+v", st.Disk)
	}
}

func TestStoreConflictKeepsIncumbent(t *testing.T) {
	s := mustOpen(t, Config{Dir: t.TempDir()})
	first := []byte("first body\n")
	s.Put("k1", first)
	s.Put("k1", []byte("divergent body\n"))
	got, _, ok := s.Get("k1")
	if !ok || !bytes.Equal(got, first) {
		t.Fatalf("incumbent replaced: ok %v body %q", ok, got)
	}
	st := s.Stats()
	if st.Disk.Conflicts != 1 {
		t.Fatalf("conflicts = %d, want 1", st.Disk.Conflicts)
	}
	// Identical re-put is not a conflict.
	s.Put("k1", first)
	if st := s.Stats(); st.Disk.Conflicts != 1 {
		t.Fatalf("identical re-put counted as conflict: %d", st.Disk.Conflicts)
	}
}

func TestStoreSharedTierPromotion(t *testing.T) {
	sharedDir := t.TempDir()
	writer := mustOpen(t, Config{SharedDir: sharedDir})
	body := []byte("fleet-wide body\n")
	writer.Put("k1", body)

	joiner := mustOpen(t, Config{Dir: t.TempDir(), SharedDir: sharedDir})
	got, tier, ok := joiner.Get("k1")
	if !ok || tier != TierShared || !bytes.Equal(got, body) {
		t.Fatalf("shared lookup: tier %v ok %v body %q", tier, ok, got)
	}
	// Promotion: the second lookup is local.
	got, tier, ok = joiner.Get("k1")
	if !ok || tier != TierDisk || !bytes.Equal(got, body) {
		t.Fatalf("promoted lookup: tier %v ok %v body %q", tier, ok, got)
	}
	st := joiner.Stats()
	if st.Shared.Hits != 1 || st.Disk.Hits != 1 || st.Disk.Conflicts != 0 {
		t.Fatalf("stats = disk %+v shared %+v", st.Disk, st.Shared)
	}
}

// LRU-vs-model property test: drive a store and a trivial reference
// model with the same randomized Put/Get script and require the same
// survivor set after bounded eviction.
func TestStoreEvictionMatchesLRUModel(t *testing.T) {
	const (
		keys    = 24
		bodyLen = 64
		ops     = 600
	)
	bodyOf := func(k string) []byte {
		b := bytes.Repeat([]byte(k[:1]), bodyLen-1)
		return append(b, '\n')
	}
	// All keys are "kNN", so every entry file is the same size; bound
	// the store at 10 resident entries.
	entrySize := len(encode("k00", bodyOf("k00")))
	capacity := int64(10 * entrySize)
	for seed := int64(1); seed <= 8; seed++ {
		dir := t.TempDir()
		s := mustOpen(t, Config{Dir: dir, MaxBytes: capacity})
		rng := rand.New(rand.NewSource(seed))

		// Model: key -> logical atime, evict min while over capacity.
		model := map[string]int{}
		tick := 0
		modelEvict := func() {
			for int64(len(model)*entrySize) > capacity {
				oldest, best := "", 1<<30
				for k, at := range model {
					if at < best || (at == best && k < oldest) {
						oldest, best = k, at
					}
				}
				delete(model, oldest)
			}
		}
		for i := 0; i < ops; i++ {
			k := fmt.Sprintf("k%02d", rng.Intn(keys))
			tick++
			if rng.Intn(2) == 0 {
				s.Put(k, bodyOf(k))
				if _, ok := model[k]; !ok {
					model[k] = tick
					modelEvict()
				}
				// Re-put of a resident key keeps the incumbent and
				// refreshes recency — mirror the store's add().
				model[k] = tick
			} else {
				_, _, hit := s.Get(k)
				_, want := model[k]
				if hit != want {
					t.Fatalf("seed %d op %d: Get(%s) hit=%v model=%v", seed, i, k, hit, want)
				}
				if want {
					model[k] = tick
				}
			}
		}
		// Survivor sets must agree, on disk and in the index.
		st := s.Stats()
		if st.Disk.Entries != len(model) {
			t.Fatalf("seed %d: store holds %d entries, model %d", seed, st.Disk.Entries, len(model))
		}
		for k := range model {
			if _, err := os.Stat(pathFor(dir, hashKey(k))); err != nil {
				t.Fatalf("seed %d: model survivor %s missing on disk: %v", seed, k, err)
			}
		}
	}
}

// Concurrent get/put/evict race test: hammer a small bounded store
// from many goroutines; correctness bar is no panics, no wrong bodies,
// and a consistent index afterwards. Run with -race in CI.
func TestStoreConcurrentAccess(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, Config{Dir: dir, MaxBytes: 8 * 128})
	const workers = 8
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			for i := 0; i < 300; i++ {
				k := fmt.Sprintf("key-%02d", rng.Intn(20))
				want := append(bytes.Repeat([]byte(k), 8), '\n')
				if rng.Intn(2) == 0 {
					s.Put(k, want)
				} else if got, _, ok := s.Get(k); ok && !bytes.Equal(got, want) {
					t.Errorf("Get(%s) returned wrong body", k)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	st := s.Stats()
	if st.Disk.VerifyFails != 0 {
		t.Fatalf("verify failures under concurrency: %+v", st.Disk)
	}
	// Index bytes must equal the sum of resident file bodies.
	var onDisk int
	for k := 0; k < 20; k++ {
		key := fmt.Sprintf("key-%02d", k)
		if _, err := os.Stat(pathFor(dir, hashKey(key))); err == nil {
			onDisk++
		}
	}
	if st.Disk.Entries != onDisk {
		t.Fatalf("index %d entries, disk %d", st.Disk.Entries, onDisk)
	}
}

func TestOpenRequiresADirectory(t *testing.T) {
	if _, err := Open(Config{}); err == nil {
		t.Fatal("Open with no directories succeeded")
	}
}
