// Package store is the persistent half of the result-cache hierarchy:
// a content-addressed store of rendered response bodies keyed by the
// server's canonical request key. The in-process LRU (tier 1, owned by
// internal/server) answers the hot set; this package adds
//
//	tier 2 — a local directory, two-level sharded over the hashed key,
//	         size-bounded with LRU eviction by access order
//	tier 3 — an optional shared directory all backends read and write,
//	         one global result set for the whole fleet
//
// Sharing whole bodies is sound because the simulator is a pure
// function of the canonical key (byte-identity enforced end to end by
// internal/digest) — the same durable-result-cache assumption offline
// schedule reuse makes. What disk adds is failure modes memory does
// not have: truncated files after a crash, torn or bit-rotted bytes,
// another process writing the same key. The store's contract is that
// none of those can surface as a wrong body:
//
//   - Writes are crash-safe: the entry is built in a temp file and
//     published with os.Rename, so readers see either nothing or the
//     whole entry. Leftover temp files are swept at Open.
//   - Every read is verified: the entry embeds its key and the digest
//     of its body, and a mismatch — truncation, corruption, a hash
//     collision — is a miss (and the corrupt file is removed), never a
//     served body.
//   - A Put over an existing entry cross-checks digests instead of
//     assuming byte-identity; a divergent body is a counted conflict
//     and the incumbent is kept, mirroring the tier-1 discipline.
//
// All methods are safe for concurrent use and are no-ops on a nil
// *Store, so callers thread an optional store without branching.
package store

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"busaware/internal/digest"
)

// Tier identifies which layer of the hierarchy answered a Get.
type Tier int

const (
	// TierNone means no tier had the key.
	TierNone Tier = iota
	// TierMemory is the caller-owned in-process LRU (tier 1). The
	// store never returns it; it exists so callers can label all three
	// layers with one type.
	TierMemory
	// TierDisk is the local sharded directory (tier 2).
	TierDisk
	// TierShared is the fleet-wide shared directory (tier 3).
	TierShared
)

// String names a tier the way the metrics label it.
func (t Tier) String() string {
	switch t {
	case TierMemory:
		return "1"
	case TierDisk:
		return "2"
	case TierShared:
		return "3"
	}
	return "none"
}

// Config sizes and places the store.
type Config struct {
	// Dir is the tier-2 root ("" disables tier 2).
	Dir string
	// SharedDir is the tier-3 root ("" disables tier 3). Several
	// backends may point at the same directory; writes are atomic, so
	// concurrent populators are safe.
	SharedDir string
	// MaxBytes bounds tier 2's total on-disk bytes (entry files,
	// headers included; 0 = unbounded). Over the bound, entries are
	// evicted least-recently-accessed first.
	MaxBytes int64
}

// TierStats is one tier's counters.
type TierStats struct {
	// Hits and Misses count Get lookups that reached this tier.
	Hits, Misses uint64
	// VerifyFails counts entries rejected on read — truncated,
	// corrupted, or keyed wrong — and removed. Each is reported as a
	// miss too; a verify failure must never be worse than absence.
	VerifyFails uint64
	// Puts counts bodies written; Conflicts counts Puts whose key was
	// already present with different bytes (incumbent kept).
	Puts, Conflicts uint64
	// Evictions counts size-bound LRU removals (tier 2 only).
	Evictions uint64
	// Bytes and Entries are the resident footprint (tier 2 only; a
	// shared directory has no single owner to account it).
	Bytes   int64
	Entries int
}

// Stats is a point-in-time snapshot of both persistent tiers.
type Stats struct {
	Disk, Shared TierStats
}

// tierCounters is the lock-free half of a tier's stats.
type tierCounters struct {
	hits, misses, verifyFails, puts, conflicts, evictions atomic.Uint64
}

func (c *tierCounters) snapshot() TierStats {
	return TierStats{
		Hits:        c.hits.Load(),
		Misses:      c.misses.Load(),
		VerifyFails: c.verifyFails.Load(),
		Puts:        c.puts.Load(),
		Conflicts:   c.conflicts.Load(),
		Evictions:   c.evictions.Load(),
	}
}

// entry is the tier-2 index record for one resident file.
type entry struct {
	hash  string
	size  int64
	atime int64 // logical access clock; seeded from mtime at Open
}

// Store is a tiered persistent result store. Open one per process;
// the zero of *Store (nil) is a disabled store on which every method
// is a cheap no-op.
type Store struct {
	dir      string
	shared   string
	maxBytes int64

	// mu guards the tier-2 index (bytes, clock, entries); file I/O
	// happens outside it so a slow disk never serializes lookups.
	mu      sync.Mutex
	index   map[string]*entry
	bytes   int64
	clock   int64
	evictMu sync.Mutex // serializes eviction sweeps

	t2, t3 tierCounters
}

// Open builds a Store over cfg, creating the roots, sweeping temp
// files a crashed writer left behind, and indexing tier 2's resident
// entries (sizes and access times) for the eviction bound. At least
// one of Dir and SharedDir must be set.
func Open(cfg Config) (*Store, error) {
	if cfg.Dir == "" && cfg.SharedDir == "" {
		return nil, fmt.Errorf("store: no directory configured")
	}
	s := &Store{
		dir:      cfg.Dir,
		shared:   cfg.SharedDir,
		maxBytes: cfg.MaxBytes,
		index:    make(map[string]*entry),
	}
	for _, root := range []string{s.dir, s.shared} {
		if root == "" {
			continue
		}
		if err := os.MkdirAll(root, 0o755); err != nil {
			return nil, fmt.Errorf("store: %w", err)
		}
		sweepTemp(root)
	}
	if s.dir != "" {
		if err := s.loadIndex(); err != nil {
			return nil, err
		}
	}
	return s, nil
}

// tmpPrefix marks in-progress writes; anything carrying it at Open is
// a crash leftover and is removed.
const tmpPrefix = "tmp-"

// sweepTemp removes interrupted writes under root (best-effort — a
// sweep that races another process's live write just fails to remove
// a file that process will rename or re-create).
func sweepTemp(root string) {
	filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil || d.IsDir() {
			return nil
		}
		if strings.HasPrefix(d.Name(), tmpPrefix) {
			os.Remove(path)
		}
		return nil
	})
}

// loadIndex walks tier 2 and rebuilds the eviction index. Access
// order across restarts is seeded from file mtimes (bumped on every
// hit), so a restart resumes the LRU where the last process left it.
func (s *Store) loadIndex() error {
	type seed struct {
		e  *entry
		mt time.Time
	}
	var seeds []seed
	err := filepath.WalkDir(s.dir, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return nil
		}
		if d.IsDir() || strings.HasPrefix(d.Name(), tmpPrefix) {
			return nil
		}
		info, err := d.Info()
		if err != nil {
			return nil
		}
		seeds = append(seeds, seed{
			e:  &entry{hash: d.Name(), size: info.Size()},
			mt: info.ModTime(),
		})
		return nil
	})
	if err != nil {
		return fmt.Errorf("store: index %s: %w", s.dir, err)
	}
	// Oldest mtime gets the lowest logical atime; ties break on the
	// hash so the order is deterministic.
	for i := range seeds {
		for j := i + 1; j < len(seeds); j++ {
			if seeds[j].mt.Before(seeds[i].mt) ||
				(seeds[j].mt.Equal(seeds[i].mt) && seeds[j].e.hash < seeds[i].e.hash) {
				seeds[i], seeds[j] = seeds[j], seeds[i]
			}
		}
	}
	for _, sd := range seeds {
		s.clock++
		sd.e.atime = s.clock
		s.index[sd.e.hash] = sd.e
		s.bytes += sd.e.size
	}
	return nil
}

// hashKey maps a canonical key to its content address: the hex SHA-256
// of the key. Collisions are cryptographically negligible, and the
// embedded key is re-checked on read regardless, so even a collision
// is a verify-fail miss, never a wrong body.
func hashKey(key string) string {
	h := sha256.Sum256([]byte(key))
	return hex.EncodeToString(h[:])
}

// pathFor is the two-level sharded location of hash under root:
// root/ab/cd/abcd... — 65536 leaf directories, so a million entries
// average ~15 files per directory instead of one unlistable flat dir.
func pathFor(root, hash string) string {
	return filepath.Join(root, hash[:2], hash[2:4], hash)
}

// entry file layout: a three-line header then the raw body bytes.
// The key line lets a read prove the file answers the question asked
// (hash collisions, tooling mistakes); the digest line is the body's
// integrity check, shared with the wire format (internal/digest).
const magic = "busaware-store 1"

// encode renders the entry file bytes for (key, body).
func encode(key string, body []byte) []byte {
	out := make([]byte, 0, len(magic)+len(key)+len(body)+32)
	out = append(out, magic...)
	out = append(out, '\n')
	out = append(out, key...)
	out = append(out, '\n')
	out = append(out, digest.Sum(body)...)
	out = append(out, '\n')
	return append(out, body...)
}

// decode parses and verifies an entry file. Any deviation — wrong
// magic, wrong key, digest mismatch (which covers truncation) — is
// reported as not-ok.
func decode(data []byte, key string) ([]byte, bool) {
	rest, ok := cutLine(data, magic)
	if !ok {
		return nil, false
	}
	rest, ok = cutLine(rest, key)
	if !ok {
		return nil, false
	}
	nl := bytes.IndexByte(rest, '\n')
	if nl < 0 {
		return nil, false
	}
	d, body := string(rest[:nl]), rest[nl+1:]
	if d != digest.Sum(body) {
		return nil, false
	}
	return body, true
}

// cutLine strips one expected header line.
func cutLine(data []byte, want string) ([]byte, bool) {
	nl := bytes.IndexByte(data, '\n')
	if nl < 0 || string(data[:nl]) != want {
		return nil, false
	}
	return data[nl+1:], true
}

// Get returns the stored body for key, trying tier 2 then tier 3. A
// tier-3 hit is promoted into tier 2 so the next lookup is local. The
// returned slice is freshly read and owned by the caller.
func (s *Store) Get(key string) ([]byte, Tier, bool) {
	if s == nil {
		return nil, TierNone, false
	}
	hash := hashKey(key)
	if s.dir != "" {
		if body, ok := s.readTier(&s.t2, s.dir, hash, key); ok {
			s.touch(hash)
			return body, TierDisk, true
		}
	}
	if s.shared != "" {
		if body, ok := s.readTier(&s.t3, s.shared, hash, key); ok {
			if s.dir != "" {
				// Promote: the next restart (or eviction refill) finds
				// it locally without touching the shared set.
				s.putTier(&s.t2, s.dir, hash, key, body, true)
			}
			return body, TierShared, true
		}
	}
	return nil, TierNone, false
}

// readTier reads and verifies one tier's entry for hash, accounting
// the outcome. A corrupt entry is removed so it cannot fail every
// future lookup; absence and corruption both return not-ok.
func (s *Store) readTier(c *tierCounters, root, hash, key string) ([]byte, bool) {
	data, err := os.ReadFile(pathFor(root, hash))
	if err != nil {
		c.misses.Add(1)
		return nil, false
	}
	body, ok := decode(data, key)
	if !ok {
		c.verifyFails.Add(1)
		c.misses.Add(1)
		os.Remove(pathFor(root, hash))
		if root == s.dir {
			s.drop(hash)
		}
		return nil, false
	}
	c.hits.Add(1)
	return body, true
}

// Put stores body under key in every configured persistent tier.
// Writes are atomic (temp + rename); an existing divergent entry is a
// counted conflict and is kept, matching tier 1's first-writer-wins.
func (s *Store) Put(key string, body []byte) {
	if s == nil {
		return
	}
	hash := hashKey(key)
	if s.dir != "" {
		s.putTier(&s.t2, s.dir, hash, key, body, false)
	}
	if s.shared != "" {
		s.putTier(&s.t3, s.shared, hash, key, body, false)
	}
}

// putTier writes one tier's entry. promotion marks tier-3→tier-2
// copies, which skip conflict accounting (the body was just verified
// against the same digest scheme it is being written with).
func (s *Store) putTier(c *tierCounters, root, hash, key string, body []byte, promotion bool) {
	path := pathFor(root, hash)
	if prev, err := os.ReadFile(path); err == nil {
		if old, ok := decode(prev, key); ok {
			// An incumbent entry: keep it. Byte-identity is the system
			// invariant, so a divergence is worth a counter, not a
			// silent overwrite — cross-check via the digests both
			// bodies would be served under. Either way the put is an
			// access, so refresh the entry's recency.
			if !promotion && digest.Sum(old) != digest.Sum(body) {
				c.conflicts.Add(1)
			}
			if root == s.dir {
				s.touch(hash)
			}
			return
		}
		// Corrupt incumbent: fall through and replace it.
	}
	data := encode(key, body)
	if err := writeAtomic(path, data); err != nil {
		return // disk trouble degrades to a smaller cache, never an error
	}
	c.puts.Add(1)
	if root == s.dir {
		s.add(hash, int64(len(data)))
		s.evict()
	}
}

// writeAtomic publishes data at path via a same-directory temp file
// and os.Rename, so a crash mid-write leaves only a sweepable temp
// and readers only ever see whole files.
func writeAtomic(path string, data []byte) error {
	dir := filepath.Dir(path)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	f, err := os.CreateTemp(dir, tmpPrefix+"*")
	if err != nil {
		return err
	}
	tmp := f.Name()
	if _, err := f.Write(data); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	return nil
}

// touch bumps hash's logical access time (and, best-effort, its file
// mtime so access order survives a restart).
func (s *Store) touch(hash string) {
	s.mu.Lock()
	if e, ok := s.index[hash]; ok {
		s.clock++
		e.atime = s.clock
	}
	s.mu.Unlock()
	now := time.Now()
	os.Chtimes(pathFor(s.dir, hash), now, now)
}

// add indexes a freshly written tier-2 entry as most recently used.
func (s *Store) add(hash string, size int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if e, ok := s.index[hash]; ok {
		s.bytes += size - e.size
		e.size = size
		s.clock++
		e.atime = s.clock
		return
	}
	s.clock++
	s.index[hash] = &entry{hash: hash, size: size, atime: s.clock}
	s.bytes += size
}

// drop unindexes hash (its file is already gone or going).
func (s *Store) drop(hash string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if e, ok := s.index[hash]; ok {
		s.bytes -= e.size
		delete(s.index, hash)
	}
}

// evict removes least-recently-accessed tier-2 entries until the
// byte bound holds. One sweeper runs at a time; lookups and puts
// proceed meanwhile (a Get racing its entry's eviction simply
// misses, which is always safe).
func (s *Store) evict() {
	if s.maxBytes <= 0 {
		return
	}
	s.evictMu.Lock()
	defer s.evictMu.Unlock()
	for {
		s.mu.Lock()
		if s.bytes <= s.maxBytes || len(s.index) == 0 {
			s.mu.Unlock()
			return
		}
		var oldest *entry
		for _, e := range s.index {
			if oldest == nil || e.atime < oldest.atime ||
				(e.atime == oldest.atime && e.hash < oldest.hash) {
				oldest = e
			}
		}
		s.bytes -= oldest.size
		delete(s.index, oldest.hash)
		s.mu.Unlock()
		os.Remove(pathFor(s.dir, oldest.hash))
		s.t2.evictions.Add(1)
	}
}

// Stats snapshots both persistent tiers (zero for a nil store).
func (s *Store) Stats() Stats {
	if s == nil {
		return Stats{}
	}
	st := Stats{Disk: s.t2.snapshot(), Shared: s.t3.snapshot()}
	s.mu.Lock()
	st.Disk.Bytes = s.bytes
	st.Disk.Entries = len(s.index)
	s.mu.Unlock()
	return st
}
