package chaos

import (
	"testing"
	"time"
)

func TestNilInjectorInert(t *testing.T) {
	var in *Injector
	for i := 0; i < 100; i++ {
		if d := in.Decide(); d.Action != ActNone {
			t.Fatalf("nil injector injected %v", d.Action)
		}
	}
	if s := in.Stats(); s != (Stats{}) {
		t.Fatalf("nil injector accumulated stats: %+v", s)
	}
}

func TestDisabledConfigYieldsNil(t *testing.T) {
	in, err := New(Config{Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	if in != nil {
		t.Fatal("zero-rate config must yield a nil (inert) injector")
	}
}

func TestValidateRejectsBadRates(t *testing.T) {
	if _, err := New(Config{Reset: Class{Prob: 1.5}}); err == nil {
		t.Fatal("probability > 1 must be rejected")
	}
	if _, err := New(Config{Corrupt: Class{Prob: -0.1}}); err == nil {
		t.Fatal("negative probability must be rejected")
	}
}

// TestDeterministicSchedule is the reproducibility contract the CI
// chaos gate relies on: same config, same event count, same schedule.
func TestDeterministicSchedule(t *testing.T) {
	cfg := Config{
		Seed:       7,
		Reset:      Class{Prob: 0.1},
		Corrupt:    Class{Prob: 0.1},
		Err5xx:     Class{Prob: 0.05},
		Latency:    Class{Prob: 0.05},
		LatencyDur: 100 * time.Millisecond,
	}
	run := func() ([]Decision, Stats) {
		in, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		out := make([]Decision, 0, 1000)
		for i := 0; i < 1000; i++ {
			out = append(out, in.Decide())
		}
		return out, in.Stats()
	}
	a, sa := run()
	b, sb := run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("event %d diverged: %+v vs %+v", i, a[i], b[i])
		}
	}
	if sa != sb {
		t.Fatalf("stats diverged: %+v vs %+v", sa, sb)
	}
	if sa.Injected() == 0 {
		t.Fatal("schedule injected nothing at these rates over 1000 events")
	}
}

// TestInertAtZeroPerClass: enabling one class must not change another
// class's (empty) schedule — the faults-package independence rule.
func TestInertAtZeroPerClass(t *testing.T) {
	in, err := New(Config{Seed: 3, Reset: Class{Prob: 1}})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		if d := in.Decide(); d.Action != ActReset {
			t.Fatalf("event %d: got %v, want every event reset", i, d.Action)
		}
	}
	s := in.Stats()
	if s.Resets != 50 || s.Injected() != 50 {
		t.Fatalf("zero-rate classes fired: %+v", s)
	}
}

// TestBudgetCapsClass: once Max faults have been injected, the class
// goes quiet — this is what makes injected counts run-constant.
func TestBudgetCapsClass(t *testing.T) {
	in, err := New(Config{Seed: 11, Reset: Class{Prob: 1, Max: 5}})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		d := in.Decide()
		if i < 5 && d.Action != ActReset {
			t.Fatalf("event %d: want reset within budget, got %v", i, d.Action)
		}
		if i >= 5 && d.Action != ActNone {
			t.Fatalf("event %d: budget spent but still injected %v", i, d.Action)
		}
	}
	if s := in.Stats(); s.Resets != 5 || s.Events != 100 {
		t.Fatalf("stats %+v, want 5 resets over 100 events", s)
	}
}

// TestPriorityShadowing: when several classes hit one event, the
// loudest (earliest in class order) wins and the others are shadowed,
// not injected.
func TestPriorityShadowing(t *testing.T) {
	in, err := New(Config{Seed: 1, Blackhole: Class{Prob: 1}, Corrupt: Class{Prob: 1}})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		if d := in.Decide(); d.Action != ActBlackhole {
			t.Fatalf("event %d: got %v, want blackhole to outrank corrupt", i, d.Action)
		}
	}
	if s := in.Stats(); s.Corrupts != 0 || s.Blackholes != 20 {
		t.Fatalf("shadowed class counted: %+v", s)
	}
}

func TestParseScript(t *testing.T) {
	cases := []struct {
		script  string
		want    Config
		wantErr bool
	}{
		{script: "", want: Config{Seed: 9}},
		{
			script: "reset=0.04*24,corrupt=0.04*24,latency=0.008:800ms*24,err5xx=0.02*8",
			want: Config{
				Seed:       9,
				Reset:      Class{Prob: 0.04, Max: 24},
				Corrupt:    Class{Prob: 0.04, Max: 24},
				Latency:    Class{Prob: 0.008, Max: 24},
				LatencyDur: 800 * time.Millisecond,
				Err5xx:     Class{Prob: 0.02, Max: 8},
			},
		},
		{
			script: "blackhole=0.01, truncate=0.5*2",
			want: Config{
				Seed:      9,
				Blackhole: Class{Prob: 0.01},
				Truncate:  Class{Prob: 0.5, Max: 2},
			},
		},
		{script: "warp=0.1", wantErr: true},
		{script: "reset", wantErr: true},
		{script: "reset=lots", wantErr: true},
		{script: "reset=0.1:5s", wantErr: true}, // duration on non-latency class
		{script: "latency=0.1:nonsense", wantErr: true},
		{script: "reset=0.1*-3", wantErr: true},
		{script: "corrupt=1.5", wantErr: true}, // Validate catches out-of-range
	}
	for _, tc := range cases {
		got, err := ParseScript(9, tc.script)
		if tc.wantErr {
			if err == nil {
				t.Errorf("script %q: want error, got %+v", tc.script, got)
			}
			continue
		}
		if err != nil {
			t.Errorf("script %q: %v", tc.script, err)
			continue
		}
		if got != tc.want {
			t.Errorf("script %q:\n got %+v\nwant %+v", tc.script, got, tc.want)
		}
	}
}
