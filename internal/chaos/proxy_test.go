package chaos

import (
	"bytes"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// startProxy stands a Proxy up in front of srv and returns a base URL
// pointing at the proxy.
func startProxy(t *testing.T, srv *httptest.Server, in *Injector, spare map[string]bool) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	p := &Proxy{
		Upstream: strings.TrimPrefix(srv.URL, "http://"),
		Inj:      in,
		Spare:    spare,
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		p.Serve(ln)
	}()
	t.Cleanup(func() {
		p.Close()
		<-done
	})
	return "http://" + ln.Addr().String()
}

// proxyClient avoids cross-test keep-alive reuse so each test sees a
// fresh connection state.
func proxyClient() *http.Client {
	return &http.Client{Transport: &http.Transport{}}
}

func TestProxyTransparentPassThrough(t *testing.T) {
	srv, _ := newOrigin(t)
	base := startProxy(t, srv, nil, nil)
	client := proxyClient()
	defer client.CloseIdleConnections()
	for i := 0; i < 3; i++ { // keep-alive across requests
		resp, err := client.Post(base+"/v1/simulate", "application/json", bytes.NewReader([]byte(`{}`)))
		if err != nil {
			t.Fatal(err)
		}
		b, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK || !bytes.Equal(b, testBody) {
			t.Fatalf("request %d: transparent proxy altered the exchange (status %d, %d bytes)", i, resp.StatusCode, len(b))
		}
	}
}

func TestProxyReset(t *testing.T) {
	srv, _ := newOrigin(t)
	in, _ := New(Config{Seed: 1, Reset: Class{Prob: 1}})
	base := startProxy(t, srv, in, nil)
	client := proxyClient()
	defer client.CloseIdleConnections()
	if _, err := client.Get(base); err == nil {
		t.Fatal("reset must surface as a connection error")
	}
}

func TestProxyErr5xxKeepsConnectionUsable(t *testing.T) {
	srv, hits := newOrigin(t)
	// First event 503, then inert (budget 1).
	in, _ := New(Config{Seed: 1, Err5xx: Class{Prob: 1, Max: 1}})
	base := startProxy(t, srv, in, nil)
	client := proxyClient()
	defer client.CloseIdleConnections()
	resp, err := client.Get(base)
	if err != nil {
		t.Fatal(err)
	}
	io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status %d, want injected 503", resp.StatusCode)
	}
	if hits.Load() != 0 {
		t.Fatal("injected 503 must not consult the upstream")
	}
	// Same keep-alive connection must still carry the next request.
	resp, err = client.Get(base)
	if err != nil {
		t.Fatal(err)
	}
	b, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !bytes.Equal(b, testBody) {
		t.Fatal("connection unusable after injected 503")
	}
}

func TestProxyCorruptKeepsFraming(t *testing.T) {
	srv, _ := newOrigin(t)
	in, _ := New(Config{Seed: 1, Corrupt: Class{Prob: 1}})
	base := startProxy(t, srv, in, nil)
	client := proxyClient()
	defer client.CloseIdleConnections()
	resp, err := client.Get(base)
	if err != nil {
		t.Fatal(err)
	}
	b, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil || resp.StatusCode != http.StatusOK || len(b) != len(testBody) {
		t.Fatalf("corruption broke framing: err=%v status=%d len=%d", err, resp.StatusCode, len(b))
	}
	if bytes.Equal(b, testBody) {
		t.Fatal("corruption left the body identical")
	}
}

func TestProxyTruncate(t *testing.T) {
	srv, _ := newOrigin(t)
	in, _ := New(Config{Seed: 1, Truncate: Class{Prob: 1}})
	base := startProxy(t, srv, in, nil)
	client := proxyClient()
	defer client.CloseIdleConnections()
	resp, err := client.Get(base)
	if err == nil {
		b, rerr := io.ReadAll(resp.Body)
		resp.Body.Close()
		if rerr == nil && len(b) == len(testBody) {
			t.Fatal("truncated response arrived whole")
		}
	}
}

func TestProxyBlackholeHoldsUntilClientGivesUp(t *testing.T) {
	srv, hits := newOrigin(t)
	in, _ := New(Config{Seed: 1, Blackhole: Class{Prob: 1}})
	base := startProxy(t, srv, in, nil)
	client := &http.Client{Timeout: 100 * time.Millisecond, Transport: &http.Transport{}}
	defer client.CloseIdleConnections()
	start := time.Now()
	if _, err := client.Get(base); err == nil {
		t.Fatal("blackholed request must time out")
	}
	if time.Since(start) < 100*time.Millisecond {
		t.Fatal("blackhole gave up before the client did")
	}
	if hits.Load() != 0 {
		t.Fatal("blackholed request reached the upstream")
	}
}

func TestProxySparesControlPlane(t *testing.T) {
	srv, _ := newOrigin(t)
	in, _ := New(Config{Seed: 1, Reset: Class{Prob: 1}})
	base := startProxy(t, srv, in, map[string]bool{"/healthz": true})
	client := proxyClient()
	defer client.CloseIdleConnections()
	resp, err := client.Get(base + "/healthz")
	if err != nil {
		t.Fatalf("spared path must pass through, got %v", err)
	}
	io.ReadAll(resp.Body)
	resp.Body.Close()
	if s := in.Stats(); s.Events != 0 {
		t.Fatalf("spared request consumed a schedule event: %+v", s)
	}
}

// TestProxyDeterministicStats is the CI determinism gate in miniature:
// same seed + same request sequence through two independent proxies →
// identical per-class injected counts.
func TestProxyDeterministicStats(t *testing.T) {
	srv, _ := newOrigin(t)
	cfg := Config{
		Seed:    42,
		Reset:   Class{Prob: 0.2, Max: 10},
		Err5xx:  Class{Prob: 0.2, Max: 10},
		Corrupt: Class{Prob: 0.2, Max: 10},
	}
	run := func() Stats {
		in, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		base := startProxy(t, srv, in, nil)
		// Fresh connection per request: net/http silently replays
		// replayable requests that die on *reused* connections, which
		// would add schedule events at timing-dependent points.
		client := &http.Client{Transport: &http.Transport{DisableKeepAlives: true}}
		defer client.CloseIdleConnections()
		for i := 0; i < 100; i++ {
			resp, err := client.Post(base+"/cell", "application/json",
				bytes.NewReader([]byte(fmt.Sprintf(`{"seed":%d}`, i))))
			if err != nil {
				continue // injected failure: the event still counted
			}
			io.ReadAll(resp.Body)
			resp.Body.Close()
		}
		return in.Stats()
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("stats diverged across identical runs:\n run1 %+v\n run2 %+v", a, b)
	}
	if a.Events != 100 {
		t.Fatalf("events %d, want one per request", a.Events)
	}
	if a.Injected() == 0 {
		t.Fatal("schedule injected nothing")
	}
}
