package chaos

import (
	"bufio"
	"bytes"
	"fmt"
	"io"
	"net"
	"net/http"
	"sync"

	"busaware/internal/faults"
)

// Proxy is a TCP proxy that speaks just enough HTTP/1.1 to place
// faults per *request* instead of per connection: it frames each
// request off the client connection, consults the injector, and either
// forwards the exchange to the upstream or injects the scheduled
// fault. Framing per request matters for determinism — with keep-alive
// connections carrying thousands of requests, a per-connection fault
// schedule would be a schedule over an unpredictable unit.
//
// Faults are applied the way a real hostile network presents them:
// resets are abrupt TCP closes mid-exchange, blackholes accept the
// request and go silent, corruption flips response-body bytes while
// leaving the framing valid, truncation cuts the body short, spurious
// 503s are synthesized without consulting the upstream at all.
type Proxy struct {
	// Upstream is the backend host:port the proxy fronts.
	Upstream string
	// Inj supplies the fault schedule; nil makes the proxy transparent.
	Inj *Injector
	// Spare exempts paths (e.g. /healthz) from injection and from the
	// event count, keeping the control plane truthful and the data-path
	// schedule independent of probe cadence.
	Spare map[string]bool
	// Sleep substitutes the latency-spike clock for tests.
	Sleep faults.Sleeper

	mu     sync.Mutex
	ln     net.Listener
	conns  map[net.Conn]struct{}
	closed bool
	wg     sync.WaitGroup
}

// maxProxyBody bounds one framed request body (the sweep cap is 8 MiB).
const maxProxyBody = 16 << 20

// Serve accepts connections on ln until Close. It returns nil after
// Close, or the first accept error otherwise.
func (p *Proxy) Serve(ln net.Listener) error {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		ln.Close()
		return fmt.Errorf("chaos: proxy closed")
	}
	p.ln = ln
	if p.conns == nil {
		p.conns = make(map[net.Conn]struct{})
	}
	p.mu.Unlock()
	for {
		c, err := ln.Accept()
		if err != nil {
			p.mu.Lock()
			closed := p.closed
			p.mu.Unlock()
			if closed {
				return nil
			}
			return err
		}
		p.mu.Lock()
		if p.closed {
			p.mu.Unlock()
			c.Close()
			return nil
		}
		p.conns[c] = struct{}{}
		p.wg.Add(1)
		p.mu.Unlock()
		go p.serveConn(c)
	}
}

// Close stops accepting, tears down every live connection, and waits
// for the connection handlers to exit.
func (p *Proxy) Close() {
	p.mu.Lock()
	p.closed = true
	if p.ln != nil {
		p.ln.Close()
	}
	for c := range p.conns {
		c.Close()
	}
	p.mu.Unlock()
	p.wg.Wait()
}

// drop forgets a finished connection.
func (p *Proxy) drop(c net.Conn) {
	p.mu.Lock()
	delete(p.conns, c)
	p.mu.Unlock()
}

// serveConn relays one client connection, one framed request at a
// time, over a dedicated upstream connection.
func (p *Proxy) serveConn(c net.Conn) {
	defer p.wg.Done()
	defer p.drop(c)
	defer c.Close()
	br := bufio.NewReader(c)
	var up net.Conn
	var upr *bufio.Reader
	defer func() {
		if up != nil {
			up.Close()
		}
	}()
	for {
		req, err := http.ReadRequest(br)
		if err != nil {
			return
		}
		body, err := io.ReadAll(io.LimitReader(req.Body, maxProxyBody))
		req.Body.Close()
		if err != nil {
			return
		}
		var d Decision
		if p.Inj != nil && !p.Spare[req.URL.Path] {
			d = p.Inj.Decide()
		}
		if d.Action == ActLatency {
			p.Sleep.Sleep(d.Delay)
		}
		switch d.Action {
		case ActReset:
			// Abrupt close mid-exchange; the deferred closes model the
			// RST the client observes as an opaque connection error.
			return
		case ActBlackhole:
			// Request swallowed: hold the connection silent until the
			// client hangs up (its attempt timeout firing).
			io.Copy(io.Discard, br)
			return
		case ActErr5xx:
			msg := "{\"error\":\"chaos: injected 503\"}\n"
			fmt.Fprintf(c, "HTTP/1.1 503 Service Unavailable\r\nContent-Type: application/json\r\nContent-Length: %d\r\n\r\n%s", len(msg), msg)
			continue
		}
		if up == nil {
			up, err = net.Dial("tcp", p.Upstream)
			if err != nil {
				return
			}
			upr = bufio.NewReader(up)
		}
		req.Body = io.NopCloser(bytes.NewReader(body))
		req.ContentLength = int64(len(body))
		if err := req.Write(up); err != nil {
			return
		}
		resp, err := http.ReadResponse(upr, req)
		if err != nil {
			return
		}
		switch d.Action {
		case ActCorrupt:
			resp.Body = readCloser{newCorruptReader(resp.Body, d.Seed), resp.Body}
		case ActTruncate:
			resp.Body = readCloser{newTruncateReader(resp.Body, d.Seed), resp.Body}
		}
		err = resp.Write(c)
		resp.Body.Close()
		if err != nil || resp.Close || req.Close {
			// A truncated body surfaces here: the write died mid-copy,
			// and the deferred closes cut the client off mid-body.
			return
		}
	}
}
