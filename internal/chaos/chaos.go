// Package chaos is the seeded, deterministic network-fault layer for
// the serving plane: where internal/faults corrupts the simulated
// machine's telemetry, this package corrupts the HTTP path between the
// gateway and its backends — latency spikes, connection resets,
// truncated and corrupted bodies, blackholes, and spurious 5xx — so
// the breaker/budget/hedging/digest machinery in internal/gateway can
// be exercised on purpose, reproducibly, in CI.
//
// It follows internal/faults' design rules:
//
//   - Deterministic: one seeded rng per Injector; a fixed (Config,
//     event sequence) reproduces the exact same fault schedule. Every
//     event draws once per enabled class regardless of which class
//     fires, so the rng stream depends only on the event count.
//   - Inert at zero: a class at probability zero never draws, and a
//     nil *Injector answers every event with "no fault".
//   - Observable: per-class injected counts are exported as Stats (and
//     by cmd/smpchaos as JSON), which is what the CI chaos gate
//     compares across runs to prove reproducibility.
//
// Each class can carry a budget (Max): once that many faults of the
// class have been injected, the class goes quiet. Budgets make the
// injected-fault counts of a run a constant (the budget) instead of a
// binomial sample, which is what lets the chaos CI smoke assert
// count-identical schedules across independent runs.
package chaos

import (
	"fmt"
	"math/rand"
	"sync"
	"time"
)

// Action is the fault class selected for one event.
type Action int

const (
	// ActNone passes the event through untouched.
	ActNone Action = iota
	// ActBlackhole swallows the request: no response, the connection
	// just hangs until the client gives up.
	ActBlackhole
	// ActReset tears the connection down abruptly mid-exchange.
	ActReset
	// ActErr5xx answers with a spurious 503 without consulting the
	// upstream.
	ActErr5xx
	// ActTruncate forwards a prefix of the response body, then cuts
	// the connection.
	ActTruncate
	// ActCorrupt flips bytes inside the response body, leaving the
	// framing (status, headers, lengths) intact — the case integrity
	// digests exist for.
	ActCorrupt
	// ActLatency delays the exchange by Decision.Delay, then proceeds
	// normally.
	ActLatency
)

// String names the action for stats and logs.
func (a Action) String() string {
	switch a {
	case ActNone:
		return "none"
	case ActBlackhole:
		return "blackhole"
	case ActReset:
		return "reset"
	case ActErr5xx:
		return "err5xx"
	case ActTruncate:
		return "truncate"
	case ActCorrupt:
		return "corrupt"
	case ActLatency:
		return "latency"
	}
	return "unknown"
}

// Class configures one fault class: a per-event probability and an
// optional budget (Max = 0 means unlimited).
type Class struct {
	Prob float64
	Max  uint64
}

// Config sets the per-class schedules. The zero value disables
// injection entirely.
type Config struct {
	// Seed seeds the injector's rng; the fault schedule is a pure
	// function of (Seed, classes, event order).
	Seed int64

	Blackhole Class
	Reset     Class
	Err5xx    Class
	Truncate  Class
	Corrupt   Class
	Latency   Class

	// LatencyDur is the fixed spike injected by the latency class
	// (0 = 200ms). A fixed spike keeps the schedule fully determined
	// by the draw sequence.
	LatencyDur time.Duration
}

// Enabled reports whether any class can fire.
func (c Config) Enabled() bool {
	for _, cl := range c.classes() {
		if cl.Prob > 0 {
			return true
		}
	}
	return false
}

// Validate rejects probabilities outside [0, 1].
func (c Config) Validate() error {
	names := classNames
	for i, cl := range c.classes() {
		if cl.Prob < 0 || cl.Prob > 1 {
			return fmt.Errorf("chaos: %s probability %v outside [0, 1]", names[i], cl.Prob)
		}
	}
	if c.LatencyDur < 0 {
		return fmt.Errorf("chaos: negative latency duration %v", c.LatencyDur)
	}
	return nil
}

// classes returns the classes in the fixed draw order. The order is
// part of the deterministic contract: blackhole and reset (the loudest
// faults) outrank body-level ones when several hit the same event.
func (c Config) classes() [6]Class {
	return [6]Class{c.Blackhole, c.Reset, c.Err5xx, c.Truncate, c.Corrupt, c.Latency}
}

var classNames = [6]string{"blackhole", "reset", "err5xx", "truncate", "corrupt", "latency"}

// Stats counts the faults an injector has actually delivered. Events
// counts every Decide call, injected or not.
type Stats struct {
	Events     uint64 `json:"events"`
	Blackholes uint64 `json:"blackholes"`
	Resets     uint64 `json:"resets"`
	Err5xx     uint64 `json:"err5xx"`
	Truncates  uint64 `json:"truncates"`
	Corrupts   uint64 `json:"corrupts"`
	Delays     uint64 `json:"delays"`
}

// Injected sums every fault class (Events excluded).
func (s Stats) Injected() uint64 {
	return s.Blackholes + s.Resets + s.Err5xx + s.Truncates + s.Corrupts + s.Delays
}

// counts exposes the per-class counters in class order for the budget
// check and the stats accounting.
func (s *Stats) counts() [6]*uint64 {
	return [6]*uint64{&s.Blackholes, &s.Resets, &s.Err5xx, &s.Truncates, &s.Corrupts, &s.Delays}
}

// Decision is the injector's verdict for one event.
type Decision struct {
	Action Action
	// Delay is the latency spike for ActLatency.
	Delay time.Duration
	// Seed parameterizes the body transform for ActTruncate (cut
	// offset) and ActCorrupt (flip phase), drawn from the injector's
	// rng so the transform is as reproducible as the schedule.
	Seed uint64
}

// Injector makes seeded per-event fault decisions. Safe for concurrent
// use; a nil *Injector is fully inert.
type Injector struct {
	mu    sync.Mutex
	cfg   Config
	rng   *rand.Rand
	stats Stats
}

// New builds an injector for cfg, or nil when no class can fire.
func New(cfg Config) (*Injector, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if !cfg.Enabled() {
		return nil, nil
	}
	if cfg.LatencyDur == 0 {
		cfg.LatencyDur = 200 * time.Millisecond
	}
	return &Injector{cfg: cfg, rng: rand.New(rand.NewSource(cfg.Seed))}, nil
}

// Stats returns the per-class injected counts so far (zero for nil).
func (in *Injector) Stats() Stats {
	if in == nil {
		return Stats{}
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.stats
}

// Decide draws the fault schedule for one event. Every enabled class
// draws exactly once per event — hits beyond the first are shadowed,
// not injected — so the rng stream advances identically no matter
// which faults fire, and the schedule is a pure function of the event
// sequence. A class whose budget is spent still draws (stream
// alignment) but can no longer be selected.
func (in *Injector) Decide() Decision {
	if in == nil {
		return Decision{}
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	in.stats.Events++
	classes := in.cfg.classes()
	counts := in.stats.counts()
	selected := -1
	for i, cl := range classes {
		if cl.Prob <= 0 {
			continue
		}
		hit := in.rng.Float64() < cl.Prob
		if !hit || selected >= 0 {
			continue
		}
		if cl.Max > 0 && *counts[i] >= cl.Max {
			continue // budget spent: class is quiet
		}
		selected = i
	}
	if selected < 0 {
		return Decision{}
	}
	*counts[selected]++
	d := Decision{Action: Action(selected + 1)} // class order matches Action order after ActNone
	switch d.Action {
	case ActLatency:
		d.Delay = in.cfg.LatencyDur
	case ActTruncate, ActCorrupt:
		d.Seed = in.rng.Uint64()
	}
	return d
}
