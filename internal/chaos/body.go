package chaos

import (
	"errors"
	"io"
)

// Body transforms: the readers that implement ActCorrupt and
// ActTruncate. Both leave the HTTP framing intact (they wrap only the
// response body stream), so the result is a transport-valid response
// carrying wrong bytes — exactly the failure class the integrity
// digests exist to catch.

// corruptWindow bounds how deep into a body corruption reaches, so a
// corrupted multi-megabyte sweep stream is damaged near the front (and
// fails fast) instead of shredded end to end.
const corruptWindow = 4096

// corruptBlock is the corruption stride: one byte is flipped per block
// inside the window, at a seed-derived in-block phase.
const corruptBlock = 64

// ErrInjectedCut is the error a truncating reader returns at the cut
// point, and the generic injected connection-failure error.
var ErrInjectedCut = errors.New("chaos: injected connection cut")

// corruptReader flips one byte per corruptBlock within the first
// corruptWindow bytes of the stream. The flip (XOR 0x20) keeps bytes
// printable-ish, so the result stays a plausible—but wrong—payload
// rather than obviously torn garbage.
type corruptReader struct {
	r     io.Reader
	phase int64 // in-block offset of the flipped byte
	off   int64 // absolute stream offset
}

func newCorruptReader(r io.Reader, seed uint64) *corruptReader {
	return &corruptReader{r: r, phase: int64(seed % corruptBlock)}
}

func (c *corruptReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	for i := 0; i < n; i++ {
		abs := c.off + int64(i)
		if abs >= corruptWindow {
			break
		}
		if abs%corruptBlock == c.phase {
			p[i] ^= 0x20
		}
	}
	c.off += int64(n)
	return n, err
}

// truncateReader passes through n bytes, then fails with
// ErrInjectedCut — the body ends mid-flight, like a peer that died
// while sending.
type truncateReader struct {
	r io.Reader
	n int64
}

// truncateAt derives the cut offset from the decision seed: somewhere
// in the first kilobyte, past the typical first flush so the client
// has committed to reading the body.
func truncateAt(seed uint64) int64 {
	return int64(64 + seed%960)
}

func newTruncateReader(r io.Reader, seed uint64) *truncateReader {
	return &truncateReader{r: r, n: truncateAt(seed)}
}

func (t *truncateReader) Read(p []byte) (int, error) {
	if t.n <= 0 {
		return 0, ErrInjectedCut
	}
	if int64(len(p)) > t.n {
		p = p[:t.n]
	}
	n, err := t.r.Read(p)
	t.n -= int64(n)
	if err == io.EOF {
		// The body ended before the cut point; nothing to truncate.
		return n, err
	}
	if t.n <= 0 && err == nil {
		err = ErrInjectedCut
	}
	return n, err
}
