package chaos

import (
	"bytes"
	"context"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"busaware/internal/faults"
)

// testBody is long enough that the corrupt window is guaranteed to
// touch it.
var testBody = bytes.Repeat([]byte(`{"quantum":12345}`), 20)

func newOrigin(t *testing.T) (*httptest.Server, *atomic.Int64) {
	t.Helper()
	var hits atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		w.Header().Set("Content-Type", "application/json")
		w.Write(testBody)
	}))
	t.Cleanup(srv.Close)
	return srv, &hits
}

func chaosClient(t *testing.T, cfg Config, spare map[string]bool, sleep faults.Sleeper) *http.Client {
	t.Helper()
	in, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return &http.Client{Transport: &Transport{Inj: in, Spare: spare, Sleep: sleep}}
}

func TestTransportTransparentWhenInert(t *testing.T) {
	srv, _ := newOrigin(t)
	client := chaosClient(t, Config{}, nil, nil)
	resp, err := client.Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	b, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !bytes.Equal(b, testBody) {
		t.Fatal("inert transport altered the body")
	}
}

func TestTransportReset(t *testing.T) {
	srv, _ := newOrigin(t)
	client := chaosClient(t, Config{Seed: 1, Reset: Class{Prob: 1}}, nil, nil)
	if _, err := client.Get(srv.URL); err == nil {
		t.Fatal("reset must surface as a transport error")
	}
}

func TestTransportErr5xxSkipsUpstream(t *testing.T) {
	srv, hits := newOrigin(t)
	client := chaosClient(t, Config{Seed: 1, Err5xx: Class{Prob: 1}}, nil, nil)
	resp, err := client.Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status %d, want 503", resp.StatusCode)
	}
	if hits.Load() != 0 {
		t.Fatal("spurious 503 must not consult the upstream")
	}
}

func TestTransportCorruptKeepsFramingBreaksBytes(t *testing.T) {
	srv, _ := newOrigin(t)
	client := chaosClient(t, Config{Seed: 1, Corrupt: Class{Prob: 1}}, nil, nil)
	resp, err := client.Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	b, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatalf("corrupted body must still read cleanly, got %v", err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d, want 200 (framing intact)", resp.StatusCode)
	}
	if len(b) != len(testBody) {
		t.Fatalf("corruption changed length: %d vs %d", len(b), len(testBody))
	}
	if bytes.Equal(b, testBody) {
		t.Fatal("corruption left the body identical")
	}
}

func TestTransportTruncate(t *testing.T) {
	srv, _ := newOrigin(t)
	client := chaosClient(t, Config{Seed: 1, Truncate: Class{Prob: 1}}, nil, nil)
	resp, err := client.Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	b, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err == nil && len(b) == len(testBody) {
		t.Fatal("truncated body read to completion")
	}
}

func TestTransportBlackholeRespectsContext(t *testing.T) {
	srv, hits := newOrigin(t)
	client := chaosClient(t, Config{Seed: 1, Blackhole: Class{Prob: 1}}, nil, nil)
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	req, _ := http.NewRequestWithContext(ctx, http.MethodGet, srv.URL, nil)
	start := time.Now()
	if _, err := client.Do(req); err == nil {
		t.Fatal("blackholed request must fail")
	}
	if time.Since(start) < 50*time.Millisecond {
		t.Fatal("blackhole returned before the context expired")
	}
	if hits.Load() != 0 {
		t.Fatal("blackholed request reached the upstream")
	}
}

func TestTransportLatencyUsesSleeper(t *testing.T) {
	srv, _ := newOrigin(t)
	var slept time.Duration
	sleep := faults.Sleeper(func(d time.Duration) { slept += d })
	client := chaosClient(t, Config{Seed: 1, Latency: Class{Prob: 1}, LatencyDur: 300 * time.Millisecond}, nil, sleep)
	resp, err := client.Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if slept != 300*time.Millisecond {
		t.Fatalf("slept %v, want the configured 300ms spike", slept)
	}
}

func TestTransportSparesControlPlane(t *testing.T) {
	srv, hits := newOrigin(t)
	client := chaosClient(t, Config{Seed: 1, Reset: Class{Prob: 1}},
		map[string]bool{"/healthz": true}, nil)
	resp, err := client.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatalf("spared path must pass through, got %v", err)
	}
	resp.Body.Close()
	if hits.Load() != 1 {
		t.Fatal("spared request never reached the upstream")
	}
	if s, _ := transportInjector(client); s.Events != 0 {
		t.Fatalf("spared request consumed a schedule event: %+v", s)
	}
}

// transportInjector digs the stats out of a chaosClient.
func transportInjector(c *http.Client) (Stats, bool) {
	tr, ok := c.Transport.(*Transport)
	if !ok {
		return Stats{}, false
	}
	return tr.Inj.Stats(), true
}

func TestTransportErrorsAreNotDialErrors(t *testing.T) {
	// The gateway insta-ejects backends only on dial failures; injected
	// resets model mid-stream death and must not look like one.
	srv, _ := newOrigin(t)
	client := chaosClient(t, Config{Seed: 1, Reset: Class{Prob: 1}}, nil, nil)
	_, err := client.Get(srv.URL)
	if err == nil {
		t.Fatal("want injected reset error")
	}
	if strings.Contains(err.Error(), "connection refused") {
		t.Fatalf("injected reset masquerades as a dial failure: %v", err)
	}
}
