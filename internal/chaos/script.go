package chaos

import (
	"fmt"
	"strconv"
	"strings"
	"time"
)

// ParseScript parses the compact fault-schedule grammar used by
// cmd/smpchaos and the CI chaos gate:
//
//	class=prob[:dur][*max][,class=prob...]
//
// where class is one of blackhole, reset, err5xx, truncate, corrupt,
// latency; prob is the per-event probability; dur (latency only) is
// the spike size as a Go duration; and *max caps how many faults of
// the class the run may inject. Example:
//
//	reset=0.04*24,corrupt=0.04*24,latency=0.008:800ms*24,err5xx=0.02*8
//
// An empty script yields a disabled Config (inert at zero).
func ParseScript(seed int64, script string) (Config, error) {
	cfg := Config{Seed: seed}
	script = strings.TrimSpace(script)
	if script == "" {
		return cfg, nil
	}
	for _, part := range strings.Split(script, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		name, spec, ok := strings.Cut(part, "=")
		if !ok {
			return cfg, fmt.Errorf("chaos: clause %q is not class=prob", part)
		}
		name = strings.TrimSpace(name)
		cl := Class{}
		var dur time.Duration
		// Split off *max first, then :dur, then the probability.
		spec, maxPart, hasMax := cutLast(spec, '*')
		probPart, durPart, hasDur := strings.Cut(spec, ":")
		p, err := strconv.ParseFloat(strings.TrimSpace(probPart), 64)
		if err != nil {
			return cfg, fmt.Errorf("chaos: clause %q: bad probability: %v", part, err)
		}
		cl.Prob = p
		if hasDur {
			d, err := time.ParseDuration(strings.TrimSpace(durPart))
			if err != nil {
				return cfg, fmt.Errorf("chaos: clause %q: bad duration: %v", part, err)
			}
			if name != "latency" {
				return cfg, fmt.Errorf("chaos: clause %q: only latency takes a duration", part)
			}
			dur = d
		}
		if hasMax {
			m, err := strconv.ParseUint(strings.TrimSpace(maxPart), 10, 64)
			if err != nil {
				return cfg, fmt.Errorf("chaos: clause %q: bad budget: %v", part, err)
			}
			cl.Max = m
		}
		switch name {
		case "blackhole":
			cfg.Blackhole = cl
		case "reset":
			cfg.Reset = cl
		case "err5xx":
			cfg.Err5xx = cl
		case "truncate":
			cfg.Truncate = cl
		case "corrupt":
			cfg.Corrupt = cl
		case "latency":
			cfg.Latency = cl
			if dur > 0 {
				cfg.LatencyDur = dur
			}
		default:
			return cfg, fmt.Errorf("chaos: unknown fault class %q", name)
		}
	}
	if err := cfg.Validate(); err != nil {
		return cfg, err
	}
	return cfg, nil
}

// cutLast splits s at the last occurrence of sep.
func cutLast(s string, sep byte) (before, after string, found bool) {
	if i := strings.LastIndexByte(s, sep); i >= 0 {
		return s[:i], s[i+1:], true
	}
	return s, "", false
}
