package chaos

import (
	"bytes"
	"fmt"
	"io"
	"net/http"

	"busaware/internal/faults"
)

// Transport wraps an http.RoundTripper with injected network faults —
// the in-process way to put chaos between the gateway and a backend
// (tests use it; deployments interpose the cmd/smpchaos TCP proxy
// instead). A nil Injector makes the wrapper a transparent pass-through.
type Transport struct {
	// Base performs the real round trips (nil = http.DefaultTransport).
	Base http.RoundTripper
	// Inj supplies the fault schedule; nil is inert.
	Inj *Injector
	// Sleep substitutes the latency-spike clock for tests.
	Sleep faults.Sleeper
	// Spare exempts request paths from injection (the control plane:
	// health probes must see the true backend state, and sparing them
	// also keeps probe cadence out of the deterministic event stream).
	Spare map[string]bool
}

// RoundTrip implements http.RoundTripper.
func (t *Transport) RoundTrip(req *http.Request) (*http.Response, error) {
	base := t.Base
	if base == nil {
		base = http.DefaultTransport
	}
	if t.Inj == nil || t.Spare[req.URL.Path] {
		return base.RoundTrip(req)
	}
	d := t.Inj.Decide()
	switch d.Action {
	case ActLatency:
		t.Sleep.Sleep(d.Delay)
	case ActReset:
		// Fail the exchange the way a torn TCP stream would: an
		// opaque connection error after the request was sent.
		return nil, fmt.Errorf("%s -> %s: %w", req.Method, req.URL.Host, ErrInjectedCut)
	case ActBlackhole:
		// No response, ever. Park until the caller's context gives up,
		// like a peer that accepted the connection and went silent.
		<-req.Context().Done()
		return nil, fmt.Errorf("%s -> %s: blackholed: %w", req.Method, req.URL.Host, req.Context().Err())
	case ActErr5xx:
		body := []byte("{\"error\":\"chaos: injected 503\"}\n")
		return &http.Response{
			StatusCode:    http.StatusServiceUnavailable,
			Status:        "503 Service Unavailable",
			Proto:         "HTTP/1.1",
			ProtoMajor:    1,
			ProtoMinor:    1,
			Header:        http.Header{"Content-Type": []string{"application/json"}},
			Body:          io.NopCloser(bytes.NewReader(body)),
			ContentLength: int64(len(body)),
			Request:       req,
		}, nil
	}
	resp, err := base.RoundTrip(req)
	if err != nil {
		return nil, err
	}
	switch d.Action {
	case ActCorrupt:
		resp.Body = readCloser{newCorruptReader(resp.Body, d.Seed), resp.Body}
	case ActTruncate:
		resp.Body = readCloser{newTruncateReader(resp.Body, d.Seed), resp.Body}
	}
	return resp, nil
}

// readCloser pairs a transforming reader with the original body's
// Close so connection reuse semantics survive the wrap.
type readCloser struct {
	io.Reader
	io.Closer
}
