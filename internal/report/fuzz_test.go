package report

import (
	"strings"
	"testing"
)

// FuzzTableCSV: CSV output must round-trip hostile cell content —
// every data row keeps the column count when parsed by a conforming
// reader (quotes balanced, newlines contained).
func FuzzTableCSV(f *testing.F) {
	f.Add("plain", "with,comma")
	f.Add(`quote"inside`, "new\nline")
	f.Add("", "   ")
	f.Fuzz(func(t *testing.T, a, b string) {
		tb := NewTable("T", "A", "B")
		tb.AddRow(a, b)
		csv := tb.CSV()
		// Quotes must balance.
		if strings.Count(csv, `"`)%2 != 0 {
			t.Fatalf("unbalanced quotes in %q", csv)
		}
		// The header is the first line and always unquoted.
		if !strings.HasPrefix(csv, "A,B\n") {
			t.Fatalf("header mangled: %q", csv)
		}
	})
}

// FuzzBarChart: arbitrary labels and values must render without
// panicking and include every label.
func FuzzBarChart(f *testing.F) {
	f.Add("CG", 68.0, "Radiosity", -4.0)
	f.Add("", 0.0, "x", 1e300)
	f.Fuzz(func(t *testing.T, l1 string, v1 float64, l2 string, v2 float64) {
		if v1 != v1 || v2 != v2 { // NaN breaks ordering, skip
			t.Skip()
		}
		b := NewBarChart("fuzz", "%")
		b.Add(l1, v1)
		b.Add(l2, v2)
		out := b.String()
		if !strings.Contains(out, "fuzz") {
			t.Fatal("title lost")
		}
	})
}
