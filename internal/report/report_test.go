package report

import (
	"strings"
	"testing"
)

func TestTableAlignment(t *testing.T) {
	tb := NewTable("T", "App", "Rate")
	tb.AddRow("CG", "23.31")
	tb.AddRow("Radiosity", "0.48")
	out := tb.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 { // title, header, sep, 2 rows
		t.Fatalf("lines = %d:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[0], "T") {
		t.Error("missing title")
	}
	// Columns align: "Rate" starts at the same offset everywhere.
	idx := strings.Index(lines[1], "Rate")
	for _, l := range lines[3:] {
		cell := strings.TrimLeft(l[idx:], " ")
		if cell != "23.31" && cell != "0.48" {
			t.Errorf("misaligned row: %q", l)
		}
	}
}

func TestTableRowPadding(t *testing.T) {
	tb := NewTable("", "A", "B")
	tb.AddRow("only-one")
	tb.AddRow("x", "y", "dropped")
	if tb.Rows() != 2 {
		t.Fatalf("rows = %d", tb.Rows())
	}
	out := tb.String()
	if strings.Contains(out, "dropped") {
		t.Error("extra cell not dropped")
	}
}

func TestAddRowf(t *testing.T) {
	tb := NewTable("", "A", "B", "C")
	tb.AddRowf("x", 3.14159, 42)
	out := tb.String()
	if !strings.Contains(out, "3.14") || strings.Contains(out, "3.14159") {
		t.Errorf("float formatting wrong: %s", out)
	}
	if !strings.Contains(out, "42") {
		t.Errorf("int formatting wrong: %s", out)
	}
}

func TestCSV(t *testing.T) {
	tb := NewTable("ignored", "name", "value")
	tb.AddRow("plain", "1")
	tb.AddRow("with,comma", `quote"inside`)
	csv := tb.CSV()
	want := "name,value\nplain,1\n\"with,comma\",\"quote\"\"inside\"\n"
	if csv != want {
		t.Errorf("CSV = %q, want %q", csv, want)
	}
}

func TestBarChartPositive(t *testing.T) {
	b := NewBarChart("chart", "%")
	b.Add("CG", 68)
	b.Add("Radiosity", 4)
	out := b.String()
	if !strings.Contains(out, "chart") {
		t.Error("missing title")
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("lines = %d", len(lines))
	}
	cgBars := strings.Count(lines[1], "#")
	radBars := strings.Count(lines[2], "#")
	if cgBars <= radBars {
		t.Errorf("bar lengths: CG %d vs Radiosity %d", cgBars, radBars)
	}
	if cgBars != 40 {
		t.Errorf("max bar should fill width: %d", cgBars)
	}
}

func TestBarChartNegative(t *testing.T) {
	b := NewBarChart("", "%")
	b.Add("up", 10)
	b.Add("down", -5)
	out := b.String()
	if !strings.Contains(out, "-5.00") {
		t.Errorf("negative value missing: %s", out)
	}
	// The negative bar appears before the axis separator.
	for _, l := range strings.Split(out, "\n") {
		if strings.HasPrefix(l, "down") {
			bar := strings.Index(l, "#")
			axis := strings.Index(l, "|")
			if bar == -1 || axis == -1 || bar > axis {
				t.Errorf("negative bar not left of axis: %q", l)
			}
		}
	}
}

func TestBarChartEmpty(t *testing.T) {
	b := NewBarChart("empty", "x")
	if out := b.String(); !strings.Contains(out, "empty") {
		t.Errorf("empty chart output: %q", out)
	}
}

func TestBarChartZeros(t *testing.T) {
	b := NewBarChart("", "x")
	b.Add("a", 0)
	out := b.String() // must not divide by zero
	if !strings.Contains(out, "0.00") {
		t.Errorf("zero row missing: %q", out)
	}
}
