// Package report renders experiment results as aligned text tables,
// CSV, and ASCII bar charts — the textual equivalents of the paper's
// figures, suitable for terminals and regression diffs.
package report

import (
	"fmt"
	"io"
	"math"
	"strings"
)

// Table is a simple column-aligned text table.
type Table struct {
	Title   string
	Columns []string
	rows    [][]string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, columns ...string) *Table {
	return &Table{Title: title, Columns: columns}
}

// AddRow appends a row; extra cells are dropped, missing ones padded.
func (t *Table) AddRow(cells ...string) {
	row := make([]string, len(t.Columns))
	for i := range row {
		if i < len(cells) {
			row[i] = cells[i]
		}
	}
	t.rows = append(t.rows, row)
}

// AddRowf appends a row of formatted values: each argument is
// formatted with %v unless it is a float64, which gets two decimals.
func (t *Table) AddRowf(cells ...interface{}) {
	row := make([]string, 0, len(cells))
	for _, c := range cells {
		switch v := c.(type) {
		case float64:
			row = append(row, fmt.Sprintf("%.2f", v))
		case string:
			row = append(row, v)
		default:
			row = append(row, fmt.Sprint(v))
		}
	}
	t.AddRow(row...)
}

// Rows returns the number of data rows.
func (t *Table) Rows() int { return len(t.rows) }

// WriteTo renders the table.
func (t *Table) WriteTo(w io.Writer) (int64, error) {
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.rows {
		for i, cell := range row {
			if len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var sb strings.Builder
	if t.Title != "" {
		sb.WriteString(t.Title)
		sb.WriteByte('\n')
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			sb.WriteString(cell)
			if i < len(cells)-1 {
				sb.WriteString(strings.Repeat(" ", widths[i]-len(cell)))
			}
		}
		sb.WriteByte('\n')
	}
	writeRow(t.Columns)
	sep := make([]string, len(t.Columns))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.rows {
		writeRow(row)
	}
	n, err := io.WriteString(w, sb.String())
	return int64(n), err
}

// String renders the table to a string.
func (t *Table) String() string {
	var sb strings.Builder
	t.WriteTo(&sb)
	return sb.String()
}

// CSV renders the table as comma-separated values with a header row.
// Cells containing commas or quotes are quoted.
func (t *Table) CSV() string {
	var sb strings.Builder
	writeCells := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				sb.WriteByte(',')
			}
			if strings.ContainsAny(c, ",\"\n") {
				sb.WriteByte('"')
				sb.WriteString(strings.ReplaceAll(c, "\"", "\"\""))
				sb.WriteByte('"')
			} else {
				sb.WriteString(c)
			}
		}
		sb.WriteByte('\n')
	}
	writeCells(t.Columns)
	for _, row := range t.rows {
		writeCells(row)
	}
	return sb.String()
}

// BarChart renders labelled horizontal bars, the ASCII analogue of the
// paper's figure panels. Negative values extend left of the axis.
type BarChart struct {
	Title string
	Unit  string
	// Width is the maximum bar width in characters (default 40).
	Width  int
	labels []string
	values []float64
}

// NewBarChart creates an empty chart.
func NewBarChart(title, unit string) *BarChart {
	return &BarChart{Title: title, Unit: unit, Width: 40}
}

// Add appends one bar.
func (b *BarChart) Add(label string, value float64) {
	b.labels = append(b.labels, label)
	b.values = append(b.values, value)
}

// String renders the chart.
func (b *BarChart) String() string {
	var sb strings.Builder
	if b.Title != "" {
		sb.WriteString(b.Title)
		sb.WriteByte('\n')
	}
	if len(b.values) == 0 {
		return sb.String()
	}
	maxAbs := 0.0
	labelW := 0
	for i, v := range b.values {
		if a := math.Abs(v); a > maxAbs {
			maxAbs = a
		}
		if len(b.labels[i]) > labelW {
			labelW = len(b.labels[i])
		}
	}
	if maxAbs == 0 {
		maxAbs = 1
	}
	width := b.Width
	if width <= 0 {
		width = 40
	}
	anyNeg := false
	for _, v := range b.values {
		if v < 0 {
			anyNeg = true
			break
		}
	}
	for i, v := range b.values {
		bar := int(math.Round(math.Abs(v) / maxAbs * float64(width)))
		pad := strings.Repeat(" ", labelW-len(b.labels[i]))
		if anyNeg {
			if v < 0 {
				sb.WriteString(fmt.Sprintf("%s%s %*s|%s %8.2f %s\n",
					b.labels[i], pad, width, strings.Repeat("#", bar), strings.Repeat(" ", width), v, b.Unit))
			} else {
				sb.WriteString(fmt.Sprintf("%s%s %*s|%-*s %8.2f %s\n",
					b.labels[i], pad, width, "", width, strings.Repeat("#", bar), v, b.Unit))
			}
		} else {
			sb.WriteString(fmt.Sprintf("%s%s %-*s %8.2f %s\n",
				b.labels[i], pad, width, strings.Repeat("#", bar), v, b.Unit))
		}
	}
	return sb.String()
}
