package runner

import (
	"errors"
	"fmt"
	"reflect"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"busaware/internal/sched"
	"busaware/internal/sim"
	"busaware/internal/units"
	"busaware/internal/workload"
)

func TestWorkersResolution(t *testing.T) {
	if got := Workers(3); got != 3 {
		t.Errorf("Workers(3) = %d", got)
	}
	if got := Workers(0); got != runtime.GOMAXPROCS(0) {
		t.Errorf("Workers(0) = %d, want GOMAXPROCS %d", got, runtime.GOMAXPROCS(0))
	}
	if got := Workers(-1); got != runtime.GOMAXPROCS(0) {
		t.Errorf("Workers(-1) = %d, want GOMAXPROCS %d", got, runtime.GOMAXPROCS(0))
	}
}

func TestRunEmpty(t *testing.T) {
	results, rep, err := Run(4, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 0 || len(rep.Cells) != 0 {
		t.Errorf("empty batch produced %d results, %d cell stats", len(results), len(rep.Cells))
	}
}

// TestRunBoundsWorkers checks the pool never runs more cells at once
// than the worker bound, while still achieving real concurrency.
func TestRunBoundsWorkers(t *testing.T) {
	const workers, n = 3, 12
	var cur, peak atomic.Int64
	// Rendezvous: the first `workers` cells wait for each other, so the
	// test proves the pool actually runs cells concurrently rather than
	// merely not exceeding the bound.
	var ready sync.WaitGroup
	ready.Add(workers)
	cells := make([]Cell, n)
	for i := range cells {
		i := i
		cells[i] = Cell{
			Label: fmt.Sprintf("stub%d", i),
			Run: func() (sim.Result, error) {
				c := cur.Add(1)
				for {
					p := peak.Load()
					if c <= p || peak.CompareAndSwap(p, c) {
						break
					}
				}
				if i < workers {
					ready.Done()
					ready.Wait()
				}
				time.Sleep(time.Millisecond)
				cur.Add(-1)
				return sim.Result{Quanta: i}, nil
			},
		}
	}
	results, rep, err := Run(workers, cells)
	if err != nil {
		t.Fatal(err)
	}
	if got := peak.Load(); got > workers {
		t.Errorf("observed %d concurrent cells, bound is %d", got, workers)
	}
	if got := peak.Load(); got < workers {
		t.Errorf("observed only %d concurrent cells, want the full pool of %d", got, workers)
	}
	if rep.PeakOccupancy > workers || rep.PeakOccupancy < 1 {
		t.Errorf("report peak occupancy = %d", rep.PeakOccupancy)
	}
	if rep.Workers != workers {
		t.Errorf("report workers = %d", rep.Workers)
	}
	// Submission-order aggregation regardless of completion order.
	for i, res := range results {
		if res.Quanta != i {
			t.Errorf("result %d carries Quanta %d, want %d (submission order violated)", i, res.Quanta, i)
		}
	}
}

// TestRunSubmissionOrder makes later-submitted cells finish first and
// checks aggregation still follows submission order.
func TestRunSubmissionOrder(t *testing.T) {
	const n = 6
	cells := make([]Cell, n)
	for i := range cells {
		i := i
		cells[i] = Cell{
			Label: fmt.Sprintf("stub%d", i),
			Run: func() (sim.Result, error) {
				// Earlier cells sleep longer, inverting completion order.
				time.Sleep(time.Duration(n-i) * 2 * time.Millisecond)
				return sim.Result{Quanta: i, EndTime: units.Time(i)}, nil
			},
		}
	}
	results, rep, err := Run(n, cells)
	if err != nil {
		t.Fatal(err)
	}
	for i, res := range results {
		if res.Quanta != i {
			t.Errorf("result %d = %d, want submission order", i, res.Quanta)
		}
		if rep.Cells[i].Label != fmt.Sprintf("stub%d", i) {
			t.Errorf("report cell %d = %s", i, rep.Cells[i].Label)
		}
	}
}

func TestRunErrorPropagation(t *testing.T) {
	boom := errors.New("boom")
	cells := []Cell{
		{Label: "ok0", Run: func() (sim.Result, error) { return sim.Result{Quanta: 10}, nil }},
		{Label: "bad1", Run: func() (sim.Result, error) { return sim.Result{}, boom }},
		{Label: "ok2", Run: func() (sim.Result, error) { return sim.Result{Quanta: 30}, nil }},
		{Label: "bad3", Run: func() (sim.Result, error) { return sim.Result{}, boom }},
	}
	results, rep, err := Run(2, cells)
	if err == nil {
		t.Fatal("want error")
	}
	if !errors.Is(err, boom) {
		t.Errorf("error %v does not wrap the cell failure", err)
	}
	if !strings.Contains(err.Error(), "bad1") {
		t.Errorf("error %q should name the first failing cell in submission order", err)
	}
	if rep.Failed() != 2 {
		t.Errorf("failed = %d, want 2", rep.Failed())
	}
	// Healthy cells still ran and reported.
	if results[0].Quanta != 10 || results[2].Quanta != 30 {
		t.Errorf("healthy results lost: %+v", results)
	}
	if rep.Cells[1].Err == nil || rep.Cells[3].Err == nil {
		t.Error("per-cell errors not preserved in report")
	}
}

// simCells builds a small real workload grid: a Linux baseline, both
// paper policies and a gang run over CG + antagonists. Fresh state on
// every call, as the runner requires.
func simCells() []Cell {
	cg, _ := workload.ByName("CG")
	build := func() []*workload.App {
		return []*workload.App{
			workload.NewApp(cg, "CG#1"),
			workload.NewApp(workload.BBMA(), "BBMA#1"),
			workload.NewApp(workload.NBBMA(), "nBBMA#1"),
		}
	}
	cfg := sim.Config{}
	ncpu := 4
	cap := units.Rate(29.5)
	return []Cell{
		{Label: "linux", Config: cfg, Scheduler: sched.NewLinux(ncpu, 1), Apps: build()},
		{Label: "lq", Config: cfg, Scheduler: sched.NewLatestQuantum(ncpu, cap), Apps: build()},
		{Label: "qw", Config: cfg, Scheduler: sched.NewQuantaWindow(ncpu, cap), Apps: build()},
		{Label: "gang", Config: cfg, Scheduler: sched.NewGang(ncpu), Apps: build()},
	}
}

// TestRunDeterministicAcrossWorkerCounts is the core guarantee: the
// parallel results are byte-for-byte the serial results.
func TestRunDeterministicAcrossWorkerCounts(t *testing.T) {
	serial, serialRep, err := Run(1, simCells())
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range []int{2, 4, 8} {
		parallel, rep, err := Run(w, simCells())
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(serial, parallel) {
			t.Errorf("results differ between 1 and %d workers", w)
		}
		if rep.TotalQuanta() != serialRep.TotalQuanta() {
			t.Errorf("simulated quanta differ: %d vs %d", rep.TotalQuanta(), serialRep.TotalQuanta())
		}
	}
}

func TestReportAggregates(t *testing.T) {
	cells := []Cell{
		{Label: "a", Run: func() (sim.Result, error) {
			return sim.Result{Quanta: 10, EndTime: 100, MeanBusUtilization: 0.5}, nil
		}},
		{Label: "b", Run: func() (sim.Result, error) {
			return sim.Result{Quanta: 30, EndTime: 300, MeanBusUtilization: 0.9}, nil
		}},
	}
	_, rep, err := Run(1, cells)
	if err != nil {
		t.Fatal(err)
	}
	if got := rep.TotalQuanta(); got != 40 {
		t.Errorf("total quanta = %d", got)
	}
	if got := rep.TotalSimTime(); got != 400 {
		t.Errorf("total sim time = %v", got)
	}
	// Quanta-weighted utilization: (10*0.5 + 30*0.9) / 40 = 0.8.
	if got := rep.MeanBusUtilization(); got < 0.799 || got > 0.801 {
		t.Errorf("weighted utilization = %v, want 0.8", got)
	}
	if rep.CellWall() <= 0 || rep.Wall <= 0 {
		t.Errorf("wall times not recorded: %+v", rep)
	}
	if rep.Failed() != 0 || rep.FirstErr() != nil {
		t.Errorf("spurious failure: %+v", rep)
	}
}

func TestMetricsTotals(t *testing.T) {
	m := NewMetrics()
	mk := func(quanta int, util float64, fail bool) []Cell {
		return []Cell{{Label: "c", Run: func() (sim.Result, error) {
			res := sim.Result{Quanta: quanta, EndTime: units.Time(quanta) * 10, MeanBusUtilization: util}
			if fail {
				return res, errors.New("boom")
			}
			return res, nil
		}}}
	}
	_, r1, err := Run(1, mk(10, 0.5, false))
	if err != nil {
		t.Fatal(err)
	}
	m.Observe("one", r1)
	_, r2, err := Run(2, mk(30, 0.9, false))
	if err != nil {
		t.Fatal(err)
	}
	m.Observe("two", r2)
	_, r3, _ := Run(1, mk(0, 0, true))
	m.Observe("three", r3)

	batches := m.Batches()
	if len(batches) != 3 || batches[0].Name != "one" || batches[2].Name != "three" {
		t.Fatalf("batches = %+v", batches)
	}
	tot := m.Total()
	if tot.Batches != 3 || tot.Cells != 3 || tot.Failed != 1 {
		t.Errorf("counts: %+v", tot)
	}
	if tot.Quanta != 40 {
		t.Errorf("quanta = %d", tot.Quanta)
	}
	if tot.SimTime != 400 {
		t.Errorf("sim time = %v", tot.SimTime)
	}
	if tot.BusUtilization < 0.799 || tot.BusUtilization > 0.801 {
		t.Errorf("weighted utilization = %v, want 0.8", tot.BusUtilization)
	}
	if tot.Wall < r1.Wall+r2.Wall {
		t.Errorf("total wall %v below sum of batch walls", tot.Wall)
	}
	if tot.CellWall != r1.CellWall()+r2.CellWall()+r3.CellWall() {
		t.Errorf("cell wall %v does not add up", tot.CellWall)
	}
	if tot.Speedup() <= 0 {
		t.Errorf("speedup = %v", tot.Speedup())
	}
}
