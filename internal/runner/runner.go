// Package runner fans independent simulation runs out across a
// bounded worker pool while keeping results byte-for-byte
// deterministic. The paper's evaluation is a large grid of independent
// cells (every figure bar is its own sim.Run), so the sweep
// parallelizes trivially: each cell carries its own scheduler, its own
// freshly built applications and its own config, and aggregation
// always happens in submission order, never completion order.
//
// The runner also attaches run-level observability to every batch: a
// Report records per-cell wall time, simulated quanta, bus-utilization
// summaries and worker occupancy, and a Metrics accumulator merges the
// Reports of a whole figure sweep for cmd/figures to print and tests
// to assert on.
package runner

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"busaware/internal/sched"
	"busaware/internal/sim"
	"busaware/internal/units"
	"busaware/internal/workload"
)

// Cell is one independent simulation run. Cells must not share mutable
// state: sim.Run mutates both the scheduler and the applications, so
// every cell carries fresh instances (exactly how the serial
// experiment code already built its runs).
type Cell struct {
	// Label identifies the cell in metrics and error messages, e.g.
	// "fig2/LQ/CG/2Apps+4BBMA".
	Label string
	// Config is the cell's simulation configuration.
	Config sim.Config
	// Scheduler runs the cell's workload; owned by the cell. May be nil
	// when NewScheduler is set, in which case the cell builds its
	// scheduler lazily at run time.
	Scheduler sched.Scheduler
	// NewScheduler rebuilds an identical fresh scheduler. It supplies
	// the Scheduler when that field is nil, and is forwarded to
	// sim.Config.SchedulerFactory so the shadow engine can run its
	// second core against an independent but equivalent scheduler.
	NewScheduler func() (sched.Scheduler, error)
	// Apps is the cell's workload; owned by the cell. The slice is
	// retained so callers can inspect mutated state (e.g. antagonist
	// counters via sim.MicrobenchRates) after the batch completes.
	Apps []*workload.App
	// Run, when non-nil, replaces the default sim.Run invocation —
	// used by tests and by callers with non-simulation work to fan out.
	Run func() (sim.Result, error)
}

func (c Cell) run() (sim.Result, error) {
	if c.Run != nil {
		return c.Run()
	}
	cfg := c.Config
	s := c.Scheduler
	if c.NewScheduler != nil {
		if s == nil {
			var err error
			if s, err = c.NewScheduler(); err != nil {
				return sim.Result{}, err
			}
		}
		if cfg.SchedulerFactory == nil {
			cfg.SchedulerFactory = c.NewScheduler
		}
	}
	return sim.Run(cfg, s, c.Apps)
}

// CellStat is the run-level record of one executed cell.
type CellStat struct {
	Label string
	// Wall is the host wall-clock time the cell took.
	Wall time.Duration
	// Quanta is the number of scheduler quanta the cell simulated.
	Quanta int
	// SimTime is the cell's simulated end time.
	SimTime units.Time
	// BusUtilization is the cell's mean bus utilization over quanta.
	BusUtilization float64
	// Err is the cell's failure, if any.
	Err error
}

// Report is the run-level observability of one batch of cells.
type Report struct {
	// Workers is the pool bound the batch ran under.
	Workers int
	// PeakOccupancy is the maximum number of workers observed busy at
	// the same time.
	PeakOccupancy int
	// Wall is the batch's host wall-clock time.
	Wall time.Duration
	// Cells holds per-cell stats, in submission order.
	Cells []CellStat
}

// CellWall sums the per-cell wall times — the serial-equivalent cost
// of the batch.
func (r Report) CellWall() time.Duration {
	var sum time.Duration
	for _, c := range r.Cells {
		sum += c.Wall
	}
	return sum
}

// TotalQuanta sums the simulated quanta across cells.
func (r Report) TotalQuanta() int {
	var sum int
	for _, c := range r.Cells {
		sum += c.Quanta
	}
	return sum
}

// TotalSimTime sums the simulated time across cells.
func (r Report) TotalSimTime() units.Time {
	var sum units.Time
	for _, c := range r.Cells {
		sum += c.SimTime
	}
	return sum
}

// MeanBusUtilization is the quanta-weighted mean bus utilization over
// the batch.
func (r Report) MeanBusUtilization() float64 {
	var quanta float64
	var weighted float64
	for _, c := range r.Cells {
		quanta += float64(c.Quanta)
		weighted += c.BusUtilization * float64(c.Quanta)
	}
	if quanta == 0 {
		return 0
	}
	return weighted / quanta
}

// Failed counts cells that returned an error.
func (r Report) Failed() int {
	n := 0
	for _, c := range r.Cells {
		if c.Err != nil {
			n++
		}
	}
	return n
}

// FirstErr returns the first error in submission order (not completion
// order), so error reporting is as deterministic as the results.
func (r Report) FirstErr() error {
	for _, c := range r.Cells {
		if c.Err != nil {
			return c.Err
		}
	}
	return nil
}

// Speedup is the ratio of serial-equivalent cost to actual wall time —
// the effective parallelism the batch achieved.
func (r Report) Speedup() float64 {
	if r.Wall <= 0 {
		return 0
	}
	return float64(r.CellWall()) / float64(r.Wall)
}

// Workers resolves a worker bound: n if positive, else GOMAXPROCS.
func Workers(n int) int {
	if n > 0 {
		return n
	}
	return runtime.GOMAXPROCS(0)
}

// Run executes the cells across at most workers goroutines
// (workers <= 0 selects GOMAXPROCS) and returns the results in
// submission order. Every cell is attempted even if an earlier one
// fails; the returned error is the first failure in submission order,
// with the per-cell errors preserved in the Report. Results are
// identical at any worker count: cells are independent and the
// simulator is deterministic, so execution order cannot leak into the
// output.
func Run(workers int, cells []Cell) ([]sim.Result, Report, error) {
	w := Workers(workers)
	if w > len(cells) {
		w = len(cells)
	}
	if w < 1 {
		w = 1
	}
	rep := Report{Workers: w, Cells: make([]CellStat, len(cells))}
	results := make([]sim.Result, len(cells))
	start := time.Now()
	var next atomic.Int64
	var busy, peak atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < w; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				idx := int(next.Add(1)) - 1
				if idx >= len(cells) {
					return
				}
				cur := busy.Add(1)
				for {
					p := peak.Load()
					if cur <= p || peak.CompareAndSwap(p, cur) {
						break
					}
				}
				c := cells[idx]
				t0 := time.Now()
				res, err := c.run()
				if err != nil {
					err = fmt.Errorf("runner: cell %d (%s): %w", idx, c.Label, err)
				}
				results[idx] = res
				rep.Cells[idx] = CellStat{
					Label:          c.Label,
					Wall:           time.Since(t0),
					Quanta:         res.Quanta,
					SimTime:        res.EndTime,
					BusUtilization: res.MeanBusUtilization,
					Err:            err,
				}
				busy.Add(-1)
			}
		}()
	}
	wg.Wait()
	rep.Wall = time.Since(start)
	rep.PeakOccupancy = int(peak.Load())
	return results, rep, rep.FirstErr()
}
