package runner

import (
	"sync"
	"time"

	"busaware/internal/units"
)

// Batch is one named Report observed by a Metrics accumulator.
type Batch struct {
	Name   string
	Report Report
}

// Metrics accumulates the Reports of a whole experiment sweep — one
// Observe call per batch — so cmd/figures can print a single
// run-level summary at the end and tests can assert the totals add
// up. Safe for concurrent use.
type Metrics struct {
	mu      sync.Mutex
	batches []Batch
}

// NewMetrics returns an empty accumulator.
func NewMetrics() *Metrics { return &Metrics{} }

// Observe records one batch report under a name.
func (m *Metrics) Observe(name string, r Report) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.batches = append(m.batches, Batch{Name: name, Report: r})
}

// Batches returns the observed batches in observation order.
func (m *Metrics) Batches() []Batch {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]Batch, len(m.batches))
	copy(out, m.batches)
	return out
}

// Total is the aggregate of every observed batch.
type Total struct {
	Batches int
	Cells   int
	Failed  int
	// Wall sums the batch wall times (batches run sequentially).
	Wall time.Duration
	// CellWall sums the per-cell wall times — what the sweep would
	// have cost serially.
	CellWall time.Duration
	// Quanta and SimTime total the simulated work.
	Quanta  int
	SimTime units.Time
	// BusUtilization is the quanta-weighted mean across all cells.
	BusUtilization float64
	// Workers and PeakOccupancy are maxima over batches.
	Workers       int
	PeakOccupancy int
}

// Speedup is the effective parallelism of the whole sweep.
func (t Total) Speedup() float64 {
	if t.Wall <= 0 {
		return 0
	}
	return float64(t.CellWall) / float64(t.Wall)
}

// Total aggregates the observed batches.
func (m *Metrics) Total() Total {
	m.mu.Lock()
	defer m.mu.Unlock()
	var t Total
	var weighted float64
	t.Batches = len(m.batches)
	for _, b := range m.batches {
		r := b.Report
		t.Cells += len(r.Cells)
		t.Failed += r.Failed()
		t.Wall += r.Wall
		t.CellWall += r.CellWall()
		t.Quanta += r.TotalQuanta()
		t.SimTime += r.TotalSimTime()
		weighted += r.MeanBusUtilization() * float64(r.TotalQuanta())
		if r.Workers > t.Workers {
			t.Workers = r.Workers
		}
		if r.PeakOccupancy > t.PeakOccupancy {
			t.PeakOccupancy = r.PeakOccupancy
		}
	}
	if t.Quanta > 0 {
		t.BusUtilization = weighted / float64(t.Quanta)
	}
	return t
}
