package runner

import (
	"errors"
	"sync"
	"testing"
	"time"

	"busaware/internal/sim"
)

// stubCell builds a cell whose Run hook returns a canned result after
// optionally blocking on gate.
func stubCell(label string, quanta int, gate <-chan struct{}) Cell {
	return Cell{
		Label: label,
		Run: func() (sim.Result, error) {
			if gate != nil {
				<-gate
			}
			return sim.Result{Scheduler: label, Quanta: quanta}, nil
		},
	}
}

func TestPoolDeliversResults(t *testing.T) {
	p := NewPool(2, 4)
	defer p.Close()
	var chans []<-chan PoolResult
	for i := 0; i < 4; i++ {
		out, ok := p.TrySubmit(stubCell("cell", i+1, nil))
		if !ok {
			t.Fatalf("TrySubmit %d refused with free queue", i)
		}
		chans = append(chans, out)
	}
	for i, out := range chans {
		r := <-out
		if r.Err != nil {
			t.Fatalf("cell %d: %v", i, r.Err)
		}
		if r.Result.Quanta != i+1 {
			t.Errorf("cell %d: quanta = %d, want %d", i, r.Result.Quanta, i+1)
		}
		if r.Stat.Label != "cell" || r.Stat.Quanta != i+1 {
			t.Errorf("cell %d: stat = %+v", i, r.Stat)
		}
	}
	if got := p.Completed(); got != 4 {
		t.Errorf("Completed = %d, want 4", got)
	}
}

func TestPoolMatchesDirectRun(t *testing.T) {
	// A real simulation cell through the pool must be byte-identical to
	// running it directly — workers add no state of their own.
	build := func() Cell { return simCells()[2] } // Quanta Window over CG + antagonists
	direct, err := build().run()
	if err != nil {
		t.Fatal(err)
	}
	p := NewPool(2, 2)
	defer p.Close()
	out, ok := p.TrySubmit(build())
	if !ok {
		t.Fatal("TrySubmit refused")
	}
	r := <-out
	if r.Err != nil {
		t.Fatal(r.Err)
	}
	if r.Result.Quanta != direct.Quanta || r.Result.EndTime != direct.EndTime ||
		r.Result.MeanBusUtilization != direct.MeanBusUtilization {
		t.Errorf("pool result diverged from direct run:\npool:   %+v\ndirect: %+v", r.Result, direct)
	}
}

func TestPoolBackpressure(t *testing.T) {
	gate := make(chan struct{})
	p := NewPool(1, 1)
	defer p.Close()
	defer close(gate)

	// First cell occupies the single worker...
	if _, ok := p.TrySubmit(stubCell("running", 1, gate)); !ok {
		t.Fatal("first TrySubmit refused")
	}
	// ...wait for the worker to pick it up so the queue slot frees.
	waitFor(t, func() bool { return p.Busy() == 1 })
	// Second cell fills the queue slot.
	if _, ok := p.TrySubmit(stubCell("queued", 1, gate)); !ok {
		t.Fatal("second TrySubmit refused with empty queue")
	}
	if got := p.QueueDepth(); got != 1 {
		t.Fatalf("QueueDepth = %d, want 1", got)
	}
	// Third must be shed: worker busy, queue full.
	if _, ok := p.TrySubmit(stubCell("shed", 1, nil)); ok {
		t.Error("TrySubmit admitted past the queue bound")
	}
}

func TestPoolCloseDrainsAdmitted(t *testing.T) {
	p := NewPool(1, 8)
	var chans []<-chan PoolResult
	for i := 0; i < 8; i++ {
		out, ok := p.TrySubmit(stubCell("drain", i+1, nil))
		if !ok {
			t.Fatalf("TrySubmit %d refused", i)
		}
		chans = append(chans, out)
	}
	p.Close()
	for i, out := range chans {
		r := <-out
		if r.Err != nil || r.Result.Quanta != i+1 {
			t.Errorf("drained cell %d: quanta = %d, err = %v", i, r.Result.Quanta, r.Err)
		}
	}
	// After Close every submission is refused, never a panic.
	if _, ok := p.TrySubmit(stubCell("late", 1, nil)); ok {
		t.Error("TrySubmit admitted after Close")
	}
	p.Close() // idempotent
}

func TestPoolCellError(t *testing.T) {
	p := NewPool(1, 1)
	defer p.Close()
	want := errors.New("boom")
	out, ok := p.TrySubmit(Cell{Label: "bad", Run: func() (sim.Result, error) { return sim.Result{}, want }})
	if !ok {
		t.Fatal("TrySubmit refused")
	}
	r := <-out
	if r.Err == nil || !errors.Is(r.Err, want) {
		t.Errorf("Err = %v, want wrapped %v", r.Err, want)
	}
	if r.Stat.Err == nil {
		t.Error("Stat.Err not recorded")
	}
}

func TestPoolConcurrentSubmitClose(t *testing.T) {
	// Hammer TrySubmit from many goroutines while Close runs: the
	// closed-channel guard must never panic, and every admitted cell
	// must still deliver its result (race detector covers the rest).
	p := NewPool(2, 4)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				if out, ok := p.TrySubmit(stubCell("storm", 1, nil)); ok {
					<-out
				}
			}
		}()
	}
	time.Sleep(time.Millisecond)
	p.Close()
	wg.Wait()
}

func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition not reached in 5s")
		}
		time.Sleep(time.Millisecond)
	}
}
