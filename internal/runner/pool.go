package runner

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"busaware/internal/sim"
)

// PoolResult is the outcome of one cell executed by a Pool, delivered
// on the channel TrySubmit returns.
type PoolResult struct {
	Result sim.Result
	Stat   CellStat
	Err    error
}

// Pool is the long-lived variant of Run: a fixed set of workers
// draining a bounded submission queue, for callers (the smpsimd
// daemon) whose cells arrive over time instead of as one batch. The
// queue bound is the admission-control point — TrySubmit refuses
// instead of blocking when it is full, so an overloaded server can
// shed load (HTTP 429) rather than queue without bound.
//
// Determinism carries over from Run unchanged: cells are independent
// and the simulator is deterministic, so a cell's result does not
// depend on which worker runs it or on what else is in flight.
type Pool struct {
	jobs     chan poolJob
	wg       sync.WaitGroup
	workers  int
	queueCap int

	busy      atomic.Int64
	completed atomic.Int64

	// mu makes Close's channel close mutually exclusive with
	// TrySubmit's channel send; submissions only hold the read side, so
	// they do not serialize against each other.
	mu     sync.RWMutex
	closed bool
}

type poolJob struct {
	cell Cell
	out  chan<- PoolResult
}

// NewPool starts workers goroutines (<= 0 selects GOMAXPROCS) over a
// submission queue of depth queue (<= 0 selects 2x workers). Close
// must be called to release the workers.
func NewPool(workers, queue int) *Pool {
	w := Workers(workers)
	if queue <= 0 {
		queue = 2 * w
	}
	p := &Pool{
		jobs:     make(chan poolJob, queue),
		workers:  w,
		queueCap: queue,
	}
	for g := 0; g < w; g++ {
		p.wg.Add(1)
		go func() {
			defer p.wg.Done()
			for j := range p.jobs {
				p.busy.Add(1)
				t0 := time.Now()
				res, err := j.cell.run()
				if err != nil {
					err = fmt.Errorf("runner: cell %s: %w", j.cell.Label, err)
				}
				stat := CellStat{
					Label:          j.cell.Label,
					Wall:           time.Since(t0),
					Quanta:         res.Quanta,
					SimTime:        res.EndTime,
					BusUtilization: res.MeanBusUtilization,
					Err:            err,
				}
				p.busy.Add(-1)
				p.completed.Add(1)
				// The result channel is buffered (TrySubmit allocates it
				// with capacity 1), so delivery never blocks the worker
				// even when the submitter gave up on a deadline.
				j.out <- PoolResult{Result: res, Stat: stat, Err: err}
			}
		}()
	}
	return p
}

// TrySubmit offers a cell to the pool without blocking. It returns the
// channel the result will be delivered on, or ok == false when the
// queue is full (the caller should shed the request). After Close,
// TrySubmit always refuses.
func (p *Pool) TrySubmit(c Cell) (<-chan PoolResult, bool) {
	p.mu.RLock()
	defer p.mu.RUnlock()
	if p.closed {
		return nil, false
	}
	out := make(chan PoolResult, 1)
	select {
	case p.jobs <- poolJob{cell: c, out: out}:
		return out, true
	default:
		return nil, false
	}
}

// Workers returns the pool's worker count.
func (p *Pool) Workers() int { return p.workers }

// QueueCap returns the submission queue's bound.
func (p *Pool) QueueCap() int { return p.queueCap }

// QueueDepth returns the number of cells admitted but not yet picked
// up by a worker.
func (p *Pool) QueueDepth() int { return len(p.jobs) }

// Busy returns the number of workers currently executing a cell.
func (p *Pool) Busy() int { return int(p.busy.Load()) }

// Completed returns the number of cells the pool has finished.
func (p *Pool) Completed() int64 { return p.completed.Load() }

// Close stops admissions, drains cells already admitted, and waits for
// the workers to exit. Results of drained cells are still delivered on
// their channels. Close is idempotent.
func (p *Pool) Close() {
	p.mu.Lock()
	if !p.closed {
		p.closed = true
		close(p.jobs)
	}
	p.mu.Unlock()
	p.wg.Wait()
}
