package perfctr

import (
	"testing"

	"busaware/internal/faults"
	"busaware/internal/units"
)

// scriptedHook drops polls per a fixed script and scales rates.
type scriptedHook struct {
	drops []bool
	calls int
	scale float64
}

func (h *scriptedHook) DropCounterSample() bool {
	if h.calls >= len(h.drops) {
		return false
	}
	d := h.drops[h.calls]
	h.calls++
	return d
}

func (h *scriptedHook) PerturbCounterRate(v float64) float64 {
	if h.scale == 0 {
		return v
	}
	return v * h.scale
}

// A dropped poll keeps the baseline, so the reading goes stale and the
// next successful poll averages over the whole gap — nothing is lost.
func TestMonitorDroppedPollGoesStale(t *testing.T) {
	var c Counters
	m := NewMonitor(&c)
	m.Poll(0) // baseline
	hook := &scriptedHook{drops: []bool{true, false}}
	m.SetFaultHook(hook)

	c.Add(EventBusTransAny, 1000)
	if _, ok := m.Poll(100); ok {
		t.Fatal("dropped poll reported ok")
	}
	c.Add(EventBusTransAny, 1000)
	rates, ok := m.Poll(200)
	if !ok {
		t.Fatal("recovery poll failed")
	}
	// 2000 transactions over the full 200us gap, not 1000 over 100us.
	if got := rates[EventBusTransAny]; got != 10 {
		t.Errorf("recovered rate = %v trans/us, want 10 (gap-spanning)", got)
	}
}

func TestMonitorPerturbedRates(t *testing.T) {
	var c Counters
	m := NewMonitor(&c)
	m.Poll(0)
	m.SetFaultHook(&scriptedHook{scale: 2})
	c.Add(EventBusTransAny, 500)
	rates, ok := m.Poll(100)
	if !ok {
		t.Fatal("poll failed")
	}
	if got := rates[EventBusTransAny]; got != 10 {
		t.Errorf("perturbed rate = %v, want 5*2", got)
	}
}

// The faults.Injector plugs straight into the monitor, and a nil hook
// (or detached hook) restores stock behaviour.
func TestMonitorInjectorIntegration(t *testing.T) {
	var hook FaultHook = faults.New(faults.Config{Seed: 1, CounterLoss: 1})
	var c Counters
	m := NewMonitor(&c)
	m.Poll(0)
	m.SetFaultHook(hook)
	c.Add(EventCycles, 10)
	if _, ok := m.Poll(units.Time(50)); ok {
		t.Error("CounterLoss=1 injector let a poll through")
	}
	m.SetFaultHook(nil)
	rates, ok := m.Poll(units.Time(100))
	if !ok || rates[EventCycles] != 0.1 {
		t.Errorf("detached monitor poll = (%v, %v), want (0.1, true)", rates[EventCycles], ok)
	}
}
