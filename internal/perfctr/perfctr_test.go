package perfctr

import (
	"sync"
	"testing"
	"testing/quick"

	"busaware/internal/units"
)

func TestAddRead(t *testing.T) {
	var c Counters
	c.Add(EventBusTransAny, 100)
	c.Add(EventBusTransAny, 23)
	if got := c.Read(EventBusTransAny); got != 123 {
		t.Errorf("read = %d, want 123", got)
	}
	if got := c.Read(EventCycles); got != 0 {
		t.Errorf("untouched counter = %d, want 0", got)
	}
}

func TestOutOfRangeEventIgnored(t *testing.T) {
	var c Counters
	c.Add(Event(-1), 5)
	c.Add(Event(99), 5)
	if got := c.Read(Event(-1)); got != 0 {
		t.Errorf("read invalid = %d", got)
	}
	if got := c.Read(Event(99)); got != 0 {
		t.Errorf("read invalid = %d", got)
	}
	for ev := Event(0); ev < Event(NumEvents); ev++ {
		if c.Read(ev) != 0 {
			t.Errorf("event %v polluted by invalid add", ev)
		}
	}
}

func TestHardwareWrap(t *testing.T) {
	var c Counters
	c.Add(EventCycles, counterMask) // max value
	c.Add(EventCycles, 5)           // wraps to 4
	if got := c.Read(EventCycles); got != 4 {
		t.Errorf("wrapped value = %d, want 4", got)
	}
}

func TestDeltaWithWrap(t *testing.T) {
	earlier := Sample{Values: [NumEvents]uint64{0: counterMask - 9}}
	later := Sample{Values: [NumEvents]uint64{0: 5}}
	d := Delta(earlier, later)
	if d[0] != 15 {
		t.Errorf("wrap-corrected delta = %d, want 15", d[0])
	}
}

func TestDeltaNoWrap(t *testing.T) {
	earlier := Sample{Values: [NumEvents]uint64{1: 100}}
	later := Sample{Values: [NumEvents]uint64{1: 350}}
	d := Delta(earlier, later)
	if d[1] != 250 {
		t.Errorf("delta = %d, want 250", d[1])
	}
}

func TestMonitorRates(t *testing.T) {
	var c Counters
	m := NewMonitor(&c)
	if _, ok := m.Poll(0); ok {
		t.Error("first poll should not produce rates")
	}
	// 23.6 trans/usec for 100ms, the BBMA rate.
	c.Add(EventBusTransAny, 2_360_000)
	rates, ok := m.Poll(100 * units.Millisecond)
	if !ok {
		t.Fatal("second poll should produce rates")
	}
	if got := BusRate(rates); got < 23.59 || got > 23.61 {
		t.Errorf("bus rate = %v, want 23.6", got)
	}
}

func TestMonitorZeroElapsed(t *testing.T) {
	var c Counters
	m := NewMonitor(&c)
	m.Poll(50)
	if _, ok := m.Poll(50); ok {
		t.Error("zero-elapsed poll should not produce rates")
	}
	if _, ok := m.Poll(40); ok {
		t.Error("backwards poll should not produce rates")
	}
}

func TestMonitorSurvivesWrap(t *testing.T) {
	var c Counters
	c.Add(EventBusTransAny, counterMask-999)
	m := NewMonitor(&c)
	m.Poll(0)
	c.Add(EventBusTransAny, 2000) // wraps
	rates, ok := m.Poll(1000)
	if !ok {
		t.Fatal("poll failed")
	}
	if got := rates[EventBusTransAny]; got != 2.0 {
		t.Errorf("rate across wrap = %v, want 2.0", got)
	}
}

func TestSnapshotAndReset(t *testing.T) {
	var c Counters
	c.Add(EventL2Refs, 7)
	c.Add(EventL2Misses, 3)
	s := c.Snapshot()
	if s[EventL2Refs] != 7 || s[EventL2Misses] != 3 {
		t.Errorf("snapshot = %v", s)
	}
	c.Reset()
	if c.Read(EventL2Refs) != 0 {
		t.Error("reset did not clear counters")
	}
}

func TestEventNames(t *testing.T) {
	names := map[Event]string{
		EventCycles:      "CYCLES",
		EventBusTransAny: "BUS_TRAN_ANY",
		EventL2Refs:      "L2_REFS",
		EventL2Misses:    "L2_MISSES",
	}
	for ev, want := range names {
		if ev.String() != want {
			t.Errorf("%d.String() = %q, want %q", ev, ev.String(), want)
		}
	}
	if Event(42).String() != "EVENT(42)" {
		t.Errorf("unknown event name = %q", Event(42).String())
	}
}

func TestConcurrentAddPoll(t *testing.T) {
	var c Counters
	m := NewMonitor(&c)
	m.Poll(0)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 10000; i++ {
				c.Add(EventBusTransAny, 1)
			}
		}()
	}
	done := make(chan struct{})
	go func() {
		for i := 1; i <= 100; i++ {
			m.Poll(units.Time(i))
		}
		close(done)
	}()
	wg.Wait()
	<-done
	// After everything quiesces the total must be exact.
	if got := c.Read(EventBusTransAny); got != 40000 {
		t.Errorf("final counter = %d, want 40000", got)
	}
}

// Property: Delta inverts Add modulo the hardware width for any pair
// of accumulations.
func TestDeltaAddInverseProperty(t *testing.T) {
	f := func(start, inc uint64) bool {
		start &= counterMask
		inc &= counterMask >> 1 // at most one wrap
		var c Counters
		c.Add(EventCycles, start)
		before := Sample{Values: c.Snapshot()}
		c.Add(EventCycles, inc)
		after := Sample{Values: c.Snapshot()}
		return Delta(before, after)[EventCycles] == inc
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
