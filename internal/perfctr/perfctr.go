// Package perfctr virtualizes the hardware performance-monitoring
// counters the paper's CPU manager reads through Mikael Pettersson's
// Linux perfctr driver.
//
// The simulator increments each thread's counters as it models
// execution; the scheduling layer reads them exactly the way the
// user-level CPU manager did on real hardware — by polling per-thread
// virtual counters twice per scheduling quantum, accumulating the
// per-thread values into per-application totals, and deriving
// transaction *rates* from successive samples.
//
// Hardware realism kept on purpose: counters are W bits wide (40 on
// the Pentium 4 family) and wrap; Monitor corrects a single wrap
// between polls, as the real run-time library had to.
package perfctr

import (
	"fmt"
	"sync"

	"busaware/internal/units"
)

// Event identifies one hardware event.
type Event int

// The events used by the reproduction. EventBusTransAny mirrors the
// Pentium 4 IOQ/FSB "bus transactions, any" event the paper sampled.
const (
	EventCycles Event = iota
	EventBusTransAny
	EventL2Refs
	EventL2Misses
	numEvents
)

// NumEvents is the number of defined events.
const NumEvents = int(numEvents)

func (e Event) String() string {
	switch e {
	case EventCycles:
		return "CYCLES"
	case EventBusTransAny:
		return "BUS_TRAN_ANY"
	case EventL2Refs:
		return "L2_REFS"
	case EventL2Misses:
		return "L2_MISSES"
	default:
		return fmt.Sprintf("EVENT(%d)", int(e))
	}
}

// CounterBits is the hardware counter width; Pentium 4 PMCs are 40 bits.
const CounterBits = 40

// counterMask keeps values within the hardware width.
const counterMask = (uint64(1) << CounterBits) - 1

// Counters is one thread's virtual counter file. It is safe for
// concurrent use: the simulator writes while the CPU manager polls.
type Counters struct {
	mu     sync.Mutex
	values [numEvents]uint64
}

// Add increments event ev by n, wrapping at the hardware width.
func (c *Counters) Add(ev Event, n uint64) {
	if ev < 0 || ev >= numEvents {
		return
	}
	c.mu.Lock()
	c.values[ev] = (c.values[ev] + n) & counterMask
	c.mu.Unlock()
}

// Read returns the current value of event ev.
func (c *Counters) Read(ev Event) uint64 {
	if ev < 0 || ev >= numEvents {
		return 0
	}
	c.mu.Lock()
	v := c.values[ev]
	c.mu.Unlock()
	return v
}

// Snapshot returns all counter values atomically.
func (c *Counters) Snapshot() [NumEvents]uint64 {
	c.mu.Lock()
	v := c.values
	c.mu.Unlock()
	return v
}

// Reset zeroes all counters.
func (c *Counters) Reset() {
	c.mu.Lock()
	c.values = [numEvents]uint64{}
	c.mu.Unlock()
}

// Sample is a point-in-time reading of one counter set.
type Sample struct {
	At     units.Time
	Values [NumEvents]uint64
}

// Delta returns the event-wise difference later - earlier, correcting
// one hardware wrap per event.
func Delta(earlier, later Sample) [NumEvents]uint64 {
	var d [NumEvents]uint64
	for i := range d {
		a, b := earlier.Values[i], later.Values[i]
		if b >= a {
			d[i] = b - a
		} else {
			d[i] = (counterMask - a) + b + 1
		}
	}
	return d
}

// FaultHook lets a fault-injection layer perturb counter sampling.
// DropCounterSample fails one poll outright (the driver read was
// lost); PerturbCounterRate adds measurement noise to each derived
// event rate. internal/faults.Injector implements it; a nil hook (or
// a hook that never fires) leaves the monitor's behaviour unchanged.
type FaultHook interface {
	DropCounterSample() bool
	PerturbCounterRate(float64) float64
}

// Monitor derives rates from successive polls of one Counters set,
// the way the CPU manager's run-time library sampled each thread.
type Monitor struct {
	ctr  *Counters
	last Sample
	init bool
	hook FaultHook
}

// NewMonitor starts monitoring ctr.
func NewMonitor(ctr *Counters) *Monitor {
	return &Monitor{ctr: ctr}
}

// SetFaultHook attaches a fault-injection hook to subsequent polls.
// Pass nil to detach.
func (m *Monitor) SetFaultHook(h FaultHook) { m.hook = h }

// Poll reads the counters at simulated time now and returns per-event
// rates (events per usec) since the previous poll. The first poll
// establishes the baseline and returns zero rates with ok == false.
// A poll with no elapsed time also returns ok == false.
//
// A poll dropped by the fault hook also returns ok == false and keeps
// the previous baseline, so the reading goes stale rather than lost:
// the next successful poll spans the gap and averages the rates over
// the whole elapsed interval, exactly as a missed perfctr read would
// on real hardware.
func (m *Monitor) Poll(now units.Time) (rates [NumEvents]float64, ok bool) {
	if m.hook != nil && m.hook.DropCounterSample() {
		return rates, false
	}
	s := Sample{At: now, Values: m.ctr.Snapshot()}
	if !m.init {
		m.last = s
		m.init = true
		return rates, false
	}
	elapsed := now - m.last.At
	if elapsed <= 0 {
		return rates, false
	}
	d := Delta(m.last, s)
	for i := range d {
		rates[i] = float64(d[i]) / float64(elapsed)
		if m.hook != nil {
			rates[i] = m.hook.PerturbCounterRate(rates[i])
		}
	}
	m.last = s
	return rates, true
}

// Resync replaces the monitor's baseline with the counters' current
// values at simulated time now — exactly the state a successful Poll
// would have left behind — without deriving rates. The event-driven
// engine leaps over stretches during which every per-quantum Poll
// result is known in advance (constant counter deltas); after batching
// the counter increments it resyncs each monitor so the next real Poll
// spans one quantum, not the whole stretch.
func (m *Monitor) Resync(now units.Time) {
	m.last = Sample{At: now, Values: m.ctr.Snapshot()}
	m.init = true
}

// SynthesizeRates computes the per-event rates a fault-free Poll would
// return for the given counter deltas over elapsed time — the batched
// sample synthesis used when replaying identical quanta. It mirrors
// Poll's arithmetic exactly (the same division, in the same order), so
// a synthesized rate is bitwise equal to the polled one for the same
// delta. ok is false when no time elapsed, as in Poll.
func SynthesizeRates(deltas [NumEvents]uint64, elapsed units.Time) (rates [NumEvents]float64, ok bool) {
	if elapsed <= 0 {
		return rates, false
	}
	for i := range deltas {
		rates[i] = float64(deltas[i]) / float64(elapsed)
	}
	return rates, true
}

// BusRate is a convenience accessor for the rate array.
func BusRate(rates [NumEvents]float64) units.Rate {
	return units.Rate(rates[EventBusTransAny])
}
