package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, eps float64) bool {
	return math.Abs(a-b) <= eps
}

func TestMean(t *testing.T) {
	tests := []struct {
		name string
		in   []float64
		want float64
	}{
		{"empty", nil, 0},
		{"single", []float64{4}, 4},
		{"pair", []float64{2, 4}, 3},
		{"negative", []float64{-1, 1}, 0},
		{"paper-rates", []float64{0.48, 23.31}, 11.895},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			if got := Mean(tc.in); !almostEqual(got, tc.want, 1e-9) {
				t.Errorf("Mean(%v) = %v, want %v", tc.in, got, tc.want)
			}
		})
	}
}

func TestStdDev(t *testing.T) {
	if got := StdDev([]float64{5}); got != 0 {
		t.Errorf("StdDev of single sample = %v, want 0", got)
	}
	// Known value: sample stddev of {2,4,4,4,5,5,7,9} is ~2.138.
	got := StdDev([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if !almostEqual(got, 2.13809, 1e-4) {
		t.Errorf("StdDev = %v, want ~2.138", got)
	}
}

func TestGeoMean(t *testing.T) {
	got, err := GeoMean([]float64{1, 100})
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(got, 10, 1e-9) {
		t.Errorf("GeoMean(1,100) = %v, want 10", got)
	}
	if _, err := GeoMean([]float64{1, 0}); err == nil {
		t.Error("GeoMean with zero sample should error")
	}
	if _, err := GeoMean(nil); err != ErrEmpty {
		t.Errorf("GeoMean(nil) err = %v, want ErrEmpty", err)
	}
}

func TestMinMax(t *testing.T) {
	xs := []float64{3, -2, 7, 0}
	mn, err := Min(xs)
	if err != nil || mn != -2 {
		t.Errorf("Min = %v, %v; want -2, nil", mn, err)
	}
	mx, err := Max(xs)
	if err != nil || mx != 7 {
		t.Errorf("Max = %v, %v; want 7, nil", mx, err)
	}
	if _, err := Min(nil); err != ErrEmpty {
		t.Error("Min(nil) should return ErrEmpty")
	}
	if _, err := Max(nil); err != ErrEmpty {
		t.Error("Max(nil) should return ErrEmpty")
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	tests := []struct {
		p, want float64
	}{
		{0, 1}, {50, 3}, {100, 5}, {25, 2}, {75, 4}, {10, 1.4},
	}
	for _, tc := range tests {
		got, err := Percentile(xs, tc.p)
		if err != nil {
			t.Fatalf("Percentile(%v): %v", tc.p, err)
		}
		if !almostEqual(got, tc.want, 1e-9) {
			t.Errorf("Percentile(%v) = %v, want %v", tc.p, got, tc.want)
		}
	}
	if _, err := Percentile(xs, 101); err == nil {
		t.Error("Percentile(101) should error")
	}
	if _, err := Percentile(nil, 50); err != ErrEmpty {
		t.Error("Percentile(nil) should return ErrEmpty")
	}
}

func TestPercentileDoesNotMutate(t *testing.T) {
	xs := []float64{5, 1, 3}
	if _, err := Percentile(xs, 50); err != nil {
		t.Fatal(err)
	}
	if xs[0] != 5 || xs[1] != 1 || xs[2] != 3 {
		t.Errorf("Percentile mutated its input: %v", xs)
	}
}

func TestSummarize(t *testing.T) {
	s, err := Summarize([]float64{1, 2, 3, 4})
	if err != nil {
		t.Fatal(err)
	}
	if s.N != 4 || s.Min != 1 || s.Max != 4 || !almostEqual(s.Mean, 2.5, 1e-9) || !almostEqual(s.Median, 2.5, 1e-9) {
		t.Errorf("Summarize = %+v", s)
	}
	if _, err := Summarize(nil); err != ErrEmpty {
		t.Error("Summarize(nil) should return ErrEmpty")
	}
}

// Property: the mean always lies between min and max.
func TestMeanBoundedProperty(t *testing.T) {
	f := func(xs []float64) bool {
		clean := xs[:0]
		for _, x := range xs {
			if !math.IsNaN(x) && !math.IsInf(x, 0) && math.Abs(x) < 1e12 {
				clean = append(clean, x)
			}
		}
		if len(clean) == 0 {
			return true
		}
		m := Mean(clean)
		mn, _ := Min(clean)
		mx, _ := Max(clean)
		return m >= mn-1e-6 && m <= mx+1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
