package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestWindowBasics(t *testing.T) {
	w := NewWindow(3)
	if w.Cap() != 3 || w.Len() != 0 {
		t.Fatalf("new window cap/len = %d/%d", w.Cap(), w.Len())
	}
	if w.Mean() != 0 || w.Latest() != 0 {
		t.Error("empty window should report zero mean and latest")
	}
	w.Push(1)
	w.Push(2)
	if w.Len() != 2 || !almostEqual(w.Mean(), 1.5, 1e-12) || w.Latest() != 2 {
		t.Errorf("after two pushes: len=%d mean=%v latest=%v", w.Len(), w.Mean(), w.Latest())
	}
	w.Push(3)
	w.Push(4) // evicts 1
	if w.Len() != 3 || !almostEqual(w.Mean(), 3, 1e-12) || w.Latest() != 4 {
		t.Errorf("after eviction: len=%d mean=%v latest=%v", w.Len(), w.Mean(), w.Latest())
	}
	got := w.Samples()
	want := []float64{2, 3, 4}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("Samples() = %v, want %v", got, want)
			break
		}
	}
}

func TestWindowCapacityOnePolicyEquivalence(t *testing.T) {
	// A window of capacity 1 must behave as "latest quantum": mean ==
	// latest sample at all times. The scheduler relies on this to share
	// one policy implementation.
	w := NewWindow(1)
	for i, x := range []float64{3, 1, 4, 1, 5, 9, 2, 6} {
		w.Push(x)
		if w.Mean() != x || w.Latest() != x {
			t.Fatalf("push %d: mean=%v latest=%v want both %v", i, w.Mean(), w.Latest(), x)
		}
	}
}

func TestWindowReset(t *testing.T) {
	w := NewWindow(4)
	for i := 0; i < 10; i++ {
		w.Push(float64(i))
	}
	w.Reset()
	if w.Len() != 0 || w.Mean() != 0 {
		t.Errorf("after reset: len=%d mean=%v", w.Len(), w.Mean())
	}
	w.Push(7)
	if w.Mean() != 7 || w.Len() != 1 {
		t.Errorf("push after reset: len=%d mean=%v", w.Len(), w.Mean())
	}
}

func TestWindowPanicsOnZeroCapacity(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewWindow(0) should panic")
		}
	}()
	NewWindow(0)
}

// Property: window mean equals the exact mean of the last min(n, cap)
// pushed values, for random push sequences.
func TestWindowMeanMatchesNaive(t *testing.T) {
	f := func(capSeed uint8, raw []float64) bool {
		capacity := int(capSeed%16) + 1
		w := NewWindow(capacity)
		var hist []float64
		for _, x := range raw {
			if math.IsNaN(x) || math.IsInf(x, 0) || math.Abs(x) > 1e9 {
				continue
			}
			w.Push(x)
			hist = append(hist, x)
			lo := len(hist) - capacity
			if lo < 0 {
				lo = 0
			}
			want := Mean(hist[lo:])
			if !almostEqual(w.Mean(), want, 1e-6*(1+math.Abs(want))) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// The paper picked W=5 because it limits the average distance between an
// irregular transaction pattern and its moving average. Sanity-check the
// smoothing direction: a longer window never increases responsiveness to
// a step change (its post-step mean is never closer to the new level than
// a shorter window's).
func TestWindowSmoothingMonotonic(t *testing.T) {
	step := make([]float64, 20)
	for i := range step {
		if i >= 10 {
			step[i] = 10
		}
	}
	lags := make([]float64, 0, 3)
	for _, cap := range []int{1, 5, 10} {
		w := NewWindow(cap)
		for _, x := range step {
			w.Push(x)
		}
		lags = append(lags, 10-w.Mean()) // distance from new level
	}
	if !(lags[0] <= lags[1] && lags[1] <= lags[2]) {
		t.Errorf("smoothing lag not monotonic in window length: %v", lags)
	}
}

func TestEWMA(t *testing.T) {
	e := &EWMA{Alpha: 0.5}
	if e.Initialized() {
		t.Error("zero EWMA should be uninitialized")
	}
	e.Push(10)
	if e.Value() != 10 {
		t.Errorf("first sample should seed value, got %v", e.Value())
	}
	e.Push(0)
	if !almostEqual(e.Value(), 5, 1e-12) {
		t.Errorf("EWMA after 10,0 with alpha .5 = %v, want 5", e.Value())
	}
	e.Reset()
	if e.Initialized() || e.Value() != 0 {
		t.Error("reset did not clear EWMA")
	}
}

// Property: EWMA output is always within the range of inputs seen so far.
func TestEWMABoundedProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 100; trial++ {
		e := &EWMA{Alpha: rng.Float64()*0.99 + 0.01}
		lo, hi := math.Inf(1), math.Inf(-1)
		for i := 0; i < 50; i++ {
			x := rng.NormFloat64() * 100
			if x < lo {
				lo = x
			}
			if x > hi {
				hi = x
			}
			e.Push(x)
			if e.Value() < lo-1e-9 || e.Value() > hi+1e-9 {
				t.Fatalf("EWMA %v escaped input range [%v,%v]", e.Value(), lo, hi)
			}
		}
	}
}

// The memoized Mean must be bit-identical to the unmemoized exact
// computation under arbitrary Push/Mean interleavings, in both
// regimes: the small-window exact resummation (n <= 64) and the large
// -window incremental sum. Reset must invalidate the memo.
func TestWindowMeanMemoBitIdentical(t *testing.T) {
	// unmemoized replicates the documented semantics from first
	// principles: oldest-first resummation for small windows, the
	// incremental sum (tracked by an independent shadow) otherwise.
	type shadow struct {
		hist []float64
		sum  float64
	}
	unmemoized := func(s *shadow, capacity int) float64 {
		n := len(s.hist)
		if n > capacity {
			n = capacity
		}
		if n == 0 {
			return 0
		}
		if n <= 64 {
			var sum float64
			for _, x := range s.hist[len(s.hist)-n:] {
				sum += x
			}
			return sum / float64(n)
		}
		return s.sum / float64(n)
	}
	push := func(s *shadow, capacity int, x float64) {
		if len(s.hist) >= capacity {
			s.sum -= s.hist[len(s.hist)-capacity]
		}
		s.sum += x
		s.hist = append(s.hist, x)
	}

	rng := rand.New(rand.NewSource(99))
	for _, capacity := range []int{1, 5, 64, 100} {
		w := NewWindow(capacity)
		sh := &shadow{}
		for i := 0; i < 3*capacity+10; i++ {
			x := rng.NormFloat64() * 1e3
			w.Push(x)
			push(sh, capacity, x)
			// Two probes per push: Mean must be pure and stable
			// between pushes.
			want := unmemoized(sh, capacity)
			if got := w.Mean(); got != want {
				t.Fatalf("cap %d push %d: Mean() = %x, unmemoized = %x", capacity, i, got, want)
			}
			if got := w.Mean(); got != want {
				t.Fatalf("cap %d push %d: second Mean() probe diverged", capacity, i)
			}
		}
		w.Reset()
		if w.Mean() != 0 {
			t.Fatalf("cap %d: Mean after Reset = %v, want 0", capacity, w.Mean())
		}
		w.Push(42)
		if w.Mean() != 42 {
			t.Fatalf("cap %d: Mean after Reset+Push = %v, want 42", capacity, w.Mean())
		}
	}
}

// Mean between pushes must be O(1) and allocation-free — the scheduler
// probes it many times per quantum.
func TestWindowMeanZeroAllocs(t *testing.T) {
	w := NewWindow(5)
	for i := 0; i < 7; i++ {
		w.Push(float64(i))
	}
	var sink float64
	if avg := testing.AllocsPerRun(100, func() { sink = w.Mean() }); avg != 0 {
		t.Errorf("Mean allocates %v times per call, want 0", avg)
	}
	_ = sink
}
