// Package stats provides the small statistics toolkit used by the
// schedulers (moving-window and exponentially weighted averages over
// bus-transaction samples) and by the experiment harness (summary
// statistics over repeated runs).
package stats

import (
	"errors"
	"math"
	"sort"
)

// ErrEmpty is returned by summary functions that need at least one sample.
var ErrEmpty = errors.New("stats: empty sample set")

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// StdDev returns the sample standard deviation of xs (n-1 denominator).
// It returns 0 for fewer than two samples.
func StdDev(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	var ss float64
	for _, x := range xs {
		d := x - m
		ss += d * d
	}
	return math.Sqrt(ss / float64(len(xs)-1))
}

// GeoMean returns the geometric mean of xs. All samples must be
// positive; non-positive samples yield an error.
func GeoMean(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	var s float64
	for _, x := range xs {
		if x <= 0 {
			return 0, errors.New("stats: non-positive sample in geometric mean")
		}
		s += math.Log(x)
	}
	return math.Exp(s / float64(len(xs))), nil
}

// Min returns the smallest element of xs.
func Min(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m, nil
}

// Max returns the largest element of xs.
func Max(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m, nil
}

// Percentile returns the p-th percentile (0 <= p <= 100) of xs using
// linear interpolation between closest ranks. xs is not modified.
func Percentile(xs []float64, p float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	if p < 0 || p > 100 {
		return 0, errors.New("stats: percentile out of range")
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	if len(s) == 1 {
		return s[0], nil
	}
	rank := p / 100 * float64(len(s)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return s[lo], nil
	}
	frac := rank - float64(lo)
	return s[lo]*(1-frac) + s[hi]*frac, nil
}

// Summary bundles the usual descriptive statistics of a sample set.
type Summary struct {
	N      int
	Mean   float64
	StdDev float64
	Min    float64
	Max    float64
	Median float64
}

// Summarize computes a Summary of xs.
func Summarize(xs []float64) (Summary, error) {
	if len(xs) == 0 {
		return Summary{}, ErrEmpty
	}
	mn, _ := Min(xs)
	mx, _ := Max(xs)
	med, _ := Percentile(xs, 50)
	return Summary{
		N:      len(xs),
		Mean:   Mean(xs),
		StdDev: StdDev(xs),
		Min:    mn,
		Max:    mx,
		Median: med,
	}, nil
}
