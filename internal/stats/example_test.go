package stats_test

import (
	"fmt"

	"busaware/internal/stats"
)

// A window of capacity 1 degenerates to "latest sample" — which is why
// the Latest Quantum and Quanta Window policies share one
// implementation.
func ExampleWindow() {
	w := stats.NewWindow(3)
	for _, x := range []float64{2, 4, 6, 8} {
		w.Push(x)
	}
	fmt.Println(w.Mean())   // mean of the last 3: (4+6+8)/3
	fmt.Println(w.Latest()) // most recent sample
	// Output:
	// 6
	// 8
}
