package stats

// Window is a fixed-capacity moving window over float64 samples with an
// O(1) running average. It is the data structure behind the paper's
// "Quanta Window" policy: the scheduler keeps the last W bus-transaction
// samples per application and averages them to smooth out bursts.
//
// A Window with capacity 1 degenerates to "latest sample", which is
// exactly the "Latest Quantum" policy; the schedulers exploit that to
// share one implementation.
//
// The zero value is not usable; create Windows with NewWindow.
type Window struct {
	buf  []float64
	head int // index of the slot the next Push writes
	n    int // number of valid samples, n <= len(buf)
	sum  float64
	mean float64 // memoized Mean, maintained by Push and Reset
}

// NewWindow returns a Window holding at most capacity samples.
// NewWindow panics if capacity < 1: a window that can hold no samples
// has no meaningful average.
func NewWindow(capacity int) *Window {
	if capacity < 1 {
		panic("stats: window capacity must be >= 1")
	}
	return &Window{buf: make([]float64, capacity)}
}

// Cap returns the window capacity.
func (w *Window) Cap() int { return len(w.buf) }

// Len returns the number of samples currently held (<= Cap).
func (w *Window) Len() int { return w.n }

// Push appends a sample, evicting the oldest if the window is full.
// The mean is memoized here, so the samples change only at Push (and
// Reset) while Mean itself stays O(1) — the scheduler's selection loop
// probes Mean many times per quantum between pushes.
func (w *Window) Push(x float64) {
	if w.n == len(w.buf) {
		w.sum -= w.buf[w.head]
	} else {
		w.n++
	}
	w.buf[w.head] = x
	w.sum += x
	w.head++
	if w.head == len(w.buf) {
		w.head = 0
	}
	w.mean = w.computeMean()
}

// Mean returns the average of the samples currently held, or 0 if the
// window is empty. The value is the exact summation computed at the
// last Push (see computeMean), returned in O(1).
func (w *Window) Mean() float64 {
	if w.n == 0 {
		return 0
	}
	return w.mean
}

// computeMean evaluates the documented exact-summation semantics: to
// bound floating-point drift from the incremental sum it recomputes
// exactly when the window is small; for the window lengths used by
// the scheduler (<= a few dozen) this is the common case and keeps
// results reproducible.
func (w *Window) computeMean() float64 {
	if w.n == 0 {
		return 0
	}
	if w.n <= 64 {
		var s float64
		for i := 0; i < w.n; i++ {
			s += w.at(i)
		}
		return s / float64(w.n)
	}
	return w.sum / float64(w.n)
}

// Steady reports whether the window is full and every held sample is
// bitwise identical, returning that value. A steady window is a fixed
// point under Push of the same value: the buffer contents, length and
// recomputed mean are all unchanged (only the write cursor rotates and
// the incremental sum may drift, neither of which Mean reads at the
// capacities the schedulers use). The event-driven simulation engine
// uses this to prove a policy's estimate cannot move across a leap.
// Windows larger than 64 samples fall back to the drifting incremental
// sum in computeMean, so they are never reported steady.
func (w *Window) Steady() (float64, bool) {
	if w.n == 0 || w.n != len(w.buf) || w.n > 64 {
		return 0, false
	}
	v := w.buf[0]
	for _, x := range w.buf[1:] {
		if x != v {
			return 0, false
		}
	}
	return v, true
}

// Latest returns the most recently pushed sample, or 0 if empty.
func (w *Window) Latest() float64 {
	if w.n == 0 {
		return 0
	}
	i := w.head - 1
	if i < 0 {
		i = len(w.buf) - 1
	}
	return w.buf[i]
}

// at returns the i-th oldest valid sample (0 = oldest).
func (w *Window) at(i int) float64 {
	start := w.head - w.n
	if start < 0 {
		start += len(w.buf)
	}
	j := start + i
	if j >= len(w.buf) {
		j -= len(w.buf)
	}
	return w.buf[j]
}

// Samples returns the held samples oldest-first in a fresh slice.
// Hot paths should prefer AppendSamples.
func (w *Window) Samples() []float64 {
	return w.AppendSamples(make([]float64, 0, w.n))
}

// AppendSamples appends the held samples oldest-first to dst and
// returns the extended slice, reusing dst's capacity — the
// non-allocating variant of Samples.
func (w *Window) AppendSamples(dst []float64) []float64 {
	for i := 0; i < w.n; i++ {
		dst = append(dst, w.at(i))
	}
	return dst
}

// Reset discards all samples.
func (w *Window) Reset() {
	w.n = 0
	w.head = 0
	w.sum = 0
	w.mean = 0
	for i := range w.buf {
		w.buf[i] = 0
	}
}

// EWMA is an exponentially weighted moving average, the paper's
// suggested refinement for windows too long for a flat average
// ("exponential reduction of the weight of older samples").
// The zero value with Alpha set is ready to use.
type EWMA struct {
	// Alpha is the weight of each new sample, in (0, 1].
	Alpha float64

	value float64
	init  bool
}

// Push folds a new sample into the average.
func (e *EWMA) Push(x float64) {
	if !e.init {
		e.value = x
		e.init = true
		return
	}
	e.value = e.Alpha*x + (1-e.Alpha)*e.value
}

// Value returns the current average, or 0 before any sample.
func (e *EWMA) Value() float64 { return e.value }

// Initialized reports whether at least one sample has been pushed.
func (e *EWMA) Initialized() bool { return e.init }

// Reset discards state.
func (e *EWMA) Reset() { e.value, e.init = 0, false }
