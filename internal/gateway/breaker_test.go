package gateway

import (
	"testing"
	"time"
)

// fakeClock drives a breaker's sense of time.
type fakeClock struct{ t time.Time }

func (c *fakeClock) now() time.Time          { return c.t }
func (c *fakeClock) advance(d time.Duration) { c.t = c.t.Add(d) }
func newFakeClock() *fakeClock               { return &fakeClock{t: time.Unix(1_700_000_000, 0)} }
func testBreaker(threshold int, cd time.Duration) (*breaker, *fakeClock) {
	b := newBreaker(threshold, cd)
	c := newFakeClock()
	b.now = c.now
	return b, c
}

func TestBreakerOpensOnConsecutiveFailures(t *testing.T) {
	b, _ := testBreaker(3, time.Second)
	for i := 0; i < 2; i++ {
		b.OnFailure()
		if !b.Allow() {
			t.Fatalf("breaker open after %d failures, threshold 3", i+1)
		}
	}
	b.OnFailure()
	if b.State() != breakerOpen {
		t.Fatal("breaker not open after 3 consecutive failures")
	}
	if b.Allow() || b.Ready() {
		t.Fatal("open breaker admitted an attempt before cooldown")
	}
	opened, _ := b.Transitions()
	if opened != 1 {
		t.Fatalf("opened transitions = %d, want 1", opened)
	}
}

func TestBreakerSuccessResetsRun(t *testing.T) {
	b, _ := testBreaker(3, time.Second)
	// Scattered failures with successes in between never trip the
	// consecutive-run condition.
	for i := 0; i < 10; i++ {
		b.OnFailure()
		b.OnFailure()
		b.OnSuccess()
	}
	if b.State() != breakerClosed {
		t.Fatal("scattered failures tripped the breaker")
	}
}

func TestBreakerHalfOpenSingleTrial(t *testing.T) {
	b, clk := testBreaker(1, time.Second)
	b.OnFailure()
	if b.State() != breakerOpen {
		t.Fatal("threshold-1 breaker not open after one failure")
	}
	clk.advance(999 * time.Millisecond)
	if b.Allow() {
		t.Fatal("admitted before cooldown elapsed")
	}
	clk.advance(time.Millisecond)
	if !b.Ready() {
		t.Fatal("not Ready once cooldown elapsed")
	}
	if !b.Allow() {
		t.Fatal("half-open trial refused")
	}
	if b.State() != breakerHalfOpen {
		t.Fatalf("state = %d, want half-open", b.State())
	}
	// Exactly one trial: concurrent callers wait for it to resolve.
	if b.Allow() {
		t.Fatal("second concurrent half-open trial admitted")
	}
	b.OnSuccess()
	if b.State() != breakerClosed {
		t.Fatal("successful trial did not re-close")
	}
	_, reclosed := b.Transitions()
	if reclosed != 1 {
		t.Fatalf("reclosed transitions = %d, want 1", reclosed)
	}
	if !b.Allow() {
		t.Fatal("closed breaker refused")
	}
}

func TestBreakerHalfOpenFailureReopens(t *testing.T) {
	b, clk := testBreaker(1, time.Second)
	b.OnFailure()
	clk.advance(time.Second)
	if !b.Allow() {
		t.Fatal("trial refused")
	}
	b.OnFailure()
	if b.State() != breakerOpen {
		t.Fatal("failed trial did not reopen")
	}
	if b.Allow() {
		t.Fatal("admitted immediately after failed trial — cooldown must restart")
	}
	opened, _ := b.Transitions()
	if opened != 2 {
		t.Fatalf("opened transitions = %d, want 2", opened)
	}
}

func TestBreakerErrorRateTrip(t *testing.T) {
	b, _ := testBreaker(100, time.Second) // run threshold out of reach
	// 3 failures per 4 outcomes: the run never reaches 100, but once
	// the 32-outcome window is full at a 75% error rate it trips.
	for i := 0; i < breakerWindow/4; i++ {
		b.OnFailure()
		b.OnFailure()
		b.OnFailure()
		b.OnSuccess()
	}
	// The window is full of 3/4 failures but ended on a success (run
	// reset); one more failure re-evaluates the rate.
	b.OnFailure()
	if b.State() != breakerOpen {
		t.Fatal("75% windowed error rate did not trip the breaker")
	}
}

func TestBreakerRateNeedsFullWindow(t *testing.T) {
	b, _ := testBreaker(100, time.Second)
	// 100% failures but fewer than a full window: no rate trip (and the
	// run threshold is out of reach), so a cold backend with two bad
	// samples is not condemned.
	for i := 0; i < breakerWindow-1; i++ {
		b.OnFailure()
	}
	if b.State() != breakerClosed {
		t.Fatal("breaker tripped on a partial window")
	}
}

func TestBreakerDisabled(t *testing.T) {
	b, _ := testBreaker(-1, time.Second)
	for i := 0; i < 100; i++ {
		b.OnFailure()
	}
	if !b.Allow() || !b.Ready() || b.State() != breakerClosed {
		t.Fatal("disabled breaker tripped")
	}
}
