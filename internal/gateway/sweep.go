package gateway

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"sync"
	"time"

	"busaware/internal/digest"
	"busaware/internal/server"
)

// Sweep scatter-gather: a batch of cells is sharded by the same
// canonical-key hash as single requests, one sub-sweep is dispatched
// per owning backend, and the backends' NDJSON streams are merged —
// lines forwarded to the client as they arrive, with each cell's index
// remapped from its sub-sweep position back to its position in the
// client's batch and the serving backend recorded on the line.
//
// The chaos-era hardening lives in three places:
//
//   - Every backend line's integrity digest is verified against the
//     sub-sweep coordinates before the line is trusted; a corrupt line
//     is dropped (feeding the breaker) and its cell re-earned
//     elsewhere, so torn bytes never reach the client.
//   - A sub-sweep that stalls past the hedge delay has its unanswered
//     cells hedged to the next ring node; the first answer per cell
//     wins, the losing stream is canceled, and when a loser completes
//     anyway its bytes are cross-checked against the winner's.
//   - Every re-send — failover after a dead stream, a hedge, a
//     redispatch — draws on the global retry budget; once it is spent,
//     leftover cells fail fast as per-cell 503 lines instead of
//     amplifying the overload. An idle watchdog (AttemptTimeout)
//     cancels blackholed streams so they fail over instead of pinning
//     the sweep forever.

// sweepMaxBodyBytes mirrors the backend's sweep body cap.
const sweepMaxBodyBytes = 8 << 20

// sweepMaxAttempts bounds how many backends one cell may be offered to
// (initial dispatch + one retry/hedge).
const sweepMaxAttempts = 2

// SweepLine is one NDJSON line of the gateway's merged sweep stream:
// the backend's line plus which backend served it (the shard-affinity
// observability hook smpload and the experiments use).
type SweepLine struct {
	server.SweepCellResult
	Backend string `json:"backend,omitempty"`
}

// sweepState is the per-request cell ledger: which cells are answered,
// how many times each was dispatched, and how many dispatches cover it
// right now. It also serializes the response stream (one writer) and
// fans answer notifications out to the group watchdogs for first-win
// cancelation.
type sweepState struct {
	g *Gateway

	mu       sync.Mutex
	w        http.ResponseWriter
	flusher  http.Flusher
	answered []bool
	attempts []int
	inflight []int
	hedged   []bool
	// winner is the SumLine digest of each answered cell's winning
	// line, kept so a completed hedge loser can be byte-checked.
	winner       []string
	winnerStatus []int
	subs         map[chan struct{}]struct{}
}

func newSweepState(g *Gateway, w http.ResponseWriter, n int) *sweepState {
	f, _ := w.(http.Flusher)
	return &sweepState{
		g: g, w: w, flusher: f,
		answered:     make([]bool, n),
		attempts:     make([]int, n),
		inflight:     make([]int, n),
		hedged:       make([]bool, n),
		winner:       make([]string, n),
		winnerStatus: make([]int, n),
		subs:         make(map[chan struct{}]struct{}),
	}
}

// subscribe registers a watchdog's answer-notification channel.
func (st *sweepState) subscribe() chan struct{} {
	ch := make(chan struct{}, 1)
	st.mu.Lock()
	st.subs[ch] = struct{}{}
	st.mu.Unlock()
	return ch
}

func (st *sweepState) unsubscribe(ch chan struct{}) {
	st.mu.Lock()
	delete(st.subs, ch)
	st.mu.Unlock()
}

// notifyLocked pokes every watchdog (caller holds the lock).
func (st *sweepState) notifyLocked() {
	for ch := range st.subs {
		select {
		case ch <- struct{}{}:
		default:
		}
	}
}

// begin records one dispatch covering the given cells.
func (st *sweepState) begin(orig []int) {
	st.mu.Lock()
	for _, i := range orig {
		st.attempts[i]++
		st.inflight[i]++
	}
	st.mu.Unlock()
}

// emit writes one line for cell orig if it is still unanswered,
// re-stamping the integrity digest for the client's coordinates. A
// duplicate answer (a hedge loser that completed anyway) is dropped
// after a byte-identity cross-check against the winner.
func (st *sweepState) emit(line SweepLine, fromHedge bool) {
	i := line.Index
	d := digest.SumLine(line.Status, i, line.Response)
	st.mu.Lock()
	if st.answered[i] {
		if line.Status == http.StatusOK && st.winnerStatus[i] == http.StatusOK && d != st.winner[i] {
			st.g.metrics.hedgeMismatches.Add(1)
		}
		st.mu.Unlock()
		return
	}
	st.answered[i] = true
	st.winner[i] = d
	st.winnerStatus[i] = line.Status
	if st.hedged[i] {
		if fromHedge {
			st.g.metrics.hedgeWins.Add(1)
		} else {
			st.g.metrics.hedgePrimaryWins.Add(1)
		}
	}
	line.Digest = d
	b, err := json.Marshal(line)
	if err == nil {
		st.w.Write(append(b, '\n'))
		if st.flusher != nil {
			st.flusher.Flush()
		}
		st.g.metrics.sweepCells.Add(1)
	}
	st.notifyLocked()
	st.mu.Unlock()
}

// fail writes an error line for cell idx (unless answered meanwhile).
func (st *sweepState) fail(idx, status int, msg string) {
	st.emit(SweepLine{SweepCellResult: server.SweepCellResult{
		Index: idx, Status: status, Error: msg}}, false)
}

// allAnswered reports whether every listed cell has its line.
func (st *sweepState) allAnswered(orig []int) bool {
	st.mu.Lock()
	defer st.mu.Unlock()
	for _, i := range orig {
		if !st.answered[i] {
			return false
		}
	}
	return true
}

// finish ends one dispatch and splits its still-unanswered,
// now-uncovered cells into those eligible for another attempt and
// those out of attempts.
func (st *sweepState) finish(orig []int) (retry, spent []int) {
	st.mu.Lock()
	defer st.mu.Unlock()
	for _, i := range orig {
		st.inflight[i]--
		if st.answered[i] || st.inflight[i] > 0 {
			continue
		}
		if st.attempts[i] < sweepMaxAttempts {
			retry = append(retry, i)
		} else {
			spent = append(spent, i)
		}
	}
	return retry, spent
}

// pendingForHedge returns the cells still unanswered with attempt
// headroom, marking them hedged.
func (st *sweepState) pendingForHedge(orig []int) []int {
	st.mu.Lock()
	defer st.mu.Unlock()
	var out []int
	for _, i := range orig {
		if !st.answered[i] && st.attempts[i] < sweepMaxAttempts {
			st.hedged[i] = true
			out = append(out, i)
		}
	}
	return out
}

// sweepJob carries one sweep request through dispatch, hedging and
// failover.
type sweepJob struct {
	g        *Gateway
	r        *http.Request
	st       *sweepState
	cells    []server.Request
	deadline time.Time
}

func (g *Gateway) handleSweep(w http.ResponseWriter, r *http.Request) {
	started := time.Now()
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		g.gwError(w, started, http.StatusMethodNotAllowed, "POST only")
		return
	}
	var req server.SweepRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, sweepMaxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		g.gwError(w, started, http.StatusBadRequest, fmt.Sprintf("bad request body: %v", err))
		return
	}
	if len(req.Cells) == 0 {
		g.gwError(w, started, http.StatusBadRequest, "empty sweep")
		return
	}
	if len(req.Cells) > server.MaxSweepCells {
		g.gwError(w, started, http.StatusBadRequest,
			fmt.Sprintf("sweep of %d cells exceeds the %d-cell limit", len(req.Cells), server.MaxSweepCells))
		return
	}
	deadline, err := server.ParseDeadline(r.Header)
	if err != nil {
		g.gwError(w, started, http.StatusBadRequest, err.Error())
		return
	}
	g.budget.OnRequest(len(req.Cells))

	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	j := &sweepJob{
		g: g, r: r,
		st:       newSweepState(g, w, len(req.Cells)),
		cells:    req.Cells,
		deadline: deadline,
	}

	// Shard: group cell indices by owning backend. Cells the gateway
	// can prove invalid become 400 lines without a backend round trip.
	groups := make(map[*backend][]int)
	for idx, cell := range req.Cells {
		key, err := server.CanonicalKey(cell)
		if err != nil {
			j.st.fail(idx, http.StatusBadRequest, err.Error())
			continue
		}
		route := g.route(key)
		if len(route) == 0 {
			j.st.fail(idx, http.StatusBadGateway, "no backends")
			continue
		}
		groups[route[0]] = append(groups[route[0]], idx)
	}

	var wg sync.WaitGroup
	for b, orig := range groups {
		wg.Add(1)
		go func(b *backend, orig []int) {
			defer wg.Done()
			j.dispatch(b, orig, 0, false)
		}(b, orig)
	}
	wg.Wait()
	g.metrics.observe(http.StatusOK)
}

// nextBackend picks where cell idx should go when not (or no longer)
// to avoid: the first route candidate other than avoid.
func (j *sweepJob) nextBackend(idx int, avoid *backend) *backend {
	key, err := server.CanonicalKey(j.cells[idx])
	if err != nil {
		return nil
	}
	for _, cand := range j.g.route(key) {
		if cand != avoid {
			return cand
		}
	}
	return nil
}

// dispatch runs one sub-sweep covering cells orig against b, watching
// it for first-win completion, hedging stragglers, and re-earning the
// unanswered remainder within budget. It returns only when every
// dispatch it spawned (hedges, failovers) has also finished.
func (j *sweepJob) dispatch(b *backend, orig []int, hop int, isHedge bool) {
	j.st.begin(orig)
	ctx, cancel := context.WithCancel(j.r.Context())
	defer cancel()
	activity := make(chan struct{}, 1)
	sub := j.st.subscribe()
	defer j.st.unsubscribe(sub)

	// The watchdog owns three clocks: first-win cancelation once every
	// cell in this group is answered (by anyone), the straggler hedge,
	// and the idle cutoff that unsticks a blackholed stream.
	var spawned sync.WaitGroup
	watchDone := make(chan struct{})
	go func() {
		defer close(watchDone)
		var hedgec, idlec <-chan time.Time
		if !isHedge && hop == 0 {
			if d := j.g.hedgeDelay(); d > 0 && len(j.g.cluster.Load().backends) > 1 {
				ht := time.NewTimer(d)
				defer ht.Stop()
				hedgec = ht.C
			}
		}
		var idleTimer *time.Timer
		if at := j.g.cfg.AttemptTimeout; at > 0 {
			idleTimer = time.NewTimer(at)
			defer idleTimer.Stop()
			idlec = idleTimer.C
		}
		for {
			select {
			case <-ctx.Done():
				return
			case <-sub:
				if j.st.allAnswered(orig) {
					cancel()
					return
				}
			case <-activity:
				if idleTimer != nil {
					if !idleTimer.Stop() {
						<-idleTimer.C
					}
					idleTimer.Reset(j.g.cfg.AttemptTimeout)
				}
			case <-hedgec:
				hedgec = nil
				pending := j.st.pendingForHedge(orig)
				if len(pending) == 0 {
					continue
				}
				nb := j.nextBackend(pending[0], b)
				if nb == nil || !j.g.budget.TryRetry(len(pending)) {
					continue
				}
				j.g.metrics.hedgesLaunched.Add(1)
				spawned.Add(1)
				go func() {
					defer spawned.Done()
					j.dispatch(nb, pending, hop, true)
				}()
			case <-idlec:
				// No line for a full AttemptTimeout: treat the stream
				// as blackholed and cancel so the remainder fails over.
				cancel()
				return
			}
		}
	}()

	err := j.runSweepGroup(ctx, b, orig, activity, isHedge)
	cancel()
	<-watchDone
	if err != nil && j.r.Context().Err() == nil {
		b.breaker.OnFailure()
		if isDialError(err) {
			b.healthy.Store(false)
		}
	} else if err == nil {
		b.breaker.OnSuccess()
	}
	spawned.Wait()

	retry, spent := j.st.finish(orig)
	msg := "backend stream failed"
	if err != nil {
		msg = err.Error()
	}
	for _, idx := range spent {
		j.st.fail(idx, http.StatusBadGateway, msg)
	}
	if len(retry) == 0 || j.r.Context().Err() != nil {
		return
	}
	if !j.g.budget.TryRetry(len(retry)) {
		for _, idx := range retry {
			j.st.fail(idx, http.StatusServiceUnavailable, "retry budget exhausted")
		}
		return
	}
	b.failovers.Add(uint64(len(retry)))
	j.g.metrics.failovers.Add(uint64(len(retry)))
	// Regroup the remainder by each cell's next preferred backend and
	// re-earn it there.
	regroups := make(map[*backend][]int)
	for _, idx := range retry {
		nb := j.nextBackend(idx, b)
		if nb == nil {
			j.st.fail(idx, http.StatusBadGateway, msg)
			continue
		}
		regroups[nb] = append(regroups[nb], idx)
	}
	for nb, ridx := range regroups {
		j.dispatch(nb, ridx, hop+1, isHedge)
	}
}

// runSweepGroup posts one sub-sweep to b and forwards its verified
// stream. Lines are digest-checked against the sub-sweep coordinates
// before being trusted; a corrupt line is dropped (the cell stays
// unanswered and is re-earned elsewhere). A retryable whole-sweep
// refusal (injected or real 5xx) is reported as an error so the cells
// fail over; a definitive refusal becomes per-cell lines.
func (j *sweepJob) runSweepGroup(ctx context.Context, b *backend, orig []int, activity chan<- struct{}, isHedge bool) error {
	cells := make([]server.Request, len(orig))
	for i, idx := range orig {
		cells[i] = j.cells[idx]
	}
	body, err := json.Marshal(server.SweepRequest{Cells: cells})
	if err != nil {
		return err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, b.addr+"/v1/sweep", bytes.NewReader(body))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	req.GetBody = nil
	if !j.deadline.IsZero() {
		req.Header.Set(server.DeadlineHeader, strconv.FormatInt(j.deadline.UnixMilli(), 10))
	}
	b.inflight.Add(1)
	defer b.inflight.Add(-1)
	resp, err := j.g.client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		if retryableStatus(resp.StatusCode) {
			return fmt.Errorf("backend sweep status %d", resp.StatusCode)
		}
		// Definitive refusal (it was reachable and sure) — a retry
		// elsewhere would get the same answer for these cells.
		msg := fmt.Sprintf("backend sweep status %d", resp.StatusCode)
		for _, idx := range orig {
			j.st.emit(SweepLine{SweepCellResult: server.SweepCellResult{
				Index: idx, Status: resp.StatusCode, Error: msg}, Backend: b.addr}, false)
		}
		return nil
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64<<10), sweepMaxBodyBytes)
	for sc.Scan() {
		raw := bytes.TrimSpace(sc.Bytes())
		if len(raw) == 0 {
			continue
		}
		select {
		case activity <- struct{}{}:
		default:
		}
		var line server.SweepCellResult
		if err := json.Unmarshal(raw, &line); err != nil {
			return fmt.Errorf("bad backend sweep line: %w", err)
		}
		if line.Index < 0 || line.Index >= len(orig) {
			return fmt.Errorf("backend sweep line index %d out of range", line.Index)
		}
		sub := line.Index
		if !digest.VerifyLine(line.Digest, line.Status, sub, line.Response) {
			// Corrupt bytes survived HTTP framing: drop the line, let
			// the cell be re-earned, and charge the path that served it.
			j.g.metrics.digestMismatches.Add(1)
			b.breaker.OnFailure()
			continue
		}
		line.Index = orig[sub]
		j.st.emit(SweepLine{SweepCellResult: line, Backend: b.addr}, isHedge)
	}
	return sc.Err()
}
