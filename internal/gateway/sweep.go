package gateway

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"sync"
	"time"

	"busaware/internal/server"
)

// Sweep scatter-gather: a batch of cells is sharded by the same
// canonical-key hash as single requests, one sub-sweep is dispatched
// per owning backend, and the backends' NDJSON streams are merged —
// lines forwarded to the client as they arrive, with each cell's index
// remapped from its sub-sweep position back to its position in the
// client's batch and the serving backend recorded on the line. A
// backend that dies mid-stream has its unfinished cells re-sharded
// across the survivors, once; cells that fail both hops surface as
// per-cell 502 lines, never as a torn response.

// sweepMaxBodyBytes mirrors the backend's sweep body cap.
const sweepMaxBodyBytes = 8 << 20

// SweepLine is one NDJSON line of the gateway's merged sweep stream:
// the backend's line plus which backend served it (the shard-affinity
// observability hook smpload and the experiments use).
type SweepLine struct {
	server.SweepCellResult
	Backend string `json:"backend,omitempty"`
}

func (g *Gateway) handleSweep(w http.ResponseWriter, r *http.Request) {
	started := time.Now()
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		g.gwError(w, started, http.StatusMethodNotAllowed, "POST only")
		return
	}
	var req server.SweepRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, sweepMaxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		g.gwError(w, started, http.StatusBadRequest, fmt.Sprintf("bad request body: %v", err))
		return
	}
	if len(req.Cells) == 0 {
		g.gwError(w, started, http.StatusBadRequest, "empty sweep")
		return
	}
	if len(req.Cells) > server.MaxSweepCells {
		g.gwError(w, started, http.StatusBadRequest,
			fmt.Sprintf("sweep of %d cells exceeds the %d-cell limit", len(req.Cells), server.MaxSweepCells))
		return
	}

	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	var wmu sync.Mutex
	emit := func(line SweepLine) {
		b, err := json.Marshal(line)
		if err != nil {
			return
		}
		wmu.Lock()
		w.Write(append(b, '\n'))
		if flusher != nil {
			flusher.Flush()
		}
		wmu.Unlock()
		g.metrics.sweepCells.Add(1)
	}

	// Shard: group cell indices by owning backend. Cells the gateway
	// can prove invalid become 400 lines without a backend round trip.
	type group struct {
		cells []server.Request
		orig  []int
	}
	groups := make(map[*backend]*group)
	for idx, cell := range req.Cells {
		key, err := server.CanonicalKey(cell)
		if err != nil {
			emit(SweepLine{SweepCellResult: server.SweepCellResult{
				Index: idx, Status: http.StatusBadRequest, Error: err.Error()}})
			continue
		}
		route := g.route(key)
		if len(route) == 0 {
			emit(SweepLine{SweepCellResult: server.SweepCellResult{
				Index: idx, Status: http.StatusBadGateway, Error: "no backends"}})
			continue
		}
		b := route[0]
		grp := groups[b]
		if grp == nil {
			grp = &group{}
			groups[b] = grp
		}
		grp.cells = append(grp.cells, cell)
		grp.orig = append(grp.orig, idx)
	}

	// Fan out one sub-sweep per backend; each worker handles its own
	// single failover hop.
	var wg sync.WaitGroup
	var dispatch func(b *backend, cells []server.Request, orig []int, hop int)
	dispatch = func(b *backend, cells []server.Request, orig []int, hop int) {
		emitted, err := g.runSweepGroup(r, b, cells, orig, emit)
		if err == nil || r.Context().Err() != nil {
			return
		}
		// Transport failure mid-group: eject the backend and move the
		// cells it never answered.
		b.healthy.Store(false)
		var restCells []server.Request
		var restOrig []int
		for i, done := range emitted {
			if !done {
				restCells = append(restCells, cells[i])
				restOrig = append(restOrig, orig[i])
			}
		}
		if len(restCells) == 0 {
			return
		}
		b.failovers.Add(uint64(len(restCells)))
		g.metrics.failovers.Add(uint64(len(restCells)))
		if hop >= 1 {
			for _, idx := range restOrig {
				emit(SweepLine{SweepCellResult: server.SweepCellResult{
					Index: idx, Status: http.StatusBadGateway, Error: err.Error()}})
			}
			return
		}
		// Re-shard the remainder: with b ejected, route() now prefers
		// each cell's next healthy ring node.
		regroups := make(map[*backend]*group)
		for i, cell := range restCells {
			key, kerr := server.CanonicalKey(cell)
			var nb *backend
			if kerr == nil {
				for _, cand := range g.route(key) {
					if cand != b {
						nb = cand
						break
					}
				}
			}
			if nb == nil {
				emit(SweepLine{SweepCellResult: server.SweepCellResult{
					Index: restOrig[i], Status: http.StatusBadGateway, Error: err.Error()}})
				continue
			}
			grp := regroups[nb]
			if grp == nil {
				grp = &group{}
				regroups[nb] = grp
			}
			grp.cells = append(grp.cells, cell)
			grp.orig = append(grp.orig, restOrig[i])
		}
		for nb, grp := range regroups {
			dispatch(nb, grp.cells, grp.orig, hop+1)
		}
	}
	for b, grp := range groups {
		wg.Add(1)
		go func(b *backend, grp *group) {
			defer wg.Done()
			dispatch(b, grp.cells, grp.orig, 0)
		}(b, grp)
	}
	wg.Wait()
	g.metrics.observe(http.StatusOK)
}

// runSweepGroup posts one sub-sweep to b and forwards its stream,
// remapping sub-indices to the client's. It returns which sub-cells
// were answered; a non-nil error means the transport died and the
// unanswered remainder should fail over. A non-200 sweep response is
// not a transport failure: it becomes per-cell error lines.
func (g *Gateway) runSweepGroup(r *http.Request, b *backend, cells []server.Request, orig []int, emit func(SweepLine)) ([]bool, error) {
	emitted := make([]bool, len(cells))
	body, err := json.Marshal(server.SweepRequest{Cells: cells})
	if err != nil {
		return emitted, err
	}
	req, err := http.NewRequestWithContext(r.Context(), http.MethodPost, b.addr+"/v1/sweep", bytes.NewReader(body))
	if err != nil {
		return emitted, err
	}
	req.Header.Set("Content-Type", "application/json")
	b.inflight.Add(1)
	defer b.inflight.Add(-1)
	resp, err := g.client.Do(req)
	if err != nil {
		return emitted, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		// The backend refused the whole sub-sweep (it was reachable, so
		// this is not failover material — a retry elsewhere would get
		// the same answer for these cells).
		msg := fmt.Sprintf("backend sweep status %d", resp.StatusCode)
		for i, idx := range orig {
			emitted[i] = true
			emit(SweepLine{SweepCellResult: server.SweepCellResult{
				Index: idx, Status: resp.StatusCode, Error: msg}, Backend: b.addr})
		}
		return emitted, nil
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64<<10), sweepMaxBodyBytes)
	for sc.Scan() {
		raw := bytes.TrimSpace(sc.Bytes())
		if len(raw) == 0 {
			continue
		}
		var line server.SweepCellResult
		if err := json.Unmarshal(raw, &line); err != nil {
			return emitted, fmt.Errorf("bad backend sweep line: %w", err)
		}
		if line.Index < 0 || line.Index >= len(cells) {
			return emitted, fmt.Errorf("backend sweep line index %d out of range", line.Index)
		}
		sub := line.Index
		line.Index = orig[sub]
		emitted[sub] = true
		emit(SweepLine{SweepCellResult: line, Backend: b.addr})
	}
	if err := sc.Err(); err != nil {
		return emitted, err
	}
	return emitted, nil
}
