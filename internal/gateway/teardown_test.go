package gateway

import (
	"context"
	"encoding/json"
	"net/http"
	"testing"
	"time"

	"busaware/internal/server"
)

// backendSubscribers reads one backend's live /v1/timeline subscriber
// count through its summary endpoint.
func backendSubscribers(t *testing.T, url string) int {
	t.Helper()
	resp, err := http.Get(url + "/v1/timeline?summary=1")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var sum server.TimelineSummary
	if err := json.NewDecoder(resp.Body).Decode(&sum); err != nil {
		t.Fatal(err)
	}
	return sum.Subscribers
}

// waitBackendSubscribers polls every backend until each reports want
// live streams.
func waitBackendSubscribers(t *testing.T, c *cluster, want int) {
	t.Helper()
	deadline := time.Now().Add(3 * time.Second)
	for time.Now().Before(deadline) {
		ok := true
		for _, ts := range c.backends {
			if backendSubscribers(t, ts.URL) != want {
				ok = false
				break
			}
		}
		if ok {
			return
		}
		time.Sleep(20 * time.Millisecond)
	}
	for i, ts := range c.backends {
		t.Logf("backend %d subscribers = %d", i, backendSubscribers(t, ts.URL))
	}
	t.Fatalf("backend subscriber counts never reached %d", want)
}

// TestTimelineMultiplexerTeardown: a client abandoning the gateway's
// merged /v1/timeline stream must promptly tear down the per-backend
// upstream streams it multiplexes — otherwise every abandoned dashboard
// tab pins one relay goroutine and one backend subscription per shard
// for the life of the gateway.
func TestTimelineMultiplexerTeardown(t *testing.T) {
	c := newCluster(t, 2, Config{})

	ctx, cancel := context.WithCancel(context.Background())
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.gwts.URL+"/v1/timeline", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { resp.Body.Close() })
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("gateway stream status %d", resp.StatusCode)
	}
	// The gateway must have opened one upstream stream per backend.
	waitBackendSubscribers(t, c, 1)

	cancel()
	// Client gone: both upstream subscriptions must be released without
	// any further traffic on the feed.
	waitBackendSubscribers(t, c, 0)
}

// TestTimelineMaxTeardownThroughGateway: a ?max-bounded merged stream
// ends by itself and still tears the upstream streams down.
func TestTimelineMaxTeardownThroughGateway(t *testing.T) {
	// Small telemetry windows so even a short cell seals backlog lines.
	c := newClusterWithServerConfig(t, 2, Config{},
		server.Config{Workers: 2, TimelineQuanta: 8})
	// Seed backlog on the backends so max=1 is satisfiable.
	resp, _ := post(t, c.gwts.URL, "/v1/simulate", cellBody(1))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("seed status %d", resp.StatusCode)
	}

	sresp, err := http.Get(c.gwts.URL + "/v1/timeline?backlog=256&max=1")
	if err != nil {
		t.Fatal(err)
	}
	defer sresp.Body.Close()
	buf := make([]byte, 1<<20)
	n := 0
	for {
		m, rerr := sresp.Body.Read(buf[n:])
		n += m
		if rerr != nil {
			break
		}
	}
	if n == 0 {
		t.Fatal("no merged lines before max cutoff")
	}
	waitBackendSubscribers(t, c, 0)
}
