package gateway

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"
)

// gwMetrics accumulates the gateway-side counters for /metrics, in the
// same hand-rolled Prometheus text exposition as the backend (the
// repository is dependency-free by charter). Per-backend gauges are
// read live from the backend structs at render time.
type gwMetrics struct {
	mu    sync.Mutex
	codes map[int]uint64

	// failovers counts requests moved to another ring node after a
	// connection error; retries counts 429s absorbed by waiting out
	// Retry-After; sweepCells counts per-cell sweep lines forwarded.
	failovers  atomic.Uint64
	retries    atomic.Uint64
	sweepCells atomic.Uint64

	// Hedging: hedges launched, which side won a hedged race, and how
	// often a completed hedge loser's bytes diverged from the winner's
	// (should stay 0 — backends replay cached bodies byte-identically).
	hedgesLaunched   atomic.Uint64
	hedgeWins        atomic.Uint64
	hedgePrimaryWins atomic.Uint64
	hedgeMismatches  atomic.Uint64

	// digestMismatches counts backend responses whose body failed
	// X-Content-Digest verification and were retried instead of served.
	digestMismatches atomic.Uint64

	// ringAdds/ringRemoves count runtime membership changes.
	ringAdds    atomic.Uint64
	ringRemoves atomic.Uint64
}

func newGWMetrics() *gwMetrics {
	return &gwMetrics{codes: make(map[int]uint64)}
}

// observe records one finished gateway request by status code.
func (m *gwMetrics) observe(code int) {
	m.mu.Lock()
	m.codes[code]++
	m.mu.Unlock()
}

// write renders the exposition: request counters plus live per-backend
// gauges, breaker states and the retry-budget ledger.
func (m *gwMetrics) write(w io.Writer, backends []*backend, budget *retryBudget) {
	m.mu.Lock()
	codes := make([]int, 0, len(m.codes))
	for c := range m.codes {
		codes = append(codes, c)
	}
	sort.Ints(codes)
	codeVals := make([]uint64, len(codes))
	for i, c := range codes {
		codeVals[i] = m.codes[c]
	}
	m.mu.Unlock()

	fmt.Fprintln(w, "# HELP smpgw_requests_total Gateway requests finished, by HTTP status code.")
	fmt.Fprintln(w, "# TYPE smpgw_requests_total counter")
	for i, c := range codes {
		fmt.Fprintf(w, "smpgw_requests_total{code=\"%d\"} %d\n", c, codeVals[i])
	}

	fmt.Fprintln(w, "# HELP smpgw_failovers_total Requests failed over to the next ring node after a backend failure.")
	fmt.Fprintln(w, "# TYPE smpgw_failovers_total counter")
	fmt.Fprintf(w, "smpgw_failovers_total %d\n", m.failovers.Load())

	fmt.Fprintln(w, "# HELP smpgw_retries_total Backend 429s absorbed by honoring Retry-After.")
	fmt.Fprintln(w, "# TYPE smpgw_retries_total counter")
	fmt.Fprintf(w, "smpgw_retries_total %d\n", m.retries.Load())

	fmt.Fprintln(w, "# HELP smpgw_sweep_cells_total Sweep cells forwarded through the gateway.")
	fmt.Fprintln(w, "# TYPE smpgw_sweep_cells_total counter")
	fmt.Fprintf(w, "smpgw_sweep_cells_total %d\n", m.sweepCells.Load())

	fmt.Fprintln(w, "# HELP smpgw_retry_budget_requests_total Client-facing work units credited to the retry budget.")
	fmt.Fprintln(w, "# TYPE smpgw_retry_budget_requests_total counter")
	fmt.Fprintf(w, "smpgw_retry_budget_requests_total %d\n", budget.requestsTotal.Load())
	fmt.Fprintln(w, "# HELP smpgw_retry_budget_retries_total Extra backend attempts (failover, 429 retry, hedge) granted by the retry budget.")
	fmt.Fprintln(w, "# TYPE smpgw_retry_budget_retries_total counter")
	fmt.Fprintf(w, "smpgw_retry_budget_retries_total %d\n", budget.retriesTotal.Load())
	fmt.Fprintln(w, "# HELP smpgw_retry_budget_exhausted_total Retry attempts refused because the budget was spent.")
	fmt.Fprintln(w, "# TYPE smpgw_retry_budget_exhausted_total counter")
	fmt.Fprintf(w, "smpgw_retry_budget_exhausted_total %d\n", budget.exhaustedTotal.Load())

	fmt.Fprintln(w, "# HELP smpgw_hedges_total Hedged-request events by outcome.")
	fmt.Fprintln(w, "# TYPE smpgw_hedges_total counter")
	fmt.Fprintf(w, "smpgw_hedges_total{outcome=\"launched\"} %d\n", m.hedgesLaunched.Load())
	fmt.Fprintf(w, "smpgw_hedges_total{outcome=\"hedge_win\"} %d\n", m.hedgeWins.Load())
	fmt.Fprintf(w, "smpgw_hedges_total{outcome=\"primary_win\"} %d\n", m.hedgePrimaryWins.Load())
	fmt.Fprintf(w, "smpgw_hedges_total{outcome=\"mismatch\"} %d\n", m.hedgeMismatches.Load())

	fmt.Fprintln(w, "# HELP smpgw_digest_mismatch_total Backend responses rejected for failing X-Content-Digest verification.")
	fmt.Fprintln(w, "# TYPE smpgw_digest_mismatch_total counter")
	fmt.Fprintf(w, "smpgw_digest_mismatch_total %d\n", m.digestMismatches.Load())

	fmt.Fprintln(w, "# HELP smpgw_ring_backends Backends currently on the consistent-hash ring.")
	fmt.Fprintln(w, "# TYPE smpgw_ring_backends gauge")
	fmt.Fprintf(w, "smpgw_ring_backends %d\n", len(backends))
	fmt.Fprintln(w, "# HELP smpgw_ring_changes_total Runtime ring membership changes, by operation.")
	fmt.Fprintln(w, "# TYPE smpgw_ring_changes_total counter")
	fmt.Fprintf(w, "smpgw_ring_changes_total{op=\"add\"} %d\n", m.ringAdds.Load())
	fmt.Fprintf(w, "smpgw_ring_changes_total{op=\"remove\"} %d\n", m.ringRemoves.Load())

	fmt.Fprintln(w, "# HELP smpgw_backend_healthy Backend admitted for routing (1) or ejected (0).")
	fmt.Fprintln(w, "# TYPE smpgw_backend_healthy gauge")
	for _, b := range backends {
		h := 0
		if b.healthy.Load() {
			h = 1
		}
		fmt.Fprintf(w, "smpgw_backend_healthy{backend=%q} %d\n", b.addr, h)
	}
	fmt.Fprintln(w, "# HELP smpgw_breaker_state Circuit-breaker state per backend (0 closed, 1 half-open, 2 open).")
	fmt.Fprintln(w, "# TYPE smpgw_breaker_state gauge")
	for _, b := range backends {
		fmt.Fprintf(w, "smpgw_breaker_state{backend=%q} %d\n", b.addr, b.breaker.State())
	}
	fmt.Fprintln(w, "# HELP smpgw_breaker_transitions_total Circuit-breaker transitions per backend, by destination state.")
	fmt.Fprintln(w, "# TYPE smpgw_breaker_transitions_total counter")
	for _, b := range backends {
		opened, reclosed := b.breaker.Transitions()
		fmt.Fprintf(w, "smpgw_breaker_transitions_total{backend=%q,to=\"open\"} %d\n", b.addr, opened)
		fmt.Fprintf(w, "smpgw_breaker_transitions_total{backend=%q,to=\"closed\"} %d\n", b.addr, reclosed)
	}
	fmt.Fprintln(w, "# HELP smpgw_backend_inflight Proxied requests currently outstanding against the backend.")
	fmt.Fprintln(w, "# TYPE smpgw_backend_inflight gauge")
	for _, b := range backends {
		fmt.Fprintf(w, "smpgw_backend_inflight{backend=%q} %d\n", b.addr, b.inflight.Load())
	}
	fmt.Fprintln(w, "# HELP smpgw_backend_shed_total 429 responses received from the backend.")
	fmt.Fprintln(w, "# TYPE smpgw_backend_shed_total counter")
	for _, b := range backends {
		fmt.Fprintf(w, "smpgw_backend_shed_total{backend=%q} %d\n", b.addr, b.shed.Load())
	}
	fmt.Fprintln(w, "# HELP smpgw_backend_failovers_total Requests moved off the backend after failures.")
	fmt.Fprintln(w, "# TYPE smpgw_backend_failovers_total counter")
	for _, b := range backends {
		fmt.Fprintf(w, "smpgw_backend_failovers_total{backend=%q} %d\n", b.addr, b.failovers.Load())
	}
}
