package gateway

import (
	"sort"
	"sync"
	"time"
)

// Hedging support: the gateway hedges a straggling attempt by sending
// a second copy to the next ring node once the original has been
// outstanding longer than the observed p99 — the classic tail-at-scale
// move. The tracker below supplies that p99 from a ring of recent
// successful-attempt latencies; the hedge delay is max(configured
// floor, tracked p99) so hedges target genuine stragglers, not the
// fat part of the distribution.

// trackerSize is how many recent latencies the p99 is computed over.
const trackerSize = 512

// trackerRefresh is how many new samples may accumulate before the
// cached p99 is recomputed (sorting 512 samples per request would be
// waste; per 32 is noise-free enough for a hedge trigger).
const trackerRefresh = 32

type latencyTracker struct {
	mu      sync.Mutex
	samples [trackerSize]time.Duration
	n       int // resident count
	idx     int
	stale   int // samples since last p99 computation
	cached  time.Duration
	// computed marks that cached holds a real computation. Freshness
	// is decided by stale alone: gating on cached > 0 would treat a
	// legitimate p99 of 0 (an all-fast-hit workload at clock
	// granularity) as "never computed" and re-sort every request.
	computed bool
}

// record adds one successful attempt latency.
func (t *latencyTracker) record(d time.Duration) {
	t.mu.Lock()
	t.samples[t.idx] = d
	t.idx = (t.idx + 1) % trackerSize
	if t.n < trackerSize {
		t.n++
	}
	t.stale++
	t.mu.Unlock()
}

// p99 returns the nearest-rank 99th percentile of the resident
// samples (0 when empty).
func (t *latencyTracker) p99() time.Duration {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.n == 0 {
		return 0
	}
	if t.computed && t.stale < trackerRefresh {
		return t.cached
	}
	sorted := make([]time.Duration, t.n)
	copy(sorted, t.samples[:t.n])
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	rank := (99*t.n + 99) / 100 // nearest-rank: ceil(0.99 n)
	if rank < 1 {
		rank = 1
	}
	if rank > t.n {
		rank = t.n
	}
	t.cached = sorted[rank-1]
	t.stale = 0
	t.computed = true
	return t.cached
}

// hedgeDelay is how long an attempt may stay outstanding before a
// hedge is launched: the observed p99, floored by HedgeDelayMin so an
// all-cache-hit workload (p99 ≈ 100µs) doesn't hedge every miss.
// Returns 0 when hedging is disabled.
func (g *Gateway) hedgeDelay() time.Duration {
	min := g.cfg.HedgeDelayMin
	if min < 0 {
		return 0
	}
	if min == 0 {
		min = 250 * time.Millisecond
	}
	if p := g.tracker.p99(); p > min {
		return p
	}
	return min
}
