package gateway

import (
	"fmt"
	"hash/fnv"
	"sort"
)

// ring is a consistent-hash ring over backend indices. Each backend
// owns `replicas` virtual points on a 64-bit circle; a request key is
// hashed onto the circle and walks clockwise to the first point. Two
// properties matter here:
//
//   - Stability: a key's owner depends only on the backend addresses,
//     not their order in the config, so every gateway replica and every
//     restart routes identically — which is what keeps each backend's
//     exact-key response cache hot for its shard.
//   - Locality of failure: ejecting one backend remaps only the keys it
//     owned (onto the next points clockwise); every other shard's cache
//     stays untouched.
type ring struct {
	points []ringPoint
	n      int // number of backends
}

type ringPoint struct {
	hash    uint64
	backend int
}

// defaultReplicas spreads each backend over enough virtual points that
// shard sizes stay within a few percent of even for small clusters.
const defaultReplicas = 128

func newRing(addrs []string, replicas int) *ring {
	if replicas <= 0 {
		replicas = defaultReplicas
	}
	r := &ring{
		points: make([]ringPoint, 0, len(addrs)*replicas),
		n:      len(addrs),
	}
	for i, addr := range addrs {
		for v := 0; v < replicas; v++ {
			r.points = append(r.points, ringPoint{
				hash:    hashKey(fmt.Sprintf("%s#%d", addr, v)),
				backend: i,
			})
		}
	}
	sort.Slice(r.points, func(a, b int) bool {
		if r.points[a].hash != r.points[b].hash {
			return r.points[a].hash < r.points[b].hash
		}
		return r.points[a].backend < r.points[b].backend
	})
	return r
}

func hashKey(key string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(key))
	// FNV-1a alone leaves keys that differ in a few middle characters —
	// exactly the shape of canonical request keys across a seed or
	// policy sweep — correlated on the circle, which occasionally piles
	// a whole sweep onto one shard. The splitmix64 finalizer breaks the
	// correlation (measured: ~6% of two-backend rings put ten
	// sibling-seed cells on one side; with the finalizer ~0.3%, the
	// independent-keys floor). Still deterministic in the key and
	// addresses, so restart stability is preserved.
	x := h.Sum64()
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// sequence returns all backends in preference order for key: the owner
// first, then each distinct backend in clockwise ring order. Routing
// uses the first healthy entry; failover moves to the next.
func (r *ring) sequence(key string) []int {
	if len(r.points) == 0 {
		return nil
	}
	start := sort.Search(len(r.points), func(i int) bool {
		return r.points[i].hash >= hashKey(key)
	})
	seq := make([]int, 0, r.n)
	seen := make([]bool, r.n)
	for i := 0; i < len(r.points) && len(seq) < r.n; i++ {
		p := r.points[(start+i)%len(r.points)]
		if !seen[p.backend] {
			seen[p.backend] = true
			seq = append(seq, p.backend)
		}
	}
	return seq
}

// owner returns the backend that owns key. ok is false on an empty
// ring — with runtime removal every backend can be gone, and indexing
// sequence's nil result would panic exactly when the ring drains.
func (r *ring) owner(key string) (int, bool) {
	seq := r.sequence(key)
	if len(seq) == 0 {
		return 0, false
	}
	return seq[0], true
}
