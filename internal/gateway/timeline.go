package gateway

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/url"
	"strconv"
	"sync"
	"time"

	"busaware/internal/server"
	"busaware/internal/timeline"
)

// The gateway's observability plane aggregates the backends': each
// smpsimd publishes sealed telemetry windows on its own GET
// /v1/timeline, and the gateway presents the cluster as one feed.
//
//	GET /v1/timeline            — NDJSON: every healthy backend's live
//	                              stream multiplexed, each line stamped
//	                              with the backend it came from
//	GET /v1/timeline?summary=1  — one JSON TimelineSummary folding all
//	                              backends' merged windows
//
// Stream lines are server.TimelineEvent with Backend set; seq numbers
// are per-backend (disambiguated by the backend field), and arrival
// order across backends is whatever the network delivers — consumers
// needing totals should use ?summary=1, whose merge is order-independent
// by construction (internal/timeline windows are sum-form).
//
// ?backlog and ?max behave like the backend's: backlog is passed
// through to every backend, max bounds the merged line count.

// TimelineSummary is the gateway's ?summary=1 body: the per-backend
// summaries plus their fold. Merge associativity guarantees the fold
// is independent of backend order.
type TimelineSummary struct {
	Windows  int64                    `json:"windows"`
	Dropped  int64                    `json:"dropped"`
	Backends []BackendTimelineSummary `json:"backends"`
	Summary  timeline.Window          `json:"summary"`
}

// BackendTimelineSummary is one backend's contribution.
type BackendTimelineSummary struct {
	Addr    string          `json:"addr"`
	Healthy bool            `json:"healthy"`
	Windows int64           `json:"windows"`
	Summary timeline.Window `json:"summary"`
}

func (g *Gateway) handleTimeline(w http.ResponseWriter, r *http.Request) {
	started := time.Now()
	if r.Method != http.MethodGet {
		w.Header().Set("Allow", http.MethodGet)
		g.gwError(w, started, http.StatusMethodNotAllowed, "GET only")
		return
	}
	q := r.URL.Query()
	if q.Get("summary") != "" {
		g.timelineSummary(w, started)
		return
	}
	g.timelineStream(w, r, started, q)
}

// timelineSummary fans ?summary=1 out to every backend concurrently
// and folds the answers. Unreachable backends contribute nothing (and
// are reported unhealthy); one live backend suffices for a 200.
func (g *Gateway) timelineSummary(w http.ResponseWriter, started time.Time) {
	backends := g.cluster.Load().backends
	per := make([]BackendTimelineSummary, len(backends))
	var wg sync.WaitGroup
	for i, b := range backends {
		per[i] = BackendTimelineSummary{Addr: b.addr}
		if !b.healthy.Load() {
			continue
		}
		wg.Add(1)
		go func(i int, b *backend) {
			defer wg.Done()
			resp, err := g.client.Get(b.addr + "/v1/timeline?summary=1")
			if err != nil {
				return
			}
			defer resp.Body.Close()
			var sum server.TimelineSummary
			if resp.StatusCode != http.StatusOK ||
				json.NewDecoder(resp.Body).Decode(&sum) != nil {
				return
			}
			per[i] = BackendTimelineSummary{
				Addr:    b.addr,
				Healthy: true,
				Windows: sum.Windows,
				Summary: sum.Summary,
			}
		}(i, b)
	}
	wg.Wait()

	out := TimelineSummary{Backends: per}
	healthy := 0
	for _, p := range per {
		if !p.Healthy {
			continue
		}
		healthy++
		out.Windows += p.Windows
		out.Summary = timeline.Merge(out.Summary, p.Summary)
	}
	if healthy == 0 {
		g.gwError(w, started, http.StatusBadGateway, "no backend answered /v1/timeline")
		return
	}
	body, _ := json.Marshal(out)
	body = append(body, '\n')
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("Content-Length", strconv.Itoa(len(body)))
	w.WriteHeader(http.StatusOK)
	w.Write(body)
	g.metrics.observe(http.StatusOK)
}

// timelineStream multiplexes every healthy backend's NDJSON stream
// into one, stamping each event with its origin. A backend dropping
// its stream mid-flight just stops contributing; the merged stream
// ends when the client goes away, ?max is reached, or every backend
// stream has closed.
func (g *Gateway) timelineStream(w http.ResponseWriter, r *http.Request, started time.Time, q url.Values) {
	max, err := countParam(q.Get("max"), 0)
	if err != nil {
		g.gwError(w, started, http.StatusBadRequest, fmt.Sprintf("bad max: %v", err))
		return
	}
	path := "/v1/timeline"
	if bl := q.Get("backlog"); bl != "" {
		if _, err := countParam(bl, 0); err != nil {
			g.gwError(w, started, http.StatusBadRequest, fmt.Sprintf("bad backlog: %v", err))
			return
		}
		path += "?backlog=" + bl
	}

	ctx, cancel := context.WithCancel(r.Context())
	defer cancel()
	events := make(chan server.TimelineEvent, 64)
	var wg sync.WaitGroup
	streams := 0
	for _, b := range g.cluster.Load().backends {
		if !b.healthy.Load() {
			continue
		}
		streams++
		wg.Add(1)
		go func(b *backend) {
			defer wg.Done()
			g.relayTimeline(ctx, b, path, events)
		}(b)
	}
	if streams == 0 {
		g.gwError(w, started, http.StatusBadGateway, "no healthy backends")
		return
	}
	done := make(chan struct{})
	go func() {
		wg.Wait()
		close(done)
	}()

	w.Header().Set("Content-Type", "application/x-ndjson")
	w.Header().Set("Cache-Control", "no-store")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	if flusher != nil {
		flusher.Flush()
	}
	enc := json.NewEncoder(w)
	sent := 0
	defer g.metrics.observe(http.StatusOK)
	for {
		select {
		case <-ctx.Done():
			return
		case <-done:
			// Drain events already relayed, then end the stream.
			for {
				select {
				case ev := <-events:
					if !g.emitTimeline(enc, flusher, ev, &sent, max) {
						return
					}
				default:
					return
				}
			}
		case ev := <-events:
			if !g.emitTimeline(enc, flusher, ev, &sent, max) {
				return
			}
		}
	}
}

// emitTimeline writes one merged NDJSON line; false ends the stream.
func (g *Gateway) emitTimeline(enc *json.Encoder, flusher http.Flusher, ev server.TimelineEvent, sent *int, max int) bool {
	if err := enc.Encode(ev); err != nil {
		return false
	}
	if flusher != nil {
		flusher.Flush()
	}
	*sent++
	return max == 0 || *sent < max
}

// relayTimeline reads one backend's NDJSON stream, stamping each event
// with the backend address and forwarding it until the stream or the
// client ends. Lines that fail to decode are skipped — a half-written
// line at disconnect must not poison the merged stream.
func (g *Gateway) relayTimeline(ctx context.Context, b *backend, path string, events chan<- server.TimelineEvent) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, b.addr+path, nil)
	if err != nil {
		return
	}
	resp, err := g.client.Do(req)
	if err != nil {
		return
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		var ev server.TimelineEvent
		if json.Unmarshal(line, &ev) != nil {
			continue
		}
		ev.Backend = b.addr
		select {
		case events <- ev:
		case <-ctx.Done():
			return
		}
	}
}

// countParam parses a non-negative integer query parameter, mirroring
// the backend's discipline.
func countParam(s string, def int) (int, error) {
	if s == "" {
		return def, nil
	}
	v, err := strconv.Atoi(s)
	if err != nil || v < 0 {
		return 0, fmt.Errorf("want a non-negative integer, got %q", s)
	}
	return v, nil
}
