package gateway

import (
	"testing"
)

func testBudget(ratio float64, floor int) (*retryBudget, *fakeClock) {
	rb := newRetryBudget(ratio, floor)
	clk := newFakeClock()
	rb.now = clk.now
	return rb, clk
}

func TestBudgetFloorAllowsRetriesWhenQuiet(t *testing.T) {
	rb, _ := testBudget(0.5, 4)
	// No requests at all: the floor alone funds retries.
	for i := 0; i < 4; i++ {
		if !rb.TryRetry(1) {
			t.Fatalf("retry %d refused under floor 4", i+1)
		}
	}
	if rb.TryRetry(1) {
		t.Fatal("retry beyond the floor granted with zero request volume")
	}
	if got := rb.exhaustedTotal.Load(); got != 1 {
		t.Fatalf("exhaustedTotal = %d, want 1", got)
	}
}

func TestBudgetScalesWithRequestVolume(t *testing.T) {
	rb, _ := testBudget(0.5, 0)
	rb.OnRequest(100)
	// ratio 0.5 × 100 requests = 50 retries allowed this window.
	granted := 0
	for rb.TryRetry(1) {
		granted++
		if granted > 100 {
			t.Fatal("budget never exhausted")
		}
	}
	if granted != 50 {
		t.Fatalf("granted %d retries for 100 requests at ratio 0.5, want 50", granted)
	}
}

func TestBudgetAllOrNothing(t *testing.T) {
	rb, _ := testBudget(0.5, 0)
	rb.OnRequest(10) // allowance 5
	if rb.TryRetry(6) {
		t.Fatal("batch larger than the remaining allowance granted")
	}
	if !rb.TryRetry(5) {
		t.Fatal("batch exactly the allowance refused")
	}
	if rb.TryRetry(1) {
		t.Fatal("retry granted after the allowance was spent")
	}
}

func TestBudgetWindowRotation(t *testing.T) {
	rb, clk := testBudget(0.5, 0)
	rb.OnRequest(100)
	for i := 0; i < 50; i++ {
		if !rb.TryRetry(1) {
			t.Fatalf("retry %d refused", i+1)
		}
	}
	// One window later the traffic is in prev and still counts; the
	// retries spent there also still count, so nothing new is granted.
	clk.advance(budgetWindow)
	if rb.TryRetry(1) {
		t.Fatal("rotation forgot spent retries while remembering requests")
	}
	// Two full windows later both buckets have aged out entirely; with
	// floor 0 and no fresh traffic there is no budget.
	clk.advance(2 * budgetWindow)
	if rb.TryRetry(1) {
		t.Fatal("retry granted with no recent request volume and floor 0")
	}
	// Fresh traffic refills it.
	rb.OnRequest(10)
	if !rb.TryRetry(1) {
		t.Fatal("retry refused after fresh request volume")
	}
}

func TestBudgetUnlimited(t *testing.T) {
	rb, _ := testBudget(-1, 0)
	for i := 0; i < 1000; i++ {
		if !rb.TryRetry(1) {
			t.Fatal("negative ratio must never refuse")
		}
	}
	if rb.exhaustedTotal.Load() != 0 {
		t.Fatal("unlimited budget counted exhaustions")
	}
}

func TestBudgetLifetimeCounters(t *testing.T) {
	rb, _ := testBudget(0.5, 2)
	rb.OnRequest(4)
	rb.TryRetry(2) // granted (0.5*4=2 + floor 2 = 4 allowed)
	rb.TryRetry(2) // granted
	rb.TryRetry(2) // refused
	if got := rb.requestsTotal.Load(); got != 4 {
		t.Errorf("requestsTotal = %d, want 4", got)
	}
	if got := rb.retriesTotal.Load(); got != 4 {
		t.Errorf("retriesTotal = %d, want 4", got)
	}
	if got := rb.exhaustedTotal.Load(); got != 2 {
		t.Errorf("exhaustedTotal = %d, want 2", got)
	}
}

func TestBudgetIdleGapResets(t *testing.T) {
	rb, clk := testBudget(0.5, 0)
	rb.OnRequest(100)
	clk.advance(25 * budgetWindow) // long idle: everything is stale
	if rb.TryRetry(1) {
		t.Fatal("stale request volume funded a retry after a long idle gap")
	}
}
