// Package gateway is the horizontal scale-out layer over smpsimd: an
// HTTP front end that shards /v1/simulate and /v1/sweep requests
// across N backends by consistent hash of the canonical request key.
// Sharding by the same key the backends' response caches use means
// every repetition of a cell lands on the shard that already computed
// it, so per-backend caches stay hot instead of each backend slowly
// accumulating a lukewarm copy of the whole working set.
//
// The gateway treats the network between it and the backends as
// hostile, not merely unreliable:
//
//   - A per-backend circuit breaker opens on consecutive failures or a
//     high recent error rate and recovers through half-open trials;
//     hard evidence of a dead process (dial refused) still ejects the
//     backend immediately, and a jittered, backoff-aware /healthz
//     prober re-admits it (breaker.go, probe.go).
//   - Failover, 429 waits and hedges all draw on a global retry budget
//     so retries cannot amplify an overload; once the budget is spent,
//     requests fail fast with 503 and an "X-Retry-Budget: exhausted"
//     marker (budget.go).
//   - A straggling attempt is hedged to the next ring node after a
//     p99-based delay; the first response wins, the loser is canceled,
//     and when both complete their bytes are cross-checked (hedge.go).
//   - Response bodies carry FNV-64a integrity digests end to end; the
//     gateway verifies every backend body and treats corrupt bytes as
//     a retryable failure, never returning them to the client.
//   - Each backend attempt is bounded by AttemptTimeout and stamped
//     with an absolute X-Deadline-Ms so backends can shed work whose
//     requester has already given up.
//
// Requests the gateway can prove invalid (bad spec, unknown policy)
// are rejected locally without spending a backend round trip.
//
// Endpoints mirror smpsimd: POST /v1/simulate, POST /v1/sweep,
// GET /v1/timeline (backend telemetry streams multiplexed, summaries
// merged — see timeline.go), GET /healthz, GET /metrics (health,
// breaker, budget, hedge and digest counters under the smpgw_
// namespace).
package gateway

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"busaware/internal/digest"
	"busaware/internal/faults"
	"busaware/internal/server"
)

// Config wires a Gateway. Backends is required; everything else has a
// serviceable zero value.
type Config struct {
	// Backends are the smpsimd base URLs, e.g.
	// "http://127.0.0.1:8081". At least one is required.
	Backends []string
	// Replicas is the virtual-node count per backend on the hash ring
	// (0 = 128).
	Replicas int
	// ProbeInterval spaces the /healthz probes; the actual delay is
	// jittered in [0.5, 1.5) × interval (0 = 2s, negative = probing
	// disabled; tests drive probes explicitly).
	ProbeInterval time.Duration
	// ProbeTimeout bounds one probe round trip (0 = 1s).
	ProbeTimeout time.Duration
	// ProbeFailures is how many consecutive probe failures eject a
	// backend (0 = 2). Re-admission takes a single success; a backend
	// that keeps failing is re-probed with exponential backoff.
	ProbeFailures int
	// Retry429 is how many times a 429 from the shard owner is retried
	// (honoring Retry-After) before being passed to the client (0 = 2,
	// negative = no retries).
	Retry429 int
	// MaxRetryAfter caps how long one Retry-After hint is honored
	// (0 = 5s).
	MaxRetryAfter time.Duration
	// BreakerFailures is the consecutive-failure run that opens a
	// backend's circuit breaker (0 = 5, negative = breaker disabled).
	BreakerFailures int
	// BreakerCooldown is the open → half-open trial delay (0 = 2s).
	BreakerCooldown time.Duration
	// RetryBudgetRatio caps extra backend attempts (failover, 429
	// retries, hedges) at ratio × recent request volume (0 = 0.5,
	// negative = unlimited).
	RetryBudgetRatio float64
	// RetryBudgetFloor is the minimum retry allowance per accounting
	// window, so a quiet gateway can still retry (0 = 16).
	RetryBudgetFloor int
	// AttemptTimeout bounds one backend attempt — and serves as the
	// idle watchdog on sweep streams — so a blackholed connection
	// cannot pin a request forever (0 = 15s, negative = unbounded).
	AttemptTimeout time.Duration
	// HedgeDelayMin floors the hedge delay; the effective delay is
	// max(HedgeDelayMin, tracked p99) (0 = 250ms, negative = hedging
	// disabled).
	HedgeDelayMin time.Duration
	// Client overrides the proxy HTTP client (nil = keep-alive pooled
	// transport, no global timeout — attempts carry their own).
	Client *http.Client
	// Sleep substitutes the retry clock, so tests assert backoff
	// without real sleeping.
	Sleep faults.Sleeper
}

// backend is the gateway's view of one smpsimd process.
type backend struct {
	addr string

	healthy  atomic.Bool
	inflight atomic.Int64
	breaker  *breaker

	// shed counts 429s received from this backend; failovers counts
	// requests moved off it after failures.
	shed      atomic.Uint64
	failovers atomic.Uint64

	// probeFails/probeSkip are touched only by the prober goroutine.
	probeFails int
	probeSkip  int
}

// cluster is one immutable snapshot of the routing membership: the
// consistent-hash ring and the backend structs it indexes, always in
// step with each other. Readers load the current snapshot atomically;
// membership changes build a new one under clusterMu and swap it in,
// so every in-flight request keeps a coherent ring view while the
// cluster resizes. Backend structs are reused across snapshots (same
// address ⇒ same pointer), so breaker state, inflight gauges and
// probe bookkeeping survive rebuilds and in-flight attempts against a
// just-removed backend account correctly.
type membership struct {
	ring     *ring
	backends []*backend
}

// Gateway shards requests across backends. Create with New, serve via
// http.Server, Close to stop the prober. Membership is elastic:
// AddBackend/RemoveBackend (or POST /admin/backends) resize the ring
// at runtime.
type Gateway struct {
	cfg     Config
	client  *http.Client
	probec  *http.Client
	sleep   faults.Sleeper
	metrics *gwMetrics
	budget  *retryBudget
	tracker *latencyTracker
	mux     *http.ServeMux

	cluster   atomic.Pointer[membership]
	clusterMu sync.Mutex // serializes membership changes

	stop chan struct{}
	wg   sync.WaitGroup
}

// New builds a Gateway over cfg.Backends and starts the health prober
// (unless ProbeInterval < 0). Backends start healthy — optimism lets
// the gateway serve before the first probe round; a dead backend is
// ejected by its first failed probe or dial error.
func New(cfg Config) (*Gateway, error) {
	if len(cfg.Backends) == 0 {
		return nil, fmt.Errorf("gateway: no backends")
	}
	if cfg.ProbeTimeout <= 0 {
		cfg.ProbeTimeout = time.Second
	}
	if cfg.ProbeFailures <= 0 {
		cfg.ProbeFailures = 2
	}
	if cfg.Retry429 == 0 {
		cfg.Retry429 = 2
	}
	if cfg.MaxRetryAfter <= 0 {
		cfg.MaxRetryAfter = 5 * time.Second
	}
	if cfg.BreakerFailures == 0 {
		cfg.BreakerFailures = 5
	}
	if cfg.BreakerCooldown <= 0 {
		cfg.BreakerCooldown = 2 * time.Second
	}
	if cfg.RetryBudgetRatio == 0 {
		cfg.RetryBudgetRatio = 0.5
	}
	if cfg.RetryBudgetFloor <= 0 {
		cfg.RetryBudgetFloor = 16
	}
	if cfg.AttemptTimeout == 0 {
		cfg.AttemptTimeout = 15 * time.Second
	}
	client := cfg.Client
	if client == nil {
		client = &http.Client{
			Transport: &http.Transport{
				MaxIdleConns:        256,
				MaxIdleConnsPerHost: 256,
			},
		}
	}
	g := &Gateway{
		cfg:     cfg,
		client:  client,
		probec:  &http.Client{Timeout: cfg.ProbeTimeout},
		sleep:   cfg.Sleep,
		metrics: newGWMetrics(),
		budget:  newRetryBudget(cfg.RetryBudgetRatio, cfg.RetryBudgetFloor),
		tracker: &latencyTracker{},
		mux:     http.NewServeMux(),
		stop:    make(chan struct{}),
	}
	backends := make([]*backend, len(cfg.Backends))
	for i, addr := range cfg.Backends {
		backends[i] = g.newBackend(addr)
	}
	g.cluster.Store(&membership{ring: newRing(cfg.Backends, cfg.Replicas), backends: backends})
	g.mux.HandleFunc("/v1/simulate", g.handleSimulate)
	g.mux.HandleFunc("/v1/sweep", g.handleSweep)
	g.mux.HandleFunc("/v1/timeline", g.handleTimeline)
	g.mux.HandleFunc("/healthz", g.handleHealthz)
	g.mux.HandleFunc("/metrics", g.handleMetrics)
	g.mux.HandleFunc("/admin/backends", g.handleAdminBackends)
	interval := cfg.ProbeInterval
	if interval == 0 {
		interval = 2 * time.Second
	}
	if interval > 0 {
		g.wg.Add(1)
		go g.probeLoop(interval)
	}
	return g, nil
}

// ServeHTTP dispatches to the gateway endpoints.
func (g *Gateway) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	g.mux.ServeHTTP(w, r)
}

// Close stops the health prober. In-flight proxied requests are not
// interrupted.
func (g *Gateway) Close() {
	close(g.stop)
	g.wg.Wait()
}

// newBackend builds one backend struct in its starting state (healthy
// — optimism lets it serve before the first probe round).
func (g *Gateway) newBackend(addr string) *backend {
	b := &backend{
		addr:    addr,
		breaker: newBreaker(g.cfg.BreakerFailures, g.cfg.BreakerCooldown),
	}
	b.healthy.Store(true)
	return b
}

// route returns key's backends in preference order: healthy backends
// whose breaker is ready, then healthy-but-open-breaker ones, then
// the ejected tail. The tail is kept so a request can still be
// attempted when every backend looks bad (the cluster may be healthier
// than the gateway's last look). Empty when every backend has been
// removed from the ring.
func (g *Gateway) route(key string) []*backend {
	c := g.cluster.Load()
	seq := c.ring.sequence(key)
	ordered := make([]*backend, 0, len(seq))
	for _, i := range seq {
		b := c.backends[i]
		if b.healthy.Load() && b.breaker.Ready() {
			ordered = append(ordered, b)
		}
	}
	for _, i := range seq {
		b := c.backends[i]
		if b.healthy.Load() && !b.breaker.Ready() {
			ordered = append(ordered, b)
		}
	}
	for _, i := range seq {
		if !c.backends[i].healthy.Load() {
			ordered = append(ordered, c.backends[i])
		}
	}
	return ordered
}

// gwError writes the JSON error envelope (same shape as smpsimd's).
func (g *Gateway) gwError(w http.ResponseWriter, started time.Time, code int, msg string) {
	body, _ := json.Marshal(struct {
		Error string `json:"error"`
	}{msg})
	body = append(body, '\n')
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("Content-Length", strconv.Itoa(len(body)))
	w.WriteHeader(code)
	w.Write(body)
	g.metrics.observe(code)
}

// maxBodyBytes mirrors the backend's /v1/simulate body cap.
const maxBodyBytes = 1 << 20

// errBudgetExhausted distinguishes fail-fast budget refusals from
// ordinary backend unreachability.
var errBudgetExhausted = errors.New("retry budget exhausted")

// errDigestMismatch marks a transport-valid response whose bytes
// failed integrity verification.
var errDigestMismatch = errors.New("response digest mismatch")

func (g *Gateway) handleSimulate(w http.ResponseWriter, r *http.Request) {
	started := time.Now()
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		g.gwError(w, started, http.StatusMethodNotAllowed, "POST only")
		return
	}
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	if err != nil {
		g.gwError(w, started, http.StatusBadRequest, fmt.Sprintf("read body: %v", err))
		return
	}
	key, err := requestKey(body)
	if err != nil {
		// Invalid cell: reject here, spend no backend round trip.
		g.gwError(w, started, http.StatusBadRequest, err.Error())
		return
	}
	deadline, err := server.ParseDeadline(r.Header)
	if err != nil {
		g.gwError(w, started, http.StatusBadRequest, err.Error())
		return
	}

	resp, b, err := g.forward(r, g.route(key), proxyCall{
		path: "/v1/simulate", body: body, deadline: deadline,
	})
	if err != nil {
		if errors.Is(err, errBudgetExhausted) {
			w.Header().Set("X-Retry-Budget", "exhausted")
			g.gwError(w, started, http.StatusServiceUnavailable, err.Error())
			return
		}
		g.gwError(w, started, http.StatusBadGateway, err.Error())
		return
	}
	w.Header().Set("Content-Type", resp.Header.Get("Content-Type"))
	for _, h := range []string{"X-Cache", "Retry-After", digest.Header} {
		if v := resp.Header.Get(h); v != "" {
			w.Header().Set(h, v)
		}
	}
	w.Header().Set("X-Backend", resp.Request.URL.Host)
	w.Header().Set("Content-Length", strconv.Itoa(len(b)))
	w.WriteHeader(resp.StatusCode)
	w.Write(b)
	g.metrics.observe(resp.StatusCode)
}

// requestKey decodes one cell body and returns its canonical key,
// using exactly the backend's decoding discipline so the gateway never
// forwards a request the backend would reject — nor rejects one it
// would accept.
func requestKey(body []byte) (string, error) {
	var req server.Request
	dec := json.NewDecoder(bytes.NewReader(body))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		return "", fmt.Errorf("bad request body: %v", err)
	}
	return server.CanonicalKey(req)
}

// proxyCall is one client request as the proxy layer sees it.
type proxyCall struct {
	path string
	body []byte
	// deadline is the client-supplied absolute deadline (zero = none);
	// attempts stamp min(deadline, attempt timeout) downstream.
	deadline time.Time
}

// attemptResult is one backend attempt's outcome.
type attemptResult struct {
	resp  *http.Response
	body  []byte
	err   error
	b     *backend
	hedge bool
}

// usable reports whether the attempt produced a response the client
// should see (success, client error, deadline pass-through, or a 429
// that survived its retries) rather than one worth retrying elsewhere.
func (a attemptResult) usable() bool {
	return a.err == nil && !retryableStatus(a.resp.StatusCode)
}

// retryableStatus marks backend responses that another backend might
// answer better: internal errors and (possibly injected) gateway-class
// 5xx. 504 passes through — the deadline is the client's, and a retry
// would bust it anyway.
func retryableStatus(code int) bool {
	return code == http.StatusInternalServerError ||
		code == http.StatusBadGateway ||
		code == http.StatusServiceUnavailable
}

// isDialError reports whether err is a failure to even open a
// connection — the hard evidence of a dead process that justifies
// immediate ejection, as opposed to mid-stream failures that feed the
// breaker.
func isDialError(err error) bool {
	var op *net.OpError
	return errors.As(err, &op) && op.Op == "dial"
}

// forward proxies one call to the preferred backend with the full
// resilience ladder: per-attempt timeout and integrity verification,
// circuit-breaker admission, a p99-delay hedge to the next ring node,
// and budget-gated failover. The first usable response wins; its body
// is fully read and closed. Hedge losers are canceled, and if a loser
// completes anyway its bytes are cross-checked against the winner.
func (g *Gateway) forward(r *http.Request, route []*backend, call proxyCall) (*http.Response, []byte, error) {
	if len(route) == 0 {
		return nil, nil, fmt.Errorf("no backends")
	}
	g.budget.OnRequest(1)
	ctx := r.Context()

	var cancels []context.CancelFunc
	defer func() {
		for _, c := range cancels {
			c()
		}
	}()
	resc := make(chan attemptResult, len(route)+1)
	outstanding := 0
	hedged := false

	launch := func(b *backend, hedge bool) {
		actx := ctx
		if at := g.cfg.AttemptTimeout; at > 0 {
			var cancel context.CancelFunc
			actx, cancel = context.WithTimeout(ctx, at)
			cancels = append(cancels, cancel)
		}
		outstanding++
		go func() {
			resp, rb, err := g.attempt(actx, ctx, b, call)
			resc <- attemptResult{resp: resp, body: rb, err: err, b: b, hedge: hedge}
		}()
	}
	// pick hands out untried candidates in route order, consuming the
	// breaker's permission for each.
	next := 0
	pick := func() *backend {
		for next < len(route) {
			b := route[next]
			next++
			if b.breaker.Allow() {
				return b
			}
		}
		return nil
	}
	primary := pick()
	if primary == nil {
		// Every breaker refused: attempt the ring owner anyway rather
		// than failing a request no backend was even offered.
		primary = route[0]
		next = 1
	}
	launch(primary, false)

	var hedgec <-chan time.Time
	if d := g.hedgeDelay(); d > 0 && len(route) > 1 {
		t := time.NewTimer(d)
		defer t.Stop()
		hedgec = t.C
	}

	var last attemptResult
	for outstanding > 0 {
		select {
		case <-ctx.Done():
			return nil, nil, ctx.Err()
		case <-hedgec:
			hedgec = nil
			if b := pick(); b != nil && g.budget.TryRetry(1) {
				hedged = true
				g.metrics.hedgesLaunched.Add(1)
				launch(b, true)
			}
		case res := <-resc:
			outstanding--
			if res.usable() {
				if hedged {
					if res.hedge {
						g.metrics.hedgeWins.Add(1)
					} else {
						g.metrics.hedgePrimaryWins.Add(1)
					}
				}
				if outstanding > 0 {
					g.reapLosers(resc, outstanding, res)
				}
				return res.resp, res.body, nil
			}
			last = res
			if outstanding > 0 {
				continue // the other in-flight attempt may still win
			}
			b := pick()
			if b == nil {
				break
			}
			if !g.budget.TryRetry(1) {
				return nil, nil, fmt.Errorf("%w (last backend error: %v)", errBudgetExhausted, lastErrOf(last))
			}
			res.b.failovers.Add(1)
			g.metrics.failovers.Add(1)
			launch(b, false)
		}
	}
	// No usable response and no candidates left. A definitive HTTP
	// response (a retryable 5xx every hop agreed on) passes through;
	// transport-level death surfaces as 502.
	if last.err == nil && last.resp != nil {
		return last.resp, last.body, nil
	}
	return nil, nil, fmt.Errorf("backend unreachable: %v", last.err)
}

// lastErrOf renders the failure reason of an unusable attempt.
func lastErrOf(a attemptResult) string {
	if a.err != nil {
		return a.err.Error()
	}
	if a.resp != nil {
		return fmt.Sprintf("backend status %d", a.resp.StatusCode)
	}
	return "no attempt completed"
}

// reapLosers drains the canceled hedge/failover losers in the
// background. If a loser completed with a success anyway, its bytes
// are cross-checked against the winner — byte-identity between hedge
// and original is an invariant (the backends replay cached bodies
// byte-identically), so a divergence means corruption slipped past a
// digest or a backend broke the determinism contract.
func (g *Gateway) reapLosers(resc <-chan attemptResult, n int, winner attemptResult) {
	go func() {
		for i := 0; i < n; i++ {
			res := <-resc
			if res.err != nil || res.resp.StatusCode != http.StatusOK {
				continue
			}
			if winner.resp.StatusCode == http.StatusOK && !bytes.Equal(res.body, winner.body) {
				g.metrics.hedgeMismatches.Add(1)
			}
		}
	}()
}

// attempt runs one backend attempt to completion: the round trip, the
// same-shard 429 retry loop, integrity verification, and breaker and
// latency accounting. parent is the client's context — when it is the
// reason everything is failing, the backend is not blamed.
func (g *Gateway) attempt(ctx, parent context.Context, b *backend, call proxyCall) (*http.Response, []byte, error) {
	retries := g.cfg.Retry429
	for {
		started := time.Now()
		resp, rb, err := g.roundTrip(ctx, b, call)
		if err != nil {
			if parent.Err() != nil {
				// The client went away, not the backend; don't charge
				// the breaker on its account.
				return nil, nil, err
			}
			b.breaker.OnFailure()
			if isDialError(err) {
				// Nothing is listening: eject now, the prober will
				// re-admit it.
				b.healthy.Store(false)
			}
			return nil, nil, err
		}
		if resp.StatusCode == http.StatusTooManyRequests {
			b.shed.Add(1)
			if retries > 0 && g.budget.TryRetry(1) {
				retries--
				g.metrics.retries.Add(1)
				g.sleep.Sleep(g.retryAfter(resp))
				continue
			}
			// Reachable, just saturated: not a breaker failure.
			b.breaker.OnSuccess()
			return resp, rb, nil
		}
		if resp.StatusCode == http.StatusOK {
			if !digest.Verify(resp.Header.Get(digest.Header), rb) {
				g.metrics.digestMismatches.Add(1)
				b.breaker.OnFailure()
				return nil, nil, fmt.Errorf("%s: %w", b.addr, errDigestMismatch)
			}
			g.tracker.record(time.Since(started))
		}
		if retryableStatus(resp.StatusCode) {
			b.breaker.OnFailure()
		} else {
			b.breaker.OnSuccess()
		}
		return resp, rb, nil
	}
}

// roundTrip performs one proxied POST, reading the whole response. The
// downstream deadline header is min(client deadline, attempt timeout)
// so backends can shed work whose requester has already given up.
func (g *Gateway) roundTrip(ctx context.Context, b *backend, call proxyCall) (*http.Response, []byte, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, b.addr+call.path, bytes.NewReader(call.body))
	if err != nil {
		return nil, nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	// Disable net/http's transparent replay of requests that die on
	// reused connections: every retry must flow through the budget.
	req.GetBody = nil
	dl := call.deadline
	if cd, ok := ctx.Deadline(); ok && (dl.IsZero() || cd.Before(dl)) {
		dl = cd
	}
	if !dl.IsZero() {
		req.Header.Set(server.DeadlineHeader, strconv.FormatInt(dl.UnixMilli(), 10))
	}
	b.inflight.Add(1)
	resp, err := g.client.Do(req)
	if err != nil {
		b.inflight.Add(-1)
		return nil, nil, err
	}
	rb, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	b.inflight.Add(-1)
	if err != nil {
		return nil, nil, err
	}
	return resp, rb, nil
}

// retryAfter extracts the backend's backoff hint, defaulting to 1s and
// capping at MaxRetryAfter.
func (g *Gateway) retryAfter(resp *http.Response) time.Duration {
	d := time.Second
	if secs, err := strconv.Atoi(resp.Header.Get("Retry-After")); err == nil && secs > 0 {
		d = time.Duration(secs) * time.Second
	}
	if d > g.cfg.MaxRetryAfter {
		d = g.cfg.MaxRetryAfter
	}
	return d
}

// Healthy reports how many backends are currently admitted.
func (g *Gateway) Healthy() int {
	n := 0
	for _, b := range g.cluster.Load().backends {
		if b.healthy.Load() {
			n++
		}
	}
	return n
}

func (g *Gateway) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		w.Header().Set("Allow", http.MethodGet)
		http.Error(w, "GET only", http.StatusMethodNotAllowed)
		return
	}
	type backendHealth struct {
		Addr      string `json:"addr"`
		Healthy   bool   `json:"healthy"`
		Breaker   string `json:"breaker"`
		Inflight  int64  `json:"inflight"`
		Shed      uint64 `json:"shed"`
		Failovers uint64 `json:"failovers"`
	}
	out := struct {
		Status   string          `json:"status"`
		Backends []backendHealth `json:"backends"`
	}{Status: "ok"}
	for _, b := range g.cluster.Load().backends {
		out.Backends = append(out.Backends, backendHealth{
			Addr:      b.addr,
			Healthy:   b.healthy.Load(),
			Breaker:   breakerStateName(b.breaker.State()),
			Inflight:  b.inflight.Load(),
			Shed:      b.shed.Load(),
			Failovers: b.failovers.Load(),
		})
	}
	if g.Healthy() == 0 {
		out.Status = "degraded"
	}
	body, _ := json.Marshal(out)
	body = append(body, '\n')
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	w.Write(body)
}

// breakerStateName renders a breaker state for humans.
func breakerStateName(s int) string {
	switch s {
	case breakerOpen:
		return "open"
	case breakerHalfOpen:
		return "half-open"
	}
	return "closed"
}

func (g *Gateway) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		w.Header().Set("Allow", http.MethodGet)
		http.Error(w, "GET only", http.StatusMethodNotAllowed)
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	g.metrics.write(w, g.cluster.Load().backends, g.budget)
}
