// Package gateway is the horizontal scale-out layer over smpsimd: an
// HTTP front end that shards /v1/simulate and /v1/sweep requests
// across N backends by consistent hash of the canonical request key.
// Sharding by the same key the backends' response caches use means
// every repetition of a cell lands on the shard that already computed
// it, so per-backend caches stay hot instead of each backend slowly
// accumulating a lukewarm copy of the whole working set.
//
// The gateway treats backends as unreliable: a periodic /healthz probe
// ejects backends that stop answering and re-admits them when they
// recover; a connection error during proxying ejects the backend
// immediately and fails the request over to the next node on the ring
// (once); and a 429 from a backend is retried after honoring its
// Retry-After hint before the backpressure is passed through to the
// client. Requests the gateway can prove invalid (bad spec, unknown
// policy) are rejected locally without spending a backend round trip.
//
// Endpoints mirror smpsimd: POST /v1/simulate, POST /v1/sweep,
// GET /v1/timeline (backend telemetry streams multiplexed, summaries
// merged — see timeline.go), GET /healthz, GET /metrics (per-backend
// health/inflight/shed/failover gauges under the smpgw_ namespace).
package gateway

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"busaware/internal/faults"
	"busaware/internal/server"
)

// Config wires a Gateway. Backends is required; everything else has a
// serviceable zero value.
type Config struct {
	// Backends are the smpsimd base URLs, e.g.
	// "http://127.0.0.1:8081". At least one is required.
	Backends []string
	// Replicas is the virtual-node count per backend on the hash ring
	// (0 = 128).
	Replicas int
	// ProbeInterval spaces the /healthz probes (0 = 2s, negative =
	// probing disabled; tests drive probes explicitly).
	ProbeInterval time.Duration
	// ProbeTimeout bounds one probe round trip (0 = 1s).
	ProbeTimeout time.Duration
	// ProbeFailures is how many consecutive probe failures eject a
	// backend (0 = 2). Re-admission takes a single success.
	ProbeFailures int
	// Retry429 is how many times a 429 from the shard owner is retried
	// (honoring Retry-After) before being passed to the client (0 = 2,
	// negative = no retries).
	Retry429 int
	// MaxRetryAfter caps how long one Retry-After hint is honored
	// (0 = 5s).
	MaxRetryAfter time.Duration
	// Client overrides the proxy HTTP client (nil = keep-alive pooled
	// transport, no global timeout — backends enforce deadlines).
	Client *http.Client
	// Sleep substitutes the retry clock, so tests assert backoff
	// without real sleeping.
	Sleep faults.Sleeper
}

// backend is the gateway's view of one smpsimd process.
type backend struct {
	addr string

	healthy  atomic.Bool
	inflight atomic.Int64

	// shed counts 429s received from this backend; failovers counts
	// requests moved off it after connection errors.
	shed      atomic.Uint64
	failovers atomic.Uint64

	// probeFails is touched only by the prober goroutine.
	probeFails int
}

// Gateway shards requests across backends. Create with New, serve via
// http.Server, Close to stop the prober.
type Gateway struct {
	cfg      Config
	ring     *ring
	backends []*backend
	client   *http.Client
	probec   *http.Client
	sleep    faults.Sleeper
	metrics  *gwMetrics
	mux      *http.ServeMux

	stop chan struct{}
	wg   sync.WaitGroup
}

// New builds a Gateway over cfg.Backends and starts the health prober
// (unless ProbeInterval < 0). Backends start healthy — optimism lets
// the gateway serve before the first probe round; a dead backend is
// ejected by its first failed probe or connection error.
func New(cfg Config) (*Gateway, error) {
	if len(cfg.Backends) == 0 {
		return nil, fmt.Errorf("gateway: no backends")
	}
	if cfg.ProbeTimeout <= 0 {
		cfg.ProbeTimeout = time.Second
	}
	if cfg.ProbeFailures <= 0 {
		cfg.ProbeFailures = 2
	}
	if cfg.Retry429 == 0 {
		cfg.Retry429 = 2
	}
	if cfg.MaxRetryAfter <= 0 {
		cfg.MaxRetryAfter = 5 * time.Second
	}
	client := cfg.Client
	if client == nil {
		client = &http.Client{
			Transport: &http.Transport{
				MaxIdleConns:        256,
				MaxIdleConnsPerHost: 256,
			},
		}
	}
	g := &Gateway{
		cfg:      cfg,
		ring:     newRing(cfg.Backends, cfg.Replicas),
		backends: make([]*backend, len(cfg.Backends)),
		client:   client,
		probec:   &http.Client{Timeout: cfg.ProbeTimeout},
		sleep:    cfg.Sleep,
		metrics:  newGWMetrics(),
		mux:      http.NewServeMux(),
		stop:     make(chan struct{}),
	}
	for i, addr := range cfg.Backends {
		g.backends[i] = &backend{addr: addr}
		g.backends[i].healthy.Store(true)
	}
	g.mux.HandleFunc("/v1/simulate", g.handleSimulate)
	g.mux.HandleFunc("/v1/sweep", g.handleSweep)
	g.mux.HandleFunc("/v1/timeline", g.handleTimeline)
	g.mux.HandleFunc("/healthz", g.handleHealthz)
	g.mux.HandleFunc("/metrics", g.handleMetrics)
	interval := cfg.ProbeInterval
	if interval == 0 {
		interval = 2 * time.Second
	}
	if interval > 0 {
		g.wg.Add(1)
		go g.probeLoop(interval)
	}
	return g, nil
}

// ServeHTTP dispatches to the gateway endpoints.
func (g *Gateway) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	g.mux.ServeHTTP(w, r)
}

// Close stops the health prober. In-flight proxied requests are not
// interrupted.
func (g *Gateway) Close() {
	close(g.stop)
	g.wg.Wait()
}

// route returns key's backends in preference order, healthy ones
// first. The unhealthy tail is kept so a request can still be
// attempted when every backend is ejected (the cluster may be healthier
// than the prober's last look).
func (g *Gateway) route(key string) []*backend {
	seq := g.ring.sequence(key)
	ordered := make([]*backend, 0, len(seq))
	for _, i := range seq {
		if g.backends[i].healthy.Load() {
			ordered = append(ordered, g.backends[i])
		}
	}
	for _, i := range seq {
		if !g.backends[i].healthy.Load() {
			ordered = append(ordered, g.backends[i])
		}
	}
	return ordered
}

// gwError writes the JSON error envelope (same shape as smpsimd's).
func (g *Gateway) gwError(w http.ResponseWriter, started time.Time, code int, msg string) {
	body, _ := json.Marshal(struct {
		Error string `json:"error"`
	}{msg})
	body = append(body, '\n')
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("Content-Length", strconv.Itoa(len(body)))
	w.WriteHeader(code)
	w.Write(body)
	g.metrics.observe(code)
}

// maxBodyBytes mirrors the backend's /v1/simulate body cap.
const maxBodyBytes = 1 << 20

func (g *Gateway) handleSimulate(w http.ResponseWriter, r *http.Request) {
	started := time.Now()
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		g.gwError(w, started, http.StatusMethodNotAllowed, "POST only")
		return
	}
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	if err != nil {
		g.gwError(w, started, http.StatusBadRequest, fmt.Sprintf("read body: %v", err))
		return
	}
	key, err := requestKey(body)
	if err != nil {
		// Invalid cell: reject here, spend no backend round trip.
		g.gwError(w, started, http.StatusBadRequest, err.Error())
		return
	}

	resp, b, err := g.forward(r, g.route(key), "/v1/simulate", body)
	if err != nil {
		g.gwError(w, started, http.StatusBadGateway, err.Error())
		return
	}
	w.Header().Set("Content-Type", resp.Header.Get("Content-Type"))
	if v := resp.Header.Get("X-Cache"); v != "" {
		w.Header().Set("X-Cache", v)
	}
	if v := resp.Header.Get("Retry-After"); v != "" {
		w.Header().Set("Retry-After", v)
	}
	w.Header().Set("X-Backend", resp.Request.URL.Host)
	w.Header().Set("Content-Length", strconv.Itoa(len(b)))
	w.WriteHeader(resp.StatusCode)
	w.Write(b)
	g.metrics.observe(resp.StatusCode)
}

// requestKey decodes one cell body and returns its canonical key,
// using exactly the backend's decoding discipline so the gateway never
// forwards a request the backend would reject — nor rejects one it
// would accept.
func requestKey(body []byte) (string, error) {
	var req server.Request
	dec := json.NewDecoder(bytes.NewReader(body))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		return "", fmt.Errorf("bad request body: %v", err)
	}
	return server.CanonicalKey(req)
}

// forward proxies body to the preferred backend, handling the two
// recoverable failure classes:
//
//   - 429: the shard owner is saturated. Honor its Retry-After (capped)
//     and retry the same backend up to Retry429 times — moving the
//     request to another shard would compute a cell whose cache line
//     lives elsewhere, so waiting is the cache-preserving choice. Budget
//     exhausted, the 429 propagates to the client.
//   - connection error: eject the backend and fail over to the next
//     ring node, once. A second connection error surfaces as 502.
//
// The returned response's body is fully read and closed.
func (g *Gateway) forward(r *http.Request, route []*backend, path string, body []byte) (*http.Response, []byte, error) {
	if len(route) == 0 {
		return nil, nil, fmt.Errorf("no backends")
	}
	var lastErr error
	// Owner plus exactly one failover target.
	for hop, b := range route {
		if hop > 1 {
			break
		}
		retries := g.cfg.Retry429
		for {
			resp, rb, err := g.roundTrip(r, b, path, body)
			if err != nil {
				if r.Context().Err() != nil {
					// The client went away, not the backend; don't
					// eject on its account.
					return nil, nil, err
				}
				// Connection-level failure: eject and fail over.
				b.healthy.Store(false)
				b.failovers.Add(1)
				g.metrics.failovers.Add(1)
				lastErr = err
				break
			}
			if resp.StatusCode == http.StatusTooManyRequests {
				b.shed.Add(1)
				if retries > 0 {
					retries--
					g.metrics.retries.Add(1)
					g.sleep.Sleep(g.retryAfter(resp))
					continue
				}
			}
			return resp, rb, nil
		}
	}
	return nil, nil, fmt.Errorf("backend unreachable: %v", lastErr)
}

// roundTrip performs one proxied POST, reading the whole response.
func (g *Gateway) roundTrip(r *http.Request, b *backend, path string, body []byte) (*http.Response, []byte, error) {
	req, err := http.NewRequestWithContext(r.Context(), http.MethodPost, b.addr+path, bytes.NewReader(body))
	if err != nil {
		return nil, nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	b.inflight.Add(1)
	resp, err := g.client.Do(req)
	if err != nil {
		b.inflight.Add(-1)
		return nil, nil, err
	}
	rb, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	b.inflight.Add(-1)
	if err != nil {
		return nil, nil, err
	}
	return resp, rb, nil
}

// retryAfter extracts the backend's backoff hint, defaulting to 1s and
// capping at MaxRetryAfter.
func (g *Gateway) retryAfter(resp *http.Response) time.Duration {
	d := time.Second
	if secs, err := strconv.Atoi(resp.Header.Get("Retry-After")); err == nil && secs > 0 {
		d = time.Duration(secs) * time.Second
	}
	if d > g.cfg.MaxRetryAfter {
		d = g.cfg.MaxRetryAfter
	}
	return d
}

// probeLoop drives periodic health probes until Close.
func (g *Gateway) probeLoop(interval time.Duration) {
	defer g.wg.Done()
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-g.stop:
			return
		case <-t.C:
			g.ProbeOnce()
		}
	}
}

// ProbeOnce probes every backend's /healthz once, ejecting after
// ProbeFailures consecutive failures and re-admitting on the first
// success. Exported so tests (and operators' debug handlers) can force
// a round without waiting out the interval.
func (g *Gateway) ProbeOnce() {
	for _, b := range g.backends {
		resp, err := g.probec.Get(b.addr + "/healthz")
		ok := err == nil && resp.StatusCode == http.StatusOK
		if resp != nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}
		if ok {
			b.probeFails = 0
			b.healthy.Store(true)
			continue
		}
		b.probeFails++
		if b.probeFails >= g.cfg.ProbeFailures {
			b.healthy.Store(false)
		}
	}
}

// Healthy reports how many backends are currently admitted.
func (g *Gateway) Healthy() int {
	n := 0
	for _, b := range g.backends {
		if b.healthy.Load() {
			n++
		}
	}
	return n
}

func (g *Gateway) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		w.Header().Set("Allow", http.MethodGet)
		http.Error(w, "GET only", http.StatusMethodNotAllowed)
		return
	}
	type backendHealth struct {
		Addr      string `json:"addr"`
		Healthy   bool   `json:"healthy"`
		Inflight  int64  `json:"inflight"`
		Shed      uint64 `json:"shed"`
		Failovers uint64 `json:"failovers"`
	}
	out := struct {
		Status   string          `json:"status"`
		Backends []backendHealth `json:"backends"`
	}{Status: "ok"}
	for _, b := range g.backends {
		out.Backends = append(out.Backends, backendHealth{
			Addr:      b.addr,
			Healthy:   b.healthy.Load(),
			Inflight:  b.inflight.Load(),
			Shed:      b.shed.Load(),
			Failovers: b.failovers.Load(),
		})
	}
	if g.Healthy() == 0 {
		out.Status = "degraded"
	}
	body, _ := json.Marshal(out)
	body = append(body, '\n')
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	w.Write(body)
}

func (g *Gateway) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		w.Header().Set("Allow", http.MethodGet)
		http.Error(w, "GET only", http.StatusMethodNotAllowed)
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	g.metrics.write(w, g.backends)
}
