package gateway

import (
	"fmt"
	"testing"
)

func keys(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("v1|policy=window|seed=%d|apps=CG x2", i)
	}
	return out
}

// mustOwner unwraps owner for the non-empty rings these tests build.
func mustOwner(t *testing.T, r *ring, key string) int {
	t.Helper()
	i, ok := r.owner(key)
	if !ok {
		t.Fatalf("owner(%q) on non-empty ring reported empty", key)
	}
	return i
}

// TestRingEmpty: an empty ring (every backend removed at runtime)
// must answer owner/sequence gracefully, not panic — the regression
// that motivated owner's (int, bool) signature.
func TestRingEmpty(t *testing.T) {
	r := newRing(nil, 64)
	if seq := r.sequence("k"); seq != nil {
		t.Fatalf("sequence on empty ring = %v, want nil", seq)
	}
	if _, ok := r.owner("k"); ok {
		t.Fatal("owner on empty ring reported ok")
	}
}

// TestRingAdditionLocality: adding a backend remaps only the keys the
// newcomer takes; every other key keeps its owner — the property that
// makes runtime ring growth a warm replay instead of a cache flush.
func TestRingAdditionLocality(t *testing.T) {
	before := []string{"http://a:1", "http://b:2"}
	after := []string{"http://a:1", "http://b:2", "http://c:3"}
	rBefore := newRing(before, 128)
	rAfter := newRing(after, 128)
	taken := 0
	for _, k := range keys(500) {
		was := before[mustOwner(t, rBefore, k)]
		now := after[mustOwner(t, rAfter, k)]
		if now == "http://c:3" {
			taken++
			continue
		}
		if was != now {
			t.Fatalf("key %q moved between surviving backends %s → %s on add", k, was, now)
		}
	}
	if taken == 0 {
		t.Fatal("added backend took no keys out of 500 — ring badly unbalanced")
	}
}

// TestRingStableUnderAddressOrder: a key's owner depends on backend
// addresses, not config order — gateway replicas and restarts must
// route identically or shard caches churn.
func TestRingStableUnderAddressOrder(t *testing.T) {
	addrs := []string{"http://a:1", "http://b:2", "http://c:3"}
	perm := []string{"http://c:3", "http://a:1", "http://b:2"}
	r1 := newRing(addrs, 64)
	r2 := newRing(perm, 64)
	for _, k := range keys(200) {
		if addrs[mustOwner(t, r1, k)] != perm[mustOwner(t, r2, k)] {
			t.Fatalf("key %q routed to %s then %s under reordering",
				k, addrs[mustOwner(t, r1, k)], perm[mustOwner(t, r2, k)])
		}
	}
}

// TestRingRemovalLocality: dropping one backend remaps only the keys
// it owned; every other key keeps its owner (and its warm cache).
func TestRingRemovalLocality(t *testing.T) {
	full := []string{"http://a:1", "http://b:2", "http://c:3"}
	reduced := []string{"http://a:1", "http://b:2"}
	rFull := newRing(full, 128)
	rReduced := newRing(reduced, 128)
	moved := 0
	for _, k := range keys(500) {
		was := full[mustOwner(t, rFull, k)]
		now := reduced[mustOwner(t, rReduced, k)]
		if was == "http://c:3" {
			moved++
			continue // its keys must move somewhere
		}
		if was != now {
			t.Fatalf("key %q moved from surviving backend %s to %s", k, was, now)
		}
	}
	if moved == 0 {
		t.Fatal("backend c owned no keys out of 500 — ring badly unbalanced")
	}
}

// TestRingSequenceCoversAllBackends: the failover order visits every
// distinct backend exactly once, owner first.
func TestRingSequenceCoversAllBackends(t *testing.T) {
	addrs := []string{"http://a:1", "http://b:2", "http://c:3", "http://d:4"}
	r := newRing(addrs, 32)
	for _, k := range keys(50) {
		seq := r.sequence(k)
		if len(seq) != len(addrs) {
			t.Fatalf("sequence(%q) = %v, want %d distinct backends", k, seq, len(addrs))
		}
		seen := map[int]bool{}
		for _, b := range seq {
			if seen[b] {
				t.Fatalf("sequence(%q) repeats backend %d", k, b)
			}
			seen[b] = true
		}
		if seq[0] != mustOwner(t, r, k) {
			t.Fatalf("sequence(%q)[0] = %d, owner = %d", k, seq[0], mustOwner(t, r, k))
		}
	}
}

// TestRingBalance: with enough virtual nodes no backend owns a
// pathological share. Loose bounds — this guards against the classic
// single-point-per-backend mistake, not for perfect uniformity.
func TestRingBalance(t *testing.T) {
	addrs := []string{"http://a:1", "http://b:2", "http://c:3"}
	r := newRing(addrs, 0) // default replicas
	counts := make([]int, len(addrs))
	const n = 3000
	for _, k := range keys(n) {
		counts[mustOwner(t, r, k)]++
	}
	for i, c := range counts {
		if c < n/10 {
			t.Errorf("backend %d owns %d of %d keys — below 10%%", i, c, n)
		}
	}
}
