package gateway

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"busaware/internal/server"
	"busaware/internal/store"
)

// storeBackend is one smpsimd stack with a persistent store: its own
// tier-2 directory plus the given shared tier-3 directory.
func storeBackend(t *testing.T, shared string) *httptest.Server {
	t.Helper()
	st, err := store.Open(store.Config{Dir: t.TempDir(), SharedDir: shared})
	if err != nil {
		t.Fatal(err)
	}
	s := server.New(server.Config{Workers: 2, Store: st})
	ts := httptest.NewServer(s)
	t.Cleanup(func() {
		ts.Close()
		s.Close()
	})
	return ts
}

// backendCompleted reads how many cells a backend actually computed,
// via its public healthz.
func backendCompleted(t *testing.T, url string) int64 {
	t.Helper()
	resp, err := http.Get(url + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var h struct {
		Completed int64 `json:"completed"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	return h.Completed
}

// adminPost drives POST /admin/backends.
func adminPost(t *testing.T, gwURL, op, backend string) (*http.Response, []byte) {
	t.Helper()
	return post(t, gwURL, "/admin/backends",
		fmt.Sprintf(`{"op":%q,"backend":%q}`, op, backend))
}

// TestElasticRingWarmJoin is the elastic-ring contract end to end: a
// backend added at runtime inherits shard keys and serves them warm
// from the shared store tier instead of recomputing; removing the
// original backend keeps the whole working set answerable; an empty
// ring degrades to 502, not a panic.
func TestElasticRingWarmJoin(t *testing.T) {
	shared := t.TempDir()
	tsA := storeBackend(t, shared)
	gw, err := New(Config{Backends: []string{tsA.URL}, ProbeInterval: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer gw.Close()
	gwts := httptest.NewServer(gw)
	defer gwts.Close()

	const cells = 16
	bodies := make(map[int]string)
	for seed := 1; seed <= cells; seed++ {
		resp, body := post(t, gwts.URL, "/v1/simulate", cellBody(seed))
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("cold seed %d: %d %s", seed, resp.StatusCode, body)
		}
		bodies[seed] = string(body)
	}

	// A second backend joins at runtime, pointed at the same shared
	// store. It has computed nothing.
	tsB := storeBackend(t, shared)
	resp, body := adminPost(t, gwts.URL, "add", tsB.URL)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("admin add: %d %s", resp.StatusCode, body)
	}
	var membership struct {
		Backends []struct {
			Addr string `json:"addr"`
		} `json:"backends"`
	}
	if err := json.Unmarshal(body, &membership); err != nil {
		t.Fatal(err)
	}
	if len(membership.Backends) != 2 {
		t.Fatalf("membership after add = %+v", membership)
	}

	// Replay: every cell must come back byte-identical and warm. The
	// joiner takes ownership of some shard keys (consistent hashing)
	// and serves them from tier 3 — zero computations.
	hostB := strings.TrimPrefix(tsB.URL, "http://")
	servedByB := 0
	for seed := 1; seed <= cells; seed++ {
		resp, body := post(t, gwts.URL, "/v1/simulate", cellBody(seed))
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("warm seed %d: %d %s", seed, resp.StatusCode, body)
		}
		if string(body) != bodies[seed] {
			t.Fatalf("seed %d body changed after ring growth", seed)
		}
		if cache := resp.Header.Get("X-Cache"); !strings.HasPrefix(cache, "hit") {
			t.Fatalf("warm seed %d: X-Cache = %q, want a hit", seed, cache)
		}
		if resp.Header.Get("X-Backend") == hostB {
			servedByB++
		}
	}
	if servedByB == 0 {
		t.Fatal("joined backend took no shard keys out of 16 cells")
	}
	if got := backendCompleted(t, tsB.URL); got != 0 {
		t.Fatalf("joined backend computed %d cells, want 0 (warm join)", got)
	}

	// Remove the original backend: its keys remap onto B, which still
	// answers everything warm from the shared tier.
	resp, body = adminPost(t, gwts.URL, "remove", tsA.URL)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("admin remove: %d %s", resp.StatusCode, body)
	}
	for seed := 1; seed <= cells; seed++ {
		resp, body := post(t, gwts.URL, "/v1/simulate", cellBody(seed))
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("post-remove seed %d: %d %s", seed, resp.StatusCode, body)
		}
		if string(body) != bodies[seed] {
			t.Fatalf("seed %d body changed after removal", seed)
		}
	}
	if got := backendCompleted(t, tsB.URL); got != 0 {
		t.Fatalf("survivor computed %d cells after takeover, want 0", got)
	}

	// Drain the ring entirely: requests must degrade to 502 (the
	// empty-ring owner panic regression), and healthz must not crash.
	resp, body = adminPost(t, gwts.URL, "remove", tsB.URL)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("admin remove last: %d %s", resp.StatusCode, body)
	}
	resp, _ = post(t, gwts.URL, "/v1/simulate", cellBody(1))
	if resp.StatusCode != http.StatusBadGateway {
		t.Fatalf("empty-ring simulate = %d, want 502", resp.StatusCode)
	}
	if resp, _ := http.Get(gwts.URL + "/healthz"); resp.StatusCode != http.StatusOK {
		t.Fatalf("empty-ring healthz = %d", resp.StatusCode)
	}
}

// TestAdminBackendsValidation covers the endpoint's refusal paths and
// the GET listing.
func TestAdminBackendsValidation(t *testing.T) {
	c := newCluster(t, 2, Config{})
	addr := c.backends[0].URL

	resp, body := adminPost(t, c.gwts.URL, "add", addr)
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("duplicate add = %d %s, want 409", resp.StatusCode, body)
	}
	resp, body = adminPost(t, c.gwts.URL, "remove", "http://127.0.0.1:1")
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("remove absent = %d %s, want 409", resp.StatusCode, body)
	}
	resp, body = adminPost(t, c.gwts.URL, "add", "not a url")
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad url = %d %s, want 400", resp.StatusCode, body)
	}
	resp, body = adminPost(t, c.gwts.URL, "scale", addr)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad op = %d %s, want 400", resp.StatusCode, body)
	}

	getResp, err := http.Get(c.gwts.URL + "/admin/backends")
	if err != nil {
		t.Fatal(err)
	}
	defer getResp.Body.Close()
	var out struct {
		Backends []struct {
			Addr    string `json:"addr"`
			Healthy bool   `json:"healthy"`
		} `json:"backends"`
	}
	if err := json.NewDecoder(getResp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if len(out.Backends) != 2 || !out.Backends[0].Healthy {
		t.Fatalf("GET listing = %+v", out)
	}
}

// TestElasticRingPreservesLocality: growing the ring must not move
// keys between surviving backends — only keys the joiner takes leave
// their shard, so warm caches stay warm.
func TestElasticRingPreservesLocality(t *testing.T) {
	c := newCluster(t, 2, Config{})
	const cells = 24
	owner := make(map[int]string)
	for seed := 1; seed <= cells; seed++ {
		resp, _ := post(t, c.gwts.URL, "/v1/simulate", cellBody(seed))
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("seed %d: %d", seed, resp.StatusCode)
		}
		owner[seed] = resp.Header.Get("X-Backend")
	}

	// Join a third (fake but healthy-looking) backend... a real one:
	// reuse a plain server so remapped keys still answer.
	ts := httptest.NewServer(server.New(server.Config{Workers: 2}))
	t.Cleanup(ts.Close)
	if resp, body := adminPost(t, c.gwts.URL, "add", ts.URL); resp.StatusCode != http.StatusOK {
		t.Fatalf("admin add: %d %s", resp.StatusCode, body)
	}
	hostNew := strings.TrimPrefix(ts.URL, "http://")
	moved, taken := 0, 0
	for seed := 1; seed <= cells; seed++ {
		resp, _ := post(t, c.gwts.URL, "/v1/simulate", cellBody(seed))
		got := resp.Header.Get("X-Backend")
		switch {
		case got == hostNew:
			taken++
		case got != owner[seed]:
			moved++
		}
	}
	if moved != 0 {
		t.Errorf("%d keys moved between surviving backends on ring growth", moved)
	}
	if taken == 0 {
		t.Error("joined backend took no keys — ring did not grow")
	}
}
