package gateway

import (
	"sync"
	"time"
)

// Circuit breaker: the per-backend request-outcome state machine that
// replaces PR 5's eject-on-any-connection-error. Ejection on a single
// transient error was fine when the only failure mode was a dead
// process; under a hostile network (chaos-injected resets, spurious
// 5xx) it flaps routing on every blip and destroys cache affinity. The
// breaker instead tolerates scattered failures, opens only on a
// *pattern* — a consecutive-failure run or a high error rate over the
// recent window — and then probes its way back with single half-open
// trials. Hard evidence of a dead process (a dial error: nothing is
// listening) still ejects immediately via the health flag; the breaker
// handles everything softer.
//
// States: closed (normal) → open (attempts refused for cooldown) →
// half-open (exactly one trial request) → closed on success, open
// again on failure.

const (
	breakerClosed = iota
	breakerHalfOpen
	breakerOpen
)

// breakerWindow is the recent-outcome ring used for the error-rate
// trip: the breaker opens when at least breakerRateNum/breakerRateDen
// of the last breakerWindow outcomes were failures (only once the ring
// is full, so a cold backend is not condemned on two samples).
const (
	breakerWindow  = 32
	breakerRateNum = 3
	breakerRateDen = 4
)

type breaker struct {
	mu        sync.Mutex
	threshold int           // consecutive failures that open the circuit
	cooldown  time.Duration // open → half-open trial delay
	now       func() time.Time

	state    int
	failures int // consecutive
	openedAt time.Time
	probing  bool // a half-open trial is in flight

	// recent outcomes ring for the error-rate trip
	ring      [breakerWindow]bool // true = failure
	ringN     int
	ringIdx   int
	ringFails int

	// transition counters for /metrics
	opened   uint64
	reclosed uint64
}

// newBreaker builds a breaker; threshold <= 0 disables it (always
// closed, accounting only).
func newBreaker(threshold int, cooldown time.Duration) *breaker {
	return &breaker{threshold: threshold, cooldown: cooldown, now: time.Now}
}

// disabled reports whether the breaker can ever open.
func (b *breaker) disabled() bool { return b.threshold <= 0 }

// Ready is the routing view: whether an attempt against this backend
// is currently worthwhile. Non-consuming — route ordering may ask many
// times; only Allow claims the half-open trial slot.
func (b *breaker) Ready() bool {
	if b.disabled() {
		return true
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case breakerClosed:
		return true
	case breakerHalfOpen:
		return !b.probing
	default: // open
		return b.now().Sub(b.openedAt) >= b.cooldown
	}
}

// Allow claims permission for one attempt. An open breaker whose
// cooldown has elapsed moves to half-open and grants the caller the
// single trial; concurrent callers are refused until the trial
// resolves.
func (b *breaker) Allow() bool {
	if b.disabled() {
		return true
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case breakerClosed:
		return true
	case breakerOpen:
		if b.now().Sub(b.openedAt) < b.cooldown {
			return false
		}
		b.state = breakerHalfOpen
		b.probing = true
		return true
	default: // half-open
		if b.probing {
			return false
		}
		b.probing = true
		return true
	}
}

// OnSuccess records a successful attempt: any state collapses to
// closed and the failure run resets.
func (b *breaker) OnSuccess() {
	if b.disabled() {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state != breakerClosed {
		b.reclosed++
	}
	b.state = breakerClosed
	b.failures = 0
	b.probing = false
	b.record(false)
}

// OnFailure records a failed attempt. A half-open trial failure
// reopens immediately; a closed breaker opens on a consecutive run of
// threshold failures or on the windowed error rate.
func (b *breaker) OnFailure() {
	if b.disabled() {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	b.failures++
	b.record(true)
	switch b.state {
	case breakerHalfOpen:
		b.trip()
	case breakerClosed:
		if b.failures >= b.threshold {
			b.trip()
			return
		}
		if b.ringN == breakerWindow && b.ringFails*breakerRateDen >= breakerWindow*breakerRateNum {
			b.trip()
		}
	}
}

// trip opens the circuit (caller holds the lock).
func (b *breaker) trip() {
	if b.state != breakerOpen {
		b.opened++
	}
	b.state = breakerOpen
	b.openedAt = b.now()
	b.probing = false
	// Reset the rate window so the re-close decision after cooldown is
	// made on fresh evidence, not the window that tripped it.
	b.ringN, b.ringIdx, b.ringFails = 0, 0, 0
}

// record pushes one outcome into the rate window (caller holds the
// lock).
func (b *breaker) record(failed bool) {
	if b.ringN == breakerWindow {
		if b.ring[b.ringIdx] {
			b.ringFails--
		}
	} else {
		b.ringN++
	}
	b.ring[b.ringIdx] = failed
	if failed {
		b.ringFails++
	}
	b.ringIdx = (b.ringIdx + 1) % breakerWindow
}

// State reports the current state for /metrics (0 closed, 1 half-open,
// 2 open).
func (b *breaker) State() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}

// Transitions reports how many times the breaker opened and re-closed.
func (b *breaker) Transitions() (opened, reclosed uint64) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.opened, b.reclosed
}
