package gateway

import (
	"sync"
	"sync/atomic"
	"time"
)

// Retry budget: the global cap on retry amplification. Failover, 429
// waits and hedges all re-send work; under a broad outage every
// original request would otherwise multiply into several backend
// attempts exactly when the cluster can least afford them. The budget
// admits extra attempts only while they stay below ratio × the recent
// request volume (plus a floor so a quiet gateway can still retry at
// all); beyond that, requests fail fast with a distinct status instead
// of piling on.
//
// Accounting is a coarse sliding window: two rotating buckets of
// budgetWindow each, summed, so the ratio is enforced over roughly the
// last one-to-two windows without per-request timestamps.

// budgetWindow is one accounting bucket's span.
const budgetWindow = 10 * time.Second

type retryBudget struct {
	mu    sync.Mutex
	ratio float64 // extra attempts allowed per request (negative = unlimited)
	floor int     // minimum allowance per window
	now   func() time.Time

	curStart  time.Time
	cur, prev struct{ requests, retries float64 }

	// lifetime totals for /metrics: the chaos gate computes measured
	// amplification as (requests + retries) / requests.
	requestsTotal  atomic.Uint64
	retriesTotal   atomic.Uint64
	exhaustedTotal atomic.Uint64
}

func newRetryBudget(ratio float64, floor int) *retryBudget {
	return &retryBudget{ratio: ratio, floor: floor, now: time.Now}
}

// rotate ages the buckets (caller holds the lock).
func (rb *retryBudget) rotate() {
	now := rb.now()
	if rb.curStart.IsZero() {
		rb.curStart = now
		return
	}
	for now.Sub(rb.curStart) >= budgetWindow {
		rb.prev = rb.cur
		rb.cur = struct{ requests, retries float64 }{}
		rb.curStart = rb.curStart.Add(budgetWindow)
		if now.Sub(rb.curStart) >= 2*budgetWindow {
			// Long idle gap: both buckets are stale.
			rb.prev = rb.cur
			rb.curStart = now
		}
	}
}

// OnRequest credits n client-facing units of work (one per /v1/simulate
// request, one per sweep cell).
func (rb *retryBudget) OnRequest(n int) {
	rb.requestsTotal.Add(uint64(n))
	rb.mu.Lock()
	rb.rotate()
	rb.cur.requests += float64(n)
	rb.mu.Unlock()
}

// TryRetry asks to spend n units of retry budget (a failover re-send,
// a 429 wait-and-retry, or a hedge each cost one unit per cell). The
// grant is all-or-nothing; a refusal is counted so operators can see
// fail-fast decisions in smpgw_retry_budget_exhausted_total.
func (rb *retryBudget) TryRetry(n int) bool {
	if rb.ratio < 0 {
		rb.retriesTotal.Add(uint64(n))
		return true
	}
	rb.mu.Lock()
	rb.rotate()
	allowed := rb.ratio*(rb.cur.requests+rb.prev.requests) + float64(rb.floor)
	spent := rb.cur.retries + rb.prev.retries
	if spent+float64(n) > allowed {
		rb.mu.Unlock()
		rb.exhaustedTotal.Add(uint64(n))
		return false
	}
	rb.cur.retries += float64(n)
	rb.mu.Unlock()
	rb.retriesTotal.Add(uint64(n))
	return true
}
