package gateway

import (
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"busaware/internal/chaos"
	"busaware/internal/digest"
	"busaware/internal/server"
)

// TestDigestMismatchRejected: a backend whose 200 body fails integrity
// verification is never served to the client — the gateway treats it
// as a failed attempt.
func TestDigestMismatchRejected(t *testing.T) {
	fake := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set(digest.Header, digest.Sum([]byte("what the backend meant to send")))
		w.Write([]byte(`{"corrupted":true}` + "\n"))
	}))
	defer fake.Close()
	gw, err := New(Config{Backends: []string{fake.URL}, ProbeInterval: -1, HedgeDelayMin: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer gw.Close()
	ts := httptest.NewServer(gw)
	defer ts.Close()

	resp, body := post(t, ts.URL, "/v1/simulate", cellBody(1))
	if resp.StatusCode != http.StatusBadGateway {
		t.Fatalf("status = %d %s, want 502 for a corrupt body", resp.StatusCode, body)
	}
	if !strings.Contains(string(body), "digest mismatch") {
		t.Errorf("error body %q does not name the digest mismatch", body)
	}
	if gw.metrics.digestMismatches.Load() == 0 {
		t.Error("digest mismatch not counted")
	}
}

// TestDigestVerifiedEndToEnd: a real backend's digest survives the
// gateway hop and matches the bytes the client receives.
func TestDigestVerifiedEndToEnd(t *testing.T) {
	c := newCluster(t, 2, Config{})
	resp, body := post(t, c.gwts.URL, "/v1/simulate", cellBody(7))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	d := resp.Header.Get(digest.Header)
	if d == "" {
		t.Fatal("gateway response missing " + digest.Header)
	}
	if !digest.Verify(d, body) {
		t.Fatalf("digest %q does not verify against the delivered body", d)
	}
}

// TestRetryBudgetExhausted: once the global retry budget is spent,
// failed requests fail fast with 503 and the distinct budget marker
// instead of amplifying.
func TestRetryBudgetExhausted(t *testing.T) {
	const okBody = `{"ok":true}` + "\n"
	var flaky [2]atomic.Bool
	mk := func(i int) *httptest.Server {
		return httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			if flaky[i].Load() {
				w.WriteHeader(http.StatusServiceUnavailable)
				return
			}
			w.Header().Set("Content-Type", "application/json")
			w.Write([]byte(okBody))
		}))
	}
	b0, b1 := mk(0), mk(1)
	defer b0.Close()
	defer b1.Close()
	gw, err := New(Config{
		Backends:         []string{b0.URL, b1.URL},
		ProbeInterval:    -1,
		HedgeDelayMin:    -1,
		BreakerFailures:  100, // keep routing stable; this test is about the budget
		RetryBudgetRatio: 0.0001,
		RetryBudgetFloor: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer gw.Close()
	ts := httptest.NewServer(gw)
	defer ts.Close()

	// Learn the owner of this cell, then make it fail persistently.
	resp, _ := post(t, ts.URL, "/v1/simulate", cellBody(1))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("warmup status %d", resp.StatusCode)
	}
	owner := 0
	if resp.Header.Get("X-Backend") == strings.TrimPrefix(b1.URL, "http://") {
		owner = 1
	}
	flaky[owner].Store(true)

	// Budget floor 1: the first failure buys one failover (200 from the
	// survivor), the second finds the budget spent and fails fast.
	resp, body := post(t, ts.URL, "/v1/simulate", cellBody(1))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("first failover: %d %s", resp.StatusCode, body)
	}
	resp, body = post(t, ts.URL, "/v1/simulate", cellBody(1))
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("budget-exhausted request: %d %s, want 503", resp.StatusCode, body)
	}
	if got := resp.Header.Get("X-Retry-Budget"); got != "exhausted" {
		t.Errorf("X-Retry-Budget = %q, want \"exhausted\"", got)
	}
	if !strings.Contains(string(body), "retry budget exhausted") {
		t.Errorf("error body %q does not name the budget", body)
	}
	if gw.budget.exhaustedTotal.Load() == 0 {
		t.Error("exhaustion not counted")
	}
}

// TestChaosResetFailsOver: an injected connection reset on the wire to
// one attempt is absorbed by failover — the client still gets a clean,
// digest-verified 200 from a real backend.
func TestChaosResetFailsOver(t *testing.T) {
	inj, err := chaos.New(chaos.Config{Seed: 1, Reset: chaos.Class{Prob: 1, Max: 1}})
	if err != nil {
		t.Fatal(err)
	}
	c := newCluster(t, 2, Config{
		Client:        &http.Client{Transport: &chaos.Transport{Inj: inj}},
		HedgeDelayMin: -1,
	})
	resp, body := post(t, c.gwts.URL, "/v1/simulate", cellBody(3))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d %s, want 200 despite the injected reset", resp.StatusCode, body)
	}
	if !digest.Verify(resp.Header.Get(digest.Header), body) {
		t.Fatal("delivered body fails digest verification")
	}
	if inj.Stats().Resets != 1 {
		t.Fatalf("injected resets = %d, want 1", inj.Stats().Resets)
	}
	if c.gw.metrics.failovers.Load() == 0 {
		t.Error("reset absorbed without a counted failover")
	}
}

// TestChaosCorruptionCaught: injected body corruption is caught by the
// digest check and re-earned from another backend, never served.
func TestChaosCorruptionCaught(t *testing.T) {
	inj, err := chaos.New(chaos.Config{Seed: 2, Corrupt: chaos.Class{Prob: 1, Max: 1}})
	if err != nil {
		t.Fatal(err)
	}
	c := newCluster(t, 2, Config{
		Client:        &http.Client{Transport: &chaos.Transport{Inj: inj}},
		HedgeDelayMin: -1,
	})
	resp, body := post(t, c.gwts.URL, "/v1/simulate", cellBody(3))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d %s, want 200 despite injected corruption", resp.StatusCode, body)
	}
	if !digest.Verify(resp.Header.Get(digest.Header), body) {
		t.Fatal("delivered body fails digest verification — corruption leaked through")
	}
	if c.gw.metrics.digestMismatches.Load() != 1 {
		t.Errorf("digest mismatches = %d, want 1", c.gw.metrics.digestMismatches.Load())
	}
}

// TestDeadlineStamped: the gateway stamps a downstream absolute
// deadline bounded by its attempt timeout.
func TestDeadlineStamped(t *testing.T) {
	var got atomic.Value
	fake := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		got.Store(r.Header.Get(server.DeadlineHeader))
		w.Write([]byte(`{"ok":true}` + "\n"))
	}))
	defer fake.Close()
	gw, err := New(Config{
		Backends:       []string{fake.URL},
		ProbeInterval:  -1,
		HedgeDelayMin:  -1,
		AttemptTimeout: 5 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer gw.Close()
	ts := httptest.NewServer(gw)
	defer ts.Close()

	before := time.Now()
	resp, _ := post(t, ts.URL, "/v1/simulate", cellBody(1))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	v, _ := got.Load().(string)
	if v == "" {
		t.Fatal("backend saw no " + server.DeadlineHeader)
	}
	ms, err := strconv.ParseInt(v, 10, 64)
	if err != nil {
		t.Fatalf("bad deadline %q", v)
	}
	dl := time.UnixMilli(ms)
	if dl.Before(before) || dl.After(before.Add(6*time.Second)) {
		t.Errorf("stamped deadline %v outside (now, now+attempt timeout]", dl)
	}

	// A client-supplied earlier deadline wins over the attempt timeout.
	req, _ := http.NewRequest(http.MethodPost, ts.URL+"/v1/simulate", strings.NewReader(cellBody(1)))
	req.Header.Set("Content-Type", "application/json")
	clientDL := time.Now().Add(2 * time.Second)
	req.Header.Set(server.DeadlineHeader, strconv.FormatInt(clientDL.UnixMilli(), 10))
	resp2, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	v, _ = got.Load().(string)
	ms, _ = strconv.ParseInt(v, 10, 64)
	if !time.UnixMilli(ms).Equal(clientDL.Truncate(time.Millisecond)) {
		t.Errorf("stamped deadline %v, want the client's earlier %v", time.UnixMilli(ms), clientDL)
	}
}
