package gateway

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"busaware/internal/faults"
	"busaware/internal/server"
)

const smallSpec = "CG, BBMA, nBBMA"

// cluster is two real smpsimd serving stacks behind one gateway.
type cluster struct {
	gw       *Gateway
	gwts     *httptest.Server
	backends []*httptest.Server
	servers  []*server.Server
}

func newCluster(t *testing.T, n int, cfg Config) *cluster {
	t.Helper()
	return newClusterWithServerConfig(t, n, cfg, server.Config{Workers: 2})
}

func newClusterWithServerConfig(t *testing.T, n int, cfg Config, scfg server.Config) *cluster {
	t.Helper()
	c := &cluster{}
	for i := 0; i < n; i++ {
		s := server.New(scfg)
		ts := httptest.NewServer(s)
		c.servers = append(c.servers, s)
		c.backends = append(c.backends, ts)
		cfg.Backends = append(cfg.Backends, ts.URL)
		t.Cleanup(func() {
			ts.Close()
			s.Close()
		})
	}
	if cfg.ProbeInterval == 0 {
		cfg.ProbeInterval = -1 // tests drive ProbeOnce explicitly
	}
	gw, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	c.gw = gw
	c.gwts = httptest.NewServer(gw)
	t.Cleanup(func() {
		c.gwts.Close()
		gw.Close()
	})
	return c
}

func post(t *testing.T, url, path, body string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(url+path, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, b
}

func cellBody(seed int) string {
	return fmt.Sprintf(`{"apps":%q,"policy":"linux","seed":%d}`, smallSpec, seed)
}

// TestShardAffinity sends a set of distinct cells twice through a
// two-backend gateway: every repetition must land on the same backend
// (X-Backend stable per cell) and hit its cache, and the two backends'
// caches must partition the working set rather than both holding all
// of it.
func TestShardAffinity(t *testing.T) {
	c := newCluster(t, 2, Config{})
	const cells = 12
	owner := make(map[int]string)
	for pass := 0; pass < 2; pass++ {
		for seed := 1; seed <= cells; seed++ {
			resp, body := post(t, c.gwts.URL, "/v1/simulate", cellBody(seed))
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("pass %d seed %d: %d %s", pass, seed, resp.StatusCode, body)
			}
			backend := resp.Header.Get("X-Backend")
			if backend == "" {
				t.Fatal("X-Backend header missing")
			}
			wantCache := "miss"
			if pass == 1 {
				wantCache = "hit"
			}
			if got := resp.Header.Get("X-Cache"); got != wantCache {
				t.Errorf("pass %d seed %d: X-Cache = %q, want %q", pass, seed, got, wantCache)
			}
			if pass == 0 {
				owner[seed] = backend
			} else if owner[seed] != backend {
				t.Errorf("seed %d moved from %s to %s between passes", seed, owner[seed], backend)
			}
		}
	}
	// Shard partition: together the two caches hold each cell exactly
	// once.
	total := 0
	for _, s := range c.servers {
		cs := s.CacheStats()
		if cs.Entries == 0 {
			t.Error("one backend's cache is empty — no sharding happened (or a degenerate ring)")
		}
		total += cs.Entries
	}
	if total != cells {
		t.Errorf("caches hold %d entries for %d distinct cells — shards overlap", total, cells)
	}
}

// TestGatewayRejectsBadRequestsLocally: an invalid cell must be 400ed
// by the gateway without spending a backend round trip.
func TestGatewayRejectsBadRequestsLocally(t *testing.T) {
	var backendHits atomic.Int64
	fake := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		backendHits.Add(1)
		w.WriteHeader(http.StatusOK)
	}))
	defer fake.Close()
	gw, err := New(Config{Backends: []string{fake.URL}, ProbeInterval: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer gw.Close()
	ts := httptest.NewServer(gw)
	defer ts.Close()

	for _, body := range []string{
		`{"apps":"NoSuchApp"}`,
		`{"apps":"CG","policy":"fifo"}`,
		`{"apps":`,
		`{"apps":"CG","bogus":1}`,
	} {
		resp, b := post(t, ts.URL, "/v1/simulate", body)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("body %q: status %d (%s), want 400", body, resp.StatusCode, b)
		}
	}
	if n := backendHits.Load(); n != 0 {
		t.Errorf("invalid requests reached the backend %d times", n)
	}
}

// TestFailoverOnConnectionError kills one backend and checks a cell it
// owned is served by the survivor, byte-identically, with the dead
// backend ejected and the failover counted.
func TestFailoverOnConnectionError(t *testing.T) {
	c := newCluster(t, 2, Config{})
	// Find a cell owned by backend 0 and warm the reference body.
	var body0 []byte
	seed := 0
	for s := 1; s <= 64; s++ {
		resp, b := post(t, c.gwts.URL, "/v1/simulate", cellBody(s))
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("seed %d: %d", s, resp.StatusCode)
		}
		if resp.Header.Get("X-Backend") == strings.TrimPrefix(c.backends[0].URL, "http://") {
			seed, body0 = s, b
			break
		}
	}
	if seed == 0 {
		t.Fatal("no cell routed to backend 0 in 64 tries")
	}

	c.backends[0].Close() // kill the owner
	resp, b := post(t, c.gwts.URL, "/v1/simulate", cellBody(seed))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("failover request: %d %s", resp.StatusCode, b)
	}
	if got := resp.Header.Get("X-Backend"); got != strings.TrimPrefix(c.backends[1].URL, "http://") {
		t.Errorf("failover served by %q, want the survivor", got)
	}
	if !bytes.Equal(b, body0) {
		t.Errorf("failover body diverged from the original:\nwas: %s\nnow: %s", body0, b)
	}
	if c.gw.Healthy() != 1 {
		t.Errorf("dead backend not ejected: %d healthy, want 1", c.gw.Healthy())
	}
	if got := c.gw.metrics.failovers.Load(); got == 0 {
		t.Error("failover not counted")
	}

	// With the owner ejected, the next repetition goes straight to the
	// survivor — and is a hit there now.
	resp, _ = post(t, c.gwts.URL, "/v1/simulate", cellBody(seed))
	if got := resp.Header.Get("X-Cache"); got != "hit" {
		t.Errorf("post-failover repetition X-Cache = %q, want hit", got)
	}
}

// TestProbeEjectionAndReadmission drives the health prober against a
// backend that can be switched between healthy and dead.
func TestProbeEjectionAndReadmission(t *testing.T) {
	var down atomic.Bool
	fake := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if down.Load() {
			w.WriteHeader(http.StatusInternalServerError)
			return
		}
		w.WriteHeader(http.StatusOK)
	}))
	defer fake.Close()
	gw, err := New(Config{Backends: []string{fake.URL}, ProbeInterval: -1, ProbeFailures: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer gw.Close()

	gw.ProbeOnce()
	if gw.Healthy() != 1 {
		t.Fatal("healthy backend not admitted")
	}
	down.Store(true)
	gw.ProbeOnce()
	if gw.Healthy() != 1 {
		t.Error("ejected after one failure, want two (flap damping)")
	}
	gw.ProbeOnce()
	if gw.Healthy() != 0 {
		t.Error("backend not ejected after two consecutive probe failures")
	}
	down.Store(false)
	gw.ProbeOnce()
	if gw.Healthy() != 1 {
		t.Error("recovered backend not re-admitted on first successful probe")
	}
}

// TestRetryAfter429 exercises the 429 path: the gateway must wait out
// the backend's Retry-After (through the injectable sleeper) and
// retry the same backend, not fail over — the cell's cache line lives
// on that shard.
func TestRetryAfter429(t *testing.T) {
	var calls atomic.Int64
	fake := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) == 1 {
			w.Header().Set("Retry-After", "3")
			w.WriteHeader(http.StatusTooManyRequests)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.Header().Set("X-Cache", "miss")
		w.Write([]byte(`{"ok":true}` + "\n"))
	}))
	defer fake.Close()

	var mu sync.Mutex
	var slept []time.Duration
	gw, err := New(Config{
		Backends:      []string{fake.URL},
		ProbeInterval: -1,
		Sleep: faults.Sleeper(func(d time.Duration) {
			mu.Lock()
			slept = append(slept, d)
			mu.Unlock()
		}),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer gw.Close()
	ts := httptest.NewServer(gw)
	defer ts.Close()

	resp, body := post(t, ts.URL, "/v1/simulate", `{"apps":"CG x2"}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d %s, want 200 after absorbed 429", resp.StatusCode, body)
	}
	if calls.Load() != 2 {
		t.Errorf("backend called %d times, want 2", calls.Load())
	}
	mu.Lock()
	defer mu.Unlock()
	if len(slept) != 1 || slept[0] != 3*time.Second {
		t.Errorf("slept %v, want [3s] (Retry-After honored)", slept)
	}
	if gw.metrics.retries.Load() != 1 {
		t.Errorf("retries counter = %d, want 1", gw.metrics.retries.Load())
	}
}

// TestRetry429Exhausted: a persistently saturated shard's 429
// propagates to the client, Retry-After intact, without failover.
func TestRetry429Exhausted(t *testing.T) {
	var calls atomic.Int64
	fake := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		w.Header().Set("Retry-After", "2")
		w.WriteHeader(http.StatusTooManyRequests)
	}))
	defer fake.Close()
	gw, err := New(Config{
		Backends:      []string{fake.URL},
		ProbeInterval: -1,
		Retry429:      1,
		Sleep:         faults.Sleeper(func(time.Duration) {}),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer gw.Close()
	ts := httptest.NewServer(gw)
	defer ts.Close()

	resp, _ := post(t, ts.URL, "/v1/simulate", `{"apps":"CG x2"}`)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status = %d, want 429 passed through", resp.StatusCode)
	}
	if got := resp.Header.Get("Retry-After"); got != "2" {
		t.Errorf("Retry-After = %q, want \"2\"", got)
	}
	if calls.Load() != 2 { // initial + one retry
		t.Errorf("backend called %d times, want 2", calls.Load())
	}
	if gw.Healthy() != 1 {
		t.Error("429 must not eject a backend")
	}
}

// readSweepLines parses the gateway's merged NDJSON stream.
func readSweepLines(t *testing.T, body io.Reader) []SweepLine {
	t.Helper()
	var lines []SweepLine
	sc := bufio.NewScanner(body)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		if len(bytes.TrimSpace(sc.Bytes())) == 0 {
			continue
		}
		var l SweepLine
		if err := json.Unmarshal(sc.Bytes(), &l); err != nil {
			t.Fatalf("bad line %q: %v", sc.Text(), err)
		}
		lines = append(lines, l)
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return lines
}

// TestSweepThroughGateway shards one batch across two backends and
// checks completeness, byte-identity with the single-cell path, and
// that both shards actually served cells.
func TestSweepThroughGateway(t *testing.T) {
	c := newCluster(t, 2, Config{})
	const n = 10
	var cells []string
	for i := 1; i <= n; i++ {
		cells = append(cells, cellBody(i))
	}
	resp, err := http.Post(c.gwts.URL+"/v1/sweep", "application/json",
		strings.NewReader(`{"cells":[`+strings.Join(cells, ",")+`]}`))
	if err != nil {
		t.Fatal(err)
	}
	lines := readSweepLines(t, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("sweep status = %d", resp.StatusCode)
	}
	if len(lines) != n {
		t.Fatalf("got %d lines for %d cells", len(lines), n)
	}
	served := map[string]int{}
	got := make([]SweepLine, n)
	for _, l := range lines {
		if l.Status != http.StatusOK {
			t.Fatalf("cell %d: status %d (%s)", l.Index, l.Status, l.Error)
		}
		if l.Backend == "" {
			t.Fatal("line missing backend attribution")
		}
		served[l.Backend]++
		got[l.Index] = l
	}
	if len(served) != 2 {
		t.Errorf("sweep served by %d backends, want 2: %v", len(served), served)
	}
	// Byte identity against the single-cell path through the gateway.
	for i, cell := range cells {
		sresp, sbody := post(t, c.gwts.URL, "/v1/simulate", cell)
		if sresp.StatusCode != http.StatusOK {
			t.Fatalf("simulate %d: %d", i, sresp.StatusCode)
		}
		if sresp.Header.Get("X-Cache") != "hit" {
			t.Errorf("cell %d: simulate after sweep missed — sweep and simulate disagree on keys", i)
		}
		if want := strings.TrimSuffix(string(sbody), "\n"); string(got[i].Response) != want {
			t.Errorf("cell %d sweep body diverged from simulate", i)
		}
	}
}

// TestSweepFailover kills one backend mid-cluster before the sweep:
// the gateway re-shards its cells to the survivor and the sweep still
// completes fully.
func TestSweepFailover(t *testing.T) {
	c := newCluster(t, 2, Config{})
	c.backends[0].Close()
	const n = 8
	var cells []string
	for i := 1; i <= n; i++ {
		cells = append(cells, cellBody(i))
	}
	resp, err := http.Post(c.gwts.URL+"/v1/sweep", "application/json",
		strings.NewReader(`{"cells":[`+strings.Join(cells, ",")+`]}`))
	if err != nil {
		t.Fatal(err)
	}
	lines := readSweepLines(t, resp.Body)
	resp.Body.Close()
	if len(lines) != n {
		t.Fatalf("got %d lines for %d cells", len(lines), n)
	}
	for _, l := range lines {
		if l.Status != http.StatusOK {
			t.Errorf("cell %d: status %d (%s) — failover must not lose cells", l.Index, l.Status, l.Error)
		}
	}
	if c.gw.Healthy() != 1 {
		t.Errorf("dead backend not ejected during sweep: healthy = %d", c.gw.Healthy())
	}
}

// TestNoBackendsConfigured: constructing a gateway without backends is
// an error, not a panic at request time.
func TestNoBackendsConfigured(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Fatal("New with no backends succeeded")
	}
}
