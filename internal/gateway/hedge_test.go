package gateway

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

func TestLatencyTrackerP99(t *testing.T) {
	tr := &latencyTracker{}
	if tr.p99() != 0 {
		t.Fatal("empty tracker p99 != 0")
	}
	for i := 1; i <= 100; i++ {
		tr.record(time.Duration(i) * time.Millisecond)
	}
	// Nearest-rank p99 of 1..100ms is the 99th value.
	if got := tr.p99(); got != 99*time.Millisecond {
		t.Fatalf("p99 = %v, want 99ms", got)
	}
	// The ring keeps only the newest trackerSize samples.
	for i := 0; i < trackerSize; i++ {
		tr.record(time.Second)
	}
	if got := tr.p99(); got != time.Second {
		t.Fatalf("p99 after ring turnover = %v, want 1s", got)
	}
}

// TestLatencyTrackerZeroP99Cached: a legitimate p99 of 0 (all-fast-hit
// workload at clock granularity) must be cached like any other value —
// the old freshness gate keyed on cached > 0 and re-sorted all 512
// samples on every request. Freshness is observable through stale: a
// recompute resets it to 0, a cache read leaves it alone.
func TestLatencyTrackerZeroP99Cached(t *testing.T) {
	tr := &latencyTracker{}
	for i := 0; i < trackerSize; i++ {
		tr.record(0)
	}
	if got := tr.p99(); got != 0 {
		t.Fatalf("p99 of all-zero samples = %v, want 0", got)
	}
	// A few new samples, well under the refresh threshold: the second
	// p99 call must serve the cached zero without recomputing.
	for i := 0; i < trackerRefresh/2; i++ {
		tr.record(0)
	}
	if got := tr.p99(); got != 0 {
		t.Fatalf("cached p99 = %v, want 0", got)
	}
	tr.mu.Lock()
	stale := tr.stale
	tr.mu.Unlock()
	if stale != trackerRefresh/2 {
		t.Fatalf("stale = %d after cached read, want %d (a recompute would reset it)",
			stale, trackerRefresh/2)
	}
	// And the cache must still expire: once enough nonzero samples
	// land, the p99 moves off zero.
	for i := 0; i < trackerSize; i++ {
		tr.record(time.Millisecond)
	}
	if got := tr.p99(); got != time.Millisecond {
		t.Fatalf("p99 after refresh = %v, want 1ms", got)
	}
}

func TestHedgeDelayFloorAndDisable(t *testing.T) {
	g := &Gateway{cfg: Config{HedgeDelayMin: 100 * time.Millisecond}, tracker: &latencyTracker{}}
	if got := g.hedgeDelay(); got != 100*time.Millisecond {
		t.Fatalf("empty-tracker hedge delay = %v, want the floor", got)
	}
	for i := 0; i < trackerSize; i++ {
		g.tracker.record(300 * time.Millisecond)
	}
	if got := g.hedgeDelay(); got != 300*time.Millisecond {
		t.Fatalf("hedge delay = %v, want tracked p99 300ms", got)
	}
	g.cfg.HedgeDelayMin = -1
	if got := g.hedgeDelay(); got != 0 {
		t.Fatalf("disabled hedge delay = %v, want 0", got)
	}
}

// TestHedgedRequestWins: when the shard owner stalls, the hedge to the
// next ring node answers and the client never notices the straggler.
func TestHedgedRequestWins(t *testing.T) {
	const body = `{"ok":true}` + "\n"
	var stall [2]atomic.Bool
	mk := func(i int) *httptest.Server {
		return httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			if stall[i].Load() {
				// A straggler: hold until the gateway gives up on us.
				select {
				case <-r.Context().Done():
				case <-time.After(5 * time.Second):
				}
				return
			}
			w.Header().Set("Content-Type", "application/json")
			w.Write([]byte(body))
		}))
	}
	b0, b1 := mk(0), mk(1)
	defer b0.Close()
	defer b1.Close()
	gw, err := New(Config{
		Backends:      []string{b0.URL, b1.URL},
		ProbeInterval: -1,
		HedgeDelayMin: 50 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer gw.Close()
	ts := httptest.NewServer(gw)
	defer ts.Close()

	// Learn which backend owns this cell while both are fast.
	resp, _ := post(t, ts.URL, "/v1/simulate", cellBody(1))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("warmup status %d", resp.StatusCode)
	}
	owner := 0
	if resp.Header.Get("X-Backend") == strings.TrimPrefix(b1.URL, "http://") {
		owner = 1
	}

	stall[owner].Store(true)
	start := time.Now()
	resp, b := post(t, ts.URL, "/v1/simulate", cellBody(1))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("hedged request: %d %s", resp.StatusCode, b)
	}
	if string(b) != body {
		t.Fatalf("hedged body = %q", b)
	}
	if got := resp.Header.Get("X-Backend"); got == strings.TrimPrefix([]*httptest.Server{b0, b1}[owner].URL, "http://") {
		t.Error("response attributed to the stalled owner")
	}
	if took := time.Since(start); took > 2*time.Second {
		t.Errorf("hedged request took %v — hedge did not fire", took)
	}
	if gw.metrics.hedgesLaunched.Load() == 0 {
		t.Error("no hedge launched")
	}
	if gw.metrics.hedgeWins.Load() == 0 {
		t.Error("hedge win not counted")
	}
	if gw.metrics.hedgeMismatches.Load() != 0 {
		t.Errorf("hedge mismatches = %d, want 0", gw.metrics.hedgeMismatches.Load())
	}
}
