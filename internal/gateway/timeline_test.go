package gateway

import (
	"bufio"
	"encoding/json"
	"fmt"
	"net/http"
	"reflect"
	"testing"

	"busaware/internal/server"
	"busaware/internal/timeline"
)

// TestTimelineSummaryAcrossBackends runs distinct cells so each
// backend hosts different runs, then checks the gateway's merged
// summary covers exactly the union: total quanta equals the sum of the
// per-backend summaries, and the fold is the Merge of the parts —
// which associativity makes independent of backend order.
func TestTimelineSummaryAcrossBackends(t *testing.T) {
	c := newCluster(t, 2, Config{})

	// Enough distinct cells that consistent hashing puts runs on both
	// backends (the affinity test demonstrates the spread). 24 seeds
	// keep the all-one-backend probability negligible — the split
	// depends on the backends' random httptest ports.
	for seed := 0; seed < 24; seed++ {
		resp, b := post(t, c.gwts.URL, "/v1/simulate", cellBody(seed))
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("cell %d: status %d body %s", seed, resp.StatusCode, b)
		}
	}

	resp, err := http.Get(c.gwts.URL + "/v1/timeline?summary=1")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("summary status = %d", resp.StatusCode)
	}
	var merged TimelineSummary
	if err := json.NewDecoder(resp.Body).Decode(&merged); err != nil {
		t.Fatal(err)
	}
	if len(merged.Backends) != 2 {
		t.Fatalf("backends reported = %d, want 2", len(merged.Backends))
	}

	var fold timeline.Window
	var windows int64
	contributing := 0
	for _, b := range merged.Backends {
		if !b.Healthy {
			t.Errorf("backend %s reported unhealthy", b.Addr)
		}
		if b.Summary.Quanta > 0 {
			contributing++
		}
		fold = timeline.Merge(fold, b.Summary)
		windows += b.Windows
	}
	if contributing < 2 {
		t.Fatalf("only %d backend(s) ran cells; sharding should spread 8 distinct cells", contributing)
	}
	if !reflect.DeepEqual(merged.Summary, fold) {
		t.Errorf("gateway summary is not the exact merge of its parts:\n got %+v\nfold %+v", merged.Summary, fold)
	}
	if merged.Windows != windows {
		t.Errorf("window count %d != sum of backends %d", merged.Windows, windows)
	}
	if merged.Summary.Quanta == 0 {
		t.Error("merged summary is empty after 8 runs")
	}
}

// TestTimelineStreamStampsBackends replays both backends' backlogs
// through the merged stream and checks every line carries the origin
// backend, with events from more than one origin present.
func TestTimelineStreamStampsBackends(t *testing.T) {
	c := newCluster(t, 2, Config{})

	// 24 distinct cells: with the backends on random httptest ports,
	// 8 occasionally all hashed to one shard and flaked the
	// both-origins assertion below.
	for seed := 0; seed < 24; seed++ {
		post(t, c.gwts.URL, "/v1/simulate", cellBody(seed))
	}

	// Size ?max to the full replay: one backend's backlog alone cannot
	// satisfy it, so both origins must appear.
	total := 0
	for _, ts := range c.backends {
		resp, err := http.Get(ts.URL + "/v1/timeline?summary=1")
		if err != nil {
			t.Fatal(err)
		}
		var sum server.TimelineSummary
		if err := json.NewDecoder(resp.Body).Decode(&sum); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if sum.Windows == 0 {
			t.Fatalf("backend %s sealed no windows; sharding should spread 8 distinct cells", ts.URL)
		}
		total += int(sum.Windows)
	}

	resp, err := http.Get(fmt.Sprintf("%s/v1/timeline?max=%d", c.gwts.URL, total))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if got := resp.Header.Get("Content-Type"); got != "application/x-ndjson" {
		t.Errorf("Content-Type = %q", got)
	}
	valid := map[string]bool{}
	for _, ts := range c.backends {
		valid[ts.URL] = true
	}
	origins := map[string]int{}
	n := 0
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		var ev server.TimelineEvent
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", sc.Text(), err)
		}
		if !valid[ev.Backend] {
			t.Fatalf("event stamped with unknown backend %q", ev.Backend)
		}
		origins[ev.Backend]++
		n++
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if n != total {
		t.Fatalf("got %d lines, want %d (?max)", n, total)
	}
	if len(origins) < 2 {
		t.Errorf("merged stream shows %d origin(s), want both backends: %v", len(origins), origins)
	}
}

// TestTimelineNoHealthyBackends pins the degraded-path behavior for
// both modes.
func TestTimelineNoHealthyBackends(t *testing.T) {
	c := newCluster(t, 1, Config{ProbeFailures: 1})
	c.backends[0].Close()
	c.servers[0].Close()
	c.gw.ProbeOnce()

	for _, q := range []string{"", "?summary=1"} {
		resp, err := http.Get(c.gwts.URL + "/v1/timeline" + q)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadGateway {
			t.Errorf("GET /v1/timeline%s status = %d, want 502", q, resp.StatusCode)
		}
	}
}

// TestTimelineMethodAndParams covers the gateway endpoint's error
// surface.
func TestTimelineMethodAndParams(t *testing.T) {
	c := newCluster(t, 1, Config{})

	resp, _ := post(t, c.gwts.URL, "/v1/timeline", "{}")
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("POST status = %d, want 405", resp.StatusCode)
	}
	for _, q := range []string{"?max=-2", "?backlog=zz"} {
		resp, err := http.Get(c.gwts.URL + "/v1/timeline" + q)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("GET %s status = %d, want 400", q, resp.StatusCode)
		}
	}
}
