package gateway

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/url"
	"strings"
	"time"
)

// Elastic membership. The ring is no longer fixed at startup:
// AddBackend and RemoveBackend rebuild the routing snapshot at
// runtime, and POST /admin/backends exposes them over HTTP so an
// operator (or an autoscaler) can resize the cluster under load.
//
// Consistent hashing makes resizes cheap on the cache plane: adding a
// backend remaps only the keys it takes ownership of, every other
// shard keeps its locality. And with the backends' persistent store
// tiers in play a joining backend is not even cold for the keys it
// inherits — it replays them from its tier-2 directory or the shared
// tier-3 set instead of recomputing, so a resize is a warm replay
// rather than a recompute storm.

// validateBackendAddr canonicalizes one backend base URL (scheme +
// host, no trailing slash).
func validateBackendAddr(addr string) (string, error) {
	addr = strings.TrimRight(strings.TrimSpace(addr), "/")
	u, err := url.Parse(addr)
	if err != nil {
		return "", fmt.Errorf("bad backend url %q: %v", addr, err)
	}
	if (u.Scheme != "http" && u.Scheme != "https") || u.Host == "" {
		return "", fmt.Errorf("bad backend url %q: want http(s)://host[:port]", addr)
	}
	return addr, nil
}

// errMembership marks add/remove refusals that are conflicts (already
// present, not present) rather than malformed input.
type errMembership string

func (e errMembership) Error() string { return string(e) }

// AddBackend joins addr to the ring. The new backend starts healthy
// and owns only the keys consistent hashing assigns it; every other
// shard's routing is untouched.
func (g *Gateway) AddBackend(addr string) error {
	addr, err := validateBackendAddr(addr)
	if err != nil {
		return err
	}
	g.clusterMu.Lock()
	defer g.clusterMu.Unlock()
	cur := g.cluster.Load()
	for _, b := range cur.backends {
		if b.addr == addr {
			return errMembership(fmt.Sprintf("backend %s already in ring", addr))
		}
	}
	backends := append(append([]*backend(nil), cur.backends...), g.newBackend(addr))
	g.swapCluster(backends)
	g.metrics.ringAdds.Add(1)
	return nil
}

// RemoveBackend drops addr from the ring. Its keys remap to the next
// points clockwise; in-flight attempts against it finish normally
// (the backend struct outlives the snapshot). Removing the last
// backend is allowed — the gateway then answers 502 until one joins.
func (g *Gateway) RemoveBackend(addr string) error {
	addr, err := validateBackendAddr(addr)
	if err != nil {
		return err
	}
	g.clusterMu.Lock()
	defer g.clusterMu.Unlock()
	cur := g.cluster.Load()
	backends := make([]*backend, 0, len(cur.backends))
	for _, b := range cur.backends {
		if b.addr != addr {
			backends = append(backends, b)
		}
	}
	if len(backends) == len(cur.backends) {
		return errMembership(fmt.Sprintf("backend %s not in ring", addr))
	}
	g.swapCluster(backends)
	g.metrics.ringRemoves.Add(1)
	return nil
}

// swapCluster publishes a new membership snapshot built over backends.
// Caller holds clusterMu.
func (g *Gateway) swapCluster(backends []*backend) {
	addrs := make([]string, len(backends))
	for i, b := range backends {
		addrs[i] = b.addr
	}
	g.cluster.Store(&membership{ring: newRing(addrs, g.cfg.Replicas), backends: backends})
}

// adminBackendsRequest is the POST /admin/backends body.
type adminBackendsRequest struct {
	Op      string `json:"op"` // "add" or "remove"
	Backend string `json:"backend"`
}

// handleAdminBackends is the membership endpoint: GET lists the ring,
// POST {"op":"add"|"remove","backend":"http://host:port"} resizes it.
// Both respond with the resulting membership.
func (g *Gateway) handleAdminBackends(w http.ResponseWriter, r *http.Request) {
	started := time.Now()
	switch r.Method {
	case http.MethodGet:
	case http.MethodPost:
		var req adminBackendsRequest
		dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<16))
		dec.DisallowUnknownFields()
		if err := dec.Decode(&req); err != nil {
			g.gwError(w, started, http.StatusBadRequest, fmt.Sprintf("bad request body: %v", err))
			return
		}
		var err error
		switch req.Op {
		case "add":
			err = g.AddBackend(req.Backend)
		case "remove":
			err = g.RemoveBackend(req.Backend)
		default:
			g.gwError(w, started, http.StatusBadRequest, fmt.Sprintf("unknown op %q (want add or remove)", req.Op))
			return
		}
		if err != nil {
			code := http.StatusBadRequest
			if _, ok := err.(errMembership); ok {
				code = http.StatusConflict
			}
			g.gwError(w, started, code, err.Error())
			return
		}
	default:
		w.Header().Set("Allow", "GET, POST")
		g.gwError(w, started, http.StatusMethodNotAllowed, "GET or POST only")
		return
	}

	type member struct {
		Addr    string `json:"addr"`
		Healthy bool   `json:"healthy"`
	}
	c := g.cluster.Load()
	out := struct {
		Backends []member `json:"backends"`
	}{Backends: make([]member, 0, len(c.backends))}
	for _, b := range c.backends {
		out.Backends = append(out.Backends, member{Addr: b.addr, Healthy: b.healthy.Load()})
	}
	body, _ := json.Marshal(out)
	body = append(body, '\n')
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	w.Write(body)
	g.metrics.observe(http.StatusOK)
}
