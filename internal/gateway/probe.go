package gateway

import (
	"io"
	"math/rand"
	"net/http"
	"time"
)

// Health probing. Two herd-control measures on top of PR 5's
// fixed-interval prober:
//
//   - Jitter: each gateway draws its next probe delay uniformly from
//     [0.5, 1.5) × interval, so a fleet of gateways (re)started
//     together does not hammer every backend's /healthz on the same
//     beat forever.
//   - Ejected-backend backoff: a backend that keeps failing probes is
//     re-probed exponentially less often (skip 1, 2, 4 … maxProbeSkip
//     rounds), so a long-dead backend costs one probe per ~16 rounds
//     instead of one per round, while a freshly ejected one is still
//     re-checked promptly.

// maxProbeSkip caps the re-probe backoff (in probe rounds).
const maxProbeSkip = 16

// probeJitter maps one uniform draw u ∈ [0, 1) to a jittered probe
// delay in [0.5, 1.5) × interval.
func probeJitter(interval time.Duration, u float64) time.Duration {
	return time.Duration(float64(interval) * (0.5 + u))
}

// reprobeSkip returns how many probe rounds to skip before re-probing
// a backend that has failed failsBeyondEject consecutive probes past
// the ejection threshold: 0, 1, 2, 4, 8, 16, 16, …
func reprobeSkip(failsBeyondEject int) int {
	if failsBeyondEject <= 0 {
		return 0
	}
	if failsBeyondEject > 5 { // 1<<4 == maxProbeSkip
		return maxProbeSkip
	}
	s := 1 << (failsBeyondEject - 1)
	if s > maxProbeSkip {
		s = maxProbeSkip
	}
	return s
}

// probeLoop drives jittered probe rounds until Close.
func (g *Gateway) probeLoop(interval time.Duration) {
	defer g.wg.Done()
	rng := rand.New(rand.NewSource(time.Now().UnixNano()))
	t := time.NewTimer(probeJitter(interval, rng.Float64()))
	defer t.Stop()
	for {
		select {
		case <-g.stop:
			return
		case <-t.C:
			g.ProbeOnce()
			t.Reset(probeJitter(interval, rng.Float64()))
		}
	}
}

// ProbeOnce runs one probe round: every due backend's /healthz is
// checked, ejecting after ProbeFailures consecutive failures and
// re-admitting on the first success. Backends deep in failure are
// skipped per reprobeSkip. Exported so tests (and operators' debug
// handlers) can force a round without waiting out the interval.
func (g *Gateway) ProbeOnce() {
	for _, b := range g.cluster.Load().backends {
		if b.probeSkip > 0 {
			b.probeSkip--
			continue
		}
		resp, err := g.probec.Get(b.addr + "/healthz")
		ok := err == nil && resp.StatusCode == http.StatusOK
		if resp != nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}
		if ok {
			b.probeFails = 0
			b.probeSkip = 0
			b.healthy.Store(true)
			continue
		}
		b.probeFails++
		if b.probeFails >= g.cfg.ProbeFailures {
			b.healthy.Store(false)
			b.probeSkip = reprobeSkip(b.probeFails - g.cfg.ProbeFailures)
		}
	}
}
