package gateway

import (
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"
)

// TestProbeJitterRange: jitter maps the unit interval onto
// [0.5, 1.5) × interval, table-driven over the draw.
func TestProbeJitterRange(t *testing.T) {
	const interval = 2 * time.Second
	cases := []struct {
		u    float64
		want time.Duration
	}{
		{0, time.Second},
		{0.25, 1500 * time.Millisecond},
		{0.5, 2 * time.Second},
		{0.75, 2500 * time.Millisecond},
		{0.999, 2998 * time.Millisecond},
	}
	for _, tc := range cases {
		if got := probeJitter(interval, tc.u); got != tc.want {
			t.Errorf("probeJitter(2s, %v) = %v, want %v", tc.u, got, tc.want)
		}
	}
}

// TestReprobeSkip: the ejected-backend re-probe backoff is exponential
// and capped.
func TestReprobeSkip(t *testing.T) {
	cases := []struct {
		fails, want int
	}{
		{-1, 0}, {0, 0}, {1, 1}, {2, 2}, {3, 4}, {4, 8},
		{5, 16}, {6, 16}, {50, 16},
	}
	for _, tc := range cases {
		if got := reprobeSkip(tc.fails); got != tc.want {
			t.Errorf("reprobeSkip(%d) = %d, want %d", tc.fails, got, tc.want)
		}
	}
}

// TestProbeBackoffThundering: a backend that stays dead is probed
// exponentially less often — the old prober hit it every round, so a
// long outage cost one wasted probe per round per gateway (the herd).
func TestProbeBackoffThundering(t *testing.T) {
	var probes atomic.Int64
	var down atomic.Bool
	fake := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		probes.Add(1)
		if down.Load() {
			w.WriteHeader(http.StatusInternalServerError)
			return
		}
		w.WriteHeader(http.StatusOK)
	}))
	defer fake.Close()
	gw, err := New(Config{Backends: []string{fake.URL}, ProbeInterval: -1, ProbeFailures: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer gw.Close()

	down.Store(true)
	// Rounds 1,2 probe and eject (fails 1, 2 → skip 0). Then the
	// backoff ladder: round 3 probes (fails 3 → skip 1), round 4
	// skipped, round 5 probes (fails 4 → skip 2), rounds 6-7 skipped,
	// round 8 probes. 16 rounds: probes at 1,2,3,5,8,13 = 6 probes.
	for i := 0; i < 16; i++ {
		gw.ProbeOnce()
	}
	if got := probes.Load(); got != 6 {
		t.Errorf("dead backend probed %d times in 16 rounds, want 6 (backoff)", got)
	}
	if gw.Healthy() != 0 {
		t.Fatal("dead backend not ejected")
	}

	// Recovery: the next non-skipped probe re-admits it and resets the
	// backoff so a later ejection is re-checked promptly again.
	down.Store(false)
	for i := 0; i < maxProbeSkip+1; i++ {
		gw.ProbeOnce()
		if gw.Healthy() == 1 {
			break
		}
	}
	if gw.Healthy() != 1 {
		t.Fatal("recovered backend never re-admitted within a full backoff period")
	}
	b := gw.cluster.Load().backends[0]
	if b.probeFails != 0 || b.probeSkip != 0 {
		t.Errorf("recovery left probeFails=%d probeSkip=%d, want 0/0", b.probeFails, b.probeSkip)
	}
}
