package bus

import (
	"encoding/binary"
	"math"
)

// DefaultCacheSize bounds the equilibrium cache. Workload demands are
// piecewise-constant across phases, so the set of distinct request
// vectors a run presents is small (co-scheduled phase combinations);
// a few hundred entries covers even the robustness sweeps while
// keeping memory flat over 9000-quantum runs.
const DefaultCacheSize = 512

// allocEntry is one memoized equilibrium: the exact grants and outcome
// computed for one request vector. Entries form a doubly-linked list
// in recency order (head = most recently used).
type allocEntry struct {
	key        string
	grants     []Grant
	outcome    Outcome
	prev, next *allocEntry
}

// allocCache is a bounded LRU over exact request-vector keys. Keys are
// the raw IEEE-754 bits of every (Demand, StallFrac) pair, so a hit
// replays the bit-identical grants of the original solve — no
// warm-start approximation, no tolerance, no drift. Not safe for
// concurrent use; the owning Model serializes access.
type allocCache struct {
	limit      int
	entries    map[string]*allocEntry
	head, tail *allocEntry
}

func newAllocCache(limit int) *allocCache {
	return &allocCache{limit: limit, entries: make(map[string]*allocEntry, limit)}
}

// appendKey encodes reqs into dst as the exact float64 bit patterns,
// reusing dst's capacity. Two vectors collide only if every demand and
// stall fraction is bit-for-bit equal, in order.
func appendKey(dst []byte, reqs []Request) []byte {
	for _, r := range reqs {
		dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(float64(r.Demand)))
		dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(r.StallFrac))
	}
	return dst
}

// get returns the entry for key and promotes it to most-recent, or nil.
// The []byte→string conversion in the map lookup does not allocate.
func (c *allocCache) get(key []byte) *allocEntry {
	e, ok := c.entries[string(key)]
	if !ok {
		return nil
	}
	c.moveToFront(e)
	return e
}

// put inserts a new entry for key, evicting the least recently used
// entry once the cache is full. grants must be a private copy.
func (c *allocCache) put(key []byte, grants []Grant, out Outcome) {
	if len(c.entries) >= c.limit {
		c.evictOldest()
	}
	e := &allocEntry{key: string(key), grants: grants, outcome: out}
	c.entries[e.key] = e
	c.pushFront(e)
}

// Len returns the number of cached equilibria.
func (c *allocCache) Len() int { return len(c.entries) }

func (c *allocCache) pushFront(e *allocEntry) {
	e.prev = nil
	e.next = c.head
	if c.head != nil {
		c.head.prev = e
	}
	c.head = e
	if c.tail == nil {
		c.tail = e
	}
}

func (c *allocCache) moveToFront(e *allocEntry) {
	if c.head == e {
		return
	}
	// Unlink (e is not the head, so e.prev != nil).
	e.prev.next = e.next
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		c.tail = e.prev
	}
	c.pushFront(e)
}

func (c *allocCache) evictOldest() {
	e := c.tail
	if e == nil {
		return
	}
	delete(c.entries, e.key)
	c.tail = e.prev
	if c.tail != nil {
		c.tail.next = nil
	} else {
		c.head = nil
	}
}
