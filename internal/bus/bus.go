// Package bus models the shared front-side bus of the paper's 4-way
// Xeon SMP: a single split-transaction bus with bounded sustained
// throughput whose per-transaction latency inflates under load.
//
// # Model
//
// Each running thread i is characterized by its solo bus demand d_i
// (transactions/usec when it runs alone) and its memory-stall fraction
// f_i (share of its solo runtime spent waiting for bus transactions).
// When a set of threads shares the bus, every transaction's latency is
// stretched by a common factor X >= 1, so thread i progresses at
//
//	speed_i = 1 / ((1 - f_i) + f_i*X)
//
// of its solo pace and issues an actual rate g_i = d_i * speed_i. The
// bus is a closed queueing system: the stretch settles at the unique
// fixed point where the M/M/1-flavoured delay curve evaluated at the
// resulting utilization reproduces X itself,
//
//	X = 1 + k * rho^g/(1-rho),  rho = (sum_i g_i) / C_eff
//
// with effective capacity C_eff = C * (1 - a*(n-1)) degraded by
// arbitration among n active bus masters. The fixed point exists and
// is unique because served throughput falls monotonically in X while
// the delay curve rises monotonically in utilization; we find it by
// bisection.
//
// The constants are calibrated in internal/workload so the model
// reproduces the paper's Section 3 measurements: a CPU-bound thread
// (f~0) is unharmed even on a saturated bus, while a memory-bound
// application sharing the bus with two copies of the BBMA
// microbenchmark slows down 2x-3x (Figure 1B).
package bus

import (
	"errors"
	"fmt"
	"math"
	"sync"

	"busaware/internal/units"
)

// Config holds the bus model parameters.
type Config struct {
	// Capacity is the sustained transaction throughput with all
	// processors issuing, as measured by STREAM (29.5 trans/usec on
	// the paper's machine).
	Capacity units.Rate

	// ArbPenalty is the fractional capacity lost per additional bus
	// master beyond the first, modelling arbitration overhead. The
	// paper observes that "contention and arbitration contribute to
	// bandwidth consumption" before nominal saturation.
	ArbPenalty float64

	// MinCapacityFrac floors the arbitration degradation so capacity
	// never collapses entirely.
	MinCapacityFrac float64

	// QueueFactor is k in the delay curve 1 + k*rho^g/(1-rho).
	QueueFactor float64

	// CurveExponent is g in the delay curve. A large exponent keeps the
	// curve flat at moderate utilization — per-thread demands are
	// calibrated from *solo measured* runs, which already include the
	// application's self-contention — and makes it bite only near
	// saturation, which is where the paper's machine degraded.
	CurveExponent float64

	// MaxStretch bounds the latency inflation searched for; demand far
	// beyond capacity saturates at this stretch.
	MaxStretch float64

	// MasterThreshold is the demand (trans/usec) above which a thread
	// counts as a bus master for arbitration purposes. nBBMA-like
	// threads (0.0037 trans/usec) should not.
	MasterThreshold units.Rate

	// Unfairness models the arbitration advantage of streaming threads:
	// a thread that always has the next miss queued (BBMA) wins
	// back-to-back arbitration rounds, while threads with dependent
	// misses lose turns. A thread's latency stretch is amplified by
	// 1 + Unfairness*(1 - d/dmax), so the lightest co-runner suffers
	// the most relative delay — the effect behind the paper's 2.5-2.8x
	// victim slowdowns next to BBMA. Zero restores fair sharing.
	Unfairness float64
}

// DefaultConfig returns the calibration used throughout the
// reproduction, pinned to the paper's machine constants.
func DefaultConfig() Config {
	return Config{
		Capacity:        units.SustainedBusRate,
		ArbPenalty:      0.004,
		MinCapacityFrac: 0.5,
		QueueFactor:     0.05,
		CurveExponent:   6,
		MaxStretch:      10000,
		MasterThreshold: 0.25,
		Unfairness:      0.75,
	}
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if c.Capacity <= 0 {
		return errors.New("bus: capacity must be positive")
	}
	if c.ArbPenalty < 0 || c.ArbPenalty >= 1 {
		return fmt.Errorf("bus: arbitration penalty %v out of [0,1)", c.ArbPenalty)
	}
	if c.MinCapacityFrac <= 0 || c.MinCapacityFrac > 1 {
		return fmt.Errorf("bus: min capacity fraction %v out of (0,1]", c.MinCapacityFrac)
	}
	if c.QueueFactor < 0 {
		return errors.New("bus: queue factor must be non-negative")
	}
	if c.CurveExponent < 1 {
		return errors.New("bus: curve exponent must be >= 1")
	}
	if c.MaxStretch < 1 {
		return errors.New("bus: max stretch must be >= 1")
	}
	if c.MasterThreshold < 0 {
		return errors.New("bus: master threshold must be non-negative")
	}
	if c.Unfairness < 0 {
		return errors.New("bus: unfairness must be non-negative")
	}
	return nil
}

// Request describes one running thread's bus behaviour.
type Request struct {
	// Demand is the thread's solo transaction rate, trans/usec.
	Demand units.Rate
	// StallFrac is the fraction of solo runtime spent stalled on bus
	// transactions, in [0,1].
	StallFrac float64
}

// Grant is the bus model's answer for one thread.
type Grant struct {
	// Speed is the thread's progress rate as a fraction of solo speed,
	// in (0,1].
	Speed float64
	// Rate is the transaction rate actually achieved, trans/usec.
	Rate units.Rate
}

// Outcome summarizes one allocation round.
type Outcome struct {
	// Masters is the number of threads that counted as bus masters.
	Masters int
	// EffectiveCapacity is capacity after arbitration degradation.
	EffectiveCapacity units.Rate
	// Offered is the sum of solo demands.
	Offered units.Rate
	// Served is the sum of achieved rates.
	Served units.Rate
	// Utilization is Served / EffectiveCapacity.
	Utilization float64
	// Stretch is the equilibrium latency inflation X.
	Stretch float64
	// Saturated reports whether the equilibrium sits on the congested
	// branch (utilization above the saturation knee).
	Saturated bool
}

// Model evaluates bus contention for co-scheduled thread sets.
//
// Equilibria are memoized: demands are piecewise-constant across
// workload phases, so consecutive micro-steps present the same request
// vector over and over, and each distinct vector's fixed point is
// solved once and replayed bit-for-bit from a bounded LRU keyed on the
// exact float64 bits of the requests. Safe for concurrent use.
type Model struct {
	cfg Config

	mu     sync.Mutex
	cache  *allocCache
	keyBuf []byte
	hits   uint64
	misses uint64
}

// New builds a Model, validating cfg.
func New(cfg Config) (*Model, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Model{cfg: cfg, cache: newAllocCache(DefaultCacheSize)}, nil
}

// Config returns the model's configuration.
func (m *Model) Config() Config { return m.cfg }

// CacheStats reports the equilibrium cache's hit/miss counts and
// current size, for perf instrumentation.
func (m *Model) CacheStats() (hits, misses uint64, size int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.hits, m.misses, m.cache.Len()
}

// SaturationKnee is the utilization above which an outcome is labelled
// saturated.
const SaturationKnee = 0.85

// Allocate computes the equilibrium grants for the given co-scheduled
// thread set. A nil or empty request set returns no grants and an idle
// outcome. Requests with non-positive demand receive full speed.
func (m *Model) Allocate(reqs []Request) ([]Grant, Outcome) {
	return m.AllocateInto(nil, reqs)
}

// AllocateInto is Allocate with a caller-supplied grant buffer: dst's
// capacity is reused when possible, so a steady-state caller (the
// machine's micro-step loop) allocates nothing. The returned slice has
// exactly len(reqs) grants and aliases dst's backing array when it
// fits.
func (m *Model) AllocateInto(dst []Grant, reqs []Request) ([]Grant, Outcome) {
	out := Outcome{Stretch: 1}
	if len(reqs) == 0 {
		out.EffectiveCapacity = m.cfg.Capacity
		return nil, out
	}

	m.mu.Lock()
	m.keyBuf = appendKey(m.keyBuf[:0], reqs)
	if e := m.cache.get(m.keyBuf); e != nil {
		m.hits++
		grants := append(dst[:0], e.grants...)
		out = e.outcome
		m.mu.Unlock()
		return grants, out
	}
	m.misses++

	masters := 0
	var offered units.Rate
	for _, r := range reqs {
		if r.Demand > m.cfg.MasterThreshold {
			masters++
		}
		if r.Demand > 0 {
			offered += r.Demand
		}
	}
	ceff := m.effectiveCapacity(masters)
	out.Masters = masters
	out.EffectiveCapacity = ceff
	out.Offered = offered

	dmax := maxDemand(reqs)
	x := m.solveStretch(reqs, ceff, dmax, offered)
	out.Stretch = x

	grants := dst[:0]
	var served units.Rate
	for _, r := range reqs {
		sp := m.speedAt(r, x, dmax)
		g := Grant{Speed: sp, Rate: units.Rate(math.Max(0, float64(r.Demand))) * units.Rate(sp)}
		grants = append(grants, g)
		served += g.Rate
	}
	out.Served = served
	if ceff > 0 {
		out.Utilization = float64(served / ceff)
	}
	out.Saturated = out.Utilization > SaturationKnee
	m.cache.put(m.keyBuf, append([]Grant(nil), grants...), out)
	m.mu.Unlock()
	return grants, out
}

// effectiveCapacity applies the arbitration penalty for n masters.
func (m *Model) effectiveCapacity(masters int) units.Rate {
	if masters <= 1 {
		return m.cfg.Capacity
	}
	frac := 1 - m.cfg.ArbPenalty*float64(masters-1)
	if frac < m.cfg.MinCapacityFrac {
		frac = m.cfg.MinCapacityFrac
	}
	return m.cfg.Capacity * units.Rate(frac)
}

// maxDemand returns the largest positive demand among reqs.
func maxDemand(reqs []Request) units.Rate {
	var m units.Rate
	for _, r := range reqs {
		if r.Demand > m {
			m = r.Demand
		}
	}
	return m
}

// speedAt evaluates a thread's progress fraction at base stretch x,
// amplifying the stretch for threads lighter than the heaviest
// co-runner (arbitration unfairness).
func (m *Model) speedAt(r Request, x float64, dmax units.Rate) float64 {
	f := r.StallFrac
	if f < 0 {
		f = 0
	}
	if f > 1 {
		f = 1
	}
	if r.Demand <= 0 {
		return 1
	}
	w := 1.0
	if dmax > 0 && m.cfg.Unfairness > 0 {
		w = 1 + m.cfg.Unfairness*(1-float64(r.Demand/dmax))
	}
	xt := 1 + (x-1)*w
	return 1 / ((1 - f) + f*xt)
}

// servedAt sums the achieved transaction rates at stretch x.
func (m *Model) servedAt(reqs []Request, x float64, dmax units.Rate) units.Rate {
	var s units.Rate
	for _, r := range reqs {
		if r.Demand <= 0 {
			continue
		}
		s += r.Demand * units.Rate(m.speedAt(r, x, dmax))
	}
	return s
}

// delayCurve evaluates the open-loop latency inflation at utilization
// rho. It is clamped just below 1 to stay finite; the bisection then
// settles wherever the closed-loop equilibrium lies.
func (m *Model) delayCurve(rho float64) float64 {
	if rho < 0 {
		rho = 0
	}
	const rhoCap = 0.999
	if rho > rhoCap {
		rho = rhoCap
	}
	return 1 + m.cfg.QueueFactor*math.Pow(rho, m.cfg.CurveExponent)/(1-rho)
}

// solveStretch finds the unique fixed point of
// X = delayCurve(served(X)/ceff) by bisection. F(X) = X - delay(...)
// is strictly increasing: served falls with X, delay rises with
// served, so -delay rises with X.
func (m *Model) solveStretch(reqs []Request, ceff, dmax, offered units.Rate) float64 {
	if ceff <= 0 {
		return m.cfg.MaxStretch
	}
	// Early-out hoisted before the bracket: with no offered load (or a
	// flat delay curve) the delay at X=1 is exactly 1, so f(1) = 0 and
	// the bisection below would return 1 anyway — prove it without
	// scanning reqs or evaluating the curve.
	if offered <= 0 || m.cfg.QueueFactor == 0 {
		return 1
	}
	f := func(x float64) float64 {
		rho := float64(m.servedAt(reqs, x, dmax) / ceff)
		return x - m.delayCurve(rho)
	}
	lo, hi := 1.0, m.cfg.MaxStretch
	if f(lo) >= 0 {
		return lo // no contention at all
	}
	if f(hi) <= 0 {
		return hi // pinned at the cap
	}
	for i := 0; i < 100; i++ {
		mid := (lo + hi) / 2
		if f(mid) < 0 {
			lo = mid
		} else {
			hi = mid
		}
		if hi-lo < 1e-9*hi {
			break
		}
	}
	return (lo + hi) / 2
}
