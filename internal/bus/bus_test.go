package bus

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"busaware/internal/units"
)

func mustModel(t *testing.T, cfg Config) *Model {
	t.Helper()
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestConfigValidate(t *testing.T) {
	tests := []struct {
		name   string
		mutate func(*Config)
		ok     bool
	}{
		{"default", func(*Config) {}, true},
		{"zero-capacity", func(c *Config) { c.Capacity = 0 }, false},
		{"neg-arb", func(c *Config) { c.ArbPenalty = -0.1 }, false},
		{"arb-one", func(c *Config) { c.ArbPenalty = 1 }, false},
		{"zero-minfrac", func(c *Config) { c.MinCapacityFrac = 0 }, false},
		{"neg-queue", func(c *Config) { c.QueueFactor = -1 }, false},
		{"stretch-lt-1", func(c *Config) { c.MaxStretch = 0.5 }, false},
		{"neg-threshold", func(c *Config) { c.MasterThreshold = -1 }, false},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			cfg := DefaultConfig()
			tc.mutate(&cfg)
			_, err := New(cfg)
			if (err == nil) != tc.ok {
				t.Errorf("New err = %v, want ok=%v", err, tc.ok)
			}
		})
	}
}

func TestEmptyAllocation(t *testing.T) {
	m := mustModel(t, DefaultConfig())
	grants, out := m.Allocate(nil)
	if len(grants) != 0 {
		t.Errorf("grants = %v, want none", grants)
	}
	if out.Stretch != 1 || out.Served != 0 || out.Saturated {
		t.Errorf("idle outcome = %+v", out)
	}
}

func TestSoloThreadUnharmed(t *testing.T) {
	m := mustModel(t, DefaultConfig())
	grants, out := m.Allocate([]Request{{Demand: 11.6, StallFrac: 0.6}})
	if len(grants) != 1 {
		t.Fatalf("got %d grants", len(grants))
	}
	// A single CG-like job offers ~40% of capacity; contention should
	// cost it only a few percent.
	if grants[0].Speed < 0.92 {
		t.Errorf("solo speed = %.3f, want near 1", grants[0].Speed)
	}
	if out.Saturated {
		t.Error("single moderate job should not saturate the bus")
	}
}

func TestZeroDemandThreadFullSpeed(t *testing.T) {
	m := mustModel(t, DefaultConfig())
	grants, _ := m.Allocate([]Request{
		{Demand: 0, StallFrac: 0},
		{Demand: 23.6, StallFrac: 0.97},
		{Demand: 23.6, StallFrac: 0.97},
	})
	if grants[0].Speed != 1 || grants[0].Rate != 0 {
		t.Errorf("compute-bound thread grant = %+v, want full speed", grants[0])
	}
}

// The paper's headline: a memory-bound application on a bus saturated
// by two BBMA instances slows 2x to almost 3x.
func TestSaturatedBusSlowdownBand(t *testing.T) {
	m := mustModel(t, DefaultConfig())
	// CG: 23.31 trans/us across 2 threads; BBMA: 23.6 trans/us each.
	reqs := []Request{
		{Demand: 11.65, StallFrac: 0.65}, // CG thread 1
		{Demand: 11.65, StallFrac: 0.65}, // CG thread 2
		{Demand: 23.6, StallFrac: 0.97},  // BBMA
		{Demand: 23.6, StallFrac: 0.97},  // BBMA
	}
	grants, out := m.Allocate(reqs)
	slowdown := 1 / grants[0].Speed
	if slowdown < 1.8 || slowdown > 3.2 {
		t.Errorf("memory-bound slowdown on saturated bus = %.2f, want 2x-3x", slowdown)
	}
	if !out.Saturated {
		t.Errorf("outcome not saturated: %+v", out)
	}
	if out.Served > out.EffectiveCapacity*1.001 {
		t.Errorf("served %.2f exceeds capacity %.2f", out.Served, out.EffectiveCapacity)
	}
}

// nBBMA companions leave an application at essentially solo speed
// (Figure 1, white bars).
func TestNBBMACompanionsHarmless(t *testing.T) {
	m := mustModel(t, DefaultConfig())
	reqs := []Request{
		{Demand: 11.65, StallFrac: 0.65},
		{Demand: 11.65, StallFrac: 0.65},
		{Demand: 0.0037, StallFrac: 0.001},
		{Demand: 0.0037, StallFrac: 0.001},
	}
	grants, out := m.Allocate(reqs)
	if grants[0].Speed < 0.90 {
		t.Errorf("app speed with nBBMA = %.3f, want ~solo", grants[0].Speed)
	}
	if out.Saturated {
		t.Error("nBBMA pairing should not saturate")
	}
	// nBBMA threads themselves are unharmed.
	if grants[2].Speed < 0.99 {
		t.Errorf("nBBMA speed = %.3f", grants[2].Speed)
	}
}

// Two instances of a high-bandwidth app suffer the paper's 41-61%
// degradation band (Figure 1B, dark gray bars, top-4 apps).
func TestTwoInstanceDegradationBand(t *testing.T) {
	m := mustModel(t, DefaultConfig())
	for _, app := range []struct {
		name      string
		perThread units.Rate
		stall     float64
	}{
		{"SP", 7.5, 0.55},
		{"MG", 8.2, 0.60},
		{"Raytrace", 8.7, 0.60},
		{"CG", 11.65, 0.65},
	} {
		reqs := []Request{
			{Demand: app.perThread, StallFrac: app.stall},
			{Demand: app.perThread, StallFrac: app.stall},
			{Demand: app.perThread, StallFrac: app.stall},
			{Demand: app.perThread, StallFrac: app.stall},
		}
		grants, _ := m.Allocate(reqs)
		deg := 1/grants[0].Speed - 1
		// The paper reports 41-61%; a work-conserving queueing model
		// cannot degrade mild overcommitment (SP: 1.7% over capacity)
		// that hard, so accept a wider band that still demands real
		// contention.
		if deg < 0.10 || deg > 0.80 {
			t.Errorf("%s two-instance degradation = %.0f%%, want within wide 10-80%% band", app.name, deg*100)
		}
	}
}

func TestArbitrationPenalty(t *testing.T) {
	m := mustModel(t, DefaultConfig())
	if got := m.effectiveCapacity(1); got != m.cfg.Capacity {
		t.Errorf("1 master capacity = %v", got)
	}
	c4 := m.effectiveCapacity(4)
	if c4 >= m.cfg.Capacity {
		t.Error("4-master capacity should be degraded")
	}
	// Floor applies.
	cLots := m.effectiveCapacity(1000)
	if got, want := float64(cLots), float64(m.cfg.Capacity)*m.cfg.MinCapacityFrac; math.Abs(got-want) > 1e-9 {
		t.Errorf("floored capacity = %v, want %v", got, want)
	}
}

func TestZeroCapacityFloorViaMaxStretch(t *testing.T) {
	cfg := DefaultConfig()
	m := mustModel(t, cfg)
	x := m.solveStretch([]Request{{Demand: 10, StallFrac: 1}}, 0, 10, 10)
	if x != cfg.MaxStretch {
		t.Errorf("zero-capacity stretch = %v, want MaxStretch", x)
	}
}

// Property: work conservation — served never exceeds effective
// capacity by more than the solver tolerance, and never exceeds
// offered demand.
func TestWorkConservationProperty(t *testing.T) {
	m := mustModel(t, DefaultConfig())
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		k := int(n%8) + 1
		reqs := make([]Request, k)
		for i := range reqs {
			reqs[i] = Request{
				Demand:    units.Rate(rng.Float64() * 25),
				StallFrac: rng.Float64(),
			}
		}
		grants, out := m.Allocate(reqs)
		var served units.Rate
		for _, g := range grants {
			if g.Speed <= 0 || g.Speed > 1+1e-9 {
				return false
			}
			served += g.Rate
		}
		if math.Abs(float64(served-out.Served)) > 1e-6 {
			return false
		}
		if out.Served > out.Offered+1e-6 {
			return false
		}
		// On the congested branch the equilibrium may slightly exceed
		// nominal capacity only via solver tolerance.
		return float64(out.Served) <= float64(out.EffectiveCapacity)*1.01+1e-6 ||
			out.Stretch == m.cfg.MaxStretch
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: adding demand never speeds anyone up (monotonicity).
func TestMonotonicContentionProperty(t *testing.T) {
	m := mustModel(t, DefaultConfig())
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		base := []Request{
			{Demand: units.Rate(rng.Float64() * 12), StallFrac: rng.Float64()},
			{Demand: units.Rate(rng.Float64() * 12), StallFrac: rng.Float64()},
		}
		g1, _ := m.Allocate(base)
		extra := append(append([]Request(nil), base...),
			Request{Demand: units.Rate(5 + rng.Float64()*20), StallFrac: 0.9})
		g2, _ := m.Allocate(extra)
		for i := range base {
			if g2[i].Speed > g1[i].Speed+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: the fixed point really is a fixed point.
func TestStretchFixedPointProperty(t *testing.T) {
	m := mustModel(t, DefaultConfig())
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		k := int(n%6) + 1
		reqs := make([]Request, k)
		for i := range reqs {
			reqs[i] = Request{Demand: units.Rate(rng.Float64() * 24), StallFrac: 0.2 + 0.8*rng.Float64()}
		}
		_, out := m.Allocate(reqs)
		if out.Stretch >= m.cfg.MaxStretch {
			return true // pinned; not an interior fixed point
		}
		rho := float64(out.Served / out.EffectiveCapacity)
		want := m.delayCurve(rho)
		return math.Abs(out.Stretch-want) < 1e-3*want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestStallFracClamped(t *testing.T) {
	m := mustModel(t, DefaultConfig())
	if got := m.speedAt(Request{Demand: 5, StallFrac: -1}, 3, 5); got != 1 {
		t.Errorf("negative stall frac speed = %v, want 1", got)
	}
	if got := m.speedAt(Request{Demand: 5, StallFrac: 2}, 4, 5); math.Abs(got-0.25) > 1e-12 {
		t.Errorf("clamped stall frac speed = %v, want 0.25", got)
	}
}

func TestUnfairnessPenalizesLightThreads(t *testing.T) {
	m := mustModel(t, DefaultConfig())
	reqs := []Request{
		{Demand: 11.65, StallFrac: 0.65}, // app thread
		{Demand: 23.6, StallFrac: 0.65},  // streaming antagonist (same f for isolation)
		{Demand: 23.6, StallFrac: 0.65},
	}
	grants, _ := m.Allocate(reqs)
	if grants[0].Speed >= grants[1].Speed {
		t.Errorf("light thread speed %.3f should trail heavy %.3f under unfair arbitration",
			grants[0].Speed, grants[1].Speed)
	}

	fair := DefaultConfig()
	fair.Unfairness = 0
	mf := mustModel(t, fair)
	gf, _ := mf.Allocate(reqs)
	if math.Abs(gf[0].Speed-gf[1].Speed) > 1e-9 {
		t.Errorf("fair bus should treat equal-f threads equally: %.3f vs %.3f", gf[0].Speed, gf[1].Speed)
	}
	if _, err := New(Config{Capacity: 1, MinCapacityFrac: 1, CurveExponent: 1, MaxStretch: 1, Unfairness: -1}); err == nil {
		t.Error("negative unfairness accepted")
	}
}

func BenchmarkAllocate8Threads(b *testing.B) {
	m, _ := New(DefaultConfig())
	reqs := []Request{
		{Demand: 11.65, StallFrac: 0.65}, {Demand: 11.65, StallFrac: 0.65},
		{Demand: 23.6, StallFrac: 0.97}, {Demand: 23.6, StallFrac: 0.97},
		{Demand: 0.0037, StallFrac: 0.001}, {Demand: 0.0037, StallFrac: 0.001},
		{Demand: 4.1, StallFrac: 0.3}, {Demand: 4.1, StallFrac: 0.3},
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		m.Allocate(reqs)
	}
}
