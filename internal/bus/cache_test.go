package bus

import (
	"math/rand"
	"testing"

	"busaware/internal/units"
)

func randReqs(rng *rand.Rand) []Request {
	n := rng.Intn(8) + 1
	reqs := make([]Request, n)
	for i := range reqs {
		reqs[i] = Request{
			Demand:    units.Rate(rng.Float64() * 30),
			StallFrac: rng.Float64(),
		}
	}
	return reqs
}

// Property: the memoized Allocate is bit-identical to an uncached
// solve for every request vector, on both the miss path (first call)
// and the hit path (replay), across randomized vectors that overflow
// the LRU bound many times over.
func TestCacheBitIdenticalToUncached(t *testing.T) {
	cached := mustModel(t, DefaultConfig())
	rng := rand.New(rand.NewSource(42))

	vectors := make([][]Request, 4*DefaultCacheSize)
	for i := range vectors {
		vectors[i] = randReqs(rng)
	}

	check := func(pass string, vecs [][]Request) {
		for vi, reqs := range vecs {
			// A fresh model per vector is the uncached reference: its
			// first solve cannot hit.
			fresh := mustModel(t, DefaultConfig())
			wantG, wantO := fresh.Allocate(reqs)
			gotG, gotO := cached.Allocate(reqs)
			if gotO != wantO {
				t.Fatalf("%s: vector %d outcome diverged:\ngot  %+v\nwant %+v", pass, vi, gotO, wantO)
			}
			for i := range wantG {
				if gotG[i] != wantG[i] {
					t.Fatalf("%s: vector %d grant %d diverged: got %+v want %+v", pass, vi, i, gotG[i], wantG[i])
				}
			}
		}
	}
	// The full sequential pass overflows the LRU 4x over, so by the
	// time any vector would repeat it has been evicted — every call is
	// a miss-and-re-solve after eviction. The tail pass then replays
	// the most recently inserted vectors, which are still resident, so
	// it exercises the hit path against the same fresh-model oracle.
	check("populate", vectors)
	check("replay-tail", vectors[len(vectors)-DefaultCacheSize/2:])

	hits, misses, size := cached.CacheStats()
	if size > DefaultCacheSize {
		t.Errorf("cache grew past its bound: %d > %d", size, DefaultCacheSize)
	}
	if hits < uint64(DefaultCacheSize/2) {
		t.Errorf("tail replay should hit resident entries: %d hits", hits)
	}
	if misses < uint64(len(vectors)) {
		t.Errorf("eviction never forced a re-solve: %d misses for %d vectors", misses, len(vectors))
	}
}

// A hit must replay the identical grants even when the same vector is
// presented through a different backing slice, and repeated hits keep
// promoting the entry so a hot vector survives interleaved churn.
func TestCacheHitSurvivesChurn(t *testing.T) {
	m := mustModel(t, DefaultConfig())
	hot := []Request{{Demand: 12, StallFrac: 0.8}, {Demand: 3, StallFrac: 0.4}}
	wantG, wantO := m.Allocate(hot)

	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 3*DefaultCacheSize; i++ {
		m.Allocate(randReqs(rng)) // churn
		hotCopy := append([]Request(nil), hot...)
		gotG, gotO := m.Allocate(hotCopy) // keep the hot entry fresh
		if gotO != wantO {
			t.Fatalf("churn round %d: outcome diverged", i)
		}
		for k := range wantG {
			if gotG[k] != wantG[k] {
				t.Fatalf("churn round %d: grant %d diverged", i, k)
			}
		}
	}
	_, _, size := m.CacheStats()
	if size > DefaultCacheSize {
		t.Errorf("cache grew past its bound: %d", size)
	}
}

// AllocateInto must not allocate on the hit path.
func TestAllocateIntoHitPathZeroAllocs(t *testing.T) {
	m := mustModel(t, DefaultConfig())
	reqs := []Request{{Demand: 10, StallFrac: 0.9}, {Demand: 2, StallFrac: 0.3}}
	grants, _ := m.AllocateInto(nil, reqs) // prime
	avg := testing.AllocsPerRun(100, func() {
		grants, _ = m.AllocateInto(grants, reqs)
	})
	if avg != 0 {
		t.Errorf("hit path allocates %v times per call, want 0", avg)
	}
}
