package bus

import (
	"testing"

	"busaware/internal/units"
)

// benchReqs is a saturated mixed request vector shaped like the
// Figure 2C co-schedules: two application threads, one BBMA, one
// nBBMA.
var benchReqs = []Request{
	{Demand: 6.2, StallFrac: 0.55},
	{Demand: 6.2, StallFrac: 0.55},
	{Demand: 21.1, StallFrac: 0.97},
	{Demand: 0.0037, StallFrac: 0.01},
}

// BenchmarkBusAllocate measures the steady-state equilibrium cost:
// after the first solve the vector repeats, so this is the memoized
// replay path the simulator's micro-step loop lives on.
func BenchmarkBusAllocate(b *testing.B) {
	m, err := New(DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	var grants []Grant
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		grants, _ = m.AllocateInto(grants, benchReqs)
	}
}

// BenchmarkBusAllocateCold measures the uncached fixed-point solve by
// perturbing one demand every iteration so no vector ever repeats
// within the LRU bound.
func BenchmarkBusAllocateCold(b *testing.B) {
	m, err := New(DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	reqs := append([]Request(nil), benchReqs...)
	var grants []Grant
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		reqs[0].Demand = 6 + units.Rate(i%100000)*1e-6
		grants, _ = m.AllocateInto(grants, reqs)
	}
}
