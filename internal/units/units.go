// Package units provides the typed quantities used throughout the
// simulator: simulated time in microseconds, byte counts, and bus
// transaction rates.
//
// The paper's machine moves 64 bytes per bus transaction and sustains
// 29.5 transactions/usec (measured with STREAM); those constants are
// exported here so that every package that needs them agrees on the
// calibration.
package units

import "fmt"

// Time is simulated time in microseconds. The simulator is quantum
// stepped, so Time only ever advances in multiples of the sampling
// period, but sub-quantum arithmetic must still be exact; microsecond
// integer resolution is ample for 100-200ms quanta.
type Time int64

// Common durations.
const (
	Microsecond Time = 1
	Millisecond Time = 1000 * Microsecond
	Second      Time = 1000 * Millisecond
)

// Seconds returns t expressed in seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// Millis returns t expressed in milliseconds.
func (t Time) Millis() float64 { return float64(t) / float64(Millisecond) }

func (t Time) String() string {
	switch {
	case t >= Second:
		return fmt.Sprintf("%.3fs", t.Seconds())
	case t >= Millisecond:
		return fmt.Sprintf("%.3fms", t.Millis())
	default:
		return fmt.Sprintf("%dus", int64(t))
	}
}

// Bytes is a byte count.
type Bytes int64

// Common sizes.
const (
	KB Bytes = 1 << 10
	MB Bytes = 1 << 20
	GB Bytes = 1 << 30
)

func (b Bytes) String() string {
	switch {
	case b >= GB:
		return fmt.Sprintf("%.2fGB", float64(b)/float64(GB))
	case b >= MB:
		return fmt.Sprintf("%.2fMB", float64(b)/float64(MB))
	case b >= KB:
		return fmt.Sprintf("%.2fKB", float64(b)/float64(KB))
	default:
		return fmt.Sprintf("%dB", int64(b))
	}
}

// Rate is a bus transaction rate in transactions per microsecond. This
// is the unit the paper reports everywhere (Figure 1A's y axis) and the
// unit the scheduling policies compute with.
type Rate float64

// Machine calibration constants, from Section 3 of the paper.
const (
	// BytesPerTransaction is the payload of one front-side-bus
	// transaction (one L2 line).
	BytesPerTransaction Bytes = 64

	// SustainedBusRate is the highest transaction rate sustained by
	// STREAM with requests issued from all four processors.
	SustainedBusRate Rate = 29.5

	// PeakBusBandwidth is the theoretical peak of the 400MHz FSB.
	PeakBusBandwidth Bytes = 3200 * MB / 1000 * 1000 // 3.2 GB/s

	// SustainedBusBandwidth is STREAM's measured sustainable figure.
	SustainedBusBandwidth Bytes = 1797 * MB
)

// MBPerSec converts a transaction rate to megabytes per second of bus
// traffic (1 trans/usec * 64 B = 64 MB/s... strictly 61.04 MiB/s; the
// paper mixes decimal and binary MB, we use decimal MB here as STREAM
// does).
func (r Rate) MBPerSec() float64 {
	return float64(r) * float64(BytesPerTransaction) // bytes/usec == MB/s (decimal)
}

func (r Rate) String() string { return fmt.Sprintf("%.2f trans/us", float64(r)) }

// RateFromMBPerSec converts decimal MB/s of bus traffic to trans/usec.
func RateFromMBPerSec(mbps float64) Rate {
	return Rate(mbps / float64(BytesPerTransaction))
}
