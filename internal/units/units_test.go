package units

import (
	"math"
	"testing"
)

func TestTimeConversions(t *testing.T) {
	if Second != 1_000_000*Microsecond {
		t.Errorf("Second = %d us", int64(Second))
	}
	if got := (250 * Millisecond).Seconds(); got != 0.25 {
		t.Errorf("250ms = %v s", got)
	}
	if got := (1500 * Microsecond).Millis(); got != 1.5 {
		t.Errorf("1500us = %v ms", got)
	}
}

func TestTimeString(t *testing.T) {
	tests := []struct {
		in   Time
		want string
	}{
		{500 * Microsecond, "500us"},
		{200 * Millisecond, "200.000ms"},
		{2 * Second, "2.000s"},
	}
	for _, tc := range tests {
		if got := tc.in.String(); got != tc.want {
			t.Errorf("%d.String() = %q, want %q", int64(tc.in), got, tc.want)
		}
	}
}

func TestBytesString(t *testing.T) {
	tests := []struct {
		in   Bytes
		want string
	}{
		{512, "512B"},
		{256 * KB, "256.00KB"},
		{3 * MB / 2, "1.50MB"},
		{2 * GB, "2.00GB"},
	}
	for _, tc := range tests {
		if got := tc.in.String(); got != tc.want {
			t.Errorf("Bytes(%d).String() = %q, want %q", int64(tc.in), got, tc.want)
		}
	}
}

func TestRateBandwidthRoundTrip(t *testing.T) {
	// STREAM sustained 29.5 trans/us at 64 B each ~= 1888 MB/s decimal,
	// consistent with the paper's 1797 MiB/s measurement to within the
	// decimal/binary unit slack.
	mbps := SustainedBusRate.MBPerSec()
	if mbps < 1800 || mbps > 1950 {
		t.Errorf("sustained rate = %.1f MB/s, outside sanity band", mbps)
	}
	back := RateFromMBPerSec(mbps)
	if math.Abs(float64(back-SustainedBusRate)) > 1e-9 {
		t.Errorf("round trip %v -> %v", SustainedBusRate, back)
	}
}

func TestCalibrationConstants(t *testing.T) {
	if BytesPerTransaction != 64 {
		t.Errorf("BytesPerTransaction = %d", int64(BytesPerTransaction))
	}
	// The paper: ~64 bytes per transaction derived from 1797 MB/s at
	// 29.5 trans/us. Check the derivation is self-consistent within 10%.
	derived := float64(SustainedBusBandwidth) / 1e6 / float64(SustainedBusRate)
	if derived < 55 || derived > 70 {
		t.Errorf("derived bytes/transaction = %.1f, want ~64", derived)
	}
}
