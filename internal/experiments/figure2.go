package experiments

import (
	"fmt"

	"busaware/internal/sched"
	"busaware/internal/sim"
	"busaware/internal/units"
	"busaware/internal/workload"
)

// Fig2Row is one application's bars in one panel of Figure 2: the
// percentage improvement of the mean application turnaround under each
// policy relative to the Linux baseline.
type Fig2Row struct {
	App string

	LinuxTurnaround units.Time
	LQTurnaround    units.Time
	QWTurnaround    units.Time

	// LQImprovement and QWImprovement are percentages; positive means
	// the policy beats Linux.
	LQImprovement float64
	QWImprovement float64
}

// Figure2 reproduces one panel of Figure 2 (A: SetBBMA, B: SetNBBMA,
// C: SetMixed) across the eleven applications.
func Figure2(set WorkloadSet, opt Options) ([]Fig2Row, error) {
	var rows []Fig2Row
	for _, p := range workload.PaperApps() {
		row, err := Figure2App(set, opt, p)
		if err != nil {
			return nil, err
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// Figure2App measures a single application in one panel.
func Figure2App(set WorkloadSet, opt Options, p workload.Profile) (Fig2Row, error) {
	row := Fig2Row{App: p.Name}
	linux, err := meanLinuxTurnaround(opt, p, set)
	if err != nil {
		return row, err
	}
	row.LinuxTurnaround = linux

	ncpu := opt.machine().NumCPUs
	cap := opt.capacity()

	lq, err := sim.Run(opt.simConfig(), sched.NewLatestQuantum(ncpu, cap, opt.PolicyOpts...), buildSet(p, set))
	if err != nil {
		return row, err
	}
	qw, err := sim.Run(opt.simConfig(), sched.NewQuantaWindow(ncpu, cap, opt.PolicyOpts...), buildSet(p, set))
	if err != nil {
		return row, err
	}
	if lq.TimedOut || qw.TimedOut {
		return row, fmt.Errorf("experiments: fig2 policy run timed out for %s/%s", p.Name, set)
	}
	row.LQTurnaround = lq.MeanTurnaround()
	row.QWTurnaround = qw.MeanTurnaround()
	row.LQImprovement = improvement(linux, row.LQTurnaround)
	row.QWImprovement = improvement(linux, row.QWTurnaround)
	return row, nil
}

// Fig2Summary aggregates a panel the way the paper quotes it.
type Fig2Summary struct {
	Set            WorkloadSet
	LQMean, QWMean float64
	LQMin, QWMin   float64
	LQMax, QWMax   float64
}

// Summarize computes the panel aggregate.
func Summarize(set WorkloadSet, rows []Fig2Row) Fig2Summary {
	s := Fig2Summary{Set: set}
	if len(rows) == 0 {
		return s
	}
	s.LQMin, s.QWMin = rows[0].LQImprovement, rows[0].QWImprovement
	s.LQMax, s.QWMax = s.LQMin, s.QWMin
	for _, r := range rows {
		s.LQMean += r.LQImprovement
		s.QWMean += r.QWImprovement
		if r.LQImprovement < s.LQMin {
			s.LQMin = r.LQImprovement
		}
		if r.LQImprovement > s.LQMax {
			s.LQMax = r.LQImprovement
		}
		if r.QWImprovement < s.QWMin {
			s.QWMin = r.QWImprovement
		}
		if r.QWImprovement > s.QWMax {
			s.QWMax = r.QWImprovement
		}
	}
	s.LQMean /= float64(len(rows))
	s.QWMean /= float64(len(rows))
	return s
}
