package experiments

import (
	"fmt"

	"busaware/internal/runner"
	"busaware/internal/sched"
	"busaware/internal/sim"
	"busaware/internal/units"
	"busaware/internal/workload"
)

// Fig2Row is one application's bars in one panel of Figure 2: the
// percentage improvement of the mean application turnaround under each
// policy relative to the Linux baseline.
type Fig2Row struct {
	App string

	LinuxTurnaround units.Time
	LQTurnaround    units.Time
	QWTurnaround    units.Time

	// LQImprovement and QWImprovement are percentages; positive means
	// the policy beats Linux.
	LQImprovement float64
	QWImprovement float64
}

// Figure2 reproduces one panel of Figure 2 (A: SetBBMA, B: SetNBBMA,
// C: SetMixed) across the eleven applications. Every cell of the
// panel — per-seed Linux baselines plus both policies for each
// application — is independent, so the whole grid fans out through
// the parallel runner in a single batch.
func Figure2(set WorkloadSet, opt Options) ([]Fig2Row, error) {
	apps := workload.PaperApps()
	var cells []runner.Cell
	for _, p := range apps {
		cells = append(cells, figure2Cells(set, opt, p)...)
	}
	results, err := opt.runCells(fmt.Sprintf("figure2/%s", set), cells)
	if err != nil {
		return nil, err
	}
	per := len(opt.seeds()) + 2
	var rows []Fig2Row
	for i, p := range apps {
		row, err := figure2Row(set, opt, p, results[i*per:(i+1)*per])
		if err != nil {
			return nil, err
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// Figure2App measures a single application in one panel.
func Figure2App(set WorkloadSet, opt Options, p workload.Profile) (Fig2Row, error) {
	results, err := opt.runCells(fmt.Sprintf("figure2/%s/%s", set, p.Name), figure2Cells(set, opt, p))
	if err != nil {
		return Fig2Row{App: p.Name}, err
	}
	return figure2Row(set, opt, p, results)
}

// figure2Cells builds one application's panel cells: the per-seed
// Linux baselines followed by Latest Quantum and Quanta Window.
func figure2Cells(set WorkloadSet, opt Options, p workload.Profile) []runner.Cell {
	ncpu := opt.machine().NumCPUs
	cap := opt.capacity()
	cells := linuxCells(opt, p, set)
	return append(cells,
		runner.Cell{
			Label:  fmt.Sprintf("LQ/%s/%s", p.Name, set),
			Config: opt.simConfig(),
			NewScheduler: func() (sched.Scheduler, error) {
				return sched.NewLatestQuantum(ncpu, cap, opt.PolicyOpts...), nil
			},
			Apps: buildSet(p, set),
		},
		runner.Cell{
			Label:  fmt.Sprintf("QW/%s/%s", p.Name, set),
			Config: opt.simConfig(),
			NewScheduler: func() (sched.Scheduler, error) {
				return sched.NewQuantaWindow(ncpu, cap, opt.PolicyOpts...), nil
			},
			Apps: buildSet(p, set),
		})
}

// figure2Row assembles one application's row from its cell results,
// in the order figure2Cells submitted them.
func figure2Row(set WorkloadSet, opt Options, p workload.Profile, results []sim.Result) (Fig2Row, error) {
	row := Fig2Row{App: p.Name}
	nSeeds := len(opt.seeds())
	linux, err := meanLinuxFromResults(p, set, results[:nSeeds])
	if err != nil {
		return row, err
	}
	row.LinuxTurnaround = linux
	lq, qw := results[nSeeds], results[nSeeds+1]
	if lq.TimedOut || qw.TimedOut {
		return row, fmt.Errorf("experiments: fig2 policy run timed out for %s/%s", p.Name, set)
	}
	row.LQTurnaround = lq.MeanTurnaround()
	row.QWTurnaround = qw.MeanTurnaround()
	row.LQImprovement = improvement(linux, row.LQTurnaround)
	row.QWImprovement = improvement(linux, row.QWTurnaround)
	return row, nil
}

// Fig2Summary aggregates a panel the way the paper quotes it.
type Fig2Summary struct {
	Set            WorkloadSet
	LQMean, QWMean float64
	LQMin, QWMin   float64
	LQMax, QWMax   float64
}

// Summarize computes the panel aggregate.
func Summarize(set WorkloadSet, rows []Fig2Row) Fig2Summary {
	s := Fig2Summary{Set: set}
	if len(rows) == 0 {
		return s
	}
	s.LQMin, s.QWMin = rows[0].LQImprovement, rows[0].QWImprovement
	s.LQMax, s.QWMax = s.LQMin, s.QWMin
	for _, r := range rows {
		s.LQMean += r.LQImprovement
		s.QWMean += r.QWImprovement
		if r.LQImprovement < s.LQMin {
			s.LQMin = r.LQImprovement
		}
		if r.LQImprovement > s.LQMax {
			s.LQMax = r.LQImprovement
		}
		if r.QWImprovement < s.QWMin {
			s.QWMin = r.QWImprovement
		}
		if r.QWImprovement > s.QWMax {
			s.QWMax = r.QWImprovement
		}
	}
	s.LQMean /= float64(len(rows))
	s.QWMean /= float64(len(rows))
	return s
}
