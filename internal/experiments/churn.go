package experiments

import (
	"fmt"
	"strings"

	"busaware/internal/runner"
	"busaware/internal/scenario"
	"busaware/internal/sched"
	"busaware/internal/sim"
	"busaware/internal/units"
	"busaware/internal/workload"
)

// The churn study subjects every policy to the same mid-run flash
// crowd: a base pair of BT instances runs to completion while scenario
// jobs churn in and out underneath them. The paper's evaluation holds
// the multiprogramming mix fixed for a whole run; this extension asks
// whether the bandwidth-aware policies still protect turnaround when
// the mix itself is a moving target.

// ChurnPattern is the flash-crowd episode: a light steady load of two
// concurrent churn jobs, a 10s spike peaking at twelve, then recovery.
// (Deliberately gentler than the serving plane's flashcrowd preset —
// sixty concurrent gangs would swamp the 4-way machine for minutes and
// measure queueing, not scheduling.)
const ChurnPattern = "step:5s@2; spike:10s@2..12; step:15s@2"

// churnPool draws arrivals from two finite applications at opposite
// ends of the bandwidth axis, so completions-during-churn are
// observable within the base apps' lifetime.
const churnPool = "Volrend, CG"

const churnSeed = 1

// ChurnRow is one policy's outcome under the flash-crowd churn.
type ChurnRow struct {
	Policy string
	// BaseTurnaround is the mean turnaround of the base (non-churn)
	// apps — the figure's headline: how well the policy protected the
	// resident workload from the flash crowd.
	BaseTurnaround units.Time
	// Arrivals, Departures and Completed are the run's scenario
	// counters; Completed counts churn jobs that finished naturally
	// before the base apps did.
	Arrivals   int
	Departures int
	Completed  int
	// ImprovementVsLinux is the paper's metric over BaseTurnaround.
	ImprovementVsLinux float64
}

// ChurnStudy runs the flash-crowd scenario under the Linux baseline
// and both bandwidth-aware policies. The scenario schedule is
// materialized once — every policy faces the identical arrival and
// departure sequence — and the baseline uses the first Linux seed
// only, since the study varies the mix, not the baseline's shuffling.
func ChurnStudy(opt Options) ([]ChurnRow, error) {
	bt, ok := workload.ByName("BT")
	if !ok {
		return nil, fmt.Errorf("experiments: BT missing from registry")
	}
	churn, err := scenario.Materialize(scenario.ChurnSpec{
		Pattern: ChurnPattern, Pool: churnPool, Seed: churnSeed,
	})
	if err != nil {
		return nil, err
	}
	base := func() []*workload.App {
		return []*workload.App{
			workload.NewApp(bt, "BT#1"),
			workload.NewApp(bt, "BT#2"),
		}
	}
	ncpu := opt.machine().NumCPUs
	cap := opt.capacity()
	linuxSeed := opt.seeds()[0]
	policies := []struct {
		name string
		mk   func() (sched.Scheduler, error)
	}{
		{"Linux", func() (sched.Scheduler, error) { return sched.NewLinux(ncpu, linuxSeed), nil }},
		{"LatestQuantum", func() (sched.Scheduler, error) {
			return sched.NewLatestQuantum(ncpu, cap, opt.PolicyOpts...), nil
		}},
		{"QuantaWindow", func() (sched.Scheduler, error) {
			return sched.NewQuantaWindow(ncpu, cap, opt.PolicyOpts...), nil
		}},
	}
	var cells []runner.Cell
	for _, p := range policies {
		cfg := opt.simConfig()
		cfg.Scenario = churn // read-only: safe to share across cells
		cells = append(cells, runner.Cell{
			Label:        "churn/" + p.name,
			Config:       cfg,
			NewScheduler: p.mk,
			Apps:         base(),
		})
	}
	results, err := opt.runCells("churn", cells)
	if err != nil {
		return nil, err
	}
	var rows []ChurnRow
	var linux units.Time
	for i, p := range policies {
		res := results[i]
		if res.TimedOut {
			return nil, fmt.Errorf("experiments: churn run timed out under %s", p.name)
		}
		row := ChurnRow{
			Policy:         p.name,
			BaseTurnaround: baseMeanTurnaround(res),
			Arrivals:       res.ScenarioArrivals,
			Departures:     res.ScenarioDepartures,
			Completed:      res.ScenarioCompleted,
		}
		if i == 0 {
			linux = row.BaseTurnaround
		}
		row.ImprovementVsLinux = improvement(linux, row.BaseTurnaround)
		rows = append(rows, row)
	}
	return rows, nil
}

// baseMeanTurnaround averages the base apps only. Scenario instances
// are recognizable by the "/s" sequence marker in their instance names
// (see scenario.Materialize); Result.MeanTurnaround would fold
// naturally-completed churn jobs into the mean and reward policies for
// starving them.
func baseMeanTurnaround(res sim.Result) units.Time {
	var sum units.Time
	var n int
	for _, a := range res.Apps {
		if strings.Contains(a.Instance, "/s") {
			continue
		}
		sum += a.Turnaround
		n++
	}
	if n == 0 {
		return 0
	}
	return sum / units.Time(n)
}
