package experiments

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files from current output")

// formatFig2Rows renders Figure 2 rows with exact bit-level precision:
// times as raw int64 microseconds and improvements as hexadecimal
// floats, so any change to a single output bit fails the comparison.
func formatFig2Rows(rows []Fig2Row) string {
	var b strings.Builder
	for _, r := range rows {
		fmt.Fprintf(&b, "%s|%d|%d|%d|%x|%x\n",
			r.App,
			int64(r.LinuxTurnaround), int64(r.LQTurnaround), int64(r.QWTurnaround),
			r.LQImprovement, r.QWImprovement)
	}
	return b.String()
}

// TestFigure2MixedGolden pins the Figure 2C panel byte-for-byte. The
// golden file was generated before the bus-solver memoization and the
// zero-allocation quantum loop landed, so this test proves those
// optimizations did not change a single output bit. Regenerate with
// `go test -run TestFigure2MixedGolden -update ./internal/experiments`
// only when an intentional model change lands.
// formatWindowRows renders the Quanta-Window ablation rows with exact
// bit-level precision (hexadecimal floats), like formatFig2Rows.
func formatWindowRows(rows []WindowAblationRow) string {
	var b strings.Builder
	for _, r := range rows {
		fmt.Fprintf(&b, "W%d|%x|%x|%x\n",
			r.Window, r.TrackingDistance, r.EstimateStdDev, r.RaytraceImprovement)
	}
	return b.String()
}

// TestWindowAblationGolden pins the Quanta-Window figure set (the
// paper's W = 5 tradeoff sweep) byte-for-byte, widening the
// bit-identical regression net beyond Figure 2C: this sweep exercises
// the window estimator at every length plus the bursty Raytrace
// workload, the combination the smpsimd response cache leans on when
// it promises identical request ⇒ byte-identical body. Regenerate with
// `go test -run TestWindowAblationGolden -update ./internal/experiments`
// only when an intentional model change lands.
func TestWindowAblationGolden(t *testing.T) {
	if testing.Short() {
		t.Skip("full window-ablation sweep in -short mode")
	}
	rows, err := WindowAblation(Options{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	got := formatWindowRows(rows)
	path := filepath.Join("testdata", "ablation_window.golden")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("golden file missing (run with -update to create): %v", err)
	}
	if got != string(want) {
		t.Errorf("WindowAblation rows diverged from golden output:\ngot:\n%s\nwant:\n%s", got, want)
	}
}

func TestFigure2MixedGolden(t *testing.T) {
	if testing.Short() {
		t.Skip("full Figure 2C panel in -short mode")
	}
	rows, err := Figure2(SetMixed, Options{})
	if err != nil {
		t.Fatal(err)
	}
	got := formatFig2Rows(rows)
	path := filepath.Join("testdata", "figure2_mixed.golden")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("golden file missing (run with -update to create): %v", err)
	}
	if got != string(want) {
		t.Errorf("Figure2(SetMixed) rows diverged from golden output:\ngot:\n%s\nwant:\n%s", got, want)
	}
}
