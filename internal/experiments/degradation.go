package experiments

import (
	"fmt"

	"busaware/internal/faults"
	"busaware/internal/runner"
	"busaware/internal/sched"
	"busaware/internal/workload"
)

// FaultClass names one injectable failure mode swept by Degradation.
type FaultClass string

// The three classes the degradation sweep exercises, from mildest to
// harshest: lost telemetry, lost enforcement signals, crashed clients.
const (
	ClassSampleLoss FaultClass = "sample-loss"
	ClassSignalLoss FaultClass = "signal-loss"
	ClassCrash      FaultClass = "crash"
)

// config builds the single-class fault configuration at the given rate.
func (c FaultClass) config(seed int64, rate float64) faults.Config {
	cfg := faults.Config{Seed: seed}
	switch c {
	case ClassSampleLoss:
		cfg.SampleLoss = rate
	case ClassSignalLoss:
		cfg.SignalLoss = rate
	case ClassCrash:
		cfg.CrashProb = rate
	}
	return cfg
}

// DegradationClasses is the sweep order.
var DegradationClasses = []FaultClass{ClassSampleLoss, ClassSignalLoss, ClassCrash}

// DefaultDegradationRates is the default fault-rate grid.
var DefaultDegradationRates = []float64{0, 0.1, 0.3, 0.5}

// DegradationPoint is one cell of the sweep: both policies' improvement
// over the clean Linux baseline with one fault class at one rate.
type DegradationPoint struct {
	Class FaultClass
	Rate  float64

	// LQImprovement / QWImprovement are percentages over the fault-free
	// Linux baseline; positive means the degraded policy still beats
	// clean Linux.
	LQImprovement float64
	QWImprovement float64

	// LQFaults / QWFaults record what the injector actually did, so a
	// row can be audited (a rate-0 row must show zero faults).
	LQFaults faults.Stats
	QWFaults faults.Stats
}

// Degradation sweeps fault rates against the paper's mixed workload
// (two BT instances + two BBMA + two nBBMA) and reports how much of the
// policies' improvement over Linux survives. The Linux baseline runs
// clean: the kernel scheduler has no manager, counters or signals to
// break, so injected faults model the managed stack only. Both policies
// run with the stale-sample fallback enabled (K = DefaultStaleQuanta).
// The sweep is deterministic in seed; any Faults set on opt are
// overridden per cell. Nil rates selects DefaultDegradationRates.
func Degradation(opt Options, rates []float64, seed int64) ([]DegradationPoint, error) {
	if len(rates) == 0 {
		rates = DefaultDegradationRates
	}
	app, ok := workload.ByName("BT")
	if !ok {
		return nil, fmt.Errorf("experiments: BT profile missing from registry")
	}
	ncpu := opt.machine().NumCPUs
	cap := opt.capacity()
	popts := append(append([]sched.Option(nil), opt.PolicyOpts...),
		sched.WithStaleFallback(sched.DefaultStaleQuanta))

	// One batch: the per-seed clean baselines, then LQ+QW per
	// (class, rate) cell — every cell independent, submission order
	// fixed, so the whole sweep fans out deterministically.
	cells := linuxCells(opt, app, SetMixed)
	for ci, class := range DegradationClasses {
		for ri, rate := range rates {
			cfg := opt.simConfig()
			cfg.Faults = class.config(seed+int64(100*ci+ri), rate)
			cells = append(cells,
				runner.Cell{
					Label:  fmt.Sprintf("degr/%s/%.2f/LQ", class, rate),
					Config: cfg,
					NewScheduler: func() (sched.Scheduler, error) {
						return sched.NewLatestQuantum(ncpu, cap, popts...), nil
					},
					Apps: buildSet(app, SetMixed),
				},
				runner.Cell{
					Label:  fmt.Sprintf("degr/%s/%.2f/QW", class, rate),
					Config: cfg,
					NewScheduler: func() (sched.Scheduler, error) {
						return sched.NewQuantaWindow(ncpu, cap, popts...), nil
					},
					Apps: buildSet(app, SetMixed),
				})
		}
	}
	results, err := opt.runCells("degradation", cells)
	if err != nil {
		return nil, err
	}

	nSeeds := len(opt.seeds())
	baseline, err := meanLinuxFromResults(app, SetMixed, results[:nSeeds])
	if err != nil {
		return nil, err
	}
	var points []DegradationPoint
	idx := nSeeds
	for _, class := range DegradationClasses {
		for _, rate := range rates {
			lq, qw := results[idx], results[idx+1]
			idx += 2
			if lq.TimedOut || qw.TimedOut {
				return nil, fmt.Errorf("experiments: degradation %s@%.2f timed out", class, rate)
			}
			points = append(points, DegradationPoint{
				Class:         class,
				Rate:          rate,
				LQImprovement: improvement(baseline, lq.MeanTurnaround()),
				QWImprovement: improvement(baseline, qw.MeanTurnaround()),
				LQFaults:      lq.FaultStats,
				QWFaults:      qw.FaultStats,
			})
		}
	}
	return points, nil
}
