package experiments

import (
	"fmt"

	"busaware/internal/runner"
	"busaware/internal/sched"
	"busaware/internal/sim"
	"busaware/internal/units"
	"busaware/internal/workload"
)

// The paper's Section 6 names two future directions: testing the
// scheduler "with I/O and network-intensive workloads ... web and
// database servers", and extending it "in the context of
// multithreading processors". Both are implemented here as extension
// experiments.

// ServerRow is one server application's outcome on the mixed
// antagonist set.
type ServerRow struct {
	App             string
	LinuxTurnaround units.Time
	LQTurnaround    units.Time
	QWTurnaround    units.Time
	LQImprovement   float64
	QWImprovement   float64
}

// ServerWorkloads runs the web-server and database profiles through
// the mixed antagonist set, exactly like a Figure 2C panel. Both
// profiles' cells fan out through the runner as one batch.
func ServerWorkloads(opt Options) ([]ServerRow, error) {
	profiles := workload.ServerProfiles()
	var cells []runner.Cell
	for _, p := range profiles {
		cells = append(cells, figure2Cells(SetMixed, opt, p)...)
	}
	results, err := opt.runCells("servers", cells)
	if err != nil {
		return nil, err
	}
	per := len(opt.seeds()) + 2
	var rows []ServerRow
	for i, p := range profiles {
		f2, err := figure2Row(SetMixed, opt, p, results[i*per:(i+1)*per])
		if err != nil {
			return nil, err
		}
		rows = append(rows, ServerRow{
			App:             p.Name,
			LinuxTurnaround: f2.LinuxTurnaround,
			LQTurnaround:    f2.LQTurnaround,
			QWTurnaround:    f2.QWTurnaround,
			LQImprovement:   f2.LQImprovement,
			QWImprovement:   f2.QWImprovement,
		})
	}
	return rows, nil
}

// SMTRow compares one scheduling policy with hyperthreading off
// (4 logical = 4 physical processors, the paper's configuration)
// versus on (8 logical processors over 4 cores).
type SMTRow struct {
	Policy string
	// SMTOff and SMTOn are mean turnarounds of the BT mixed workload.
	SMTOff units.Time
	SMTOn  units.Time
	// SpeedupPercent is the throughput gained (or lost) by enabling
	// hyperthreading under this policy.
	SpeedupPercent float64
}

// SMTStudy measures how the policies exploit hyperthreading — the
// paper's "multithreading processors" future-work direction. The
// workload doubles with the logical processor count so both machines
// run at multiprogramming degree 2.
func SMTStudy(opt Options) ([]SMTRow, error) {
	bt, ok := workload.ByName("BT")
	if !ok {
		return nil, fmt.Errorf("experiments: BT missing from registry")
	}
	build := func(scale int) []*workload.App {
		apps := workload.Instances(bt, 2*scale)
		for i := 0; i < 2*scale; i++ {
			apps = append(apps, workload.NewApp(workload.BBMA(), fmt.Sprintf("B#%d", i+1)))
		}
		for i := 0; i < 2*scale; i++ {
			apps = append(apps, workload.NewApp(workload.NBBMA(), fmt.Sprintf("n#%d", i+1)))
		}
		return apps
	}

	off := opt.machine() // 4 CPUs, SMT off
	on := opt.machine()
	on.NumCPUs = off.NumCPUs * 2
	on.SMTSiblings = 2

	mkPolicy := func(name string, m sim.Config, ncpu int) (sched.Scheduler, error) {
		switch name {
		case "Linux":
			return sched.NewLinux(ncpu, 1), nil
		case "QuantaWindow":
			return sched.NewQuantaWindow(ncpu, m.Machine.Bus.Capacity, opt.PolicyOpts...), nil
		default:
			return nil, fmt.Errorf("experiments: unknown SMT policy %q", name)
		}
	}

	policies := []string{"Linux", "QuantaWindow"}
	var cells []runner.Cell
	for _, name := range policies {
		name := name
		offCfg := sim.Config{Machine: off, Sampling: opt.Sampling, Engine: opt.Engine}
		onCfg := sim.Config{Machine: on, Sampling: opt.Sampling, Engine: opt.Engine}
		mkOff := func() (sched.Scheduler, error) { return mkPolicy(name, offCfg, off.NumCPUs) }
		mkOn := func() (sched.Scheduler, error) { return mkPolicy(name, onCfg, on.NumCPUs) }
		if _, err := mkOff(); err != nil {
			return nil, err
		}
		cells = append(cells,
			runner.Cell{Label: "smt/" + name + "/off", Config: offCfg, NewScheduler: mkOff, Apps: build(1)},
			runner.Cell{Label: "smt/" + name + "/on", Config: onCfg, NewScheduler: mkOn, Apps: build(2)})
	}
	results, err := opt.runCells("smt", cells)
	if err != nil {
		return nil, err
	}
	var rows []SMTRow
	for i, name := range policies {
		resOff, resOn := results[i*2], results[i*2+1]
		if resOff.TimedOut || resOn.TimedOut {
			return nil, fmt.Errorf("experiments: SMT run timed out under %s", name)
		}
		row := SMTRow{
			Policy: name,
			SMTOff: resOff.MeanTurnaround(),
			SMTOn:  resOn.MeanTurnaround(),
		}
		// With twice the work and the same cores, finishing in under
		// 2x the time is an SMT win. Normalize per unit of work.
		offPerWork := float64(resOff.MeanTurnaround())
		onPerWork := float64(resOn.MeanTurnaround()) / 2
		if offPerWork > 0 {
			row.SpeedupPercent = (offPerWork - onPerWork) / offPerWork * 100
		}
		rows = append(rows, row)
	}
	return rows, nil
}
