package experiments

import (
	"reflect"
	"testing"

	"busaware/internal/runner"
	"busaware/internal/units"
	"busaware/internal/workload"
)

// Figure 1 shape assertions, per the paper's Section 3 findings.
func TestFigure1Shape(t *testing.T) {
	rows, err := Figure1(Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 11 {
		t.Fatalf("rows = %d, want 11", len(rows))
	}
	var prevSolo units.Rate = -1
	for _, r := range rows {
		// Measured solo rates follow the registry's nominal ordering,
		// with slack for Raytrace, whose bursts exceed bus capacity on
		// their own (the paper flags its rate as anomalous), deflating
		// its measured rate below nominal.
		if r.SoloRate < prevSolo*0.85 {
			t.Errorf("%s: solo rate order violated (%.2f after %.2f)", r.App, float64(r.SoloRate), float64(prevSolo))
		}
		if r.SoloRate > prevSolo {
			prevSolo = r.SoloRate
		}

		// nBBMA companions leave rate and runtime ~solo.
		if r.WithNBBMASlowdown > 1.12 {
			t.Errorf("%s: slowdown with nBBMA = %.2f, want ~1", r.App, r.WithNBBMASlowdown)
		}
		// BBMA companions never speed anything up.
		if r.WithBBMASlowdown < r.WithNBBMASlowdown-0.02 {
			t.Errorf("%s: BBMA slowdown %.2f below nBBMA %.2f", r.App, r.WithBBMASlowdown, r.WithNBBMASlowdown)
		}
		// The BBMA workload pushes the bus near saturation.
		if r.WithBBMARate < 20 {
			t.Errorf("%s: rate with 2 BBMA = %.1f, want near saturation", r.App, float64(r.WithBBMARate))
		}
	}

	// Memory-intensive applications suffer 2x to ~3x against BBMA.
	cg := rows[len(rows)-1]
	if cg.App != "CG" {
		t.Fatalf("last row = %s, want CG", cg.App)
	}
	if cg.WithBBMASlowdown < 1.8 || cg.WithBBMASlowdown > 3.2 {
		t.Errorf("CG slowdown with BBMA = %.2f, want 2x-3x", cg.WithBBMASlowdown)
	}
	// Low-bandwidth apps suffer far less.
	rad := rows[0]
	if rad.WithBBMASlowdown > 1.6 {
		t.Errorf("Radiosity slowdown with BBMA = %.2f, want mild", rad.WithBBMASlowdown)
	}
	// Two instances of the top apps contend measurably.
	if cg.TwoAppsSlowdown < 1.3 {
		t.Errorf("CG two-instance slowdown = %.2f, want >= 1.3", cg.TwoAppsSlowdown)
	}
}

// Figure 2 shape assertions: both policies beat Linux on average in
// every set, with per-app means in the paper's ballpark.
func TestFigure2Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("full figure 2 sweep in short mode")
	}
	for _, set := range []WorkloadSet{SetBBMA, SetNBBMA, SetMixed} {
		rows, err := Figure2(set, Options{})
		if err != nil {
			t.Fatalf("%s: %v", set, err)
		}
		if len(rows) != 11 {
			t.Fatalf("%s: rows = %d", set, len(rows))
		}
		s := Summarize(set, rows)
		if s.LQMean < 5 {
			t.Errorf("%s: LQ mean improvement %.1f%%, want clearly positive", set, s.LQMean)
		}
		if s.QWMean < 5 {
			t.Errorf("%s: QW mean improvement %.1f%%, want clearly positive", set, s.QWMean)
		}
		if s.LQMax > 90 || s.QWMax > 90 {
			t.Errorf("%s: implausibly large improvement (LQ %.1f, QW %.1f)", set, s.LQMax, s.QWMax)
		}
	}
}

func TestFigure2SaturatedFavorsHighBandwidthApps(t *testing.T) {
	rows, err := Figure2(SetBBMA, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// The top-4 bandwidth apps should gain more than the bottom-4 on
	// the saturated set (the paper's increasing trend).
	var low, high float64
	for i := 0; i < 4; i++ {
		low += rows[i].LQImprovement
		high += rows[len(rows)-1-i].LQImprovement
	}
	if high <= low {
		t.Errorf("top-4 LQ improvement sum %.1f should exceed bottom-4 %.1f", high, low)
	}
}

func TestCalibration(t *testing.T) {
	cal, err := Calibrate(Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Within 15% of the paper's sustained figures (arbitration and the
	// queueing equilibrium keep the simulator slightly below nominal).
	if cal.SustainedRate < 24 || cal.SustainedRate > 30 {
		t.Errorf("sustained rate = %.1f trans/us, want ~29.5", float64(cal.SustainedRate))
	}
	if cal.SustainedMBps < 1500 || cal.SustainedMBps > 1950 {
		t.Errorf("sustained bandwidth = %.0f MB/s, want ~1797", cal.SustainedMBps)
	}
	if cal.BytesPerTransaction != 64 {
		t.Errorf("bytes/transaction = %d", cal.BytesPerTransaction)
	}
}

func TestHitRates(t *testing.T) {
	rows, err := HitRates()
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]HitRateResult{}
	for _, r := range rows {
		byName[r.Name] = r
	}
	b := byName["BBMA(column-wise, 2x L2)"]
	if b.HitRate > 0.01 {
		t.Errorf("BBMA hit rate = %.4f, want ~0", b.HitRate)
	}
	if b.BusTransPerRef < 1 {
		t.Errorf("BBMA bus traffic per ref = %.2f, want >= 1 (fills + writebacks)", b.BusTransPerRef)
	}
	n := byName["nBBMA(row-wise, L2/2)"]
	if n.HitRate < 0.97 {
		t.Errorf("nBBMA hit rate = %.4f, want ~1", n.HitRate)
	}
}

func TestWindowAblation(t *testing.T) {
	rows, err := WindowAblation(Options{}, []int{1, 5, 12})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	// Stability improves (stddev falls) with window length.
	if !(rows[0].EstimateStdDev >= rows[1].EstimateStdDev && rows[1].EstimateStdDev >= rows[2].EstimateStdDev) {
		t.Errorf("estimate stddev not decreasing: %v %v %v",
			rows[0].EstimateStdDev, rows[1].EstimateStdDev, rows[2].EstimateStdDev)
	}
	// W=1 tracks the pattern exactly (distance 0 by definition).
	if rows[0].TrackingDistance != 0 {
		t.Errorf("W=1 tracking distance = %v, want 0", rows[0].TrackingDistance)
	}
	if rows[1].TrackingDistance <= 0 {
		t.Error("W=5 tracking distance should be positive for a bursty app")
	}
	if _, err := WindowAblation(Options{}, []int{0}); err == nil {
		t.Error("invalid window accepted")
	}
}

func TestQuantumAblation(t *testing.T) {
	rows, err := QuantumAblation(Options{}, []units.Time{100 * units.Millisecond, 400 * units.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	// Shorter quanta -> more context switches per second.
	if rows[0].ContextSwitchesPerSec <= rows[1].ContextSwitchesPerSec {
		t.Errorf("context switch rate should fall with quantum: %.1f vs %.1f",
			rows[0].ContextSwitchesPerSec, rows[1].ContextSwitchesPerSec)
	}
	if _, err := QuantumAblation(Options{}, []units.Time{0}); err == nil {
		t.Error("invalid quantum accepted")
	}
}

func TestManagerOverheadBounded(t *testing.T) {
	res, err := ManagerOverhead(Options{}, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Positive but within the paper's worst-case 4.5% ballpark.
	if res.OverheadPercent < 0 || res.OverheadPercent > 6 {
		t.Errorf("manager overhead = %.2f%%, want within (0, ~4.5]", res.OverheadPercent)
	}
}

func TestSchedulerZoo(t *testing.T) {
	rows, err := SchedulerZoo(Options{}, "BT")
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]ZooRow{}
	for _, r := range rows {
		byName[r.Scheduler] = r
	}
	for _, name := range []string{"Linux", "RR", "GangRR", "LatestQuantum", "QuantaWindow", "EWMA", "Oracle", "Optimal"} {
		if _, ok := byName[name]; !ok {
			t.Errorf("missing scheduler %s", name)
		}
	}
	// The bandwidth-aware policies should beat plain gang round-robin,
	// which should beat thread-level RR without affinity.
	if byName["QuantaWindow"].MeanTurnaround >= byName["RR"].MeanTurnaround {
		t.Error("QuantaWindow should beat RR")
	}
	if _, err := SchedulerZoo(Options{}, "NoSuchApp"); err == nil {
		t.Error("unknown app accepted")
	}
}

func TestSamplingAblation(t *testing.T) {
	rows, err := SamplingAblation(Options{}, []string{"CG"})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 {
		t.Fatalf("rows = %d", len(rows))
	}
	r := rows[0]
	// Requirement-corrected sampling must not lose to raw consumption
	// on the saturated set — the correction is the point.
	if r.RequirementsImprovement < r.ConsumptionImprovement-2 {
		t.Errorf("requirements %.1f%% vs consumption %.1f%%: correction should help",
			r.RequirementsImprovement, r.ConsumptionImprovement)
	}
	// The guarded variant stays in the same ballpark.
	if r.GuardedImprovement < 0 {
		t.Errorf("guarded improvement = %.1f%%, want non-negative", r.GuardedImprovement)
	}
	if _, err := SamplingAblation(Options{}, []string{"NoSuchApp"}); err == nil {
		t.Error("unknown app accepted")
	}
}

// TestFigureSweepDeterminism is the parallel runner's acceptance
// gate: the figure sweep must produce identical rows under serial
// execution (Workers: 1) and a saturated worker pool. Every cell
// carries its own seed, scheduler and freshly built workload, so
// completion order cannot leak into the output.
func TestFigureSweepDeterminism(t *testing.T) {
	serial := Options{Workers: 1, LinuxSeeds: []int64{1}}
	parallel := Options{Workers: 8, LinuxSeeds: []int64{1}}

	f1s, err := Figure1(serial)
	if err != nil {
		t.Fatal(err)
	}
	f1p, err := Figure1(parallel)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(f1s, f1p) {
		t.Error("Figure 1 rows differ between serial and parallel execution")
	}

	f2s, err := Figure2(SetMixed, serial)
	if err != nil {
		t.Fatal(err)
	}
	f2p, err := Figure2(SetMixed, parallel)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(f2s, f2p) {
		t.Error("Figure 2C rows differ between serial and parallel execution")
	}
}

// TestSweepMetrics checks the run-level metrics layer: every batch an
// experiment submits is observed, and the totals add up across
// batches.
func TestSweepMetrics(t *testing.T) {
	m := runner.NewMetrics()
	opt := Options{LinuxSeeds: []int64{1}, Metrics: m}
	if _, err := Calibrate(opt); err != nil {
		t.Fatal(err)
	}
	bt, ok := workload.ByName("BT")
	if !ok {
		t.Fatal("BT missing from registry")
	}
	if _, err := Figure2App(SetMixed, opt, bt); err != nil {
		t.Fatal(err)
	}
	batches := m.Batches()
	if len(batches) != 2 {
		t.Fatalf("batches = %d, want 2 (calibration + figure2 cell batch)", len(batches))
	}
	if batches[0].Name != "calibration" {
		t.Errorf("first batch = %q", batches[0].Name)
	}
	// BT panel batch: 1 Linux seed + LQ + QW = 3 cells.
	if got := len(batches[1].Report.Cells); got != 3 {
		t.Errorf("figure2 batch cells = %d, want 3", got)
	}
	tot := m.Total()
	if tot.Cells != 4 || tot.Failed != 0 {
		t.Errorf("totals: %+v", tot)
	}
	if tot.Quanta <= 0 || tot.SimTime <= 0 || tot.CellWall <= 0 {
		t.Errorf("metrics did not accumulate: %+v", tot)
	}
	sum := 0
	for _, b := range batches {
		sum += b.Report.TotalQuanta()
	}
	if sum != tot.Quanta {
		t.Errorf("quanta totals do not add up: %d vs %d", sum, tot.Quanta)
	}
	if tot.BusUtilization <= 0 || tot.BusUtilization > 1 {
		t.Errorf("bus utilization = %v", tot.BusUtilization)
	}
}

func TestWorkloadSetNames(t *testing.T) {
	for set, want := range map[WorkloadSet]string{
		SetBBMA: "2Apps+4BBMA", SetNBBMA: "2Apps+4nBBMA", SetMixed: "2Apps+2BBMA+2nBBMA", WorkloadSet(9): "unknown",
	} {
		if set.String() != want {
			t.Errorf("set %d = %q, want %q", set, set.String(), want)
		}
	}
}

func TestBuildSetComposition(t *testing.T) {
	p, ok := workload.ByName("CG")
	if !ok {
		t.Fatal("CG missing")
	}
	apps := buildSet(p, SetMixed)
	if len(apps) != 6 {
		t.Fatalf("mixed set size = %d", len(apps))
	}
	counts := map[string]int{}
	for _, a := range apps {
		counts[a.Profile.Name]++
	}
	if counts["CG"] != 2 || counts["BBMA"] != 2 || counts["nBBMA"] != 2 {
		t.Errorf("composition = %v", counts)
	}
}

func TestRobustness(t *testing.T) {
	res, err := Robustness(Options{LinuxSeeds: []int64{1}}, 8, 42)
	if err != nil {
		t.Fatal(err)
	}
	if res.Workloads != 8 || res.LQ.N != 8 || res.QW.N != 8 {
		t.Fatalf("bookkeeping: %+v", res)
	}
	// The policies should win on a clear majority of random workloads
	// and on average.
	if res.QWWins < 6 {
		t.Errorf("QW won only %d/8 random workloads", res.QWWins)
	}
	if res.QW.Mean <= 0 {
		t.Errorf("QW mean improvement %.1f%%, want positive", res.QW.Mean)
	}
	if res.LQ.Mean <= 0 {
		t.Errorf("LQ mean improvement %.1f%%, want positive", res.LQ.Mean)
	}
	// Determinism: same seed, same outcome.
	res2, err := Robustness(Options{LinuxSeeds: []int64{1}}, 8, 42)
	if err != nil {
		t.Fatal(err)
	}
	if res2.QW.Mean != res.QW.Mean || res2.LQ.Mean != res.LQ.Mean {
		t.Error("robustness sweep not deterministic")
	}
}

func TestServerWorkloads(t *testing.T) {
	rows, err := ServerWorkloads(Options{LinuxSeeds: []int64{1}})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.LinuxTurnaround <= 0 || r.QWTurnaround <= 0 {
			t.Errorf("%s: incomplete row %+v", r.App, r)
		}
		// Server workloads without gang barriers still benefit from
		// bandwidth-aware pairing; demand at least non-catastrophic
		// behaviour and a clear QW win on the database (migration
		// sensitive, so affinity-preserving gangs help).
		if r.QWImprovement < -10 {
			t.Errorf("%s: QW improvement %.1f%%", r.App, r.QWImprovement)
		}
	}
}

func TestSMTStudy(t *testing.T) {
	rows, err := SMTStudy(Options{LinuxSeeds: []int64{1}})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.SMTOff <= 0 || r.SMTOn <= 0 {
			t.Errorf("%s: incomplete %+v", r.Policy, r)
		}
		// Hyperthreading on a bus-bound workload should not double
		// throughput; sanity-bound the speedup.
		if r.SpeedupPercent > 60 {
			t.Errorf("%s: implausible SMT speedup %.1f%%", r.Policy, r.SpeedupPercent)
		}
	}
}
