package experiments

import (
	"fmt"

	"busaware/internal/sched"
	"busaware/internal/sim"
	"busaware/internal/units"
	"busaware/internal/workload"
)

// Fig1Row reproduces one application's bars across Figure 1's four
// configurations: solo, two instances, one instance + 2 BBMA, and one
// instance + 2 nBBMA. Rates are the cumulative workload bus
// transaction rates (panel A); slowdowns are relative to the solo run
// (panel B). None of these configurations share processors: the four
// threads fit the four CPUs exactly.
type Fig1Row struct {
	App string

	// Panel A: cumulative bus transactions per usec.
	SoloRate      units.Rate
	TwoAppsRate   units.Rate
	WithBBMARate  units.Rate
	WithNBBMARate units.Rate

	// Panel B: arithmetic-mean slowdown of the application instances.
	TwoAppsSlowdown   float64
	WithBBMASlowdown  float64
	WithNBBMASlowdown float64
}

// Figure1 reproduces Figure 1 (both panels) for the eleven paper
// applications, in increasing solo-rate order.
func Figure1(opt Options) ([]Fig1Row, error) {
	var rows []Fig1Row
	for _, p := range workload.PaperApps() {
		row, err := figure1Row(opt, p)
		if err != nil {
			return nil, err
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// figure1Row measures one application across the four configurations.
func figure1Row(opt Options, p workload.Profile) (Fig1Row, error) {
	row := Fig1Row{App: p.Name}

	// Gang first-fit on a dedicated machine runs every thread every
	// quantum in all four configurations: no processor sharing, as in
	// the paper's Section 3 setup.
	dedicated := func(apps []*workload.App) (sim.Result, units.Rate, error) {
		res, err := sim.Run(opt.simConfig(), sched.NewGang(opt.machine().NumCPUs), apps)
		if err != nil {
			return res, 0, err
		}
		if res.TimedOut {
			return res, 0, fmt.Errorf("experiments: fig1 run timed out for %s", p.Name)
		}
		// Cumulative rate: the finite apps' mean rates plus the
		// microbenchmarks' transactions over the run.
		var cum units.Rate
		for _, a := range res.Apps {
			cum += a.MeanBusRate
		}
		var micro []*workload.App
		for _, a := range apps {
			if a.Profile.Endless() {
				micro = append(micro, a)
			}
		}
		for _, r := range sim.MicrobenchRates(micro, res.EndTime) {
			cum += r
		}
		return res, cum, nil
	}

	solo, soloRate, err := dedicated([]*workload.App{workload.NewApp(p, p.Name+"#1")})
	if err != nil {
		return row, err
	}
	row.SoloRate = soloRate
	soloT := solo.Apps[0].Turnaround

	two, twoRate, err := dedicated([]*workload.App{
		workload.NewApp(p, p.Name+"#1"), workload.NewApp(p, p.Name+"#2"),
	})
	if err != nil {
		return row, err
	}
	row.TwoAppsRate = twoRate
	row.TwoAppsSlowdown = meanSlowdown(two, soloT)

	bbma, bbmaRate, err := dedicated([]*workload.App{
		workload.NewApp(p, p.Name+"#1"),
		workload.NewApp(workload.BBMA(), "BBMA#1"),
		workload.NewApp(workload.BBMA(), "BBMA#2"),
	})
	if err != nil {
		return row, err
	}
	row.WithBBMARate = bbmaRate
	row.WithBBMASlowdown = meanSlowdown(bbma, soloT)

	nbbma, nbbmaRate, err := dedicated([]*workload.App{
		workload.NewApp(p, p.Name+"#1"),
		workload.NewApp(workload.NBBMA(), "nBBMA#1"),
		workload.NewApp(workload.NBBMA(), "nBBMA#2"),
	})
	if err != nil {
		return row, err
	}
	row.WithNBBMARate = nbbmaRate
	row.WithNBBMASlowdown = meanSlowdown(nbbma, soloT)
	return row, nil
}

// meanSlowdown averages the instances' turnarounds against the solo
// turnaround, as the paper does ("the arithmetic mean of the slowdown
// of the two instances").
func meanSlowdown(res sim.Result, solo units.Time) float64 {
	if solo <= 0 || len(res.Apps) == 0 {
		return 0
	}
	var sum float64
	for _, a := range res.Apps {
		sum += float64(a.Turnaround) / float64(solo)
	}
	return sum / float64(len(res.Apps))
}
