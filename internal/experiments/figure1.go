package experiments

import (
	"fmt"

	"busaware/internal/runner"
	"busaware/internal/sched"
	"busaware/internal/sim"
	"busaware/internal/units"
	"busaware/internal/workload"
)

// Fig1Row reproduces one application's bars across Figure 1's four
// configurations: solo, two instances, one instance + 2 BBMA, and one
// instance + 2 nBBMA. Rates are the cumulative workload bus
// transaction rates (panel A); slowdowns are relative to the solo run
// (panel B). None of these configurations share processors: the four
// threads fit the four CPUs exactly.
type Fig1Row struct {
	App string

	// Panel A: cumulative bus transactions per usec.
	SoloRate      units.Rate
	TwoAppsRate   units.Rate
	WithBBMARate  units.Rate
	WithNBBMARate units.Rate

	// Panel B: arithmetic-mean slowdown of the application instances.
	TwoAppsSlowdown   float64
	WithBBMASlowdown  float64
	WithNBBMASlowdown float64
}

// fig1CellsPerApp is the number of Figure 1 configurations per
// application: solo, two instances, +2 BBMA, +2 nBBMA.
const fig1CellsPerApp = 4

// Figure1 reproduces Figure 1 (both panels) for the eleven paper
// applications, in increasing solo-rate order. All 44 configuration
// cells are independent, so they fan out through the parallel runner
// as one batch.
func Figure1(opt Options) ([]Fig1Row, error) {
	apps := workload.PaperApps()
	var cells []runner.Cell
	for _, p := range apps {
		cells = append(cells, figure1Cells(opt, p)...)
	}
	results, err := opt.runCells("figure1", cells)
	if err != nil {
		return nil, err
	}
	var rows []Fig1Row
	for i, p := range apps {
		lo, hi := i*fig1CellsPerApp, (i+1)*fig1CellsPerApp
		row, err := figure1Row(p, cells[lo:hi], results[lo:hi])
		if err != nil {
			return nil, err
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// figure1Cells builds one application's four dedicated-machine cells.
// Gang first-fit on a dedicated machine runs every thread every
// quantum in all four configurations: no processor sharing, as in the
// paper's Section 3 setup.
func figure1Cells(opt Options, p workload.Profile) []runner.Cell {
	mk := func(cfg string, apps []*workload.App) runner.Cell {
		return runner.Cell{
			Label:  fmt.Sprintf("fig1/%s/%s", p.Name, cfg),
			Config: opt.simConfig(),
			NewScheduler: func() (sched.Scheduler, error) {
				return sched.NewGang(opt.machine().NumCPUs), nil
			},
			Apps: apps,
		}
	}
	return []runner.Cell{
		mk("solo", []*workload.App{workload.NewApp(p, p.Name+"#1")}),
		mk("2apps", []*workload.App{
			workload.NewApp(p, p.Name+"#1"), workload.NewApp(p, p.Name+"#2"),
		}),
		mk("2bbma", []*workload.App{
			workload.NewApp(p, p.Name+"#1"),
			workload.NewApp(workload.BBMA(), "BBMA#1"),
			workload.NewApp(workload.BBMA(), "BBMA#2"),
		}),
		mk("2nbbma", []*workload.App{
			workload.NewApp(p, p.Name+"#1"),
			workload.NewApp(workload.NBBMA(), "nBBMA#1"),
			workload.NewApp(workload.NBBMA(), "nBBMA#2"),
		}),
	}
}

// figure1Row assembles one application's row from its four cells, in
// the order figure1Cells submitted them.
func figure1Row(p workload.Profile, cells []runner.Cell, results []sim.Result) (Fig1Row, error) {
	row := Fig1Row{App: p.Name}
	for _, res := range results {
		if res.TimedOut {
			return row, fmt.Errorf("experiments: fig1 run timed out for %s", p.Name)
		}
	}
	solo := results[0]
	row.SoloRate = cumulativeRate(solo, cells[0].Apps)
	soloT := solo.Apps[0].Turnaround

	row.TwoAppsRate = cumulativeRate(results[1], cells[1].Apps)
	row.TwoAppsSlowdown = meanSlowdown(results[1], soloT)

	row.WithBBMARate = cumulativeRate(results[2], cells[2].Apps)
	row.WithBBMASlowdown = meanSlowdown(results[2], soloT)

	row.WithNBBMARate = cumulativeRate(results[3], cells[3].Apps)
	row.WithNBBMASlowdown = meanSlowdown(results[3], soloT)
	return row, nil
}

// cumulativeRate is the workload's cumulative bus transaction rate:
// the finite apps' mean rates plus the microbenchmarks' transactions
// over the run. The microbenchmark contributions are summed in app
// submission order, not map order, so the float accumulation is
// bit-for-bit reproducible.
func cumulativeRate(res sim.Result, apps []*workload.App) units.Rate {
	var cum units.Rate
	for _, a := range res.Apps {
		cum += a.MeanBusRate
	}
	var micro []*workload.App
	for _, a := range apps {
		if a.Profile.Endless() {
			micro = append(micro, a)
		}
	}
	rates := sim.MicrobenchRates(micro, res.EndTime)
	for _, a := range micro {
		cum += rates[a.Instance]
	}
	return cum
}

// meanSlowdown averages the instances' turnarounds against the solo
// turnaround, as the paper does ("the arithmetic mean of the slowdown
// of the two instances").
func meanSlowdown(res sim.Result, solo units.Time) float64 {
	if solo <= 0 || len(res.Apps) == 0 {
		return 0
	}
	var sum float64
	for _, a := range res.Apps {
		sum += float64(a.Turnaround) / float64(solo)
	}
	return sum / float64(len(res.Apps))
}
