package experiments

import (
	"fmt"

	"busaware/internal/cache"
	"busaware/internal/mem"
	"busaware/internal/runner"
	"busaware/internal/sched"
	"busaware/internal/units"
	"busaware/internal/workload"
)

// CalibrationResult pins the simulator against the paper's Section 3
// machine constants, measured the way the authors measured them: by
// running STREAM with requests issued from all processors.
type CalibrationResult struct {
	// SustainedRate is the cumulative transaction rate four STREAM
	// threads achieve (paper: 29.5 trans/usec).
	SustainedRate units.Rate
	// SustainedMBps is the same expressed as bandwidth (paper:
	// 1797 MB/s).
	SustainedMBps float64
	// BytesPerTransaction is the configured line size (paper: ~64 B,
	// derived from the two numbers above).
	BytesPerTransaction units.Bytes
	// PeakMBps is the nominal bus peak (paper: 3.2 GB/s).
	PeakMBps float64
}

// Calibrate runs the simulated STREAM calibration. The single run
// goes through the runner too, so metrics collection covers the whole
// sweep uniformly.
func Calibrate(opt Options) (CalibrationResult, error) {
	results, err := opt.runCells("calibration", []runner.Cell{{
		Label:  "cal/STREAM",
		Config: opt.simConfig(),
		NewScheduler: func() (sched.Scheduler, error) {
			return sched.NewGang(opt.machine().NumCPUs), nil
		},
		Apps: []*workload.App{workload.NewApp(workload.STREAM(), "STREAM#1")},
	}})
	if err != nil {
		return CalibrationResult{}, err
	}
	res := results[0]
	if res.TimedOut {
		return CalibrationResult{}, fmt.Errorf("experiments: STREAM calibration timed out")
	}
	rate := res.Apps[0].MeanBusRate
	return CalibrationResult{
		SustainedRate:       rate,
		SustainedMBps:       rate.MBPerSec(),
		BytesPerTransaction: units.BytesPerTransaction,
		PeakMBps:            float64(units.PeakBusBandwidth) / 1e6,
	}, nil
}

// HitRateResult derives the microbenchmark cache behaviour the paper
// asserts, from first principles: the address patterns played through
// the set-associative L2 simulator.
type HitRateResult struct {
	Name    string
	Refs    uint64
	HitRate float64
	// BusTransPerRef is the bus traffic per reference (fills +
	// writebacks), the quantity that turns a pattern into bus demand.
	BusTransPerRef float64
}

// HitRates runs the BBMA and nBBMA patterns (and a STREAM triad for
// reference) through the Xeon L2 model.
func HitRates() ([]HitRateResult, error) {
	cfg := cache.XeonL2()
	type pattern struct {
		name  string
		trace mem.Trace
	}
	patterns := []pattern{
		{"BBMA(column-wise, 2x L2)", mem.NewBBMA(cfg.Size, cfg.LineSize)},
		{"nBBMA(row-wise, L2/2)", mem.NewNBBMA(cfg.Size, 20)},
		{"STREAM triad(4x L2 arrays)", &mem.StreamTrace{Kernel: mem.StreamTriad, ArrayBytes: 4 * cfg.Size, Passes: 3, Base: 1 << 32}},
	}
	var out []HitRateResult
	for _, p := range patterns {
		c, err := cache.New(cfg)
		if err != nil {
			return nil, err
		}
		s := c.Run(p.trace)
		if s.Refs == 0 {
			return nil, fmt.Errorf("experiments: pattern %s produced no references", p.name)
		}
		out = append(out, HitRateResult{
			Name:           p.name,
			Refs:           s.Refs,
			HitRate:        s.HitRate(),
			BusTransPerRef: float64(s.BusTransactions()) / float64(s.Refs),
		})
	}
	return out, nil
}
