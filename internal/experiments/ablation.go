package experiments

import (
	"fmt"
	"math"

	"busaware/internal/runner"
	"busaware/internal/sched"
	"busaware/internal/sim"
	"busaware/internal/stats"
	"busaware/internal/units"
	"busaware/internal/workload"
)

// WindowAblationRow quantifies the window-length tradeoff the paper
// discusses when it picks W = 5: longer windows track an irregular
// transaction pattern less closely (higher distance) but give a more
// stable estimate (lower variance), trading responsiveness for
// stability.
type WindowAblationRow struct {
	Window int
	// TrackingDistance is the mean |sample - window mean| normalized
	// by the mean sample, over the application's per-quantum demand
	// series ("the average distance between the observed transactions
	// pattern and the moving window average").
	TrackingDistance float64
	// EstimateStdDev is the standard deviation of the window estimate
	// across quanta — the stability side of the tradeoff.
	EstimateStdDev float64
	// RaytraceImprovement is the Quanta-Window-with-this-window
	// improvement over Linux on the Raytrace + 4 nBBMA workload.
	RaytraceImprovement float64
}

// demandSeries samples a profile's per-thread demand averaged over
// each scheduling quantum, for horizon quanta.
func demandSeries(p workload.Profile, quantum units.Time, horizon int) []float64 {
	series := make([]float64, 0, horizon)
	// A single-thread clone walks the phase clock without tripping the
	// gang-barrier logic.
	p.Threads = 1
	app := workload.NewApp(p, "series")
	th := app.Threads[0]
	const tick = units.Millisecond
	for q := 0; q < horizon; q++ {
		var sum float64
		n := int(quantum / tick)
		for i := 0; i < n; i++ {
			sum += float64(th.CurrentPhase().Demand)
			// Walk the phase clock without bus interaction.
			th.Advance(float64(tick), float64(tick), 0)
		}
		series = append(series, sum/float64(n))
	}
	return series
}

// WindowAblation sweeps window lengths on the Raytrace pattern.
func WindowAblation(opt Options, windows []int) ([]WindowAblationRow, error) {
	if len(windows) == 0 {
		windows = []int{1, 2, 3, 5, 8, 12}
	}
	rt, ok := workload.ByName("Raytrace")
	if !ok {
		return nil, fmt.Errorf("experiments: Raytrace missing from registry")
	}
	series := demandSeries(rt, sched.DefaultQuantum, 200)
	mean := stats.Mean(series)

	// The Linux baseline is window-independent; the per-window policy
	// runs are independent of each other, so they fan out as one batch.
	var cells []runner.Cell
	for _, w := range windows {
		if w < 1 {
			return nil, fmt.Errorf("experiments: window %d", w)
		}
		w := w
		mk := func() (sched.Scheduler, error) {
			return sched.NewQuantaWindow(opt.machine().NumCPUs, opt.capacity(),
				append([]sched.Option{sched.WithWindow(w)}, opt.PolicyOpts...)...), nil
		}
		cells = append(cells, runner.Cell{
			Label:        fmt.Sprintf("ablw/W%d", w),
			Config:       opt.simConfig(),
			NewScheduler: mk,
			Apps:         buildSet(rt, SetNBBMA),
		})
	}
	linux, err := meanLinuxTurnaround(opt, rt, SetNBBMA)
	if err != nil {
		return nil, err
	}
	results, err := opt.runCells("ablation/window", cells)
	if err != nil {
		return nil, err
	}

	var rows []WindowAblationRow
	for i, w := range windows {
		win := stats.NewWindow(w)
		var dist float64
		var estimates []float64
		for _, x := range series {
			win.Push(x)
			est := win.Mean()
			dist += math.Abs(x - est)
			estimates = append(estimates, est)
		}
		rows = append(rows, WindowAblationRow{
			Window:              w,
			TrackingDistance:    dist / float64(len(series)) / mean,
			EstimateStdDev:      stats.StdDev(estimates),
			RaytraceImprovement: improvement(linux, results[i].MeanTurnaround()),
		})
	}
	return rows, nil
}

// QuantumAblationRow reproduces the paper's Section 5 discussion of
// the manager quantum: 100 ms caused "an excessive number of context
// switches" against the kernel scheduler, so the authors settled on
// 200 ms.
type QuantumAblationRow struct {
	Quantum units.Time
	// ContextSwitchesPerSec measured machine-wide.
	ContextSwitchesPerSec float64
	MigrationsPerSec      float64
	// Improvement of Quanta Window over Linux on the mixed set for a
	// representative application (BT).
	Improvement float64
}

// QuantumAblation sweeps the manager quantum.
func QuantumAblation(opt Options, quanta []units.Time) ([]QuantumAblationRow, error) {
	if len(quanta) == 0 {
		quanta = []units.Time{50 * units.Millisecond, 100 * units.Millisecond, 200 * units.Millisecond, 400 * units.Millisecond}
	}
	bt, ok := workload.ByName("BT")
	if !ok {
		return nil, fmt.Errorf("experiments: BT missing from registry")
	}
	var cells []runner.Cell
	for _, q := range quanta {
		if q <= 0 {
			return nil, fmt.Errorf("experiments: quantum %v", q)
		}
		q := q
		mk := func() (sched.Scheduler, error) {
			return sched.NewQuantaWindow(opt.machine().NumCPUs, opt.capacity(),
				append([]sched.Option{sched.WithQuantum(q)}, opt.PolicyOpts...)...), nil
		}
		cells = append(cells, runner.Cell{
			Label:        fmt.Sprintf("ablq/%s", q),
			Config:       opt.simConfig(),
			NewScheduler: mk,
			Apps:         buildSet(bt, SetMixed),
		})
	}
	linux, err := meanLinuxTurnaround(opt, bt, SetMixed)
	if err != nil {
		return nil, err
	}
	results, err := opt.runCells("ablation/quantum", cells)
	if err != nil {
		return nil, err
	}
	var rows []QuantumAblationRow
	for i, q := range quanta {
		res := results[i]
		secs := res.EndTime.Seconds()
		if secs <= 0 {
			secs = 1
		}
		rows = append(rows, QuantumAblationRow{
			Quantum:               q,
			ContextSwitchesPerSec: float64(res.ContextSwitches) / secs,
			MigrationsPerSec:      float64(res.Migrations) / secs,
			Improvement:           improvement(linux, res.MeanTurnaround()),
		})
	}
	return rows, nil
}

// OverheadResult measures the user-level CPU manager's cost in the
// paper's worst case: multiple identical copies of a low-bandwidth
// application (maximum blocking/unblocking and sampling relative to
// useful work). The paper reports at most 4.5%.
type OverheadResult struct {
	// BaselineTurnaround is the mean turnaround with a free manager.
	BaselineTurnaround units.Time
	// ManagedTurnaround includes the per-quantum manager cost.
	ManagedTurnaround units.Time
	// OverheadPercent is the relative slowdown.
	OverheadPercent float64
}

// ManagerOverhead runs the worst-case workload with and without the
// modelled manager cost.
func ManagerOverhead(opt Options, perQuantum units.Time) (OverheadResult, error) {
	if perQuantum <= 0 {
		perQuantum = 2 * units.Millisecond
	}
	vol, ok := workload.ByName("Volrend")
	if !ok {
		return OverheadResult{}, fmt.Errorf("experiments: Volrend missing from registry")
	}
	build := func() []*workload.App {
		var apps []*workload.App
		for i := 0; i < 3; i++ {
			apps = append(apps, workload.NewApp(vol, fmt.Sprintf("%s#%d", vol.Name, i+1)))
		}
		return apps
	}
	ncpu := opt.machine().NumCPUs
	cap := opt.capacity()
	mkQW := func() (sched.Scheduler, error) {
		return sched.NewQuantaWindow(ncpu, cap, opt.PolicyOpts...), nil
	}
	managed := opt.simConfig()
	managed.ManagerOverhead = perQuantum
	results, err := opt.runCells("overhead", []runner.Cell{
		{
			Label:        "overhead/unmanaged",
			Config:       opt.simConfig(),
			NewScheduler: mkQW,
			Apps:         build(),
		},
		{
			Label:        "overhead/managed",
			Config:       managed,
			NewScheduler: mkQW,
			Apps:         build(),
		},
	})
	if err != nil {
		return OverheadResult{}, err
	}
	out := OverheadResult{
		BaselineTurnaround: results[0].MeanTurnaround(),
		ManagedTurnaround:  results[1].MeanTurnaround(),
	}
	if out.BaselineTurnaround > 0 {
		out.OverheadPercent = float64(out.ManagedTurnaround-out.BaselineTurnaround) /
			float64(out.BaselineTurnaround) * 100
	}
	return out, nil
}

// ZooRow compares every scheduler in the repository on one workload —
// the extension ablation isolating gang scheduling, bandwidth
// awareness, and estimator quality.
type ZooRow struct {
	Scheduler      string
	MeanTurnaround units.Time
	// ImprovementVsLinux in percent.
	ImprovementVsLinux float64
}

// SchedulerZoo runs the full scheduler lineup on the mixed set for the
// given application profile.
func SchedulerZoo(opt Options, appName string) ([]ZooRow, error) {
	p, ok := workload.ByName(appName)
	if !ok {
		return nil, fmt.Errorf("experiments: unknown application %q", appName)
	}
	linux, err := meanLinuxTurnaround(opt, p, SetMixed)
	if err != nil {
		return nil, err
	}
	ncpu := opt.machine().NumCPUs
	cap := opt.capacity()
	mks := []func() (sched.Scheduler, error){
		func() (sched.Scheduler, error) { return sched.NewRoundRobin(ncpu, 0), nil },
		func() (sched.Scheduler, error) { return sched.NewGang(ncpu), nil },
		func() (sched.Scheduler, error) { return sched.NewLatestQuantum(ncpu, cap, opt.PolicyOpts...), nil },
		func() (sched.Scheduler, error) { return sched.NewQuantaWindow(ncpu, cap, opt.PolicyOpts...), nil },
		func() (sched.Scheduler, error) { return sched.NewEWMAPolicy(ncpu, cap, 0.4, opt.PolicyOpts...), nil },
		func() (sched.Scheduler, error) { return sched.NewOracle(ncpu, cap, opt.PolicyOpts...), nil },
		func() (sched.Scheduler, error) { return sched.NewOptimal(ncpu, opt.machine().Bus) },
	}
	var scheds []sched.Scheduler
	var cells []runner.Cell
	for _, mk := range mks {
		s, err := mk()
		if err != nil {
			return nil, err
		}
		scheds = append(scheds, s)
		cells = append(cells, runner.Cell{
			Label:        fmt.Sprintf("zoo/%s", s.Name()),
			Config:       opt.simConfig(),
			Scheduler:    s,
			NewScheduler: mk,
			Apps:         buildSet(p, SetMixed),
		})
	}
	results, err := opt.runCells("zoo", cells)
	if err != nil {
		return nil, err
	}
	rows := []ZooRow{{Scheduler: "Linux", MeanTurnaround: linux, ImprovementVsLinux: 0}}
	for i, s := range scheds {
		res := results[i]
		if res.TimedOut {
			return nil, fmt.Errorf("experiments: %s timed out in zoo", s.Name())
		}
		rows = append(rows, ZooRow{
			Scheduler:          s.Name(),
			MeanTurnaround:     res.MeanTurnaround(),
			ImprovementVsLinux: improvement(linux, res.MeanTurnaround()),
		})
	}
	return rows, nil
}

// SamplingAblationRow contrasts the two estimator inputs on the
// saturated set: requirement-corrected sampling (default) versus raw
// consumption, which deflates under contention and blinds the fitness
// metric (see sim.SampleMode) — plus the optional saturation-guarded
// selection variant.
type SamplingAblationRow struct {
	App                     string
	RequirementsImprovement float64
	ConsumptionImprovement  float64
	GuardedImprovement      float64
}

// SamplingAblation measures both sampling modes plus the
// saturation-guarded selection for a few representative applications.
func SamplingAblation(opt Options, appNames []string) ([]SamplingAblationRow, error) {
	if len(appNames) == 0 {
		appNames = []string{"Radiosity", "BT", "CG"}
	}
	ncpu := opt.machine().NumCPUs
	cap := opt.capacity()
	profiles := make([]workload.Profile, len(appNames))
	var cells []runner.Cell
	for i, name := range appNames {
		p, ok := workload.ByName(name)
		if !ok {
			return nil, fmt.Errorf("experiments: unknown application %q", name)
		}
		profiles[i] = p

		reqCfg := opt.simConfig()
		reqCfg.Sampling = sim.SampleRequirements
		consCfg := opt.simConfig()
		consCfg.Sampling = sim.SampleConsumption
		mkQW := func() (sched.Scheduler, error) {
			return sched.NewQuantaWindow(ncpu, cap, opt.PolicyOpts...), nil
		}
		mkGuarded := func() (sched.Scheduler, error) {
			return sched.NewQuantaWindow(ncpu, cap,
				append([]sched.Option{sched.WithSaturationGuard()}, opt.PolicyOpts...)...), nil
		}

		cells = append(cells, linuxCells(opt, p, SetBBMA)...)
		cells = append(cells,
			runner.Cell{
				Label:        fmt.Sprintf("sampling/%s/requirements", name),
				Config:       reqCfg,
				NewScheduler: mkQW,
				Apps:         buildSet(p, SetBBMA),
			},
			runner.Cell{
				Label:        fmt.Sprintf("sampling/%s/consumption", name),
				Config:       consCfg,
				NewScheduler: mkQW,
				Apps:         buildSet(p, SetBBMA),
			},
			runner.Cell{
				Label:        fmt.Sprintf("sampling/%s/guarded", name),
				Config:       reqCfg,
				NewScheduler: mkGuarded,
				Apps:         buildSet(p, SetBBMA),
			})
	}
	results, err := opt.runCells("ablation/sampling", cells)
	if err != nil {
		return nil, err
	}
	per := len(opt.seeds()) + 3
	var rows []SamplingAblationRow
	for i, p := range profiles {
		chunk := results[i*per : (i+1)*per]
		linux, err := meanLinuxFromResults(p, SetBBMA, chunk[:len(opt.seeds())])
		if err != nil {
			return nil, err
		}
		policy := chunk[len(opt.seeds()):]
		rows = append(rows, SamplingAblationRow{
			App:                     p.Name,
			RequirementsImprovement: improvement(linux, policy[0].MeanTurnaround()),
			ConsumptionImprovement:  improvement(linux, policy[1].MeanTurnaround()),
			GuardedImprovement:      improvement(linux, policy[2].MeanTurnaround()),
		})
	}
	return rows, nil
}
