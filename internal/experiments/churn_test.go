package experiments

import "testing"

// TestChurnStudyShape pins the study's structure and the direction of
// its headline: identical churn for every policy, and the
// bandwidth-aware policies protecting the base apps at least as well
// as the Linux baseline.
func TestChurnStudyShape(t *testing.T) {
	rows, err := ChurnStudy(Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d, want Linux/LQ/QW", len(rows))
	}
	linux := rows[0]
	if linux.Policy != "Linux" || linux.ImprovementVsLinux != 0 {
		t.Fatalf("row 0 = %+v, want the Linux baseline at 0%%", linux)
	}
	for _, r := range rows {
		// The schedule is materialized once and shared, so the churn a
		// policy faces cannot vary: every arrival must also retire
		// (departure or natural completion) before the run ends.
		if r.Arrivals != linux.Arrivals {
			t.Errorf("%s saw %d arrivals, Linux saw %d — schedules diverged",
				r.Policy, r.Arrivals, linux.Arrivals)
		}
		if r.Arrivals == 0 {
			t.Errorf("%s: no churn arrivals — the scenario was inert", r.Policy)
		}
		if got := r.Departures + r.Completed; got != r.Arrivals {
			t.Errorf("%s: %d departures + %d completed != %d arrivals",
				r.Policy, r.Departures, r.Completed, r.Arrivals)
		}
		if r.BaseTurnaround <= 0 {
			t.Errorf("%s: base turnaround = %v", r.Policy, r.BaseTurnaround)
		}
	}
	// The paper's claim carried over: under churn, the bus-aware
	// policies must not do worse than Linux on the resident workload.
	for _, r := range rows[1:] {
		if r.ImprovementVsLinux < 0 {
			t.Errorf("%s improvement = %.2f%%, want >= 0", r.Policy, r.ImprovementVsLinux)
		}
	}
}
