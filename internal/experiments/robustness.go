package experiments

import (
	"fmt"
	"math/rand"

	"busaware/internal/runner"
	"busaware/internal/sched"
	"busaware/internal/stats"
	"busaware/internal/workload"
)

// RobustnessResult summarizes the policies over randomly generated
// heterogeneous workloads — an extension beyond the paper's
// hand-picked mixes that checks the policies did not overfit them.
type RobustnessResult struct {
	Workloads int
	// LQ and QW are the distributions of per-workload improvement (%)
	// over the Linux baseline.
	LQ stats.Summary
	QW stats.Summary
	// LQWins / QWWins count workloads where the policy strictly beat
	// Linux.
	LQWins int
	QWWins int
}

// Robustness generates n random workloads (each: two 1-4 thread
// synthetic applications with random phase structure plus a random
// mix of 2-4 antagonists) and measures both policies against Linux.
// The generator is deterministic in seed.
func Robustness(opt Options, n int, seed int64) (RobustnessResult, error) {
	if n <= 0 {
		n = 20
	}
	out := RobustnessResult{Workloads: n}
	var lqImps, qwImps []float64

	ncpu := opt.machine().NumCPUs
	cap := opt.capacity()
	// Each workload draws from its own rng seeded with seed+i, so mix i
	// is a pure function of (seed, i): inserting, removing or reordering
	// workloads never reshuffles the others, and generation order is
	// irrelevant. Only the simulation cells fan out.
	var cells []runner.Cell
	for i := 0; i < n; i++ {
		wrng := rand.New(rand.NewSource(seed + int64(i)))
		// Two random finite applications...
		p1 := workload.RandomProfile(wrng, fmt.Sprintf("rnd%da", i))
		p2 := workload.RandomProfile(wrng, fmt.Sprintf("rnd%db", i))
		if p1.Threads > ncpu {
			p1.Threads = ncpu
		}
		if p2.Threads > ncpu {
			p2.Threads = ncpu
		}
		// ... plus a random antagonist mix.
		nB := 1 + wrng.Intn(3)
		nN := 1 + wrng.Intn(3)
		build := func() []*workload.App {
			apps := []*workload.App{
				workload.NewApp(p1, p1.Name+"#1"),
				workload.NewApp(p2, p2.Name+"#1"),
			}
			for b := 0; b < nB; b++ {
				apps = append(apps, workload.NewApp(workload.BBMA(), fmt.Sprintf("B#%d", b+1)))
			}
			for b := 0; b < nN; b++ {
				apps = append(apps, workload.NewApp(workload.NBBMA(), fmt.Sprintf("n#%d", b+1)))
			}
			return apps
		}
		linuxSeed := wrng.Int63()
		cells = append(cells,
			runner.Cell{
				Label:  fmt.Sprintf("robust/%d/linux", i),
				Config: opt.simConfig(),
				NewScheduler: func() (sched.Scheduler, error) {
					return sched.NewLinux(ncpu, linuxSeed), nil
				},
				Apps: build(),
			},
			runner.Cell{
				Label:  fmt.Sprintf("robust/%d/LQ", i),
				Config: opt.simConfig(),
				NewScheduler: func() (sched.Scheduler, error) {
					return sched.NewLatestQuantum(ncpu, cap, opt.PolicyOpts...), nil
				},
				Apps: build(),
			},
			runner.Cell{
				Label:  fmt.Sprintf("robust/%d/QW", i),
				Config: opt.simConfig(),
				NewScheduler: func() (sched.Scheduler, error) {
					return sched.NewQuantaWindow(ncpu, cap, opt.PolicyOpts...), nil
				},
				Apps: build(),
			})
	}
	results, err := opt.runCells("robustness", cells)
	if err != nil {
		return out, err
	}
	for i := 0; i < n; i++ {
		linux, lq, qw := results[i*3], results[i*3+1], results[i*3+2]
		if linux.TimedOut || lq.TimedOut || qw.TimedOut {
			return out, fmt.Errorf("experiments: robustness workload %d timed out", i)
		}
		lqImp := improvement(linux.MeanTurnaround(), lq.MeanTurnaround())
		qwImp := improvement(linux.MeanTurnaround(), qw.MeanTurnaround())
		lqImps = append(lqImps, lqImp)
		qwImps = append(qwImps, qwImp)
		if lqImp > 0 {
			out.LQWins++
		}
		if qwImp > 0 {
			out.QWWins++
		}
	}
	if out.LQ, err = stats.Summarize(lqImps); err != nil {
		return out, err
	}
	if out.QW, err = stats.Summarize(qwImps); err != nil {
		return out, err
	}
	return out, nil
}
