// Package experiments reproduces every table and figure of the
// paper's evaluation, plus the ablations called out in DESIGN.md. Each
// experiment builds its workload from the registry, runs it through
// internal/sim on the simulated paper machine, and returns structured
// rows that cmd/figures renders and bench_test.go regenerates.
package experiments

import (
	"fmt"

	"busaware/internal/faults"
	"busaware/internal/machine"
	"busaware/internal/runner"
	"busaware/internal/sched"
	"busaware/internal/sim"
	"busaware/internal/units"
	"busaware/internal/workload"
)

// Options configures an experiment run.
type Options struct {
	// Machine overrides the simulated hardware (zero = paper machine).
	Machine machine.Config
	// LinuxSeeds are the seeds for the Linux baseline runs; the
	// reported baseline is the mean over seeds. Empty selects
	// DefaultLinuxSeeds.
	LinuxSeeds []int64
	// Sampling selects the CPU manager's estimator input.
	Sampling sim.SampleMode
	// Faults configures fault injection for every simulation cell the
	// experiment builds. The zero value is inert: no injector is
	// created and results are identical to a fault-free run.
	Faults faults.Config
	// Engine selects the simulation core for every cell: the default
	// quantum-stepped loop, the event-driven leaping engine, or shadow
	// mode, which runs both and fails on any divergence. Every cell
	// carries a scheduler factory, so shadow mode works across the whole
	// figure grid.
	Engine sim.EngineKind
	// PolicyOpts are applied to every bandwidth-aware policy built.
	PolicyOpts []sched.Option
	// Workers bounds the parallel runner's worker pool. Zero selects
	// GOMAXPROCS; 1 forces serial execution. Every cell carries its
	// own seed, scheduler and freshly built workload, and aggregation
	// happens in submission order, so results are identical at any
	// setting.
	Workers int
	// Metrics, when non-nil, accumulates run-level metrics (per-cell
	// wall time, simulated quanta, bus utilization, worker occupancy)
	// for every batch of simulations submitted through the runner.
	Metrics *runner.Metrics
}

// DefaultLinuxSeeds gives the baseline three runs to average over,
// since the 2.4 scheduler's mixing is order-dependent.
var DefaultLinuxSeeds = []int64{1, 2, 3}

func (o Options) machine() machine.Config {
	if o.Machine.NumCPUs == 0 {
		return machine.DefaultConfig()
	}
	return o.Machine
}

func (o Options) seeds() []int64 {
	if len(o.LinuxSeeds) == 0 {
		return DefaultLinuxSeeds
	}
	return o.LinuxSeeds
}

func (o Options) simConfig() sim.Config {
	return sim.Config{Machine: o.machine(), Sampling: o.Sampling, Faults: o.Faults, Engine: o.Engine}
}

func (o Options) capacity() units.Rate {
	return o.machine().Bus.Capacity
}

// WorkloadSet identifies the paper's three Section 5 workload
// families.
type WorkloadSet int

// The three experiment sets of Figure 2.
const (
	// SetBBMA: two application instances + four BBMA copies (Fig 2A) —
	// the policies on an already saturated bus.
	SetBBMA WorkloadSet = iota
	// SetNBBMA: two application instances + four nBBMA copies
	// (Fig 2B) — low-bandwidth companions available.
	SetNBBMA
	// SetMixed: two instances + two BBMA + two nBBMA (Fig 2C).
	SetMixed
)

func (s WorkloadSet) String() string {
	switch s {
	case SetBBMA:
		return "2Apps+4BBMA"
	case SetNBBMA:
		return "2Apps+4nBBMA"
	case SetMixed:
		return "2Apps+2BBMA+2nBBMA"
	default:
		return "unknown"
	}
}

// buildSet instantiates the workload for one application profile under
// the given set (fresh instances every call — sim mutates apps).
func buildSet(app workload.Profile, set WorkloadSet) []*workload.App {
	apps := []*workload.App{
		workload.NewApp(app, app.Name+"#1"),
		workload.NewApp(app, app.Name+"#2"),
	}
	nB, nN := 0, 0
	switch set {
	case SetBBMA:
		nB = 4
	case SetNBBMA:
		nN = 4
	case SetMixed:
		nB, nN = 2, 2
	}
	for i := 0; i < nB; i++ {
		apps = append(apps, workload.NewApp(workload.BBMA(), fmt.Sprintf("BBMA#%d", i+1)))
	}
	for i := 0; i < nN; i++ {
		apps = append(apps, workload.NewApp(workload.NBBMA(), fmt.Sprintf("nBBMA#%d", i+1)))
	}
	return apps
}

// runCells fans a batch of independent cells out through the parallel
// runner, records its report under name when metrics collection is on,
// and returns the results in submission order.
func (o Options) runCells(name string, cells []runner.Cell) ([]sim.Result, error) {
	results, rep, err := runner.Run(o.Workers, cells)
	if o.Metrics != nil {
		o.Metrics.Observe(name, rep)
	}
	if err != nil {
		return nil, err
	}
	return results, nil
}

// linuxCells builds one baseline cell per seed for the workload.
func linuxCells(opt Options, app workload.Profile, set WorkloadSet) []runner.Cell {
	var cells []runner.Cell
	for _, seed := range opt.seeds() {
		seed := seed
		cells = append(cells, runner.Cell{
			Label:  fmt.Sprintf("linux/%s/%s/seed%d", app.Name, set, seed),
			Config: opt.simConfig(),
			NewScheduler: func() (sched.Scheduler, error) {
				return sched.NewLinux(opt.machine().NumCPUs, seed), nil
			},
			Apps: buildSet(app, set),
		})
	}
	return cells
}

// meanLinuxFromResults averages the per-seed baseline runs.
func meanLinuxFromResults(app workload.Profile, set WorkloadSet, results []sim.Result) (units.Time, error) {
	var sum units.Time
	for _, res := range results {
		if res.TimedOut {
			return 0, fmt.Errorf("experiments: Linux run timed out for %s/%s", app.Name, set)
		}
		sum += res.MeanTurnaround()
	}
	return sum / units.Time(len(results)), nil
}

// meanLinuxTurnaround runs the workload under the Linux baseline for
// each seed and returns the mean of the per-run mean turnarounds.
func meanLinuxTurnaround(opt Options, app workload.Profile, set WorkloadSet) (units.Time, error) {
	results, err := opt.runCells(fmt.Sprintf("linux/%s/%s", app.Name, set), linuxCells(opt, app, set))
	if err != nil {
		return 0, err
	}
	return meanLinuxFromResults(app, set, results)
}

// improvement returns the paper's metric: percentage reduction of the
// mean turnaround relative to the baseline.
func improvement(baseline, policy units.Time) float64 {
	if baseline <= 0 {
		return 0
	}
	return float64(baseline-policy) / float64(baseline) * 100
}
