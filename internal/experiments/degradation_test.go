package experiments

import (
	"reflect"
	"testing"

	"busaware/internal/faults"
	"busaware/internal/workload"
)

// The zero-value fault config in Options must be invisible: every
// experiment produces byte-identical results with and without it.
func TestZeroFaultOptionsInert(t *testing.T) {
	clean := Options{LinuxSeeds: []int64{1}}
	zeroed := Options{LinuxSeeds: []int64{1}, Faults: faults.Config{Seed: 99}}

	t.Run("figure1", func(t *testing.T) {
		a, err := Figure1(clean)
		if err != nil {
			t.Fatal(err)
		}
		b, err := Figure1(zeroed)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(a, b) {
			t.Error("zero-rate fault config changed Figure 1")
		}
	})
	t.Run("figure2", func(t *testing.T) {
		bt, _ := workload.ByName("BT")
		a, err := Figure2App(SetMixed, clean, bt)
		if err != nil {
			t.Fatal(err)
		}
		b, err := Figure2App(SetMixed, zeroed, bt)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(a, b) {
			t.Error("zero-rate fault config changed Figure 2")
		}
	})
	t.Run("robustness", func(t *testing.T) {
		a, err := Robustness(clean, 4, 42)
		if err != nil {
			t.Fatal(err)
		}
		b, err := Robustness(zeroed, 4, 42)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(a, b) {
			t.Error("zero-rate fault config changed Robustness")
		}
	})
}

func TestDegradation(t *testing.T) {
	opt := Options{LinuxSeeds: []int64{1}}
	rates := []float64{0, 0.3, 0.5}
	points, err := Degradation(opt, rates, 7)
	if err != nil {
		t.Fatal(err)
	}
	if want := len(DegradationClasses) * len(rates); len(points) != want {
		t.Fatalf("got %d points, want %d", len(points), want)
	}

	for _, p := range points {
		t.Logf("%-12s rate=%.2f  LQ=%+6.1f%%  QW=%+6.1f%% (faults LQ=%d QW=%d)",
			p.Class, p.Rate, p.LQImprovement, p.QWImprovement,
			p.LQFaults.Total(), p.QWFaults.Total())
		// Rate-0 rows must be fault-free — the injector is inert.
		if p.Rate == 0 && (p.LQFaults.Total() != 0 || p.QWFaults.Total() != 0) {
			t.Errorf("%s@0: faults injected: LQ=%+v QW=%+v", p.Class, p.LQFaults, p.QWFaults)
		}
		if p.Rate > 0 && p.LQFaults.Total() == 0 && p.QWFaults.Total() == 0 {
			t.Errorf("%s@%.2f: no faults injected", p.Class, p.Rate)
		}
		// Fail-soft gate: even losing ≥30% of bandwidth samples, the
		// degraded policies must stay no worse than clean Linux.
		if p.Class == ClassSampleLoss && p.Rate >= 0.3 {
			if p.LQImprovement < 0 {
				t.Errorf("sample-loss@%.2f: LQ fell below Linux (%.1f%%)", p.Rate, p.LQImprovement)
			}
			if p.QWImprovement < 0 {
				t.Errorf("sample-loss@%.2f: QW fell below Linux (%.1f%%)", p.Rate, p.QWImprovement)
			}
		}
	}

	// The sweep is deterministic per seed, at any worker count.
	again, err := Degradation(Options{LinuxSeeds: []int64{1}, Workers: 2}, rates, 7)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(points, again) {
		t.Error("degradation sweep not deterministic across worker counts")
	}
}
