package timeline

import (
	"math/rand"
	"reflect"
	"testing"
)

// sample returns a deterministic sample for quantum i. Float inputs
// are dyadic rationals (exact in binary floating point), so window
// sums — and therefore Merge — are exact, letting the associativity
// test assert bit-equality rather than approximate closeness.
func sample(i int) Sample {
	return Sample{
		StartUsec:   int64(i) * 200_000,
		DurUsec:     200_000,
		Utilization: float64(i%8) * 0.125,
		Served:      float64(i%16) * 0.25,
		Stretch:     1 + float64(i%4)*0.5,
		Placed:      i % 5,
		Runnable:    i%3 + 1,
		Admitted:    i % 3,
		Faults:      int64(i % 2),
	}
}

func TestCollectorWindowing(t *testing.T) {
	c := MustNew(Config{QuantaPerWindow: 4, Capacity: 8})
	for i := 0; i < 10; i++ {
		c.RecordQuantum(sample(i))
	}
	if got := c.Sealed(); got != 2 {
		t.Fatalf("sealed = %d, want 2 (10 quanta, window of 4)", got)
	}
	c.Seal() // flush the 2-quantum partial
	ws := c.Windows()
	if len(ws) != 3 {
		t.Fatalf("retained %d windows, want 3", len(ws))
	}
	if ws[0].Quanta != 4 || ws[1].Quanta != 4 || ws[2].Quanta != 2 {
		t.Fatalf("window quanta = %d,%d,%d, want 4,4,2", ws[0].Quanta, ws[1].Quanta, ws[2].Quanta)
	}
	for i, w := range ws {
		if w.Seq != int64(i) {
			t.Errorf("window %d has seq %d", i, w.Seq)
		}
	}
	// Time bounds cover the recorded quanta contiguously.
	if ws[0].StartUsec != 0 || ws[0].EndUsec != 800_000 {
		t.Errorf("window 0 spans [%d,%d], want [0,800000]", ws[0].StartUsec, ws[0].EndUsec)
	}
	if ws[2].StartUsec != 1_600_000 || ws[2].EndUsec != 2_000_000 {
		t.Errorf("window 2 spans [%d,%d], want [1600000,2000000]", ws[2].StartUsec, ws[2].EndUsec)
	}
	// An empty collector seals nothing.
	before := c.Sealed()
	c.Seal()
	if c.Sealed() != before {
		t.Errorf("Seal with no open window sealed one anyway")
	}
}

func TestCollectorFieldAccumulation(t *testing.T) {
	c := MustNew(Config{QuantaPerWindow: 4, Capacity: 4, SaturationThreshold: 0.5})
	// Quantum roster: two saturated, one idle, deferred jobs on two.
	c.RecordQuantum(Sample{DurUsec: 10, Utilization: 0.75, Served: 2, Stretch: 4, Placed: 4, Runnable: 3, Admitted: 2})
	c.RecordQuantum(Sample{StartUsec: 10, DurUsec: 10, Utilization: 0.5, Served: 1, Stretch: 2, Placed: 2, Runnable: 2, Admitted: 1, Faults: 3})
	c.RecordQuantum(Sample{StartUsec: 20, DurUsec: 10, Utilization: 0.25, Served: 0.5, Stretch: 1, Placed: 1, Runnable: 1, Admitted: 1})
	c.RecordQuantum(Sample{StartUsec: 30, DurUsec: 10})
	w := c.Windows()[0]
	if w.Saturated != 2 {
		t.Errorf("saturated = %d, want 2 (threshold 0.5 inclusive)", w.Saturated)
	}
	if w.Idle != 1 {
		t.Errorf("idle = %d, want 1", w.Idle)
	}
	if w.Admitted != 4 || w.Deferred != 2 {
		t.Errorf("admitted/deferred = %d/%d, want 4/2", w.Admitted, w.Deferred)
	}
	if w.UtilMax != 0.75 || w.StretchMax != 4 {
		t.Errorf("maxes = %v/%v, want 0.75/4", w.UtilMax, w.StretchMax)
	}
	if w.UtilMean() != 0.375 {
		t.Errorf("util mean = %v, want 0.375", w.UtilMean())
	}
	if w.Faults != 3 {
		t.Errorf("faults = %d, want 3", w.Faults)
	}
	if w.DeferredFrac() != float64(2)/6 {
		t.Errorf("deferred frac = %v, want 1/3", w.DeferredFrac())
	}
}

// TestRingWraparound drives the collector far past capacity and checks
// that retention, eviction accounting, and the running summary all
// stay consistent — the bounded-memory contract at millions of quanta.
func TestRingWraparound(t *testing.T) {
	const (
		perWindow = 8
		capacity  = 16
		quanta    = 8 * perWindow * capacity // 8 full ring turnovers
	)
	c := MustNew(Config{QuantaPerWindow: perWindow, Capacity: capacity})
	for i := 0; i < quanta; i++ {
		c.RecordQuantum(sample(i))
	}
	wantSealed := int64(quanta / perWindow)
	if got := c.Sealed(); got != wantSealed {
		t.Fatalf("sealed = %d, want %d", got, wantSealed)
	}
	ws := c.Windows()
	if len(ws) != capacity {
		t.Fatalf("retained %d windows, want %d", len(ws), capacity)
	}
	if got := c.Evicted(); got != wantSealed-capacity {
		t.Fatalf("evicted = %d, want %d", got, wantSealed-capacity)
	}
	// The survivors are exactly the newest windows, in order.
	for i, w := range ws {
		if want := wantSealed - int64(capacity) + int64(i); w.Seq != want {
			t.Fatalf("window %d has seq %d, want %d", i, w.Seq, want)
		}
	}
	// Since() slices the retained tail.
	tail := c.Since(ws[capacity-3].Seq)
	if len(tail) != 3 {
		t.Fatalf("Since returned %d windows, want 3", len(tail))
	}
	// The summary covers every quantum ever recorded, evicted included.
	sum := c.Summary()
	if sum.Quanta != int64(quanta) {
		t.Fatalf("summary quanta = %d, want %d", sum.Quanta, quanta)
	}
	var wantUtil float64
	var wantFaults int64
	for i := 0; i < quanta; i++ {
		s := sample(i)
		wantUtil += s.Utilization
		wantFaults += s.Faults
	}
	if sum.UtilSum != wantUtil {
		t.Errorf("summary util sum = %v, want %v", sum.UtilSum, wantUtil)
	}
	if sum.Faults != wantFaults {
		t.Errorf("summary faults = %d, want %d", sum.Faults, wantFaults)
	}
	// Summary == merge(evicted..., retained...): recomputable from parts.
	if got := Merge(c.evictedSnapshot(), MergeAll(ws)); !reflect.DeepEqual(got, sum) {
		t.Errorf("summary != evicted+retained:\n got %+v\nwant %+v", got, sum)
	}
}

// evictedSnapshot exposes the evicted-windows fold for the wraparound
// test's consistency check.
func (c *Collector) evictedSnapshot() Window {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.evicted
}

// TestMergeAssociative pins the property the gateway's cross-backend
// aggregation depends on: folding windows in any order — any
// parenthesization, any permutation — produces the identical result.
// Inputs use dyadic fractions so float sums are exact and equality can
// be bitwise.
func TestMergeAssociative(t *testing.T) {
	mk := func(seed int) Window {
		c := MustNew(Config{QuantaPerWindow: 32, Capacity: 1})
		for i := 0; i < 32; i++ {
			c.RecordQuantum(sample(seed*32 + i))
		}
		return c.Windows()[0]
	}
	a, b, d := mk(0), mk(1), mk(2)

	left := Merge(Merge(a, b), d)
	right := Merge(a, Merge(b, d))
	if !reflect.DeepEqual(left, right) {
		t.Fatalf("merge not associative:\n(a+b)+d = %+v\na+(b+d) = %+v", left, right)
	}
	if ab, ba := Merge(a, b), Merge(b, a); !reflect.DeepEqual(ab, ba) {
		t.Fatalf("merge not commutative:\na+b = %+v\nb+a = %+v", ab, ba)
	}
	// Identity element.
	if got := Merge(a, Window{}); !reflect.DeepEqual(got, a) {
		t.Fatalf("zero window is not a right identity: %+v", got)
	}
	if got := Merge(Window{}, a); !reflect.DeepEqual(got, a) {
		t.Fatalf("zero window is not a left identity: %+v", got)
	}

	// Shuffle a larger pool: every fold order agrees. This is the
	// gateway scenario — N backends' windows arriving in arbitrary
	// completion order.
	pool := make([]Window, 12)
	for i := range pool {
		pool[i] = mk(i)
	}
	want := MergeAll(pool)
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		shuffled := append([]Window(nil), pool...)
		rng.Shuffle(len(shuffled), func(i, j int) { shuffled[i], shuffled[j] = shuffled[j], shuffled[i] })
		if got := MergeAll(shuffled); !reflect.DeepEqual(got, want) {
			t.Fatalf("trial %d: shuffled fold diverged:\n got %+v\nwant %+v", trial, got, want)
		}
	}
}

func TestOnSealFiresMidRunAndOnFlush(t *testing.T) {
	var sealed []Window
	c := MustNew(Config{QuantaPerWindow: 4, Capacity: 4, OnSeal: func(w Window) { sealed = append(sealed, w) }})
	for i := 0; i < 6; i++ {
		c.RecordQuantum(sample(i))
	}
	if len(sealed) != 1 {
		t.Fatalf("OnSeal fired %d times mid-run, want 1", len(sealed))
	}
	c.Seal()
	if len(sealed) != 2 {
		t.Fatalf("OnSeal fired %d times after flush, want 2", len(sealed))
	}
	if sealed[1].Quanta != 2 {
		t.Errorf("flushed window covers %d quanta, want 2", sealed[1].Quanta)
	}
}

func TestNewValidation(t *testing.T) {
	for _, tc := range []struct {
		name string
		cfg  Config
		ok   bool
	}{
		{"defaults", Config{}, true},
		{"negative-window", Config{QuantaPerWindow: -1}, false},
		{"negative-capacity", Config{Capacity: -1}, false},
		{"threshold-high", Config{SaturationThreshold: 1.5}, false},
		{"threshold-negative", Config{SaturationThreshold: -0.1}, false},
		{"explicit", Config{QuantaPerWindow: 1, Capacity: 1, SaturationThreshold: 1}, true},
	} {
		_, err := New(tc.cfg)
		if (err == nil) != tc.ok {
			t.Errorf("%s: err = %v, want ok=%t", tc.name, err, tc.ok)
		}
	}
	c := MustNew(Config{})
	if c.QuantaPerWindow() != DefaultQuantaPerWindow {
		t.Errorf("defaulted quanta/window = %d", c.QuantaPerWindow())
	}
	if c.SaturationThreshold() != DefaultSaturationThreshold {
		t.Errorf("defaulted threshold = %v", c.SaturationThreshold())
	}
}
