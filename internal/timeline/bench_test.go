package timeline

import "testing"

// BenchmarkTimelineRecord measures the per-quantum recording cost the
// simulator pays when a timeline is attached. CI gates it at 0
// allocs/op: the collector must never allocate on the hot path, or the
// PR 3 fast-path win evaporates the moment observability is turned on.
func BenchmarkTimelineRecord(b *testing.B) {
	c := MustNew(Config{QuantaPerWindow: 64, Capacity: 256})
	s := Sample{
		DurUsec:     200_000,
		Utilization: 0.875,
		Served:      29.5,
		Stretch:     1.5,
		Placed:      4,
		Runnable:    6,
		Admitted:    3,
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.StartUsec = int64(i) * s.DurUsec
		c.RecordQuantum(s)
	}
}
