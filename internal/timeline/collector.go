package timeline

import (
	"fmt"
	"sync"
)

// Defaults for Config's zero values.
const (
	// DefaultQuantaPerWindow trades resolution for volume: at the
	// paper's 200ms quantum one window covers 12.8 simulated seconds,
	// and a 30-minute run seals ~140 windows.
	DefaultQuantaPerWindow = 64
	// DefaultCapacity bounds the ring: 1024 windows is ~65k quanta of
	// full detail, with older history folded into the running summary.
	DefaultCapacity = 1024
	// DefaultSaturationThreshold marks a quantum saturated when the
	// bus model served at least this fraction of effective capacity.
	DefaultSaturationThreshold = 0.9
)

// Config sizes a Collector. The zero value selects every default.
type Config struct {
	// QuantaPerWindow is how many quanta one window aggregates
	// (0 = DefaultQuantaPerWindow).
	QuantaPerWindow int
	// Capacity is the ring size in sealed windows
	// (0 = DefaultCapacity). Oldest windows are evicted into the
	// running summary when the ring is full.
	Capacity int
	// SaturationThreshold is the utilization at or above which a
	// quantum counts as saturated (0 = DefaultSaturationThreshold).
	SaturationThreshold float64
	// OnSeal, when non-nil, is called with every sealed window —
	// including the final partial window flushed by Seal — outside the
	// collector lock. The serving layer uses it to publish windows to
	// live /v1/timeline subscribers while the run is still in flight.
	OnSeal func(Window)
}

// Collector aggregates per-quantum samples into windows with bounded
// memory. The zero value is not usable; construct with New. All
// methods are safe for concurrent use: one writer (the simulation
// loop) and any number of snapshot readers (the streaming endpoint).
type Collector struct {
	mu  sync.Mutex
	cfg Config

	cur  Window // accumulating window (Quanta < cfg.QuantaPerWindow)
	open bool   // cur has at least one quantum

	ring    []Window // preallocated to Capacity
	head    int      // index of the oldest retained window
	n       int      // retained windows
	sealed  int64    // windows sealed over the collector's lifetime
	evicted Window   // merged total of windows pushed out of the ring
	total   Window   // merged total of every sealed window

	// sealScratch carries windows sealed inside one RecordQuanta fold
	// out of the lock for OnSeal delivery; reused across calls.
	sealScratch []Window
}

// New builds a collector, applying defaults and validating cfg.
func New(cfg Config) (*Collector, error) {
	if cfg.QuantaPerWindow == 0 {
		cfg.QuantaPerWindow = DefaultQuantaPerWindow
	}
	if cfg.Capacity == 0 {
		cfg.Capacity = DefaultCapacity
	}
	if cfg.SaturationThreshold == 0 {
		cfg.SaturationThreshold = DefaultSaturationThreshold
	}
	if cfg.QuantaPerWindow < 1 {
		return nil, fmt.Errorf("timeline: quanta per window %d", cfg.QuantaPerWindow)
	}
	if cfg.Capacity < 1 {
		return nil, fmt.Errorf("timeline: capacity %d", cfg.Capacity)
	}
	if cfg.SaturationThreshold < 0 || cfg.SaturationThreshold > 1 {
		return nil, fmt.Errorf("timeline: saturation threshold %v out of [0,1]", cfg.SaturationThreshold)
	}
	return &Collector{cfg: cfg, ring: make([]Window, cfg.Capacity)}, nil
}

// MustNew is New for configurations known valid (defaults included);
// it panics on error.
func MustNew(cfg Config) *Collector {
	c, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return c
}

// RecordQuantum folds one quantum into the current window, sealing it
// into the ring when it reaches QuantaPerWindow quanta. This is the
// simulator's hot path: it allocates nothing (the ring slot is
// preallocated and OnSeal delivery copies a value).
func (c *Collector) RecordQuantum(s Sample) {
	c.mu.Lock()
	sealed, fire := c.foldLocked(s)
	c.mu.Unlock()

	if fire && c.cfg.OnSeal != nil {
		c.cfg.OnSeal(sealed)
	}
}

// RecordQuanta folds n consecutive identical quanta: quantum k covers
// [s.StartUsec + k*s.DurUsec, s.StartUsec + (k+1)*s.DurUsec) and every
// other field repeats. It is exactly equivalent to n RecordQuantum
// calls with StartUsec advanced by DurUsec each time — window seals
// land on the same boundaries and OnSeal fires once per sealed window,
// in order — but the lock is taken once, which is how the event-driven
// engine streams a leapt stretch without paying n lock round-trips.
func (c *Collector) RecordQuanta(s Sample, n int) {
	if n <= 0 {
		return
	}
	c.mu.Lock()
	fired := c.sealScratch[:0]
	for i := 0; i < n; i++ {
		if sealed, fire := c.foldLocked(s); fire {
			fired = append(fired, sealed)
		}
		s.StartUsec += s.DurUsec
	}
	c.sealScratch = fired[:0]
	c.mu.Unlock()

	if c.cfg.OnSeal != nil {
		for _, w := range fired {
			c.cfg.OnSeal(w)
		}
	}
}

// foldLocked accumulates one quantum into the current window and seals
// it when full, returning the sealed window. Callers hold c.mu.
func (c *Collector) foldLocked(s Sample) (Window, bool) {
	if !c.open {
		c.cur = Window{Seq: c.sealed, StartUsec: s.StartUsec, EndUsec: s.StartUsec}
		c.open = true
	}
	w := &c.cur
	if s.StartUsec < w.StartUsec {
		w.StartUsec = s.StartUsec
	}
	if end := s.StartUsec + s.DurUsec; end > w.EndUsec {
		w.EndUsec = end
	}
	w.Quanta++
	w.UtilSum += s.Utilization
	if s.Utilization > w.UtilMax {
		w.UtilMax = s.Utilization
	}
	w.ServedSum += s.Served
	w.StretchSum += s.Stretch
	if s.Stretch > w.StretchMax {
		w.StretchMax = s.Stretch
	}
	w.Placed += int64(s.Placed)
	w.Runnable += int64(s.Runnable)
	w.Admitted += int64(s.Admitted)
	if d := s.Runnable - s.Admitted; d > 0 {
		w.Deferred += int64(d)
	}
	if s.Utilization >= c.cfg.SaturationThreshold {
		w.Saturated++
	}
	if s.Placed == 0 {
		w.Idle++
	}
	w.Faults += s.Faults
	if w.Quanta >= int64(c.cfg.QuantaPerWindow) {
		return c.sealLocked()
	}
	return Window{}, false
}

// sealLocked moves the current window into the ring, evicting the
// oldest into the running summary when full. Callers hold c.mu.
func (c *Collector) sealLocked() (Window, bool) {
	if !c.open {
		return Window{}, false
	}
	w := c.cur
	c.open = false
	c.cur = Window{}
	if c.n == len(c.ring) {
		c.evicted = Merge(c.evicted, c.ring[c.head])
		c.head = (c.head + 1) % len(c.ring)
		c.n--
	}
	c.ring[(c.head+c.n)%len(c.ring)] = w
	c.n++
	c.sealed++
	c.total = Merge(c.total, w)
	return w, true
}

// Seal flushes the in-progress partial window, if any, so runs shorter
// than one window still produce output. sim.Run calls it once at the
// end of the run.
func (c *Collector) Seal() {
	c.mu.Lock()
	sealed, fire := c.sealLocked()
	c.mu.Unlock()
	if fire && c.cfg.OnSeal != nil {
		c.cfg.OnSeal(sealed)
	}
}

// Windows returns a copy of the retained windows, oldest first.
func (c *Collector) Windows() []Window {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]Window, c.n)
	for i := 0; i < c.n; i++ {
		out[i] = c.ring[(c.head+i)%len(c.ring)]
	}
	return out
}

// Since returns retained windows with Seq >= seq, oldest first — the
// streaming endpoint's incremental read.
func (c *Collector) Since(seq int64) []Window {
	c.mu.Lock()
	defer c.mu.Unlock()
	var out []Window
	for i := 0; i < c.n; i++ {
		if w := c.ring[(c.head+i)%len(c.ring)]; w.Seq >= seq {
			out = append(out, w)
		}
	}
	return out
}

// Summary returns the merge of every window ever sealed — retained or
// evicted — so run-level totals survive ring wraparound. The partial
// in-progress window is not included until sealed.
func (c *Collector) Summary() Window {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.total
}

// Sealed returns how many windows have been sealed over the
// collector's lifetime; Evicted how many of those have been pushed out
// of the ring.
func (c *Collector) Sealed() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.sealed
}

// Evicted reports the number of sealed windows no longer retained.
func (c *Collector) Evicted() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.sealed - int64(c.n)
}

// SaturationThreshold reports the threshold the collector classifies
// saturated quanta with (after defaulting).
func (c *Collector) SaturationThreshold() float64 { return c.cfg.SaturationThreshold }

// QuantaPerWindow reports the window span in quanta (after defaulting).
func (c *Collector) QuantaPerWindow() int { return c.cfg.QuantaPerWindow }

// Capacity reports the ring size in sealed windows (after defaulting).
func (c *Collector) Capacity() int { return c.cfg.Capacity }
