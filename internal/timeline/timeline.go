// Package timeline turns the simulator's per-quantum activity into a
// bounded time series: bus utilization, latency stretch, per-policy
// admission decisions, queue depths and fault events, aggregated into
// fixed-span windows held in a fixed-size ring. The paper's whole
// argument is about *episodes* — a bus-saturation stretch, an
// admission-throttling phase, a degradation event — and end-of-run
// aggregates cannot show one; windows can, at bounded memory no matter
// how many millions of quanta a run simulates.
//
// The design splits cleanly in two:
//
//   - Window is pure data: every field is a sum (or a max) over the
//     quanta the window covers, so two windows covering disjoint quanta
//     combine with Merge. Sum-form is what makes Merge associative and
//     commutative — the gateway can fold windows from N backends in
//     whatever order their responses arrive and get the same answer.
//     Rates and means are derived on demand, never stored.
//
//   - Collector is the hot-path recorder: RecordQuantum accumulates
//     into the current window and seals it into a preallocated ring
//     every QuantaPerWindow quanta. The steady state allocates nothing
//     (gated by BenchmarkTimelineRecord at 0 allocs/op); when the ring
//     is full the oldest window is evicted into the running summary, so
//     nothing is lost from the totals even though per-window detail is.
package timeline

// Window aggregates QuantaPerWindow consecutive quanta of one run.
// All fields are totals over the covered quanta except the *Max fields;
// derive rates with the methods. Serialized as the NDJSON line schema
// of GET /v1/timeline (see DESIGN.md §8).
type Window struct {
	// Seq numbers sealed windows from 0 within one collector.
	Seq int64 `json:"seq"`
	// StartUsec and EndUsec bound the covered simulated time.
	StartUsec int64 `json:"start_usec"`
	EndUsec   int64 `json:"end_usec"`
	// Quanta is how many quanta the window covers.
	Quanta int64 `json:"quanta"`
	// UtilSum sums the per-quantum mean bus utilization.
	UtilSum float64 `json:"util_sum"`
	// UtilMax is the worst single quantum's bus utilization.
	UtilMax float64 `json:"util_max"`
	// ServedSum sums the per-quantum mean served transaction rates
	// (trans/usec).
	ServedSum float64 `json:"served_sum"`
	// StretchSum sums the bus latency stretch (the bus model's
	// equilibrium inflation X >= 1); StretchMax is the worst quantum.
	StretchSum float64 `json:"stretch_sum"`
	StretchMax float64 `json:"stretch_max"`
	// Placed counts thread-placements (threads x quanta executed).
	Placed int64 `json:"placed"`
	// Runnable sums the scheduler's queue depth (jobs connected and
	// incomplete) per quantum.
	Runnable int64 `json:"runnable"`
	// Admitted counts job-quanta the policy placed; Deferred counts
	// job-quanta it left waiting (runnable but unplaced) — the
	// admission decisions of a bandwidth-aware policy made visible.
	Admitted int64 `json:"admitted"`
	Deferred int64 `json:"deferred"`
	// Saturated counts quanta whose bus utilization reached the
	// collector's saturation threshold; Idle counts quanta with no
	// placements at all.
	Saturated int64 `json:"saturated"`
	Idle      int64 `json:"idle"`
	// Faults counts fault-injection events landing in the window.
	Faults int64 `json:"faults"`
}

// UtilMean returns the mean bus utilization over the window.
func (w Window) UtilMean() float64 { return ratio(w.UtilSum, w.Quanta) }

// ServedMean returns the mean served transaction rate (trans/usec).
func (w Window) ServedMean() float64 { return ratio(w.ServedSum, w.Quanta) }

// StretchMean returns the mean bus latency stretch.
func (w Window) StretchMean() float64 { return ratio(w.StretchSum, w.Quanta) }

// RunnableMean returns the mean scheduler queue depth.
func (w Window) RunnableMean() float64 { return ratio(float64(w.Runnable), w.Quanta) }

// DeferredFrac returns the fraction of job-quanta the policy deferred —
// the admission-throttling intensity.
func (w Window) DeferredFrac() float64 {
	return ratio(float64(w.Deferred), w.Admitted+w.Deferred)
}

func ratio(sum float64, n int64) float64 {
	if n <= 0 {
		return 0
	}
	return sum / float64(n)
}

// Merge combines two windows covering disjoint sets of quanta: sums
// add, maxes take the max, and the time bounds extend to cover both.
// Merge is commutative and associative (exactly so for the integer
// fields; for the float sums up to the usual exactness of float64
// addition), so folding windows from many backends is order-
// independent — the property the gateway's cross-backend aggregation
// relies on and TestMergeAssociative pins. The merged Seq is the
// smaller of the two; an empty (zero Quanta) side yields the other
// unchanged so Window{} is the fold identity.
func Merge(a, b Window) Window {
	if a.Quanta == 0 {
		return b
	}
	if b.Quanta == 0 {
		return a
	}
	out := a
	if b.Seq < out.Seq {
		out.Seq = b.Seq
	}
	if b.StartUsec < out.StartUsec {
		out.StartUsec = b.StartUsec
	}
	if b.EndUsec > out.EndUsec {
		out.EndUsec = b.EndUsec
	}
	out.Quanta += b.Quanta
	out.UtilSum += b.UtilSum
	out.ServedSum += b.ServedSum
	out.StretchSum += b.StretchSum
	if b.UtilMax > out.UtilMax {
		out.UtilMax = b.UtilMax
	}
	if b.StretchMax > out.StretchMax {
		out.StretchMax = b.StretchMax
	}
	out.Placed += b.Placed
	out.Runnable += b.Runnable
	out.Admitted += b.Admitted
	out.Deferred += b.Deferred
	out.Saturated += b.Saturated
	out.Idle += b.Idle
	out.Faults += b.Faults
	return out
}

// MergeAll folds windows into one. The zero Window is returned for an
// empty input.
func MergeAll(ws []Window) Window {
	var out Window
	for _, w := range ws {
		out = Merge(out, w)
	}
	return out
}

// Sample is one quantum's raw observation, recorded by sim.Run.
type Sample struct {
	// StartUsec is the quantum's start in simulated time; DurUsec its
	// length.
	StartUsec int64
	DurUsec   int64
	// Utilization is the quantum's mean bus utilization in [0,1].
	Utilization float64
	// Served is the mean served transaction rate (trans/usec).
	Served float64
	// Stretch is the bus latency inflation at quantum end (>= 1; 0 is
	// recorded as-is for idle quanta).
	Stretch float64
	// Placed is how many threads ran; Runnable how many jobs were
	// connected and incomplete; Admitted how many of those jobs ran.
	Placed   int
	Runnable int
	Admitted int
	// Faults is the number of fault events injected during the quantum.
	Faults int64
}
