// Package machine models the paper's experimental platform: a
// dedicated 4-processor SMP (Hyperthreaded Xeons with hyperthreading
// disabled — the perfctr driver of the day could not virtualize
// counters for sibling threads) with per-processor 256KB L2 caches and
// one shared front-side bus.
//
// The machine executes placements: for each time slice the scheduler
// says which thread runs on which processor, and the machine advances
// every placed thread at the speed the bus model grants it, maintains
// cache-affinity state, charges migration costs, and accumulates each
// thread's virtual performance counters.
package machine

import (
	"errors"
	"fmt"

	"busaware/internal/bus"
	"busaware/internal/cache"
	"busaware/internal/units"
	"busaware/internal/workload"
)

// Config describes the machine.
type Config struct {
	// NumCPUs is the processor count (4 on the paper's machine).
	NumCPUs int
	// Bus configures the shared front-side bus model.
	Bus bus.Config
	// L2 is the per-processor cache geometry (affinity bookkeeping).
	L2 cache.Config
	// MicroStep subdivides each Step so phase changes and migration
	// debt repayment inside a slice are resolved with reasonable
	// fidelity. Zero selects the default of 10ms.
	MicroStep units.Time
	// PollutionFrac is the fraction of a thread's migration penalty
	// charged when it resumes on its own processor after a *different*
	// thread ran there in between (the intervening thread evicted part
	// of its working set). Time-sharing is cheaper than migrating, but
	// not free — this is why LU CB and Water-nsqr suffer under any
	// multiprogramming in the paper.
	PollutionFrac float64

	// SMTSiblings enables simultaneous multithreading: logical
	// processors 2i and 2i+1 share physical core i. The paper disabled
	// hyperthreading (the perfctr driver of 2003 could not virtualize
	// counters for sibling threads) and named SMT as future work; set
	// SMTSiblings to 2 to explore it. 0 and 1 mean no sharing.
	SMTSiblings int
	// SMTEfficiency is each sibling's speed multiplier when both
	// logical processors of a core are busy. Hyperthreaded Xeons of
	// the era gained ~25% aggregate throughput from a busy sibling
	// pair, i.e. ~0.62 per thread.
	SMTEfficiency float64
}

// DefaultConfig returns the paper machine: 4 CPUs, STREAM-calibrated
// bus, Xeon L2 geometry.
func DefaultConfig() Config {
	return Config{
		NumCPUs:       4,
		Bus:           bus.DefaultConfig(),
		L2:            cache.XeonL2(),
		MicroStep:     10 * units.Millisecond,
		PollutionFrac: 0.5,
		SMTEfficiency: 0.62,
	}
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if c.NumCPUs < 1 {
		return fmt.Errorf("machine: %d CPUs", c.NumCPUs)
	}
	if err := c.Bus.Validate(); err != nil {
		return err
	}
	if err := c.L2.Validate(); err != nil {
		return err
	}
	if c.MicroStep < 0 {
		return errors.New("machine: negative micro step")
	}
	if c.PollutionFrac < 0 || c.PollutionFrac > 1 {
		return fmt.Errorf("machine: pollution fraction %v out of [0,1]", c.PollutionFrac)
	}
	if c.SMTSiblings < 0 || c.SMTSiblings > 2 {
		return fmt.Errorf("machine: SMT siblings %d (want 0, 1 or 2)", c.SMTSiblings)
	}
	if c.SMTSiblings == 2 {
		if c.NumCPUs%2 != 0 {
			return fmt.Errorf("machine: SMT needs an even logical CPU count, got %d", c.NumCPUs)
		}
		if c.SMTEfficiency <= 0 || c.SMTEfficiency > 1 {
			return fmt.Errorf("machine: SMT efficiency %v out of (0,1]", c.SMTEfficiency)
		}
	}
	return nil
}

// Placement assigns one thread to one processor for a slice.
type Placement struct {
	Thread *workload.Thread
	CPU    int
}

// ThreadStep reports one placed thread's slice outcome.
type ThreadStep struct {
	Thread *workload.Thread
	CPU    int
	// Speed is the mean progress fraction over the slice.
	Speed float64
	// Rate is the mean achieved transaction rate over the slice.
	Rate units.Rate
	// Migrated reports whether this slice began with a migration.
	Migrated bool
}

// StepResult summarizes one Step call.
type StepResult struct {
	Elapsed units.Time
	// Outcome is the bus outcome of the final micro-step (demands may
	// shift within the slice as phases roll over).
	Outcome bus.Outcome
	// MeanUtilization averages bus utilization over micro-steps.
	MeanUtilization float64
	// MeanServed averages the served transaction rate over micro-steps.
	MeanServed units.Rate
	Migrations int
	// ContextSwitches counts processors whose occupant changed since
	// the previous slice.
	ContextSwitches int
	// Threads aliases the machine's reusable scratch: the slice is
	// valid until the next Step call on the same Machine.
	Threads []ThreadStep
	// BusyCPUs is the number of processors that executed a thread.
	BusyCPUs int
}

// Machine is the simulated SMP. Not safe for concurrent use.
type Machine struct {
	cfg        Config
	busModel   *bus.Model
	now        units.Time
	lastCPU    map[*workload.Thread]int
	lastThread []*workload.Thread // per-CPU most recent occupant
	busyTime   []units.Time       // per-CPU accumulated busy time

	// Per-call scratch, reused across Steps so the quantum loop
	// allocates nothing beyond the returned ThreadStep slice.
	cpuUsed  []bool
	thrUsed  map[*workload.Thread]bool
	busyCore []int
	reqs     []bus.Request
	grants   []bus.Grant
	steps    []ThreadStep
	plan     StretchPlan
}

// New builds a Machine.
func New(cfg Config) (*Machine, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if cfg.MicroStep == 0 {
		cfg.MicroStep = 10 * units.Millisecond
	}
	bm, err := bus.New(cfg.Bus)
	if err != nil {
		return nil, err
	}
	return &Machine{
		cfg:        cfg,
		busModel:   bm,
		lastCPU:    make(map[*workload.Thread]int),
		lastThread: make([]*workload.Thread, cfg.NumCPUs),
		busyTime:   make([]units.Time, cfg.NumCPUs),
		cpuUsed:    make([]bool, cfg.NumCPUs),
		thrUsed:    make(map[*workload.Thread]bool, cfg.NumCPUs),
		busyCore:   make([]int, (cfg.NumCPUs+1)/2),
		reqs:       make([]bus.Request, 0, cfg.NumCPUs),
		grants:     make([]bus.Grant, 0, cfg.NumCPUs),
		steps:      make([]ThreadStep, 0, cfg.NumCPUs),
	}, nil
}

// Config returns the machine configuration.
func (m *Machine) Config() Config { return m.cfg }

// Now returns the current simulated time.
func (m *Machine) Now() units.Time { return m.now }

// BusyTime returns the accumulated busy time of each processor in a
// fresh slice. Hot paths should prefer AppendBusyTime.
func (m *Machine) BusyTime() []units.Time {
	return m.AppendBusyTime(nil)
}

// AppendBusyTime appends each processor's accumulated busy time to dst
// and returns the extended slice, reusing dst's capacity — the
// non-allocating variant of BusyTime.
func (m *Machine) AppendBusyTime(dst []units.Time) []units.Time {
	return append(dst, m.busyTime...)
}

// LastCPU returns where the thread last ran, or -1 if it never ran.
func (m *Machine) LastCPU(t *workload.Thread) int {
	if cpu, ok := m.lastCPU[t]; ok {
		return cpu
	}
	return -1
}

// Step runs the given placements for dt of wall-clock time. Placements
// must reference distinct CPUs within range and distinct, unfinished
// threads; violations return an error and leave state untouched.
func (m *Machine) Step(placements []Placement, dt units.Time) (StepResult, error) {
	if dt <= 0 {
		return StepResult{}, errors.New("machine: non-positive step duration")
	}
	if len(placements) > m.cfg.NumCPUs {
		return StepResult{}, fmt.Errorf("machine: %d placements on %d CPUs", len(placements), m.cfg.NumCPUs)
	}
	for i := range m.cpuUsed {
		m.cpuUsed[i] = false
	}
	clear(m.thrUsed)
	for _, p := range placements {
		if p.Thread == nil {
			return StepResult{}, errors.New("machine: nil thread placed")
		}
		if p.CPU < 0 || p.CPU >= m.cfg.NumCPUs {
			return StepResult{}, fmt.Errorf("machine: CPU %d out of range", p.CPU)
		}
		if m.cpuUsed[p.CPU] {
			return StepResult{}, fmt.Errorf("machine: CPU %d double-booked", p.CPU)
		}
		if m.thrUsed[p.Thread] {
			return StepResult{}, fmt.Errorf("machine: thread %s/%d placed twice", p.Thread.App.Instance, p.Thread.Index)
		}
		m.cpuUsed[p.CPU] = true
		m.thrUsed[p.Thread] = true
	}

	scratch := m.steps[:cap(m.steps)]
	for i := range scratch {
		scratch[i] = ThreadStep{}
	}
	res := StepResult{
		Elapsed:  dt,
		Threads:  scratch[:len(placements)],
		BusyCPUs: len(placements),
	}
	for i, p := range placements {
		res.Threads[i] = ThreadStep{Thread: p.Thread, CPU: p.CPU}
		last, ran := m.lastCPU[p.Thread]
		switch {
		case ran && last != p.CPU:
			// Full migration: the working set must be rebuilt.
			p.Thread.Migrate(m.cfg.L2.LineSize)
			res.Threads[i].Migrated = true
			res.Migrations++
		case ran && m.lastThread[p.CPU] != p.Thread:
			// Resuming on its own processor after someone else used
			// it: partial working-set refill.
			p.Thread.AddDebt(m.cfg.PollutionFrac * float64(p.Thread.App.Profile.MigrationPenalty))
		}
		if m.lastThread[p.CPU] != p.Thread {
			res.ContextSwitches++
		}
		m.lastCPU[p.Thread] = p.CPU
		m.lastThread[p.CPU] = p.Thread
		m.busyTime[p.CPU] += dt
	}

	// Core occupancy for SMT resource sharing.
	var busyCore []int
	if m.cfg.SMTSiblings == 2 {
		busyCore = m.busyCore
		for i := range busyCore {
			busyCore[i] = 0
		}
		for _, p := range placements {
			busyCore[p.CPU/2]++
		}
	}

	// Micro-step so that phase boundaries and refill debt are honoured
	// within the slice.
	steps := int((dt + m.cfg.MicroStep - 1) / m.cfg.MicroStep)
	if steps < 1 {
		steps = 1
	}
	remaining := dt
	var utilSum float64
	var servedSum units.Rate
	reqs := m.reqs[:len(placements)] // cap is NumCPUs >= len(placements)
	for s := 0; s < steps; s++ {
		sub := m.cfg.MicroStep
		if sub > remaining {
			sub = remaining
		}
		if sub <= 0 {
			break
		}
		remaining -= sub
		for i, p := range placements {
			reqs[i] = bus.Request{Demand: p.Thread.Demand(), StallFrac: p.Thread.StallFrac()}
		}
		grants, out := m.busModel.AllocateInto(m.grants, reqs)
		m.grants = grants[:0]
		for i, p := range placements {
			g := grants[i]
			speed := g.Speed
			if m.cfg.SMTSiblings == 2 && busyCore[p.CPU/2] > 1 {
				// Both logical siblings of this core are busy: they
				// share the core's execution resources.
				speed *= m.cfg.SMTEfficiency
			}
			wall := float64(sub)
			p.Thread.Advance(wall*speed, wall, g.Rate*units.Rate(speed/maxf(g.Speed, 1e-12)))
			w := float64(sub) / float64(dt)
			res.Threads[i].Speed += speed * w
			res.Threads[i].Rate += g.Rate * units.Rate(w*speed/maxf(g.Speed, 1e-12))
		}
		utilSum += out.Utilization
		servedSum += out.Served
		res.Outcome = out
	}
	res.MeanUtilization = utilSum / float64(steps)
	res.MeanServed = servedSum / units.Rate(steps)
	m.now += dt
	return res, nil
}

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

var errIdleDuration = errors.New("machine: non-positive idle duration")

// Idle advances time without running anything (all CPUs idle).
func (m *Machine) Idle(dt units.Time) error {
	if dt <= 0 {
		return errIdleDuration
	}
	m.now += dt
	return nil
}
