package machine

import (
	"testing"

	"busaware/internal/units"
	"busaware/internal/workload"
)

// BenchmarkMachineStep measures one fully-loaded scheduling quantum on
// the default 4-CPU machine: ten micro-steps of bus arbitration over a
// mixed bandwidth-heavy / bandwidth-light co-schedule. The antagonist
// profiles are endless, so the thread set is in steady state for the
// whole run — this is the per-quantum cost the simulator pays in its
// inner loop.
func BenchmarkMachineStep(b *testing.B) {
	m, err := New(DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	mustApp := func(name, instance string) *workload.App {
		p, ok := workload.ByName(name)
		if !ok {
			b.Fatalf("no profile %q", name)
		}
		return workload.NewApp(p, instance)
	}
	placements := []Placement{
		{Thread: mustApp("BBMA", "BBMA#1").Threads[0], CPU: 0},
		{Thread: mustApp("BBMA", "BBMA#2").Threads[0], CPU: 1},
		{Thread: mustApp("nBBMA", "nBBMA#1").Threads[0], CPU: 2},
		{Thread: mustApp("nBBMA", "nBBMA#2").Threads[0], CPU: 3},
	}
	quantum := 100 * units.Millisecond
	if _, err := m.Step(placements, quantum); err != nil { // warm caches
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.Step(placements, quantum); err != nil {
			b.Fatal(err)
		}
	}
}
