package machine

import (
	"busaware/internal/bus"
	"busaware/internal/units"
	"busaware/internal/workload"
)

// StretchThread is one placement's precomputed per-quantum arithmetic
// within a StretchPlan.
type StretchThread struct {
	Thread *workload.Thread
	CPU    int
	// SoloPerSub is the solo-equivalent progress each micro-step grants
	// (wall µs × contended speed), in micro-step order — bitwise the
	// first argument Step would pass to Thread.Advance. All entries but
	// possibly the last are identical.
	SoloPerSub []float64
	// Speed and Rate are the exact ThreadStep aggregates a Step call
	// over this quantum would report, accumulated with the same
	// micro-step summation order.
	Speed float64
	Rate  units.Rate
	// Per-quantum virtual-counter increments, already summed over the
	// quantum's micro-steps. Counter addition is modular, hence
	// associative, so k replayed quanta batch exactly as k× these.
	CyclesPerQ, TransPerQ, RefsPerQ, MissPerQ uint64
	// Req is the bus request the plan was computed for. Step re-reads
	// demands every micro-step, so the plan is exact only while each
	// thread's request stays bitwise equal to this.
	Req bus.Request
}

// StretchPlan captures everything needed to replay one uniform quantum
// — a quantum in which every micro-step sees the same demand vector,
// hence the same bus grants — any number of times. PlanStretch fills
// it; the plan aliases machine-owned scratch and is valid until the
// next PlanStretch call on the same Machine.
type StretchPlan struct {
	Quantum units.Time
	Steps   int
	Threads []StretchThread
	// Exact per-quantum StepResult aggregates a Step call would report.
	MeanUtilization float64
	MeanServed      units.Rate
	Outcome         bus.Outcome
}

// PlanStretch precomputes the replay arithmetic for running the given
// placements one more quantum of length dt, under the preconditions
// that make the quantum a pure replay of machine state:
//
//   - every placed thread occupies the processor it already holds
//     (no migration, no cache-pollution debt, no context switch);
//   - no placed thread owes debt, spins at a barrier, or has finished
//     (any of those changes its bus demand or the next schedule);
//   - the demand vector is assumed constant for the whole quantum —
//     the caller must bound the replay horizon so no phase boundary,
//     barrier or debt event lands inside it.
//
// ok is false when a precondition fails; the caller then falls back to
// the stepped path. The returned plan aliases machine scratch and is
// valid until the next PlanStretch call.
func (m *Machine) PlanStretch(placements []Placement, dt units.Time) (*StretchPlan, bool) {
	if dt <= 0 || len(placements) == 0 || len(placements) > m.cfg.NumCPUs {
		return nil, false
	}
	for _, p := range placements {
		if p.Thread == nil || p.CPU < 0 || p.CPU >= m.cfg.NumCPUs {
			return nil, false
		}
		if m.lastThread[p.CPU] != p.Thread {
			return nil, false
		}
		if last, ran := m.lastCPU[p.Thread]; !ran || last != p.CPU {
			return nil, false
		}
		if p.Thread.Debt() > 0 || p.Thread.AtBarrier() || p.Thread.Done() {
			return nil, false
		}
	}

	// Core occupancy for SMT resource sharing, as in Step.
	var busyCore []int
	if m.cfg.SMTSiblings == 2 {
		busyCore = m.busyCore
		for i := range busyCore {
			busyCore[i] = 0
		}
		for _, p := range placements {
			busyCore[p.CPU/2]++
		}
	}

	plan := &m.plan
	plan.Quantum = dt
	// Recycle the scratch plan's thread slots, keeping each slot's
	// SoloPerSub backing array — a probe per leap attempt must not
	// reallocate per-micro-step slices.
	for cap(plan.Threads) < len(placements) {
		plan.Threads = append(plan.Threads[:cap(plan.Threads)], StretchThread{})
	}
	plan.Threads = plan.Threads[:len(placements)]
	for i, p := range placements {
		plan.Threads[i] = StretchThread{
			Thread:     p.Thread,
			CPU:        p.CPU,
			SoloPerSub: plan.Threads[i].SoloPerSub[:0],
		}
	}

	steps := int((dt + m.cfg.MicroStep - 1) / m.cfg.MicroStep)
	if steps < 1 {
		steps = 1
	}
	plan.Steps = steps

	// One bus allocation covers every micro-step: the demand vector is
	// constant by precondition, and AllocateInto is deterministic for
	// identical inputs (memoized or not), so each micro-step of a real
	// Step would receive bitwise these grants.
	reqs := m.reqs[:len(placements)]
	for i, p := range placements {
		reqs[i] = bus.Request{Demand: p.Thread.Demand(), StallFrac: p.Thread.StallFrac()}
		plan.Threads[i].Req = reqs[i]
	}
	grants, out := m.busModel.AllocateInto(m.grants, reqs)
	m.grants = grants[:0]

	// Replicate Step's micro-step accumulation exactly: same formulas,
	// same order, so Speed/Rate/MeanUtilization come out bitwise equal
	// to what a Step over this quantum would report.
	remaining := dt
	var utilSum float64
	var servedSum units.Rate
	for s := 0; s < steps; s++ {
		sub := m.cfg.MicroStep
		if sub > remaining {
			sub = remaining
		}
		if sub <= 0 {
			break
		}
		remaining -= sub
		for i, p := range placements {
			g := grants[i]
			speed := g.Speed
			if m.cfg.SMTSiblings == 2 && busyCore[p.CPU/2] > 1 {
				speed *= m.cfg.SMTEfficiency
			}
			wall := float64(sub)
			t := &plan.Threads[i]
			t.SoloPerSub = append(t.SoloPerSub, wall*speed)
			actualRate := g.Rate * units.Rate(speed/maxf(g.Speed, 1e-12))
			t.CyclesPerQ += uint64(wall * workload.CPUFrequencyMHz)
			t.TransPerQ += uint64(float64(actualRate) * wall)
			if miss := 1 - p.Thread.App.Profile.WorkingSet.HitRate; miss > 0 {
				trans := float64(actualRate) * wall
				t.RefsPerQ += uint64(trans / miss)
				t.MissPerQ += uint64(trans)
			}
			w := float64(sub) / float64(dt)
			t.Speed += speed * w
			t.Rate += g.Rate * units.Rate(w*speed/maxf(g.Speed, 1e-12))
		}
		utilSum += out.Utilization
		servedSum += out.Served
	}
	plan.MeanUtilization = utilSum / float64(steps)
	plan.MeanServed = servedSum / units.Rate(steps)
	plan.Outcome = out
	return plan, true
}

// CommitStretch advances the machine's clock and per-CPU busy time for
// k replayed quanta in O(placements): both are integral microseconds,
// so k quanta batch exactly. Thread progress and counters are advanced
// by the caller's replay loop; occupancy state (lastCPU, lastThread)
// is untouched because a replayed quantum changes neither.
func (m *Machine) CommitStretch(p *StretchPlan, k int) {
	if k <= 0 {
		return
	}
	for i := range p.Threads {
		m.busyTime[p.Threads[i].CPU] += units.Time(k) * p.Quantum
	}
	m.now += units.Time(k) * p.Quantum
}

// IdleN advances time by k idle quanta of length dt without running
// anything — the O(1) batched form of k Idle calls.
func (m *Machine) IdleN(dt units.Time, k int) error {
	if dt <= 0 {
		return errIdleDuration
	}
	if k <= 0 {
		return nil
	}
	m.now += units.Time(k) * dt
	return nil
}
