package machine

import (
	"math"
	"testing"

	"busaware/internal/units"
	"busaware/internal/workload"
)

func newMachine(t *testing.T) *Machine {
	t.Helper()
	m, err := New(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func appThreads(name, instance string, t *testing.T) *workload.App {
	t.Helper()
	p, ok := workload.ByName(name)
	if !ok {
		t.Fatalf("no profile %q", name)
	}
	return workload.NewApp(p, instance)
}

func TestConfigValidation(t *testing.T) {
	cfg := DefaultConfig()
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := DefaultConfig()
	bad.NumCPUs = 0
	if _, err := New(bad); err == nil {
		t.Error("zero CPUs accepted")
	}
	bad = DefaultConfig()
	bad.MicroStep = -1
	if _, err := New(bad); err == nil {
		t.Error("negative micro step accepted")
	}
}

func TestStepValidation(t *testing.T) {
	m := newMachine(t)
	cg := appThreads("CG", "CG#1", t)
	cases := []struct {
		name string
		pl   []Placement
		dt   units.Time
	}{
		{"zero-dt", []Placement{{cg.Threads[0], 0}}, 0},
		{"nil-thread", []Placement{{nil, 0}}, 100},
		{"cpu-oob", []Placement{{cg.Threads[0], 4}}, 100},
		{"cpu-neg", []Placement{{cg.Threads[0], -1}}, 100},
		{"cpu-double", []Placement{{cg.Threads[0], 1}, {cg.Threads[1], 1}}, 100},
		{"thread-double", []Placement{{cg.Threads[0], 0}, {cg.Threads[0], 1}}, 100},
		{"too-many", []Placement{
			{cg.Threads[0], 0}, {cg.Threads[1], 1},
			{appThreads("CG", "CG#2", t).Threads[0], 2},
			{appThreads("CG", "CG#3", t).Threads[0], 3},
			{appThreads("CG", "CG#4", t).Threads[0], 0},
		}, 100},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := m.Step(tc.pl, tc.dt); err == nil {
				t.Error("invalid step accepted")
			}
		})
	}
	if m.Now() != 0 {
		t.Error("failed steps advanced time")
	}
}

func TestSoloProgressNearFullSpeed(t *testing.T) {
	m := newMachine(t)
	cg := appThreads("CG", "CG#1", t)
	res, err := m.Step([]Placement{
		{cg.Threads[0], 0}, {cg.Threads[1], 1},
	}, 200*units.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	for _, ts := range res.Threads {
		if ts.Speed < 0.90 {
			t.Errorf("solo CG thread speed = %.3f, want ~1", ts.Speed)
		}
	}
	if m.Now() != 200*units.Millisecond {
		t.Errorf("Now = %v", m.Now())
	}
	// Achieved cumulative rate should approximate the calibrated 23.31.
	cum := float64(res.Threads[0].Rate + res.Threads[1].Rate)
	if math.Abs(cum-23.31)/23.31 > 0.10 {
		t.Errorf("solo CG cumulative rate = %.2f, want ~23.31", cum)
	}
}

func TestSaturationSlowsMemoryBoundApp(t *testing.T) {
	m := newMachine(t)
	cg := appThreads("CG", "CG#1", t)
	b1 := appThreads("BBMA", "B#1", t)
	b2 := appThreads("BBMA", "B#2", t)
	res, err := m.Step([]Placement{
		{cg.Threads[0], 0}, {cg.Threads[1], 1},
		{b1.Threads[0], 2}, {b2.Threads[0], 3},
	}, 200*units.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	slow := 1 / res.Threads[0].Speed
	if slow < 1.8 || slow > 3.2 {
		t.Errorf("CG slowdown vs 2 BBMA = %.2f, want 2x-3x", slow)
	}
	if !res.Outcome.Saturated {
		t.Error("bus should be saturated")
	}
}

func TestAffinityTrackingAndMigration(t *testing.T) {
	m := newMachine(t)
	lu := appThreads("LU CB", "LU#1", t)
	th := lu.Threads[0]
	if m.LastCPU(th) != -1 {
		t.Error("fresh thread should have no last CPU")
	}
	sib := lu.Threads[1]
	// First run: no migration (no prior state).
	res, err := m.Step([]Placement{{th, 0}, {sib, 1}}, 50*units.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if res.Migrations != 0 {
		t.Error("first placement counted as migration")
	}
	if m.LastCPU(th) != 0 {
		t.Errorf("LastCPU = %d", m.LastCPU(th))
	}
	// Same CPU: still no migration.
	res, _ = m.Step([]Placement{{th, 0}, {sib, 1}}, 50*units.Millisecond)
	if res.Migrations != 0 {
		t.Error("affine placement counted as migration")
	}
	// Different CPU: migration charged.
	res, _ = m.Step([]Placement{{th, 2}, {sib, 1}}, 50*units.Millisecond)
	if res.Migrations != 1 || !res.Threads[0].Migrated {
		t.Errorf("migration not recorded: %+v", res)
	}
}

func TestMigrationSlowsMigrationSensitiveApp(t *testing.T) {
	runOnce := func(migrate bool) float64 {
		m := newMachine(t)
		lu := appThreads("LU CB", "LU#1", t)
		c0, c1 := 0, 1
		for q := 0; q < 20; q++ {
			if migrate {
				c0, c1 = q%4, (q+2)%4
			}
			pl := []Placement{{lu.Threads[0], c0}, {lu.Threads[1], c1}}
			if _, err := m.Step(pl, 50*units.Millisecond); err != nil {
				t.Fatal(err)
			}
		}
		return lu.Threads[0].Progress()
	}
	affine := runOnce(false)
	migratory := runOnce(true)
	if migratory >= affine {
		t.Errorf("migrating LU progressed %.0f vs affine %.0f; migrations should cost", migratory, affine)
	}
	// The cost should be material for LU CB (large penalty) but bounded.
	lost := 1 - migratory/affine
	if lost < 0.05 || lost > 0.60 {
		t.Errorf("migration loss = %.1f%%, want a material but bounded fraction", lost*100)
	}
}

func TestBusyTimeAccounting(t *testing.T) {
	m := newMachine(t)
	cg := appThreads("CG", "CG#1", t)
	m.Step([]Placement{{cg.Threads[0], 0}}, 100*units.Millisecond)
	m.Step([]Placement{{cg.Threads[0], 0}, {cg.Threads[1], 3}}, 100*units.Millisecond)
	bt := m.BusyTime()
	if bt[0] != 200*units.Millisecond || bt[3] != 100*units.Millisecond || bt[1] != 0 {
		t.Errorf("busy time = %v", bt)
	}
}

func TestIdle(t *testing.T) {
	m := newMachine(t)
	if err := m.Idle(100); err != nil {
		t.Fatal(err)
	}
	if m.Now() != 100 {
		t.Errorf("Now = %v", m.Now())
	}
	if err := m.Idle(0); err == nil {
		t.Error("zero idle accepted")
	}
}

func TestMicroStepResolvesPhases(t *testing.T) {
	// A bursty Raytrace thread alternates 120ms/180ms phases; a 200ms
	// step must see both. We detect this via the achieved rate being
	// strictly between the two phase demands.
	m := newMachine(t)
	rt := appThreads("Raytrace", "RT#1", t)
	res, err := m.Step([]Placement{
		{rt.Threads[0], 0}, {rt.Threads[1], 1},
	}, 300*units.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	r := float64(res.Threads[0].Rate)
	if r <= 6.3 || r >= 12.5 {
		t.Errorf("bursty mean rate = %.2f, want strictly between phase demands (6.2, 12.55)", r)
	}
}

func TestEmptyStepAdvancesTime(t *testing.T) {
	m := newMachine(t)
	res, err := m.Step(nil, 100*units.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if res.BusyCPUs != 0 || m.Now() != 100*units.Millisecond {
		t.Errorf("empty step: busy=%d now=%v", res.BusyCPUs, m.Now())
	}
}

func TestSMTValidation(t *testing.T) {
	cfg := DefaultConfig()
	cfg.SMTSiblings = 3
	if _, err := New(cfg); err == nil {
		t.Error("SMTSiblings=3 accepted")
	}
	cfg = DefaultConfig()
	cfg.SMTSiblings = 2
	cfg.NumCPUs = 5
	if _, err := New(cfg); err == nil {
		t.Error("odd logical CPU count with SMT accepted")
	}
	cfg = DefaultConfig()
	cfg.SMTSiblings = 2
	cfg.SMTEfficiency = 0
	if _, err := New(cfg); err == nil {
		t.Error("zero SMT efficiency accepted")
	}
}

func TestSMTCoreSharingSlowsSiblings(t *testing.T) {
	cfg := DefaultConfig()
	cfg.SMTSiblings = 2
	cfg.NumCPUs = 8 // 4 physical cores
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	vol := appThreads("Volrend", "V#1", t)
	// Both threads on logical CPUs 0 and 1: same physical core.
	shared, err := m.Step([]Placement{
		{vol.Threads[0], 0}, {vol.Threads[1], 1},
	}, 100*units.Millisecond)
	if err != nil {
		t.Fatal(err)
	}

	m2, _ := New(cfg)
	vol2 := appThreads("Volrend", "V#2", t)
	// Separate cores: logical CPUs 0 and 2.
	apart, err := m2.Step([]Placement{
		{vol2.Threads[0], 0}, {vol2.Threads[1], 2},
	}, 100*units.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if shared.Threads[0].Speed >= apart.Threads[0].Speed {
		t.Errorf("sibling-shared speed %.3f should trail separate-core speed %.3f",
			shared.Threads[0].Speed, apart.Threads[0].Speed)
	}
	// Sharing costs ~the configured efficiency, not more.
	ratio := shared.Threads[0].Speed / apart.Threads[0].Speed
	if ratio < cfg.SMTEfficiency-0.02 || ratio > cfg.SMTEfficiency+0.02 {
		t.Errorf("sharing ratio = %.3f, want ~%.2f", ratio, cfg.SMTEfficiency)
	}
}

func TestSMTOffMeansNoSharing(t *testing.T) {
	m := newMachine(t) // default: SMT off
	vol := appThreads("Volrend", "V#1", t)
	res, err := m.Step([]Placement{
		{vol.Threads[0], 0}, {vol.Threads[1], 1},
	}, 100*units.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if res.Threads[0].Speed < 0.95 {
		t.Errorf("speed without SMT = %.3f, want ~1", res.Threads[0].Speed)
	}
}
