// Package faults is the seeded, deterministic fault-injection layer
// for the reproduction's unreliable substrate. The paper's CPU manager
// is explicitly engineered for lossy telemetry and signalling —
// block/unblock *counts* exist because signals can be reordered or
// arrive late — and this package makes those failure modes injectable
// so the graceful-degradation paths in perfctr, cpumanager and sched
// can be exercised on purpose instead of only in production.
//
// Design rules:
//
//   - Deterministic: an Injector owns one seeded rng and all fault
//     decisions are draws from it, so a fixed (Config, call sequence)
//     reproduces the exact same fault pattern. Callers must therefore
//     consult the injector in a deterministic order (the simulator
//     iterates applications in input order, the manager iterates
//     signal states in thread order).
//   - Inert at zero: a fault class whose rate is zero never draws from
//     the rng, and a nil *Injector answers every query with "no fault".
//     Enabling one class does not change the behaviour of code paths
//     guarded by another class left at zero rate.
//   - Observable: every injected fault increments a per-class counter,
//     so experiments can report how many faults a run actually
//     absorbed.
package faults

import (
	"fmt"
	"math/rand"
	"net"
	"sync"
	"time"
)

// Config sets the per-class fault rates. All rates are probabilities
// in [0, 1]; the zero value disables injection entirely.
type Config struct {
	// Seed seeds the injector's rng; fault patterns are a pure
	// function of (Seed, rates, query order).
	Seed int64

	// SampleLoss is the probability that an application's published
	// bus-bandwidth sample is lost for one quantum (the run-time
	// library missed its arena update slot).
	SampleLoss float64
	// SampleNoise is the relative magnitude of multiplicative noise on
	// published samples: a perturbed sample is v*(1+u*SampleNoise)
	// with u uniform in [-1, 1].
	SampleNoise float64

	// CounterLoss is the probability that one perfctr Monitor.Poll
	// fails (ok == false, baseline kept — the next successful poll
	// spans the gap, i.e. the reading goes stale, not lost).
	CounterLoss float64
	// CounterNoise is the relative noise on per-event counter rates.
	CounterNoise float64

	// SignalLoss is the probability one block/unblock signal is
	// dropped in flight.
	SignalLoss float64
	// SignalDup is the probability a delivered signal is delivered a
	// second time (the paper's signal-counting rule must tolerate it).
	SignalDup float64
	// SignalDelay is the probability a signal is deferred to the next
	// signalling round instead of delivered immediately.
	SignalDelay float64

	// CrashProb is the per-application, per-quantum probability that
	// the client (the run-time library) crashes and reconnects: its
	// session state and sample history are lost and it misses the
	// quantum.
	CrashProb float64

	// RequestLoss is the probability a wire-protocol request times out
	// (FlakyConn fails the write with a net.Error timeout, so the
	// request never reaches the manager and a retry is safe).
	RequestLoss float64
}

// Enabled reports whether any fault class has a positive rate.
func (c Config) Enabled() bool {
	return c.SampleLoss > 0 || c.SampleNoise > 0 ||
		c.CounterLoss > 0 || c.CounterNoise > 0 ||
		c.SignalLoss > 0 || c.SignalDup > 0 || c.SignalDelay > 0 ||
		c.CrashProb > 0 || c.RequestLoss > 0
}

// Validate rejects rates outside [0, 1].
func (c Config) Validate() error {
	for _, r := range []struct {
		name string
		v    float64
	}{
		{"SampleLoss", c.SampleLoss}, {"SampleNoise", c.SampleNoise},
		{"CounterLoss", c.CounterLoss}, {"CounterNoise", c.CounterNoise},
		{"SignalLoss", c.SignalLoss}, {"SignalDup", c.SignalDup},
		{"SignalDelay", c.SignalDelay}, {"CrashProb", c.CrashProb},
		{"RequestLoss", c.RequestLoss},
	} {
		if r.v < 0 || r.v > 1 {
			return fmt.Errorf("faults: %s = %v outside [0, 1]", r.name, r.v)
		}
	}
	return nil
}

// Stats counts the faults an injector has actually delivered.
type Stats struct {
	SamplesDropped    uint64
	SamplesPerturbed  uint64
	CountersDropped   uint64
	CountersPerturbed uint64
	SignalsDropped    uint64
	SignalsDuplicated uint64
	SignalsDelayed    uint64
	Crashes           uint64
	RequestsDropped   uint64
}

// Total sums every fault class.
func (s Stats) Total() uint64 {
	return s.SamplesDropped + s.SamplesPerturbed +
		s.CountersDropped + s.CountersPerturbed +
		s.SignalsDropped + s.SignalsDuplicated + s.SignalsDelayed +
		s.Crashes + s.RequestsDropped
}

// Injector makes seeded fault decisions. It is safe for concurrent
// use, and a nil *Injector is a valid, fully inert injector — call
// sites do not need to guard against it.
type Injector struct {
	mu    sync.Mutex
	cfg   Config
	rng   *rand.Rand
	stats Stats
}

// New builds an injector for cfg. A disabled config yields a nil
// injector, so the zero-rate path never allocates an rng and is
// byte-for-byte identical to not configuring faults at all.
func New(cfg Config) *Injector {
	if !cfg.Enabled() {
		return nil
	}
	return &Injector{cfg: cfg, rng: rand.New(rand.NewSource(cfg.Seed))}
}

// Config returns the injector's configuration (zero for nil).
func (in *Injector) Config() Config {
	if in == nil {
		return Config{}
	}
	return in.cfgSnapshot()
}

// SetConfig swaps the fault rates mid-run — tests use it to model a
// wire that recovers (or degrades) while a client is connected. The
// rng stream and accumulated stats are kept. No-op on nil.
func (in *Injector) SetConfig(cfg Config) {
	if in == nil {
		return
	}
	in.mu.Lock()
	in.cfg = cfg
	in.mu.Unlock()
}

// Stats returns the per-class fault counts so far (zero for nil).
func (in *Injector) Stats() Stats {
	if in == nil {
		return Stats{}
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.stats
}

// cfgSnapshot reads the (swappable) config under the lock.
func (in *Injector) cfgSnapshot() Config {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.cfg
}

// draw performs one Bernoulli trial at probability p. Zero-probability
// classes never touch the rng, keeping the fault classes independent.
func (in *Injector) draw(p float64, hit *uint64) bool {
	if in == nil || p <= 0 {
		return false
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	if in.rng.Float64() >= p {
		return false
	}
	*hit++
	return true
}

// perturb multiplies v by (1 + u*mag), u uniform in [-1, 1], clamped
// at zero (rates cannot go negative).
func (in *Injector) perturb(v, mag float64, hit *uint64) float64 {
	if in == nil || mag <= 0 {
		return v
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	u := in.rng.Float64()*2 - 1
	*hit++
	out := v * (1 + u*mag)
	if out < 0 {
		return 0
	}
	return out
}

// DropSample reports whether one application-level bandwidth sample is
// lost this quantum.
func (in *Injector) DropSample() bool {
	if in == nil {
		return false
	}
	return in.draw(in.cfgSnapshot().SampleLoss, &in.stats.SamplesDropped)
}

// PerturbSample applies the sample-noise fault to a published rate.
func (in *Injector) PerturbSample(v float64) float64 {
	if in == nil {
		return v
	}
	return in.perturb(v, in.cfgSnapshot().SampleNoise, &in.stats.SamplesPerturbed)
}

// DropCounterSample reports whether one perfctr poll fails. Together
// with PerturbCounterRate it implements perfctr.FaultHook.
func (in *Injector) DropCounterSample() bool {
	if in == nil {
		return false
	}
	return in.draw(in.cfgSnapshot().CounterLoss, &in.stats.CountersDropped)
}

// PerturbCounterRate applies counter noise to one derived event rate.
func (in *Injector) PerturbCounterRate(v float64) float64 {
	if in == nil {
		return v
	}
	return in.perturb(v, in.cfgSnapshot().CounterNoise, &in.stats.CountersPerturbed)
}

// DropSignal reports whether one block/unblock signal is lost.
func (in *Injector) DropSignal() bool {
	if in == nil {
		return false
	}
	return in.draw(in.cfgSnapshot().SignalLoss, &in.stats.SignalsDropped)
}

// DuplicateSignal reports whether a delivered signal repeats.
func (in *Injector) DuplicateSignal() bool {
	if in == nil {
		return false
	}
	return in.draw(in.cfgSnapshot().SignalDup, &in.stats.SignalsDuplicated)
}

// DelaySignal reports whether a signal is deferred to the next round.
func (in *Injector) DelaySignal() bool {
	if in == nil {
		return false
	}
	return in.draw(in.cfgSnapshot().SignalDelay, &in.stats.SignalsDelayed)
}

// CrashEnabled reports whether the crash fault class can fire at all
// (nonzero rate). Callers use it to skip per-quantum bookkeeping that
// exists only to service crash decisions; with the class at rate zero
// the skip is behaviour-preserving because Crash would draw nothing.
func (in *Injector) CrashEnabled() bool {
	if in == nil {
		return false
	}
	return in.cfgSnapshot().CrashProb > 0
}

// SignalLossEnabled reports whether the signal-loss class can fire,
// the bookkeeping gate analogous to CrashEnabled.
func (in *Injector) SignalLossEnabled() bool {
	if in == nil {
		return false
	}
	return in.cfgSnapshot().SignalLoss > 0
}

// Crash reports whether one application's client crashes this quantum.
func (in *Injector) Crash() bool {
	if in == nil {
		return false
	}
	return in.draw(in.cfgSnapshot().CrashProb, &in.stats.Crashes)
}

// DropRequest reports whether one wire request times out.
func (in *Injector) DropRequest() bool {
	if in == nil {
		return false
	}
	return in.draw(in.cfgSnapshot().RequestLoss, &in.stats.RequestsDropped)
}

// timeoutError is the net.Error FlakyConn raises for a dropped
// request: Timeout() is true so retry logic can distinguish it from a
// hard connection failure.
type timeoutError struct{}

func (timeoutError) Error() string   { return "faults: injected request timeout" }
func (timeoutError) Timeout() bool   { return true }
func (timeoutError) Temporary() bool { return true }

var _ net.Error = timeoutError{}

// FlakyConn wraps a net.Conn so that each Write fails with an injected
// net.Error timeout at the injector's RequestLoss rate. The write is
// swallowed whole — the peer never sees the request — so retrying the
// request is safe (no half-delivered frames, no stream desync).
type FlakyConn struct {
	net.Conn
	inj *Injector
}

// NewFlakyConn wraps conn with injected request timeouts.
func NewFlakyConn(conn net.Conn, inj *Injector) *FlakyConn {
	return &FlakyConn{Conn: conn, inj: inj}
}

// Write implements net.Conn.
func (c *FlakyConn) Write(p []byte) (int, error) {
	if c.inj.DropRequest() {
		return 0, timeoutError{}
	}
	return c.Conn.Write(p)
}

// Sleeper is a pluggable clock wait, so retry backoff is testable
// without real delays. The zero value sleeps for real.
type Sleeper func(time.Duration)

// Sleep waits for d, using time.Sleep when the sleeper is nil.
func (s Sleeper) Sleep(d time.Duration) {
	if s != nil {
		s(d)
		return
	}
	time.Sleep(d)
}
