package faults

import (
	"errors"
	"net"
	"testing"
	"time"
)

// A nil injector must be fully inert: every query answers "no fault"
// and values pass through untouched.
func TestNilInjectorInert(t *testing.T) {
	var in *Injector
	if in.DropSample() || in.DropCounterSample() || in.DropSignal() ||
		in.DuplicateSignal() || in.DelaySignal() || in.Crash() || in.DropRequest() {
		t.Error("nil injector injected a fault")
	}
	if got := in.PerturbSample(3.5); got != 3.5 {
		t.Errorf("PerturbSample on nil = %v", got)
	}
	if got := in.PerturbCounterRate(7.25); got != 7.25 {
		t.Errorf("PerturbCounterRate on nil = %v", got)
	}
	if in.Stats() != (Stats{}) {
		t.Errorf("nil stats = %+v", in.Stats())
	}
	if in.Config() != (Config{}) {
		t.Errorf("nil config = %+v", in.Config())
	}
}

// A zero config builds a nil injector, so the zero-rate path cannot
// differ from the no-faults path by construction.
func TestZeroConfigYieldsNil(t *testing.T) {
	if in := New(Config{Seed: 99}); in != nil {
		t.Error("zero-rate config built a live injector")
	}
	if (Config{Seed: 1}).Enabled() {
		t.Error("seed alone must not enable injection")
	}
	if !(Config{SampleLoss: 0.1}).Enabled() {
		t.Error("positive rate not detected")
	}
}

func TestValidate(t *testing.T) {
	if err := (Config{SampleLoss: 0.5, CrashProb: 1}).Validate(); err != nil {
		t.Errorf("valid config rejected: %v", err)
	}
	if err := (Config{SignalLoss: 1.5}).Validate(); err == nil {
		t.Error("rate > 1 accepted")
	}
	if err := (Config{SampleNoise: -0.1}).Validate(); err == nil {
		t.Error("negative rate accepted")
	}
}

// Same seed, same call sequence: identical fault pattern.
func TestDeterministicPerSeed(t *testing.T) {
	pattern := func() []bool {
		in := New(Config{Seed: 7, SampleLoss: 0.3, SignalLoss: 0.2})
		var out []bool
		for i := 0; i < 200; i++ {
			out = append(out, in.DropSample(), in.DropSignal())
		}
		return out
	}
	a, b := pattern(), pattern()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("fault pattern diverged at draw %d", i)
		}
	}
}

// Rates are roughly honoured and stats count exactly the injected
// faults.
func TestRatesAndStats(t *testing.T) {
	in := New(Config{Seed: 1, SampleLoss: 0.3})
	dropped := 0
	for i := 0; i < 2000; i++ {
		if in.DropSample() {
			dropped++
		}
	}
	if dropped < 450 || dropped > 750 {
		t.Errorf("dropped %d/2000 at rate 0.3", dropped)
	}
	st := in.Stats()
	if int(st.SamplesDropped) != dropped {
		t.Errorf("stats %d != observed %d", st.SamplesDropped, dropped)
	}
	if st.Total() != st.SamplesDropped {
		t.Errorf("other classes counted: %+v", st)
	}
}

// A zero-rate class never draws from the rng: enabling one class must
// not perturb another class's decision stream.
func TestClassIndependence(t *testing.T) {
	seq := func(cfg Config) []bool {
		in := New(cfg)
		var out []bool
		for i := 0; i < 100; i++ {
			in.DropSample() // interleaved query on a possibly-zero class
			out = append(out, in.DropSignal())
		}
		return out
	}
	base := seq(Config{Seed: 5, SignalLoss: 0.4})
	mixed := seq(Config{Seed: 5, SignalLoss: 0.4, CrashProb: 0}) // still zero
	for i := range base {
		if base[i] != mixed[i] {
			t.Fatalf("zero-rate class changed signal stream at %d", i)
		}
	}
}

// Noise keeps values non-negative and within the configured relative
// band.
func TestPerturbBounds(t *testing.T) {
	in := New(Config{Seed: 3, SampleNoise: 0.5})
	for i := 0; i < 500; i++ {
		v := in.PerturbSample(10)
		if v < 5-1e-9 || v > 15+1e-9 {
			t.Fatalf("perturbed value %v outside [5, 15]", v)
		}
	}
	inBig := New(Config{Seed: 3, SampleNoise: 1})
	for i := 0; i < 500; i++ {
		if v := inBig.PerturbSample(1); v < 0 {
			t.Fatalf("negative perturbed value %v", v)
		}
	}
}

// FlakyConn raises a retryable net.Error timeout and swallows the
// write whole.
func TestFlakyConn(t *testing.T) {
	client, server := net.Pipe()
	defer server.Close()
	fc := NewFlakyConn(client, New(Config{Seed: 2, RequestLoss: 1}))
	n, err := fc.Write([]byte("hello"))
	if n != 0 || err == nil {
		t.Fatalf("write = (%d, %v), want injected failure", n, err)
	}
	var ne net.Error
	if !errors.As(err, &ne) || !ne.Timeout() {
		t.Errorf("injected error %v is not a net.Error timeout", err)
	}
	// With a nil injector the conn is transparent.
	clear := NewFlakyConn(client, nil)
	done := make(chan struct{})
	go func() {
		buf := make([]byte, 5)
		server.Read(buf)
		close(done)
	}()
	if _, err := clear.Write([]byte("hello")); err != nil {
		t.Fatalf("transparent write failed: %v", err)
	}
	<-done
}

func TestSleeper(t *testing.T) {
	var got time.Duration
	s := Sleeper(func(d time.Duration) { got = d })
	s.Sleep(42 * time.Millisecond)
	if got != 42*time.Millisecond {
		t.Errorf("sleeper saw %v", got)
	}
	// The nil sleeper really sleeps; keep it tiny.
	var real Sleeper
	start := time.Now()
	real.Sleep(time.Millisecond)
	if time.Since(start) < time.Millisecond {
		t.Error("nil sleeper did not sleep")
	}
}
