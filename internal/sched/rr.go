package sched

import (
	"busaware/internal/machine"
	"busaware/internal/units"
	"busaware/internal/workload"
)

// RoundRobin is the simplest per-thread baseline: a circular queue of
// threads, numCPUs of which run each quantum, with no affinity, no
// gangs and no bandwidth awareness. It bounds the schedulers from
// below and exposes the cost of ignoring cache affinity entirely.
type RoundRobin struct {
	quantum units.Time
	numCPUs int
	list    jobList
	queue   []*workload.Thread
	next    int
}

// NewRoundRobin builds the per-thread round-robin baseline.
func NewRoundRobin(numCPUs int, quantum units.Time) *RoundRobin {
	if quantum <= 0 {
		quantum = LinuxQuantum
	}
	return &RoundRobin{quantum: quantum, numCPUs: numCPUs}
}

// Name implements Scheduler.
func (r *RoundRobin) Name() string { return "RR" }

// Quantum implements Scheduler.
func (r *RoundRobin) Quantum() units.Time { return r.quantum }

// Add implements Scheduler.
func (r *RoundRobin) Add(j *Job) {
	r.list.add(j)
	for _, t := range j.App.Threads {
		r.queue = append(r.queue, t)
	}
}

// Remove implements Scheduler.
func (r *RoundRobin) Remove(j *Job) {
	r.list.remove(j)
	kept := r.queue[:0]
	for _, t := range r.queue {
		if t.App != j.App {
			kept = append(kept, t)
		}
	}
	r.queue = kept
	if r.next >= len(r.queue) {
		r.next = 0
	}
}

// Schedule implements Scheduler.
func (r *RoundRobin) Schedule(now units.Time, aff Affinity) []machine.Placement {
	if len(r.queue) == 0 {
		return nil
	}
	var placements []machine.Placement
	cpu := 0
	scanned := 0
	for cpu < r.numCPUs && scanned < len(r.queue) {
		t := r.queue[r.next]
		r.next = (r.next + 1) % len(r.queue)
		scanned++
		if t.Done() {
			continue
		}
		placements = append(placements, machine.Placement{Thread: t, CPU: cpu})
		cpu++
	}
	return placements
}
