package sched

// StretchStable is the per-policy stability contract consumed by the
// event-driven simulation engine (internal/sim). Stable reports
// whether the policy's next Schedule call is guaranteed to reproduce
// the previous one bit for bit — the same jobs selected in the same
// order, hence the same placements — provided the world outside the
// scheduler also holds still: no job is added or removed, every
// selected job receives the same bandwidth sample it received last
// quantum, and thread demands do not change. The engine verifies those
// outside conditions itself; Stable answers only for scheduler-internal
// state (list rotation, estimator drift, aging counters, RNG draws).
//
// A policy that cannot make the guarantee must return false; the
// engine then falls back to per-quantum stepping, which is always
// correct.
type StretchStable interface {
	Stable() bool
}

// steadyUnderRepush reports whether pushing the job's latest sample
// again would leave the estimate read by est bitwise unchanged. The
// sample window must be saturated with bitwise-equal values: a partial
// window changes its divisor on every push, and an evicted unequal
// value shifts the recomputed mean. The EWMA additionally needs its
// own algebraic fixed point, which floating-point rounding does not
// grant automatically.
func (j *Job) steadyUnderRepush(est Estimator) bool {
	v, ok := j.window.Steady()
	if !ok {
		return false
	}
	if est == EstEWMA && j.ewma != nil {
		if !j.ewma.Initialized() {
			return false
		}
		val := j.ewma.Value()
		if j.ewma.Alpha*v+(1-j.ewma.Alpha)*val != val {
			return false
		}
	}
	return true
}

// Stable implements StretchStable. The decision is a guaranteed replay
// when (a) the previous quantum selected every job on the list, so the
// end-of-quantum rotation preserved list order, and (b) every job's
// estimate is a fixed point under re-pushing its latest sample, so the
// fitness ordering inside Select cannot change. Staleness bookkeeping
// must also be quiescent: a pending staleness transition could demote
// a job to round-robin admission mid-stretch. The oracle estimator
// reads live thread demands instead of samples; demand constancy is
// part of the engine's own leap preconditions, so condition (b) is
// vacuous for it but checked anyway (its 1-slot window is steady after
// the first sample).
func (b *BandwidthAware) Stable() bool {
	if !b.lastAllSelected {
		return false
	}
	for _, j := range b.list.all() {
		if j.StaleQuanta() != 0 || j.awaitingSample {
			return false
		}
		if b.estimator != EstOracle && !j.steadyUnderRepush(b.estimator) {
			return false
		}
	}
	return true
}

// Stable implements StretchStable. The Linux baseline is never a fixed
// point: per-thread counters decrement every quantum until an epoch
// boundary refills them and reshuffles the runqueue from the seeded
// RNG, so consecutive quanta are essentially never replays. Linux runs
// always step quantum by quantum.
func (l *Linux) Stable() bool { return false }

// Stable implements StretchStable. The rotation pointer advances by
// the number of queue entries scanned, so placements repeat only when
// one sweep covers the whole queue — every thread fits on the machine
// at once. Finished threads disqualify the stretch: a Done thread is
// skipped without consuming a processor, shifting the CPU assignment
// of its successors relative to the quantum that still ran it.
func (r *RoundRobin) Stable() bool {
	if len(r.queue) == 0 || len(r.queue) > r.numCPUs {
		return false
	}
	for _, t := range r.queue {
		if t.Done() {
			return false
		}
	}
	return true
}

// Stable implements StretchStable. Gang round-robin selects first-fit
// in list order with no estimates, so the only mutable input is the
// list order itself: when the previous quantum selected every job the
// rotation preserved it.
func (g *Gang) Stable() bool { return g.lastAllSelected }

// Stable implements StretchStable. The subset search is deterministic
// given the thread demands (part of the engine's own preconditions),
// so the decision repeats when the previous quantum ran every job:
// rotation preserved list order and every waiting-time weight was
// reset to zero. Any parked job ages each quantum, changing the
// scores.
func (o *Optimal) Stable() bool { return o.lastAllSelected }
