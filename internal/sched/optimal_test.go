package sched

import (
	"testing"

	"busaware/internal/bus"
	"busaware/internal/machine"
	"busaware/internal/units"
	"busaware/internal/workload"
)

func newOptimal(t *testing.T) *Optimal {
	t.Helper()
	o, err := NewOptimal(4, bus.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	return o
}

func TestOptimalValidation(t *testing.T) {
	if _, err := NewOptimal(4, bus.Config{}); err == nil {
		t.Error("invalid bus config accepted")
	}
	o := newOptimal(t)
	if o.Name() != "Optimal" || o.Quantum() != DefaultQuantum {
		t.Error("identity")
	}
	if pl := o.Schedule(0, nil); pl != nil {
		t.Error("empty scheduler produced placements")
	}
}

func TestOptimalSegregatesAntagonists(t *testing.T) {
	// With CG at the head and BBMAs available, the model-driven search
	// should prefer running the CG gang with the idle companions (or
	// alone) over drowning it among antagonists.
	o := newOptimal(t)
	p, _ := workload.ByName("CG")
	cg := NewJob(workload.NewApp(p, "CG#1"), 1, 0)
	o.Add(cg)
	var bs []*Job
	for i := 0; i < 4; i++ {
		b := NewJob(workload.NewApp(workload.BBMA(), "B"+string(rune('1'+i))), 1, 0)
		bs = append(bs, b)
		o.Add(b)
	}
	pl := o.Schedule(0, nil)
	byApp := map[string]int{}
	for _, pp := range pl {
		byApp[pp.Thread.App.Profile.Name]++
	}
	if byApp["CG"] != 2 {
		t.Fatalf("head gang not fully scheduled: %v", byApp)
	}
	// The model knows extra BBMAs destroy aggregate weighted speed for
	// CG, but including idle capacity is free throughput for them; the
	// key invariant is that CG runs and the subset fits.
	if len(pl) > 4 {
		t.Errorf("placed %d threads on 4 CPUs", len(pl))
	}
}

func TestOptimalNoStarvation(t *testing.T) {
	o := newOptimal(t)
	var jobs []*Job
	p, _ := workload.ByName("CG")
	for i := 0; i < 3; i++ {
		j := NewJob(workload.NewApp(p, "CG#"+string(rune('1'+i))), 1, 0)
		jobs = append(jobs, j)
		o.Add(j)
	}
	for i := 0; i < 2; i++ {
		j := NewJob(workload.NewApp(workload.BBMA(), "B#"+string(rune('1'+i))), 1, 0)
		jobs = append(jobs, j)
		o.Add(j)
	}
	ran := map[*Job]int{}
	for q := 0; q < 30; q++ {
		pl := o.Schedule(0, nil)
		seen := map[*Job]bool{}
		for _, pp := range pl {
			for _, j := range jobs {
				if pp.Thread.App == j.App {
					seen[j] = true
				}
			}
		}
		for j := range seen {
			ran[j]++
		}
	}
	for _, j := range jobs {
		if ran[j] == 0 {
			t.Errorf("job %s starved by Optimal", j.App.Instance)
		}
	}
}

func TestOptimalPlacementsValid(t *testing.T) {
	o := newOptimal(t)
	m, err := machine.New(machine.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	names := []string{"CG", "SP", "Radiosity"}
	for _, n := range names {
		p, _ := workload.ByName(n)
		o.Add(NewJob(workload.NewApp(p, n+"#1"), 1, 0))
	}
	o.Add(NewJob(workload.NewApp(workload.BBMA(), "B#1"), 1, 0))
	o.Add(NewJob(workload.NewApp(workload.NBBMA(), "n#1"), 1, 0))
	for q := 0; q < 40; q++ {
		pl := o.Schedule(m.Now(), m)
		if _, err := m.Step(pl, o.Quantum()); err != nil {
			t.Fatalf("quantum %d: %v", q, err)
		}
	}
}

func TestOptimalRemove(t *testing.T) {
	o := newOptimal(t)
	p, _ := workload.ByName("CG")
	j := NewJob(workload.NewApp(p, "CG#1"), 1, 0)
	o.Add(j)
	o.Remove(j)
	if pl := o.Schedule(0, nil); pl != nil {
		t.Error("removed job scheduled")
	}
	if _, ok := o.waiting[j]; ok {
		t.Error("waiting state leaked")
	}
}

func TestOptimalPrefersHarmlessCompanions(t *testing.T) {
	// Given the choice between filling free processors with another
	// antagonist or with an idle nBBMA, the predicted-throughput score
	// with aging must eventually favour the nBBMA when the head is
	// memory-bound.
	o := newOptimal(t)
	p, _ := workload.ByName("CG")
	cg := NewJob(workload.NewApp(p, "CG#1"), 1, 0)
	b := NewJob(workload.NewApp(workload.BBMA(), "B#1"), 1, 0)
	nb := NewJob(workload.NewApp(workload.NBBMA(), "n#1"), 1, 0)
	o.Add(cg)
	o.Add(b)
	o.Add(nb)
	pl := o.Schedule(0, nil)
	placedN := false
	for _, pp := range pl {
		if pp.Thread.App == nb.App {
			placedN = true
		}
	}
	if !placedN {
		t.Error("optimal left the free-throughput nBBMA unscheduled")
	}
}

func BenchmarkOptimalSchedule(b *testing.B) {
	o, err := NewOptimal(4, bus.DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	p, _ := workload.ByName("CG")
	for i := 0; i < 2; i++ {
		o.Add(NewJob(workload.NewApp(p, "CG"), 1, 0))
	}
	for i := 0; i < 4; i++ {
		o.Add(NewJob(workload.NewApp(workload.BBMA(), "B"), 1, 0))
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		o.Schedule(units.Time(i), nil)
	}
}
