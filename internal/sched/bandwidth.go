package sched

import (
	"math"

	"busaware/internal/machine"
	"busaware/internal/units"
)

// Estimator selects how a bandwidth-aware policy estimates each
// application's bus bandwidth per thread.
type Estimator int

// The estimator variants.
const (
	// EstLatest uses the last quantum's sample only — the paper's
	// "Latest Quantum" policy.
	EstLatest Estimator = iota
	// EstWindow uses a moving-window average — "Quanta Window".
	EstWindow
	// EstEWMA uses an exponentially weighted average — the refinement
	// the paper suggests for longer windows.
	EstEWMA
	// EstOracle reads the true instantaneous demand from the workload
	// model — a clairvoyance upper bound for ablation only.
	EstOracle
)

func (e Estimator) String() string {
	switch e {
	case EstLatest:
		return "latest"
	case EstWindow:
		return "window"
	case EstEWMA:
		return "ewma"
	case EstOracle:
		return "oracle"
	default:
		return "unknown"
	}
}

// BandwidthAware implements the paper's Section 4 algorithm: gang-like
// allocation driven by the proximity between each application's bus
// bandwidth per thread and the available bus bandwidth per unallocated
// processor.
type BandwidthAware struct {
	name      string
	quantum   units.Time
	numCPUs   int
	capacity  units.Rate
	estimator Estimator
	windowLen int
	ewmaAlpha float64
	guard     bool
	slack     float64
	staleK    int

	list jobList

	// lastAllSelected records whether the most recent Schedule call
	// selected every job on the list — the rotation-preserving case the
	// Stable contract keys on. Add and Remove invalidate it.
	lastAllSelected bool

	// Selection scratch, reused every quantum. The selection loop is
	// O(n²) fitness probes; caching each job's estimator value (and
	// runnable-thread count and degradation flag) here once per
	// Schedule call keeps every probe O(1) and the loop allocation-
	// free. Valid only within one Select call.
	est      []units.Rate
	nThreads []int
	degr     []bool
	chosen   []bool
	selected []*Job
	ran      map[*Job]bool
	assign   assignScratch
}

// Option tweaks a BandwidthAware scheduler.
type Option func(*BandwidthAware)

// WithQuantum overrides the 200ms default quantum.
func WithQuantum(q units.Time) Option {
	return func(b *BandwidthAware) {
		if q > 0 {
			b.quantum = q
		}
	}
}

// WithWindow overrides the sample-window length (Quanta Window uses 5).
func WithWindow(w int) Option {
	return func(b *BandwidthAware) {
		if w >= 1 {
			b.windowLen = w
		}
	}
}

// WithEWMAAlpha sets the EWMA weight for EstEWMA schedulers.
func WithEWMAAlpha(a float64) Option {
	return func(b *BandwidthAware) {
		if a > 0 && a <= 1 {
			b.ewmaAlpha = a
		}
	}
}

// DefaultOvercommitSlack is the fraction of bus capacity by which a
// candidate may overshoot the remaining budget and still count as
// fitting. Mild overcommitment (a few percent beyond sustainable
// bandwidth) costs almost nothing — the contention curve is flat until
// deep saturation — while rejecting it would needlessly halve the CPU
// share of applications that almost fit next to their own twin.
const DefaultOvercommitSlack = 0.13

// WithOvercommitSlack overrides DefaultOvercommitSlack (0 disables).
func WithOvercommitSlack(s float64) Option {
	return func(b *BandwidthAware) {
		if s >= 0 {
			b.slack = s
		}
	}
}

// WithSaturationGuard enables an optional refinement over the paper's
// selection loop: candidates whose whole-gang demand overshoots the
// remaining bus budget (plus the overcommit slack) are excluded from
// the fitness pass, and when nothing fits the policy pairs like with
// like — concentrating unavoidable saturation on jobs that are
// bus-bound anyway. The experiments ship with the literal paper
// algorithm; the guard is an ablation (see EXPERIMENTS.md), useful
// when antagonists should be segregated strictly.
func WithSaturationGuard() Option {
	return func(b *BandwidthAware) { b.guard = true }
}

// DefaultStaleQuanta is the stale-fallback horizon K enabled by
// WithStaleFallback: a job's last-known BBW estimate is held for up to
// K consecutive scheduled-but-unsampled quanta before the policy stops
// trusting it.
const DefaultStaleQuanta = 4

// WithStaleFallback enables graceful degradation under telemetry loss:
// a job that runs for k consecutive quanta without delivering a fresh
// bandwidth sample is treated as *degraded* — its held estimate is
// considered garbage rather than scheduled on. Degraded jobs compete
// in plain applications-list order (Linux-like round-robin fairness)
// after the fresh jobs have been placed by fitness, and when every job
// is degraded the selection loop degenerates to bandwidth-oblivious
// gang round-robin. Admission never stalls: a degraded job is always
// an eligible candidate, so the loop fails soft toward the baseline
// instead of deadlocking or pairing jobs on stale numbers.
//
// Disabled by default (k <= 0): the stock policies hold the last
// estimate forever, exactly as the paper specifies.
func WithStaleFallback(k int) Option {
	return func(b *BandwidthAware) {
		if k > 0 {
			b.staleK = k
		}
	}
}

// DefaultQuantum is the CPU manager's quantum: 200 ms, twice the Linux
// quantum (the paper found 100 ms caused scheduling conflicts with the
// kernel).
const DefaultQuantum = 200 * units.Millisecond

// DefaultWindow is the Quanta Window length the paper evaluates: 5
// samples, which bounds the average distance between the observed
// transaction pattern and the moving average to ~5% for irregular
// applications.
const DefaultWindow = 5

// NewLatestQuantum builds the "Latest Quantum" policy for a machine
// with numCPUs processors and the given sustained bus capacity.
func NewLatestQuantum(numCPUs int, capacity units.Rate, opts ...Option) *BandwidthAware {
	return newBandwidthAware("LatestQuantum", EstLatest, 1, numCPUs, capacity, opts...)
}

// NewQuantaWindow builds the "Quanta Window" policy (window of 5).
func NewQuantaWindow(numCPUs int, capacity units.Rate, opts ...Option) *BandwidthAware {
	return newBandwidthAware("QuantaWindow", EstWindow, DefaultWindow, numCPUs, capacity, opts...)
}

// NewEWMAPolicy builds the exponentially-weighted variant.
func NewEWMAPolicy(numCPUs int, capacity units.Rate, alpha float64, opts ...Option) *BandwidthAware {
	b := newBandwidthAware("EWMA", EstEWMA, DefaultWindow, numCPUs, capacity, opts...)
	if alpha > 0 && alpha <= 1 {
		b.ewmaAlpha = alpha
	}
	return b
}

// NewOracle builds the clairvoyant ablation policy.
func NewOracle(numCPUs int, capacity units.Rate, opts ...Option) *BandwidthAware {
	return newBandwidthAware("Oracle", EstOracle, 1, numCPUs, capacity, opts...)
}

func newBandwidthAware(name string, est Estimator, window, numCPUs int, capacity units.Rate, opts ...Option) *BandwidthAware {
	b := &BandwidthAware{
		name:      name,
		quantum:   DefaultQuantum,
		numCPUs:   numCPUs,
		capacity:  capacity,
		estimator: est,
		windowLen: window,
		ewmaAlpha: 0.4,
		slack:     DefaultOvercommitSlack,
	}
	for _, o := range opts {
		o(b)
	}
	return b
}

// Name implements Scheduler.
func (b *BandwidthAware) Name() string { return b.name }

// Quantum implements Scheduler.
func (b *BandwidthAware) Quantum() units.Time { return b.quantum }

// WindowLen returns the configured sample-window length.
func (b *BandwidthAware) WindowLen() int { return b.windowLen }

// Estimator returns the policy's estimator kind.
func (b *BandwidthAware) Estimator() Estimator { return b.estimator }

// Add implements Scheduler. Jobs join with a window sized for this
// policy.
func (b *BandwidthAware) Add(j *Job) {
	b.list.add(j)
	b.lastAllSelected = false
}

// Remove implements Scheduler.
func (b *BandwidthAware) Remove(j *Job) {
	b.list.remove(j)
	b.lastAllSelected = false
}

// Jobs exposes the current applications list order (head first), for
// tests and introspection.
func (b *BandwidthAware) Jobs() []*Job { return b.list.all() }

// StaleFallback returns the stale-quanta horizon K (0 = disabled).
func (b *BandwidthAware) StaleFallback() int { return b.staleK }

// degraded reports whether j's estimate has gone stale beyond the
// fallback horizon. Always false when the fallback is disabled.
func (b *BandwidthAware) degraded(j *Job) bool {
	return b.staleK > 0 && j.StaleQuanta() >= b.staleK
}

// estimate returns BBW/thread for job j under this policy's estimator.
func (b *BandwidthAware) estimate(j *Job) units.Rate {
	switch b.estimator {
	case EstLatest:
		return j.LatestRate()
	case EstWindow:
		return j.WindowRate()
	case EstEWMA:
		return j.EWMARate()
	case EstOracle:
		return j.TrueRate()
	default:
		return j.LatestRate()
	}
}

// Fitness implements Equation 1/2 of the paper: the proximity between
// an application's bandwidth per thread and the available bandwidth
// per unallocated processor.
func Fitness(abbwPerProc, bbwPerThread units.Rate) float64 {
	return 1000 / (1 + math.Abs(float64(abbwPerProc-bbwPerThread)))
}

// Select runs the selection loop and returns the applications to run
// next quantum, in allocation order. Exposed for tests; most callers
// use Schedule.
//
// The loop follows the paper: the head of the applications list is
// allocated by default (starvation freedom), then repeated list
// traversals pick the fittest application by Equation 1/2 until the
// processors run out.
//
// By default every candidate competes on the fitness metric alone,
// exactly as the paper specifies. Note that the metric only behaves as
// the paper describes when the estimates approximate bandwidth
// *requirements*: raw consumption samples deflate under contention
// until every job measures alike and the policies lose to Linux (the
// sampling ablation in EXPERIMENTS.md quantifies this). An optional
// saturation guard (WithSaturationGuard) additionally excludes
// candidates that would overshoot the remaining bus budget, and an
// optional stale fallback (WithStaleFallback) demotes jobs whose
// estimates went stale to round-robin admission.
// The returned slice aliases internal scratch and is valid until the
// next Select or Schedule call.
func (b *BandwidthAware) Select() []*Job {
	jobs := b.list.all()
	// Cache each job's estimator value, runnable-thread count and
	// degradation flag once: none of them can change during the
	// selection (samples arrive only between quanta), and the window
	// estimators cost O(W) per evaluation while the loop below probes
	// each candidate once per free processor.
	b.est = b.est[:0]
	b.nThreads = b.nThreads[:0]
	b.degr = b.degr[:0]
	b.chosen = b.chosen[:0]
	for _, j := range jobs {
		b.est = append(b.est, b.estimate(j))
		b.nThreads = append(b.nThreads, runnableThreads(j))
		b.degr = append(b.degr, b.degraded(j))
		b.chosen = append(b.chosen, false)
	}
	selected := b.selected[:0]
	freeCPUs := b.numCPUs
	allocatedThreads := 0
	var allocatedBW units.Rate

	// The application at the top of the list is allocated by default:
	// this guarantees freedom from bandwidth starvation.
	for i, j := range jobs {
		n := b.nThreads[i]
		if n == 0 || n > freeCPUs {
			continue
		}
		selected = append(selected, j)
		b.chosen[i] = true
		freeCPUs -= n
		allocatedThreads += n
		if !b.degr[i] {
			allocatedBW += b.est[i] * units.Rate(n)
		}
		break
	}

	for freeCPUs > 0 {
		remaining := b.capacity - allocatedBW
		abbwPerProc := remaining / units.Rate(freeCPUs)
		best := -1
		bestFit := -1.0
		fallback := -1
		fallbackFit := -1.0
		// rrPick is the first degraded candidate in list order: a job
		// whose estimate went stale beyond the fallback horizon is not
		// scheduled on garbage, but stays admissible round-robin style
		// so the admission loop degrades gracefully instead of
		// starving it or deadlocking.
		rrPick := -1
		var allocAvg units.Rate
		if allocatedThreads > 0 {
			allocAvg = allocatedBW / units.Rate(allocatedThreads)
		}
		for i := range jobs {
			if b.chosen[i] {
				continue
			}
			n := b.nThreads[i]
			if n == 0 || n > freeCPUs {
				continue
			}
			if b.degr[i] {
				if rrPick < 0 {
					rrPick = i
				}
				continue
			}
			est := b.est[i]
			fits := !b.guard || est*units.Rate(n) <= remaining+b.capacity*units.Rate(b.slack)
			if fits {
				if fit := Fitness(abbwPerProc, est); fit > bestFit {
					bestFit = fit
					best = i
				}
			} else if fit := Fitness(allocAvg, est); fit > fallbackFit {
				fallbackFit = fit
				fallback = i
			}
		}
		if best < 0 {
			best = fallback
		}
		if best < 0 {
			best = rrPick
		}
		if best < 0 {
			break
		}
		n := b.nThreads[best]
		selected = append(selected, jobs[best])
		b.chosen[best] = true
		freeCPUs -= n
		allocatedThreads += n
		if !b.degr[best] {
			allocatedBW += b.est[best] * units.Rate(n)
		}
	}
	b.selected = selected[:0]
	return selected
}

// Schedule implements Scheduler: select applications, rotate them to
// the list tail, and lay their threads out with affinity preserved.
// The returned placements alias internal scratch and are valid until
// the next Schedule call.
func (b *BandwidthAware) Schedule(now units.Time, aff Affinity) []machine.Placement {
	if b.staleK > 0 {
		for _, j := range b.list.all() {
			j.settleQuantum()
		}
	}
	selected := b.Select()
	b.lastAllSelected = len(selected) > 0 && len(selected) == b.list.len()
	if b.ran == nil {
		b.ran = make(map[*Job]bool, len(selected))
	} else {
		clear(b.ran)
	}
	for _, j := range selected {
		b.ran[j] = true
		if b.staleK > 0 {
			j.noteScheduled()
		}
	}
	b.list.rotateToTail(b.ran)
	return assignCPUsInto(&b.assign, selected, aff, b.numCPUs)
}
