package sched

import (
	"testing"

	"busaware/internal/units"
	"busaware/internal/workload"
)

func staleTestJob(name string, threads int, rate units.Rate) *Job {
	p := workload.Profile{
		Name:    name,
		Threads: threads,
		Phases:  []workload.Phase{{Duration: units.Second, Demand: 10}},
	}
	j := NewJob(workload.NewApp(p, name), 1, 0)
	j.PushSample(rate)
	return j
}

// starve runs k scheduled quanta without feeding j a fresh sample.
func starve(b *BandwidthAware, k int) {
	for i := 0; i < k; i++ {
		b.Schedule(0, nil)
	}
}

func TestStaleQuantaBookkeeping(t *testing.T) {
	j := staleTestJob("a", 1, 5)
	if j.StaleQuanta() != 0 {
		t.Fatalf("fresh job stale = %d", j.StaleQuanta())
	}
	j.noteScheduled() // quantum 1 begins
	j.settleQuantum() // quantum 1 ended sampleless
	j.noteScheduled()
	j.settleQuantum()
	if j.StaleQuanta() != 2 {
		t.Errorf("stale = %d, want 2", j.StaleQuanta())
	}
	j.settleQuantum() // idempotent when the job did not run
	if j.StaleQuanta() != 2 {
		t.Errorf("settling an idle quantum counted: %d", j.StaleQuanta())
	}
	j.PushSample(4)
	if j.StaleQuanta() != 0 {
		t.Errorf("PushSample did not clear staleness: %d", j.StaleQuanta())
	}
	j.noteScheduled()
	j.settleQuantum()
	j.ResetSamples()
	if j.StaleQuanta() != 0 || j.Samples() != 0 {
		t.Errorf("ResetSamples left state: stale=%d samples=%d", j.StaleQuanta(), j.Samples())
	}
}

// Without WithStaleFallback nothing changes: estimates are held
// forever and noteScheduled is never invoked by the policy.
func TestStaleFallbackDisabledByDefault(t *testing.T) {
	b := NewQuantaWindow(4, 30)
	if b.StaleFallback() != 0 {
		t.Fatalf("fallback enabled by default: K=%d", b.StaleFallback())
	}
	j := staleTestJob("a", 2, 6)
	b.Add(j)
	for i := 0; i < 50; i++ {
		b.Schedule(0, nil)
	}
	if j.StaleQuanta() != 0 {
		t.Errorf("disabled policy accumulated staleness: %d", j.StaleQuanta())
	}
	if b.degraded(j) {
		t.Error("job degraded with fallback disabled")
	}
}

// Once a job runs K quanta without a sample it is degraded: it no
// longer competes on its stale estimate but stays admissible in list
// order, and admission never stalls.
func TestStaleFallbackDegradesToRoundRobin(t *testing.T) {
	const k = 3
	b := NewLatestQuantum(4, 30, WithStaleFallback(k))
	// Two 2-thread jobs: both fit together on 4 CPUs.
	a := staleTestJob("a", 2, 14)
	c := staleTestJob("c", 2, 1)
	b.Add(a)
	b.Add(c)

	// After k completed sampleless quanta (the k+1-th Schedule call
	// settles the k-th), both jobs cross the horizon.
	starve(b, k+1)
	if !b.degraded(a) || !b.degraded(c) {
		t.Fatalf("jobs not degraded after %d sampleless quanta (stale: a=%d c=%d)",
			k, a.StaleQuanta(), c.StaleQuanta())
	}

	// All-degraded selection must still admit everything that fits —
	// bandwidth-oblivious gang round-robin, never a stall.
	sel := b.Select()
	if len(sel) != 2 {
		t.Fatalf("all-degraded Select admitted %d jobs, want 2", len(sel))
	}

	// A fresh sample rehabilitates a job immediately.
	a.PushSample(12)
	if b.degraded(a) {
		t.Error("sampled job still degraded")
	}
	if !b.degraded(c) {
		t.Error("unsampled job lost degraded status")
	}
}

// Degraded jobs must not poison the fitness pass: a degraded
// high-estimate job is placed after fresh jobs, in list order.
func TestStaleFallbackPrefersFreshJobs(t *testing.T) {
	const k = 2
	b := NewLatestQuantum(4, 30, WithStaleFallback(k))
	head := staleTestJob("head", 2, 10)
	stale := staleTestJob("stale", 1, 1000) // absurd stale estimate
	fresh := staleTestJob("fresh", 1, 5)
	b.Add(head)
	b.Add(stale)
	b.Add(fresh)

	// Starve only "stale": re-sample the others each quantum.
	for i := 0; i < k+1; i++ {
		b.Schedule(0, nil)
		head.PushSample(10)
		fresh.PushSample(5)
	}
	if !b.degraded(stale) || b.degraded(fresh) {
		t.Fatalf("degradation targeting wrong job (stale=%d fresh=%d)",
			stale.StaleQuanta(), fresh.StaleQuanta())
	}

	sel := b.Select()
	// 4 CPUs: the list head (2 threads) is admitted by default, then
	// the fresh 1-thread job by fitness, then the degraded job fills
	// the last CPU round-robin style — it is not scheduled *on* its
	// garbage estimate, but it is not starved either.
	if len(sel) != 3 {
		t.Fatalf("selected %d jobs, want 3", len(sel))
	}
	order := []*Job{}
	for _, j := range sel {
		if j == stale || j == fresh {
			order = append(order, j)
		}
	}
	if len(order) != 2 || order[0] != fresh || order[1] != stale {
		t.Errorf("fresh job should be placed before the degraded one")
	}
}
