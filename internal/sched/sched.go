// Package sched implements the scheduling policies evaluated in the
// paper: the two bus-bandwidth-aware gang-like policies ("Latest
// Quantum" and "Quanta Window"), the Linux 2.4-style baseline they are
// compared against, and several ablation schedulers (bandwidth-
// oblivious gang round-robin, per-thread round-robin, and a
// clairvoyant oracle).
//
// A Scheduler owns an ordered list of Jobs (one per application, the
// paper's "applications list") and is asked once per quantum to
// produce processor placements. Bandwidth-aware policies consume
// per-thread bus-transaction-rate samples pushed by the CPU manager
// after every quantum.
package sched

import (
	"busaware/internal/machine"
	"busaware/internal/stats"
	"busaware/internal/units"
	"busaware/internal/workload"
)

// Affinity exposes where threads last ran, so schedulers can preserve
// cache affinity when assigning processors.
type Affinity interface {
	LastCPU(*workload.Thread) int
}

// Scheduler is the common interface of all policies.
type Scheduler interface {
	// Name identifies the policy in reports.
	Name() string
	// Quantum is the policy's scheduling quantum.
	Quantum() units.Time
	// Add registers a new application (its "connection" to the CPU
	// manager); it joins the tail of the applications list.
	Add(*Job)
	// Remove unregisters a finished application.
	Remove(*Job)
	// Schedule picks the placements for the next quantum.
	Schedule(now units.Time, aff Affinity) []machine.Placement
}

// Job is the scheduler's bookkeeping for one application.
type Job struct {
	App *workload.App

	// window accumulates per-thread bus-transaction-rate samples
	// (trans/usec). Capacity 1 degenerates to "latest quantum".
	window *stats.Window
	ewma   *stats.EWMA

	// staleQuanta counts consecutive quanta the job was scheduled to
	// run but produced no fresh sample — the telemetry-loss signal the
	// stale-fallback degradation rule keys on. Quanta spent blocked do
	// not count: a blocked application publishes nothing by design and
	// its last estimate legitimately persists (the paper's rule).
	staleQuanta    int
	awaitingSample bool
}

// NewJob wraps app with a sample window of length windowLen (minimum
// 1). If ewmaAlpha > 0 an exponentially weighted average is maintained
// as well, for the EWMA policy variant.
func NewJob(app *workload.App, windowLen int, ewmaAlpha float64) *Job {
	if windowLen < 1 {
		windowLen = 1
	}
	j := &Job{App: app, window: stats.NewWindow(windowLen)}
	if ewmaAlpha > 0 {
		j.ewma = &stats.EWMA{Alpha: ewmaAlpha}
	}
	return j
}

// Threads returns the gang size.
func (j *Job) Threads() int { return len(j.App.Threads) }

// PushSample records the application's measured bus bandwidth per
// thread over the last quantum it ran (BBW/thread in the paper).
func (j *Job) PushSample(perThread units.Rate) {
	j.window.Push(float64(perThread))
	if j.ewma != nil {
		j.ewma.Push(float64(perThread))
	}
	j.staleQuanta = 0
	j.awaitingSample = false
}

// settleQuantum closes out the previous quantum: if the job ran it
// and no fresh sample arrived since, that quantum was stale. Called at
// the top of Schedule, so staleness is visible to the selection that
// follows.
func (j *Job) settleQuantum() {
	if j.awaitingSample {
		j.staleQuanta++
		j.awaitingSample = false
	}
}

// noteScheduled records that the job is about to run one quantum and
// owes the policy a sample for it.
func (j *Job) noteScheduled() {
	j.awaitingSample = true
}

// StaleQuanta returns how many consecutive scheduled quanta elapsed
// without a fresh sample.
func (j *Job) StaleQuanta() int { return j.staleQuanta }

// ResetSamples discards the job's sampling history and staleness, as
// after a client crash/reconnect: the application starts over with an
// empty window, exactly like a freshly admitted job.
func (j *Job) ResetSamples() {
	j.window.Reset()
	if j.ewma != nil {
		j.ewma.Reset()
	}
	j.staleQuanta = 0
	j.awaitingSample = false
}

// LatestRate returns the most recent per-thread sample.
func (j *Job) LatestRate() units.Rate { return units.Rate(j.window.Latest()) }

// WindowRate returns the moving-window mean per-thread rate.
func (j *Job) WindowRate() units.Rate { return units.Rate(j.window.Mean()) }

// EWMARate returns the exponentially weighted mean, or the latest
// sample if the job was created without an EWMA.
func (j *Job) EWMARate() units.Rate {
	if j.ewma == nil {
		return j.LatestRate()
	}
	return units.Rate(j.ewma.Value())
}

// Samples returns how many samples the job has received (capped at the
// window length).
func (j *Job) Samples() int { return j.window.Len() }

// TrueRate returns the application's instantaneous per-thread demand
// straight from the workload model — information a real scheduler
// cannot have. Used only by the oracle ablation.
func (j *Job) TrueRate() units.Rate {
	if len(j.App.Threads) == 0 {
		return 0
	}
	var sum units.Rate
	for _, t := range j.App.Threads {
		sum += t.Demand()
	}
	return sum / units.Rate(len(j.App.Threads))
}

// jobList is the shared ordered applications list with the paper's
// end-of-quantum rotation semantics.
type jobList struct {
	jobs []*Job
	// moved is rotation scratch, reused so the per-quantum rotation
	// allocates nothing in steady state.
	moved []*Job
}

func (l *jobList) add(j *Job)  { l.jobs = append(l.jobs, j) }
func (l *jobList) len() int    { return len(l.jobs) }
func (l *jobList) all() []*Job { return l.jobs }

func (l *jobList) remove(j *Job) {
	for i, x := range l.jobs {
		if x == j {
			l.jobs = append(l.jobs[:i], l.jobs[i+1:]...)
			return
		}
	}
}

// rotateToTail moves the given jobs (those that just ran) to the end of
// the list, preserving their relative order — "the previously running
// jobs are then transferred to the end of the applications list".
// The partition is done in place with a reusable scratch buffer.
func (l *jobList) rotateToTail(ran map[*Job]bool) {
	if len(ran) == 0 {
		return
	}
	kept := l.jobs[:0]
	moved := l.moved[:0]
	for _, j := range l.jobs {
		if ran[j] {
			moved = append(moved, j)
		} else {
			kept = append(kept, j)
		}
	}
	l.jobs = append(kept, moved...)
	l.moved = moved[:0]
}

// assignScratch holds the reusable buffers of assignCPUsInto, so a
// scheduler's per-quantum layout pass allocates nothing in steady
// state.
type assignScratch struct {
	free       []bool
	placements []machine.Placement
	homeless   []*workload.Thread
}

// assignCPUs lays the threads of the selected jobs onto processors
// with fresh buffers; hot paths keep an assignScratch and call
// assignCPUsInto instead.
func assignCPUs(selected []*Job, aff Affinity, numCPUs int) []machine.Placement {
	return assignCPUsInto(new(assignScratch), selected, aff, numCPUs)
}

// assignCPUsInto lays the threads of the selected jobs onto processors,
// preferring each thread's previous processor to preserve affinity.
// It assumes the caller verified the threads fit. The returned slice
// aliases sc's buffers and is valid until the next call with sc.
func assignCPUsInto(sc *assignScratch, selected []*Job, aff Affinity, numCPUs int) []machine.Placement {
	if cap(sc.free) < numCPUs {
		sc.free = make([]bool, numCPUs)
	}
	free := sc.free[:numCPUs]
	for i := range free {
		free[i] = true
	}
	placements := sc.placements[:0]
	homeless := sc.homeless[:0]

	for _, j := range selected {
		for _, t := range j.App.Threads {
			if t.Done() {
				continue
			}
			last := -1
			if aff != nil {
				last = aff.LastCPU(t)
			}
			if last >= 0 && last < numCPUs && free[last] {
				free[last] = false
				placements = append(placements, machine.Placement{Thread: t, CPU: last})
			} else {
				homeless = append(homeless, t)
			}
		}
	}
	cpu := 0
	for _, t := range homeless {
		for cpu < numCPUs && !free[cpu] {
			cpu++
		}
		if cpu == numCPUs {
			break // shouldn't happen if the caller sized correctly
		}
		free[cpu] = false
		placements = append(placements, machine.Placement{Thread: t, CPU: cpu})
	}
	sc.placements = placements[:0]
	sc.homeless = homeless[:0]
	return placements
}

// runnableThreads counts a job's unfinished threads.
func runnableThreads(j *Job) int {
	n := 0
	for _, t := range j.App.Threads {
		if !t.Done() {
			n++
		}
	}
	return n
}
