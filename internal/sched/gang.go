package sched

import (
	"busaware/internal/machine"
	"busaware/internal/units"
)

// Gang is a bandwidth-oblivious gang round-robin: it allocates
// applications first-fit in list order and rotates the list, exactly
// like the paper's policies but with no fitness metric. It isolates
// how much of the improvement comes from gang scheduling itself versus
// from the bandwidth-driven pairing.
type Gang struct {
	quantum units.Time
	numCPUs int
	list    jobList

	// lastAllSelected records whether the most recent Schedule call ran
	// every job — the rotation-preserving case Stable keys on.
	lastAllSelected bool
}

// NewGang builds the gang round-robin ablation scheduler.
func NewGang(numCPUs int, opts ...GangOption) *Gang {
	g := &Gang{quantum: DefaultQuantum, numCPUs: numCPUs}
	for _, o := range opts {
		o(g)
	}
	return g
}

// GangOption tweaks a Gang scheduler.
type GangOption func(*Gang)

// WithGangQuantum overrides the 200ms default quantum.
func WithGangQuantum(q units.Time) GangOption {
	return func(g *Gang) {
		if q > 0 {
			g.quantum = q
		}
	}
}

// Name implements Scheduler.
func (g *Gang) Name() string { return "GangRR" }

// Quantum implements Scheduler.
func (g *Gang) Quantum() units.Time { return g.quantum }

// Add implements Scheduler.
func (g *Gang) Add(j *Job) {
	g.list.add(j)
	g.lastAllSelected = false
}

// Remove implements Scheduler.
func (g *Gang) Remove(j *Job) {
	g.list.remove(j)
	g.lastAllSelected = false
}

// Schedule implements Scheduler.
func (g *Gang) Schedule(now units.Time, aff Affinity) []machine.Placement {
	free := g.numCPUs
	var selected []*Job
	ran := make(map[*Job]bool)
	for _, j := range g.list.all() {
		n := runnableThreads(j)
		if n == 0 || n > free {
			continue
		}
		selected = append(selected, j)
		ran[j] = true
		free -= n
		if free == 0 {
			break
		}
	}
	g.lastAllSelected = len(selected) > 0 && len(selected) == g.list.len()
	g.list.rotateToTail(ran)
	return assignCPUs(selected, aff, g.numCPUs)
}
