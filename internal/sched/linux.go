package sched

import (
	"math/rand"

	"busaware/internal/machine"
	"busaware/internal/units"
	"busaware/internal/workload"
)

// Linux approximates the Linux 2.4 scheduler the paper compares
// against: a global runqueue of threads with per-epoch time-slice
// counters and a strong cache-affinity bonus (goodness()-style), and
// no notion of gangs or bus bandwidth.
//
// Per epoch every runnable thread holds a counter of quanta; each
// quantum, every processor greedily picks the highest-goodness
// runnable thread, where goodness is the remaining counter plus a
// large bonus for the processor the thread last ran on. When all
// counters are spent the epoch ends and counters are refilled. The
// runqueue is shuffled (deterministically, from the scheduler's seed)
// at each epoch boundary to model the arrival nondeterminism that makes
// the real Linux mix applications arbitrarily — including the
// pathological co-schedules of one application thread with three BBMA
// instances that the paper describes.
type Linux struct {
	quantum units.Time
	numCPUs int
	rng     *rand.Rand

	list     jobList
	counters map[*workload.Thread]int
	queue    []*workload.Thread // runqueue order, shuffled per epoch
}

// LinuxQuantum is the baseline's time slice: the paper states the CPU
// manager's 200 ms quantum is "twice the quantum of the Linux
// scheduler".
const LinuxQuantum = 100 * units.Millisecond

// epochTicks is the counter refill per thread per epoch.
const epochTicks = 2

// affinityBonus biases a processor toward its previous occupant, as
// PROC_CHANGE_PENALTY does in the 2.4 goodness() function. Under heavy
// multiprogramming 2.4's global-runqueue design still migrated threads
// frequently (an idle processor steals whatever is runnable), which the
// paper leans on when it attributes LU CB's and Water-nsqr's slowdowns
// to migrations; a modest bonus reproduces that regime.
const affinityBonus = 1

// NewLinux builds the baseline for numCPUs processors with a
// deterministic seed.
func NewLinux(numCPUs int, seed int64) *Linux {
	return &Linux{
		quantum:  LinuxQuantum,
		numCPUs:  numCPUs,
		rng:      rand.New(rand.NewSource(seed)),
		counters: make(map[*workload.Thread]int),
	}
}

// Name implements Scheduler.
func (l *Linux) Name() string { return "Linux" }

// Quantum implements Scheduler.
func (l *Linux) Quantum() units.Time { return l.quantum }

// Add implements Scheduler.
func (l *Linux) Add(j *Job) {
	l.list.add(j)
	for _, t := range j.App.Threads {
		l.counters[t] = epochTicks
		l.queue = append(l.queue, t)
	}
}

// Remove implements Scheduler.
func (l *Linux) Remove(j *Job) {
	l.list.remove(j)
	for _, t := range j.App.Threads {
		delete(l.counters, t)
	}
	kept := l.queue[:0]
	for _, t := range l.queue {
		if t.App != j.App {
			kept = append(kept, t)
		}
	}
	l.queue = kept
}

// runnable reports whether t can run.
func (l *Linux) runnable(t *workload.Thread) bool {
	_, tracked := l.counters[t]
	return tracked && !t.Done()
}

// Schedule implements Scheduler.
func (l *Linux) Schedule(now units.Time, aff Affinity) []machine.Placement {
	// Epoch boundary: refill when every runnable thread is out of
	// counter.
	spent := true
	anyRunnable := false
	for _, t := range l.queue {
		if !l.runnable(t) {
			continue
		}
		anyRunnable = true
		if l.counters[t] > 0 {
			spent = false
			break
		}
	}
	if !anyRunnable {
		return nil
	}
	if spent {
		for _, t := range l.queue {
			if l.runnable(t) {
				l.counters[t] = l.counters[t]/2 + epochTicks
			}
		}
		l.rng.Shuffle(len(l.queue), func(i, j int) {
			l.queue[i], l.queue[j] = l.queue[j], l.queue[i]
		})
	}

	assigned := make(map[*workload.Thread]bool)
	var placements []machine.Placement
	for cpu := 0; cpu < l.numCPUs; cpu++ {
		var best *workload.Thread
		bestGoodness := -1
		for _, t := range l.queue {
			if assigned[t] || !l.runnable(t) || l.counters[t] <= 0 {
				continue
			}
			g := l.counters[t]
			if aff != nil && aff.LastCPU(t) == cpu {
				g += affinityBonus
			}
			if g > bestGoodness {
				bestGoodness = g
				best = t
			}
		}
		if best == nil {
			continue
		}
		assigned[best] = true
		l.counters[best]--
		placements = append(placements, machine.Placement{Thread: best, CPU: cpu})
	}
	return placements
}
