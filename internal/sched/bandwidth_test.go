package sched

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"busaware/internal/units"
	"busaware/internal/workload"
)

func job(t *testing.T, name string, windowLen int) *Job {
	t.Helper()
	p, ok := workload.ByName(name)
	if !ok {
		t.Fatalf("no profile %q", name)
	}
	return NewJob(workload.NewApp(p, name+"#t"), windowLen, 0)
}

func TestFitnessEquation(t *testing.T) {
	// Perfect match: fitness = 1000.
	if got := Fitness(10, 10); got != 1000 {
		t.Errorf("Fitness(10,10) = %v, want 1000", got)
	}
	// One unit away: 500.
	if got := Fitness(10, 11); got != 500 {
		t.Errorf("Fitness(10,11) = %v, want 500", got)
	}
	// Symmetric.
	if Fitness(3, 7) != Fitness(7, 3) {
		t.Error("fitness not symmetric")
	}
	// Negative available bandwidth (saturated bus): the lowest-demand
	// job is fittest.
	low, high := Fitness(-5, 1), Fitness(-5, 20)
	if low <= high {
		t.Errorf("under saturation low-demand job should win: %v vs %v", low, high)
	}
}

// Property: fitness is maximized exactly at bbw == abbw and decreases
// monotonically with distance.
func TestFitnessMonotoneProperty(t *testing.T) {
	f := func(a, d1, d2 float64) bool {
		a = math.Mod(a, 100)
		d1, d2 = math.Abs(math.Mod(d1, 50)), math.Abs(math.Mod(d2, 50))
		if d1 > d2 {
			d1, d2 = d2, d1
		}
		near := Fitness(units.Rate(a), units.Rate(a+d1))
		far := Fitness(units.Rate(a), units.Rate(a+d2))
		return near >= far && Fitness(units.Rate(a), units.Rate(a)) == 1000
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestJobEstimators(t *testing.T) {
	j := NewJob(workload.NewApp(workload.BBMA(), "B#1"), 3, 0.5)
	j.PushSample(10)
	j.PushSample(20)
	j.PushSample(30)
	j.PushSample(40) // window now {20,30,40}
	if got := j.LatestRate(); got != 40 {
		t.Errorf("latest = %v", got)
	}
	if got := j.WindowRate(); got != 30 {
		t.Errorf("window mean = %v", got)
	}
	if j.Samples() != 3 {
		t.Errorf("samples = %d", j.Samples())
	}
	if j.EWMARate() <= 0 {
		t.Error("ewma should be positive")
	}
	// Without EWMA configured, EWMARate falls back to latest.
	j2 := NewJob(workload.NewApp(workload.BBMA(), "B#2"), 1, 0)
	j2.PushSample(7)
	if j2.EWMARate() != 7 {
		t.Errorf("fallback ewma = %v", j2.EWMARate())
	}
}

func TestTrueRateReflectsPhases(t *testing.T) {
	j := job(t, "CG", 1)
	want := 23.31 / 2
	if got := float64(j.TrueRate()); math.Abs(got-want) > 0.01 {
		t.Errorf("true rate = %v, want %v", got, want)
	}
}

func TestSelectHeadOfListAlwaysRuns(t *testing.T) {
	lq := NewLatestQuantum(4, units.SustainedBusRate)
	jHigh := job(t, "CG", 1)
	jHigh.PushSample(11.65)
	jB1 := NewJob(workload.NewApp(workload.BBMA(), "B#1"), 1, 0)
	jB1.PushSample(23.6)
	jB2 := NewJob(workload.NewApp(workload.BBMA(), "B#2"), 1, 0)
	jB2.PushSample(23.6)
	lq.Add(jHigh)
	lq.Add(jB1)
	lq.Add(jB2)
	sel := lq.Select()
	if len(sel) == 0 || sel[0] != jHigh {
		t.Fatalf("head of list not allocated first: %v", names(sel))
	}
}

func names(js []*Job) []string {
	out := make([]string, len(js))
	for i, j := range js {
		out[i] = j.App.Instance
	}
	return out
}

// The core pairing behaviour: with a high-bandwidth app at the head,
// the policy should fill remaining processors with low-bandwidth jobs
// rather than more high-bandwidth ones.
func TestSelectPairsHighWithLow(t *testing.T) {
	lq := NewLatestQuantum(4, units.SustainedBusRate)
	cg := job(t, "CG", 1) // 2 threads @ 11.65
	cg.PushSample(11.65)
	bbma1 := NewJob(workload.NewApp(workload.BBMA(), "B#1"), 1, 0)
	bbma1.PushSample(23.6)
	bbma2 := NewJob(workload.NewApp(workload.BBMA(), "B#2"), 1, 0)
	bbma2.PushSample(23.6)
	n1 := NewJob(workload.NewApp(workload.NBBMA(), "n#1"), 1, 0)
	n1.PushSample(0.0037)
	n2 := NewJob(workload.NewApp(workload.NBBMA(), "n#2"), 1, 0)
	n2.PushSample(0.0037)
	for _, j := range []*Job{cg, bbma1, bbma2, n1, n2} {
		lq.Add(j)
	}
	sel := lq.Select()
	// CG (head) takes 2 CPUs consuming 23.3 of 29.5; remaining
	// 6.2/2cpu = 3.1 per proc; nBBMA (|3.1-0.0037|) beats BBMA
	// (|3.1-23.6|).
	got := map[*Job]bool{}
	for _, j := range sel {
		got[j] = true
	}
	if !got[cg] || !got[n1] || !got[n2] || got[bbma1] || got[bbma2] {
		t.Errorf("selection = %v, want CG with the two nBBMAs", names(sel))
	}
}

// Reverse scenario from the paper: low-bandwidth jobs allocated first
// make high-bandwidth ones the best candidates.
func TestSelectPairsLowWithHigh(t *testing.T) {
	lq := NewLatestQuantum(4, units.SustainedBusRate)
	rad := job(t, "Radiosity", 1) // 2 threads @ 0.24
	rad.PushSample(0.24)
	bbma := NewJob(workload.NewApp(workload.BBMA(), "B#1"), 1, 0)
	bbma.PushSample(23.6)
	n1 := NewJob(workload.NewApp(workload.NBBMA(), "n#1"), 1, 0)
	n1.PushSample(0.0037)
	n2 := NewJob(workload.NewApp(workload.NBBMA(), "n#2"), 1, 0)
	n2.PushSample(0.0037)
	for _, j := range []*Job{rad, bbma, n1, n2} {
		lq.Add(j)
	}
	sel := lq.Select()
	got := map[*Job]bool{}
	for _, j := range sel {
		got[j] = true
	}
	// After Radiosity (0.48 total), ~29/2 per proc remains: BBMA
	// (23.6) is far closer than nBBMA (0.0037).
	if !got[rad] || !got[bbma] {
		t.Errorf("selection = %v, want Radiosity + BBMA among them", names(sel))
	}
}

// Saturated bus: when demand exceeds capacity, lowest-demand jobs win
// the remaining slots.
func TestSelectSaturatedPrefersLowest(t *testing.T) {
	lq := NewLatestQuantum(4, units.SustainedBusRate)
	b1 := NewJob(workload.NewApp(workload.BBMA(), "B#1"), 1, 0)
	b1.PushSample(23.6)
	b2 := NewJob(workload.NewApp(workload.BBMA(), "B#2"), 1, 0)
	b2.PushSample(23.6)
	b3 := NewJob(workload.NewApp(workload.BBMA(), "B#3"), 1, 0)
	b3.PushSample(23.6)
	lo := NewJob(workload.NewApp(workload.NBBMA(), "n#1"), 1, 0)
	lo.PushSample(0.0037)
	for _, j := range []*Job{b1, b2, lo, b3} {
		lq.Add(j)
	}
	sel := lq.Select()
	got := map[*Job]bool{}
	for _, j := range sel {
		got[j] = true
	}
	if !got[lo] {
		t.Errorf("selection = %v, want the low-bandwidth job included once bus overcommitted", names(sel))
	}
}

// Starvation freedom: rotating the list guarantees every job
// eventually reaches the head and runs, regardless of its bandwidth.
func TestNoStarvationProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		lq := NewQuantaWindow(4, units.SustainedBusRate)
		var jobs []*Job
		for i := 0; i < 6; i++ {
			p := workload.RandomProfile(rng, "fuzz")
			if p.Threads > 4 {
				p.Threads = 4
			}
			j := NewJob(workload.NewApp(p, p.Name), DefaultWindow, 0)
			j.PushSample(units.Rate(rng.Float64() * 24))
			jobs = append(jobs, j)
			lq.Add(j)
		}
		ranCount := make(map[*Job]int)
		for q := 0; q < 60; q++ {
			for _, j := range lq.Select() {
				ranCount[j]++
			}
			// Mimic the scheduler's own rotation by calling Schedule.
			lq.Schedule(0, nil)
		}
		for _, j := range jobs {
			if ranCount[j] == 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// Gang integrity: placements never split an application, and never
// exceed the processor count.
func TestScheduleGangIntegrityProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		lq := NewLatestQuantum(4, units.SustainedBusRate)
		apps := make(map[*workload.App]int)
		for i := 0; i < 5; i++ {
			p := workload.RandomProfile(rng, "fuzz")
			if p.Threads > 4 {
				p.Threads = 4
			}
			app := workload.NewApp(p, p.Name)
			apps[app] = p.Threads
			j := NewJob(app, 1, 0)
			j.PushSample(units.Rate(rng.Float64() * 24))
			lq.Add(j)
		}
		for q := 0; q < 20; q++ {
			pl := lq.Schedule(0, nil)
			if len(pl) > 4 {
				return false
			}
			cpus := map[int]bool{}
			placedPerApp := map[*workload.App]int{}
			for _, p := range pl {
				if cpus[p.CPU] {
					return false
				}
				cpus[p.CPU] = true
				placedPerApp[p.Thread.App]++
			}
			for app, n := range placedPerApp {
				if n != apps[app] {
					return false // split gang
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestRemoveJob(t *testing.T) {
	lq := NewLatestQuantum(4, units.SustainedBusRate)
	j1 := job(t, "CG", 1)
	j2 := job(t, "SP", 1)
	lq.Add(j1)
	lq.Add(j2)
	lq.Remove(j1)
	if len(lq.Jobs()) != 1 || lq.Jobs()[0] != j2 {
		t.Errorf("jobs after remove = %v", names(lq.Jobs()))
	}
	// Removing a job not in the list is a no-op.
	lq.Remove(j1)
	if len(lq.Jobs()) != 1 {
		t.Error("double remove corrupted list")
	}
}

func TestOptionValidation(t *testing.T) {
	b := NewQuantaWindow(4, 29.5, WithQuantum(0), WithWindow(0), WithEWMAAlpha(2))
	if b.Quantum() != DefaultQuantum {
		t.Error("zero quantum should be ignored")
	}
	if b.WindowLen() != DefaultWindow {
		t.Error("zero window should be ignored")
	}
	b2 := NewQuantaWindow(4, 29.5, WithQuantum(100*units.Millisecond), WithWindow(9))
	if b2.Quantum() != 100*units.Millisecond || b2.WindowLen() != 9 {
		t.Error("options not applied")
	}
}

func TestEstimatorNames(t *testing.T) {
	for e, want := range map[Estimator]string{
		EstLatest: "latest", EstWindow: "window", EstEWMA: "ewma", EstOracle: "oracle", Estimator(9): "unknown",
	} {
		if e.String() != want {
			t.Errorf("estimator %d = %q, want %q", e, e.String(), want)
		}
	}
}

func TestPolicyIdentities(t *testing.T) {
	if n := NewLatestQuantum(4, 29.5).Name(); n != "LatestQuantum" {
		t.Error(n)
	}
	if n := NewQuantaWindow(4, 29.5).Name(); n != "QuantaWindow" {
		t.Error(n)
	}
	if NewLatestQuantum(4, 29.5).WindowLen() != 1 {
		t.Error("LatestQuantum must use window length 1")
	}
	if NewQuantaWindow(4, 29.5).WindowLen() != DefaultWindow {
		t.Error("QuantaWindow must default to the paper's window of 5")
	}
	if NewOracle(4, 29.5).Estimator() != EstOracle {
		t.Error("oracle estimator")
	}
	if NewEWMAPolicy(4, 29.5, 0.3).Estimator() != EstEWMA {
		t.Error("ewma estimator")
	}
}

func TestJobsTooBigAreSkipped(t *testing.T) {
	lq := NewLatestQuantum(2, units.SustainedBusRate)
	big := NewJob(workload.NewApp(workload.STREAM(), "S#1"), 1, 0) // 4 threads > 2 CPUs
	small := job(t, "CG", 1)
	lq.Add(big)
	lq.Add(small)
	sel := lq.Select()
	for _, j := range sel {
		if j == big {
			t.Error("oversized gang selected")
		}
	}
	if len(sel) != 1 || sel[0] != small {
		t.Errorf("selection = %v", names(sel))
	}
}
