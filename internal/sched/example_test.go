package sched_test

import (
	"fmt"

	"busaware/internal/sched"
)

// Equation 1 of the paper: fitness peaks when an application's
// bandwidth per thread exactly matches the available bandwidth per
// unallocated processor, and degrades with the distance.
func ExampleFitness() {
	fmt.Println(sched.Fitness(10, 10)) // perfect match
	fmt.Println(sched.Fitness(10, 11)) // one trans/us away
	fmt.Println(sched.Fitness(10, 19)) // nine away
	// Under saturation the available bandwidth turns negative and the
	// lowest-demand application becomes the fittest:
	fmt.Println(sched.Fitness(-5, 1) > sched.Fitness(-5, 20))
	// Output:
	// 1000
	// 500
	// 100
	// true
}
