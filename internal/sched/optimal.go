package sched

import (
	"busaware/internal/bus"
	"busaware/internal/machine"
	"busaware/internal/units"
)

// Optimal implements the paper's future-work proposal: "re-formulate
// the multiprocessor scheduling problem as a multi-parametric
// optimization problem and derive practical model-driven scheduling
// algorithms". Each quantum it enumerates every feasible gang subset
// of the applications list, predicts each subset's aggregate progress
// with the same contention model the machine uses, and runs the
// subset with the best weighted throughput.
//
// Starvation freedom is preserved the same way the paper's policies
// preserve it: the head of the applications list is always part of
// the chosen subset, and subsets are scored with a waiting-time weight
// so long-parked jobs pull their gang in.
//
// The search is exponential in the number of jobs, which is fine at
// the paper's scale (half a dozen jobs on four processors) and makes
// Optimal a reference upper bound for the practical policies rather
// than a deployable scheduler.
type Optimal struct {
	quantum units.Time
	numCPUs int
	model   *bus.Model

	list    jobList
	waiting map[*Job]int // quanta since last run

	// lastAllSelected records whether the most recent Schedule call ran
	// every job — the aging- and rotation-free case Stable keys on.
	lastAllSelected bool
}

// NewOptimal builds the model-driven reference policy. The bus
// configuration should match the machine the workload runs on.
func NewOptimal(numCPUs int, busCfg bus.Config) (*Optimal, error) {
	m, err := bus.New(busCfg)
	if err != nil {
		return nil, err
	}
	return &Optimal{
		quantum: DefaultQuantum,
		numCPUs: numCPUs,
		model:   m,
		waiting: make(map[*Job]int),
	}, nil
}

// Name implements Scheduler.
func (o *Optimal) Name() string { return "Optimal" }

// Quantum implements Scheduler.
func (o *Optimal) Quantum() units.Time { return o.quantum }

// Add implements Scheduler.
func (o *Optimal) Add(j *Job) {
	o.list.add(j)
	o.waiting[j] = 0
	o.lastAllSelected = false
}

// Remove implements Scheduler.
func (o *Optimal) Remove(j *Job) {
	o.list.remove(j)
	delete(o.waiting, j)
	o.lastAllSelected = false
}

// score predicts the weighted progress of running exactly the given
// subset for one quantum: each thread's modelled speed, weighted by
// how long its job has been waiting (aging prevents starvation of
// low-value gangs).
func (o *Optimal) score(subset []*Job) float64 {
	var reqs []bus.Request
	var weights []float64
	for _, j := range subset {
		w := 1 + float64(o.waiting[j])*0.25
		for _, t := range j.App.Threads {
			if t.Done() {
				continue
			}
			reqs = append(reqs, bus.Request{Demand: t.Demand(), StallFrac: t.StallFrac()})
			weights = append(weights, w)
		}
	}
	if len(reqs) == 0 {
		return 0
	}
	grants, _ := o.model.Allocate(reqs)
	var s float64
	for i, g := range grants {
		s += g.Speed * weights[i]
	}
	return s
}

// Schedule implements Scheduler via exhaustive subset search.
func (o *Optimal) Schedule(now units.Time, aff Affinity) []machine.Placement {
	jobs := o.list.all()
	// Runnable jobs with their gang sizes.
	var cands []*Job
	var sizes []int
	for _, j := range jobs {
		if n := runnableThreads(j); n > 0 && n <= o.numCPUs {
			cands = append(cands, j)
			sizes = append(sizes, n)
		}
	}
	if len(cands) == 0 {
		return nil
	}

	var best []*Job
	bestScore := -1.0
	n := len(cands)
	// Enumerate subsets; cap the width to keep the search bounded even
	// if a caller registers many jobs.
	if n > 16 {
		n = 16
	}
	for mask := 1; mask < 1<<n; mask++ {
		if mask&1 == 0 {
			continue // head of list must run: starvation freedom
		}
		threads := 0
		var subset []*Job
		for i := 0; i < n; i++ {
			if mask&(1<<i) != 0 {
				threads += sizes[i]
				if threads > o.numCPUs {
					subset = nil
					break
				}
				subset = append(subset, cands[i])
			}
		}
		if subset == nil {
			continue
		}
		if s := o.score(subset); s > bestScore {
			bestScore = s
			best = subset
		}
	}

	ran := make(map[*Job]bool, len(best))
	for _, j := range best {
		ran[j] = true
	}
	for _, j := range cands {
		if ran[j] {
			o.waiting[j] = 0
		} else {
			o.waiting[j]++
		}
	}
	o.lastAllSelected = len(best) > 0 && len(best) == o.list.len()
	o.list.rotateToTail(ran)
	return assignCPUs(best, aff, o.numCPUs)
}
