package sched

import (
	"testing"

	"busaware/internal/machine"
	"busaware/internal/units"
	"busaware/internal/workload"
)

// fakeAffinity is a test double for machine affinity state.
type fakeAffinity map[*workload.Thread]int

func (f fakeAffinity) LastCPU(t *workload.Thread) int {
	if cpu, ok := f[t]; ok {
		return cpu
	}
	return -1
}

func TestLinuxSchedulesUpToNumCPUs(t *testing.T) {
	l := NewLinux(4, 1)
	cg := NewJob(workload.NewApp(mustProfile(t, "CG"), "CG#1"), 1, 0)
	sp := NewJob(workload.NewApp(mustProfile(t, "SP"), "SP#1"), 1, 0)
	b := NewJob(workload.NewApp(workload.BBMA(), "B#1"), 1, 0)
	l.Add(cg)
	l.Add(sp)
	l.Add(b)
	pl := l.Schedule(0, nil)
	if len(pl) != 4 {
		t.Fatalf("placed %d threads, want 4 (5 runnable, 4 CPUs)", len(pl))
	}
	cpus := map[int]bool{}
	for _, p := range pl {
		if cpus[p.CPU] {
			t.Error("CPU double-booked")
		}
		cpus[p.CPU] = true
	}
}

func mustProfile(t *testing.T, name string) workload.Profile {
	t.Helper()
	p, ok := workload.ByName(name)
	if !ok {
		t.Fatalf("no profile %q", name)
	}
	return p
}

func TestLinuxTimeSharesEverything(t *testing.T) {
	// 8 threads on 4 CPUs: over an epoch every thread must run.
	l := NewLinux(4, 42)
	var jobs []*Job
	for i := 0; i < 4; i++ {
		j := NewJob(workload.NewApp(workload.BBMA(), "B#"+string(rune('1'+i))), 1, 0)
		jobs = append(jobs, j)
		l.Add(j)
	}
	cg := NewJob(workload.NewApp(mustProfile(t, "CG"), "CG#1"), 1, 0)
	sp := NewJob(workload.NewApp(mustProfile(t, "SP"), "SP#1"), 1, 0)
	jobs = append(jobs, cg, sp)
	l.Add(cg)
	l.Add(sp)

	ran := map[*workload.Thread]int{}
	for q := 0; q < 20; q++ {
		for _, p := range l.Schedule(0, nil) {
			ran[p.Thread]++
		}
	}
	for _, j := range jobs {
		for _, th := range j.App.Threads {
			if ran[th] == 0 {
				t.Errorf("thread %s/%d starved", th.App.Instance, th.Index)
			}
		}
	}
}

func TestLinuxAffinityBias(t *testing.T) {
	l := NewLinux(2, 7)
	a := NewJob(workload.NewApp(workload.BBMA(), "A"), 1, 0)
	b := NewJob(workload.NewApp(workload.BBMA(), "B"), 1, 0)
	l.Add(a)
	l.Add(b)
	aff := fakeAffinity{
		a.App.Threads[0]: 1,
		b.App.Threads[0]: 0,
	}
	pl := l.Schedule(0, aff)
	if len(pl) != 2 {
		t.Fatalf("placed %d", len(pl))
	}
	for _, p := range pl {
		if want := aff[p.Thread]; p.CPU != want {
			t.Errorf("thread placed on %d, affinity says %d", p.CPU, want)
		}
	}
}

func TestLinuxRemove(t *testing.T) {
	l := NewLinux(4, 1)
	a := NewJob(workload.NewApp(workload.BBMA(), "A"), 1, 0)
	b := NewJob(workload.NewApp(workload.BBMA(), "B"), 1, 0)
	l.Add(a)
	l.Add(b)
	l.Remove(a)
	for q := 0; q < 10; q++ {
		for _, p := range l.Schedule(0, nil) {
			if p.Thread.App == a.App {
				t.Fatal("removed app still scheduled")
			}
		}
	}
}

func TestLinuxEmpty(t *testing.T) {
	l := NewLinux(4, 1)
	if pl := l.Schedule(0, nil); pl != nil {
		t.Errorf("empty scheduler produced placements: %v", pl)
	}
	if l.Quantum() != LinuxQuantum {
		t.Errorf("quantum = %v", l.Quantum())
	}
	if l.Name() != "Linux" {
		t.Error(l.Name())
	}
}

func TestGangFirstFit(t *testing.T) {
	g := NewGang(4)
	cg := NewJob(workload.NewApp(mustProfile(t, "CG"), "CG#1"), 1, 0) // 2 threads
	sp := NewJob(workload.NewApp(mustProfile(t, "SP"), "SP#1"), 1, 0) // 2 threads
	mg := NewJob(workload.NewApp(mustProfile(t, "MG"), "MG#1"), 1, 0) // 2 threads
	g.Add(cg)
	g.Add(sp)
	g.Add(mg)
	pl := g.Schedule(0, nil)
	// First-fit: CG + SP fill all four CPUs; MG waits.
	if len(pl) != 4 {
		t.Fatalf("placed %d threads", len(pl))
	}
	for _, p := range pl {
		if p.Thread.App == mg.App {
			t.Error("third gang should not fit")
		}
	}
	// Next quantum the list has rotated: MG now runs.
	pl2 := g.Schedule(0, nil)
	foundMG := false
	for _, p := range pl2 {
		if p.Thread.App == mg.App {
			foundMG = true
		}
	}
	if !foundMG {
		t.Error("gang rotation failed to run MG next")
	}
	if g.Name() != "GangRR" || g.Quantum() != DefaultQuantum {
		t.Error("gang identity")
	}
}

func TestGangQuantumOption(t *testing.T) {
	g := NewGang(4, WithGangQuantum(50*units.Millisecond))
	if g.Quantum() != 50*units.Millisecond {
		t.Error("gang quantum option ignored")
	}
	g2 := NewGang(4, WithGangQuantum(0))
	if g2.Quantum() != DefaultQuantum {
		t.Error("zero gang quantum should be ignored")
	}
}

func TestRoundRobinCycles(t *testing.T) {
	r := NewRoundRobin(2, 0)
	if r.Quantum() != LinuxQuantum {
		t.Error("default RR quantum should match Linux")
	}
	a := NewJob(workload.NewApp(workload.BBMA(), "A"), 1, 0)
	b := NewJob(workload.NewApp(workload.BBMA(), "B"), 1, 0)
	c := NewJob(workload.NewApp(workload.BBMA(), "C"), 1, 0)
	r.Add(a)
	r.Add(b)
	r.Add(c)
	seen := map[*workload.App]int{}
	for q := 0; q < 6; q++ {
		pl := r.Schedule(0, nil)
		if len(pl) != 2 {
			t.Fatalf("RR placed %d on 2 CPUs", len(pl))
		}
		for _, p := range pl {
			seen[p.Thread.App]++
		}
	}
	// 12 slots over 3 single-thread apps: each gets exactly 4.
	for app, n := range seen {
		if n != 4 {
			t.Errorf("%s ran %d times, want 4", app.Instance, n)
		}
	}
	r.Remove(b)
	pl := r.Schedule(0, nil)
	for _, p := range pl {
		if p.Thread.App == b.App {
			t.Error("removed app scheduled")
		}
	}
	if r.Name() != "RR" {
		t.Error(r.Name())
	}
}

func TestRoundRobinEmpty(t *testing.T) {
	r := NewRoundRobin(4, 100)
	if pl := r.Schedule(0, nil); pl != nil {
		t.Error("empty RR produced placements")
	}
}

// All schedulers must produce placements a real Machine accepts.
func TestSchedulersProduceValidPlacements(t *testing.T) {
	mkJobs := func() []*Job {
		return []*Job{
			NewJob(workload.NewApp(mustProfile(t, "CG"), "CG#1"), DefaultWindow, 0.4),
			NewJob(workload.NewApp(mustProfile(t, "Radiosity"), "R#1"), DefaultWindow, 0.4),
			NewJob(workload.NewApp(workload.BBMA(), "B#1"), DefaultWindow, 0.4),
			NewJob(workload.NewApp(workload.BBMA(), "B#2"), DefaultWindow, 0.4),
			NewJob(workload.NewApp(workload.NBBMA(), "n#1"), DefaultWindow, 0.4),
			NewJob(workload.NewApp(workload.NBBMA(), "n#2"), DefaultWindow, 0.4),
		}
	}
	scheds := []Scheduler{
		NewLatestQuantum(4, units.SustainedBusRate),
		NewQuantaWindow(4, units.SustainedBusRate),
		NewEWMAPolicy(4, units.SustainedBusRate, 0.4),
		NewOracle(4, units.SustainedBusRate),
		NewLinux(4, 3),
		NewGang(4),
		NewRoundRobin(4, 0),
	}
	for _, s := range scheds {
		t.Run(s.Name(), func(t *testing.T) {
			m, err := machine.New(machine.DefaultConfig())
			if err != nil {
				t.Fatal(err)
			}
			for _, j := range mkJobs() {
				j.PushSample(j.TrueRate())
				s.Add(j)
			}
			for q := 0; q < 30; q++ {
				pl := s.Schedule(m.Now(), m)
				if _, err := m.Step(pl, s.Quantum()); err != nil {
					t.Fatalf("quantum %d: %v (placements %v)", q, err, pl)
				}
			}
		})
	}
}
