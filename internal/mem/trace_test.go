package mem

import (
	"testing"

	"busaware/internal/units"
)

func drain(t *testing.T, tr Trace, wantRefs int) (addrs []Addr, writes int) {
	t.Helper()
	for {
		a, w, ok := tr.Next()
		if !ok {
			break
		}
		addrs = append(addrs, a)
		if w {
			writes++
		}
		if wantRefs >= 0 && len(addrs) > wantRefs {
			t.Fatalf("trace exceeded expected %d refs", wantRefs)
		}
	}
	if wantRefs >= 0 && len(addrs) != wantRefs {
		t.Fatalf("trace yielded %d refs, want %d", len(addrs), wantRefs)
	}
	return addrs, writes
}

func TestColumnWiseOrder(t *testing.T) {
	c := &ColumnWise{NumRows: 3, RowBytes: 8, Elem: 4, Write: true}
	addrs, writes := drain(t, c, c.Refs())
	want := []Addr{0, 8, 16, 4, 12, 20}
	if len(addrs) != len(want) {
		t.Fatalf("got %d refs, want %d", len(addrs), len(want))
	}
	for i := range want {
		if addrs[i] != want[i] {
			t.Errorf("ref %d = %#x, want %#x", i, addrs[i], want[i])
		}
	}
	if writes != len(want) {
		t.Errorf("writes = %d, want all %d", writes, len(want))
	}
}

func TestColumnWiseReset(t *testing.T) {
	c := &ColumnWise{NumRows: 2, RowBytes: 8, Elem: 4}
	first, _ := drain(t, c, c.Refs())
	if _, _, ok := c.Next(); ok {
		t.Error("exhausted trace should stay exhausted")
	}
	c.Reset()
	second, _ := drain(t, c, c.Refs())
	for i := range first {
		if first[i] != second[i] {
			t.Fatal("reset trace differs from original")
		}
	}
}

func TestBBMASizing(t *testing.T) {
	b := NewBBMA(256*units.KB, 64)
	// Array is 2x cache: rows = 2*256KB/64 = 8192 rows of one line each.
	if b.NumRows != 8192 {
		t.Errorf("BBMA rows = %d, want 8192", b.NumRows)
	}
	if !b.Write {
		t.Error("BBMA must write (paper: column-wise writes)")
	}
	if b.Refs() != 8192*16 {
		t.Errorf("BBMA refs = %d, want %d", b.Refs(), 8192*16)
	}
}

func TestRowWiseSequential(t *testing.T) {
	r := &RowWise{ArrayBytes: 16, Elem: 4, Passes: 2}
	addrs, _ := drain(t, r, r.Refs())
	want := []Addr{0, 4, 8, 12, 0, 4, 8, 12}
	for i := range want {
		if addrs[i] != want[i] {
			t.Errorf("ref %d = %#x, want %#x", i, addrs[i], want[i])
		}
	}
}

func TestNBBMASizing(t *testing.T) {
	n := NewNBBMA(256*units.KB, 3)
	if n.ArrayBytes != 128*units.KB {
		t.Errorf("nBBMA array = %v, want half of L2", n.ArrayBytes)
	}
	if n.Write {
		t.Error("nBBMA is read-dominated in our model")
	}
}

func TestStridedWraps(t *testing.T) {
	s := &Strided{ArrayBytes: 128, Stride: 64, Count: 4}
	addrs, _ := drain(t, s, 4)
	want := []Addr{0, 64, 0, 64}
	for i := range want {
		if addrs[i] != want[i] {
			t.Errorf("ref %d = %#x, want %#x", i, addrs[i], want[i])
		}
	}
}

func TestRandomDeterministic(t *testing.T) {
	mk := func() *Random {
		return &Random{ArrayBytes: 1 * units.MB, Count: 100, WriteFrac: 0.5, Seed: 7}
	}
	a1, w1 := drain(t, mk(), 100)
	a2, w2 := drain(t, mk(), 100)
	if w1 != w2 {
		t.Errorf("write counts differ: %d vs %d", w1, w2)
	}
	for i := range a1 {
		if a1[i] != a2[i] {
			t.Fatal("same seed produced different traces")
		}
	}
	r := mk()
	drain(t, r, 100)
	r.Reset()
	a3, _ := drain(t, r, 100)
	for i := range a1 {
		if a1[i] != a3[i] {
			t.Fatal("reset random trace differs")
		}
	}
}

func TestConcat(t *testing.T) {
	c := &Concat{Traces: []Trace{
		&RowWise{ArrayBytes: 8, Elem: 4, Passes: 1},
		&Strided{ArrayBytes: 64, Stride: 32, Count: 2, Base: 1000},
	}}
	addrs, _ := drain(t, c, 4)
	want := []Addr{0, 4, 1000, 1032}
	for i := range want {
		if addrs[i] != want[i] {
			t.Errorf("ref %d = %#x, want %#x", i, addrs[i], want[i])
		}
	}
	c.Reset()
	again, _ := drain(t, c, 4)
	for i := range want {
		if again[i] != want[i] {
			t.Fatal("concat reset broken")
		}
	}
}

func TestStreamTraceShape(t *testing.T) {
	s := &StreamTrace{Kernel: StreamTriad, ArrayBytes: 32, Passes: 1}
	// 4 elements per array, 3 operands per element (b, c reads; a write).
	addrs, writes := drain(t, s, s.Refs())
	if len(addrs) != 12 {
		t.Fatalf("triad refs = %d, want 12", len(addrs))
	}
	if writes != 4 {
		t.Errorf("triad writes = %d, want 4", writes)
	}
	if s.BytesMoved() != 96 {
		t.Errorf("bytes moved = %d, want 96", s.BytesMoved())
	}
}

func TestStreamKernelNames(t *testing.T) {
	for k, want := range map[StreamKernel]string{
		StreamCopy: "Copy", StreamScale: "Scale", StreamAdd: "Add", StreamTriad: "Triad",
	} {
		if k.String() != want {
			t.Errorf("kernel %d name = %q, want %q", k, k.String(), want)
		}
	}
	if StreamKernel(99).String() != "Unknown" {
		t.Error("unknown kernel should stringify as Unknown")
	}
}

func TestNativeStreamRuns(t *testing.T) {
	// Tiny run just to exercise the code path; bandwidth value is
	// host-dependent, only sanity-check positivity.
	for _, k := range []StreamKernel{StreamCopy, StreamScale, StreamAdd, StreamTriad} {
		res := RunNative(k, 1<<12, 2)
		if res.MBPerSec <= 0 {
			t.Errorf("%v native bandwidth = %v", k, res.MBPerSec)
		}
		if res.Bytes <= 0 {
			t.Errorf("%v bytes moved = %v", k, res.Bytes)
		}
	}
}
