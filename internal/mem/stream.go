package mem

import "busaware/internal/units"

// STREAM kernels, after McCalpin. The simulator uses these as address
// traces to calibrate the bus model the same way the authors used the
// real STREAM benchmark to calibrate their machine model (1797 MB/s,
// 29.5 trans/usec). cmd/calibrate additionally runs native in-memory
// versions (see NativeCopy etc. in native.go) on the host.

// StreamKernel identifies one of the four STREAM loops.
type StreamKernel int

// The four STREAM kernels.
const (
	StreamCopy  StreamKernel = iota // c[i] = a[i]
	StreamScale                     // b[i] = q*c[i]
	StreamAdd                       // c[i] = a[i]+b[i]
	StreamTriad                     // a[i] = b[i]+q*c[i]
)

func (k StreamKernel) String() string {
	switch k {
	case StreamCopy:
		return "Copy"
	case StreamScale:
		return "Scale"
	case StreamAdd:
		return "Add"
	case StreamTriad:
		return "Triad"
	default:
		return "Unknown"
	}
}

// arrays returns the number of source and destination arrays touched
// per iteration by kernel k.
func (k StreamKernel) arrays() (reads, writes int) {
	switch k {
	case StreamCopy, StreamScale:
		return 1, 1
	case StreamAdd, StreamTriad:
		return 2, 1
	default:
		return 0, 0
	}
}

// StreamTrace generates the reference stream of one STREAM kernel over
// arrays of ArrayBytes each (8-byte elements), for Passes passes.
// Arrays are laid out back to back starting at Base. STREAM arrays are
// sized to dwarf the cache, so nearly every line fetched is a miss —
// which is the point.
type StreamTrace struct {
	Kernel     StreamKernel
	Base       Addr
	ArrayBytes units.Bytes
	Passes     int

	i     int // element index within pass
	phase int // which operand of the current element
	pass  int
	done  bool
}

const streamElem = 8 // float64 elements

// Next implements Trace.
func (s *StreamTrace) Next() (Addr, bool, bool) {
	if s.done {
		return 0, false, false
	}
	reads, _ := s.Kernel.arrays()
	n := int(s.ArrayBytes) / streamElem
	// Operand order: all source arrays then the destination.
	arrayIdx := s.phase
	write := s.phase == reads
	addr := s.Base + Addr(arrayIdx)*Addr(s.ArrayBytes) + Addr(s.i*streamElem)
	s.phase++
	if s.phase > reads {
		s.phase = 0
		s.i++
		if s.i >= n {
			s.i = 0
			s.pass++
			if s.pass >= s.Passes {
				s.done = true
			}
		}
	}
	return addr, write, true
}

// Reset implements Trace.
func (s *StreamTrace) Reset() { s.i, s.phase, s.pass, s.done = 0, 0, 0, false }

// Refs returns the total number of references the trace will produce.
func (s *StreamTrace) Refs() int {
	reads, writes := s.Kernel.arrays()
	return s.Passes * (int(s.ArrayBytes) / streamElem) * (reads + writes)
}

// BytesMoved returns the bytes of memory traffic one pass of the kernel
// moves, using STREAM's own accounting (each array touched once per
// iteration).
func (s *StreamTrace) BytesMoved() units.Bytes {
	reads, writes := s.Kernel.arrays()
	return units.Bytes(reads+writes) * s.ArrayBytes * units.Bytes(s.Passes)
}
