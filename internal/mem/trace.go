// Package mem generates synthetic memory-address traces.
//
// The paper's two microbenchmarks are defined by their access patterns
// over a 2-D array relative to the Xeon's 256KB L2 cache:
//
//   - BBMA: array twice the L2 size, line-sized rows, written
//     column-wise -> every access misses (~0% hit rate), back-to-back
//     bus transactions (23.6 trans/usec measured).
//   - nBBMA: array half the L2 size, accessed row-wise -> after the
//     compulsory misses everything hits (~100% hit rate,
//     0.0037 trans/usec).
//
// This package reproduces those patterns (and a few more used by tests
// and examples) as address streams that internal/cache consumes, so the
// hit rates in the paper are derived rather than asserted.
package mem

import (
	"math/rand"

	"busaware/internal/units"
)

// Addr is a byte address in a synthetic address space.
type Addr uint64

// Trace yields a sequence of memory references.
type Trace interface {
	// Next returns the next reference; ok is false when the trace is
	// exhausted. Infinite traces never return ok == false.
	Next() (addr Addr, write bool, ok bool)
	// Reset rewinds the trace to its beginning.
	Reset()
}

// ColumnWise walks an array of NumRows rows x RowBytes bytes column
// wise with element size Elem: it touches the first element of every
// row, then the second element of every row, and so on — the BBMA
// pattern. With RowBytes equal to the cache line size and the array
// larger than the cache, every reference misses.
type ColumnWise struct {
	Base     Addr
	NumRows  int
	RowBytes units.Bytes
	Elem     units.Bytes
	Write    bool

	row, col int
	done     bool
}

// NewBBMA returns the paper's bandwidth-consuming microbenchmark
// pattern sized against the given L2 capacity and line size: an array
// twice the cache size whose rows are one cache line long, written
// column-wise with 4-byte elements.
func NewBBMA(l2Size, lineSize units.Bytes) *ColumnWise {
	return &ColumnWise{
		NumRows:  int(2 * l2Size / lineSize),
		RowBytes: lineSize,
		Elem:     4,
		Write:    true,
	}
}

// Next implements Trace.
func (c *ColumnWise) Next() (Addr, bool, bool) {
	if c.done {
		return 0, false, false
	}
	addr := c.Base + Addr(c.row)*Addr(c.RowBytes) + Addr(c.col)*Addr(c.Elem)
	c.row++
	if c.row == c.NumRows {
		c.row = 0
		c.col++
		if Addr(c.col)*Addr(c.Elem) >= Addr(c.RowBytes) {
			c.done = true
		}
	}
	return addr, c.Write, true
}

// Reset implements Trace.
func (c *ColumnWise) Reset() { c.row, c.col, c.done = 0, 0, false }

// Refs returns the total number of references the trace will produce.
func (c *ColumnWise) Refs() int {
	return c.NumRows * int(c.RowBytes/c.Elem)
}

// RowWise walks an array sequentially with element size Elem, Passes
// times — the nBBMA pattern when the array is half the cache size.
type RowWise struct {
	Base       Addr
	ArrayBytes units.Bytes
	Elem       units.Bytes
	Passes     int
	Write      bool

	off  units.Bytes
	pass int
	done bool
}

// NewNBBMA returns the paper's bus-idle microbenchmark pattern: an
// array half the cache size read row-wise repeatedly. After one
// compulsory pass the hit rate approaches 100%.
func NewNBBMA(l2Size units.Bytes, passes int) *RowWise {
	return &RowWise{ArrayBytes: l2Size / 2, Elem: 4, Passes: passes}
}

// Next implements Trace.
func (r *RowWise) Next() (Addr, bool, bool) {
	if r.done {
		return 0, false, false
	}
	addr := r.Base + Addr(r.off)
	r.off += r.Elem
	if r.off >= r.ArrayBytes {
		r.off = 0
		r.pass++
		if r.pass == r.Passes {
			r.done = true
		}
	}
	return addr, r.Write, true
}

// Reset implements Trace.
func (r *RowWise) Reset() { r.off, r.pass, r.done = 0, 0, false }

// Refs returns the total number of references the trace will produce.
func (r *RowWise) Refs() int {
	return r.Passes * int(r.ArrayBytes/r.Elem)
}

// Strided emits references Base, Base+Stride, ... wrapping at
// ArrayBytes, for Count references. A stride equal to the line size
// defeats spatial locality; a stride of the element size maximizes it.
type Strided struct {
	Base       Addr
	ArrayBytes units.Bytes
	Stride     units.Bytes
	Count      int
	Write      bool

	i   int
	off units.Bytes
}

// Next implements Trace.
func (s *Strided) Next() (Addr, bool, bool) {
	if s.i >= s.Count {
		return 0, false, false
	}
	addr := s.Base + Addr(s.off)
	s.off += s.Stride
	if s.off >= s.ArrayBytes {
		s.off -= s.ArrayBytes
	}
	s.i++
	return addr, s.Write, true
}

// Reset implements Trace.
func (s *Strided) Reset() { s.i, s.off = 0, 0 }

// Random emits Count uniformly random references within ArrayBytes.
// It is deterministic for a given Seed.
type Random struct {
	Base       Addr
	ArrayBytes units.Bytes
	Count      int
	WriteFrac  float64
	Seed       int64

	rng *rand.Rand
	i   int
}

// Next implements Trace.
func (r *Random) Next() (Addr, bool, bool) {
	if r.rng == nil {
		r.rng = rand.New(rand.NewSource(r.Seed))
	}
	if r.i >= r.Count {
		return 0, false, false
	}
	r.i++
	addr := r.Base + Addr(r.rng.Int63n(int64(r.ArrayBytes)))
	write := r.rng.Float64() < r.WriteFrac
	return addr, write, true
}

// Reset implements Trace.
func (r *Random) Reset() {
	r.rng = rand.New(rand.NewSource(r.Seed))
	r.i = 0
}

// Concat plays traces back to back.
type Concat struct {
	Traces []Trace
	cur    int
}

// Next implements Trace.
func (c *Concat) Next() (Addr, bool, bool) {
	for c.cur < len(c.Traces) {
		if a, w, ok := c.Traces[c.cur].Next(); ok {
			return a, w, true
		}
		c.cur++
	}
	return 0, false, false
}

// Reset implements Trace.
func (c *Concat) Reset() {
	for _, t := range c.Traces {
		t.Reset()
	}
	c.cur = 0
}
