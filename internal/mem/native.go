package mem

import (
	"time"

	"busaware/internal/units"
)

// Native STREAM kernels. These run on the host and measure real memory
// bandwidth, the same way the authors calibrated their Xeon with
// McCalpin's STREAM. cmd/calibrate reports them next to the simulated
// numbers so a user can re-base the simulator on their own machine.

// NativeResult is the outcome of one native kernel run.
type NativeResult struct {
	Kernel     StreamKernel
	Bytes      units.Bytes // bytes moved, STREAM accounting
	Elapsed    time.Duration
	MBPerSec   float64
	TransPerUs units.Rate // bandwidth expressed in 64B bus transactions
}

// RunNative executes kernel k over float64 arrays of n elements, iters
// times, and reports the best (maximum) bandwidth across iterations,
// following STREAM convention.
func RunNative(k StreamKernel, n, iters int) NativeResult {
	a := make([]float64, n)
	b := make([]float64, n)
	c := make([]float64, n)
	for i := range a {
		a[i] = 1
		b[i] = 2
		c[i] = 0
	}
	const q = 3.0
	reads, writes := k.arrays()
	bytesMoved := units.Bytes((reads + writes) * 8 * n)

	best := time.Duration(1<<62 - 1)
	for it := 0; it < iters; it++ {
		start := time.Now()
		switch k {
		case StreamCopy:
			copy(c, a)
		case StreamScale:
			for i := range b {
				b[i] = q * c[i]
			}
		case StreamAdd:
			for i := range c {
				c[i] = a[i] + b[i]
			}
		case StreamTriad:
			for i := range a {
				a[i] = b[i] + q*c[i]
			}
		}
		if d := time.Since(start); d < best {
			best = d
		}
	}
	if best <= 0 {
		best = time.Nanosecond
	}
	mbps := float64(bytesMoved) / 1e6 / best.Seconds()
	return NativeResult{
		Kernel:     k,
		Bytes:      bytesMoved,
		Elapsed:    best,
		MBPerSec:   mbps,
		TransPerUs: units.RateFromMBPerSec(mbps),
	}
}
