package workload

import (
	"busaware/internal/cache"
	"busaware/internal/units"
)

// Server-class profiles — the paper's future-work direction ("we plan
// to test our scheduler with I/O and network-intensive workloads which
// stress the bus, using scientific applications, web and database
// servers"), made concrete as synthetic profiles.
//
// Unlike the barrier-synchronized scientific codes, server threads
// handle independent requests: no gang barriers, bursty bus usage
// driven by request trains, and (for the database) a large dirty
// working set that makes migrations expensive.

// WebServer returns a request-driven two-thread profile: short bursts
// of memory traffic (request parsing + response assembly streaming
// through the NIC's DMA region) separated by longer low-traffic
// stretches. The irregular burst train makes it, like Raytrace, a
// stress test for the Latest Quantum estimator.
func WebServer() Profile {
	return Profile{
		Name:     "WebServer",
		Threads:  2,
		SoloTime: 12 * units.Second,
		Phases: []Phase{
			{Duration: 30 * ms, Demand: 9.0, StallFrac: 0.55},
			{Duration: 110 * ms, Demand: 0.9, StallFrac: 0.07},
			{Duration: 50 * ms, Demand: 9.0, StallFrac: 0.55},
			{Duration: 160 * ms, Demand: 0.9, StallFrac: 0.07},
		},
		WorkingSet: cache.WorkingSet{Bytes: 96 * units.KB, HitRate: 0.9, DirtyFrac: 0.3},
		// Request handlers rebuild state quickly after migrating.
		MigrationPenalty: 800,
		// Independent requests: no barriers.
	}
}

// Database returns an OLTP-ish two-thread profile: sustained moderate
// bus traffic from random index probes, a cache-resident buffer pool
// (large, dirty working set) and correspondingly painful migrations.
func Database() Profile {
	return Profile{
		Name:     "Database",
		Threads:  2,
		SoloTime: 13 * units.Second,
		Phases: []Phase{
			{Duration: 200 * ms, Demand: 4.8, StallFrac: 0.38},
			{Duration: 60 * ms, Demand: 7.5, StallFrac: 0.5},
		},
		WorkingSet:       cache.WorkingSet{Bytes: 240 * units.KB, HitRate: 0.96, DirtyFrac: 0.6},
		MigrationPenalty: 5000,
	}
}

// ServerProfiles returns the server-class registry additions.
func ServerProfiles() []Profile {
	return []Profile{WebServer(), Database()}
}
