package workload

import (
	"strings"
	"testing"
)

func instanceNames(apps []*App) []string {
	names := make([]string, len(apps))
	for i, a := range apps {
		names[i] = a.Instance
	}
	return names
}

func TestParseSpec(t *testing.T) {
	tests := []struct {
		name string
		spec string
		want []string // instance names, in order
	}{
		{"single", "CG", []string{"CG#1"}},
		{"multiplicity", "CG x2", []string{"CG#1", "CG#2"}},
		{"mix", "CG x2, BBMA x4", []string{"CG#1", "CG#2", "BBMA#1", "BBMA#2", "BBMA#3", "BBMA#4"}},
		{"repeat counts across items", "CG, CG x2", []string{"CG#1", "CG#2", "CG#3"}},
		{"interleaved profiles keep order", "CG, nBBMA, CG", []string{"CG#1", "nBBMA#1", "CG#2"}},
		{"whitespace", "  Raytrace x2 ,  nBBMA x4  ", []string{"Raytrace#1", "Raytrace#2", "nBBMA#1", "nBBMA#2", "nBBMA#3", "nBBMA#4"}},
		{"empty items skipped", "CG,,BBMA,", []string{"CG#1", "BBMA#1"}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			apps, err := ParseSpec(tt.spec)
			if err != nil {
				t.Fatalf("ParseSpec(%q): %v", tt.spec, err)
			}
			got := instanceNames(apps)
			if strings.Join(got, ",") != strings.Join(tt.want, ",") {
				t.Errorf("ParseSpec(%q) = %v, want %v", tt.spec, got, tt.want)
			}
			for _, a := range apps {
				if len(a.Threads) != a.Profile.Threads {
					t.Errorf("%s: %d threads, profile wants %d", a.Instance, len(a.Threads), a.Profile.Threads)
				}
			}
		})
	}
}

func TestParseSpecErrors(t *testing.T) {
	tests := []struct {
		name    string
		spec    string
		wantSub string // substring expected in the error
	}{
		{"unknown app", "NoSuchApp x2", "unknown application"},
		{"unknown app alone", "Quux", "unknown application"},
		{"zero count", "CG x0", "bad multiplicity"},
		{"negative count", "CG x-1", "bad multiplicity"},
		{"non-numeric count", "CG xtwo", "bad multiplicity"},
		{"empty spec", "", "empty workload"},
		{"only separators", " , , ", "empty workload"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			apps, err := ParseSpec(tt.spec)
			if err == nil {
				t.Fatalf("ParseSpec(%q) = %v, want error", tt.spec, instanceNames(apps))
			}
			if !strings.Contains(err.Error(), tt.wantSub) {
				t.Errorf("ParseSpec(%q) error = %q, want substring %q", tt.spec, err, tt.wantSub)
			}
		})
	}
}

func TestCanonicalSpec(t *testing.T) {
	tests := []struct {
		spec, want string
	}{
		{"CG x2, BBMA x4", "CG x2, BBMA x4"},
		{"CG, CG, BBMA x4", "CG x2, BBMA x4"},
		{"CG,CG,BBMA,BBMA,BBMA,BBMA", "CG x2, BBMA x4"},
		{"CG, nBBMA, CG", "CG, nBBMA, CG"},
		{"Raytrace", "Raytrace"},
	}
	for _, tt := range tests {
		apps, err := ParseSpec(tt.spec)
		if err != nil {
			t.Fatalf("ParseSpec(%q): %v", tt.spec, err)
		}
		if got := CanonicalSpec(apps); got != tt.want {
			t.Errorf("CanonicalSpec(ParseSpec(%q)) = %q, want %q", tt.spec, got, tt.want)
		}
	}
	// Canonicalization is a fixed point: re-parsing the canonical spec
	// reproduces the same instances and the same canonical form.
	apps, err := ParseSpec("CG, CG, BBMA x2, BBMA x2")
	if err != nil {
		t.Fatal(err)
	}
	canon := CanonicalSpec(apps)
	re, err := ParseSpec(canon)
	if err != nil {
		t.Fatalf("ParseSpec(%q): %v", canon, err)
	}
	if CanonicalSpec(re) != canon {
		t.Errorf("canonical spec not a fixed point: %q -> %q", canon, CanonicalSpec(re))
	}
	if strings.Join(instanceNames(re), ",") != strings.Join(instanceNames(apps), ",") {
		t.Errorf("re-parsed instances differ: %v vs %v", instanceNames(re), instanceNames(apps))
	}
}
