// Package workload models the applications the paper schedules: the
// NAS and Splash-2 codes of Figure 1, the BBMA / nBBMA antagonist
// microbenchmarks, and generated synthetic mixes.
//
// An application is a gang of threads; each thread executes a cyclic
// list of phases. A phase is a stretch of solo-equivalent execution
// time with a constant bus-transaction demand and memory-stall
// fraction. Uniform applications have one phase; bursty ones
// (Raytrace, LU CB) alternate phases, which is what destabilizes the
// "Latest Quantum" policy in the paper's Figure 2B.
//
// The simulator advances threads in solo-equivalent microseconds: the
// bus model turns wall-clock quantum time into solo-equivalent
// progress via the contention speed factor, and the thread consumes
// its phases accordingly while its virtual performance counters
// accumulate the transactions actually issued.
package workload

import (
	"errors"
	"fmt"
	"math"

	"busaware/internal/cache"
	"busaware/internal/perfctr"
	"busaware/internal/units"
)

// Phase is a stretch of execution with uniform bus behaviour.
type Phase struct {
	// Duration is the phase length in solo-equivalent usec.
	Duration units.Time
	// Demand is the per-thread solo bus transaction rate, trans/usec.
	Demand units.Rate
	// StallFrac is the fraction of solo time stalled on the bus.
	StallFrac float64
}

// Profile describes an application type.
type Profile struct {
	// Name identifies the application ("CG", "BBMA", ...).
	Name string
	// Threads is the gang size; the schedulers allocate processors to
	// all of them or none (gang-like policies) .
	Threads int
	// SoloTime is the solo-equivalent execution time of each thread.
	// Zero or negative means the application never finishes — used for
	// the antagonist microbenchmarks, which run for the whole
	// experiment.
	SoloTime units.Time
	// Phases is the cyclic phase list; must be non-empty.
	Phases []Phase
	// WorkingSet describes the warm-cache footprint, which prices
	// thread migrations.
	WorkingSet cache.WorkingSet
	// MigrationPenalty is the solo-equivalent extra work a thread pays
	// after running on a different processor than last time, on top of
	// the refill bus traffic implied by WorkingSet. Applications with
	// very high hit rates (LU CB, Water-nsqr) have large penalties —
	// the paper singles them out as migration-sensitive.
	MigrationPenalty units.Time
	// BarrierInterval is the solo-equivalent execution time between
	// synchronization barriers. The paper's applications are OpenMP /
	// Splash-2 codes that barrier frequently: a thread that runs ahead
	// of a descheduled sibling reaches the next barrier and spin-waits,
	// burning its processor without progress or bus traffic. This is
	// the classic motivation for the gang-like allocation the paper's
	// policies use: they always run all of an application's threads
	// together, so its threads never spin at barriers. Zero means no
	// barriers (the single-threaded microbenchmarks).
	BarrierInterval units.Time
}

// Validate reports profile construction errors.
func (p Profile) Validate() error {
	if p.Name == "" {
		return errors.New("workload: profile needs a name")
	}
	if p.Threads < 1 {
		return fmt.Errorf("workload: %s: threads = %d", p.Name, p.Threads)
	}
	if len(p.Phases) == 0 {
		return fmt.Errorf("workload: %s: no phases", p.Name)
	}
	for i, ph := range p.Phases {
		if ph.Duration <= 0 {
			return fmt.Errorf("workload: %s: phase %d duration %v", p.Name, i, ph.Duration)
		}
		if ph.Demand < 0 {
			return fmt.Errorf("workload: %s: phase %d negative demand", p.Name, i)
		}
		if ph.StallFrac < 0 || ph.StallFrac > 1 {
			return fmt.Errorf("workload: %s: phase %d stall %v", p.Name, i, ph.StallFrac)
		}
	}
	if p.MigrationPenalty < 0 {
		return fmt.Errorf("workload: %s: negative migration penalty", p.Name)
	}
	if p.BarrierInterval < 0 {
		return fmt.Errorf("workload: %s: negative barrier interval", p.Name)
	}
	return nil
}

// Endless reports whether the application never completes.
func (p Profile) Endless() bool { return p.SoloTime <= 0 }

// SoloRate returns the application's cumulative steady-state solo
// transaction rate across all threads — the quantity plotted as the
// black bars of Figure 1A. For multi-phase profiles it is the
// time-weighted mean over one phase cycle.
func (p Profile) SoloRate() units.Rate {
	var total units.Time
	var weighted float64
	for _, ph := range p.Phases {
		total += ph.Duration
		weighted += float64(ph.Demand) * float64(ph.Duration)
	}
	if total == 0 {
		return 0
	}
	return units.Rate(weighted/float64(total)) * units.Rate(p.Threads)
}

// MeanStallFrac returns the time-weighted mean stall fraction.
func (p Profile) MeanStallFrac() float64 {
	var total units.Time
	var weighted float64
	for _, ph := range p.Phases {
		total += ph.Duration
		weighted += ph.StallFrac * float64(ph.Duration)
	}
	if total == 0 {
		return 0
	}
	return weighted / float64(total)
}

// Thread is one runnable thread of an App instance.
type Thread struct {
	App *App
	// Index is the thread's position within its gang.
	Index int
	// Counters is the thread's virtual performance counter file.
	Counters perfctr.Counters

	// phase progress, all in solo-equivalent usec
	phaseIdx  int
	phaseUsed float64 // solo usec consumed within the current phase
	progress  float64 // total solo usec of real work completed
	debt      float64 // migration penalty work still owed
	spun      float64 // solo-equivalent usec wasted spinning at barriers
}

// CPUFrequencyMHz converts simulated time to cycle counts for the
// CYCLES counter; the paper's Xeons ran at 1.4 GHz.
const CPUFrequencyMHz = 1400

// Done reports whether the thread has completed its solo work.
func (t *Thread) Done() bool {
	if t.App.Profile.Endless() {
		return false
	}
	return t.progress >= float64(t.App.Profile.SoloTime)
}

// Remaining returns the outstanding solo-equivalent work (including
// migration debt), or +Inf for endless threads.
func (t *Thread) Remaining() float64 {
	if t.App.Profile.Endless() {
		return math.Inf(1)
	}
	rem := float64(t.App.Profile.SoloTime) - t.progress + t.debt
	if rem < 0 {
		rem = 0
	}
	return rem
}

// Progress returns completed solo-equivalent work in usec.
func (t *Thread) Progress() float64 { return t.progress }

// SpunTime returns the solo-equivalent time wasted spinning at
// barriers so far.
func (t *Thread) SpunTime() float64 { return t.spun }

// CurrentPhase returns the phase governing the thread right now.
func (t *Thread) CurrentPhase() Phase {
	return t.App.Profile.Phases[t.phaseIdx]
}

// PhasePos reports the thread's position in its cyclic phase list: the
// current phase index and the solo-equivalent time consumed within it.
// The event-driven engine uses it to bound leaps at phase boundaries
// and to prove gang lockstep.
func (t *Thread) PhasePos() (idx int, used float64) {
	return t.phaseIdx, t.phaseUsed
}

// Demand returns the thread's instantaneous solo bus demand. While a
// thread is repaying migration debt it runs at memory speed: demand is
// dominated by the refill stream. A thread spin-waiting at a barrier
// hits in cache and issues almost nothing.
func (t *Thread) Demand() units.Rate {
	if t.debt > 0 {
		// Refilling the working set streams lines from memory.
		return maxRate(t.CurrentPhase().Demand, RefillDemand)
	}
	if t.AtBarrier() {
		return SpinDemand
	}
	return t.CurrentPhase().Demand
}

// StallFrac returns the thread's instantaneous stall fraction.
func (t *Thread) StallFrac() float64 {
	if t.debt > 0 {
		return maxf(t.CurrentPhase().StallFrac, RefillStallFrac)
	}
	if t.AtBarrier() {
		return 0
	}
	return t.CurrentPhase().StallFrac
}

// SpinDemand is the bus demand of a thread spinning on a cached
// synchronization flag: essentially nil.
const SpinDemand units.Rate = 0.01

// AtBarrier reports whether the thread has run ahead of its slowest
// sibling by a full barrier interval and must spin until the sibling
// catches up.
func (t *Thread) AtBarrier() bool {
	interval := t.App.Profile.BarrierInterval
	if interval <= 0 || len(t.App.Threads) < 2 || t.Done() {
		return false
	}
	return t.progress >= t.App.minProgress(t)+float64(interval)
}

// BarrierHeadroom returns how much further the thread may progress
// before it would spin at a barrier, or +Inf without barriers — the
// exported view of barrierCap the event-driven engine bounds leap
// horizons with.
func (t *Thread) BarrierHeadroom() float64 { return t.barrierCap() }

// barrierCap returns how much further the thread may progress before
// spinning, or +Inf without barriers.
func (t *Thread) barrierCap() float64 {
	interval := t.App.Profile.BarrierInterval
	if interval <= 0 || len(t.App.Threads) < 2 {
		return math.Inf(1)
	}
	cap := t.App.minProgress(t) + float64(interval) - t.progress
	if cap < 0 {
		return 0
	}
	return cap
}

// RefillDemand and RefillStallFrac characterize the working-set refill
// stream a freshly migrated thread issues: back-to-back line fills,
// essentially the BBMA pattern.
const (
	RefillDemand    units.Rate = 20
	RefillStallFrac            = 0.95
)

// Migrate charges the thread the migration cost: extra solo-equivalent
// work plus the refill bus transactions, which land on the counters as
// they are replayed by Advance.
func (t *Thread) Migrate(lineSize units.Bytes) {
	t.AddDebt(float64(t.App.Profile.MigrationPenalty))
	_ = lineSize // refill traffic is produced by the elevated Demand while debt > 0
}

// AddDebt charges the thread extra solo-equivalent work (usec) that
// must be repaid before real progress resumes. The machine model uses
// it for cache pollution after time-sharing a processor, and the
// simulator for CPU-manager overhead.
func (t *Thread) AddDebt(usec float64) {
	if usec > 0 {
		t.debt += usec
	}
}

// Debt returns the outstanding penalty work in solo-equivalent usec.
func (t *Thread) Debt() float64 { return t.debt }

// Advance runs the thread for soloUsec of solo-equivalent time (i.e.
// wall time multiplied by the bus model's speed factor), consuming
// migration debt first, then real phase work. It updates the virtual
// counters with the transactions issued at rate actualRate (the bus
// grant) over wallUsec of wall-clock time.
func (t *Thread) Advance(soloUsec float64, wallUsec float64, actualRate units.Rate) {
	// Counters reflect wall-clock activity.
	t.Counters.Add(perfctr.EventCycles, uint64(wallUsec*CPUFrequencyMHz))
	t.Counters.Add(perfctr.EventBusTransAny, uint64(float64(actualRate)*wallUsec))
	miss := 1 - t.App.Profile.WorkingSet.HitRate
	if miss > 0 {
		trans := float64(actualRate) * wallUsec
		refs := trans / miss
		t.Counters.Add(perfctr.EventL2Refs, uint64(refs))
		t.Counters.Add(perfctr.EventL2Misses, uint64(trans))
	}
	t.AdvanceWork(soloUsec)
}

// AdvanceWork is the debt/barrier/progress/phase portion of Advance,
// without the performance-counter updates. The event-driven simulation
// engine replays constant stretches with it: counter increments batch
// exactly across identical quanta (modular addition is associative),
// but floating-point progress accumulation is not, so the engine
// repeats precisely these operations micro-step by micro-step to stay
// bit-identical with stepped execution.
func (t *Thread) AdvanceWork(soloUsec float64) {
	if soloUsec < 0 {
		soloUsec = 0
	}
	// Debt repayment does not advance real progress.
	if t.debt > 0 {
		pay := math.Min(t.debt, soloUsec)
		t.debt -= pay
		soloUsec -= pay
	}
	if soloUsec <= 0 || t.Done() {
		return
	}
	// Barrier synchronization: progress beyond a barrier interval ahead
	// of the slowest sibling is spin-waiting, not work.
	if cap := t.barrierCap(); soloUsec > cap {
		t.spun += soloUsec - cap
		soloUsec = cap
	}
	if soloUsec <= 0 {
		return
	}
	t.progress += soloUsec
	// Walk the cyclic phase list.
	t.phaseUsed += soloUsec
	for {
		d := float64(t.CurrentPhase().Duration)
		if t.phaseUsed < d {
			break
		}
		t.phaseUsed -= d
		t.phaseIdx++
		if t.phaseIdx == len(t.App.Profile.Phases) {
			t.phaseIdx = 0
		}
	}
}

// ReplayAdvance is AdvanceWork's leap-replay fast path: one quantum's
// micro-step advances, applied back to back. It performs the bitwise-
// identical floating-point updates for a thread that owes no debt, has
// not finished, and stays strictly inside its barrier headroom — the
// preconditions the event engine's leap horizon establishes before
// replaying a quantum. Skipping the debt, completion and barrier checks
// (each a guaranteed no-op under those preconditions) removes the
// sibling scans that would otherwise dominate replay cost, and batching
// the whole quantum keeps progress and phase position in registers.
// Batching across threads is sound because a replayed advance touches
// only the thread's own state: per-thread float sequences are
// independent, so the cross-thread interleaving of the stepped loop
// does not affect any thread's operation order.
func (t *Thread) ReplayAdvance(soloPerSub []float64) {
	progress, used := t.progress, t.phaseUsed
	phases := t.App.Profile.Phases
	idx := t.phaseIdx
	for _, s := range soloPerSub {
		if s <= 0 {
			continue
		}
		progress += s
		used += s
		for {
			d := float64(phases[idx].Duration)
			if used < d {
				break
			}
			used -= d
			idx++
			if idx == len(phases) {
				idx = 0
			}
		}
	}
	t.progress, t.phaseUsed, t.phaseIdx = progress, used, idx
}

// App is one running instance of a Profile.
type App struct {
	Profile  Profile
	Instance string // distinguishes multiple copies, e.g. "CG#1"
	Threads  []*Thread

	// Arrived and Completed are stamped by the simulator.
	Arrived   units.Time
	Completed units.Time
	completed bool

	// DepartedAt is stamped when a scenario departure retires the app
	// before it completes; departed apps report no turnaround.
	DepartedAt units.Time
	departed   bool
}

// NewApp instantiates profile p. It panics on an invalid profile;
// profiles come from the registry or generators, both of which
// validate.
func NewApp(p Profile, instance string) *App {
	if err := p.Validate(); err != nil {
		panic(err)
	}
	a := &App{Profile: p, Instance: instance}
	a.Threads = make([]*Thread, p.Threads)
	for i := range a.Threads {
		a.Threads[i] = &Thread{App: a, Index: i}
	}
	return a
}

// CloneFresh returns a pristine copy of the app: same profile,
// instance name and arrival time, with zeroed progress and counters —
// exactly what NewApp would have produced for the same inputs.
// Run-time state accumulated so far is deliberately not copied; the
// shadow engine uses CloneFresh before any quantum has run to execute
// the same workload on both simulation cores.
func (a *App) CloneFresh() *App {
	c := NewApp(a.Profile, a.Instance)
	c.Arrived = a.Arrived
	return c
}

// minProgress returns the smallest progress among the app's threads
// other than skip (or including all if skip is nil).
func (a *App) minProgress(skip *Thread) float64 {
	min := math.Inf(1)
	for _, th := range a.Threads {
		if th == skip {
			continue
		}
		if th.progress < min {
			min = th.progress
		}
	}
	if math.IsInf(min, 1) {
		return 0
	}
	return min
}

// Done reports whether every thread has finished.
func (a *App) Done() bool {
	if a.Profile.Endless() {
		return false
	}
	for _, t := range a.Threads {
		if !t.Done() {
			return false
		}
	}
	return true
}

// MarkCompleted stamps the completion time once.
func (a *App) MarkCompleted(now units.Time) {
	if !a.completed {
		a.completed = true
		a.Completed = now
	}
}

// IsMarkedCompleted reports whether MarkCompleted has run.
func (a *App) IsMarkedCompleted() bool { return a.completed }

// MarkDeparted stamps the departure time once: the scenario engine
// retired the app at now, before completion. Departure does not mark
// the app completed, so Turnaround stays zero.
func (a *App) MarkDeparted(now units.Time) {
	if !a.departed {
		a.departed = true
		a.DepartedAt = now
	}
}

// IsDeparted reports whether MarkDeparted has run. CloneFresh resets
// it along with the rest of the run-time state.
func (a *App) IsDeparted() bool { return a.departed }

// Turnaround returns completion minus arrival; zero if not completed.
func (a *App) Turnaround() units.Time {
	if !a.completed {
		return 0
	}
	return a.Completed - a.Arrived
}

func maxRate(a, b units.Rate) units.Rate {
	if a > b {
		return a
	}
	return b
}

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}
