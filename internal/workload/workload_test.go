package workload

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"busaware/internal/perfctr"
	"busaware/internal/units"
)

func TestProfileValidate(t *testing.T) {
	good := Profile{Name: "x", Threads: 1, Phases: []Phase{{Duration: 1, Demand: 1, StallFrac: 0.5}}}
	if err := good.Validate(); err != nil {
		t.Errorf("valid profile rejected: %v", err)
	}
	bad := []Profile{
		{},
		{Name: "x"},
		{Name: "x", Threads: 1},
		{Name: "x", Threads: 1, Phases: []Phase{{Duration: 0}}},
		{Name: "x", Threads: 1, Phases: []Phase{{Duration: 1, Demand: -1}}},
		{Name: "x", Threads: 1, Phases: []Phase{{Duration: 1, StallFrac: 2}}},
		{Name: "x", Threads: 1, Phases: []Phase{{Duration: 1}}, MigrationPenalty: -1},
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("bad profile %d accepted", i)
		}
	}
}

func TestSoloRateWeighting(t *testing.T) {
	p := Profile{
		Name: "x", Threads: 2,
		Phases: []Phase{
			{Duration: 100, Demand: 10, StallFrac: 0.5},
			{Duration: 300, Demand: 2, StallFrac: 0.1},
		},
	}
	// Per thread: (10*100 + 2*300)/400 = 4; cumulative = 8.
	if got := p.SoloRate(); math.Abs(float64(got)-8) > 1e-9 {
		t.Errorf("SoloRate = %v, want 8", got)
	}
	// Stall: (0.5*100 + 0.1*300)/400 = 0.2
	if got := p.MeanStallFrac(); math.Abs(got-0.2) > 1e-9 {
		t.Errorf("MeanStallFrac = %v, want 0.2", got)
	}
}

func TestPaperAppsOrderingAndRange(t *testing.T) {
	apps := PaperApps()
	if len(apps) != 11 {
		t.Fatalf("got %d paper apps, want 11", len(apps))
	}
	if apps[0].Name != "Radiosity" || apps[len(apps)-1].Name != "CG" {
		t.Errorf("order endpoints: %s ... %s", apps[0].Name, apps[len(apps)-1].Name)
	}
	prev := units.Rate(-1)
	for _, p := range apps {
		if err := p.Validate(); err != nil {
			t.Errorf("%s invalid: %v", p.Name, err)
		}
		r := p.SoloRate()
		if r < prev {
			t.Errorf("%s breaks increasing-rate order (%v < %v)", p.Name, r, prev)
		}
		prev = r
		if p.Threads != 2 {
			t.Errorf("%s threads = %d, want 2 (paper runs 2-thread instances)", p.Name, p.Threads)
		}
	}
	// Paper: range 0.48 .. 23.31 trans/usec.
	if lo := apps[0].SoloRate(); math.Abs(float64(lo)-0.48) > 0.01 {
		t.Errorf("min solo rate = %v, want 0.48", lo)
	}
	if hi := apps[len(apps)-1].SoloRate(); math.Abs(float64(hi)-23.31) > 0.01 {
		t.Errorf("max solo rate = %v, want 23.31", hi)
	}
}

func TestRaytraceCalibration(t *testing.T) {
	p, ok := ByName("Raytrace")
	if !ok {
		t.Fatal("Raytrace not in registry")
	}
	// Four Raytrace threads yield 34.89 trans/usec in the paper ->
	// two-thread instance ~17.45. Accept ±3%.
	got := float64(p.SoloRate())
	if math.Abs(got-17.45)/17.45 > 0.03 {
		t.Errorf("Raytrace solo rate = %.2f, want ~17.45", got)
	}
	if len(p.Phases) < 2 {
		t.Error("Raytrace must be bursty (multiple phases)")
	}
}

func TestLUCalibration(t *testing.T) {
	p, ok := ByName("LU CB")
	if !ok {
		t.Fatal("LU CB not in registry")
	}
	if p.WorkingSet.HitRate < 0.99 {
		t.Errorf("LU CB hit rate = %v, paper says 99.53%%", p.WorkingSet.HitRate)
	}
	if p.MigrationPenalty < 4000 {
		t.Errorf("LU CB migration penalty = %v, should be large (migration-sensitive)", p.MigrationPenalty)
	}
}

func TestMicrobenchmarks(t *testing.T) {
	b := BBMA()
	if err := b.Validate(); err != nil {
		t.Fatal(err)
	}
	if !b.Endless() {
		t.Error("BBMA must be endless")
	}
	if got := float64(b.SoloRate()); math.Abs(got-23.6) > 0.01 {
		t.Errorf("BBMA rate = %v, want 23.6", got)
	}
	n := NBBMA()
	if got := float64(n.SoloRate()); math.Abs(got-0.0037) > 1e-6 {
		t.Errorf("nBBMA rate = %v, want 0.0037", got)
	}
	if !n.Endless() {
		t.Error("nBBMA must be endless")
	}
}

func TestByNameMisses(t *testing.T) {
	if _, ok := ByName("NoSuchApp"); ok {
		t.Error("ByName should miss unknown names")
	}
	for _, name := range []string{"CG", "BBMA", "nBBMA", "STREAM", "Water-nsqr"} {
		if _, ok := ByName(name); !ok {
			t.Errorf("ByName(%q) missed", name)
		}
	}
}

func TestThreadAdvanceProgress(t *testing.T) {
	p, _ := ByName("CG")
	app := NewApp(p, "CG#1")
	th := app.Threads[0]
	if th.Done() {
		t.Fatal("fresh thread already done")
	}
	// Advance the gang together (CG barriers every 40ms): feed both
	// threads in interleaved chunks.
	chunk := float64(10 * units.Millisecond)
	for fed := 0.0; fed < float64(p.SoloTime); fed += chunk {
		app.Threads[0].Advance(chunk, chunk, 11.65)
		app.Threads[1].Advance(chunk, chunk, 11.65)
	}
	if !th.Done() {
		t.Errorf("thread not done after full solo time; progress=%v", th.Progress())
	}
	if !app.Done() {
		t.Error("app should be done")
	}
}

func TestThreadCountersAccumulate(t *testing.T) {
	p, _ := ByName("CG")
	app := NewApp(p, "CG#1")
	th := app.Threads[0]
	th.Advance(1000, 1000, 10) // 1000us at 10 trans/us
	if got := th.Counters.Read(perfctr.EventBusTransAny); got != 10000 {
		t.Errorf("bus transactions = %d, want 10000", got)
	}
	if got := th.Counters.Read(perfctr.EventCycles); got != 1000*CPUFrequencyMHz {
		t.Errorf("cycles = %d, want %d", got, 1000*CPUFrequencyMHz)
	}
}

func TestPhaseCycling(t *testing.T) {
	p := Profile{
		Name: "x", Threads: 1, SoloTime: 10000,
		// single thread: no barriers
		Phases: []Phase{
			{Duration: 100, Demand: 10, StallFrac: 0.9},
			{Duration: 100, Demand: 1, StallFrac: 0.1},
		},
	}
	app := NewApp(p, "x#1")
	th := app.Threads[0]
	if th.Demand() != 10 {
		t.Errorf("initial demand = %v", th.Demand())
	}
	th.Advance(150, 150, 5)
	if th.Demand() != 1 {
		t.Errorf("demand after 150us = %v, want phase 2's 1", th.Demand())
	}
	th.Advance(100, 100, 5) // 250 total: back to phase 1 (cycle at 200)
	if th.Demand() != 10 {
		t.Errorf("demand after 250us = %v, want phase 1's 10", th.Demand())
	}
}

func TestMigrationDebt(t *testing.T) {
	p, _ := ByName("LU CB")
	app := NewApp(p, "LU#1")
	th := app.Threads[0]
	th.Migrate(64)
	if th.Demand() < RefillDemand {
		t.Errorf("migrated thread demand = %v, want >= refill %v", th.Demand(), RefillDemand)
	}
	if th.StallFrac() < RefillStallFrac {
		t.Errorf("migrated thread stall = %v", th.StallFrac())
	}
	before := th.Progress()
	th.Advance(1000, 1000, 20)
	if th.Progress() != before {
		t.Error("debt repayment should not advance real progress")
	}
	// Repay the rest of the 8ms penalty.
	th.Advance(float64(p.MigrationPenalty), float64(p.MigrationPenalty), 20)
	if th.Demand() >= RefillDemand {
		t.Errorf("demand after repaying debt = %v, want phase demand", th.Demand())
	}
	if th.Progress() <= before {
		t.Error("real progress should resume after debt repaid")
	}
}

func TestEndlessThreadNeverDone(t *testing.T) {
	app := NewApp(BBMA(), "BBMA#1")
	th := app.Threads[0]
	th.Advance(1e9, 1e9, 23.6)
	if th.Done() || app.Done() {
		t.Error("BBMA should never be done")
	}
	if !math.IsInf(th.Remaining(), 1) {
		t.Errorf("endless remaining = %v, want +Inf", th.Remaining())
	}
}

func TestTurnaround(t *testing.T) {
	p, _ := ByName("Volrend")
	app := NewApp(p, "V#1")
	app.Arrived = 100
	if app.Turnaround() != 0 {
		t.Error("turnaround before completion should be 0")
	}
	app.MarkCompleted(10100)
	app.MarkCompleted(99999) // second call must not re-stamp
	if got := app.Turnaround(); got != 10000 {
		t.Errorf("turnaround = %v, want 10000", got)
	}
	if !app.IsMarkedCompleted() {
		t.Error("IsMarkedCompleted false after MarkCompleted")
	}
}

func TestInstances(t *testing.T) {
	apps := Instances(BBMA(), 4)
	if len(apps) != 4 {
		t.Fatalf("got %d instances", len(apps))
	}
	names := map[string]bool{}
	for _, a := range apps {
		if names[a.Instance] {
			t.Errorf("duplicate instance name %s", a.Instance)
		}
		names[a.Instance] = true
	}
	if !names["BBMA#1"] || !names["BBMA#4"] {
		t.Errorf("unexpected instance names: %v", names)
	}
}

func TestNewAppPanicsOnInvalid(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewApp should panic on invalid profile")
		}
	}()
	NewApp(Profile{}, "bad")
}

// Property: random profiles always validate and their solo rate equals
// the duration-weighted mean of phase demands times thread count.
func TestRandomProfileValidProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := RandomProfile(rng, "fuzz")
		if p.Validate() != nil {
			return false
		}
		var tot, weighted float64
		for _, ph := range p.Phases {
			tot += float64(ph.Duration)
			weighted += float64(ph.Demand) * float64(ph.Duration)
		}
		want := weighted / tot * float64(p.Threads)
		return math.Abs(float64(p.SoloRate())-want) < 1e-9*(1+want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: Advance conserves progress — total progress equals the sum
// of solo-equivalent slices minus debt repayments, and never exceeds
// SoloTime-based completion semantics.
func TestAdvanceConservationProperty(t *testing.T) {
	f := func(seed int64, slices []uint16) bool {
		rng := rand.New(rand.NewSource(seed))
		p := RandomProfile(rng, "fuzz")
		app := NewApp(p, "f#1")
		th := app.Threads[0]
		var fed float64
		for _, s := range slices {
			du := float64(s % 2000)
			th.Advance(du, du, 3)
			fed += du
		}
		if th.Progress() > fed+1e-6 {
			return false
		}
		if th.Done() && th.Progress() < float64(p.SoloTime)-1e-6 {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestServerProfiles(t *testing.T) {
	for _, p := range ServerProfiles() {
		if err := p.Validate(); err != nil {
			t.Errorf("%s invalid: %v", p.Name, err)
		}
		if p.BarrierInterval != 0 {
			t.Errorf("%s: server threads handle independent requests, no barriers", p.Name)
		}
		if p.Endless() {
			t.Errorf("%s should be finite for turnaround experiments", p.Name)
		}
		got, ok := ByName(p.Name)
		if !ok || got.Name != p.Name {
			t.Errorf("ByName(%q) failed", p.Name)
		}
	}
	web := WebServer()
	if len(web.Phases) < 3 {
		t.Error("WebServer should be bursty (several phases)")
	}
	db := Database()
	if db.MigrationPenalty < 3000 {
		t.Error("Database should be migration-sensitive (buffer pool)")
	}
}

func TestBarrierSpinAccounting(t *testing.T) {
	p, _ := ByName("CG") // 40ms barrier interval
	app := NewApp(p, "CG#1")
	runner := app.Threads[0]
	// Run one thread far ahead of its sleeping sibling: it must stop
	// at the barrier, spin, and account the spun time.
	runner.Advance(200_000, 200_000, 11.65)
	if runner.Progress() > float64(p.BarrierInterval)+1 {
		t.Errorf("runner progressed %.0f past barrier cap %d", runner.Progress(), p.BarrierInterval)
	}
	if runner.SpunTime() <= 0 {
		t.Error("spin time not accounted")
	}
	if !runner.AtBarrier() {
		t.Error("runner should be at the barrier")
	}
	// At the barrier: demand collapses to the spin level and stalls
	// vanish (spinning hits in cache).
	if runner.Demand() != SpinDemand {
		t.Errorf("spinning demand = %v, want %v", runner.Demand(), SpinDemand)
	}
	if runner.StallFrac() != 0 {
		t.Errorf("spinning stall = %v, want 0", runner.StallFrac())
	}
	// Remaining work includes what is left.
	if rem := runner.Remaining(); rem <= 0 {
		t.Errorf("remaining = %v", rem)
	}
	// The sibling catches up; the runner resumes.
	app.Threads[1].Advance(100_000, 100_000, 11.65)
	if runner.AtBarrier() {
		t.Error("runner still at barrier after sibling caught up")
	}
}

func TestDebtAccessor(t *testing.T) {
	p, _ := ByName("LU CB")
	th := NewApp(p, "LU#1").Threads[0]
	if th.Debt() != 0 {
		t.Error("fresh thread has debt")
	}
	th.AddDebt(500)
	th.AddDebt(-10) // ignored
	if th.Debt() != 500 {
		t.Errorf("debt = %v, want 500", th.Debt())
	}
}

func TestSoloRateEmptyPhases(t *testing.T) {
	var p Profile
	if p.SoloRate() != 0 || p.MeanStallFrac() != 0 {
		t.Error("empty profile should have zero rates")
	}
}

func TestSingleThreadNeverAtBarrier(t *testing.T) {
	b := NewApp(BBMA(), "B#1")
	th := b.Threads[0]
	th.Advance(1e6, 1e6, 23.6)
	if th.AtBarrier() {
		t.Error("single-thread app cannot barrier")
	}
}
