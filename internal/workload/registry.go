package workload

import (
	"fmt"
	"math/rand"
	"sort"

	"busaware/internal/cache"
	"busaware/internal/units"
)

// The paper-application registry. Cumulative solo (two-thread)
// transaction rates are read off Figure 1A: the paper states the range
// is 0.48 to 23.31 trans/usec with SP, MG, Raytrace and CG the top
// four; Raytrace's four-thread cumulative rate is 34.89. Stall
// fractions and working sets are calibrated so the simulator
// reproduces Figure 1B's slowdown bands (41-61% for the top four when
// two instances co-run, 2x-3x against two BBMA copies, near-solo
// against nBBMA; LU CB and Water-nsqr migration-sensitive thanks to
// their ~99.5% L2 hit rates).

const ms = units.Millisecond

// uniform builds a single-phase two-thread profile from the cumulative
// solo rate as plotted in Figure 1A.
func uniform(name string, cumRate units.Rate, stall float64, solo units.Time, ws cache.WorkingSet, migPenalty units.Time) Profile {
	return Profile{
		Name:     name,
		Threads:  2,
		SoloTime: solo,
		Phases: []Phase{
			{Duration: 100 * ms, Demand: cumRate / 2, StallFrac: stall},
		},
		WorkingSet:       ws,
		MigrationPenalty: migPenalty,
		BarrierInterval:  DefaultBarrierInterval,
	}
}

// DefaultBarrierInterval approximates the barrier frequency of the
// OpenMP NAS and pthreads Splash-2 codes: tens of milliseconds of
// computation between global synchronization points.
const DefaultBarrierInterval = 40 * ms

// Radiosity through CG, in Figure 1A's increasing-rate order.
func paperProfiles() []Profile {
	smallWS := func(bytes units.Bytes, hit float64) cache.WorkingSet {
		return cache.WorkingSet{Bytes: bytes, HitRate: hit, DirtyFrac: 0.3}
	}
	ps := []Profile{
		uniform("Radiosity", 0.48, 0.04, 14*units.Second, smallWS(96*units.KB, 0.97), 500),
		// Water-nsqr: tiny bandwidth but ~99.5% hit rate; rebuilding its
		// working set after a migration is expensive (paper Section 3).
		uniform("Water-nsqr", 0.90, 0.05, 13*units.Second, cache.WorkingSet{Bytes: 224 * units.KB, HitRate: 0.995, DirtyFrac: 0.4}, 6000),
		uniform("Volrend", 1.40, 0.08, 12*units.Second, smallWS(128*units.KB, 0.95), 1000),
		uniform("Barnes", 2.20, 0.12, 15*units.Second, smallWS(160*units.KB, 0.93), 1200),
		uniform("FMM", 3.20, 0.18, 14*units.Second, smallWS(176*units.KB, 0.92), 1200),
		{
			// LU CB: 99.53% hit rate when run with two threads (paper),
			// irregular bursts, very migration-sensitive.
			Name:     "LU CB",
			Threads:  2,
			SoloTime: 13 * units.Second,
			Phases: []Phase{
				{Duration: 250 * ms, Demand: 1.2, StallFrac: 0.10},
				{Duration: 80 * ms, Demand: 4.71, StallFrac: 0.35},
			},
			WorkingSet:       cache.WorkingSet{Bytes: 256 * units.KB, HitRate: 0.9953, DirtyFrac: 0.5},
			MigrationPenalty: 8000,
			BarrierInterval:  DefaultBarrierInterval,
		},
		uniform("BT", 6.80, 0.30, 16*units.Second, smallWS(192*units.KB, 0.90), 1500),
		uniform("SP", 15.0, 0.52, 15*units.Second, smallWS(208*units.KB, 0.85), 1500),
		uniform("MG", 16.5, 0.56, 14*units.Second, smallWS(208*units.KB, 0.84), 1500),
		{
			// Raytrace: "a highly irregular bus transactions pattern";
			// the cycle below averages 17.45 cumulative (34.89 over four
			// threads) while swinging between near-saturating bursts and
			// moderate stretches. The bursts are what mislead the
			// Latest Quantum policy in Figure 2B.
			Name:     "Raytrace",
			Threads:  2,
			SoloTime: 14 * units.Second,
			// The cycle is irregular and incommensurate with the 200ms
			// scheduling quantum, so the latest quantum's sample is a
			// poor predictor of the next quantum's behaviour — exactly
			// what destabilizes Latest Quantum.
			Phases: []Phase{
				{Duration: 160 * ms, Demand: 5.2, StallFrac: 0.42},
				{Duration: 70 * ms, Demand: 20.5, StallFrac: 0.88},
				{Duration: 240 * ms, Demand: 5.2, StallFrac: 0.42},
				{Duration: 90 * ms, Demand: 20.5, StallFrac: 0.88},
				{Duration: 140 * ms, Demand: 5.2, StallFrac: 0.42},
			},
			WorkingSet:       cache.WorkingSet{Bytes: 192 * units.KB, HitRate: 0.80, DirtyFrac: 0.2},
			MigrationPenalty: 1200,
			BarrierInterval:  DefaultBarrierInterval,
		},
		uniform("CG", 23.31, 0.65, 13*units.Second, smallWS(224*units.KB, 0.78), 1500),
	}
	return ps
}

// PaperApps returns the eleven applications of Figure 1 in increasing
// order of solo transaction rate, freshly copied so callers may mutate.
func PaperApps() []Profile {
	ps := paperProfiles()
	sort.SliceStable(ps, func(i, j int) bool { return ps[i].SoloRate() < ps[j].SoloRate() })
	return ps
}

// ByName looks an application profile up by name; it also resolves the
// microbenchmarks ("BBMA", "nBBMA") and "STREAM".
func ByName(name string) (Profile, bool) {
	switch name {
	case "BBMA":
		return BBMA(), true
	case "nBBMA":
		return NBBMA(), true
	case "STREAM":
		return STREAM(), true
	case "WebServer":
		return WebServer(), true
	case "Database":
		return Database(), true
	}
	for _, p := range paperProfiles() {
		if p.Name == name {
			return p, true
		}
	}
	return Profile{}, false
}

// BBMA is the bus-saturating antagonist: a single thread streaming
// back-to-back line fills at 23.6 trans/usec with ~0% L2 hit rate. It
// never terminates; experiments kill it when the measured applications
// finish.
func BBMA() Profile {
	return Profile{
		Name:    "BBMA",
		Threads: 1,
		Phases: []Phase{
			{Duration: 100 * ms, Demand: 23.6, StallFrac: 0.97},
		},
		WorkingSet: cache.WorkingSet{Bytes: 512 * units.KB, HitRate: 0, DirtyFrac: 1},
		// Nothing cached worth rebuilding: migrations are free.
	}
}

// NBBMA is the bus-idle companion: near-perfect cache locality,
// 0.0037 trans/usec.
func NBBMA() Profile {
	return Profile{
		Name:    "nBBMA",
		Threads: 1,
		Phases: []Phase{
			{Duration: 100 * ms, Demand: 0.0037, StallFrac: 0.001},
		},
		WorkingSet:       cache.WorkingSet{Bytes: 128 * units.KB, HitRate: 0.9999, DirtyFrac: 0.1},
		MigrationPenalty: 200,
	}
}

// STREAM is the calibration workload: four threads demanding more
// bandwidth than the bus can serve, so the served rate measures the
// practically sustainable capacity.
func STREAM() Profile {
	return Profile{
		Name:     "STREAM",
		Threads:  4,
		SoloTime: 5 * units.Second,
		Phases: []Phase{
			{Duration: 100 * ms, Demand: 10.5, StallFrac: 0.95},
		},
		WorkingSet: cache.WorkingSet{Bytes: 512 * units.KB, HitRate: 0.05, DirtyFrac: 0.5},
	}
}

// RandomProfile generates a valid synthetic profile for fuzzing and
// capacity-planning examples. Rates, stall fractions and burstiness
// are drawn to span the paper's observed ranges.
func RandomProfile(rng *rand.Rand, name string) Profile {
	threads := 1 + rng.Intn(4)
	nPhases := 1 + rng.Intn(3)
	phases := make([]Phase, nPhases)
	for i := range phases {
		demand := units.Rate(rng.Float64() * 12)
		phases[i] = Phase{
			Duration:  units.Time(50+rng.Intn(300)) * ms,
			Demand:    demand,
			StallFrac: minf(0.97, float64(demand)/12*0.8+rng.Float64()*0.1),
		}
	}
	hit := 0.7 + rng.Float64()*0.3
	return Profile{
		Name:     name,
		Threads:  threads,
		SoloTime: units.Time(4+rng.Intn(20)) * units.Second,
		Phases:   phases,
		WorkingSet: cache.WorkingSet{
			Bytes:     units.Bytes(32+rng.Intn(224)) * units.KB,
			HitRate:   hit,
			DirtyFrac: rng.Float64() * 0.6,
		},
		MigrationPenalty: units.Time(rng.Intn(6000)),
		BarrierInterval:  units.Time(rng.Intn(3)) * DefaultBarrierInterval,
	}
}

// Instances builds n numbered instances of p ("CG#1", "CG#2", ...).
func Instances(p Profile, n int) []*App {
	apps := make([]*App, n)
	for i := range apps {
		apps[i] = NewApp(p, fmt.Sprintf("%s#%d", p.Name, i+1))
	}
	return apps
}

func minf(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}
