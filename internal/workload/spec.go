package workload

import (
	"fmt"
	"strconv"
	"strings"
)

// ParseSpec expands a workload spec like "CG x2, BBMA x4" into
// application instances. The grammar is a comma-separated list of
// "<name> [xN]" items; names resolve through ByName (the eleven paper
// applications plus BBMA, nBBMA, STREAM and the server profiles).
// Instances of the same profile are numbered in order of appearance
// across the whole spec, so "CG, CG x2" yields CG#1, CG#2, CG#3 —
// exactly the instances "CG x3" yields. Empty items are skipped; a
// spec with no items at all is an error.
//
// This is the one grammar shared by the smpsim CLI's -apps flag and
// the smpsimd daemon's "apps" request field, so a workload pasted from
// one is always valid in the other.
func ParseSpec(spec string) ([]*App, error) {
	var apps []*App
	counts := map[string]int{}
	for _, item := range strings.Split(spec, ",") {
		item = strings.TrimSpace(item)
		if item == "" {
			continue
		}
		name := item
		n := 1
		if i := strings.LastIndex(item, " x"); i >= 0 {
			parsed, err := strconv.Atoi(strings.TrimSpace(item[i+2:]))
			if err != nil || parsed < 1 {
				return nil, fmt.Errorf("workload: bad multiplicity in %q", item)
			}
			name = strings.TrimSpace(item[:i])
			n = parsed
		}
		p, ok := ByName(name)
		if !ok {
			return nil, fmt.Errorf("workload: unknown application %q", name)
		}
		for i := 0; i < n; i++ {
			counts[name]++
			apps = append(apps, NewApp(p, fmt.Sprintf("%s#%d", name, counts[name])))
		}
	}
	if len(apps) == 0 {
		return nil, fmt.Errorf("workload: empty workload %q", spec)
	}
	return apps, nil
}

// CanonicalSpec renders parsed instances back into the minimal spec
// that reproduces them: profile names in instance order, run-length
// encoded ("CG x2, BBMA x4"). Specs that parse to the same instances
// canonicalize identically ("CG x2" and "CG, CG" both yield "CG x2"),
// which is what makes the daemon's result cache key exact rather than
// textual.
func CanonicalSpec(apps []*App) string {
	var b strings.Builder
	for i := 0; i < len(apps); {
		j := i
		for j < len(apps) && apps[j].Profile.Name == apps[i].Profile.Name {
			j++
		}
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(apps[i].Profile.Name)
		if n := j - i; n > 1 {
			fmt.Fprintf(&b, " x%d", n)
		}
		i = j
	}
	return b.String()
}
