package sim

import (
	"reflect"
	"testing"

	"busaware/internal/faults"
	"busaware/internal/sched"
	"busaware/internal/workload"
)

func mixedApps(t *testing.T) []*workload.App {
	t.Helper()
	p := profile(t, "CG")
	return []*workload.App{
		workload.NewApp(p, "CG#1"),
		workload.NewApp(p, "CG#2"),
		workload.NewApp(workload.BBMA(), "B#1"),
		workload.NewApp(workload.NBBMA(), "n#1"),
	}
}

func qwPolicy() *sched.BandwidthAware {
	return sched.NewQuantaWindow(4, 29.5, sched.WithStaleFallback(sched.DefaultStaleQuanta))
}

// The zero fault config must be inert: results are identical to a run
// with no fault field set at all, byte for byte.
func TestZeroFaultConfigInert(t *testing.T) {
	clean, err := Run(Config{}, sched.NewQuantaWindow(4, 29.5), mixedApps(t))
	if err != nil {
		t.Fatal(err)
	}
	zero, err := Run(Config{Faults: faults.Config{Seed: 123}}, sched.NewQuantaWindow(4, 29.5), mixedApps(t))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(clean, zero) {
		t.Error("zero-rate fault config changed the run")
	}
	if clean.FaultStats != (faults.Stats{}) {
		t.Errorf("clean run reported faults: %+v", clean.FaultStats)
	}

	// Inert must also mean free: with every fault class gated off, the
	// quantum loop reuses its scratch and allocates nothing, so a whole
	// run's allocations are the fixed setup cost (apps, machine,
	// policy, result) regardless of how many quanta it simulates. The
	// workload above runs thousands of quanta; even one allocation per
	// quantum would blow this bound by an order of magnitude.
	const setupBound = 200 // measured ~121 incl. mixedApps construction
	allocs := testing.AllocsPerRun(3, func() {
		if _, err := Run(Config{Faults: faults.Config{Seed: 123}}, sched.NewQuantaWindow(4, 29.5), mixedApps(t)); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > setupBound {
		t.Errorf("zero-fault run allocates %.0f times, want <= %d (per-quantum allocations crept back in)", allocs, setupBound)
	}
}

// Fault injection is deterministic per seed and actually injects.
func TestFaultRunDeterministicPerSeed(t *testing.T) {
	cfg := Config{Faults: faults.Config{
		Seed: 7, SampleLoss: 0.3, SignalLoss: 0.1, CrashProb: 0.02, SampleNoise: 0.2,
	}}
	a, err := Run(cfg, qwPolicy(), mixedApps(t))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(cfg, qwPolicy(), mixedApps(t))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Error("faulty runs with one seed diverged")
	}
	st := a.FaultStats
	if st.SamplesDropped == 0 || st.SignalsDropped == 0 {
		t.Errorf("faults not injected: %+v", st)
	}
	if a.TimedOut {
		t.Error("faulty run timed out")
	}

	other, err := Run(Config{Faults: faults.Config{
		Seed: 8, SampleLoss: 0.3, SignalLoss: 0.1, CrashProb: 0.02, SampleNoise: 0.2,
	}}, qwPolicy(), mixedApps(t))
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(a.Apps, other.Apps) {
		t.Error("different seeds produced identical faulty runs (suspicious)")
	}
}

// Sample loss starves the policy, it does not corrupt execution: the
// workload still completes, and with the stale fallback enabled the
// run stays in the same ballpark as the clean one.
func TestSampleLossFailsSoft(t *testing.T) {
	clean, err := Run(Config{}, qwPolicy(), mixedApps(t))
	if err != nil {
		t.Fatal(err)
	}
	faulty, err := Run(Config{Faults: faults.Config{Seed: 1, SampleLoss: 0.5}}, qwPolicy(), mixedApps(t))
	if err != nil {
		t.Fatal(err)
	}
	if faulty.TimedOut {
		t.Fatal("50% sample loss hung the run")
	}
	if faulty.FaultStats.SamplesDropped == 0 {
		t.Fatal("no samples dropped at rate 0.5")
	}
	// Losing half the telemetry may cost throughput but must not be
	// catastrophic: bounded degradation, not collapse.
	ratio := float64(faulty.MeanTurnaround()) / float64(clean.MeanTurnaround())
	if ratio > 1.5 {
		t.Errorf("sample loss blew turnaround up %.2fx", ratio)
	}
}

// An invalid fault rate is rejected before the run starts.
func TestInvalidFaultConfigRejected(t *testing.T) {
	_, err := Run(Config{Faults: faults.Config{SampleLoss: 2}}, qwPolicy(), mixedApps(t))
	if err == nil {
		t.Error("out-of-range fault rate accepted")
	}
}
