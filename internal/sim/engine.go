// Event-driven engine: instead of stepping every quantum, leap across
// stretches during which nothing observable changes.
//
// The quantum-stepped loop spends almost all of its time recomputing a
// fixed point: in steady state the scheduler reproduces the same
// placements, the bus model grants the same speeds, and every sampling
// artifact repeats bitwise. The event engine detects that fixed point
// after each stepped quantum (the "probe") and replays the stretch it
// anchors analytically:
//
//   - integer state — machine clock, per-CPU busy time, performance
//     counters, per-app run time and transaction totals — batches in
//     O(1) per stretch, because modular integer addition is
//     associative;
//   - floating-point state — thread progress, phase position, the
//     bandwidth-sample windows, the bus-utilization sum — is replayed
//     value-by-value in the exact order the stepped loop would have
//     produced, because float addition is not associative and the
//     goldens pin results to the bit. The replay skips everything else
//     (scheduling, bus allocation, counter mutexes, monitor polls,
//     per-quantum map traffic), which is where the speedup comes from.
//
// The stretch ends at the earliest "interesting" time: the MaxTime
// guard, a phase boundary, a completion, a barrier that is not in
// provable lockstep, or — conservatively — anything the per-quantum
// invariant check notices. Faults, CPU-manager overhead, per-placement
// tracing and dynamic arrivals all force the engine back to plain
// quantum-stepping with zero behaviour change.
package sim

import (
	"errors"
	"fmt"
	"math"

	"busaware/internal/bus"
	"busaware/internal/machine"
	"busaware/internal/perfctr"
	"busaware/internal/sched"
	"busaware/internal/timeline"
	"busaware/internal/units"
	"busaware/internal/workload"
)

// EngineKind selects the simulation core.
type EngineKind int

const (
	// EngineQuantum is the classic loop: schedule, step, sample, every
	// quantum. The zero value, so existing callers are unchanged.
	EngineQuantum EngineKind = iota
	// EngineEvent leaps across constant stretches and falls back to
	// quantum-stepping whenever state actually evolves. Results are
	// bit-identical to EngineQuantum.
	EngineEvent
	// EngineShadow runs both cores on identical inputs and diffs the
	// full Result structs and timeline windows — the paranoid mode CI
	// uses to hold the event engine to the stepped loop.
	EngineShadow
)

func (k EngineKind) String() string {
	switch k {
	case EngineQuantum:
		return "quantum"
	case EngineEvent:
		return "event"
	case EngineShadow:
		return "shadow"
	default:
		return fmt.Sprintf("engine(%d)", int(k))
	}
}

// ParseEngine maps a flag value to an EngineKind. The empty string
// selects EngineQuantum, matching the Config zero value.
func ParseEngine(s string) (EngineKind, error) {
	switch s {
	case "", "quantum":
		return EngineQuantum, nil
	case "event":
		return EngineEvent, nil
	case "shadow":
		return EngineShadow, nil
	default:
		return EngineQuantum, fmt.Errorf("sim: unknown engine %q (want quantum, event or shadow)", s)
	}
}

// leapSlack inflates per-quantum progress upper bounds so that
// floating-point accumulation error over a long stretch can never push
// a thread past an event boundary the integer horizon math placed it
// before. Summation error over a stretch is bounded by ~n·ε with
// n ≤ ~2e5 additions and ε = 2^-52, i.e. below 1e-10 relative; 1e-9
// leaves an order of magnitude to spare and costs at most one quantum
// of horizon.
const leapSlack = 1e-9

// leapApp is one application's precomputed per-quantum sampling
// artifacts within a stretch.
type leapApp struct {
	st *appState
	// push is the bandwidth sample the app's job receives each replayed
	// quantum — proven bitwise equal to the probe's push.
	push units.Rate
	// trans is the per-quantum transaction total the sampling loop
	// accrues for the app.
	trans uint64
}

// leapScratch is tryLeap's reusable state, owned by one run loop.
type leapScratch struct {
	apps []leapApp
	// finiteThreads and multiPhase are the per-quantum stop watch list:
	// the plan threads whose replay-visible state can actually move.
	// ReplayAdvance writes only progress and phase position, so debt,
	// barriers and single-phase bus requests are physically frozen for
	// the whole stretch (PlanStretch verified them at the probe). What
	// remains observable per quantum is a finite thread completing and
	// a multi-phase thread wrapping (visible as a request change).
	finiteThreads []*workload.Thread
	multiPhase    []int
}

// leapHorizon bounds how many quanta may be replayed from the plan
// before an event could change behaviour: the MaxTime guard, a phase
// boundary (Step re-reads demands every micro-step, so the whole
// boundary-crossing quantum must be excluded), a completion (the
// completing quantum runs stepped), or a barrier whose gang is not in
// provable lockstep. Zero means no leap.
func leapHorizon(plan *machine.StretchPlan, now, maxTime units.Time) int {
	q := plan.Quantum
	if q <= 0 || now >= maxTime {
		return 0
	}
	// Quanta the stepped loop would still start before the guard fires.
	k := int((maxTime - now + q - 1) / q)
	for i := range plan.Threads {
		pt := &plan.Threads[i]
		var soloQ float64
		for _, s := range pt.SoloPerSub {
			soloQ += s
		}
		if soloQ <= 0 {
			// No progress, hence no thread-side events.
			continue
		}
		perQ := soloQ * (1 + leapSlack)
		t := pt.Thread
		prof := &t.App.Profile
		if !prof.Endless() {
			rem := float64(prof.SoloTime) - t.Progress()
			if rem <= perQ {
				return 0
			}
			// Largest kc with kc*perQ < rem. perQ carries leapSlack, which
			// dwarfs the replay sum's accumulated rounding (~20k additions
			// of exact per-sub values), so kc quanta provably cannot reach
			// completion and the completing quantum itself stays stepped.
			kc := int(rem / perQ)
			if float64(kc)*perQ >= rem {
				kc--
			}
			if kc < k {
				k = kc
			}
		}
		if len(prof.Phases) > 1 {
			idx, used := t.PhasePos()
			rem := float64(prof.Phases[idx].Duration) - used
			if rem <= perQ {
				return 0
			}
			if kp := int(rem/perQ) - 1; kp < k {
				k = kp
			}
		}
		if prof.BarrierInterval > 0 && len(t.App.Threads) > 1 && !lockstepGang(plan, t.App) {
			head := t.BarrierHeadroom()
			if head <= perQ {
				return 0
			}
			if kb := int(head/perQ) - 1; kb < k {
				k = kb
			}
		}
	}
	if k < 0 {
		k = 0
	}
	return k
}

// lockstepGang proves a barrier gang cannot spin during the stretch:
// every sibling is placed, all start at bitwise-equal progress, all
// receive bitwise-equal per-micro-step advances (so progress stays
// equal by induction), and each advance is well inside the barrier
// interval (so the running thread's headroom, always at least one full
// interval over its unadvanced siblings, covers it). Such a gang never
// clamps, hence never changes demand.
func lockstepGang(plan *machine.StretchPlan, app *workload.App) bool {
	first, count := -1, 0
	for i := range plan.Threads {
		if plan.Threads[i].Thread.App != app {
			continue
		}
		count++
		if first < 0 {
			first = i
			continue
		}
		a, b := &plan.Threads[first], &plan.Threads[i]
		if b.Thread.Progress() != a.Thread.Progress() {
			return false
		}
		if len(b.SoloPerSub) != len(a.SoloPerSub) {
			return false
		}
		for s := range a.SoloPerSub {
			if a.SoloPerSub[s] != b.SoloPerSub[s] {
				return false
			}
		}
	}
	if first < 0 || count != len(app.Threads) {
		return false
	}
	var maxSub float64
	for _, s := range plan.Threads[first].SoloPerSub {
		if s > maxSub {
			maxSub = s
		}
	}
	return maxSub*2 <= float64(app.Profile.BarrierInterval)
}

// leapStop reports whether a stretch invariant that replay can actually
// move broke after a replayed quantum: a finite thread or application
// finished, or a multi-phase thread's bus request drifted. With a
// correct horizon none of these fire; they are defence in depth against
// horizon-math bugs. Debt, barriers and single-phase requests need no
// per-quantum check — nothing in the replay loop writes them (see
// leapScratch).
func (ls *leapScratch) leapStop(plan *machine.StretchPlan, finite []*appState) bool {
	for _, t := range ls.finiteThreads {
		if t.Done() {
			return true
		}
	}
	for _, i := range ls.multiPhase {
		t := plan.Threads[i].Thread
		if (bus.Request{Demand: t.Demand(), StallFrac: t.StallFrac()}) != plan.Threads[i].Req {
			return true
		}
	}
	for _, st := range finite {
		if st.app.Done() {
			return true
		}
	}
	return false
}

// planThreadIndex finds t among the plan's placements, or -1.
func planThreadIndex(plan *machine.StretchPlan, t *workload.Thread) int {
	for i := range plan.Threads {
		if plan.Threads[i].Thread == t {
			return i
		}
	}
	return -1
}

// tryLeap attempts to replay the stretch anchored by the quantum just
// stepped. It returns the number of quanta leapt (0 = none; the loop
// keeps stepping). All preconditions are checked here so a failed
// attempt costs a few comparisons and leaves every piece of state
// untouched.
func (ls *leapScratch) tryLeap(
	cfg *Config,
	s sched.Scheduler,
	m *machine.Machine,
	quantum units.Time,
	placements []machine.Placement,
	states []*appState,
	byApp map[*workload.App]*appState,
	finite []*appState,
	connected, admitted int,
	res *Result,
	utilSum *float64,
) int {
	// The scheduler must certify that re-running Schedule would
	// reproduce these placements without evolving internal state.
	ss, ok := s.(sched.StretchStable)
	if !ok || !ss.Stable() {
		return 0
	}
	// An application that completed during the probe changes the next
	// schedule; let retirement and stepping handle it.
	for _, st := range finite {
		if st.app.Done() && !st.app.IsMarkedCompleted() {
			return 0
		}
	}
	plan, ok := m.PlanStretch(placements, quantum)
	if !ok {
		return 0
	}
	maxK := leapHorizon(plan, m.Now(), cfg.MaxTime)
	if maxK < 1 {
		return 0
	}

	// Reconstruct the probe's sampling pass from the plan: the same
	// demand accumulation in placement order, the same synthesized
	// monitor rates, the same per-thread equipartition. Every push
	// value must be bitwise equal to the sample the job just received,
	// otherwise the estimate is not a fixed point and replaying would
	// diverge from stepping.
	for i := range plan.Threads {
		pt := &plan.Threads[i]
		st := byApp[pt.Thread.App]
		st.ranThreads++
		if pt.Speed > 0 {
			st.demandCum += float64(pt.Rate) / pt.Speed
		}
	}
	ls.apps = ls.apps[:0]
	steady := true
	for _, st := range states {
		var appTrans uint64
		for ti := range st.app.Threads {
			var deltas [perfctr.NumEvents]uint64
			if pi := planThreadIndex(plan, st.app.Threads[ti]); pi >= 0 {
				pt := &plan.Threads[pi]
				deltas[perfctr.EventCycles] = pt.CyclesPerQ
				deltas[perfctr.EventBusTransAny] = pt.TransPerQ
				deltas[perfctr.EventL2Refs] = pt.RefsPerQ
				deltas[perfctr.EventL2Misses] = pt.MissPerQ
			}
			rates, rok := perfctr.SynthesizeRates(deltas, quantum)
			if !rok {
				continue
			}
			appTrans += uint64(rates[perfctr.EventBusTransAny] * float64(quantum))
		}
		if n := st.ranThreads; n > 0 {
			var cum units.Rate
			switch cfg.Sampling {
			case SampleConsumption:
				cum = units.Rate(float64(appTrans) / float64(quantum))
			default: // SampleRequirements
				cum = units.Rate(st.demandCum)
			}
			push := units.Rate(float64(cum / units.Rate(n)))
			if push != st.job.LatestRate() {
				steady = false
			}
			ls.apps = append(ls.apps, leapApp{st: st, push: push, trans: appTrans})
		}
		st.ranThreads = 0
		st.demandCum = 0
	}
	if !steady {
		return 0
	}

	// Watch list for the per-quantum stop check: only state replay can
	// move needs re-testing each quantum.
	ls.finiteThreads = ls.finiteThreads[:0]
	ls.multiPhase = ls.multiPhase[:0]
	for i := range plan.Threads {
		t := plan.Threads[i].Thread
		if !t.App.Profile.Endless() {
			ls.finiteThreads = append(ls.finiteThreads, t)
		}
		if len(t.App.Profile.Phases) > 1 {
			ls.multiPhase = append(ls.multiPhase, i)
		}
	}

	// Replay. Per quantum: the exact micro-step advance sequence, the
	// utilization accumulation, and one bandwidth sample per admitted
	// application — the full float-visible footprint of a stepped
	// quantum. Everything integer is batched afterwards. ReplayAdvance
	// is AdvanceWork minus the debt/completion/barrier checks the leap
	// horizon already proved are no-ops; the float arithmetic it
	// performs is bitwise identical.
	startNow := m.Now()
	k := 0
	for k < maxK {
		for i := range plan.Threads {
			pt := &plan.Threads[i]
			pt.Thread.ReplayAdvance(pt.SoloPerSub)
		}
		k++
		res.Quanta++
		*utilSum += plan.MeanUtilization
		for i := range ls.apps {
			ls.apps[i].st.job.PushSample(ls.apps[i].push)
		}
		if ls.leapStop(plan, finite) {
			break
		}
	}

	// Batched integer commit: counters, per-app totals, machine clock
	// and busy time — all modular or integral, so k quanta collapse to
	// one addition each.
	for i := range plan.Threads {
		pt := &plan.Threads[i]
		c := &pt.Thread.Counters
		c.Add(perfctr.EventCycles, uint64(k)*pt.CyclesPerQ)
		c.Add(perfctr.EventBusTransAny, uint64(k)*pt.TransPerQ)
		if miss := 1 - pt.Thread.App.Profile.WorkingSet.HitRate; miss > 0 {
			c.Add(perfctr.EventL2Refs, uint64(k)*pt.RefsPerQ)
			c.Add(perfctr.EventL2Misses, uint64(k)*pt.MissPerQ)
		}
	}
	for i := range ls.apps {
		la := &ls.apps[i]
		la.st.runTime += units.Time(k) * quantum
		la.st.trans += uint64(k) * la.trans
	}
	m.CommitStretch(plan, k)

	// Stepping polls every monitor of every application each quantum —
	// including retired and idle ones, whose baselines still advance.
	// Resync them all to the post-stretch clock and counter values.
	endNow := m.Now()
	for _, st := range states {
		for _, mon := range st.monitors {
			mon.Resync(endNow)
		}
	}

	if cfg.Timeline != nil {
		cfg.Timeline.RecordQuanta(timeline.Sample{
			StartUsec:   int64(startNow),
			DurUsec:     int64(quantum),
			Utilization: plan.MeanUtilization,
			Served:      float64(plan.MeanServed),
			Stretch:     plan.Outcome.Stretch,
			Placed:      len(plan.Threads),
			Runnable:    connected,
			Admitted:    admitted,
		}, k)
	}
	res.LeaptQuanta += k
	return k
}

// leapIdle batches the idle quanta between "no job connected" and the
// next arrival (or the MaxTime guard). With an empty queue every
// scheduler's Schedule is a stateless no-op and an idle quantum's only
// observable effects are the clock, the quantum count, one zero
// timeline sample and advancing monitor baselines — all exactly
// batchable.
func leapIdle(
	cfg *Config,
	m *machine.Machine,
	quantum units.Time,
	states []*appState,
	pending []*appState,
	res *Result,
) error {
	next := cfg.MaxTime
	for _, st := range pending {
		if st.app.Arrived < next {
			next = st.app.Arrived
		}
	}
	now := m.Now()
	if next <= now {
		return nil
	}
	k := int((next - now + quantum - 1) / quantum)
	if k < 1 {
		return nil
	}
	startNow := now
	if err := m.IdleN(quantum, k); err != nil {
		return err
	}
	res.Quanta += k
	res.LeaptQuanta += k
	// utilSum accrues +0.0 per idle quantum — a bitwise no-op on a
	// non-negative sum, so it is skipped entirely.
	endNow := m.Now()
	for _, st := range states {
		for _, mon := range st.monitors {
			mon.Resync(endNow)
		}
	}
	if cfg.Timeline != nil {
		cfg.Timeline.RecordQuanta(timeline.Sample{
			StartUsec: int64(startNow),
			DurUsec:   int64(quantum),
		}, k)
	}
	return nil
}

// runShadow executes the workload on both cores — the stepped loop on
// the caller's scheduler and applications (authoritative), the event
// engine on fresh clones — and diffs everything: the full Result
// structs and every timeline window. Divergences go to
// Config.ShadowDiffs when set, otherwise they are returned as an
// error. The authoritative result is returned either way.
func runShadow(cfg Config, s sched.Scheduler, apps []*workload.App) (Result, error) {
	if cfg.SchedulerFactory == nil {
		return Result{}, errors.New("sim: shadow engine requires Config.SchedulerFactory")
	}
	s2, err := cfg.SchedulerFactory()
	if err != nil {
		return Result{}, fmt.Errorf("sim: shadow scheduler: %w", err)
	}
	if s2 == nil {
		return Result{}, errors.New("sim: shadow scheduler factory returned nil")
	}
	clones := make([]*workload.App, len(apps))
	for i, a := range apps {
		if a == nil {
			return Result{}, fmt.Errorf("sim: nil app at index %d", i)
		}
		clones[i] = a.CloneFresh()
	}

	cfgQ := cfg
	cfgQ.Engine = EngineQuantum
	if cfgQ.Timeline == nil {
		// Shadow always verifies the timeline path, even when the
		// caller attached no collector.
		cfgQ.Timeline = timeline.MustNew(timeline.Config{})
	}
	cfgE := cfg
	cfgE.Engine = EngineEvent
	// Per-placement tracing belongs to the authoritative run only.
	cfgE.Trace = nil
	cfgE.Timeline = timeline.MustNew(timeline.Config{
		QuantaPerWindow:     cfgQ.Timeline.QuantaPerWindow(),
		Capacity:            cfgQ.Timeline.Capacity(),
		SaturationThreshold: cfgQ.Timeline.SaturationThreshold(),
	})

	resQ, errQ := run(cfgQ, s, apps)
	resE, errE := run(cfgE, s2, clones)
	if errQ != nil || errE != nil {
		if (errQ == nil) != (errE == nil) {
			return resQ, fmt.Errorf("sim: shadow error divergence: quantum=%v event=%v", errQ, errE)
		}
		return resQ, errQ
	}

	diffs := diffResults(resQ, resE)
	diffs = append(diffs, diffTimelines(cfgQ.Timeline, cfgE.Timeline)...)
	if len(diffs) == 0 {
		return resQ, nil
	}
	if cfg.ShadowDiffs != nil {
		*cfg.ShadowDiffs = append(*cfg.ShadowDiffs, diffs...)
		return resQ, nil
	}
	return resQ, fmt.Errorf("sim: shadow divergence (%d): %s", len(diffs), diffs[0])
}

// diffResults compares every field of two Results, floats bitwise.
func diffResults(q, e Result) []string {
	var d []string
	add := func(format string, args ...any) {
		d = append(d, fmt.Sprintf(format, args...))
	}
	fdiff := func(a, b float64) bool {
		return math.Float64bits(a) != math.Float64bits(b)
	}
	if q.Scheduler != e.Scheduler {
		add("scheduler: %q vs %q", q.Scheduler, e.Scheduler)
	}
	if q.Quanta != e.Quanta {
		add("quanta: %d vs %d", q.Quanta, e.Quanta)
	}
	if q.EndTime != e.EndTime {
		add("end time: %d vs %d", q.EndTime, e.EndTime)
	}
	if q.TimedOut != e.TimedOut {
		add("timed out: %v vs %v", q.TimedOut, e.TimedOut)
	}
	if q.Migrations != e.Migrations {
		add("migrations: %d vs %d", q.Migrations, e.Migrations)
	}
	if q.ContextSwitches != e.ContextSwitches {
		add("context switches: %d vs %d", q.ContextSwitches, e.ContextSwitches)
	}
	if fdiff(q.MeanBusUtilization, e.MeanBusUtilization) {
		add("mean bus utilization: %x vs %x", q.MeanBusUtilization, e.MeanBusUtilization)
	}
	if q.FaultStats != e.FaultStats {
		add("fault stats: %+v vs %+v", q.FaultStats, e.FaultStats)
	}
	if q.ScenarioArrivals != e.ScenarioArrivals || q.ScenarioDepartures != e.ScenarioDepartures || q.ScenarioCompleted != e.ScenarioCompleted {
		add("scenario counters: %d/%d/%d vs %d/%d/%d",
			q.ScenarioArrivals, q.ScenarioDepartures, q.ScenarioCompleted,
			e.ScenarioArrivals, e.ScenarioDepartures, e.ScenarioCompleted)
	}
	if len(q.Apps) != len(e.Apps) {
		add("app count: %d vs %d", len(q.Apps), len(e.Apps))
		return d
	}
	for i := range q.Apps {
		a, b := q.Apps[i], e.Apps[i]
		if a.Instance != b.Instance || a.Profile != b.Profile {
			add("app[%d]: identity %s/%s vs %s/%s", i, a.Instance, a.Profile, b.Instance, b.Profile)
		}
		if a.Arrived != b.Arrived {
			add("app[%d] %s: arrived %d vs %d", i, a.Instance, a.Arrived, b.Arrived)
		}
		if a.Turnaround != b.Turnaround {
			add("app[%d] %s: turnaround %d vs %d", i, a.Instance, a.Turnaround, b.Turnaround)
		}
		if a.SoloTime != b.SoloTime {
			add("app[%d] %s: solo time %d vs %d", i, a.Instance, a.SoloTime, b.SoloTime)
		}
		if fdiff(a.Slowdown, b.Slowdown) {
			add("app[%d] %s: slowdown %x vs %x", i, a.Instance, a.Slowdown, b.Slowdown)
		}
		if a.RunTime != b.RunTime {
			add("app[%d] %s: run time %d vs %d", i, a.Instance, a.RunTime, b.RunTime)
		}
		if fdiff(float64(a.MeanBusRate), float64(b.MeanBusRate)) {
			add("app[%d] %s: mean bus rate %x vs %x", i, a.Instance, float64(a.MeanBusRate), float64(b.MeanBusRate))
		}
		if a.Transactions != b.Transactions {
			add("app[%d] %s: transactions %d vs %d", i, a.Instance, a.Transactions, b.Transactions)
		}
	}
	return d
}

// diffTimelines compares two sealed collectors window by window.
func diffTimelines(q, e *timeline.Collector) []string {
	var d []string
	if sq, se := q.Sealed(), e.Sealed(); sq != se {
		d = append(d, fmt.Sprintf("timeline sealed: %d vs %d", sq, se))
	}
	qw, ew := q.Windows(), e.Windows()
	if len(qw) != len(ew) {
		d = append(d, fmt.Sprintf("timeline windows: %d vs %d", len(qw), len(ew)))
		return d
	}
	for i := range qw {
		if qw[i] != ew[i] {
			d = append(d, fmt.Sprintf("timeline window[%d]: %+v vs %+v", i, qw[i], ew[i]))
		}
	}
	if qs, es := q.Summary(), e.Summary(); qs != es {
		d = append(d, fmt.Sprintf("timeline summary: %+v vs %+v", qs, es))
	}
	return d
}
