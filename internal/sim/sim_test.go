package sim

import (
	"math"
	"testing"

	"busaware/internal/faults"
	"busaware/internal/machine"
	"busaware/internal/sched"
	"busaware/internal/timeline"
	"busaware/internal/trace"
	"busaware/internal/units"
	"busaware/internal/workload"
)

func profile(t *testing.T, name string) workload.Profile {
	t.Helper()
	p, ok := workload.ByName(name)
	if !ok {
		t.Fatalf("no profile %q", name)
	}
	return p
}

func TestRunValidation(t *testing.T) {
	app := workload.NewApp(profile(t, "CG"), "CG#1")
	if _, err := Run(Config{}, nil, []*workload.App{app}); err == nil {
		t.Error("nil scheduler accepted")
	}
	s := sched.NewGang(4)
	if _, err := Run(Config{}, s, nil); err == nil {
		t.Error("empty workload accepted")
	}
	if _, err := Run(Config{}, sched.NewGang(4), []*workload.App{nil}); err == nil {
		t.Error("nil app accepted")
	}
	// All-endless workloads can never finish.
	if _, err := Run(Config{}, sched.NewGang(4), []*workload.App{workload.NewApp(workload.BBMA(), "B#1")}); err == nil {
		t.Error("endless-only workload accepted")
	}
}

func TestSoloRunMatchesSoloTime(t *testing.T) {
	// An app alone on the machine should complete in ~its solo time
	// (within quantum granularity and mild self-contention).
	app := workload.NewApp(profile(t, "Volrend"), "V#1")
	res, err := Run(Config{}, sched.NewGang(4), []*workload.App{app})
	if err != nil {
		t.Fatal(err)
	}
	if res.TimedOut {
		t.Fatal("solo run timed out")
	}
	slow := res.Apps[0].Slowdown
	if slow < 0.99 || slow > 1.15 {
		t.Errorf("solo slowdown = %.3f, want ~1", slow)
	}
}

func TestSoloRunAchievesCalibratedRate(t *testing.T) {
	// Figure 1A black bars: the solo cumulative rate should match the
	// registry calibration.
	for _, name := range []string{"Radiosity", "CG", "SP"} {
		p := profile(t, name)
		app := workload.NewApp(p, name+"#1")
		res, err := Run(Config{}, sched.NewGang(4), []*workload.App{app})
		if err != nil {
			t.Fatal(err)
		}
		got := float64(res.Apps[0].MeanBusRate)
		want := float64(p.SoloRate())
		if math.Abs(got-want)/want > 0.12 {
			t.Errorf("%s solo rate = %.2f, want ~%.2f", name, got, want)
		}
	}
}

func TestSaturatedWorkloadSlowdown(t *testing.T) {
	// CG + 2 BBMA on the Linux scheduler: the app must suffer a
	// multi-fold slowdown (Figure 1B light-gray bars plus
	// time-sharing, since 4 threads + 2 microbenchmarks share 4 CPUs
	// in this reduced setup).
	apps := []*workload.App{
		workload.NewApp(profile(t, "CG"), "CG#1"),
		workload.NewApp(workload.BBMA(), "B#1"),
		workload.NewApp(workload.BBMA(), "B#2"),
	}
	res, err := Run(Config{}, sched.NewLinux(4, 1), apps)
	if err != nil {
		t.Fatal(err)
	}
	if res.TimedOut {
		t.Fatal("timed out")
	}
	if res.Apps[0].Slowdown < 1.5 {
		t.Errorf("CG slowdown with 2 BBMA = %.2f, want substantial", res.Apps[0].Slowdown)
	}
	if res.MeanBusUtilization < 0.5 {
		t.Errorf("bus utilization = %.2f, want high", res.MeanBusUtilization)
	}
}

func TestPolicyBeatsLinuxOnSaturatedMix(t *testing.T) {
	// The paper's core claim, in miniature: 2 CG instances + 4 BBMA.
	mkApps := func() []*workload.App {
		return []*workload.App{
			workload.NewApp(profile(t, "CG"), "CG#1"),
			workload.NewApp(profile(t, "CG"), "CG#2"),
			workload.NewApp(workload.BBMA(), "B#1"),
			workload.NewApp(workload.BBMA(), "B#2"),
			workload.NewApp(workload.BBMA(), "B#3"),
			workload.NewApp(workload.BBMA(), "B#4"),
		}
	}
	linux, err := Run(Config{}, sched.NewLinux(4, 1), mkApps())
	if err != nil {
		t.Fatal(err)
	}
	lq, err := Run(Config{}, sched.NewLatestQuantum(4, units.SustainedBusRate), mkApps())
	if err != nil {
		t.Fatal(err)
	}
	if linux.TimedOut || lq.TimedOut {
		t.Fatal("timed out")
	}
	if lq.MeanTurnaround() >= linux.MeanTurnaround() {
		t.Errorf("LatestQuantum (%v) should beat Linux (%v) on the saturated mix",
			lq.MeanTurnaround(), linux.MeanTurnaround())
	}
}

func TestManagerOverheadCostsSomething(t *testing.T) {
	mk := func() []*workload.App {
		return []*workload.App{workload.NewApp(profile(t, "Volrend"), "V#1")}
	}
	free, err := Run(Config{}, sched.NewGang(4), mk())
	if err != nil {
		t.Fatal(err)
	}
	loaded, err := Run(Config{ManagerOverhead: 4 * units.Millisecond}, sched.NewGang(4), mk())
	if err != nil {
		t.Fatal(err)
	}
	if loaded.MeanTurnaround() <= free.MeanTurnaround() {
		t.Error("manager overhead should lengthen turnaround")
	}
	// 4ms per 200ms quantum ~ 2%: the effect must stay bounded.
	ratio := float64(loaded.MeanTurnaround()) / float64(free.MeanTurnaround())
	if ratio > 1.10 {
		t.Errorf("overhead ratio = %.3f, want <= 1.10", ratio)
	}
}

func TestTimeoutGuard(t *testing.T) {
	apps := []*workload.App{workload.NewApp(profile(t, "CG"), "CG#1")}
	res, err := Run(Config{MaxTime: 400 * units.Millisecond}, sched.NewGang(4), apps)
	if err != nil {
		t.Fatal(err)
	}
	if !res.TimedOut {
		t.Error("13s app in 400ms budget should time out")
	}
	if res.Apps[0].Turnaround != 0 {
		t.Error("unfinished app should have zero turnaround")
	}
}

func TestMicrobenchRates(t *testing.T) {
	apps := []*workload.App{
		workload.NewApp(profile(t, "Volrend"), "V#1"),
		workload.NewApp(workload.BBMA(), "B#1"),
	}
	res, err := Run(Config{}, sched.NewGang(4), apps)
	if err != nil {
		t.Fatal(err)
	}
	rates := MicrobenchRates(apps[1:], res.EndTime)
	if r := float64(rates["B#1"]); r < 10 {
		t.Errorf("BBMA achieved %.2f trans/us, want substantial", r)
	}
	if len(MicrobenchRates(apps[1:], 0)) != 0 {
		t.Error("zero elapsed should yield empty map")
	}
}

func TestResultBookkeeping(t *testing.T) {
	apps := []*workload.App{
		workload.NewApp(profile(t, "Volrend"), "V#1"),
		workload.NewApp(profile(t, "Radiosity"), "R#1"),
	}
	res, err := Run(Config{}, sched.NewQuantaWindow(4, units.SustainedBusRate), apps)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Apps) != 2 {
		t.Fatalf("app results = %d", len(res.Apps))
	}
	if res.Scheduler != "QuantaWindow" {
		t.Error(res.Scheduler)
	}
	if res.Quanta == 0 || res.EndTime == 0 {
		t.Error("no quanta recorded")
	}
	for _, a := range res.Apps {
		if a.Turnaround <= 0 || a.Transactions == 0 || a.RunTime <= 0 {
			t.Errorf("incomplete app result: %+v", a)
		}
	}
	mean := res.MeanTurnaround()
	if mean != (res.Apps[0].Turnaround+res.Apps[1].Turnaround)/2 {
		t.Error("mean turnaround arithmetic")
	}
}

func TestCustomMachineConfig(t *testing.T) {
	cfg := Config{Machine: machine.DefaultConfig()}
	cfg.Machine.NumCPUs = 2
	apps := []*workload.App{workload.NewApp(profile(t, "Volrend"), "V#1")}
	res, err := Run(cfg, sched.NewGang(2), apps)
	if err != nil {
		t.Fatal(err)
	}
	if res.TimedOut {
		t.Error("2-CPU solo run should finish")
	}
}

func TestTimelineRecording(t *testing.T) {
	tl := &trace.Timeline{}
	apps := []*workload.App{workload.NewApp(profile(t, "Volrend"), "V#1")}
	res, err := Run(Config{Trace: tl}, sched.NewGang(4), apps)
	if err != nil {
		t.Fatal(err)
	}
	if tl.Len() == 0 {
		t.Fatal("timeline recorded nothing")
	}
	// Two threads per quantum for the whole run.
	if want := res.Quanta * 2; tl.Len() != want {
		t.Errorf("timeline slices = %d, want %d", tl.Len(), want)
	}
	_, end := tl.Span()
	if end != res.EndTime {
		t.Errorf("timeline end %v != run end %v", end, res.EndTime)
	}
}

// TestTimelineCollectorRecording pins the telemetry contract: one
// sample per quantum, window totals that reconcile exactly with the
// run's own bookkeeping, and identical simulation results with the
// collector attached or not.
func TestTimelineCollectorRecording(t *testing.T) {
	newApps := func() []*workload.App {
		return []*workload.App{
			workload.NewApp(profile(t, "Volrend"), "V#1"),
			workload.NewApp(workload.BBMA(), "B#1"),
		}
	}
	col, err := timeline.New(timeline.Config{QuantaPerWindow: 16})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(Config{Timeline: col}, sched.NewQuantaWindow(4, units.SustainedBusRate), newApps())
	if err != nil {
		t.Fatal(err)
	}
	sum := col.Summary()
	if got, want := sum.Quanta, int64(res.Quanta); got != want {
		t.Errorf("collector quanta = %d, run quanta = %d", got, want)
	}
	if got, want := int64(res.EndTime), sum.EndUsec; got != want {
		t.Errorf("collector end %d != run end %d", sum.EndUsec, got)
	}
	if sum.UtilSum <= 0 || sum.UtilMax > 1 {
		t.Errorf("bus utilization out of range: sum %v max %v", sum.UtilSum, sum.UtilMax)
	}
	// Two apps connected the whole run, so per-quantum runnable is 2
	// until Volrend retires; admitted never exceeds runnable.
	if sum.Runnable < sum.Quanta || sum.Runnable > 2*sum.Quanta {
		t.Errorf("runnable sum %d outside [%d, %d]", sum.Runnable, sum.Quanta, 2*sum.Quanta)
	}
	if sum.Admitted > sum.Runnable || sum.Admitted == 0 {
		t.Errorf("admitted sum %d vs runnable %d", sum.Admitted, sum.Runnable)
	}
	if sum.Deferred != sum.Runnable-sum.Admitted {
		t.Errorf("deferred %d != runnable-admitted %d", sum.Deferred, sum.Runnable-sum.Admitted)
	}
	if sum.Placed == 0 {
		t.Error("no threads recorded as placed")
	}

	// Telemetry must be a pure observer: the same workload without a
	// collector produces identical results.
	plain, err := Run(Config{}, sched.NewQuantaWindow(4, units.SustainedBusRate), newApps())
	if err != nil {
		t.Fatal(err)
	}
	if plain.Quanta != res.Quanta || plain.EndTime != res.EndTime ||
		plain.MeanBusUtilization != res.MeanBusUtilization {
		t.Errorf("collector perturbed the run: %+v vs %+v", plain, res)
	}
}

// TestTimelineCollectorSeesFaults checks fault deltas flow into
// windows: a faulty run's collector must account every injected fault.
func TestTimelineCollectorSeesFaults(t *testing.T) {
	col, err := timeline.New(timeline.Config{})
	if err != nil {
		t.Fatal(err)
	}
	apps := []*workload.App{
		workload.NewApp(profile(t, "Volrend"), "V#1"),
		workload.NewApp(workload.BBMA(), "B#1"),
	}
	cfg := Config{
		Timeline: col,
		Faults:   faults.Config{Seed: 7, SampleLoss: 0.2, CounterNoise: 0.2},
	}
	res, err := Run(cfg, sched.NewQuantaWindow(4, units.SustainedBusRate), apps)
	if err != nil {
		t.Fatal(err)
	}
	if res.FaultStats.Total() == 0 {
		t.Fatal("fault config injected nothing")
	}
	if got, want := col.Summary().Faults, int64(res.FaultStats.Total()); got != want {
		t.Errorf("collector faults = %d, run injected %d", got, want)
	}
}

func TestDynamicArrivals(t *testing.T) {
	vol := profile(t, "Volrend")
	early := workload.NewApp(vol, "V#early")
	late := workload.NewApp(vol, "V#late")
	late.Arrived = 5 * units.Second
	res, err := Run(Config{}, sched.NewQuantaWindow(4, units.SustainedBusRate),
		[]*workload.App{early, late})
	if err != nil {
		t.Fatal(err)
	}
	if res.TimedOut {
		t.Fatal("timed out")
	}
	if late.Completed <= late.Arrived {
		t.Fatalf("late app completed %v before arriving %v", late.Completed, late.Arrived)
	}
	// Turnaround is measured from arrival, not t=0: both instances of
	// the same profile should see comparable turnarounds (the machine
	// fits both apps, so neither is much delayed).
	te, tl := res.Apps[0].Turnaround, res.Apps[1].Turnaround
	ratio := float64(tl) / float64(te)
	if ratio < 0.8 || ratio > 1.5 {
		t.Errorf("turnarounds diverge: early %v vs late %v", te, tl)
	}
}

func TestArrivalBeforeAnyoneElseFinishes(t *testing.T) {
	// A late arrival while the machine idles: the simulator must idle
	// forward and still admit it.
	vol := profile(t, "Volrend")
	lone := workload.NewApp(vol, "V#late")
	lone.Arrived = 2 * units.Second
	quick := workload.NewApp(vol, "V#quick")
	res, err := Run(Config{}, sched.NewGang(4), []*workload.App{quick, lone})
	if err != nil {
		t.Fatal(err)
	}
	if res.TimedOut || !lone.IsMarkedCompleted() {
		t.Error("late arrival not completed")
	}
}

func TestNegativeArrivalRejected(t *testing.T) {
	vol := profile(t, "Volrend")
	bad := workload.NewApp(vol, "V#bad")
	bad.Arrived = -1
	if _, err := Run(Config{}, sched.NewGang(4), []*workload.App{bad}); err == nil {
		t.Error("negative arrival accepted")
	}
}
