package sim

import (
	"strings"
	"testing"

	"busaware/internal/scenario"
	"busaware/internal/sched"
	"busaware/internal/units"
	"busaware/internal/workload"
)

func churn(t *testing.T, pattern, pool string, seed int64) *scenario.Schedule {
	t.Helper()
	s, err := scenario.Materialize(scenario.ChurnSpec{Pattern: pattern, Pool: pool, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestScenarioChurnCounters(t *testing.T) {
	// Two CG instances churn in at t=0 and depart at 2s; CG needs 13
	// solo seconds, so neither completes. The base app is untouched.
	sched4 := sched.NewGang(4)
	base := workload.NewApp(profile(t, "Volrend"), "V#1")
	res, err := Run(Config{
		Scenario: churn(t, "step:2s@2; step:2s@0", "CG", 1),
	}, sched4, []*workload.App{base})
	if err != nil {
		t.Fatal(err)
	}
	if res.ScenarioArrivals != 2 {
		t.Errorf("arrivals = %d, want 2", res.ScenarioArrivals)
	}
	if res.ScenarioDepartures != 2 {
		t.Errorf("departures = %d, want 2", res.ScenarioDepartures)
	}
	if res.ScenarioCompleted != 0 {
		t.Errorf("completed = %d, want 0", res.ScenarioCompleted)
	}
	// Retired-by-departure instances never show up in Apps.
	if len(res.Apps) != 1 || res.Apps[0].Instance != "V#1" {
		t.Fatalf("Apps = %+v, want only the base app", res.Apps)
	}
	if res.Apps[0].Arrived != 0 {
		t.Errorf("base app Arrived = %v, want 0", res.Apps[0].Arrived)
	}
}

func TestScenarioCompletionAndTurnaround(t *testing.T) {
	// A Volrend instance churns in at 1s and runs to natural
	// completion under a longer-lived base app. Its turnaround must be
	// measured from its arrival, not from t=0.
	base := workload.NewApp(profile(t, "Barnes"), "B#1") // 15s solo
	res, err := Run(Config{
		Scenario: churn(t, "step:1s@0; step:29s@1", "Volrend", 1), // 12s solo, arrives at 1s
	}, sched.NewGang(4), []*workload.App{base})
	if err != nil {
		t.Fatal(err)
	}
	if res.ScenarioArrivals != 1 || res.ScenarioCompleted != 1 {
		t.Fatalf("arrivals/completed = %d/%d, want 1/1 (departures %d)",
			res.ScenarioArrivals, res.ScenarioCompleted, res.ScenarioDepartures)
	}
	var scn *AppResult
	for i := range res.Apps {
		if strings.Contains(res.Apps[i].Instance, "/s") {
			scn = &res.Apps[i]
		}
	}
	if scn == nil {
		t.Fatalf("no scenario instance in Apps: %+v", res.Apps)
	}
	if scn.Arrived != units.Second {
		t.Errorf("scenario Arrived = %v, want 1s", scn.Arrived)
	}
	if scn.Turnaround <= 0 {
		t.Fatalf("scenario turnaround = %v, want > 0", scn.Turnaround)
	}
	// Turnaround excludes the pre-arrival second: completing at
	// ~12-13s wall means turnaround strictly below EndTime.
	if scn.Turnaround >= res.EndTime {
		t.Errorf("turnaround %v not discounted by arrival (end %v)", scn.Turnaround, res.EndTime)
	}
	if scn.Slowdown < 0.99 || scn.Slowdown > 1.3 {
		t.Errorf("scenario slowdown = %.3f, want ~1 on an idle machine", scn.Slowdown)
	}
}

func TestTurnaroundSubtractsArrival(t *testing.T) {
	// Satellite: the timed-arrival path (no scenario) must also report
	// arrival-relative turnaround through the new AppResult field.
	first := workload.NewApp(profile(t, "Barnes"), "B#1")
	late := workload.NewApp(profile(t, "Volrend"), "V#1")
	late.Arrived = 5 * units.Second
	res, err := Run(Config{}, sched.NewGang(4), []*workload.App{first, late})
	if err != nil {
		t.Fatal(err)
	}
	var lateRes *AppResult
	for i := range res.Apps {
		if res.Apps[i].Instance == "V#1" {
			lateRes = &res.Apps[i]
		}
	}
	if lateRes == nil {
		t.Fatal("late app missing from Apps")
	}
	if lateRes.Arrived != 5*units.Second {
		t.Errorf("Arrived = %v, want 5s", lateRes.Arrived)
	}
	if want := late.Completed - late.Arrived; lateRes.Turnaround != want {
		t.Errorf("Turnaround = %v, want Completed-Arrived = %v", lateRes.Turnaround, want)
	}
	if lateRes.Turnaround >= res.EndTime {
		t.Errorf("turnaround %v should exclude the 5s before arrival (end %v)", lateRes.Turnaround, res.EndTime)
	}
}

func TestScenarioDeterministicResults(t *testing.T) {
	// Same seed + pattern ⇒ identical sim Result, including the full
	// app list and float fields bitwise (via diffResults).
	mk := func() (Result, error) {
		return Run(Config{
			Scenario: churn(t, "flashcrowd", "Volrend, CG", 42),
			MaxTime:  20 * units.Second,
		}, sched.NewQuantaWindow(4, units.SustainedBusRate), []*workload.App{
			workload.NewApp(profile(t, "Barnes"), "B#1"),
		})
	}
	a, err := mk()
	if err != nil {
		t.Fatal(err)
	}
	b, err := mk()
	if err != nil {
		t.Fatal(err)
	}
	if diffs := diffResults(a, b); len(diffs) != 0 {
		t.Fatalf("same-seed reruns diverge: %v", diffs)
	}
	if a.ScenarioArrivals == 0 {
		t.Fatal("flashcrowd produced no arrivals")
	}
}

func TestScenarioValidation(t *testing.T) {
	base := []*workload.App{workload.NewApp(profile(t, "Volrend"), "V#1")}
	bad := &scenario.Schedule{Events: []scenario.Event{
		{At: 0, Kind: scenario.EventArrive, Profile: "NoSuchApp", Instance: "X/s1"},
	}}
	if _, err := Run(Config{Scenario: bad}, sched.NewGang(4), base); err == nil {
		t.Error("unknown scenario profile accepted")
	}
	orphan := &scenario.Schedule{Events: []scenario.Event{
		{At: 0, Kind: scenario.EventDepart, Profile: "CG", Instance: "CG/s1"},
	}}
	if _, err := Run(Config{Scenario: orphan}, sched.NewGang(4), base); err == nil {
		t.Error("departure of never-arrived instance accepted")
	}
}

// TestEventEngineChurnGating covers the satellite contract: leaps are
// suppressed while any scenario event is outstanding, resume once the
// mix settles, and the event engine stays bitwise identical to the
// stepped loop through arrivals and departures.
func TestEventEngineChurnGating(t *testing.T) {
	mkSched := func() sched.Scheduler { return sched.NewQuantaWindow(4, units.SustainedBusRate) }

	t.Run("suppressed while churn outstanding", func(t *testing.T) {
		// The drain departure sits at the 30s horizon, past the base
		// app's ~12s completion — churn never settles, so the event
		// engine must step every quantum.
		cfg := Config{Scenario: churn(t, "step:30s@1", "CG", 1)}
		res := runBothEngines(t, cfg, mkSched, func() []*workload.App {
			return []*workload.App{workload.NewApp(profile(t, "Volrend"), "V#1")}
		})
		if res.ScenarioArrivals != 1 {
			t.Fatalf("arrivals = %d, want 1", res.ScenarioArrivals)
		}
		if res.LeaptQuanta != 0 {
			t.Errorf("leapt %d quanta with churn outstanding, want 0", res.LeaptQuanta)
		}
	})

	t.Run("resume after mix settles", func(t *testing.T) {
		// All churn is over by 4s (drain inclusive); the base app has
		// ~8 more solo seconds during which leaping must resume.
		cfg := Config{Scenario: churn(t, "step:2s@1; step:2s@0", "CG", 1)}
		res := runBothEngines(t, cfg, mkSched, func() []*workload.App {
			return []*workload.App{workload.NewApp(profile(t, "Volrend"), "V#1")}
		})
		if res.ScenarioDepartures != 1 {
			t.Fatalf("departures = %d, want 1", res.ScenarioDepartures)
		}
		if res.LeaptQuanta == 0 {
			t.Error("no leaps after the scenario drained; gating is stuck")
		}
	})

	t.Run("shadow zero divergence on churn", func(t *testing.T) {
		res, err := Run(Config{
			Engine:   EngineShadow,
			Scenario: churn(t, "step:3s@2; step:3s@0; step:6s@1", "Volrend, CG", 9),
			SchedulerFactory: func() (sched.Scheduler, error) {
				return mkSched(), nil
			},
		}, mkSched(), []*workload.App{workload.NewApp(profile(t, "Barnes"), "B#1")})
		if err != nil {
			t.Fatalf("shadow divergence on churn scenario: %v", err)
		}
		if res.ScenarioArrivals == 0 || res.ScenarioDepartures == 0 {
			t.Fatalf("scenario inert: %+v", res)
		}
	})
}
