package sim

import (
	"fmt"
	"math/rand"
	"testing"

	"busaware/internal/bus"
	"busaware/internal/machine"
	"busaware/internal/perfctr"
	"busaware/internal/sched"
	"busaware/internal/units"
	"busaware/internal/workload"
)

// Stress test: every scheduler on many random workloads, asserting the
// simulator-wide invariants that no calibration choice may break.
//
//   - Run never errors or panics on valid input.
//   - Every finite application completes with Turnaround >= SoloTime
//     (no application finishes faster than its uncontended time).
//   - Counters are consistent: each finite app's recorded transactions
//     match its threads' counter totals.
//   - Endless antagonists never appear in the results.
func TestSchedulerStressInvariants(t *testing.T) {
	if testing.Short() {
		t.Skip("stress sweep in short mode")
	}
	mkScheds := func(seed int64) []sched.Scheduler {
		opt, err := sched.NewOptimal(4, bus.DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		return []sched.Scheduler{
			sched.NewLinux(4, seed),
			sched.NewRoundRobin(4, 0),
			sched.NewGang(4),
			sched.NewLatestQuantum(4, units.SustainedBusRate),
			sched.NewQuantaWindow(4, units.SustainedBusRate),
			sched.NewEWMAPolicy(4, units.SustainedBusRate, 0.4),
			sched.NewOracle(4, units.SustainedBusRate),
			opt,
		}
	}

	for trial := 0; trial < 6; trial++ {
		rng := rand.New(rand.NewSource(int64(trial) * 17))
		build := func() []*workload.App {
			var apps []*workload.App
			nApps := 1 + rng.Intn(3)
			for i := 0; i < nApps; i++ {
				p := workload.RandomProfile(rng, fmt.Sprintf("s%d-%d", trial, i))
				if p.Threads > 4 {
					p.Threads = 4
				}
				// Keep runs short for the sweep.
				p.SoloTime = units.Time(2+rng.Intn(4)) * units.Second
				apps = append(apps, workload.NewApp(p, fmt.Sprintf("%s#1", p.Name)))
			}
			for i := 0; i < rng.Intn(3); i++ {
				apps = append(apps, workload.NewApp(workload.BBMA(), fmt.Sprintf("B#%d", i+1)))
			}
			for i := 0; i < rng.Intn(3); i++ {
				apps = append(apps, workload.NewApp(workload.NBBMA(), fmt.Sprintf("n#%d", i+1)))
			}
			return apps
		}
		// The same workload spec for every scheduler in this trial.
		specs := build()
		_ = specs
		for _, s := range mkScheds(int64(trial)) {
			apps := build()
			res, err := Run(Config{Machine: machine.DefaultConfig()}, s, apps)
			if err != nil {
				t.Fatalf("trial %d %s: %v", trial, s.Name(), err)
			}
			if res.TimedOut {
				t.Fatalf("trial %d %s: timed out", trial, s.Name())
			}
			for _, ar := range res.Apps {
				if ar.Turnaround < ar.SoloTime {
					t.Errorf("trial %d %s: %s finished in %v, faster than solo %v",
						trial, s.Name(), ar.Instance, ar.Turnaround, ar.SoloTime)
				}
				if ar.Profile == "BBMA" || ar.Profile == "nBBMA" {
					t.Errorf("trial %d %s: endless app %s in results", trial, s.Name(), ar.Instance)
				}
			}
			// Counter consistency.
			for _, app := range apps {
				if app.Profile.Endless() {
					continue
				}
				var fromCounters uint64
				for _, th := range app.Threads {
					fromCounters += th.Counters.Read(perfctr.EventBusTransAny)
				}
				var recorded uint64
				for _, ar := range res.Apps {
					if ar.Instance == app.Instance {
						recorded = ar.Transactions
					}
				}
				// The sim's per-quantum accumulation may truncate
				// fractional transactions; allow 1% slack.
				diff := int64(fromCounters) - int64(recorded)
				if diff < 0 {
					diff = -diff
				}
				if fromCounters > 1000 && float64(diff) > 0.01*float64(fromCounters) {
					t.Errorf("trial %d %s: %s counters %d vs recorded %d",
						trial, s.Name(), app.Instance, fromCounters, recorded)
				}
			}
		}
	}
}

// The progress invariant at machine level: wall time times CPU count
// bounds total solo-equivalent progress.
func TestProgressConservation(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 4; trial++ {
		p := workload.RandomProfile(rng, fmt.Sprintf("c%d", trial))
		if p.Threads > 4 {
			p.Threads = 4
		}
		p.SoloTime = 3 * units.Second
		apps := []*workload.App{
			workload.NewApp(p, "A#1"),
			workload.NewApp(workload.BBMA(), "B#1"),
		}
		res, err := Run(Config{}, sched.NewQuantaWindow(4, units.SustainedBusRate), apps)
		if err != nil {
			t.Fatal(err)
		}
		var progress float64
		for _, app := range apps {
			for _, th := range app.Threads {
				progress += th.Progress()
			}
		}
		budget := float64(res.EndTime) * 4 // 4 CPUs
		if progress > budget*1.001 {
			t.Errorf("trial %d: total progress %.0f exceeds CPU budget %.0f", trial, progress, budget)
		}
	}
}
