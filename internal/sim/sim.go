// Package sim runs multiprogrammed workloads on the simulated SMP
// under a chosen scheduling policy and collects the metrics the
// paper's figures are built from: per-application turnaround times,
// achieved bus transaction rates, migrations, context switches and bus
// utilization.
//
// The loop mirrors the paper's system structure: each quantum the
// scheduler produces placements, the machine executes them, and the
// CPU-manager sampling path (virtual performance counters polled via
// perfctr monitors) feeds per-thread bus-rate samples back to the
// policy for the applications that ran.
package sim

import (
	"errors"
	"fmt"

	"busaware/internal/faults"
	"busaware/internal/machine"
	"busaware/internal/perfctr"
	"busaware/internal/scenario"
	"busaware/internal/sched"
	"busaware/internal/timeline"
	"busaware/internal/trace"
	"busaware/internal/units"
	"busaware/internal/workload"
)

// Config controls one simulation run.
type Config struct {
	// Machine is the simulated hardware; zero value selects the paper
	// machine (DefaultConfig).
	Machine machine.Config
	// MaxTime caps simulated time as a runaway guard. Zero selects
	// DefaultMaxTime.
	MaxTime units.Time
	// ManagerOverhead is extra solo-equivalent work charged to every
	// placed thread each quantum, modelling the user-level CPU
	// manager's sampling and signalling cost. Zero for kernel
	// schedulers; the paper measured at most 4.5% for the manager.
	ManagerOverhead units.Time
	// Sampling selects how the CPU manager turns counter deltas into
	// the per-thread bandwidth estimates the policies consume. See the
	// SampleMode docs; the default is SampleRequirements.
	Sampling SampleMode
	// Trace, when non-nil, records every placement for later
	// rendering or Chrome-trace export.
	Trace *trace.Timeline
	// Timeline, when non-nil, receives one aggregated sample per
	// quantum — bus utilization and stretch, admission decisions,
	// queue depth, fault events — windowed into bounded memory by the
	// collector (see internal/timeline). Recording is allocation-free,
	// so attaching a collector does not disturb the PR 3 fast path,
	// and a nil collector costs one branch per quantum.
	Timeline *timeline.Collector
	// Faults configures seeded fault injection across the sampling and
	// signalling paths (see internal/faults). The zero value is inert:
	// no injector is built and the run is byte-identical to one with no
	// fault support at all. Faults model the *managed* stack — counter
	// sampling, arena publishing, block/unblock signalling, client
	// crashes — so kernel baselines (Linux, RR) are unaffected except
	// for counter-level faults, which they ignore anyway.
	Faults faults.Config
	// Engine selects the execution core: the classic quantum-stepped
	// loop (the zero value, so existing callers are unchanged), the
	// event-driven engine that leaps across constant stretches, or
	// shadow mode, which runs both and diffs every result. See
	// EngineKind.
	Engine EngineKind
	// SchedulerFactory, required for EngineShadow, builds a second
	// scheduler configured identically to the one passed to Run. The
	// shadow run drives the event engine with it so the authoritative
	// scheduler's internal state (sample windows, rotation order, RNG)
	// is never shared between the two cores.
	SchedulerFactory func() (sched.Scheduler, error)
	// ShadowDiffs, when non-nil under EngineShadow, receives one
	// human-readable line per divergence between the two engines and
	// Run returns normally; when nil, any divergence is returned as an
	// error.
	ShadowDiffs *[]string
	// Scenario, when non-nil, layers workload churn over the base
	// apps: the schedule's events submit fresh application instances
	// mid-run (through the same pending-admission path timed arrivals
	// use) and retire them again, youngest-first, as the pattern
	// recedes. The run still ends when the base workload's finite
	// applications complete; scenario instances that completed
	// naturally by then are reported in Result.Apps (with their
	// arrival time), ones retired by a departure or still running are
	// only counted. The event engine steps, never leaps, while any
	// scenario event is outstanding — churn is "unstable" — and
	// resumes leaping once the schedule drains. A nil Scenario is
	// byte-identical to a build without scenario support.
	Scenario *scenario.Schedule
}

// SampleMode selects the bandwidth estimator fed to the policies.
type SampleMode int

const (
	// SampleRequirements corrects the measured transaction rate for
	// contention, estimating the application's bandwidth
	// *requirements* — the paper's own term for the quantity the
	// policies schedule on. On real hardware the correction factor is
	// available from the same PMCs (bus stall cycles vs elapsed
	// cycles). This is the default: with raw consumption feedback a
	// saturated bus deflates every application's sample toward the
	// same value and the fitness metric loses its discriminating
	// power (see the SampleConsumption ablation in EXPERIMENTS.md).
	SampleRequirements SampleMode = iota
	// SampleConsumption feeds the raw measured rate (consumption,
	// deflated under contention). Kept as an ablation.
	SampleConsumption
)

// DefaultMaxTime bounds runs to 30 simulated minutes.
const DefaultMaxTime = 30 * 60 * units.Second

// AppResult is one application's outcome.
type AppResult struct {
	Instance string
	Profile  string
	// Arrived is when the application entered the system. Zero for the
	// classic fixed-mix workloads; scenario churn and timed arrivals
	// set it.
	Arrived units.Time
	// Turnaround is completion minus arrival — wall time spent in the
	// system, not completion time, so a late arrival is not charged
	// for the quanta before it existed.
	Turnaround units.Time
	// SoloTime is the profile's uncontended execution time.
	SoloTime units.Time
	// Slowdown is Turnaround / SoloTime.
	Slowdown float64
	// RunTime is the wall-clock time the app actually held processors.
	RunTime units.Time
	// MeanBusRate is the cumulative transaction rate achieved while
	// running (all threads summed) — the Figure 1A quantity.
	MeanBusRate units.Rate
	// Transactions is the total bus transactions issued.
	Transactions uint64
}

// Result is the outcome of one Run.
type Result struct {
	Scheduler string
	// Apps holds results for the finite applications, in input order.
	Apps []AppResult
	// EndTime is when the last finite application completed.
	EndTime units.Time
	Quanta  int
	// Migrations and ContextSwitches are machine-wide totals.
	Migrations      int
	ContextSwitches int
	// MeanBusUtilization averages the bus utilization over quanta.
	MeanBusUtilization float64
	// TimedOut reports the MaxTime guard fired before completion.
	TimedOut bool
	// LeaptQuanta counts quanta covered by event-engine leaps instead
	// of stepped execution — always 0 under EngineQuantum. Engine
	// metadata rather than simulation output, so shadow mode does not
	// diff it.
	LeaptQuanta int
	// FaultStats counts the faults injected into the run (zero when
	// Config.Faults is disabled).
	FaultStats faults.Stats
	// Scenario churn totals, all zero when Config.Scenario is nil:
	// instances admitted mid-run, instances retired by a departure
	// event before completing, and instances that completed naturally
	// (these also appear in Apps).
	ScenarioArrivals   int
	ScenarioDepartures int
	ScenarioCompleted  int
}

// MeanTurnaround returns the arithmetic mean turnaround of the finite
// applications — the paper's headline metric ("the improvement in the
// arithmetic mean of the execution times of both application
// instances").
func (r Result) MeanTurnaround() units.Time {
	if len(r.Apps) == 0 {
		return 0
	}
	var sum units.Time
	for _, a := range r.Apps {
		sum += a.Turnaround
	}
	return sum / units.Time(len(r.Apps))
}

// appState wires one application to the scheduler (through a Job) and
// to the CPU manager's sampling path (one perfctr monitor per thread).
// The per-quantum fields are scratch reused across quanta so the
// steady-state loop allocates nothing.
type appState struct {
	app      *workload.App
	job      *sched.Job
	monitors []*perfctr.Monitor
	runTime  units.Time
	trans    uint64

	// Per-quantum scratch: how many of the app's threads ran, the
	// contention-corrected demand they accumulated, and the
	// control-fault flags. All reset before the next quantum.
	ranThreads int
	demandCum  float64
	present    bool
	lost       bool

	// scenario marks an instance materialized from Config.Scenario —
	// it never counts toward the base workload's completion condition.
	// departed is set when a departure event retires it mid-run.
	scenario bool
	departed bool
}

// Run executes apps under s until every finite application completes.
// Endless applications (the microbenchmarks) run for the duration and
// are discarded at the end, exactly as the paper's workloads do.
func Run(cfg Config, s sched.Scheduler, apps []*workload.App) (Result, error) {
	if cfg.Engine == EngineShadow {
		return runShadow(cfg, s, apps)
	}
	return run(cfg, s, apps)
}

// run is the simulation loop shared by both engines: EngineQuantum
// steps every quantum; EngineEvent additionally leaps across stretches
// proven constant (see engine.go).
func run(cfg Config, s sched.Scheduler, apps []*workload.App) (Result, error) {
	if s == nil {
		return Result{}, errors.New("sim: nil scheduler")
	}
	if len(apps) == 0 {
		return Result{}, errors.New("sim: no applications")
	}
	if cfg.Machine.NumCPUs == 0 {
		cfg.Machine = machine.DefaultConfig()
	}
	if cfg.MaxTime <= 0 {
		cfg.MaxTime = DefaultMaxTime
	}
	if err := cfg.Faults.Validate(); err != nil {
		return Result{}, fmt.Errorf("sim: %w", err)
	}
	// inj is nil for a zero fault config; every consultation below is
	// nil-safe and draws nothing, so the no-fault path is unchanged.
	inj := faults.New(cfg.Faults)
	m, err := machine.New(cfg.Machine)
	if err != nil {
		return Result{}, err
	}

	// Wire each application to the scheduler through a Job, and each
	// thread to a perfctr monitor — the CPU manager's sampling path.
	states := make([]*appState, len(apps))
	byApp := make(map[*workload.App]*appState, len(apps))
	windowLen, ewmaAlpha := 1, 0.0
	if ba, ok := s.(*sched.BandwidthAware); ok {
		windowLen = ba.WindowLen()
		if ba.Estimator() == sched.EstEWMA {
			ewmaAlpha = 0.4
		}
	}
	var pending []*appState
	// connected tracks the scheduler's queue depth (jobs added and not
	// yet removed) for the timeline's runnable series.
	connected := 0
	for i, app := range apps {
		if app == nil {
			return Result{}, fmt.Errorf("sim: nil app at index %d", i)
		}
		if app.Arrived < 0 {
			return Result{}, fmt.Errorf("sim: app %s has negative arrival time", app.Instance)
		}
		st := &appState{app: app, job: sched.NewJob(app, windowLen, ewmaAlpha)}
		for _, th := range app.Threads {
			mon := perfctr.NewMonitor(&th.Counters)
			// Prime the monitor with its time-zero baseline so the
			// first quantum's transactions are not swallowed by
			// baseline establishment. The fault hook is attached only
			// afterwards: injected counter faults never eat the
			// baseline itself.
			mon.Poll(m.Now())
			if inj != nil {
				mon.SetFaultHook(inj)
			}
			st.monitors = append(st.monitors, mon)
		}
		states[i] = st
		byApp[app] = st
		if app.Arrived == 0 {
			s.Add(st.job)
			connected++
		} else {
			// Dynamic arrival: the application connects to the
			// scheduler when its arrival time passes, like a process
			// connecting to the paper's CPU manager mid-run.
			pending = append(pending, st)
		}
	}

	res := Result{Scheduler: s.Name()}
	quantum := s.Quantum()
	if quantum <= 0 {
		return Result{}, fmt.Errorf("sim: scheduler %s has non-positive quantum", s.Name())
	}

	// remaining counts only the base workload: the run ends when it
	// completes, whatever the scenario is still churning. Counted
	// before scenario states are appended.
	remaining := 0
	for _, st := range states {
		if !st.app.Profile.Endless() {
			remaining++
		}
	}
	if remaining == 0 {
		return Result{}, errors.New("sim: workload has no finite applications")
	}

	// Materialize scenario churn: every arrival becomes a pending
	// appState admitted through the same path as timed arrivals (so a
	// t=0 churn event and an Arrived app are indistinguishable to the
	// scheduler); departures queue up for the loop to pop in time
	// order. The schedule is read-only — shadow mode runs both cores
	// against the same one.
	var depEvents []scenario.Event
	depIdx := 0
	byInstance := map[string]*appState{}
	if cfg.Scenario != nil {
		for _, ev := range cfg.Scenario.Events {
			if ev.At < 0 {
				return Result{}, fmt.Errorf("sim: scenario event %s at negative time", ev.Instance)
			}
			switch ev.Kind {
			case scenario.EventArrive:
				p, ok := workload.ByName(ev.Profile)
				if !ok {
					return Result{}, fmt.Errorf("sim: scenario profile %q unknown", ev.Profile)
				}
				app := workload.NewApp(p, ev.Instance)
				app.Arrived = ev.At
				st := &appState{app: app, job: sched.NewJob(app, windowLen, ewmaAlpha), scenario: true}
				for _, th := range app.Threads {
					mon := perfctr.NewMonitor(&th.Counters)
					mon.Poll(m.Now())
					if inj != nil {
						mon.SetFaultHook(inj)
					}
					st.monitors = append(st.monitors, mon)
				}
				states = append(states, st)
				byApp[app] = st
				byInstance[ev.Instance] = st
				pending = append(pending, st)
			case scenario.EventDepart:
				if byInstance[ev.Instance] == nil {
					return Result{}, fmt.Errorf("sim: scenario departure of unknown instance %q", ev.Instance)
				}
				depEvents = append(depEvents, ev)
			}
		}
		for i := 1; i < len(depEvents); i++ {
			if depEvents[i].At < depEvents[i-1].At {
				return Result{}, errors.New("sim: scenario events out of order")
			}
		}
	}

	// The event engine may leap only when fault injection is off: every
	// injector consultation draws from a seeded RNG, so skipping quanta
	// would shift the draw sequence. This is also the documented
	// degradation contract — fault runs step every quantum.
	leapable := cfg.Engine == EngineEvent && inj == nil
	var finite []*appState
	var ls leapScratch
	if leapable {
		for _, st := range states {
			if !st.app.Profile.Endless() {
				finite = append(finite, st)
			}
		}
	}

	var utilSum float64
	var prevFaults uint64
	for remaining > 0 {
		if m.Now() >= cfg.MaxTime {
			res.TimedOut = true
			break
		}
		// Admit newly arrived applications.
		kept := pending[:0]
		for _, st := range pending {
			if st.app.Arrived <= m.Now() {
				s.Add(st.job)
				connected++
				if st.scenario {
					res.ScenarioArrivals++
				}
			} else {
				kept = append(kept, st)
			}
		}
		pending = kept
		// Pop due scenario departures. Admission ran first, so a
		// departing instance is either connected (remove it) or already
		// completed on its own (a no-op — natural completion wins).
		// Departures of completed instances are not counted, which
		// keeps both engines' counters identical even when leapIdle has
		// jumped the clock past a no-op departure's exact quantum.
		for depIdx < len(depEvents) && depEvents[depIdx].At <= m.Now() {
			st := byInstance[depEvents[depIdx].Instance]
			depIdx++
			if st.departed || st.app.IsMarkedCompleted() {
				continue
			}
			s.Remove(st.job)
			connected--
			st.departed = true
			st.app.MarkDeparted(m.Now())
			res.ScenarioDepartures++
		}
		placements := s.Schedule(m.Now(), m)
		if len(placements) > 0 && (inj.CrashEnabled() || inj.SignalLossEnabled()) {
			// Control-channel faults, decided per application in input
			// order (deterministic draw sequence). A crash models the
			// client (run-time library) dying mid-quantum: the gang
			// misses the quantum and its scheduler-side sampling
			// history is gone when it reconnects. A dropped signal
			// models a lost unblock: the manager admitted the gang but
			// it never woke, so its processors idle for one quantum —
			// the expensive direction of signal loss. The whole block
			// is gated on those two fault classes having nonzero
			// rates: with them disabled no flag is touched, no draw is
			// made, and the clean path allocates nothing.
			for _, p := range placements {
				byApp[p.Thread.App].present = true
			}
			anyLost := false
			for _, st := range states {
				if !st.present {
					continue
				}
				st.present = false
				if inj.Crash() {
					st.lost = true
					anyLost = true
					st.job.ResetSamples()
					continue
				}
				if inj.DropSignal() {
					st.lost = true
					anyLost = true
				}
			}
			if anyLost {
				kept := placements[:0]
				for _, p := range placements {
					if !byApp[p.Thread.App].lost {
						kept = append(kept, p)
					}
				}
				placements = kept
				for _, st := range states {
					st.lost = false
				}
			}
		}
		var step machine.StepResult
		if len(placements) == 0 {
			if err := m.Idle(quantum); err != nil {
				return Result{}, err
			}
		} else {
			// Charge the CPU-manager overhead before the quantum runs,
			// so it is paid at the thread's contended speed.
			if cfg.ManagerOverhead > 0 {
				for _, p := range placements {
					p.Thread.AddDebt(float64(cfg.ManagerOverhead))
				}
			}
			step, err = m.Step(placements, quantum)
			if err != nil {
				return Result{}, fmt.Errorf("sim: quantum %d: %w", res.Quanta, err)
			}
		}
		res.Quanta++
		res.Migrations += step.Migrations
		res.ContextSwitches += step.ContextSwitches
		utilSum += step.MeanUtilization
		if cfg.Trace != nil && len(step.Threads) > 0 {
			qStart := m.Now() - quantum
			for _, ts := range step.Threads {
				cfg.Trace.Record(trace.Slice{
					CPU:      ts.CPU,
					Start:    qStart,
					Duration: quantum,
					Label:    fmt.Sprintf("%s/%d", ts.Thread.App.Instance, ts.Thread.Index),
					Speed:    ts.Speed,
					Migrated: ts.Migrated,
				})
			}
			cfg.Trace.RecordQuantum(trace.QuantumStat{
				Start:       qStart,
				Duration:    quantum,
				Utilization: step.MeanUtilization,
				Served:      step.MeanServed,
			})
		}

		// Sampling: poll every thread of every app (resetting deltas),
		// but only applications that ran this quantum contribute a
		// bandwidth sample, per the paper's "updates the bus bandwidth
		// consumption statistics for all running jobs".
		for _, ts := range step.Threads {
			st := byApp[ts.Thread.App]
			st.ranThreads++
			if ts.Speed > 0 {
				// Contention-corrected requirement: consumption divided
				// by the achieved speed fraction recovers the rate the
				// thread would sustain uncontended.
				st.demandCum += float64(ts.Rate) / ts.Speed
			}
		}
		admitted := 0
		for _, st := range states {
			var appTrans uint64
			for ti := range st.app.Threads {
				rates, ok := st.monitors[ti].Poll(m.Now())
				if !ok {
					continue
				}
				appTrans += uint64(rates[perfctr.EventBusTransAny] * float64(quantum))
			}
			if n := st.ranThreads; n > 0 {
				admitted++
				// BBW/thread: equipartition the application's bandwidth
				// among its threads.
				var cum units.Rate
				switch cfg.Sampling {
				case SampleConsumption:
					cum = units.Rate(float64(appTrans) / float64(quantum))
				default: // SampleRequirements
					cum = units.Rate(st.demandCum)
				}
				// A lost publish (the run-time library missed its arena
				// slot) starves the policy of this quantum's sample;
				// noise perturbs what does get published. Both are
				// no-ops without an injector.
				if !inj.DropSample() {
					perThread := float64(cum / units.Rate(n))
					st.job.PushSample(units.Rate(inj.PerturbSample(perThread)))
				}
				st.runTime += quantum
				st.trans += appTrans
				st.ranThreads = 0
				st.demandCum = 0
			}
		}

		// Timeline: one aggregated sample per quantum, recorded after
		// sampling so admission reflects what actually ran (crash and
		// signal-loss drops included) and before retirement so the
		// runnable depth is the queue the scheduler just saw. The
		// fault delta is read per quantum only when a collector is
		// attached; the nil path costs exactly this branch.
		if cfg.Timeline != nil {
			tot := inj.Stats().Total()
			cfg.Timeline.RecordQuantum(timeline.Sample{
				StartUsec:   int64(m.Now() - quantum),
				DurUsec:     int64(quantum),
				Utilization: step.MeanUtilization,
				Served:      float64(step.MeanServed),
				Stretch:     step.Outcome.Stretch,
				Placed:      len(step.Threads),
				Runnable:    connected,
				Admitted:    admitted,
				Faults:      int64(tot - prevFaults),
			})
			prevFaults = tot
		}

		// Event engine: the quantum just stepped is the probe that
		// anchors a stretch. If the scheduler is provably stable, the
		// machine state replayable and every bandwidth sample a
		// fixed point, leap across the quanta that would repeat it
		// bitwise; otherwise this falls through and the loop keeps
		// stepping. Placed after the timeline record (the probe is
		// already accounted) and before retirement (a leap ends at or
		// before any completion, which the block below then handles).
		if leapable {
			// Churn gating: a pending arrival or an outstanding departure
			// event means the mix is still unstable — a leap could carry
			// the machine past the event. Keep stepping; once the
			// scenario schedule drains (depIdx catches up and pending
			// empties) leaps resume for the settled mix.
			if len(placements) > 0 && len(pending) == 0 && depIdx == len(depEvents) && cfg.ManagerOverhead <= 0 && cfg.Trace == nil {
				ls.tryLeap(&cfg, s, m, quantum, placements, states, byApp, finite, connected, admitted, &res, &utilSum)
			} else if len(placements) == 0 && connected == 0 && len(pending) > 0 {
				if err := leapIdle(&cfg, m, quantum, states, pending, &res); err != nil {
					return Result{}, err
				}
			}
		}

		// Retire finished applications. Departed instances are out of
		// the scheduler already and frozen, so they never re-retire.
		for _, st := range states {
			if !st.app.Profile.Endless() && !st.departed && st.app.Done() && !st.app.IsMarkedCompleted() {
				st.app.MarkCompleted(m.Now())
				s.Remove(st.job)
				connected--
				if st.scenario {
					res.ScenarioCompleted++
				} else {
					remaining--
				}
			}
		}
	}
	res.EndTime = m.Now()
	if cfg.Timeline != nil {
		cfg.Timeline.Seal()
	}
	if res.Quanta > 0 {
		res.MeanBusUtilization = utilSum / float64(res.Quanta)
	}
	res.FaultStats = inj.Stats()

	for _, st := range states {
		if st.app.Profile.Endless() {
			continue
		}
		// Scenario instances are reported only if they completed
		// naturally: a departed or still-running instance has no
		// turnaround and would deflate the headline mean.
		if st.scenario && !st.app.IsMarkedCompleted() {
			continue
		}
		ar := AppResult{
			Instance:     st.app.Instance,
			Profile:      st.app.Profile.Name,
			Arrived:      st.app.Arrived,
			Turnaround:   st.app.Turnaround(),
			SoloTime:     st.app.Profile.SoloTime,
			RunTime:      st.runTime,
			Transactions: st.trans,
		}
		if ar.SoloTime > 0 && ar.Turnaround > 0 {
			ar.Slowdown = float64(ar.Turnaround) / float64(ar.SoloTime)
		}
		if st.runTime > 0 {
			ar.MeanBusRate = units.Rate(float64(st.trans) / float64(st.runTime))
		}
		res.Apps = append(res.Apps, ar)
	}
	return res, nil
}

// MicrobenchRates returns the mean cumulative bus rate achieved by the
// given endless applications during a run window. It reruns nothing:
// callers pass the apps after Run and it reads their counters.
func MicrobenchRates(apps []*workload.App, elapsed units.Time) map[string]units.Rate {
	out := make(map[string]units.Rate)
	if elapsed <= 0 {
		return out
	}
	for _, app := range apps {
		var trans uint64
		for _, th := range app.Threads {
			trans += th.Counters.Read(perfctr.EventBusTransAny)
		}
		out[app.Instance] = units.Rate(float64(trans) / float64(elapsed))
	}
	return out
}
