package sim

import (
	"strings"
	"testing"

	"busaware/internal/faults"
	"busaware/internal/machine"
	"busaware/internal/sched"
	"busaware/internal/timeline"
	"busaware/internal/units"
	"busaware/internal/workload"
)

// runBothEngines executes the same workload under the quantum and
// event engines and fails the test on any bitwise divergence in the
// Result or the timeline windows. It returns the event-engine result
// so callers can assert that leaping actually happened.
func runBothEngines(t *testing.T, cfg Config, mkSched func() sched.Scheduler, mkApps func() []*workload.App) Result {
	t.Helper()
	colQ := timeline.MustNew(timeline.Config{QuantaPerWindow: 16})
	colE := timeline.MustNew(timeline.Config{QuantaPerWindow: 16})

	cfgQ := cfg
	cfgQ.Engine = EngineQuantum
	cfgQ.Timeline = colQ
	resQ, errQ := Run(cfgQ, mkSched(), mkApps())

	cfgE := cfg
	cfgE.Engine = EngineEvent
	cfgE.Timeline = colE
	resE, errE := Run(cfgE, mkSched(), mkApps())

	if (errQ == nil) != (errE == nil) {
		t.Fatalf("error divergence: quantum=%v event=%v", errQ, errE)
	}
	if errQ != nil {
		return resE
	}
	diffs := diffResults(resQ, resE)
	diffs = append(diffs, diffTimelines(colQ, colE)...)
	for i, d := range diffs {
		if i >= 10 {
			t.Errorf("... and %d more diffs", len(diffs)-i)
			break
		}
		t.Errorf("engine diff: %s", d)
	}
	return resE
}

func TestEventEngineBitIdentical(t *testing.T) {
	paper := func(name string) workload.Profile {
		p, ok := workload.ByName(name)
		if !ok {
			t.Fatalf("no profile %q", name)
		}
		return p
	}
	busCap := units.SustainedBusRate
	cases := []struct {
		name     string
		cfg      Config
		mkSched  func() sched.Scheduler
		mkApps   func() []*workload.App
		wantLeap bool
	}{
		{
			name:    "solo gang",
			mkSched: func() sched.Scheduler { return sched.NewGang(4) },
			mkApps: func() []*workload.App {
				return []*workload.App{workload.NewApp(paper("Volrend"), "V#1")}
			},
			wantLeap: true,
		},
		{
			name:    "fitting pair under latest quantum",
			mkSched: func() sched.Scheduler { return sched.NewLatestQuantum(4, busCap) },
			mkApps: func() []*workload.App {
				return []*workload.App{
					workload.NewApp(paper("Volrend"), "V#1"),
					workload.NewApp(paper("Radiosity"), "R#1"),
				}
			},
			wantLeap: true,
		},
		{
			name:    "fitting pair under quanta window",
			mkSched: func() sched.Scheduler { return sched.NewQuantaWindow(4, busCap) },
			mkApps: func() []*workload.App {
				return []*workload.App{
					workload.NewApp(paper("Volrend"), "V#1"),
					workload.NewApp(paper("Water-nsqr"), "W#1"),
				}
			},
			wantLeap: true,
		},
		{
			name:    "ewma estimator",
			mkSched: func() sched.Scheduler { return sched.NewEWMAPolicy(4, busCap, 0.4) },
			mkApps: func() []*workload.App {
				return []*workload.App{
					workload.NewApp(paper("Volrend"), "V#1"),
					workload.NewApp(paper("Radiosity"), "R#1"),
				}
			},
		},
		{
			name:    "oracle estimator",
			mkSched: func() sched.Scheduler { return sched.NewOracle(4, busCap) },
			mkApps: func() []*workload.App {
				return []*workload.App{
					workload.NewApp(paper("Volrend"), "V#1"),
					workload.NewApp(paper("Radiosity"), "R#1"),
				}
			},
			wantLeap: true,
		},
		{
			name:    "multi-phase bursty app",
			mkSched: func() sched.Scheduler { return sched.NewLatestQuantum(4, busCap) },
			mkApps: func() []*workload.App {
				return []*workload.App{
					workload.NewApp(paper("Raytrace"), "RT#1"),
					workload.NewApp(paper("LU CB"), "LU#1"),
				}
			},
		},
		{
			name:    "oversubscribed saturated mix",
			mkSched: func() sched.Scheduler { return sched.NewLatestQuantum(4, busCap) },
			mkApps: func() []*workload.App {
				return []*workload.App{
					workload.NewApp(paper("CG"), "CG#1"),
					workload.NewApp(paper("CG"), "CG#2"),
					workload.NewApp(workload.BBMA(), "B#1"),
					workload.NewApp(workload.BBMA(), "B#2"),
				}
			},
		},
		{
			name:    "linux baseline never leaps",
			mkSched: func() sched.Scheduler { return sched.NewLinux(4, 1) },
			mkApps: func() []*workload.App {
				return []*workload.App{
					workload.NewApp(paper("CG"), "CG#1"),
					workload.NewApp(workload.BBMA(), "B#1"),
				}
			},
		},
		{
			name:    "round robin",
			mkSched: func() sched.Scheduler { return sched.NewRoundRobin(4, 0) },
			mkApps: func() []*workload.App {
				return []*workload.App{
					workload.NewApp(paper("Volrend"), "V#1"),
					workload.NewApp(paper("Radiosity"), "R#1"),
				}
			},
			wantLeap: true,
		},
		{
			name: "dynamic arrival with idle gap",
			mkSched: func() sched.Scheduler {
				return sched.NewQuantaWindow(4, busCap)
			},
			mkApps: func() []*workload.App {
				early := workload.NewApp(paper("Volrend"), "V#early")
				late := workload.NewApp(paper("Volrend"), "V#late")
				late.Arrived = 20 * units.Second
				return []*workload.App{early, late}
			},
			wantLeap: true,
		},
		{
			name:    "timeout guard mid-stretch",
			cfg:     Config{MaxTime: 3 * units.Second},
			mkSched: func() sched.Scheduler { return sched.NewGang(4) },
			mkApps: func() []*workload.App {
				return []*workload.App{workload.NewApp(paper("CG"), "CG#1")}
			},
			wantLeap: true,
		},
		{
			name: "faults degrade to stepping",
			cfg: Config{
				Faults: faults.Config{Seed: 7, SampleLoss: 0.1, CounterNoise: 0.1},
			},
			mkSched: func() sched.Scheduler { return sched.NewQuantaWindow(4, busCap) },
			mkApps: func() []*workload.App {
				return []*workload.App{
					workload.NewApp(paper("Volrend"), "V#1"),
					workload.NewApp(workload.BBMA(), "B#1"),
				}
			},
		},
		{
			name:    "manager overhead degrades to stepping",
			cfg:     Config{ManagerOverhead: 4 * units.Millisecond},
			mkSched: func() sched.Scheduler { return sched.NewGang(4) },
			mkApps: func() []*workload.App {
				return []*workload.App{workload.NewApp(paper("Volrend"), "V#1")}
			},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			res := runBothEngines(t, tc.cfg, tc.mkSched, tc.mkApps)
			if tc.wantLeap && res.LeaptQuanta == 0 {
				t.Error("event engine never leapt on a leapable workload")
			}
			if tc.cfg.Faults != (faults.Config{}) && res.LeaptQuanta != 0 {
				t.Error("event engine leapt despite fault injection")
			}
		})
	}
}

// TestShadowEngine pins the shadow contract: divergence-free runs
// succeed, diffs are collected when a sink is attached, and a missing
// scheduler factory is an error.
func TestShadowEngine(t *testing.T) {
	mkApps := func() []*workload.App {
		p, _ := workload.ByName("Volrend")
		r, _ := workload.ByName("Radiosity")
		return []*workload.App{
			workload.NewApp(p, "V#1"),
			workload.NewApp(r, "R#1"),
		}
	}
	factory := func() (sched.Scheduler, error) {
		return sched.NewQuantaWindow(4, units.SustainedBusRate), nil
	}

	var diffs []string
	cfg := Config{
		Engine:           EngineShadow,
		SchedulerFactory: factory,
		ShadowDiffs:      &diffs,
	}
	s, _ := factory()
	res, err := Run(cfg, s, mkApps())
	if err != nil {
		t.Fatal(err)
	}
	if len(diffs) != 0 {
		t.Fatalf("shadow diffs on identical cores: %s", strings.Join(diffs, "; "))
	}
	if res.LeaptQuanta != 0 {
		t.Error("authoritative shadow result must come from the stepped core")
	}
	if len(res.Apps) != 2 || res.Quanta == 0 {
		t.Errorf("implausible shadow result: %+v", res)
	}

	s2, _ := factory()
	if _, err := Run(Config{Engine: EngineShadow}, s2, mkApps()); err == nil {
		t.Error("shadow without a scheduler factory must fail")
	}
}

func TestParseEngine(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want EngineKind
		ok   bool
	}{
		{"", EngineQuantum, true},
		{"quantum", EngineQuantum, true},
		{"event", EngineEvent, true},
		{"shadow", EngineShadow, true},
		{"warp", EngineQuantum, false},
	} {
		got, err := ParseEngine(tc.in)
		if (err == nil) != tc.ok || got != tc.want {
			t.Errorf("ParseEngine(%q) = %v, %v", tc.in, got, err)
		}
	}
	for _, k := range []EngineKind{EngineQuantum, EngineEvent, EngineShadow, EngineKind(42)} {
		if k.String() == "" {
			t.Errorf("empty String for %d", int(k))
		}
	}
}

// mkPlanThread builds a synthetic stretch-plan entry for horizon tests:
// a thread advanced to the given progress, with uniform per-micro-step
// solo advances.
func mkPlanThread(t *testing.T, prof workload.Profile, progress float64, subs []float64) machine.StretchThread {
	t.Helper()
	app := workload.NewApp(prof, prof.Name+"#h")
	th := app.Threads[0]
	if progress > 0 {
		th.AdvanceWork(progress)
	}
	return machine.StretchThread{Thread: th, SoloPerSub: subs}
}

// TestLeapHorizon is the table-driven next-event computation check:
// time guard, completion, phase boundaries landing exactly on quantum
// edges, events within one quantum (horizon 0 — the engine steps), and
// single-quantum stretches (a leap of 1 equals a plain step).
func TestLeapHorizon(t *testing.T) {
	const q = 200 * units.Millisecond // 200_000 usec
	subs := func(v float64, n int) []float64 {
		s := make([]float64, n)
		for i := range s {
			s[i] = v
		}
		return s
	}
	uni := workload.Profile{
		Name: "uni", Threads: 1, SoloTime: 100 * units.Second,
		Phases: []workload.Phase{{Duration: 100 * units.Second, Demand: 1}},
	}
	twoPhase := workload.Profile{
		Name: "two", Threads: 1, SoloTime: 100 * units.Second,
		Phases: []workload.Phase{
			{Duration: 1 * units.Second, Demand: 1},
			{Duration: 1 * units.Second, Demand: 5},
		},
	}
	endless := workload.Profile{
		Name: "endless", Threads: 1,
		Phases: []workload.Phase{{Duration: units.Second, Demand: 1}},
	}

	cases := []struct {
		name    string
		plan    machine.StretchPlan
		now     units.Time
		maxTime units.Time
		want    int
	}{
		{
			// No thread progress: only the MaxTime guard bounds the
			// leap, and it rounds up to whole quanta.
			name: "time guard only",
			plan: machine.StretchPlan{
				Quantum: q,
				Threads: []machine.StretchThread{mkPlanThread(t, endless, 0, subs(0, 20))},
			},
			now: 0, maxTime: 10*q + q/2,
			want: 11,
		},
		{
			name:    "at max time",
			plan:    machine.StretchPlan{Quantum: q},
			now:     units.Second,
			maxTime: units.Second,
			want:    0,
		},
		{
			// Full-speed uniform thread, 10.5 quanta of work left: the
			// bound is exact — 10 replayed quanta provably stay short of
			// completion, and the completing quantum runs stepped.
			name: "completion bound",
			plan: machine.StretchPlan{
				Quantum: q,
				Threads: []machine.StretchThread{
					mkPlanThread(t, uni, float64(100*units.Second)-10.5*float64(q), subs(10_000, 20)),
				},
			},
			now: 0, maxTime: DefaultMaxTime,
			want: 10,
		},
		{
			// Completion within the next quantum: no leap at all — the
			// engine falls back to stepping (a "stretch" of zero).
			name: "completion imminent",
			plan: machine.StretchPlan{
				Quantum: q,
				Threads: []machine.StretchThread{
					mkPlanThread(t, uni, float64(100*units.Second)-0.5*float64(q), subs(10_000, 20)),
				},
			},
			now: 0, maxTime: DefaultMaxTime,
			want: 0,
		},
		{
			// Two events at the same timestamp: the thread sits exactly
			// on a phase boundary (phaseUsed == 0 after a wrap), which
			// coincides with the per-quantum sample tick. The phase is 5
			// quanta of work; float slack rounds 5.0 down to 4 whole
			// quanta and the boundary-crossing quantum is excluded: 3.
			name: "phase boundary on quantum edge",
			plan: machine.StretchPlan{
				Quantum: q,
				Threads: []machine.StretchThread{
					mkPlanThread(t, twoPhase, float64(2*units.Second), subs(10_000, 20)),
				},
			},
			now: 0, maxTime: DefaultMaxTime,
			want: 3,
		},
		{
			// Phase boundary lands inside the very next quantum: the
			// engine must refuse to leap (Step re-reads demands every
			// micro-step, so that quantum is not replayable).
			name: "phase boundary imminent",
			plan: machine.StretchPlan{
				Quantum: q,
				Threads: []machine.StretchThread{
					mkPlanThread(t, twoPhase, float64(units.Second)-0.3*float64(q), subs(10_000, 20)),
				},
			},
			now: 0, maxTime: DefaultMaxTime,
			want: 0,
		},
		{
			// Single-quantum stretch: 1.75 quanta of work left leaves
			// exactly enough room for a leap of one, which must behave
			// like one plain step.
			name: "single quantum stretch",
			plan: machine.StretchPlan{
				Quantum: q,
				Threads: []machine.StretchThread{
					mkPlanThread(t, uni, float64(100*units.Second)-1.75*float64(q), subs(10_000, 20)),
				},
			},
			now: 0, maxTime: DefaultMaxTime,
			want: 1,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := leapHorizon(&tc.plan, tc.now, tc.maxTime); got != tc.want {
				t.Errorf("leapHorizon = %d, want %d", got, tc.want)
			}
		})
	}
}

// TestLeapHorizonBarrier covers the barrier bounds: a gang in bitwise
// lockstep is unbounded by its barriers, while any asymmetry bounds
// the leap by the laggard's headroom.
func TestLeapHorizonBarrier(t *testing.T) {
	const q = 200 * units.Millisecond
	prof := workload.Profile{
		Name: "gang", Threads: 2, SoloTime: 100 * units.Second,
		Phases:          []workload.Phase{{Duration: 100 * units.Second, Demand: 1}},
		BarrierInterval: units.Second,
	}
	subs := make([]float64, 20)
	for i := range subs {
		subs[i] = 10_000
	}
	app := workload.NewApp(prof, "G#1")
	mk := func() machine.StretchPlan {
		return machine.StretchPlan{
			Quantum: q,
			Threads: []machine.StretchThread{
				{Thread: app.Threads[0], SoloPerSub: subs},
				{Thread: app.Threads[1], SoloPerSub: subs},
			},
		}
	}

	// Lockstep: equal progress, equal advances — the time guard is the
	// only bound even though the barrier interval is 5 quanta of work.
	plan := mk()
	if got := leapHorizon(&plan, 0, 20*q); got != 20 {
		t.Errorf("lockstep horizon = %d, want 20", got)
	}

	// Skew one sibling: the barrier bound kicks in. Thread 0 is half a
	// quantum of work ahead, so its headroom to progress is interval
	// minus nothing for thread 1 (the laggard has a full interval plus
	// the skew) — the leader's headroom bounds the leap.
	app.Threads[0].AdvanceWork(5_000)
	plan = mk()
	got := leapHorizon(&plan, 0, 20*q)
	if got >= 20 || got < 1 {
		t.Errorf("skewed-gang horizon = %d, want within (0, 20)", got)
	}

	// A sibling already at its barrier cap within the next quantum:
	// no leap.
	app.Threads[0].AdvanceWork(float64(units.Second) - 5_000 - 100_000)
	plan = mk()
	if got := leapHorizon(&plan, 0, 20*q); got != 0 {
		t.Errorf("barrier-imminent horizon = %d, want 0", got)
	}
}
