// Burstysensitivity reproduces the paper's stability finding around
// Raytrace: an application with a highly irregular bus-transaction
// pattern destabilizes the Latest Quantum policy (its latest sample is
// a poor predictor of the next quantum), while Quanta Window's moving
// average smooths the bursts.
//
// The example prints the window-length tradeoff the paper used to pick
// W = 5 — tracking distance versus estimate stability — and then the
// end-to-end turnaround of the Raytrace + 4 nBBMA workload for window
// lengths 1 (Latest Quantum) through 12.
//
//	go run ./examples/burstysensitivity
package main

import (
	"fmt"
	"log"

	"busaware"
	"busaware/internal/report"
)

func main() {
	rows, err := busaware.AblateWindow(busaware.ExperimentOptions{}, []int{1, 2, 3, 5, 8, 12})
	if err != nil {
		log.Fatal(err)
	}

	t := report.NewTable("Window length vs Raytrace's irregular pattern (paper picks W = 5)",
		"W", "Tracking distance", "Estimate stddev", "Raytrace improvement %")
	for _, r := range rows {
		t.AddRowf(fmt.Sprint(r.Window), fmt.Sprintf("%.3f", r.TrackingDistance),
			r.EstimateStdDev, r.RaytraceImprovement)
	}
	fmt.Println(t.String())

	chart := report.NewBarChart("Estimate stability (lower stddev = smoother policy input)", "trans/us")
	for _, r := range rows {
		chart.Add(fmt.Sprintf("W=%-2d", r.Window), r.EstimateStdDev)
	}
	fmt.Println(chart.String())
	fmt.Println("W=1 is the Latest Quantum policy: it tracks the pattern exactly but")
	fmt.Println("reacts to every burst; widening the window trades responsiveness for")
	fmt.Println("stability, which is why the paper's Quanta Window uses 5 samples.")
}
