// Policycompare sweeps the full scheduler lineup — Linux 2.4, naive
// round-robin, bandwidth-oblivious gang, Latest Quantum, Quanta
// Window, the EWMA variant and the clairvoyant oracle — over several
// multiprogramming degrees, charting how each policy's advantage grows
// as the bus gets more crowded.
//
//	go run ./examples/policycompare
package main

import (
	"fmt"
	"log"

	"busaware"
	"busaware/internal/report"
)

func main() {
	bt, ok := busaware.AppByName("BT")
	if !ok {
		log.Fatal("BT not in the registry")
	}
	bbma, _ := busaware.AppByName("BBMA")
	nbbma, _ := busaware.AppByName("nBBMA")

	// Multiprogramming degree sweep: 1x, 2x and 3x the paper's load.
	for _, mpl := range []int{1, 2, 3} {
		build := func() []*busaware.App {
			apps := busaware.Instances(bt, mpl)
			apps = append(apps, busaware.Instances(bbma, mpl)...)
			apps = append(apps, busaware.Instances(nbbma, mpl)...)
			return apps
		}
		chart := report.NewBarChart(
			fmt.Sprintf("\nImprovement over Linux, %dx BT + %dx BBMA + %dx nBBMA", mpl, mpl, mpl), "%")

		linux, err := busaware.RunPolicy(busaware.PolicyLinux, build())
		if err != nil {
			log.Fatal(err)
		}
		base := float64(linux.MeanTurnaround())
		for _, policy := range []string{
			busaware.PolicyRoundRobin, busaware.PolicyGang,
			busaware.PolicyLatestQuantum, busaware.PolicyQuantaWindow,
			busaware.PolicyEWMA, busaware.PolicyOracle,
		} {
			res, err := busaware.RunPolicy(policy, build())
			if err != nil {
				log.Fatal(err)
			}
			chart.Add(res.Scheduler, (base-float64(res.MeanTurnaround()))/base*100)
		}
		fmt.Println(chart.String())
	}
}
