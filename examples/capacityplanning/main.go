// Capacityplanning answers the operator question the paper's
// introduction motivates: how many bus-hungry background jobs can this
// SMP host before a latency-sensitive application degrades beyond an
// SLO — and how much more headroom does a bandwidth-aware scheduler
// buy compared to the stock scheduler?
//
// The example sweeps the number of BBMA-class background jobs from 0
// to 6 around one Database instance and reports the application's
// slowdown under Linux and under Quanta Window, marking where each
// crosses a 2.5x slowdown SLO.
//
//	go run ./examples/capacityplanning
package main

import (
	"fmt"
	"log"

	"busaware"
	"busaware/internal/report"
)

const slo = 2.5 // maximum tolerable slowdown

func main() {
	db, ok := busaware.AppByName("Database")
	if !ok {
		log.Fatal("Database not in the registry")
	}
	bbma, _ := busaware.AppByName("BBMA")

	t := report.NewTable("Database slowdown vs number of BBMA-class background jobs (SLO: 2.5x)",
		"Background", "Linux", "QuantaWindow", "Linux SLO", "QW SLO")
	linuxCap, qwCap := -1, -1
	for n := 0; n <= 6; n++ {
		build := func() []*busaware.App {
			apps := busaware.Instances(db, 1)
			return append(apps, busaware.Instances(bbma, n)...)
		}
		lin, err := busaware.RunPolicy(busaware.PolicyLinux, build())
		if err != nil {
			log.Fatal(err)
		}
		qw, err := busaware.RunPolicy(busaware.PolicyQuantaWindow, build())
		if err != nil {
			log.Fatal(err)
		}
		ls, qs := lin.Apps[0].Slowdown, qw.Apps[0].Slowdown
		okMark := func(s float64) string {
			if s <= slo {
				return "ok"
			}
			return "VIOLATED"
		}
		if ls <= slo {
			linuxCap = n
		}
		if qs <= slo {
			qwCap = n
		}
		t.AddRowf(fmt.Sprint(n), ls, qs, okMark(ls), okMark(qs))
	}
	fmt.Println(t.String())
	fmt.Printf("capacity at 2.5x SLO: Linux hosts %d background jobs, QuantaWindow hosts %d\n",
		linuxCap, qwCap)
	if qwCap > linuxCap {
		fmt.Printf("bandwidth-aware scheduling buys %d extra background slots on the same hardware\n",
			qwCap-linuxCap)
	}
}
