// Quickstart: run the paper's headline experiment in ~20 lines.
//
// Two instances of CG (the most bandwidth-hungry NAS kernel) compete
// with four copies of the BBMA bus-saturating microbenchmark on the
// simulated 4-way Xeon SMP, first under the Linux 2.4 baseline and
// then under the paper's Quanta Window policy.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"busaware"
)

func main() {
	cg, ok := busaware.AppByName("CG")
	if !ok {
		log.Fatal("CG not in the registry")
	}
	bbma, _ := busaware.AppByName("BBMA")

	workload := func() []*busaware.App {
		apps := busaware.Instances(cg, 2)
		return append(apps, busaware.Instances(bbma, 4)...)
	}

	linux, err := busaware.RunPolicy(busaware.PolicyLinux, workload())
	if err != nil {
		log.Fatal(err)
	}
	window, err := busaware.RunPolicy(busaware.PolicyQuantaWindow, workload())
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("workload: 2x CG + 4x BBMA on the simulated 4-way Xeon\n\n")
	fmt.Printf("Linux 2.4 baseline: mean CG turnaround %v\n", linux.MeanTurnaround())
	fmt.Printf("Quanta Window:      mean CG turnaround %v\n", window.MeanTurnaround())
	imp := float64(linux.MeanTurnaround()-window.MeanTurnaround()) /
		float64(linux.MeanTurnaround()) * 100
	fmt.Printf("improvement:        %.1f%%\n", imp)
}
