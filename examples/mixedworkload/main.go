// Mixedworkload reproduces the paper's Section 5 "third experiment
// set" in miniature: scientific applications coexisting with both
// highly bus-demanding (BBMA) and bus-idle (nBBMA) jobs — the
// environment the introduction motivates, where a bandwidth-aware
// scheduler must pair hungry applications with idle companions and
// keep antagonists together.
//
// The example also prints *why* the policy made its choices: the
// per-application bandwidth estimates and the co-schedules it formed.
//
//	go run ./examples/mixedworkload
package main

import (
	"fmt"
	"log"

	"busaware"
	"busaware/internal/report"
)

func main() {
	names := []string{"SP", "Volrend"}
	var apps []*busaware.App
	for _, n := range names {
		p, ok := busaware.AppByName(n)
		if !ok {
			log.Fatalf("%s not in the registry", n)
		}
		apps = append(apps, busaware.Instances(p, 2)...)
	}
	bbma, _ := busaware.AppByName("BBMA")
	nbbma, _ := busaware.AppByName("nBBMA")
	apps = append(apps, busaware.Instances(bbma, 2)...)
	apps = append(apps, busaware.Instances(nbbma, 2)...)

	fmt.Println("workload: 2x SP + 2x Volrend + 2x BBMA + 2x nBBMA (10 threads on 4 CPUs)")
	for _, policy := range []string{busaware.PolicyLinux, busaware.PolicyLatestQuantum, busaware.PolicyQuantaWindow} {
		res, err := busaware.RunPolicy(policy, rebuild(apps))
		if err != nil {
			log.Fatal(err)
		}
		t := report.NewTable(fmt.Sprintf("\n%s", res.Scheduler),
			"Instance", "Turnaround", "Slowdown", "Rate(trans/us)")
		for _, a := range res.Apps {
			t.AddRowf(a.Instance, a.Turnaround.String(), a.Slowdown, float64(a.MeanBusRate))
		}
		fmt.Println(t.String())
		fmt.Printf("mean turnaround: %v, bus utilization %.0f%%, %d migrations\n",
			res.MeanTurnaround(), res.MeanBusUtilization*100, res.Migrations)
	}
}

// rebuild clones the workload (sim.Run consumes app state).
func rebuild(apps []*busaware.App) []*busaware.App {
	counts := map[string]int{}
	out := make([]*busaware.App, 0, len(apps))
	for _, a := range apps {
		counts[a.Profile.Name]++
		out = append(out, busaware.NewInstance(a.Profile, fmt.Sprintf("%s#%d", a.Profile.Name, counts[a.Profile.Name])))
	}
	return out
}
