package busaware

// The benchmark harness: one testing.B benchmark per table/figure of
// the paper's evaluation (plus the ablations DESIGN.md calls out).
// Each benchmark regenerates its artifact per iteration and reports
// the headline number as a custom metric so `go test -bench=.` prints
// the same rows the paper reports. EXPERIMENTS.md records one full
// paper-vs-measured comparison.

import (
	"testing"
	"time"

	"busaware/internal/experiments"
)

// BenchmarkCalibrationSTREAM regenerates the Section 3 calibration:
// sustained bus throughput under four STREAM threads (paper:
// 29.5 trans/usec, 1797 MB/s).
func BenchmarkCalibrationSTREAM(b *testing.B) {
	var cal CalibrationResult
	for i := 0; i < b.N; i++ {
		var err error
		cal, err = Calibrate(ExperimentOptions{})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(cal.SustainedRate), "trans/us")
	b.ReportMetric(cal.SustainedMBps, "MB/s")
}

// BenchmarkCacheMicrobench regenerates the Section 3 microbenchmark
// characterization: BBMA ~0% L2 hit rate, nBBMA ~100%.
func BenchmarkCacheMicrobench(b *testing.B) {
	var rows []HitRateResult
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = MicrobenchmarkHitRates()
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		switch r.Name {
		case "BBMA(column-wise, 2x L2)":
			b.ReportMetric(r.HitRate*100, "BBMA-hit-%")
		case "nBBMA(row-wise, L2/2)":
			b.ReportMetric(r.HitRate*100, "nBBMA-hit-%")
		}
	}
}

// BenchmarkFigure1A regenerates Figure 1A: cumulative bus transaction
// rates of the eleven applications across the four configurations.
// The reported metric is the mean cumulative rate of the app+2BBMA
// configuration (paper: 28.34 trans/usec).
func BenchmarkFigure1A(b *testing.B) {
	var rows []Fig1Row
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = Figure1(ExperimentOptions{})
		if err != nil {
			b.Fatal(err)
		}
	}
	var withBBMA float64
	for _, r := range rows {
		withBBMA += float64(r.WithBBMARate)
	}
	b.ReportMetric(withBBMA/float64(len(rows)), "BBMA-mix-trans/us")
	b.ReportMetric(float64(rows[len(rows)-1].SoloRate), "CG-solo-trans/us")
}

// BenchmarkFigure1B regenerates Figure 1B: application slowdowns in
// the three multiprogrammed configurations. Reported metrics: CG's
// slowdown against two BBMA copies (paper: ~2.5-2.8x) and the mean
// slowdown against nBBMA (paper: ~1.0).
func BenchmarkFigure1B(b *testing.B) {
	var rows []Fig1Row
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = Figure1(ExperimentOptions{})
		if err != nil {
			b.Fatal(err)
		}
	}
	var nbbma float64
	for _, r := range rows {
		nbbma += r.WithNBBMASlowdown
	}
	b.ReportMetric(rows[len(rows)-1].WithBBMASlowdown, "CG-BBMA-slowdown-x")
	b.ReportMetric(nbbma/float64(len(rows)), "mean-nBBMA-slowdown-x")
}

// benchFigure2 runs one Figure 2 panel and reports the panel means.
func benchFigure2(b *testing.B, set experiments.WorkloadSet) {
	b.Helper()
	var rows []Fig2Row
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = experiments.Figure2(set, experiments.Options{})
		if err != nil {
			b.Fatal(err)
		}
	}
	s := SummarizeFigure2(set, rows)
	b.ReportMetric(s.LQMean, "LQ-mean-impr-%")
	b.ReportMetric(s.QWMean, "QW-mean-impr-%")
	b.ReportMetric(s.LQMax, "LQ-max-impr-%")
	b.ReportMetric(s.QWMax, "QW-max-impr-%")
}

// BenchmarkFigure2A regenerates Figure 2A (2 apps + 4 BBMA). Paper:
// LQ 4-68% (avg 41%), QW 2-53% (avg 31%).
func BenchmarkFigure2A(b *testing.B) { benchFigure2(b, experiments.SetBBMA) }

// BenchmarkFigure2B regenerates Figure 2B (2 apps + 4 nBBMA). Paper:
// LQ up to 60% (avg 13%, Raytrace -19%), QW up to 64% (avg 21%).
func BenchmarkFigure2B(b *testing.B) { benchFigure2(b, experiments.SetNBBMA) }

// BenchmarkFigure2C regenerates Figure 2C (2 apps + 2 BBMA + 2 nBBMA).
// Paper: LQ avg 26% (max 50%), QW avg 25% (max 47%).
func BenchmarkFigure2C(b *testing.B) { benchFigure2(b, experiments.SetMixed) }

// BenchmarkAblationWindow regenerates the window-length tradeoff
// behind the paper's W = 5 choice.
func BenchmarkAblationWindow(b *testing.B) {
	var rows []WindowAblationRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = AblateWindow(ExperimentOptions{}, []int{1, 5, 12})
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		if r.Window == 5 {
			b.ReportMetric(r.TrackingDistance*100, "W5-track-dist-%")
		}
	}
}

// BenchmarkAblationQuantum regenerates the quantum-length discussion
// (100 ms vs 200 ms context-switch blowup).
func BenchmarkAblationQuantum(b *testing.B) {
	var rows []QuantumAblationRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = AblateQuantum(ExperimentOptions{}, nil)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		if r.Quantum == 100*Millisecond {
			b.ReportMetric(r.ContextSwitchesPerSec, "cs/s@100ms")
		}
		if r.Quantum == 200*Millisecond {
			b.ReportMetric(r.ContextSwitchesPerSec, "cs/s@200ms")
		}
	}
}

// BenchmarkManagerOverhead regenerates the Section 4 overhead
// measurement (paper: at most 4.5%).
func BenchmarkManagerOverhead(b *testing.B) {
	var res OverheadResult
	for i := 0; i < b.N; i++ {
		var err error
		res, err = MeasureManagerOverhead(ExperimentOptions{})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(res.OverheadPercent, "overhead-%")
}

// BenchmarkSchedulerZoo is the extension ablation: the full scheduler
// lineup on the mixed workload.
func BenchmarkSchedulerZoo(b *testing.B) {
	var rows []ZooRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = CompareSchedulers(ExperimentOptions{}, "BT")
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		switch r.Scheduler {
		case "QuantaWindow":
			b.ReportMetric(r.ImprovementVsLinux, "QW-impr-%")
		case "Oracle":
			b.ReportMetric(r.ImprovementVsLinux, "oracle-impr-%")
		case "GangRR":
			b.ReportMetric(r.ImprovementVsLinux, "gang-impr-%")
		}
	}
}

// BenchmarkSamplingAblation contrasts estimator inputs on the
// saturated set (requirements correction vs raw consumption vs naive
// selection).
func BenchmarkSamplingAblation(b *testing.B) {
	var rows []SamplingAblationRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = AblateSampling(ExperimentOptions{}, []string{"CG"})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(rows[0].RequirementsImprovement, "req-impr-%")
	b.ReportMetric(rows[0].ConsumptionImprovement, "cons-impr-%")
	b.ReportMetric(rows[0].GuardedImprovement, "guarded-impr-%")
}

// BenchmarkRobustness sweeps 20 random workloads (extension: the
// generalization check beyond the paper's hand-picked mixes).
func BenchmarkRobustness(b *testing.B) {
	var res RobustnessResult
	for i := 0; i < b.N; i++ {
		var err error
		res, err = MeasureRobustness(ExperimentOptions{LinuxSeeds: []int64{1}}, 20, 1)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(res.QW.Mean, "QW-mean-impr-%")
	b.ReportMetric(float64(res.QWWins), "QW-wins/20")
}

// BenchmarkServerWorkloads evaluates the server-class profiles — the
// paper's "web and database servers" future work.
func BenchmarkServerWorkloads(b *testing.B) {
	var rows []ServerRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = RunServerWorkloads(ExperimentOptions{LinuxSeeds: []int64{1}})
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		switch r.App {
		case "WebServer":
			b.ReportMetric(r.QWImprovement, "web-QW-impr-%")
		case "Database":
			b.ReportMetric(r.QWImprovement, "db-QW-impr-%")
		}
	}
}

// BenchmarkSMTStudy measures hyperthreading off vs on — the paper's
// "multithreading processors" future work.
func BenchmarkSMTStudy(b *testing.B) {
	var rows []SMTRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = RunSMTStudy(ExperimentOptions{LinuxSeeds: []int64{1}})
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		if r.Policy == "QuantaWindow" {
			b.ReportMetric(r.SpeedupPercent, "QW-SMT-speedup-%")
		}
	}
}

// BenchmarkSimQuantum measures the simulator's raw quantum throughput
// (not a paper figure; engineering metric).
func BenchmarkSimQuantum(b *testing.B) {
	cg, _ := AppByName("CG")
	bbma, _ := AppByName("BBMA")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		apps := append(Instances(cg, 2), Instances(bbma, 4)...)
		if _, err := RunPolicy(PolicyQuantaWindow, apps); err != nil {
			b.Fatal(err)
		}
	}
}

// simRunFullApps builds the whole-run benchmark workload: two finite
// paper applications (four threads total) that fit the 4-CPU machine
// and stay far under bus capacity, so the schedule reaches a steady
// state and the event engine's leap path carries most of the run.
// Barnes (15 s solo) and BT (16 s solo) give a moderate/high bandwidth
// mix and ~80 quanta of run, long enough that the stepped warmup and
// completion quanta are a small fraction of the whole.
func simRunFullApps(b *testing.B) []*App {
	b.Helper()
	barnes, ok := AppByName("Barnes")
	if !ok {
		b.Fatal("Barnes missing from registry")
	}
	bt, ok := AppByName("BT")
	if !ok {
		b.Fatal("BT missing from registry")
	}
	return []*App{NewInstance(barnes, "Barnes#1"), NewInstance(bt, "BT#1")}
}

// simRunFull executes one whole run under the given engine and returns
// the result.
func simRunFull(b *testing.B, engine EngineKind) Result {
	b.Helper()
	m := PaperMachine()
	s, err := NewScheduler(PolicyQuantaWindow, m, 1)
	if err != nil {
		b.Fatal(err)
	}
	res, err := RunEngine(engine, m, s, nil, simRunFullApps(b))
	if err != nil {
		b.Fatal(err)
	}
	return res
}

// BenchmarkSimRunFull measures whole-run simulation cost under both
// engines (not a paper figure; engineering metric). The event
// sub-benchmark also times one stepped reference run and reports
// event/quantum-ratio — per-run event cost as a fraction of quantum
// cost, lower is better — which CI gates at 0.2 (a hard >= 5x
// whole-run speedup floor), plus the inverse as speedup-x for humans.
func BenchmarkSimRunFull(b *testing.B) {
	b.Run("quantum", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			simRunFull(b, EngineQuantum)
		}
	})
	b.Run("event", func(b *testing.B) {
		// The leap path must actually engage, or the "speedup" would
		// silently measure two identical stepped runs.
		if res := simRunFull(b, EngineEvent); res.LeaptQuanta == 0 {
			b.Fatal("event engine did not leap on the benchmark workload")
		}
		// Average the stepped reference over a few runs — a single run's
		// timing noise would leak straight into the gated ratio.
		const refRuns = 10
		t0 := time.Now()
		for i := 0; i < refRuns; i++ {
			simRunFull(b, EngineQuantum)
		}
		quantum := time.Since(t0) / refRuns
		b.ReportAllocs()
		b.ResetTimer()
		start := time.Now()
		for i := 0; i < b.N; i++ {
			simRunFull(b, EngineEvent)
		}
		event := time.Since(start) / time.Duration(b.N)
		if event > 0 {
			b.ReportMetric(float64(event)/float64(quantum), "event/quantum-ratio")
			b.ReportMetric(float64(quantum)/float64(event), "speedup-x")
		}
	})
}
