package busaware_test

import (
	"fmt"

	"busaware"
)

// The paper's headline experiment through the public API: two CG
// instances against four bus-saturating antagonists, bandwidth-aware
// policy versus the Linux baseline.
func ExampleRunPolicy() {
	cg, _ := busaware.AppByName("CG")
	bbma, _ := busaware.AppByName("BBMA")
	build := func() []*busaware.App {
		return append(busaware.Instances(cg, 2), busaware.Instances(bbma, 4)...)
	}

	linux, _ := busaware.RunPolicy(busaware.PolicyLinux, build())
	window, _ := busaware.RunPolicy(busaware.PolicyQuantaWindow, build())
	fmt.Println("QuantaWindow beats Linux:", window.MeanTurnaround() < linux.MeanTurnaround())
	// Output:
	// QuantaWindow beats Linux: true
}

// The registry covers the paper's eleven applications plus the
// microbenchmarks.
func ExampleApplications() {
	apps := busaware.Applications()
	fmt.Println(len(apps), "applications from", apps[0].Name, "to", apps[len(apps)-1].Name)
	// Output:
	// 11 applications from Radiosity to CG
}

// The simulator is deterministic: identical runs give identical
// turnarounds.
func ExampleRun() {
	vol, _ := busaware.AppByName("Volrend")
	m := busaware.PaperMachine()
	run := func() busaware.Time {
		s, _ := busaware.NewScheduler(busaware.PolicyQuantaWindow, m, 1)
		res, _ := busaware.Run(m, s, busaware.Instances(vol, 2))
		return res.MeanTurnaround()
	}
	fmt.Println("deterministic:", run() == run())
	// Output:
	// deterministic: true
}
