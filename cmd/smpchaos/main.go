// Command smpchaos is a deterministic network-fault proxy: it sits
// between smpgw and one smpsimd backend and injects a scripted,
// seeded schedule of connection resets, corrupted/truncated bodies,
// blackholes, latency spikes and spurious 503s — per HTTP request, so
// the schedule is reproducible across runs regardless of connection
// reuse. The control plane (/healthz by default) is spared so health
// probes observe the true backend.
//
// Usage:
//
//	smpchaos -addr :8072 -upstream 127.0.0.1:8082 -seed 42 \
//	  -script 'reset=0.04*24,corrupt=0.04*24,latency=0.008:800ms*24' \
//	  -stats-addr 127.0.0.1:8073
//
// The stats endpoint serves the injector's per-class fault counts as
// JSON; the CI chaos gate compares two runs' counts to prove the
// schedule reproduced.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"

	"busaware/internal/chaos"
)

func main() {
	addr := flag.String("addr", ":8072", "listen address")
	upstream := flag.String("upstream", "", "backend host:port to front (required)")
	seed := flag.Int64("seed", 1, "fault-schedule seed")
	script := flag.String("script", "", "fault schedule, e.g. 'reset=0.04*24,corrupt=0.04*24' (empty = transparent)")
	statsAddr := flag.String("stats-addr", "", "optional address serving injector stats as JSON")
	spare := flag.String("spare", "/healthz", "comma-separated request paths exempt from injection")
	flag.Parse()
	if *upstream == "" {
		fatal(fmt.Errorf("-upstream is required"))
	}

	cfg, err := chaos.ParseScript(*seed, *script)
	if err != nil {
		fatal(err)
	}
	inj, err := chaos.New(cfg)
	if err != nil {
		fatal(err)
	}
	spared := make(map[string]bool)
	for _, p := range strings.Split(*spare, ",") {
		if p = strings.TrimSpace(p); p != "" {
			spared[p] = true
		}
	}
	p := &chaos.Proxy{Upstream: *upstream, Inj: inj, Spare: spared}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fatal(err)
	}
	var statsSrv *http.Server
	if *statsAddr != "" {
		mux := http.NewServeMux()
		mux.HandleFunc("/stats", func(w http.ResponseWriter, r *http.Request) {
			w.Header().Set("Content-Type", "application/json")
			body, _ := json.Marshal(inj.Stats())
			w.Write(append(body, '\n'))
		})
		statsSrv = &http.Server{Addr: *statsAddr, Handler: mux}
		go func() {
			if err := statsSrv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
				log.Printf("smpchaos: stats server: %v", err)
			}
		}()
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM, syscall.SIGINT)
	defer stop()
	errc := make(chan error, 1)
	go func() { errc <- p.Serve(ln) }()
	log.Printf("smpchaos: %s -> %s (seed=%d script=%q)", ln.Addr(), *upstream, *seed, *script)

	select {
	case err := <-errc:
		fatal(err)
	case <-ctx.Done():
	}
	p.Close()
	if statsSrv != nil {
		statsSrv.Close()
	}
	s := inj.Stats()
	out, _ := json.Marshal(s)
	log.Printf("smpchaos: final stats %s", out)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "smpchaos:", err)
	os.Exit(1)
}
