// Command cpumgr demonstrates the paper's user-level CPU manager
// protocol end to end with live goroutine "applications": a manager
// listens on a TCP socket (standing in for the UNIX socket), clients
// connect and publish bus-transaction rates through their shared
// arenas twice per quantum, and the manager runs the Quanta Window
// selection every quantum, blocking and unblocking applications with
// the inversion-tolerant signal counters.
//
// Everything runs in real time (scaled down); the output shows which
// applications each quantum admits and the rates the manager saw.
package main

import (
	"flag"
	"fmt"
	"net"
	"os"
	"time"

	"busaware"
	"busaware/internal/cpumanager"
	"busaware/internal/sched"
	"busaware/internal/units"
)

func main() {
	quantumMs := flag.Int("quantum", 200, "manager quantum in (real) milliseconds")
	quanta := flag.Int("quanta", 10, "how many quanta to run")
	flag.Parse()

	quantum := units.Time(*quantumMs) * units.Millisecond
	mgr, err := cpumanager.NewManager(quantum)
	if err != nil {
		fatal(err)
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		fatal(err)
	}
	defer l.Close()
	go mgr.Serve(l)
	fmt.Printf("CPU manager listening on %s, quantum %v, arena update period %v\n\n",
		l.Addr(), mgr.Quantum(), mgr.UpdatePeriod())

	// Launch the paper's mixed workload as live clients: one CG
	// instance, two BBMA and two nBBMA antagonists.
	specs := []struct {
		name    string
		threads int
		rate    units.Rate // cumulative rate the app publishes
	}{
		{"CG#1", 2, 23.31},
		{"BBMA#1", 1, 23.6},
		{"BBMA#2", 1, 23.6},
		{"nBBMA#1", 1, 0.0037},
		{"nBBMA#2", 1, 0.0037},
	}
	stop := make(chan struct{})
	for _, spec := range specs {
		spec := spec
		go runClient(l.Addr().String(), mgr, spec.name, spec.threads, spec.rate, stop)
	}

	// Give clients a moment to connect and publish.
	time.Sleep(50 * time.Millisecond)

	// The manager's scheduling loop: the Director reads arenas, runs
	// the Quanta Window selection, and enforces it with signals.
	m := busaware.PaperMachine()
	policy := sched.NewQuantaWindow(m.NumCPUs, m.Bus.Capacity)
	director, err := cpumanager.NewDirector(mgr, policy)
	if err != nil {
		fatal(err)
	}
	for q := 0; q < *quanta; q++ {
		out := director.Tick()
		var names []string
		for _, s := range out.Sessions {
			names = append(names, s.Instance)
		}
		fmt.Printf("quantum %2d: admitted %v (%d blocked)\n", q+1, names, out.Blocked)
		time.Sleep(time.Duration(*quantumMs) * time.Millisecond / 10) // scaled real time
	}
	close(stop)
	fmt.Printf("\nsignals sent: %d; sessions at exit: %d\n", mgr.SignalsSent(), len(mgr.Sessions()))
}

// runClient is one live application: connect, attach the arena, and
// publish its rate twice per quantum until stopped, honouring
// block/unblock signals.
func runClient(addr string, mgr *cpumanager.Manager, name string, threads int, rate units.Rate, stop <-chan struct{}) {
	c, err := cpumanager.Dial("tcp", addr, name, threads)
	if err != nil {
		fmt.Fprintf(os.Stderr, "%s: %v\n", name, err)
		return
	}
	defer c.Disconnect()
	session, err := mgr.Attach(c.SessionID())
	if err != nil {
		fmt.Fprintf(os.Stderr, "%s: %v\n", name, err)
		return
	}
	period := time.Duration(c.UpdatePeriod()) * time.Microsecond / 10 // scaled
	tick := time.NewTicker(period)
	defer tick.Stop()
	start := time.Now()
	for {
		select {
		case <-stop:
			return
		case <-tick.C:
			if session.Blocked() {
				continue // a blocked app makes no progress and publishes nothing
			}
			session.Arena.Publish(rate, units.Time(time.Since(start).Microseconds()))
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "cpumgr:", err)
	os.Exit(1)
}
