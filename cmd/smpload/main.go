// Command smpload is the closed-loop load driver for smpsimd: N
// concurrent clients each issue requests from a fixed mix back to
// back, and the run's throughput, latency percentiles, status-code
// counts and byte-identity checks are emitted as a JSON artifact
// (smpload's analogue of BENCH_sim.json).
//
// Closed-loop means each client waits for its response before sending
// the next request, so offered load adapts to the server instead of
// piling up — overload then shows up as 429s (counted separately, and
// expected once clients exceed queue + workers), not as timeouts.
//
// The mix is a semicolon-separated list of workload specs in the
// shared -apps grammar, crossed with the -policies list; request i
// always targets entry i mod len(mix). Because the simulator is
// deterministic and smpsimd canonicalizes requests, every repetition
// of a mix entry must return a byte-identical body whether it was
// computed or served from cache; smpload records the first body per
// (entry, seed-variant) and counts any later divergence as a mismatch
// (and exits non-zero). Independently of byte identity, every response
// is checked against its end-to-end integrity digest (X-Content-Digest
// on /v1/simulate, the digest field on sweep lines); a failed check is
// counted as a digest mismatch and also exits non-zero, closing the
// client end of the backend-to-consumer corruption detection path.
//
// -spread N rotates the seed over N variants per entry, turning the
// mix into N times as many distinct cells. With N larger than the
// server's cache-warm working set this defeats the response cache and
// keeps the pool computing — the overload scenario that makes 429
// shedding observable from the outside.
//
// -timeline subscribes to the first target's GET /v1/timeline for the
// run's duration and adds a correlation section to the artifact: how
// many p99-or-slower requests were in flight while the server published
// a bus-saturated telemetry window. Against a gateway the merged stream
// covers every backend.
//
// -scenario switches the driver to open-loop: arrivals follow a
// time-varying load pattern (internal/scenario grammar, e.g.
// "flashcrowd" or "step:10s@4; spike:10s@4..60; step:20s@4") scaled by
// -rate, issued at their planned offsets whether or not earlier
// responses returned. The summary gains a scenario section with
// achieved-vs-target rate, a schedule digest for rerun-identity
// checks, and a per-phase latency/shed breakdown; see openloop.go.
// -scenario-profiles points at a YAML file of named patterns.
//
// -targets spreads the closed-loop clients across several base URLs
// (smpsimd backends, or smpgw gateways) round-robin by client; byte
// identity is still enforced globally, so any divergence between
// targets is caught. -sweep N switches the driver to the batch API:
// each client claims N consecutive cells from the same deterministic
// stream and issues them as one POST /v1/sweep, recording one result
// per cell as its NDJSON line arrives.
//
// Usage:
//
//	smpload -addr http://localhost:8080 -clients 100 -requests 500 \
//	  -mix "CG x2, BBMA x4; Raytrace x2, nBBMA x4" -policies window,latest \
//	  -out LOAD_sim.json
//
//	smpload -targets http://localhost:8081,http://localhost:8082 \
//	  -clients 50 -requests 1000 -sweep 25 -spread 8
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"net/http"
	"os"
	"sort"
	"strings"
	"sync"
	"time"

	"busaware/internal/digest"
	"busaware/internal/scenario"
)

type mixEntry struct {
	Spec   string
	Policy string
	Seed   int64
	Name   string // "<policy>/<spec>" for reporting

	mu    sync.Mutex
	first map[int64][]byte // first response body per seed variant (the reference)
}

// body renders the request JSON for one seed variant.
func (e *mixEntry) body(variant int64) ([]byte, error) {
	return json.Marshal(struct {
		Apps   string `json:"apps"`
		Policy string `json:"policy"`
		Seed   int64  `json:"seed"`
	}{e.Spec, e.Policy, e.Seed + variant})
}

// check records the first response body seen for a variant and
// reports whether body matches it. Bodies are normalized (trailing
// newline stripped) so the simulate wire format and the sweep's
// embedded form compare equal — a cell must be byte-identical no
// matter which endpoint, backend, or mode served it.
func (e *mixEntry) check(variant int64, body []byte) bool {
	body = bytes.TrimSuffix(body, []byte("\n"))
	e.mu.Lock()
	defer e.mu.Unlock()
	first, ok := e.first[variant]
	if !ok {
		e.first[variant] = append([]byte(nil), body...)
		return true
	}
	return bytes.Equal(first, body)
}

// result is one cell's outcome.
type result struct {
	code    int // 0 = transport error
	latency time.Duration
	done    time.Time // completion wall clock (for timeline correlation)
	mixIdx  int
	match   bool // body matched the entry's reference (200s only)
	hit     bool // served from a response cache (200s only)
	// storeHit narrows hit: the backend answered from its persistent
	// store tier (X-Cache hit-t2/hit-t3) rather than memory — the
	// signal a warm restart or a warm ring join actually replayed
	// instead of recomputing.
	storeHit bool
	// badDigest marks a response whose X-Content-Digest (or sweep line
	// digest) did not match the bytes received — corruption in flight
	// that every upstream integrity check missed.
	badDigest bool
	// phase and late are open-loop bookkeeping (-scenario): which
	// pattern phase the arrival belonged to, and whether it was issued
	// more than lateSlack behind its planned deadline.
	phase int
	late  bool
}

// Summary is the JSON artifact smpload emits.
type Summary struct {
	Clients     int            `json:"clients"`
	Requests    int            `json:"requests"`
	DurationSec float64        `json:"duration_sec"`
	Throughput  float64        `json:"throughput_rps"`
	Codes       map[string]int `json:"codes"`
	// Errors counts transport-level failures (connection refused...).
	Errors int `json:"errors"`
	// Mismatches counts 200 responses whose body differed from the
	// first response for the same mix entry — must be zero against a
	// correct server.
	Mismatches int `json:"mismatches"`
	// DigestMismatches counts responses whose end-to-end integrity
	// digest (X-Content-Digest on /v1/simulate, the digest field on
	// sweep lines) failed to verify against the received bytes — must
	// be zero; any count means corruption crossed the serving plane
	// undetected.
	DigestMismatches int `json:"digest_mismatches"`
	// Shed is the 429 count, broken out since backpressure is expected
	// behaviour under overload, not failure.
	Shed int `json:"shed"`
	// CacheHits counts 200s the server marked as cache-served (any
	// hit-prefixed X-Cache value, or the sweep line's cache field).
	CacheHits int `json:"cache_hits"`
	// StoreHits is the subset of CacheHits served from a persistent
	// store tier (hit-t2 local disk, hit-t3 shared) — nonzero after a
	// warm restart or warm ring join, zero when every hit came from
	// memory.
	StoreHits int `json:"store_hits"`
	// LatencyMs covers successful (200) requests only.
	LatencyMs Percentiles `json:"latency_ms"`
	Mix       []string    `json:"mix"`
	// Targets are the base URLs the clients were spread across.
	Targets []string `json:"targets"`
	// Timeline correlates client-side p99 spikes with the server-side
	// telemetry windows streamed during the run (-timeline; absent when
	// disabled or the feed was unreachable).
	Timeline *TimelineCorrelation `json:"timeline,omitempty"`
	// Scenario is the open-loop section (-scenario; absent in
	// closed-loop runs): rate conformance, the schedule digest, and
	// the per-phase latency/shed breakdown.
	Scenario *ScenarioSummary `json:"scenario,omitempty"`
}

// Percentiles summarizes a latency distribution in milliseconds.
type Percentiles struct {
	P50  float64 `json:"p50"`
	P90  float64 `json:"p90"`
	P99  float64 `json:"p99"`
	Max  float64 `json:"max"`
	Mean float64 `json:"mean"`
}

func main() {
	addr := flag.String("addr", "http://localhost:8080", "smpsimd base URL")
	targets := flag.String("targets", "", "comma-separated base URLs to spread clients across (overrides -addr); smpsimd backends or smpgw gateways")
	clients := flag.Int("clients", 8, "concurrent closed-loop clients")
	requests := flag.Int("requests", 100, "total requests (cells) across all clients")
	mix := flag.String("mix", "CG x2, BBMA x4; Raytrace x2, nBBMA x4", "semicolon-separated workload specs")
	policies := flag.String("policies", "window", "comma-separated policies crossed with the mix")
	seed := flag.Int64("seed", 1, "base seed sent with every request")
	spread := flag.Int64("spread", 1, "rotate the seed over N variants per mix entry; >1 forces distinct cells (cache misses), the overload scenario")
	sweep := flag.Int("sweep", 0, "batch mode: each client issues N cells per POST /v1/sweep instead of one per /v1/simulate")
	timeout := flag.Duration("timeout", 2*time.Minute, "per-request client timeout")
	out := flag.String("out", "", "write the JSON summary to this file as well as stdout")
	strict := flag.Bool("strict", false, "also fail on any non-200 (including 429s)")
	timeline := flag.Bool("timeline", false, "stream the first target's /v1/timeline during the run and correlate p99 latency spikes with bus-saturated windows")
	scenarioPat := flag.String("scenario", "", "open-loop mode: drive arrivals from this load pattern or preset (internal/scenario grammar) instead of closed-loop clients; -requests and -sweep are ignored")
	scenarioProfiles := flag.String("scenario-profiles", "", "YAML profile file defining named patterns usable in -scenario")
	rate := flag.Float64("rate", 1, "open-loop only: scale applied to the pattern's level (level x rate = requests/sec)")
	flag.Parse()

	entries, err := buildMix(*mix, *policies, *seed)
	if err != nil {
		fatal(err)
	}
	if *clients < 1 {
		fatal(fmt.Errorf("need at least one client"))
	}
	if *requests < 1 && *scenarioPat == "" {
		fatal(fmt.Errorf("need at least one request"))
	}
	if *spread < 1 {
		fatal(fmt.Errorf("-spread must be >= 1"))
	}
	var pat *scenario.Pattern
	if *scenarioPat != "" {
		if *sweep > 1 {
			fatal(fmt.Errorf("-sweep and -scenario are mutually exclusive"))
		}
		if *rate <= 0 {
			fatal(fmt.Errorf("-rate must be > 0"))
		}
		var profiles map[string]string
		if *scenarioProfiles != "" {
			if profiles, err = scenario.LoadProfiles(*scenarioProfiles); err != nil {
				fatal(err)
			}
		}
		if pat, err = scenario.ParsePatternWith(*scenarioPat, profiles); err != nil {
			fatal(err)
		}
	} else if *scenarioProfiles != "" {
		fatal(fmt.Errorf("-scenario-profiles requires -scenario"))
	}
	bases := []string{*addr}
	if *targets != "" {
		bases = nil
		for _, u := range strings.Split(*targets, ",") {
			if u = strings.TrimSpace(u); u != "" {
				bases = append(bases, u)
			}
		}
		if len(bases) == 0 {
			fatal(fmt.Errorf("-targets has no URLs"))
		}
	}

	// The default transport keeps only 2 idle connections per host, so
	// beyond 2 clients every request would redial and the measured
	// latency would be connection churn, not server behaviour. Size the
	// keep-alive pool to the client count so each closed-loop client
	// keeps its own warm connection.
	httpc := &http.Client{
		Timeout: *timeout,
		Transport: &http.Transport{
			MaxIdleConns:        *clients,
			MaxIdleConnsPerHost: *clients,
		},
	}
	var watcher *timelineWatcher
	if *timeline {
		// Subscribe before load starts so no window of the run is
		// missed; the gateway's merged stream covers all backends when
		// the first target is an smpgw.
		watcher = watchTimeline(httpc, bases[0])
		if watcher == nil {
			fmt.Fprintln(os.Stderr, "smpload: warning: /v1/timeline unreachable; correlation disabled")
		}
	}

	var results []result
	var plan []arrival
	start := time.Now()
	if pat != nil {
		// Open-loop: the pattern plans the schedule; -requests is the
		// pattern's business, not a flag.
		if plan, err = planArrivals(pat, *rate, len(entries), *spread); err != nil {
			fatal(err)
		}
		results = runOpenLoop(httpc, bases, entries, plan, *clients, start)
	} else {
		results = make([]result, *requests)
		batch := 1
		if *sweep > 1 {
			batch = *sweep
		}
		var next int
		var mu sync.Mutex
		var wg sync.WaitGroup
		for c := 0; c < *clients; c++ {
			wg.Add(1)
			go func(c int) {
				defer wg.Done()
				base := bases[c%len(bases)]
				for {
					// Claim the next cell (or, in sweep mode, the next
					// contiguous block of cells) from the shared stream.
					mu.Lock()
					lo := next
					if lo >= len(results) {
						mu.Unlock()
						return
					}
					hi := lo + batch
					if hi > len(results) {
						hi = len(results)
					}
					next = hi
					mu.Unlock()
					// Deterministic request mix: the i-th cell overall
					// always targets the same entry and seed variant, so a
					// rerun offers the identical request stream.
					if *sweep > 1 {
						issueSweep(httpc, base, entries, *spread, lo, hi, results)
						continue
					}
					e := entries[lo%len(entries)]
					variant := int64(lo/len(entries)) % *spread
					results[lo] = issue(httpc, base, e, lo%len(entries), variant)
				}
			}(c)
		}
		wg.Wait()
	}
	elapsed := time.Since(start)

	s := summarize(results, entries, *clients, elapsed)
	s.Targets = bases
	var events []timelineEvent
	if watcher != nil {
		// A short grace period lets windows sealed by the final cells
		// reach the subscriber before the stream is cut.
		time.Sleep(200 * time.Millisecond)
		events = watcher.stop()
		s.Timeline = correlate(results, events, s.LatencyMs.P99)
	}
	if pat != nil {
		s.Scenario = buildScenarioSummary(pat, *rate, plan, results, start, events)
	}
	body, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		fatal(err)
	}
	body = append(body, '\n')
	os.Stdout.Write(body)
	if *out != "" {
		if err := os.WriteFile(*out, body, 0o644); err != nil {
			fatal(err)
		}
	}
	if s.Mismatches > 0 {
		fatal(fmt.Errorf("%d responses diverged from their first occurrence", s.Mismatches))
	}
	if s.DigestMismatches > 0 {
		fatal(fmt.Errorf("%d responses failed integrity-digest verification", s.DigestMismatches))
	}
	if s.Errors > 0 {
		fatal(fmt.Errorf("%d transport errors", s.Errors))
	}
	if *strict && s.Codes["200"] != s.Requests {
		fatal(fmt.Errorf("strict: %d of %d requests not 200", s.Requests-s.Codes["200"], s.Requests))
	}
}

// buildMix crosses specs with policies into request templates.
func buildMix(mix, policies string, seed int64) ([]*mixEntry, error) {
	var entries []*mixEntry
	for _, spec := range strings.Split(mix, ";") {
		spec = strings.TrimSpace(spec)
		if spec == "" {
			continue
		}
		for _, policy := range strings.Split(policies, ",") {
			policy = strings.TrimSpace(policy)
			if policy == "" {
				continue
			}
			entries = append(entries, &mixEntry{
				Spec:   spec,
				Policy: policy,
				Seed:   seed,
				Name:   policy + "/" + spec,
				first:  map[int64][]byte{},
			})
		}
	}
	if len(entries) == 0 {
		return nil, fmt.Errorf("empty mix")
	}
	return entries, nil
}

// issue sends one request and checks byte-identity against the entry's
// reference body for the same seed variant.
func issue(httpc *http.Client, addr string, e *mixEntry, mixIdx int, variant int64) result {
	reqBody, err := e.body(variant)
	if err != nil {
		return result{code: 0, mixIdx: mixIdx}
	}
	t0 := time.Now()
	resp, err := httpc.Post(addr+"/v1/simulate", "application/json", bytes.NewReader(reqBody))
	if err != nil {
		return result{code: 0, latency: time.Since(t0), mixIdx: mixIdx}
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	lat := time.Since(t0)
	if err != nil {
		return result{code: 0, latency: lat, mixIdx: mixIdx}
	}
	r := result{code: resp.StatusCode, latency: lat, done: t0.Add(lat), mixIdx: mixIdx, match: true}
	if resp.StatusCode == http.StatusOK {
		r.match = e.check(variant, body)
		cache := resp.Header.Get("X-Cache")
		r.hit = strings.HasPrefix(cache, "hit")
		r.storeHit = cache == "hit-t2" || cache == "hit-t3"
		r.badDigest = !digest.Verify(resp.Header.Get(digest.Header), body)
	}
	return r
}

// sweepLine mirrors the NDJSON schema shared by smpsimd's /v1/sweep
// and smpgw's merged stream (which adds the backend field).
type sweepLine struct {
	Index    int             `json:"index"`
	Status   int             `json:"status"`
	Cache    string          `json:"cache"`
	Error    string          `json:"error"`
	Response json.RawMessage `json:"response"`
	Backend  string          `json:"backend"`
	Digest   string          `json:"digest"`
}

// issueSweep sends cells [lo, hi) of the deterministic stream as one
// batch and records a result per cell as its line arrives. Cells the
// stream never answers (transport failure mid-stream) count as
// transport errors.
func issueSweep(httpc *http.Client, addr string, entries []*mixEntry, spread int64, lo, hi int, results []result) {
	type cellRef struct {
		e       *mixEntry
		mixIdx  int
		variant int64
	}
	refs := make([]cellRef, 0, hi-lo)
	cells := make([]json.RawMessage, 0, hi-lo)
	for idx := lo; idx < hi; idx++ {
		e := entries[idx%len(entries)]
		variant := int64(idx/len(entries)) % spread
		body, err := e.body(variant)
		if err != nil {
			for j := lo; j < hi; j++ {
				results[j] = result{mixIdx: j % len(entries)}
			}
			return
		}
		refs = append(refs, cellRef{e: e, mixIdx: idx % len(entries), variant: variant})
		cells = append(cells, body)
	}
	reqBody, err := json.Marshal(struct {
		Cells []json.RawMessage `json:"cells"`
	}{cells})
	if err != nil {
		for j := lo; j < hi; j++ {
			results[j] = result{mixIdx: j % len(entries)}
		}
		return
	}

	t0 := time.Now()
	for i := range refs {
		results[lo+i] = result{mixIdx: refs[i].mixIdx} // transport error unless a line lands
	}
	resp, err := httpc.Post(addr+"/v1/sweep", "application/json", bytes.NewReader(reqBody))
	if err != nil {
		lat := time.Since(t0)
		for i := range refs {
			results[lo+i].latency = lat
		}
		return
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		lat := time.Since(t0)
		for i := range refs {
			results[lo+i] = result{code: resp.StatusCode, latency: lat, mixIdx: refs[i].mixIdx}
		}
		return
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64<<10), 8<<20)
	for sc.Scan() {
		raw := bytes.TrimSpace(sc.Bytes())
		if len(raw) == 0 {
			continue
		}
		var line sweepLine
		if err := json.Unmarshal(raw, &line); err != nil || line.Index < 0 || line.Index >= len(refs) {
			continue
		}
		ref := refs[line.Index]
		now := time.Now()
		r := result{code: line.Status, latency: now.Sub(t0), done: now, mixIdx: ref.mixIdx, match: true}
		// The line's digest folds in the status and the index as this
		// client sees them (both smpsimd and smpgw stamp for the
		// receiver's coordinates), so one check covers body bytes, the
		// status digit, and cell identity.
		r.badDigest = !digest.VerifyLine(line.Digest, line.Status, line.Index, line.Response)
		if line.Status == http.StatusOK {
			r.match = ref.e.check(ref.variant, line.Response)
			r.hit = strings.HasPrefix(line.Cache, "hit")
			r.storeHit = line.Cache == "hit-t2" || line.Cache == "hit-t3"
		}
		results[lo+line.Index] = r
	}
}

func summarize(results []result, entries []*mixEntry, clients int, elapsed time.Duration) Summary {
	s := Summary{
		Clients:     clients,
		Requests:    len(results),
		DurationSec: elapsed.Seconds(),
		Codes:       map[string]int{},
	}
	if elapsed > 0 {
		s.Throughput = float64(len(results)) / elapsed.Seconds()
	}
	var okLat []float64
	for _, r := range results {
		if r.code == 0 {
			s.Errors++
			continue
		}
		s.Codes[fmt.Sprint(r.code)]++
		if r.badDigest {
			s.DigestMismatches++
		}
		switch {
		case r.code == http.StatusTooManyRequests:
			s.Shed++
		case r.code == http.StatusOK:
			okLat = append(okLat, float64(r.latency)/float64(time.Millisecond))
			if !r.match {
				s.Mismatches++
			}
			if r.hit {
				s.CacheHits++
			}
			if r.storeHit {
				s.StoreHits++
			}
		}
	}
	s.LatencyMs = percentiles(okLat)
	for _, e := range entries {
		s.Mix = append(s.Mix, e.Name)
	}
	return s
}

func percentiles(ms []float64) Percentiles {
	if len(ms) == 0 {
		return Percentiles{}
	}
	sort.Float64s(ms)
	// Nearest-rank: the P-th percentile is the ceil(p*N)-th smallest
	// sample. Floor truncation over len-1 biased small samples low —
	// with N=10 it reported P99 as the 9th smallest value, not the max.
	at := func(p float64) float64 {
		i := int(math.Ceil(p*float64(len(ms)))) - 1
		if i < 0 {
			i = 0
		}
		if i >= len(ms) {
			i = len(ms) - 1
		}
		return ms[i]
	}
	var sum float64
	for _, v := range ms {
		sum += v
	}
	return Percentiles{
		P50:  at(0.50),
		P90:  at(0.90),
		P99:  at(0.99),
		Max:  ms[len(ms)-1],
		Mean: sum / float64(len(ms)),
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "smpload:", err)
	os.Exit(1)
}
