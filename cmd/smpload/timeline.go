package main

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"sync"
	"time"
)

// The -timeline mode answers the question load numbers alone cannot:
// when client latency spikes, was the *simulated machine* saturated,
// or was it the serving layer (queueing, cache misses)? The driver
// subscribes to the target's GET /v1/timeline for the duration of the
// run, keeps every window the server seals, and afterwards checks each
// p99-or-worse request against the windows published while it was in
// flight. Pointed at a gateway, the merged stream covers the whole
// cluster.

// timelineEvent mirrors the server's /v1/timeline NDJSON line shape —
// declared locally so smpload stays a pure HTTP client of the wire
// format, importing no server code.
type timelineEvent struct {
	WallMs  int64  `json:"wall_ms"`
	Key     string `json:"key"`
	Backend string `json:"backend"`
	Window  struct {
		Quanta    int64   `json:"quanta"`
		UtilSum   float64 `json:"util_sum"`
		Saturated int64   `json:"saturated"`
	} `json:"window"`
}

// TimelineCorrelation is the timeline section of the Summary artifact:
// how many of the slowest requests overlapped a bus-saturated window.
type TimelineCorrelation struct {
	// WindowsObserved and SaturatedWindows count the windows streamed
	// during the run; a window is saturated when any of its quanta
	// crossed the server's saturation threshold.
	WindowsObserved  int `json:"windows_observed"`
	SaturatedWindows int `json:"saturated_windows"`
	// P99ThresholdMs is the latency at or above which a 200 counts as a
	// spike.
	P99ThresholdMs float64 `json:"p99_threshold_ms"`
	Spikes         int     `json:"spikes"`
	// SpikesDuringSaturation counts spikes whose in-flight interval
	// overlapped (within one second of slack — windows publish when
	// sealed, not continuously) a saturated window's publication.
	SpikesDuringSaturation int `json:"spikes_during_saturation"`
}

// timelineWatcher streams /v1/timeline concurrently with the load run.
type timelineWatcher struct {
	cancel context.CancelFunc
	done   chan struct{}

	mu     sync.Mutex
	events []timelineEvent
}

// watchTimeline subscribes to base's live feed (no backlog: only
// windows sealed during this run). Returns nil if the endpoint is
// unreachable — correlation is then reported as absent, not fatal: the
// load numbers are still good.
func watchTimeline(httpc *http.Client, base string) *timelineWatcher {
	ctx, cancel := context.WithCancel(context.Background())
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, base+"/v1/timeline?backlog=0", nil)
	if err != nil {
		cancel()
		return nil
	}
	// The stream must outlive the per-request timeout of the load
	// client; share its transport but not its deadline.
	streamc := &http.Client{Transport: httpc.Transport}
	resp, err := streamc.Do(req)
	if err != nil || resp.StatusCode != http.StatusOK {
		if resp != nil {
			resp.Body.Close()
		}
		cancel()
		return nil
	}
	w := &timelineWatcher{cancel: cancel, done: make(chan struct{})}
	go func() {
		defer close(w.done)
		defer resp.Body.Close()
		sc := bufio.NewScanner(resp.Body)
		sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
		for sc.Scan() {
			raw := bytes.TrimSpace(sc.Bytes())
			if len(raw) == 0 {
				continue
			}
			var ev timelineEvent
			if err := json.Unmarshal(raw, &ev); err != nil {
				continue
			}
			w.mu.Lock()
			w.events = append(w.events, ev)
			w.mu.Unlock()
		}
	}()
	return w
}

// stop ends the subscription and returns everything streamed.
func (w *timelineWatcher) stop() []timelineEvent {
	w.cancel()
	<-w.done
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.events
}

// correlate matches p99-or-slower 200s against saturated windows
// published while they were in flight.
func correlate(results []result, events []timelineEvent, p99Ms float64) *TimelineCorrelation {
	c := &TimelineCorrelation{P99ThresholdMs: p99Ms, WindowsObserved: len(events)}
	var satTimes []int64
	for _, ev := range events {
		if ev.Window.Saturated > 0 {
			c.SaturatedWindows++
			satTimes = append(satTimes, ev.WallMs)
		}
	}
	const slackMs = int64(1000)
	for _, r := range results {
		if r.code != http.StatusOK || float64(r.latency)/float64(time.Millisecond) < p99Ms {
			continue
		}
		c.Spikes++
		doneMs := r.done.UnixMilli()
		startMs := doneMs - r.latency.Milliseconds()
		for _, t := range satTimes {
			if t >= startMs-slackMs && t <= doneMs+slackMs {
				c.SpikesDuringSaturation++
				break
			}
		}
	}
	return c
}
