package main

// Open-loop mode (-scenario): instead of N closed-loop clients issuing
// back to back, the driver materializes a deterministic arrival
// schedule from a load pattern (internal/scenario grammar or preset)
// and issues each request at its planned offset from the run start,
// regardless of whether earlier responses have returned. Offered load
// is then set by the pattern, not by the server — the open-loop
// half of the paper's evaluation story, where overload cannot slow the
// arrival process down and must surface as shedding.
//
// Pacing is token-bucket-like: a worker pool of -clients goroutines
// pulls arrivals in schedule order and sleeps until each one's
// deadline; arrivals that are behind schedule (all workers were busy)
// are issued immediately, back to back, until the pool catches up.
// Lateness beyond lateSlack is counted so the artifact shows when the
// driver, not the server, was the bottleneck.
//
// The same pattern + -rate + -spread always plans the identical
// schedule (arrival times, mix entries, seed variants); the summary
// records a digest of the plan so reruns can assert schedule identity.
//
// Cache-busting is phase-aware: arrivals inside a spike segment rotate
// over fresh seed variants (1..spread) while all other phases reuse
// variant 0. Steady-state traffic therefore warms and then hits the
// response cache, and the spike alone drives distinct simulations into
// the worker pool — which is what makes 429 shedding and bus-saturated
// timeline windows attributable to the spike from the outside.

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"net/http"
	"sync"
	"time"

	"busaware/internal/scenario"
	"busaware/internal/units"
)

// lateSlack is how far behind its planned deadline an arrival may
// issue before it is counted as late.
const lateSlack = 50 * time.Millisecond

// arrival is one planned open-loop request.
type arrival struct {
	at      units.Time // planned offset from run start
	entry   int        // index into the mix entries
	variant int64      // seed variant (0 outside spikes)
	phase   int        // index into the pattern's Phases()
}

// ScenarioSummary is the open-loop section of the Summary artifact.
type ScenarioSummary struct {
	// Pattern is the canonical form of the -scenario pattern, so two
	// artifacts can be compared on what was actually offered.
	Pattern string  `json:"pattern"`
	Rate    float64 `json:"rate"`
	// ScheduleDigest fingerprints the planned arrival schedule (times,
	// mix entries, seed variants). Two runs with the same pattern,
	// rate, mix and spread must report the same digest.
	ScheduleDigest  string  `json:"schedule_digest"`
	PlannedArrivals int     `json:"planned_arrivals"`
	TargetRPS       float64 `json:"target_rps"`
	// AchievedRPS divides the arrivals actually issued by the span
	// from run start to the last issuance (not the last response —
	// open-loop rate is about offering, not completing).
	AchievedRPS  float64 `json:"achieved_rps"`
	RateErrorPct float64 `json:"rate_error_pct"`
	// LateArrivals counts requests issued more than lateSlack behind
	// their planned deadline — driver-side saturation, not server-side.
	LateArrivals int `json:"late_arrivals"`
	// Phases breaks the run down by the pattern's primary-track
	// segments (e.g. flashcrowd: step#0 warmup, spike#1, step#2
	// recovery), which is where shed-during-spike shows up.
	Phases []PhaseSummary `json:"phases"`
}

// PhaseSummary is one pattern phase's slice of the run.
type PhaseSummary struct {
	Name      string  `json:"name"`
	Kind      string  `json:"kind"`
	StartSec  float64 `json:"start_sec"`
	EndSec    float64 `json:"end_sec"`
	Arrivals  int     `json:"arrivals"`
	OK        int     `json:"ok"`
	Shed      int     `json:"shed"`
	Errors    int     `json:"errors"`
	CacheHits int     `json:"cache_hits"`
	// LatencyMs covers this phase's 200s only.
	LatencyMs Percentiles `json:"latency_ms"`
	// SaturatedWindows counts bus-saturated timeline windows published
	// while this phase was active (-timeline only; windows publish
	// when sealed, so a window can trail the quanta it covers).
	SaturatedWindows int `json:"saturated_windows"`
}

// planArrivals expands the pattern into the deterministic open-loop
// schedule: arrival i targets mix entry i mod len(entries), and spike
// arrivals rotate over variants 1..spread while every other phase uses
// variant 0 (see the package comment for why).
func planArrivals(pat *scenario.Pattern, rate float64, entries int, spread int64) ([]arrival, error) {
	times := pat.Arrivals(rate)
	if len(times) == 0 {
		return nil, fmt.Errorf("scenario %q at rate %g plans zero arrivals", pat, rate)
	}
	phases := pat.Phases()
	plan := make([]arrival, len(times))
	var spikeSeq int64
	for i, at := range times {
		ph := pat.PhaseAt(at)
		var v int64
		if ph >= 0 && phases[ph].Kind == scenario.SegSpike {
			v = 1 + spikeSeq%spread
			spikeSeq++
		}
		plan[i] = arrival{at: at, entry: i % entries, variant: v, phase: ph}
	}
	return plan, nil
}

// scheduleDigest fingerprints the plan for rerun-identity checks.
func scheduleDigest(plan []arrival) string {
	h := sha256.New()
	var buf [8]byte
	for _, a := range plan {
		for _, v := range []int64{int64(a.at), int64(a.entry), a.variant} {
			binary.LittleEndian.PutUint64(buf[:], uint64(v))
			h.Write(buf[:])
		}
	}
	return hex.EncodeToString(h.Sum(nil))[:16]
}

// runOpenLoop issues the plan against the targets. Workers claim
// arrivals in schedule order, sleep until each one's deadline, and
// issue behind-schedule arrivals immediately.
func runOpenLoop(httpc *http.Client, bases []string, entries []*mixEntry, plan []arrival, clients int, start time.Time) []result {
	results := make([]result, len(plan))
	var next int
	var mu sync.Mutex
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			base := bases[c%len(bases)]
			for {
				mu.Lock()
				i := next
				if i >= len(plan) {
					mu.Unlock()
					return
				}
				next++
				mu.Unlock()
				a := plan[i]
				due := start.Add(time.Duration(a.at) * time.Microsecond)
				if d := time.Until(due); d > 0 {
					time.Sleep(d)
				}
				issued := time.Now()
				r := issue(httpc, base, entries[a.entry], a.entry, a.variant)
				r.phase = a.phase
				r.late = issued.Sub(due) > lateSlack
				results[i] = r
			}
		}(c)
	}
	wg.Wait()
	return results
}

// buildScenarioSummary assembles the open-loop section: rate
// conformance, the schedule digest, and the per-phase breakdown with
// saturated-window attribution when a timeline feed was captured.
func buildScenarioSummary(pat *scenario.Pattern, rate float64, plan []arrival, results []result, start time.Time, events []timelineEvent) *ScenarioSummary {
	ss := &ScenarioSummary{
		Pattern:         pat.String(),
		Rate:            rate,
		ScheduleDigest:  scheduleDigest(plan),
		PlannedArrivals: len(plan),
	}
	if d := pat.Duration(); d > 0 {
		ss.TargetRPS = float64(len(plan)) / (float64(d) / float64(units.Second))
	}
	// Offered-rate conformance: span from run start to the last
	// issuance. A response's issue time is its completion minus its
	// latency; transport errors with no timestamp are skipped.
	var lastIssue time.Time
	for _, r := range results {
		if r.done.IsZero() {
			continue
		}
		if t := r.done.Add(-r.latency); t.After(lastIssue) {
			lastIssue = t
		}
	}
	if span := lastIssue.Sub(start); span > 0 {
		ss.AchievedRPS = float64(len(plan)) / span.Seconds()
	}
	if ss.TargetRPS > 0 && ss.AchievedRPS > 0 {
		ss.RateErrorPct = (ss.AchievedRPS - ss.TargetRPS) / ss.TargetRPS * 100
	}

	phases := pat.Phases()
	ps := make([]PhaseSummary, len(phases))
	lat := make([][]float64, len(phases))
	for i, ph := range phases {
		ps[i] = PhaseSummary{
			Name:     ph.Name,
			Kind:     ph.Kind.String(),
			StartSec: float64(ph.Start) / float64(units.Second),
			EndSec:   float64(ph.End) / float64(units.Second),
		}
	}
	for _, r := range results {
		if r.phase < 0 || r.phase >= len(ps) {
			continue
		}
		p := &ps[r.phase]
		p.Arrivals++
		if r.late {
			ss.LateArrivals++
		}
		switch {
		case r.code == 0:
			p.Errors++
		case r.code == http.StatusTooManyRequests:
			p.Shed++
		case r.code == http.StatusOK:
			p.OK++
			if r.hit {
				p.CacheHits++
			}
			lat[r.phase] = append(lat[r.phase], float64(r.latency)/float64(time.Millisecond))
		}
	}
	for i := range ps {
		ps[i].LatencyMs = percentiles(lat[i])
	}
	startMs := start.UnixMilli()
	for _, ev := range events {
		if ev.Window.Saturated == 0 {
			continue
		}
		off := units.Time(ev.WallMs-startMs) * units.Millisecond
		if pi := pat.PhaseAt(off); pi >= 0 && pi < len(ps) {
			ps[pi].SaturatedWindows++
		}
	}
	ss.Phases = ps
	return ss
}
